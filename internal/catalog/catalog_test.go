package catalog

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/txn"
)

type fixture struct {
	sw   *device.Switch
	pool *buffer.Pool
	mgr  *txn.Manager
	cat  *Catalog
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	mem, err := sw.Manager("mem")
	if err != nil {
		t.Fatal(err)
	}
	log, err := txn.OpenLog(mem)
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(log)
	var mu sync.Mutex
	tick := int64(100)
	mgr.TimeSource = func() int64 { mu.Lock(); defer mu.Unlock(); tick++; return tick }
	pool := buffer.NewPool(sw, 32)
	for _, oid := range []device.OID{RelationsRel, TypesRel, FunctionsRel} {
		if err := sw.Place(oid, ""); err != nil {
			t.Fatal(err)
		}
	}
	cat, err := Open(
		heap.Open(RelationsRel, pool, mgr),
		heap.Open(TypesRel, pool, mgr),
		heap.Open(FunctionsRel, pool, mgr),
		mgr, sw)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{sw: sw, pool: pool, mgr: mgr, cat: cat}
}

func (fx *fixture) reopen(t *testing.T) *Catalog {
	t.Helper()
	cat, err := Open(
		heap.Open(RelationsRel, fx.pool, fx.mgr),
		heap.Open(TypesRel, fx.pool, fx.mgr),
		heap.Open(FunctionsRel, fx.pool, fx.mgr),
		fx.mgr, fx.sw)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestCreateRelationPersists(t *testing.T) {
	fx := newFixture(t)
	tx, _ := fx.mgr.Begin()
	ri, err := fx.cat.CreateRelation(tx, "mytable", "mem", KindHeap)
	if err != nil {
		t.Fatal(err)
	}
	if ri.OID < FirstUserOID {
		t.Fatalf("oid %d below FirstUserOID", ri.OID)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Visible now and after a catalog reload.
	if got, ok := fx.cat.Relation("mytable"); !ok || got.OID != ri.OID {
		t.Fatalf("lookup: %+v %v", got, ok)
	}
	cat2 := fx.reopen(t)
	got, ok := cat2.Relation("mytable")
	if !ok || got.OID != ri.OID || got.Class != "mem" || got.Kind != KindHeap {
		t.Fatalf("after reload: %+v %v", got, ok)
	}
	// The relation was placed on its device.
	if class, err := fx.sw.HomeClass(ri.OID); err != nil || class != "mem" {
		t.Fatalf("placement: %q %v", class, err)
	}
	// OID allocation resumes above it.
	if next := cat2.AllocOID(); next <= ri.OID {
		t.Fatalf("AllocOID after reload = %d", next)
	}
}

func TestCreateRelationAbortRollsBack(t *testing.T) {
	fx := newFixture(t)
	tx, _ := fx.mgr.Begin()
	if _, err := fx.cat.CreateRelation(tx, "doomed", "mem", KindHeap); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, ok := fx.cat.Relation("doomed"); ok {
		t.Fatal("aborted relation still visible in memory")
	}
	if _, ok := fx.reopen(t).Relation("doomed"); ok {
		t.Fatal("aborted relation visible after reload")
	}
	// The name is reusable.
	tx2, _ := fx.mgr.Begin()
	if _, err := fx.cat.CreateRelation(tx2, "doomed", "mem", KindHeap); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateNamesAndOIDs(t *testing.T) {
	fx := newFixture(t)
	tx, _ := fx.mgr.Begin()
	ri, err := fx.cat.CreateRelation(tx, "dup", "mem", KindHeap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fx.cat.CreateRelation(tx, "dup", "mem", KindHeap); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate name: %v", err)
	}
	if _, err := fx.cat.CreateRelationAt(tx, ri.OID, "other", "mem", KindHeap); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate oid: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestCreateRelationAtRaisesAllocator(t *testing.T) {
	fx := newFixture(t)
	tx, _ := fx.mgr.Begin()
	if _, err := fx.cat.CreateRelationAt(tx, 5000, "pinned", "mem", KindHeap); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if next := fx.cat.AllocOID(); next <= 5000 {
		t.Fatalf("AllocOID = %d after pinned 5000", next)
	}
}

func TestDropRelation(t *testing.T) {
	fx := newFixture(t)
	tx, _ := fx.mgr.Begin()
	if _, err := fx.cat.CreateRelation(tx, "temp", "mem", KindHeap); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := fx.mgr.Begin()
	if err := fx.cat.DropRelation(tx2, "temp", tx2.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, ok := fx.cat.Relation("temp"); ok {
		t.Fatal("dropped relation visible")
	}
	if _, ok := fx.reopen(t).Relation("temp"); ok {
		t.Fatal("dropped relation visible after reload")
	}
	tx3, _ := fx.mgr.Begin()
	if err := fx.cat.DropRelation(tx3, "temp", tx3.Snapshot()); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double drop: %v", err)
	}
	_ = tx3.Abort()
}

func TestTypesAndFunctionsPersist(t *testing.T) {
	fx := newFixture(t)
	tx, _ := fx.mgr.Begin()
	if err := fx.cat.DefineType(tx, TypeInfo{Name: "HDF", Doc: "hierarchical data"}); err != nil {
		t.Fatal(err)
	}
	if err := fx.cat.DefineFunction(tx, FuncInfo{Name: "dims", TypeName: "HDF", Lang: "go", Doc: "dimensions"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	cat2 := fx.reopen(t)
	if ti, ok := cat2.Type("HDF"); !ok || ti.Doc != "hierarchical data" {
		t.Fatalf("type after reload: %+v %v", ti, ok)
	}
	fi, ok := cat2.Function("dims")
	if !ok || fi.TypeName != "HDF" || fi.Lang != "go" {
		t.Fatalf("function after reload: %+v %v", fi, ok)
	}
	if len(cat2.Types()) != 1 || len(cat2.Functions()) != 1 {
		t.Fatalf("listing sizes: %d types %d funcs", len(cat2.Types()), len(cat2.Functions()))
	}
}

func TestTypeAbortRollsBack(t *testing.T) {
	fx := newFixture(t)
	tx, _ := fx.mgr.Begin()
	if err := fx.cat.DefineType(tx, TypeInfo{Name: "ghost"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, ok := fx.cat.Type("ghost"); ok {
		t.Fatal("aborted type visible")
	}
	tx2, _ := fx.mgr.Begin()
	if err := fx.cat.DefineType(tx2, TypeInfo{Name: "real"}); err != nil {
		t.Fatal(err)
	}
	if err := fx.cat.DefineType(tx2, TypeInfo{Name: "real"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate type: %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestNoteOID(t *testing.T) {
	fx := newFixture(t)
	fx.cat.NoteOID(9999)
	if next := fx.cat.AllocOID(); next != 10000 {
		t.Fatalf("AllocOID after NoteOID(9999) = %d", next)
	}
}
