// Package catalog implements the system catalogs: the registry of
// relations (with their device placement), user-defined types, and
// user-defined functions. POSTGRES lets users "define new types for use
// in the database system" and register functions over them that are
// "dynamically loaded by the data manager when they are invoked";
// Inversion uses both to support strong typing on user files and
// classification functions that describe files. Here declarations are
// persisted in catalog heap relations (transactionally, like everything
// else), while function implementations are Go functions registered in
// an in-process registry — the moral equivalent of dynamic loading into
// the data manager's address space.
package catalog

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/rowenc"
	"repro/internal/txn"
)

// Well-known relation OIDs. OIDs 1 and 2 are the transaction logs (see
// package txn).
const (
	RelationsRel device.OID = 5
	TypesRel     device.OID = 6
	FunctionsRel device.OID = 7

	// FirstUserOID is where dynamically allocated OIDs begin.
	FirstUserOID device.OID = 100
)

// RelKind classifies a catalogued relation.
type RelKind uint8

// Relation kinds.
const (
	KindHeap  RelKind = iota // ordinary heap of records
	KindIndex                // B-tree pages
	KindVirtual
)

// RelInfo describes one relation.
type RelInfo struct {
	OID   device.OID
	Name  string
	Class string // device class the relation lives on
	Kind  RelKind
}

// TypeInfo describes a user-defined file type.
type TypeInfo struct {
	Name string
	Doc  string
}

// FuncInfo describes a registered function over a file type.
type FuncInfo struct {
	Name     string
	TypeName string // "" = applies to any type
	Lang     string // "go" here; "C" or "postquel" in the paper
	Doc      string
}

// Errors.
var (
	ErrExists   = errors.New("catalog: already defined")
	ErrNotFound = errors.New("catalog: not found")
)

// Placer creates relations on a device class; *device.Switch satisfies
// it.
type Placer interface {
	Place(rel device.OID, class string) error
}

// Catalog is the system catalog.
type Catalog struct {
	mu      sync.Mutex
	rels    *heap.Relation
	types   *heap.Relation
	funcs   *heap.Relation
	placer  Placer
	byName  map[string]RelInfo
	byOID   map[device.OID]RelInfo
	typeMap map[string]TypeInfo
	funcMap map[string]FuncInfo
	nextOID device.OID
}

func encodeRel(ri RelInfo) []byte {
	return rowenc.NewWriter(64).
		Uint32(uint32(ri.OID)).String(ri.Name).String(ri.Class).Uint32(uint32(ri.Kind)).Done()
}

func decodeRel(b []byte) (RelInfo, error) {
	r := rowenc.NewReader(b)
	ri := RelInfo{
		OID:  device.OID(r.Uint32()),
		Name: r.String(),
	}
	ri.Class = r.String()
	ri.Kind = RelKind(r.Uint32())
	return ri, r.Err()
}

// Open loads (or bootstraps) the catalog. The three catalog relations
// must already be placed on a device; mgr supplies snapshots for the
// load scan.
func Open(rels, types, funcs *heap.Relation, mgr *txn.Manager, placer Placer) (*Catalog, error) {
	c := &Catalog{
		rels:    rels,
		types:   types,
		funcs:   funcs,
		placer:  placer,
		byName:  make(map[string]RelInfo),
		byOID:   make(map[device.OID]RelInfo),
		typeMap: make(map[string]TypeInfo),
		funcMap: make(map[string]FuncInfo),
		nextOID: FirstUserOID,
	}
	snap := mgr.CurrentSnapshot()
	err := rels.Scan(snap, func(_ heap.TID, payload []byte) (bool, error) {
		ri, err := decodeRel(payload)
		if err != nil {
			return false, err
		}
		c.byName[ri.Name] = ri
		c.byOID[ri.OID] = ri
		if ri.OID >= c.nextOID {
			c.nextOID = ri.OID + 1
		}
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	err = types.Scan(snap, func(_ heap.TID, payload []byte) (bool, error) {
		r := rowenc.NewReader(payload)
		ti := TypeInfo{Name: r.String(), Doc: r.String()}
		if err := r.Err(); err != nil {
			return false, err
		}
		c.typeMap[ti.Name] = ti
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	err = funcs.Scan(snap, func(_ heap.TID, payload []byte) (bool, error) {
		r := rowenc.NewReader(payload)
		fi := FuncInfo{Name: r.String(), TypeName: r.String(), Lang: r.String(), Doc: r.String()}
		if err := r.Err(); err != nil {
			return false, err
		}
		c.funcMap[fi.Name] = fi
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	return c, nil
}

// AllocOID hands out a fresh object identifier. Durability of the
// allocation comes from the catalog row (or naming row) the caller
// writes with it; after a crash, Open rescans and resumes above every
// recorded OID.
func (c *Catalog) AllocOID() device.OID {
	c.mu.Lock()
	defer c.mu.Unlock()
	oid := c.nextOID
	c.nextOID++
	return oid
}

// NoteOID raises the allocator above an OID recorded elsewhere (the
// naming table records directory OIDs that own no relation).
func (c *Catalog) NoteOID(oid device.OID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if oid >= c.nextOID {
		c.nextOID = oid + 1
	}
}

// CreateRelation allocates an OID, places the relation on its device
// class, and records it, all under tx. If tx aborts the in-memory
// registration is rolled back (the device-side creation is left behind,
// like POSTGRES, and is harmless).
func (c *Catalog) CreateRelation(tx *txn.Tx, name, class string, kind RelKind) (RelInfo, error) {
	return c.createRelation(tx, 0, name, class, kind)
}

// CreateRelationAt is CreateRelation with a caller-chosen OID; the
// Inversion layer uses it so a file's data table OID equals the file's
// own object identifier (the table name inv<oid> is computed from it).
func (c *Catalog) CreateRelationAt(tx *txn.Tx, oid device.OID, name, class string, kind RelKind) (RelInfo, error) {
	return c.createRelation(tx, oid, name, class, kind)
}

func (c *Catalog) createRelation(tx *txn.Tx, oid device.OID, name, class string, kind RelKind) (RelInfo, error) {
	c.mu.Lock()
	if _, ok := c.byName[name]; ok {
		c.mu.Unlock()
		return RelInfo{}, fmt.Errorf("%w: relation %q", ErrExists, name)
	}
	if oid == 0 {
		oid = c.nextOID
		c.nextOID++
	} else if _, ok := c.byOID[oid]; ok {
		c.mu.Unlock()
		return RelInfo{}, fmt.Errorf("%w: oid %d", ErrExists, oid)
	} else if oid >= c.nextOID {
		c.nextOID = oid + 1
	}
	ri := RelInfo{OID: oid, Name: name, Class: class, Kind: kind}
	c.byName[name] = ri
	c.byOID[oid] = ri
	c.mu.Unlock()

	rollback := func() {
		c.mu.Lock()
		delete(c.byName, name)
		delete(c.byOID, oid)
		c.mu.Unlock()
	}
	if err := c.placer.Place(oid, class); err != nil {
		rollback()
		return RelInfo{}, err
	}
	if _, err := c.rels.Insert(tx.ID(), encodeRel(ri)); err != nil {
		rollback()
		return RelInfo{}, err
	}
	tx.OnEnd(func(committed bool) {
		if !committed {
			rollback()
		}
	})
	return ri, nil
}

// DropRelation removes the catalog row under tx. The in-memory entry
// disappears immediately and returns if tx aborts.
func (c *Catalog) DropRelation(tx *txn.Tx, name string, snap *txn.Snapshot) error {
	c.mu.Lock()
	ri, ok := c.byName[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: relation %q", ErrNotFound, name)
	}
	delete(c.byName, name)
	delete(c.byOID, ri.OID)
	c.mu.Unlock()

	var tid heap.TID
	found := false
	err := c.rels.Scan(snap, func(t heap.TID, payload []byte) (bool, error) {
		got, err := decodeRel(payload)
		if err != nil {
			return false, err
		}
		if got.Name == name {
			tid, found = t, true
			return true, nil
		}
		return false, nil
	})
	if err != nil {
		return err
	}
	if found {
		if err := c.rels.Delete(tx.ID(), tid); err != nil {
			return err
		}
	}
	tx.OnEnd(func(committed bool) {
		if !committed {
			c.mu.Lock()
			c.byName[name] = ri
			c.byOID[ri.OID] = ri
			c.mu.Unlock()
		}
	})
	return nil
}

// Relation looks a relation up by name.
func (c *Catalog) Relation(name string) (RelInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ri, ok := c.byName[name]
	return ri, ok
}

// RelationByOID looks a relation up by OID.
func (c *Catalog) RelationByOID(oid device.OID) (RelInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ri, ok := c.byOID[oid]
	return ri, ok
}

// Relations lists every catalogued relation.
func (c *Catalog) Relations() []RelInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RelInfo, 0, len(c.byName))
	for _, ri := range c.byName {
		out = append(out, ri)
	}
	return out
}

// DefineType records a new file type ("A new file type is declared by
// issuing a define type command to the database system").
func (c *Catalog) DefineType(tx *txn.Tx, ti TypeInfo) error {
	c.mu.Lock()
	if _, ok := c.typeMap[ti.Name]; ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: type %q", ErrExists, ti.Name)
	}
	c.typeMap[ti.Name] = ti
	c.mu.Unlock()

	row := rowenc.NewWriter(32).String(ti.Name).String(ti.Doc).Done()
	if _, err := c.types.Insert(tx.ID(), row); err != nil {
		c.mu.Lock()
		delete(c.typeMap, ti.Name)
		c.mu.Unlock()
		return err
	}
	tx.OnEnd(func(committed bool) {
		if !committed {
			c.mu.Lock()
			delete(c.typeMap, ti.Name)
			c.mu.Unlock()
		}
	})
	return nil
}

// Type looks up a file type.
func (c *Catalog) Type(name string) (TypeInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ti, ok := c.typeMap[name]
	return ti, ok
}

// Types lists all defined types.
func (c *Catalog) Types() []TypeInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TypeInfo, 0, len(c.typeMap))
	for _, ti := range c.typeMap {
		out = append(out, ti)
	}
	return out
}

// DefineFunction records a function declaration.
func (c *Catalog) DefineFunction(tx *txn.Tx, fi FuncInfo) error {
	c.mu.Lock()
	if _, ok := c.funcMap[fi.Name]; ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: function %q", ErrExists, fi.Name)
	}
	c.funcMap[fi.Name] = fi
	c.mu.Unlock()

	row := rowenc.NewWriter(64).
		String(fi.Name).String(fi.TypeName).String(fi.Lang).String(fi.Doc).Done()
	if _, err := c.funcs.Insert(tx.ID(), row); err != nil {
		c.mu.Lock()
		delete(c.funcMap, fi.Name)
		c.mu.Unlock()
		return err
	}
	tx.OnEnd(func(committed bool) {
		if !committed {
			c.mu.Lock()
			delete(c.funcMap, fi.Name)
			c.mu.Unlock()
		}
	})
	return nil
}

// Function looks up a function declaration.
func (c *Catalog) Function(name string) (FuncInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	fi, ok := c.funcMap[name]
	return fi, ok
}

// Functions lists all declared functions.
func (c *Catalog) Functions() []FuncInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]FuncInfo, 0, len(c.funcMap))
	for _, fi := range c.funcMap {
		out = append(out, fi)
	}
	return out
}
