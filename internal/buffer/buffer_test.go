package buffer

import (
	"sync"
	"testing"

	"repro/internal/device"
)

func newPool(t *testing.T, capacity int) (*Pool, *device.Switch) {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	return NewPool(sw, capacity), sw
}

func TestGetMissAndHit(t *testing.T) {
	p, sw := newPool(t, 4)
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Extend(1); err != nil {
		t.Fatal(err)
	}
	f, err := p.Get(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f, false)
	f2, err := p.Get(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f2, false)
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", st.Hits, st.Misses)
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	p, sw := newPool(t, 2)
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	// Create 3 pages; pool holds 2.
	for i := 0; i < 3; i++ {
		f, _, err := p.NewPage(1)
		if err != nil {
			t.Fatal(err)
		}
		f.Lock()
		f.Data[0] = byte(i + 1)
		f.Unlock()
		p.Release(f, true)
	}
	// Page 0 must have been evicted and written back; read it again.
	f, err := p.Get(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Lock()
	got := f.Data[0]
	f.Unlock()
	p.Release(f, false)
	if got != 1 {
		t.Fatalf("evicted page lost contents: %d", got)
	}
	if p.Stats().Writebacks == 0 {
		t.Fatal("no writebacks recorded")
	}
}

func TestPinnedFramesNotEvicted(t *testing.T) {
	p, sw := newPool(t, 2)
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	f0, _, err := p.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	// Keep f0 pinned while churning more pages than capacity.
	var frames []*Frame
	for i := 0; i < 5; i++ {
		f, _, err := p.NewPage(1)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	f0.Lock()
	f0.Data[0] = 0xEE
	f0.Unlock()
	for _, f := range frames {
		p.Release(f, false)
	}
	p.Release(f0, true)
	f, err := p.Get(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Lock()
	got := f.Data[0]
	f.Unlock()
	p.Release(f, false)
	if got != 0xEE {
		t.Fatal("pinned frame was evicted mid-use")
	}
}

func TestFlushAllThenCrashKeepsData(t *testing.T) {
	p, sw := newPool(t, 8)
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	f, _, err := p.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	f.Lock()
	f.Data[0] = 0x42
	f.Unlock()
	p.Release(f, true)
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.Crash()
	f, err = p.Get(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Lock()
	got := f.Data[0]
	f.Unlock()
	p.Release(f, false)
	if got != 0x42 {
		t.Fatal("flushed page lost after crash")
	}
}

func TestCrashDropsUnflushed(t *testing.T) {
	p, sw := newPool(t, 8)
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	f, _, err := p.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	f.Lock()
	f.Data[0] = 0x42
	f.Unlock()
	p.Release(f, true)
	p.Crash() // no flush
	f, err = p.Get(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Lock()
	got := f.Data[0]
	f.Unlock()
	p.Release(f, false)
	if got != 0 {
		t.Fatal("unflushed dirty page survived crash")
	}
}

func TestInvalidateRel(t *testing.T) {
	p, sw := newPool(t, 8)
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	if err := sw.Place(2, ""); err != nil {
		t.Fatal(err)
	}
	f1, _, _ := p.NewPage(1)
	p.Release(f1, true)
	f2, _, _ := p.NewPage(2)
	f2.Lock()
	f2.Data[0] = 7
	f2.Unlock()
	p.Release(f2, true)
	p.InvalidateRel(1)
	// Relation 2 still cached and intact.
	f, err := p.Get(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Lock()
	got := f.Data[0]
	f.Unlock()
	p.Release(f, false)
	if got != 7 {
		t.Fatal("InvalidateRel damaged other relation")
	}
}

func TestConcurrentGets(t *testing.T) {
	p, sw := newPool(t, 16)
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := sw.Extend(1); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				pn := uint32((g*7 + i) % 32)
				f, err := p.Get(1, pn)
				if err != nil {
					t.Error(err)
					return
				}
				f.Lock()
				f.Data[1] = byte(pn)
				f.Unlock()
				p.Release(f, true)
			}
		}(g)
	}
	wg.Wait()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultCapacity(t *testing.T) {
	p, _ := newPool(t, 0)
	if p.Capacity() != DefaultBuffers {
		t.Fatalf("capacity = %d", p.Capacity())
	}
}
