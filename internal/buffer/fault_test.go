package buffer

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/device"
)

// newFaultyPool builds a pool over a Faulty-wrapped switch with one
// relation of n backend pages.
func newFaultyPool(t *testing.T, capacity, n int) (*Pool, *device.Faulty) {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := sw.Extend(1); err != nil {
			t.Fatal(err)
		}
	}
	faulty := device.NewFaulty(sw, 1)
	return NewPool(faulty, capacity), faulty
}

// dirtyPage loads page pn, stamps its first byte, and releases it
// dirty.
func dirtyPage(t *testing.T, p *Pool, pn uint32, b byte) {
	t.Helper()
	f, err := p.Get(1, pn)
	if err != nil {
		t.Fatal(err)
	}
	f.Lock()
	f.Data[0] = b
	f.Unlock()
	p.Release(f, true)
}

func readByte(t *testing.T, p *Pool, pn uint32) byte {
	t.Helper()
	f, err := p.Get(1, pn)
	if err != nil {
		t.Fatal(err)
	}
	f.Lock()
	b := f.Data[0]
	f.Unlock()
	p.Release(f, false)
	return b
}

// TestEvictionWritebackFailureKeepsDirtyPage is the regression the
// seed code fails: a victim whose writeback errors must stay cached
// (still dirty), not be discarded as the only copy of the data.
func TestEvictionWritebackFailureKeepsDirtyPage(t *testing.T) {
	p, faulty := newFaultyPool(t, 2, 3)
	dirtyPage(t, p, 0, 0xA1)
	dirtyPage(t, p, 1, 0xA2)

	// Page 0 is the LRU victim; its writeback fails.
	faulty.FailIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return page == 0 }, nil)
	if _, err := p.Get(1, 2); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Get over failing eviction: %v", err)
	}

	// The device heals; the dirty page must still be in the cache and
	// must reach the backend on the next flush.
	faulty.Clear()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	p.Crash() // drop the cache: the next read comes from the backend
	if got := readByte(t, p, 0); got != 0xA1 {
		t.Fatalf("dirty page lost by failed eviction: %#x", got)
	}
}

// TestFlushAllPartialFailure checks the accounting contract: a flush
// that dies mid-way counts only the successful writebacks and leaves
// the unflushed frames dirty, so a retry completes the job.
func TestFlushAllPartialFailure(t *testing.T) {
	p, faulty := newFaultyPool(t, 8, 4)
	for pn := uint32(0); pn < 4; pn++ {
		dirtyPage(t, p, pn, byte(0xB0+pn))
	}
	wbBefore := p.Stats().Writebacks

	// Writes go out in (rel, page) order; the third fails.
	faulty.FailNth(device.FaultWrite, 3, nil)
	err := p.FlushAll()
	if !errors.Is(err, device.ErrInjected) {
		t.Fatalf("FlushAll: %v", err)
	}
	if !strings.Contains(err.Error(), "buffer: flush") {
		t.Fatalf("error lacks flush context: %v", err)
	}
	wb := p.Stats().Writebacks
	if wb-wbBefore != 2 {
		t.Fatalf("writebacks after partial flush = %d, want 2 (failed write must not count)", wb-wbBefore)
	}

	// Retry flushes the remaining dirty frames — no more, no fewer.
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	wb = p.Stats().Writebacks
	if wb-wbBefore != 4 {
		t.Fatalf("writebacks after retry = %d, want 4", wb-wbBefore)
	}
	p.Crash()
	for pn := uint32(0); pn < 4; pn++ {
		if got := readByte(t, p, pn); got != byte(0xB0+pn) {
			t.Fatalf("page %d lost in partial flush: %#x", pn, got)
		}
	}
}

// TestFlushRelFailureLeavesFrameDirty drives the same contract through
// the per-relation flush path.
func TestFlushRelFailureLeavesFrameDirty(t *testing.T) {
	p, faulty := newFaultyPool(t, 8, 1)
	dirtyPage(t, p, 0, 0xC1)
	faulty.FailNth(device.FaultWrite, 1, nil)
	if err := p.FlushRel(1); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("FlushRel: %v", err)
	}
	if err := p.FlushRel(1); err != nil {
		t.Fatalf("retry: %v", err)
	}
	p.Crash()
	if got := readByte(t, p, 0); got != 0xC1 {
		t.Fatalf("page lost: %#x", got)
	}
}

// TestGetReadFailureDoesNotCachePartialFrame: a failed miss must not
// leave a half-initialised frame behind.
func TestGetReadFailureDoesNotCachePartialFrame(t *testing.T) {
	p, faulty := newFaultyPool(t, 4, 1)
	faulty.FailNth(device.FaultRead, 1, nil)
	if _, err := p.Get(1, 0); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Get: %v", err)
	}
	// The retry must be a fresh, successful read, not a cached husk.
	f, err := p.Get(1, 0)
	if err != nil {
		t.Fatalf("retry: %v", err)
	}
	p.Release(f, false)
	st := p.Stats()
	if st.Hits != 0 || st.Misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2", st.Hits, st.Misses)
	}
}

// TestNewPageExtendFailure: a failing Extend surfaces cleanly and the
// pool keeps working.
func TestNewPageExtendFailure(t *testing.T) {
	p, faulty := newFaultyPool(t, 4, 0)
	faulty.FailNth(device.FaultExtend, 1, nil)
	if _, _, err := p.NewPage(1); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("NewPage: %v", err)
	}
	f, pn, err := p.NewPage(1)
	if err != nil {
		t.Fatalf("NewPage after heal: %v", err)
	}
	if pn != 0 {
		t.Fatalf("first successful page = %d", pn)
	}
	p.Release(f, true)
}

// TestReleaseUnderflowPanics: double-Release is a caller bug the pool
// must refuse to absorb silently.
func TestReleaseUnderflowPanics(t *testing.T) {
	p, _ := newFaultyPool(t, 4, 1)
	f, err := p.Get(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f, false)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double Release did not panic")
		}
		if !strings.Contains(r.(string), "unpinned frame") {
			t.Fatalf("panic message: %v", r)
		}
	}()
	p.Release(f, false)
}
