package buffer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/page"
	"sync/atomic"
)

// countingBackend counts ReadPage calls and can hold them on a gate so
// a test can pile up concurrent misses behind one in-flight load.
type countingBackend struct {
	Backend
	reads atomic.Int64
	gate  chan struct{} // when non-nil, ReadPage blocks until closed
}

func (b *countingBackend) ReadPage(rel device.OID, pn uint32, buf []byte) error {
	b.reads.Add(1)
	if b.gate != nil {
		<-b.gate
	}
	return b.Backend.ReadPage(rel, pn, buf)
}

// TestConcurrentGetSingleFlight: concurrent misses on the same page
// must issue exactly one backend read and share one frame — the
// waiters block on the loading frame, not on a duplicate I/O.
func TestConcurrentGetSingleFlight(t *testing.T) {
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Extend(1); err != nil {
		t.Fatal(err)
	}
	cb := &countingBackend{Backend: sw, gate: make(chan struct{})}
	p := NewPool(cb, 8)

	const goroutines = 8
	frames := make([]*Frame, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			frames[g], errs[g] = p.Get(1, 0)
		}(g)
	}
	// Hold the loader on the gate until every other goroutine is
	// waiting on the loading frame, so the misses really are
	// concurrent, then let the load finish.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().LoadWaits < goroutines-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d goroutines waited on the load", p.Stats().LoadWaits, goroutines-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(cb.gate)
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
		if frames[g] != frames[0] {
			t.Fatalf("goroutine %d got a duplicate frame for the same page", g)
		}
		p.Release(frames[g], false)
	}
	if got := cb.reads.Load(); got != 1 {
		t.Fatalf("backend reads = %d, want 1 (single-flight)", got)
	}
	st := p.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", st.Hits, st.Misses, goroutines-1)
	}
}

// TestOvercommitCounted: when every frame is pinned the pool exceeds
// capacity rather than deadlocking, and says so in its stats.
func TestOvercommitCounted(t *testing.T) {
	p, sw := newPool(t, 2)
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	var frames []*Frame
	for i := 0; i < 3; i++ {
		f, _, err := p.NewPage(1)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if got := p.Stats().Overcommits; got != 1 {
		t.Fatalf("overcommits = %d, want 1", got)
	}
	for _, f := range frames {
		p.Release(f, false)
	}
	// With frames unpinned again, the next demand shrinks the pool back
	// to capacity instead of overcommitting further.
	f, _, err := p.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f, true)
	st := p.Stats()
	if st.Overcommits != 1 {
		t.Fatalf("overcommits after recovery = %d, want 1", st.Overcommits)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded while shrinking back to capacity")
	}
}

// writeHookBackend runs a hook before each backend write; a non-nil
// hook error is returned without touching the underlying backend.
type writeHookBackend struct {
	Backend
	onWrite func(rel device.OID, pn uint32) error
}

func (b *writeHookBackend) WritePage(rel device.OID, pn uint32, buf []byte) error {
	if b.onWrite != nil {
		if err := b.onWrite(rel, pn); err != nil {
			return err
		}
	}
	return b.Backend.WritePage(rel, pn, buf)
}

// newHookPool builds a pool of the given capacity over a
// writeHookBackend wrapping a switch with n pre-extended pages.
func newHookPool(t *testing.T, capacity, n int) (*Pool, *writeHookBackend, *device.Switch) {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := sw.Extend(1); err != nil {
			t.Fatal(err)
		}
	}
	hb := &writeHookBackend{Backend: sw}
	return NewPool(hb, capacity), hb, sw
}

// TestFlushDuringFailingEvictionWriteback is the durability race the
// pre-clearing protocol loses: an eviction writeback is in flight (and
// will fail) while a commit force runs. The force must see the page as
// dirty and write it itself — if FlushAll returns success, the page is
// durably on the backend even though the eviction's own write errors
// out afterwards. Under the old protocol the eviction cleared the
// dirty bit before its write, the force skipped the page, and a
// committed transaction's data went missing on crash.
func TestFlushDuringFailingEvictionWriteback(t *testing.T) {
	p, hb, sw := newHookPool(t, 2, 3)
	var first atomic.Bool
	inFlight := make(chan struct{})
	gate := make(chan struct{})
	hb.onWrite = func(rel device.OID, pn uint32) error {
		if pn == 0 && first.CompareAndSwap(false, true) {
			close(inFlight)
			<-gate
			return device.ErrInjected
		}
		return nil
	}
	dirtyPage(t, p, 0, 0xD1)
	readByte(t, p, 1) // newer stamp: page 0 is the eviction victim

	getErr := make(chan error, 1)
	go func() {
		f, err := p.Get(1, 2) // demands room: evicts page 0, write blocks
		if err == nil {
			p.Release(f, false)
		}
		getErr <- err
	}()
	<-inFlight

	// Commit force overlapping the doomed writeback.
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll during in-flight eviction writeback: %v", err)
	}
	buf := make(page.Page, page.Size)
	if err := sw.ReadPage(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xD1 {
		t.Fatalf("FlushAll succeeded but page 0 not durable on backend: %#x", buf[0])
	}

	close(gate)
	if err := <-getErr; !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Get over failing eviction: %v", err)
	}
	// The page survives in cache and still reads back.
	if got := readByte(t, p, 0); got != 0xD1 {
		t.Fatalf("page 0 after failed eviction = %#x", got)
	}
}

// TestEvictionVictimRepinnedDuringWriteback: a victim that is re-pinned
// mid-writeback and released clean goes back on its shard's LRU; the
// eviction must then leave it alone. Deleting it from the frame map
// while its LRU element survives would strand a stale node that a later
// victim scan claims as a bogus victim.
func TestEvictionVictimRepinnedDuringWriteback(t *testing.T) {
	p, hb, _ := newHookPool(t, 2, 3)
	var once sync.Once
	inFlight := make(chan struct{})
	gate := make(chan struct{})
	hb.onWrite = func(rel device.OID, pn uint32) error {
		if pn == 0 {
			once.Do(func() { close(inFlight) })
			<-gate
		}
		return nil
	}
	dirtyPage(t, p, 0, 0xE1)
	readByte(t, p, 1) // newer stamp: page 0 is the eviction victim

	getErr := make(chan error, 1)
	go func() {
		f, err := p.Get(1, 2)
		if err == nil {
			p.Release(f, false)
		}
		getErr <- err
	}()
	<-inFlight

	// Re-pin the victim while its writeback is blocked, then release it
	// clean: Release relinks it on the LRU, so it is no longer the
	// eviction's to drop. (No frame latch here — the writeback holds the
	// read latch for the duration.)
	f0, err := p.Get(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f0, false)
	close(gate)
	if err := <-getErr; err != nil {
		t.Fatal(err)
	}

	// The re-linked frame must still be cached, on the LRU, and every
	// LRU node must point at a mapped frame (no stale nodes).
	s := p.shard(Key{1, 0})
	s.mu.Lock()
	f, ok := s.frames[Key{1, 0}]
	onLRU := ok && f.el != nil
	s.mu.Unlock()
	if !ok {
		t.Fatal("re-pinned victim was deleted from the frame map")
	}
	if !onLRU {
		t.Fatal("re-pinned victim is cached but off the LRU")
	}
	total := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			lf := el.Value.(*Frame)
			if s.frames[lf.Key] != lf {
				t.Errorf("stale LRU node for %v", lf.Key)
			}
		}
		total += len(s.frames)
		s.mu.Unlock()
	}
	if got := p.nframes.Load(); got != int64(total) {
		t.Fatalf("nframes = %d, cached frames = %d", got, total)
	}
}

// TestCrashGetFrameCountConsistency races Crash against concurrent
// Gets and checks that the frame count matches the cached frames once
// everything quiesces: an install-and-count that interleaves a Crash
// must not skew nframes for the life of the pool.
func TestCrashGetFrameCountConsistency(t *testing.T) {
	p, _ := newFaultyPool(t, 8, 32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f, err := p.Get(1, uint32((g*7+i)%32))
				if err != nil {
					t.Error(err)
					return
				}
				p.Release(f, false)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		p.Crash()
	}
	close(stop)
	wg.Wait()
	total := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		total += len(s.frames)
		s.mu.Unlock()
	}
	if got := p.nframes.Load(); got != int64(total) {
		t.Fatalf("nframes = %d but %d frames cached", got, total)
	}
}
