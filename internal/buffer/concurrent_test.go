package buffer

import (
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"sync/atomic"
)

// countingBackend counts ReadPage calls and can hold them on a gate so
// a test can pile up concurrent misses behind one in-flight load.
type countingBackend struct {
	Backend
	reads atomic.Int64
	gate  chan struct{} // when non-nil, ReadPage blocks until closed
}

func (b *countingBackend) ReadPage(rel device.OID, pn uint32, buf []byte) error {
	b.reads.Add(1)
	if b.gate != nil {
		<-b.gate
	}
	return b.Backend.ReadPage(rel, pn, buf)
}

// TestConcurrentGetSingleFlight: concurrent misses on the same page
// must issue exactly one backend read and share one frame — the
// waiters block on the loading frame, not on a duplicate I/O.
func TestConcurrentGetSingleFlight(t *testing.T) {
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Extend(1); err != nil {
		t.Fatal(err)
	}
	cb := &countingBackend{Backend: sw, gate: make(chan struct{})}
	p := NewPool(cb, 8)

	const goroutines = 8
	frames := make([]*Frame, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			frames[g], errs[g] = p.Get(1, 0)
		}(g)
	}
	// Hold the loader on the gate until every other goroutine is
	// waiting on the loading frame, so the misses really are
	// concurrent, then let the load finish.
	deadline := time.Now().Add(5 * time.Second)
	for p.Stats().LoadWaits < goroutines-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d goroutines waited on the load", p.Stats().LoadWaits, goroutines-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(cb.gate)
	wg.Wait()

	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
		if frames[g] != frames[0] {
			t.Fatalf("goroutine %d got a duplicate frame for the same page", g)
		}
		p.Release(frames[g], false)
	}
	if got := cb.reads.Load(); got != 1 {
		t.Fatalf("backend reads = %d, want 1 (single-flight)", got)
	}
	st := p.Stats()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", st.Hits, st.Misses, goroutines-1)
	}
}

// TestOvercommitCounted: when every frame is pinned the pool exceeds
// capacity rather than deadlocking, and says so in its stats.
func TestOvercommitCounted(t *testing.T) {
	p, sw := newPool(t, 2)
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	var frames []*Frame
	for i := 0; i < 3; i++ {
		f, _, err := p.NewPage(1)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
	}
	if got := p.Stats().Overcommits; got != 1 {
		t.Fatalf("overcommits = %d, want 1", got)
	}
	for _, f := range frames {
		p.Release(f, false)
	}
	// With frames unpinned again, the next demand shrinks the pool back
	// to capacity instead of overcommitting further.
	f, _, err := p.NewPage(1)
	if err != nil {
		t.Fatal(err)
	}
	p.Release(f, true)
	st := p.Stats()
	if st.Overcommits != 1 {
		t.Fatalf("overcommits after recovery = %d, want 1", st.Overcommits)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded while shrinking back to capacity")
	}
}
