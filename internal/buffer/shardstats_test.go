package buffer

import (
	"testing"

	"repro/internal/device"
)

// TestShardStatsSumToGlobals drives a workload that hits, misses, and
// evicts, then checks the per-shard counters sum to the pool-wide ones
// and the per-shard frame counts sum to nframes.
func TestShardStatsSumToGlobals(t *testing.T) {
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	const rel device.OID = 100
	if err := sw.Place(rel, ""); err != nil {
		t.Fatal(err)
	}
	p := NewPool(sw, 8)
	// Create pages, then read them back twice through a pool smaller
	// than the set so both hits and capacity evictions occur.
	const pages = 24
	for i := 0; i < pages; i++ {
		f, _, err := p.NewPage(rel)
		if err != nil {
			t.Fatal(err)
		}
		p.Release(f, true)
	}
	for pass := 0; pass < 2; pass++ {
		for i := uint32(0); i < pages; i++ {
			// Two back-to-back Gets: the second is a guaranteed hit even
			// though the working set thrashes the 8-frame pool.
			for j := 0; j < 2; j++ {
				f, err := p.Get(rel, i)
				if err != nil {
					t.Fatal(err)
				}
				p.Release(f, false)
			}
		}
	}

	st := p.Stats()
	var hits, misses, evictions, writebacks int64
	var frames int
	ss := p.ShardStats()
	if len(ss) != numShards {
		t.Fatalf("ShardStats len = %d, want %d", len(ss), numShards)
	}
	for i, s := range ss {
		if s.Shard != i {
			t.Fatalf("shard index %d reported as %d", i, s.Shard)
		}
		hits += s.Hits
		misses += s.Misses
		evictions += s.Evictions
		writebacks += s.Writebacks
		frames += s.Frames
	}
	if hits != st.Hits || misses != st.Misses || evictions != st.Evictions || writebacks != st.Writebacks {
		t.Fatalf("shard sums (h=%d m=%d e=%d w=%d) != pool stats %+v",
			hits, misses, evictions, writebacks, st)
	}
	if got := p.nframes.Load(); int64(frames) != got {
		t.Fatalf("shard frame sum %d != nframes %d", frames, got)
	}
	if st.Evictions == 0 || st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("workload did not exercise all counters: %+v", st)
	}
}
