package buffer

import (
	"testing"
	"time"

	"repro/internal/device"
)

// dirtyPages creates n new dirty pages in rel, leaving them unpinned in
// the pool.
func dirtyPages(t *testing.T, p *Pool, rel device.OID, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		f, _, err := p.NewPage(rel)
		if err != nil {
			t.Fatal(err)
		}
		f.Lock()
		f.Data[0] = byte(i + 1)
		f.Unlock()
		p.Release(f, true)
	}
}

// waitFor polls cond for up to two seconds — the background writer runs
// on real time, so its effects are awaited, never assumed.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBGWriterWatermarkDrain: crossing the high watermark kicks the
// writer, which drains the dirty set down to the low watermark without
// any foreground flush.
func TestBGWriterWatermarkDrain(t *testing.T) {
	p, sw := newPool(t, 16)
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	// High=8, low=4, trickle effectively off so only the kick path runs.
	stop := p.StartBackgroundWriter(BGConfig{HighFrac: 0.5, LowFrac: 0.25, Interval: time.Hour})
	defer stop()
	dirtyPages(t, p, 1, 10)
	waitFor(t, "watermark drain", func() bool { return p.Stats().DirtyPages <= 4 })
	st := p.Stats()
	if st.BGWritebacks == 0 {
		t.Fatal("drain happened but BGWritebacks = 0")
	}
	if st.BGRounds == 0 {
		t.Fatal("drain happened but BGRounds = 0")
	}
	// The drained pages really reached the device: a full foreground
	// flush now has at most the low-watermark remainder to write.
	w0 := st.Writebacks
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if wrote := p.Stats().Writebacks - w0; wrote > 4 {
		t.Fatalf("FlushAll wrote %d pages after background drain, want <= 4", wrote)
	}
}

// TestBGWriterTrickle: below the watermark, the interval timer still
// drains the dirty set to zero.
func TestBGWriterTrickle(t *testing.T) {
	p, sw := newPool(t, 16)
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	stop := p.StartBackgroundWriter(BGConfig{HighFrac: 0.9, LowFrac: 0.5, Interval: 2 * time.Millisecond})
	defer stop()
	dirtyPages(t, p, 1, 3) // well under high=14: only the trickle can drain
	waitFor(t, "trickle drain", func() bool { return p.Stats().DirtyPages == 0 })
	if st := p.Stats(); st.BGWritebacks < 3 {
		t.Fatalf("BGWritebacks = %d after trickling 3 pages", st.BGWritebacks)
	}
}

// TestBGWriterStopIdempotent: the stop function is safe to call twice,
// a second concurrent start is a no-op, and after stopping, a fresh
// writer can be started.
func TestBGWriterStopIdempotent(t *testing.T) {
	p, _ := newPool(t, 8)
	stop := p.StartBackgroundWriter(BGConfig{})
	noop := p.StartBackgroundWriter(BGConfig{}) // second start: no-op
	noop()
	stop()
	stop() // idempotent
	stop2 := p.StartBackgroundWriter(BGConfig{Interval: time.Millisecond})
	defer stop2()
	if _, _, err := p.NewPage(0); err == nil {
		// rel 0 is unplaced on a bare switch; either way the pool must
		// still be usable — the real assertion is no deadlock/panic.
		t.Log("NewPage on unplaced rel unexpectedly succeeded")
	}
}

// TestBGWriterErrorsCountedAndPagesStayDirty: a device error during a
// background flush is counted and swallowed; the pages stay dirty, so
// the next foreground force still owns surfacing the failure.
func TestBGWriterErrorsCountedAndPagesStayDirty(t *testing.T) {
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	faulty := device.NewFaulty(sw, 1)
	p := NewPool(faulty, 16)
	if err := sw.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	faulty.FailIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return true }, nil)
	stop := p.StartBackgroundWriter(BGConfig{HighFrac: 0.25, LowFrac: 0.1, Interval: time.Hour})
	defer stop()
	dirtyPages(t, p, 1, 6) // trips high=4
	waitFor(t, "background error count", func() bool { return p.Stats().BGErrors > 0 })
	if st := p.Stats(); st.DirtyPages != 6 {
		t.Fatalf("DirtyPages = %d after failed background flush, want 6", st.DirtyPages)
	}
	// Foreground force surfaces the same error...
	if err := p.FlushAll(); err == nil {
		t.Fatal("FlushAll succeeded while the device rejects writes")
	}
	// ...and succeeds once the device heals, writing every page.
	faulty.Clear()
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.DirtyPages != 0 {
		t.Fatalf("DirtyPages = %d after healed FlushAll, want 0", st.DirtyPages)
	}
}
