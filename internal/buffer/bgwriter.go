package buffer

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// The background writer moves eviction writebacks off the foreground:
// a single goroutine watches the pool's dirty-page count and writes
// dirty frames back between watermarks, so foreground evictions almost
// always find clean victims and a commit's ForceData flushes only the
// small recent set the writer has not reached yet — not the whole
// pool. Like eviction writebacks, background writebacks do not sync:
// durability is still owned by the commit force, whose device sync
// covers every write issued before it. The writer is opt-in (started
// by the daemon and wall-clock benchmarks, never by the simulated-
// clock benchmarks, whose device charges must stay deterministic).

// BGConfig tunes the background writer. Zero values select defaults.
type BGConfig struct {
	// HighFrac of capacity: when the dirty count crosses this, the
	// writer is kicked and flushes down to LowFrac. Default 0.5.
	HighFrac float64
	// LowFrac of capacity: the target after a high-watermark flush.
	// Default 0.25.
	LowFrac float64
	// Interval between trickle flushes when the watermark never
	// trips; each trickle writes at most MaxBatch pages. Default 50ms.
	Interval time.Duration
	// MaxBatch bounds pages written per flush round, so a huge dirty
	// set is drained in slices that keep yielding the device to
	// foreground forces. Default 32.
	MaxBatch int
}

func (c *BGConfig) fill(capacity int) (high, low, batch int, ivl time.Duration) {
	hf, lf := c.HighFrac, c.LowFrac
	if hf <= 0 {
		hf = 0.5
	}
	if lf <= 0 {
		lf = 0.25
	}
	if lf > hf {
		lf = hf
	}
	high = int(hf * float64(capacity))
	if high < 1 {
		high = 1
	}
	low = int(lf * float64(capacity))
	batch = c.MaxBatch
	if batch <= 0 {
		batch = 32
	}
	ivl = c.Interval
	if ivl <= 0 {
		ivl = 50 * time.Millisecond
	}
	return
}

// bgWriter is the running writer's state.
type bgWriter struct {
	kick chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
	high int
}

// bgKick wakes the background writer if one is running and the dirty
// count has reached its high watermark. Non-blocking: a writer already
// awake coalesces kicks.
func (p *Pool) bgKick() {
	bg := p.bg.Load()
	if bg == nil || p.ndirty.Load() < int64(bg.high) {
		return
	}
	select {
	case bg.kick <- struct{}{}:
	default:
	}
}

// StartBackgroundWriter starts the pool's background writer and
// returns a stop function (idempotent; it blocks until the goroutine
// exits). Starting a second writer while one runs is a no-op that
// returns the equivalent stop function.
func (p *Pool) StartBackgroundWriter(cfg BGConfig) (stop func()) {
	high, low, batch, ivl := cfg.fill(p.capacity)
	bg := &bgWriter{
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		high: high,
	}
	if !p.bg.CompareAndSwap(nil, bg) {
		return func() {}
	}
	bg.wg.Add(1)
	go func() {
		defer bg.wg.Done()
		ticker := time.NewTicker(ivl)
		defer ticker.Stop()
		for {
			w := obs.BeginWaitLoop(obs.WaitBGWriterIdle, "bgwriter")
			select {
			case <-bg.stop:
				w.End()
				return
			case <-bg.kick:
				w.End()
				// High watermark: drain to the low watermark in
				// bounded slices, re-checking stop between slices so
				// shutdown never waits on a long drain.
				for p.ndirty.Load() > int64(low) {
					select {
					case <-bg.stop:
						return
					default:
					}
					if !p.bgFlush(batch) {
						break
					}
				}
			case <-ticker.C:
				w.End()
				// Trickle: keep the dirty set small even under light
				// load, so a commit force and the next checkpoint have
				// little left to write.
				if p.ndirty.Load() > 0 {
					p.bgFlush(batch)
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(bg.stop)
			bg.wg.Wait()
			p.bg.CompareAndSwap(bg, nil)
		})
	}
}

// bgFlush writes back up to limit dirty pages under the pool's
// standard durability protocol (dirty bit cleared only after a proven
// write, version-checked). Errors are counted and swallowed: the
// failed frames stay dirty, and the next foreground force will either
// succeed or surface the device error to a committer who can act on
// it. Reports whether progress was made (pages written and no error).
func (p *Pool) bgFlush(limit int) bool {
	n, err := p.flushFrames(p.snapshotDirty(nil, limit), true)
	if n > 0 {
		p.bgRounds.Add(1)
		obs.Flight().RecordLifecycle("bgwriter_flush", "", 0, int64(n))
	}
	if err != nil {
		p.bgErrors.Add(1)
		return false
	}
	return n > 0
}
