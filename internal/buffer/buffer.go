// Package buffer implements the shared in-memory cache of recently used
// 8 KB data pages. The paper: "POSTGRES maintains an in-memory shared
// cache of recently used 8 KByte data pages. The size of this cache is
// tunable when the file system is installed; as shipped, the system uses
// 64 buffers, but the version in use locally uses 300. Data pages are
// kicked out of this cache in LRU order, regardless of the device from
// which they came. Dirty pages are written to backing store before being
// deleted from the cache."
package buffer

import (
	"container/list"
	"fmt"
	"sort"
	"sync"

	"repro/internal/device"
	"repro/internal/page"
)

// DefaultBuffers is the as-shipped cache size; LocalBuffers is the size
// the Berkeley installation ran with.
const (
	DefaultBuffers = 64
	LocalBuffers   = 300
)

// Backend supplies and accepts pages; *device.Switch implements it.
type Backend interface {
	NPages(rel device.OID) (uint32, error)
	Extend(rel device.OID) (uint32, error)
	ReadPage(rel device.OID, page uint32, buf []byte) error
	WritePage(rel device.OID, page uint32, buf []byte) error
}

// Key names one cached page.
type Key struct {
	Rel  device.OID
	Page uint32
}

// Frame is one cached page. Callers must hold the frame via Pool.Get /
// Pool.NewPage, serialise access to Data with Lock/Unlock, and return
// it with Pool.Release.
type Frame struct {
	Key  Key
	Data page.Page

	mu    sync.Mutex
	pins  int
	dirty bool
	el    *list.Element
}

// Lock latches the frame's contents.
func (f *Frame) Lock() { f.mu.Lock() }

// Unlock releases the content latch.
func (f *Frame) Unlock() { f.mu.Unlock() }

// Pool is the shared LRU buffer cache.
type Pool struct {
	mu       sync.Mutex
	backend  Backend
	capacity int
	frames   map[Key]*Frame
	lru      *list.List // unpinned frames, front = least recently used

	hits, misses, writebacks int64
}

// NewPool returns a cache of the given capacity (in pages) over the
// backend. Capacity ≤ 0 selects DefaultBuffers.
func NewPool(backend Backend, capacity int) *Pool {
	if capacity <= 0 {
		capacity = DefaultBuffers
	}
	return &Pool{
		backend:  backend,
		capacity: capacity,
		frames:   make(map[Key]*Frame),
		lru:      list.New(),
	}
}

// Capacity reports the pool's frame budget.
func (p *Pool) Capacity() int { return p.capacity }

// Stats reports cache hits, misses, and dirty-page writebacks.
func (p *Pool) Stats() (hits, misses, writebacks int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses, p.writebacks
}

// evictLocked makes room for one more frame, writing back a dirty
// victim. Called with p.mu held. If every frame is pinned the pool
// overcommits rather than deadlocking.
//
// The victim is written back while still cached: if the writeback
// fails the frame stays in the map and the LRU (still dirty) and the
// error is returned, so the only copy of a dirty page is never
// discarded on a failing device.
func (p *Pool) evictLocked() error {
	for len(p.frames) >= p.capacity {
		el := p.lru.Front()
		if el == nil {
			return nil // all pinned: overcommit
		}
		f := el.Value.(*Frame)
		if f.dirty {
			f.Lock()
			err := p.backend.WritePage(f.Key.Rel, f.Key.Page, f.Data)
			f.Unlock()
			if err != nil {
				return fmt.Errorf("buffer: writeback %v: %w", f.Key, err)
			}
			p.writebacks++
			f.dirty = false
		}
		p.lru.Remove(el)
		f.el = nil
		delete(p.frames, f.Key)
	}
	return nil
}

// Get returns the frame for (rel, pageNo), pinned. On a miss the page
// is read from the backend.
func (p *Pool) Get(rel device.OID, pageNo uint32) (*Frame, error) {
	p.mu.Lock()
	key := Key{rel, pageNo}
	if f, ok := p.frames[key]; ok {
		p.hits++
		f.pins++
		if f.el != nil {
			p.lru.Remove(f.el)
			f.el = nil
		}
		p.mu.Unlock()
		return f, nil
	}
	p.misses++
	if err := p.evictLocked(); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	f := &Frame{Key: key, Data: make(page.Page, page.Size), pins: 1}
	// Fill while holding the pool lock: backend reads are memory copies
	// plus virtual-clock charges, so this is cheap and makes the frame
	// fully initialised before any other goroutine can observe it.
	if err := p.backend.ReadPage(rel, pageNo, f.Data); err != nil {
		p.mu.Unlock()
		return nil, err
	}
	p.frames[key] = f
	p.mu.Unlock()
	return f, nil
}

// NewPage extends rel by one page and returns its pinned, zeroed frame.
func (p *Pool) NewPage(rel device.OID) (*Frame, uint32, error) {
	pageNo, err := p.backend.Extend(rel)
	if err != nil {
		return nil, 0, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.evictLocked(); err != nil {
		return nil, 0, err
	}
	key := Key{rel, pageNo}
	f := &Frame{Key: key, Data: make(page.Page, page.Size), pins: 1, dirty: true}
	p.frames[key] = f
	return f, pageNo, nil
}

// Release unpins a frame, marking it dirty if the caller modified it.
// Releasing a frame that is not pinned panics: a double-Release would
// otherwise silently corrupt the pin counts and LRU invariants.
func (p *Pool) Release(f *Frame, dirty bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f.pins <= 0 {
		panic(fmt.Sprintf("buffer: Release of unpinned frame %v (pins=%d)", f.Key, f.pins))
	}
	if dirty {
		f.dirty = true
	}
	f.pins--
	if f.pins == 0 && f.el == nil {
		f.el = p.lru.PushBack(f)
	}
}

// FlushAll writes every dirty frame to the backend in sorted
// (relation, page) order — the elevator discipline every real buffer
// manager uses, which keeps force-at-commit writes as sequential as the
// data allows. Frames stay cached. This is the force-at-commit policy
// the no-overwrite storage manager depends on for durability without a
// write-ahead log.
func (p *Pool) FlushAll() error {
	return p.flushWhere(func(Key) bool { return true })
}

// FlushRel writes the dirty frames of one relation, sorted by page.
func (p *Pool) FlushRel(rel device.OID) error {
	return p.flushWhere(func(k Key) bool { return k.Rel == rel })
}

func (p *Pool) flushWhere(match func(Key) bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var dirty []*Frame
	for _, f := range p.frames {
		if f.dirty && match(f.Key) {
			dirty = append(dirty, f)
		}
	}
	sort.Slice(dirty, func(i, j int) bool {
		a, b := dirty[i].Key, dirty[j].Key
		if a.Rel != b.Rel {
			return a.Rel < b.Rel
		}
		return a.Page < b.Page
	})
	for _, f := range dirty {
		f.Lock()
		err := p.backend.WritePage(f.Key.Rel, f.Key.Page, f.Data)
		f.Unlock()
		if err != nil {
			// The failed frame (and everything after it) stays dirty,
			// so a retry after the device heals flushes exactly the
			// pages that never made it out.
			return fmt.Errorf("buffer: flush %v: %w", f.Key, err)
		}
		p.writebacks++
		f.dirty = false
	}
	return nil
}

// InvalidateRel drops all frames of a relation without writing them,
// for use after dropping the relation.
func (p *Pool) InvalidateRel(rel device.OID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for key, f := range p.frames {
		if key.Rel == rel {
			if f.el != nil {
				p.lru.Remove(f.el)
			}
			delete(p.frames, key)
		}
	}
}

// Crash discards every frame, dirty or not, without writing. It
// simulates losing volatile memory so recovery tests can verify that
// the status log alone reconstructs a consistent state.
func (p *Pool) Crash() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.frames = make(map[Key]*Frame)
	p.lru.Init()
}

// NPages reports the relation's page count from the backend.
func (p *Pool) NPages(rel device.OID) (uint32, error) { return p.backend.NPages(rel) }
