// Package buffer implements the shared in-memory cache of recently used
// 8 KB data pages. The paper: "POSTGRES maintains an in-memory shared
// cache of recently used 8 KByte data pages. The size of this cache is
// tunable when the file system is installed; as shipped, the system uses
// 64 buffers, but the version in use locally uses 300. Data pages are
// kicked out of this cache in LRU order, regardless of the device from
// which they came. Dirty pages are written to backing store before being
// deleted from the cache."
//
// The pool is sharded: the frame map and LRU list are split across
// numShards lock shards keyed by a hash of (relation, page), so cache
// hits on different pages rarely contend. Capacity is still global —
// an atomic frame count — and eviction order is still global LRU: every
// frame carries a monotonic recency stamp assigned when it is unpinned,
// and the evictor claims the minimum-stamp frame across all shard LRU
// fronts. Backend I/O (miss fills, writebacks) runs with no shard lock
// held; concurrent misses on the same page single-flight on a loading
// placeholder frame.
package buffer

import (
	"container/list"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/page"
)

// DefaultBuffers is the as-shipped cache size; LocalBuffers is the size
// the Berkeley installation ran with.
const (
	DefaultBuffers = 64
	LocalBuffers   = 300
)

// numShards is the number of lock shards; must be a power of two.
const numShards = 16

// Backend supplies and accepts pages; *device.Switch implements it.
type Backend interface {
	NPages(rel device.OID) (uint32, error)
	Extend(rel device.OID) (uint32, error)
	ReadPage(rel device.OID, page uint32, buf []byte) error
	WritePage(rel device.OID, page uint32, buf []byte) error
}

// Key names one cached page.
type Key struct {
	Rel  device.OID
	Page uint32
}

// Frame is one cached page. Callers must hold the frame via Pool.Get /
// Pool.NewPage, serialise access to Data with Lock/Unlock (writers) or
// RLock/RUnlock (readers), and return it with Pool.Release.
type Frame struct {
	Key  Key
	Data page.Page

	mu    sync.RWMutex
	pins  int
	dirty bool
	el    *list.Element
	stamp uint64 // global LRU recency; assigned at unpin time

	// dirtyVer is bumped (under the shard lock) every time dirty is
	// set. A writeback snapshots it before the backend write and clears
	// dirty afterwards only if it is unchanged, so the bit never goes
	// false before the data is durably on the backend and a writer who
	// re-dirtied the frame mid-write is never silently cleaned.
	dirtyVer uint64

	// Single-flight miss handling: a frame is installed in the map in
	// loading state before the backend read; concurrent Gets wait on
	// loadDone instead of issuing duplicate reads.
	loading  bool
	loadDone chan struct{}
	loadErr  error
}

// Lock latches the frame's contents for writing. The try-fast-path
// keeps the uncontended case free of wait-event bookkeeping; only an
// actual block publishes a frame-latch wait.
func (f *Frame) Lock() {
	if f.mu.TryLock() {
		return
	}
	w := obs.BeginWait(obs.WaitFrameLatch, "")
	f.mu.Lock()
	w.End()
}

// Unlock releases the write latch.
func (f *Frame) Unlock() { f.mu.Unlock() }

// RLock latches the frame's contents for reading; readers share.
func (f *Frame) RLock() {
	if f.mu.TryRLock() {
		return
	}
	w := obs.BeginWait(obs.WaitFrameLatch, "")
	f.mu.RLock()
	w.End()
}

// RUnlock releases the read latch.
func (f *Frame) RUnlock() { f.mu.RUnlock() }

// shard is one lock shard: a slice of the frame map plus the LRU list
// of its unpinned frames, kept in ascending stamp order (front = least
// recently used), plus the shard's dirty set — the frames a flush must
// visit. Flushes iterate the dirty sets instead of every cached frame,
// so a commit force over a mostly-clean pool is O(dirty), not
// O(capacity).
type shard struct {
	mu     sync.Mutex
	frames map[Key]*Frame
	dirty  map[Key]*Frame // invariant: s.dirty[k] == s.frames[k] and is dirty
	lru    *list.List

	// Per-shard counters, always on (unlike the registry instruments,
	// which exist only once SetObs runs). They feed ShardStats and the
	// inv_stat_buffer catalog; each is one extra atomic add on a path
	// that already does one.
	hits, misses, evictions, writebacks atomic.Int64
}

// insertByStamp reinserts an unpinned frame into the LRU preserving
// stamp order, for paths (flush unpins, failed evictions) that must not
// count as a use.
func (s *shard) insertByStamp(f *Frame) {
	for el := s.lru.Back(); el != nil; el = el.Prev() {
		if el.Value.(*Frame).stamp <= f.stamp {
			f.el = s.lru.InsertAfter(f, el)
			return
		}
	}
	f.el = s.lru.PushFront(f)
}

// ShardStat is one lock shard's view of the cache: how many frames it
// currently holds and its share of the pool-wide counters.
type ShardStat struct {
	Shard      int
	Frames     int
	Hits       int64
	Misses     int64
	Evictions  int64
	Writebacks int64
}

// ShardStats reports per-shard cache statistics. Frame counts are read
// under each shard's lock in turn (not all at once), so the rows are
// each internally consistent but the set is not a single instant.
func (p *Pool) ShardStats() []ShardStat {
	out := make([]ShardStat, numShards)
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		frames := len(s.frames)
		s.mu.Unlock()
		out[i] = ShardStat{
			Shard:      i,
			Frames:     frames,
			Hits:       s.hits.Load(),
			Misses:     s.misses.Load(),
			Evictions:  s.evictions.Load(),
			Writebacks: s.writebacks.Load(),
		}
	}
	return out
}

// PoolStats is a snapshot of the pool's counters.
type PoolStats struct {
	Hits        int64 // Get served from cache
	Misses      int64 // Get that issued a backend read
	Writebacks  int64 // dirty pages written to the backend
	Evictions   int64 // frames dropped to make room
	Overcommits int64 // evictions that found every frame pinned
	LoadWaits   int64 // Gets that waited on another goroutine's load

	DirtyPages   int64 // frames currently dirty
	BGWritebacks int64 // writebacks issued by the background writer
	BGRounds     int64 // background-writer wakeups that wrote anything
	BGErrors     int64 // background flush attempts that hit a device error
}

// poolObs holds the pool's registry instruments, one set per shard so
// scrapes can spot a hot shard. All pointers are resolved once in
// SetObs; the hot path only does atomic adds on them.
type poolObs struct {
	hits, misses, evictions [numShards]*obs.Counter
	hitNs, loadNs, wbNs     [numShards]*obs.Histogram
}

// Pool is the shared LRU buffer cache.
type Pool struct {
	backend  Backend
	capacity int
	shards   [numShards]shard
	nframes  atomic.Int64  // cached frames, global, vs capacity
	clock    atomic.Uint64 // LRU recency stamps

	ndirty atomic.Int64 // frames currently dirty, across all shards

	hits, misses, writebacks          atomic.Int64
	evictions, overcommits, loadWaits atomic.Int64
	bgWritebacks, bgRounds, bgErrors  atomic.Int64

	bg atomic.Pointer[bgWriter] // background writer, when started

	obs atomic.Pointer[poolObs]
}

// markDirtyLocked sets the frame dirty and registers it in its shard's
// dirty set (maintaining the global dirty count). A frame no longer in
// the map — invalidated while pinned — is marked but not registered:
// nothing should ever flush it, exactly as when flushes scanned the
// frame map. Caller holds the shard lock.
func (p *Pool) markDirtyLocked(s *shard, f *Frame) {
	f.dirty = true
	if s.frames[f.Key] == f && s.dirty[f.Key] != f {
		s.dirty[f.Key] = f
		p.ndirty.Add(1)
	}
}

// clearDirtyLocked clears the frame's dirty bit and deregisters it.
// Caller holds the shard lock and has proven the contents durable (a
// successful backend write with an unchanged dirty version).
func (p *Pool) clearDirtyLocked(s *shard, f *Frame) {
	f.dirty = false
	if s.dirty[f.Key] == f {
		delete(s.dirty, f.Key)
		p.ndirty.Add(-1)
	}
}

// NewPool returns a cache of the given capacity (in pages) over the
// backend. Capacity ≤ 0 selects DefaultBuffers.
func NewPool(backend Backend, capacity int) *Pool {
	if capacity <= 0 {
		capacity = DefaultBuffers
	}
	p := &Pool{backend: backend, capacity: capacity}
	for i := range p.shards {
		p.shards[i].frames = make(map[Key]*Frame)
		p.shards[i].dirty = make(map[Key]*Frame)
		p.shards[i].lru = list.New()
	}
	return p
}

// shardIdx maps a key to its lock shard index.
func (p *Pool) shardIdx(k Key) int {
	h := uint64(k.Rel)<<32 | uint64(k.Page)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return int(h & (numShards - 1))
}

// shard maps a key to its lock shard.
func (p *Pool) shard(k Key) *shard { return &p.shards[p.shardIdx(k)] }

// SetObs attaches a metrics registry. Per-shard counters and latency
// histograms are registered under "buffer.shardNN.*"; human-facing
// output merges the shard series back into one family. Safe to call
// once, before or during concurrent use.
func (p *Pool) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	o := &poolObs{}
	for i := 0; i < numShards; i++ {
		prefix := fmt.Sprintf("buffer.shard%02d.", i)
		o.hits[i] = reg.Counter(prefix + "hits")
		o.misses[i] = reg.Counter(prefix + "misses")
		o.evictions[i] = reg.Counter(prefix + "evictions")
		o.hitNs[i] = reg.Histogram(prefix + "hit_ns")
		o.loadNs[i] = reg.Histogram(prefix + "load_ns")
		o.wbNs[i] = reg.Histogram(prefix + "writeback_ns")
	}
	p.obs.Store(o)
}

// Capacity reports the pool's frame budget.
func (p *Pool) Capacity() int { return p.capacity }

// Stats reports the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Hits:        p.hits.Load(),
		Misses:      p.misses.Load(),
		Writebacks:  p.writebacks.Load(),
		Evictions:   p.evictions.Load(),
		Overcommits: p.overcommits.Load(),
		LoadWaits:   p.loadWaits.Load(),

		DirtyPages:   p.ndirty.Load(),
		BGWritebacks: p.bgWritebacks.Load(),
		BGRounds:     p.bgRounds.Load(),
		BGErrors:     p.bgErrors.Load(),
	}
}

// pickVictim claims the globally least-recently-used unpinned frame:
// the minimum-stamp frame across all shard LRU fronts. The claim
// removes it from its LRU list but leaves the dirty bit alone — it is
// cleared only after the writeback durably succeeds, so a concurrent
// flush scanning for dirty frames can never mistake a page with an
// in-flight (and possibly failing) writeback for a clean one. Returns
// the frame, its dirty version at claim time, and whether it was
// dirty; nil if every frame is pinned.
func (p *Pool) pickVictim() (*Frame, uint64, bool) {
	for {
		best := -1
		var bestStamp uint64
		for i := range p.shards {
			s := &p.shards[i]
			s.mu.Lock()
			if el := s.lru.Front(); el != nil {
				f := el.Value.(*Frame)
				if best == -1 || f.stamp < bestStamp {
					best, bestStamp = i, f.stamp
				}
			}
			s.mu.Unlock()
		}
		if best == -1 {
			return nil, 0, false
		}
		s := &p.shards[best]
		s.mu.Lock()
		el := s.lru.Front()
		if el == nil {
			s.mu.Unlock()
			continue // raced with a pin; rescan
		}
		f := el.Value.(*Frame)
		s.lru.Remove(el)
		f.el = nil
		ver, wasDirty := f.dirtyVer, f.dirty
		s.mu.Unlock()
		return f, ver, wasDirty
	}
}

// makeRoom evicts frames until the pool is within capacity, writing
// back dirty victims with no shard lock held. If every frame is pinned
// the pool overcommits (counted) rather than deadlocking.
//
// A dirty victim is written back while still cached and still marked
// dirty — the bit is cleared only once the write has succeeded (and
// only if no writer re-dirtied the frame meanwhile), so a concurrent
// commit force scanning for dirty frames writes the page itself rather
// than trusting a writeback that may yet fail. If the writeback fails
// the frame goes back on the LRU (still dirty) and the error is
// returned, so the only copy of a dirty page is never discarded on a
// failing device.
func (p *Pool) makeRoom() error {
	for p.nframes.Load() > int64(p.capacity) {
		f, ver, wasDirty := p.pickVictim()
		if f == nil {
			p.overcommits.Add(1)
			return nil // all pinned: overcommit
		}
		o, sp := p.obs.Load(), obs.Active()
		vi := p.shardIdx(f.Key)
		if wasDirty {
			var w0 time.Time
			if o != nil || sp != nil {
				w0 = time.Now()
			}
			wev := obs.BeginWait(obs.WaitBackendWrite, "")
			f.mu.RLock()
			err := p.backend.WritePage(f.Key.Rel, f.Key.Page, f.Data)
			f.mu.RUnlock()
			wev.End()
			if o != nil || sp != nil {
				d := int64(time.Since(w0))
				if o != nil {
					o.wbNs[vi].Observe(d)
				}
				sp.AddBufWrite(d)
			}
			s := p.shard(f.Key)
			s.mu.Lock()
			if err != nil {
				if f.pins == 0 && f.el == nil && s.frames[f.Key] == f {
					s.insertByStamp(f)
				}
				s.mu.Unlock()
				return fmt.Errorf("buffer: writeback %v: %w", f.Key, err)
			}
			if f.dirtyVer == ver {
				p.clearDirtyLocked(s, f)
			}
			s.mu.Unlock()
			p.writebacks.Add(1)
			s.writebacks.Add(1)
		}
		s := p.shard(f.Key)
		s.mu.Lock()
		switch {
		case s.frames[f.Key] == f && f.pins == 0 && f.el == nil && !f.dirty:
			delete(s.frames, f.Key)
			p.nframes.Add(-1)
			p.evictions.Add(1)
			s.evictions.Add(1)
			if o != nil {
				o.evictions[vi].Inc()
			}
			sp.BufEvict()
		case s.frames[f.Key] == f && f.pins == 0 && f.el == nil:
			// Re-dirtied while being written back: keep it cached.
			s.insertByStamp(f)
		}
		// Otherwise the frame was re-pinned (its holder's Release will
		// relink it), relinked by a concurrent flush's unpin, or
		// invalidated; either way it is not our victim any more.
		s.mu.Unlock()
	}
	return nil
}

// Get returns the frame for (rel, pageNo), pinned. On a miss the page
// is read from the backend with no shard lock held; concurrent misses
// on the same page wait for the first loader instead of issuing
// duplicate reads.
func (p *Pool) Get(rel device.OID, pageNo uint32) (*Frame, error) {
	key := Key{rel, pageNo}
	si := p.shardIdx(key)
	s := &p.shards[si]
	o, sp := p.obs.Load(), obs.Active()
	var t0 time.Time
	if o != nil {
		t0 = time.Now()
	}
	for {
		s.mu.Lock()
		if f, ok := s.frames[key]; ok {
			if f.loading {
				ch := f.loadDone
				s.mu.Unlock()
				p.loadWaits.Add(1)
				// A waiter's stall is real latency for its request even
				// though only the loader's read hits the registry.
				var w0 time.Time
				if sp != nil {
					w0 = time.Now()
				}
				wev := obs.BeginWait(obs.WaitBufLoad, "")
				<-ch
				wev.End()
				if sp != nil {
					sp.AddBufLoad(int64(time.Since(w0)))
				}
				if err := f.loadErr; err != nil {
					return nil, err
				}
				continue // loaded: the next pass pins it
			}
			f.pins++
			if f.el != nil {
				s.lru.Remove(f.el)
				f.el = nil
			}
			s.mu.Unlock()
			p.hits.Add(1)
			s.hits.Add(1)
			if o != nil {
				o.hits[si].Inc()
				o.hitNs[si].Observe(int64(time.Since(t0)))
			}
			sp.BufHit()
			return f, nil
		}
		// Miss: install a loading placeholder so concurrent Gets on this
		// key single-flight, then fill it outside the shard lock.
		f := &Frame{
			Key:      key,
			Data:     make(page.Page, page.Size),
			pins:     1,
			loading:  true,
			loadDone: make(chan struct{}),
		}
		// Count the frame while still holding the shard lock that
		// installs it, so Crash (which zeroes the count under all shard
		// locks) cannot interleave and leave nframes overcounted.
		s.frames[key] = f
		p.nframes.Add(1)
		s.mu.Unlock()
		p.misses.Add(1)
		s.misses.Add(1)
		if o != nil {
			o.misses[si].Inc()
		}
		sp.BufMiss()

		err := p.makeRoom()
		if err == nil {
			// Time only the backend read: makeRoom's writebacks charge
			// themselves, keeping load and write attribution disjoint.
			var l0 time.Time
			if o != nil || sp != nil {
				l0 = time.Now()
			}
			wev := obs.BeginWait(obs.WaitBackendRead, "")
			err = p.backend.ReadPage(rel, pageNo, f.Data)
			wev.End()
			if o != nil || sp != nil {
				d := int64(time.Since(l0))
				if o != nil {
					o.loadNs[si].Observe(d)
				}
				sp.AddBufLoad(d)
			}
		}
		s.mu.Lock()
		if err != nil && s.frames[key] == f {
			delete(s.frames, key)
			p.nframes.Add(-1)
		}
		f.loadErr = err
		f.loading = false
		s.mu.Unlock()
		close(f.loadDone)
		if err != nil {
			return nil, err
		}
		return f, nil
	}
}

// NewPage extends rel by one page and returns its pinned, zeroed frame.
// Room is made before the relation is extended: extending first would
// leak an extended-but-uncached page if the eviction writeback failed.
func (p *Pool) NewPage(rel device.OID) (*Frame, uint32, error) {
	p.nframes.Add(1) // reserve the slot
	if err := p.makeRoom(); err != nil {
		p.nframes.Add(-1)
		return nil, 0, err
	}
	pageNo, err := p.backend.Extend(rel)
	if err != nil {
		p.nframes.Add(-1)
		return nil, 0, err
	}
	key := Key{rel, pageNo}
	f := &Frame{Key: key, Data: make(page.Page, page.Size), pins: 1, dirtyVer: 1}
	s := p.shard(key)
	s.mu.Lock()
	s.frames[key] = f
	p.markDirtyLocked(s, f)
	s.mu.Unlock()
	p.bgKick()
	return f, pageNo, nil
}

// Release unpins a frame, marking it dirty if the caller modified it.
// Releasing a frame that is not pinned panics: a double-Release would
// otherwise silently corrupt the pin counts and LRU invariants.
func (p *Pool) Release(f *Frame, dirty bool) {
	s := p.shard(f.Key)
	s.mu.Lock()
	if f.pins <= 0 {
		s.mu.Unlock()
		panic(fmt.Sprintf("buffer: Release of unpinned frame %v (pins=%d)", f.Key, f.pins))
	}
	if dirty {
		p.markDirtyLocked(s, f)
		f.dirtyVer++
	}
	f.pins--
	if f.pins == 0 && f.el == nil && s.frames[f.Key] == f {
		f.stamp = p.clock.Add(1)
		f.el = s.lru.PushBack(f)
	}
	s.mu.Unlock()
	if dirty {
		p.bgKick()
	}
}

// FlushAll writes every dirty frame to the backend in sorted
// (relation, page) order — the elevator discipline every real buffer
// manager uses, which keeps force-at-commit writes as sequential as the
// data allows. Frames stay cached. This is the force-at-commit policy
// the no-overwrite storage manager depends on for durability without a
// write-ahead log.
func (p *Pool) FlushAll() error {
	return p.flushWhere(func(Key) bool { return true })
}

// FlushRel writes the dirty frames of one relation, sorted by page.
func (p *Pool) FlushRel(rel device.OID) error {
	return p.flushWhere(func(k Key) bool { return k.Rel == rel })
}

// flushWhere writes back every dirty frame matching the predicate (nil
// matches all) via the snapshot/write/unpin pipeline below.
func (p *Pool) flushWhere(match func(Key) bool) error {
	_, err := p.flushFrames(p.snapshotDirty(match, 0), false)
	return err
}

// snapshotDirty collects up to limit (0 = unbounded) dirty frames
// matching the predicate, pinned so they cannot be evicted mid-flush,
// in sorted (relation, page) order — the elevator discipline every
// real buffer manager uses, which keeps force-at-commit writes as
// sequential as the data allows. It walks the per-shard dirty sets,
// never the full frame maps, so the cost is O(dirty).
func (p *Pool) snapshotDirty(match func(Key) bool, limit int) []*Frame {
	var dirty []*Frame
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for _, f := range s.dirty {
			if match != nil && !match(f.Key) {
				continue
			}
			f.pins++
			if f.el != nil {
				s.lru.Remove(f.el)
				f.el = nil
			}
			dirty = append(dirty, f)
		}
		s.mu.Unlock()
	}
	sort.Slice(dirty, func(i, j int) bool {
		a, b := dirty[i].Key, dirty[j].Key
		if a.Rel != b.Rel {
			return a.Rel < b.Rel
		}
		return a.Page < b.Page
	})
	if limit > 0 && len(dirty) > limit {
		p.unpinFlushed(dirty[limit:])
		dirty = dirty[:limit]
	}
	return dirty
}

// flushFrames writes each pinned frame back holding only that frame's
// read latch — never a shard lock — so concurrent cache hits proceed
// during a commit force. A frame's dirty bit is cleared only after its
// write returns success, and only if its dirty version is unchanged
// (no writer re-dirtied it mid-write); a frame some concurrent
// writeback already cleaned is skipped, because a clear dirty bit now
// proves the data is durably on the backend. Unpinning restores each
// frame's LRU position by its preserved stamp: a flush is not a use.
// Reports how many pages were written.
func (p *Pool) flushFrames(dirty []*Frame, background bool) (int, error) {
	var firstErr error
	var wrote int
	o, sp := p.obs.Load(), obs.Active()
	for _, f := range dirty {
		s := p.shard(f.Key)
		s.mu.Lock()
		if !f.dirty {
			// A concurrent writeback completed since the snapshot; the
			// page is already durable.
			s.mu.Unlock()
			continue
		}
		ver := f.dirtyVer
		s.mu.Unlock()
		var w0 time.Time
		if o != nil || sp != nil {
			w0 = time.Now()
		}
		wev := obs.BeginWait(obs.WaitBackendWrite, "")
		f.mu.RLock()
		err := p.backend.WritePage(f.Key.Rel, f.Key.Page, f.Data)
		f.mu.RUnlock()
		wev.End()
		if o != nil || sp != nil {
			d := int64(time.Since(w0))
			if o != nil {
				o.wbNs[p.shardIdx(f.Key)].Observe(d)
			}
			sp.AddBufWrite(d)
		}
		if err != nil {
			// The failed frame (and everything after it) stays dirty —
			// the bit was never cleared — so a retry after the device
			// heals flushes exactly the pages that never made it out.
			firstErr = fmt.Errorf("buffer: flush %v: %w", f.Key, err)
			break
		}
		s.mu.Lock()
		if f.dirtyVer == ver {
			p.clearDirtyLocked(s, f)
		}
		s.mu.Unlock()
		wrote++
		p.writebacks.Add(1)
		s.writebacks.Add(1)
		if background {
			p.bgWritebacks.Add(1)
		}
	}
	p.unpinFlushed(dirty)
	return wrote, firstErr
}

// unpinFlushed returns flush-pinned frames to their LRU positions.
func (p *Pool) unpinFlushed(frames []*Frame) {
	for _, f := range frames {
		s := p.shard(f.Key)
		s.mu.Lock()
		f.pins--
		if f.pins == 0 && f.el == nil && s.frames[f.Key] == f {
			if f.stamp == 0 {
				f.stamp = p.clock.Add(1)
			}
			s.insertByStamp(f)
		}
		s.mu.Unlock()
	}
}

// InvalidateRel drops all frames of a relation without writing them,
// for use after dropping the relation.
func (p *Pool) InvalidateRel(rel device.OID) {
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		for key, f := range s.frames {
			if key.Rel == rel {
				if f.el != nil {
					s.lru.Remove(f.el)
					f.el = nil
				}
				if s.dirty[key] == f {
					delete(s.dirty, key)
					p.ndirty.Add(-1)
				}
				delete(s.frames, key)
				p.nframes.Add(-1)
			}
		}
		s.mu.Unlock()
	}
}

// Crash discards every frame, dirty or not, without writing. It
// simulates losing volatile memory so recovery tests can verify that
// the status log alone reconstructs a consistent state. All shard
// locks are held (acquired in index order — the one place the pool
// nests shard mutexes) while the maps are cleared and the frame count
// zeroed, so a concurrent Get cannot install-and-count a frame between
// the two and skew nframes for the life of the pool.
func (p *Pool) Crash() {
	for i := range p.shards {
		p.shards[i].mu.Lock()
	}
	for i := range p.shards {
		s := &p.shards[i]
		s.frames = make(map[Key]*Frame)
		s.dirty = make(map[Key]*Frame)
		s.lru.Init()
	}
	p.nframes.Store(0)
	p.ndirty.Store(0)
	for i := range p.shards {
		p.shards[i].mu.Unlock()
	}
}

// NPages reports the relation's page count from the backend.
func (p *Pool) NPages(rel device.OID) (uint32, error) { return p.backend.NPages(rel) }
