// Package nfs implements the evaluation baseline: an ULTRIX-style NFS
// stack — an FFS-like local file store with cylinder-group block
// clustering [MCKU84], a stateless page server whose writes are
// synchronous per the NFS protocol [SAND85], an optional PRESTOserve
// non-volatile RAM write cache, and a client that moves data over the
// same simulated network as Inversion's client/server path. Everything
// stores real bytes (tests verify round trips) while charging costs to
// the shared virtual clock.
package nfs

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/iosim"
)

// BlockSize matches the page size both file systems transfer in.
const BlockSize = 8192

// ErrNoFile is returned for operations on unknown files.
var ErrNoFile = errors.New("nfs: no such file")

type file struct {
	extents []int64  // starting address of each contiguous extent
	blocks  []int64  // linear block addresses, in file order
	data    [][]byte // nil entry = hole (reads as zeros)
	size    int64
}

// FileStore is the server-local FFS-like file system. Blocks are
// allocated in contiguous runs (the cylinder-group clustering effect),
// and a server-memory buffer cache absorbs repeated reads. Metadata
// (the block map) is maintained in memory and charged as a handful of
// inode/indirect-block writes at sync points, which is the paper's
// explanation for NFS's fast file creation: "The NFS implementation
// does not maintain as much indexing information on the data file, and
// so can postpone writing its index until all data blocks have been
// written."
type FileStore struct {
	mu        sync.Mutex
	disk      *iosim.Disk
	files     map[string]*file
	nextBlock int64
	extent    int

	cache    map[cacheKey]bool
	cacheLRU []cacheKey
	cacheCap int

	metaDirty map[string]int // pending block-map updates per file
}

type cacheKey struct {
	name  string
	block int64
}

// NewFileStore returns a store over the given disk model. cachePages is
// the server buffer cache size (0 = a 1024-page default).
func NewFileStore(disk *iosim.Disk, cachePages int) *FileStore {
	if cachePages <= 0 {
		cachePages = 1024
	}
	return &FileStore{
		disk:      disk,
		files:     make(map[string]*file),
		extent:    16,
		cache:     make(map[cacheKey]bool),
		cacheCap:  cachePages,
		metaDirty: make(map[string]int),
	}
}

// Create makes an empty file (truncating any existing one).
func (fs *FileStore) Create(name string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.files[name] = &file{}
	fs.metaDirty[name]++
}

// Exists reports whether a file exists.
func (fs *FileStore) Exists(name string) bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, ok := fs.files[name]
	return ok
}

// Size reports a file's size.
func (fs *FileStore) Size(name string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, ErrNoFile
	}
	return f.size, nil
}

// ensureBlock grows the block map through index b, allocating addresses
// in contiguous per-file extents (the cylinder-group clustering).
func (fs *FileStore) ensureBlock(f *file, b int64) {
	for int64(len(f.blocks)) <= b {
		if len(f.blocks)%fs.extent == 0 {
			// New extent: claim a contiguous run for this file.
			f.extents = append(f.extents, fs.nextBlock)
			fs.nextBlock += int64(fs.extent)
		}
		ext := f.extents[len(f.blocks)/fs.extent]
		f.blocks = append(f.blocks, ext+int64(len(f.blocks)%fs.extent))
		f.data = append(f.data, nil)
	}
}

func (fs *FileStore) touchCache(k cacheKey) {
	if fs.cache[k] {
		return
	}
	fs.cache[k] = true
	fs.cacheLRU = append(fs.cacheLRU, k)
	for len(fs.cacheLRU) > fs.cacheCap {
		victim := fs.cacheLRU[0]
		fs.cacheLRU = fs.cacheLRU[1:]
		delete(fs.cache, victim)
	}
}

// WriteBlock stores one block of a file. sync forces the block to disk
// before returning (the stateless-NFS discipline); async writes land in
// the server cache and charge nothing now (ULTRIX would write them back
// later).
func (fs *FileStore) WriteBlock(name string, blockNo int64, off int, data []byte, sync bool) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return ErrNoFile
	}
	fs.ensureBlock(f, blockNo)
	if f.data[blockNo] == nil {
		f.data[blockNo] = make([]byte, BlockSize)
	}
	copy(f.data[blockNo][off:], data)
	if end := blockNo*BlockSize + int64(off+len(data)); end > f.size {
		f.size = end
	}
	fs.metaDirty[name]++
	fs.touchCache(cacheKey{name, blockNo})
	if sync {
		fs.disk.Access(f.blocks[blockNo], BlockSize)
	}
	return nil
}

// ReadBlock fills buf from one block (zero-filled holes). Cache misses
// charge a disk access.
func (fs *FileStore) ReadBlock(name string, blockNo int64, buf []byte) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return ErrNoFile
	}
	if blockNo >= int64(len(f.blocks)) || f.data[blockNo] == nil {
		for i := range buf {
			buf[i] = 0
		}
		return nil
	}
	k := cacheKey{name, blockNo}
	if !fs.cache[k] {
		fs.disk.Access(f.blocks[blockNo], BlockSize)
		fs.touchCache(k)
	}
	copy(buf, f.data[blockNo])
	return nil
}

// SyncMeta writes the pending block-map (inode/indirect) updates for a
// file: one short disk write per 2048 map entries plus one for the
// inode.
func (fs *FileStore) SyncMeta(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return ErrNoFile
	}
	if fs.metaDirty[name] == 0 {
		return nil
	}
	fs.metaDirty[name] = 0
	writes := 1 + len(f.blocks)/2048
	for i := 0; i < writes; i++ {
		fs.disk.Access(fs.nextBlock+int64(i)+100, BlockSize)
	}
	return nil
}

// FlushCache empties the server buffer cache ("All caches were flushed
// before each test").
func (fs *FileStore) FlushCache() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.cache = make(map[cacheKey]bool)
	fs.cacheLRU = nil
}

// ReadAt reads into buf at a byte offset, for local (non-NFS) use and
// tests.
func (fs *FileStore) ReadAt(name string, buf []byte, off int64) (int, error) {
	size, err := fs.Size(name)
	if err != nil {
		return 0, err
	}
	if off >= size {
		return 0, fmt.Errorf("nfs: read past EOF")
	}
	total := int64(len(buf))
	if off+total > size {
		total = size - off
	}
	read := int64(0)
	block := make([]byte, BlockSize)
	for read < total {
		pos := off + read
		bn := pos / BlockSize
		in := pos % BlockSize
		span := BlockSize - in
		if span > total-read {
			span = total - read
		}
		if err := fs.ReadBlock(name, bn, block); err != nil {
			return int(read), err
		}
		copy(buf[read:read+span], block[in:])
		read += span
	}
	return int(read), nil
}

// WriteAt writes at a byte offset (local use and tests).
func (fs *FileStore) WriteAt(name string, data []byte, off int64, sync bool) (int, error) {
	written := int64(0)
	total := int64(len(data))
	for written < total {
		pos := off + written
		bn := pos / BlockSize
		in := pos % BlockSize
		span := BlockSize - in
		if span > total-written {
			span = total - written
		}
		if err := fs.WriteBlock(name, bn, int(in), data[written:written+span], sync); err != nil {
			return int(written), err
		}
		written += span
	}
	return int(written), nil
}
