package nfs

import "repro/internal/iosim"

// rpcHeader approximates the RPC/XDR framing bytes on the wire per
// request/response pair.
const rpcHeader = 160

// Client drives the NFS server across the simulated network, splitting
// byte-stream operations into block-sized RPCs (NFS v2's 8 KB transfer
// limit).
type Client struct {
	srv *Server
	net *iosim.Network
}

// NewClient returns a client of srv over net (nil net = local, free
// transport — used by the local-filesystem comparison [STON93]).
func NewClient(srv *Server, net *iosim.Network) *Client {
	return &Client{srv: srv, net: net}
}

// Create creates (or truncates) a remote file.
func (c *Client) Create(name string) error {
	c.net.RoundTrip(rpcHeader+len(name), rpcHeader)
	return c.srv.Create(name)
}

// WriteAt writes data at a byte offset, one block-sized RPC at a time.
func (c *Client) WriteAt(name string, data []byte, off int64) error {
	total := int64(len(data))
	done := int64(0)
	for done < total {
		pos := off + done
		span := BlockSize - pos%BlockSize
		if span > total-done {
			span = total - done
		}
		c.net.RoundTrip(rpcHeader+int(span), rpcHeader)
		if err := c.srv.Write(name, pos, data[done:done+span]); err != nil {
			return err
		}
		done += span
	}
	return nil
}

// ReadAt reads into buf at a byte offset, one block-sized RPC at a
// time.
func (c *Client) ReadAt(name string, buf []byte, off int64) error {
	total := int64(len(buf))
	done := int64(0)
	for done < total {
		pos := off + done
		span := BlockSize - pos%BlockSize
		if span > total-done {
			span = total - done
		}
		c.net.RoundTrip(rpcHeader, rpcHeader+int(span))
		got, err := c.srv.Read(name, pos, int(span))
		if err != nil {
			return err
		}
		copy(buf[done:], got)
		done += span
	}
	return nil
}

// Commit flushes metadata at the end of a burst (close-to-open
// consistency).
func (c *Client) Commit(name string) error {
	c.net.RoundTrip(rpcHeader, rpcHeader)
	return c.srv.Commit(name)
}

// Size fetches a file's size.
func (c *Client) Size(name string) (int64, error) {
	c.net.RoundTrip(rpcHeader, rpcHeader+16)
	return c.srv.Size(name)
}
