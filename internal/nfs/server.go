package nfs

import (
	"sync"
	"time"

	"repro/internal/iosim"
)

// PrestoParams configures the PRESTOserve board: "a board containing
// 1 MByte of battery-backed RAM and driver software to cache NFS writes
// in non-volatile memory."
type PrestoParams struct {
	Capacity int           // bytes of NVRAM (default 1 MB)
	Latency  time.Duration // per-block NVRAM acceptance cost
}

// DefaultPresto returns the board the paper's NFS server used.
func DefaultPresto() PrestoParams {
	return PrestoParams{Capacity: 1 << 20, Latency: 300 * time.Microsecond}
}

type prestoEntry struct {
	name  string
	block int64
}

// Presto is the NVRAM write cache. Writes are acknowledged once they
// are in NVRAM; blocks drain to disk in the background, which costs the
// client nothing until the board fills — then each new write must wait
// for a drain, so sustained writes beyond the capacity run at disk
// speed while 1 MB bursts are nearly free. That asymmetry is the whole
// story of the paper's Figure 6.
type Presto struct {
	params  PrestoParams
	clock   *iosim.Clock
	entries []prestoEntry
	present map[prestoEntry]bool
	hits    int64
	drains  int64
}

// NewPresto returns an NVRAM cache charging to clock.
func NewPresto(p PrestoParams, clock *iosim.Clock) *Presto {
	if p.Capacity <= 0 {
		p.Capacity = 1 << 20
	}
	return &Presto{params: p, clock: clock, present: make(map[prestoEntry]bool)}
}

func (p *Presto) capacityBlocks() int { return p.params.Capacity / BlockSize }

// Server is the NFS server: a stateless page server over the local
// file store. Without PRESTOserve every write is forced to disk before
// the reply ("To guarantee that NFS servers remain stateless, NFS must
// force every write to stable storage synchronously").
type Server struct {
	mu     sync.Mutex
	store  *FileStore
	presto *Presto
}

// NewServer returns a server over store; presto may be nil.
func NewServer(store *FileStore, presto *Presto) *Server {
	return &Server{store: store, presto: presto}
}

// Store exposes the underlying file store (benchmarks flush its cache).
func (s *Server) Store() *FileStore { return s.store }

// Create handles an NFS CREATE.
func (s *Server) Create(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.Create(name)
	// Directory + inode updates are synchronous metadata writes.
	return s.store.SyncMeta(name)
}

// Write handles an NFS WRITE of up to one block.
func (s *Server) Write(name string, off int64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	bn := off / BlockSize
	in := off % BlockSize
	if s.presto == nil {
		return s.store.WriteBlock(name, bn, int(in), data, true)
	}
	// PRESTOserve path: store the block asynchronously, charge NVRAM
	// acceptance, drain one block per write while over capacity.
	if err := s.store.WriteBlock(name, bn, int(in), data, false); err != nil {
		return err
	}
	p := s.presto
	p.clock.Advance(p.params.Latency)
	e := prestoEntry{name, bn}
	if !p.present[e] {
		p.entries = append(p.entries, e)
		p.present[e] = true
	} else {
		p.hits++
	}
	for len(p.entries) > p.capacityBlocks() {
		victim := p.entries[0]
		p.entries = p.entries[1:]
		delete(p.present, victim)
		p.drains++
		// Draining forces the victim block to disk now.
		s.store.mu.Lock()
		if f, ok := s.store.files[victim.name]; ok && victim.block < int64(len(f.blocks)) {
			s.store.disk.Access(f.blocks[victim.block], BlockSize)
		}
		s.store.mu.Unlock()
	}
	return nil
}

// Read handles an NFS READ of up to one block.
func (s *Server) Read(name string, off int64, n int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, BlockSize)
	bn := off / BlockSize
	in := off % BlockSize
	if s.presto != nil && s.presto.present[prestoEntry{name, bn}] {
		// Block still in NVRAM: serve without disk access. The store
		// holds the bytes; charge NVRAM latency only.
		s.presto.clock.Advance(s.presto.params.Latency)
		s.store.mu.Lock()
		f, ok := s.store.files[name]
		if ok && bn < int64(len(f.data)) && f.data[bn] != nil {
			copy(buf, f.data[bn])
		}
		s.store.mu.Unlock()
	} else if err := s.store.ReadBlock(name, bn, buf); err != nil {
		return nil, err
	}
	end := in + int64(n)
	if end > BlockSize {
		end = BlockSize
	}
	return buf[in:end], nil
}

// Size handles an NFS GETATTR (size only).
func (s *Server) Size(name string) (int64, error) { return s.store.Size(name) }

// Commit finishes a client-visible burst: metadata reaches disk.
func (s *Server) Commit(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.SyncMeta(name)
}

// FlushCaches empties the server buffer cache and drains NVRAM without
// charging (benchmark setup between runs).
func (s *Server) FlushCaches() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.store.FlushCache()
	if s.presto != nil {
		s.presto.entries = nil
		s.presto.present = make(map[prestoEntry]bool)
	}
}

// PrestoDrains reports how many blocks were forced out of NVRAM.
func (s *Server) PrestoDrains() int64 {
	if s.presto == nil {
		return 0
	}
	return s.presto.drains
}
