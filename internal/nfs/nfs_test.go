package nfs

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/iosim"
)

func newStack(t *testing.T, presto bool) (*Client, *Server, *iosim.Clock) {
	t.Helper()
	clock := iosim.NewClock()
	store := NewFileStore(iosim.NewDisk(iosim.RZ58(), clock), 1024)
	var pv *Presto
	if presto {
		pv = NewPresto(DefaultPresto(), clock)
	}
	srv := NewServer(store, pv)
	cl := NewClient(srv, iosim.NewNetwork(iosim.Ethernet10(4*time.Millisecond), clock))
	return cl, srv, clock
}

func TestRoundTrip(t *testing.T) {
	cl, _, _ := newStack(t, false)
	if err := cl.Create("/f"); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3*BlockSize+500)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := cl.WriteAt("/f", data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := cl.ReadAt("/f", got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip failed")
	}
	size, err := cl.Size("/f")
	if err != nil || size != int64(len(data)) {
		t.Fatalf("size = %d, %v", size, err)
	}
}

func TestPartialBlockWrites(t *testing.T) {
	cl, _, _ := newStack(t, false)
	if err := cl.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteAt("/f", make([]byte, 2*BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	patch := []byte("spans the boundary")
	off := int64(BlockSize - 5)
	if err := cl.WriteAt("/f", patch, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(patch))
	if err := cl.ReadAt("/f", got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, patch) {
		t.Fatalf("got %q", got)
	}
}

func TestSyncWritesCostDisk(t *testing.T) {
	clNo, _, clockNo := newStack(t, false)
	clPresto, _, clockP := newStack(t, true)
	data := make([]byte, 64*BlockSize) // 512 KB, fits in 1 MB NVRAM

	if err := clNo.Create("/f"); err != nil {
		t.Fatal(err)
	}
	clockNo.Reset()
	if err := clNo.WriteAt("/f", data, 0); err != nil {
		t.Fatal(err)
	}
	noPresto := clockNo.Now()

	if err := clPresto.Create("/f"); err != nil {
		t.Fatal(err)
	}
	clockP.Reset()
	if err := clPresto.WriteAt("/f", data, 0); err != nil {
		t.Fatal(err)
	}
	withPresto := clockP.Now()

	if withPresto >= noPresto {
		t.Fatalf("PRESTOserve did not speed up writes: %v vs %v", withPresto, noPresto)
	}
}

func TestPrestoDrainsWhenFull(t *testing.T) {
	cl, srv, _ := newStack(t, true)
	if err := cl.Create("/big"); err != nil {
		t.Fatal(err)
	}
	// 4 MB through a 1 MB board must drain.
	data := make([]byte, 4<<20)
	if err := cl.WriteAt("/big", data, 0); err != nil {
		t.Fatal(err)
	}
	if srv.PrestoDrains() == 0 {
		t.Fatal("no drains despite exceeding NVRAM capacity")
	}
	// Data still correct after drains.
	got := make([]byte, 1000)
	if err := cl.ReadAt("/big", got, 3<<20); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("drained data corrupt")
		}
	}
}

func TestRandomWritesFitNVRAMNoDegradation(t *testing.T) {
	// The paper's Figure 6: random 1 MB writes show no degradation
	// under PRESTOserve because nothing is flushed to disk.
	clSeq, _, clockSeq := newStack(t, true)
	clRnd, _, clockRnd := newStack(t, true)
	const mb = 1 << 20

	if err := clSeq.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := clSeq.WriteAt("/f", make([]byte, 25*mb), 0); err != nil {
		t.Fatal(err)
	}
	clSeq.srv.FlushCaches()
	clockSeq.Reset()
	for i := 0; i < 128; i++ {
		if err := clSeq.WriteAt("/f", make([]byte, BlockSize), int64(i)*BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	seq := clockSeq.Now()

	if err := clRnd.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := clRnd.WriteAt("/f", make([]byte, 25*mb), 0); err != nil {
		t.Fatal(err)
	}
	clRnd.srv.FlushCaches()
	clockRnd.Reset()
	rng := uint64(7)
	for i := 0; i < 128; i++ {
		rng = rng*6364136223846793005 + 1442695040888963407
		block := int64(rng>>33) % (25 * mb / BlockSize)
		if err := clRnd.WriteAt("/f", make([]byte, BlockSize), block*BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	rnd := clockRnd.Now()

	ratio := float64(rnd) / float64(seq)
	if ratio > 1.1 {
		t.Fatalf("random writes degraded %.2fx despite NVRAM", ratio)
	}
}

func TestReadMissesCostMoreThanCacheHits(t *testing.T) {
	cl, srv, clock := newStack(t, false)
	if err := cl.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteAt("/f", make([]byte, 16*BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	srv.FlushCaches()
	buf := make([]byte, 16*BlockSize)
	clock.Reset()
	if err := cl.ReadAt("/f", buf, 0); err != nil {
		t.Fatal(err)
	}
	cold := clock.Now()
	clock.Reset()
	if err := cl.ReadAt("/f", buf, 0); err != nil {
		t.Fatal(err)
	}
	warm := clock.Now()
	if warm >= cold {
		t.Fatalf("warm read (%v) not cheaper than cold (%v)", warm, cold)
	}
}

func TestMissingFile(t *testing.T) {
	cl, _, _ := newStack(t, false)
	if err := cl.WriteAt("/nope", []byte("x"), 0); err != ErrNoFile {
		t.Fatalf("write missing: %v", err)
	}
	if err := cl.ReadAt("/nope", make([]byte, 1), 0); err != ErrNoFile {
		t.Fatalf("read missing: %v", err)
	}
}

func TestHolesReadZero(t *testing.T) {
	cl, _, _ := newStack(t, false)
	if err := cl.Create("/h"); err != nil {
		t.Fatal(err)
	}
	if err := cl.WriteAt("/h", []byte("end"), 5*BlockSize); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	if err := cl.ReadAt("/h", buf, BlockSize); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
}
