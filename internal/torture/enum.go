package torture

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"sort"

	"repro/internal/device"
)

// EnumOpts configures crash-state enumeration.
type EnumOpts struct {
	// Start is the first legal crash index: states before the workload
	// barrier (mkfs/bootstrap) are out of scope.
	Start int
	// Exhaustive adds the full per-window cartesian product of page
	// choices for every crash index (deduplicated, capped by MaxStates).
	Exhaustive bool
	// Seed drives the random sampling pass.
	Seed int64
	// Samples is the number of random (crashIndex, choices) states to
	// draw. Default 128.
	Samples int
	// MaxStates caps how many distinct states are visited. Default
	// 4000. The cap is reported, never silent (EnumStats.Capped).
	MaxStates int
}

// EnumStats reports what an enumeration covered.
type EnumStats struct {
	Ops         int  // recorded trace length
	CrashPoints int  // distinct crash indices in scope
	Generated   int  // states generated before deduplication
	Visited     int  // distinct states handed to the visitor
	Deduped     int  // states skipped as byte-identical to a visited one
	Capped      bool // MaxStates stopped the walk early
}

// errStopEnum aborts the walk without error (cap reached, or the
// visitor has seen enough violations).
var errStopEnum = errors.New("torture: enumeration stopped")

// ErrStop is returned by a visitor to stop enumeration early without
// failing it.
var ErrStop = errStopEnum

// traceIndex precomputes per-trace tables the signature function needs:
// a running hash of the metadata-op prefix, the last barrier before
// each index, and every page's global write-index list.
type traceIndex struct {
	ops        []device.RecOp
	metaHash   []uint64 // metaHash[i] covers metadata ops in ops[0:i]
	syncBefore []int    // syncBefore[i] = last sync index < i, or -1
	writes     map[pageKey][]int
	pages      []pageKey // deterministic iteration order
}

func indexTrace(ops []device.RecOp) *traceIndex {
	t := &traceIndex{
		ops:        ops,
		metaHash:   make([]uint64, len(ops)+1),
		syncBefore: make([]int, len(ops)+1),
		writes:     make(map[pageKey][]int),
	}
	h := fnv.New64a()
	last := -1
	t.metaHash[0] = hashSum(h)
	t.syncBefore[0] = -1
	for i, op := range ops {
		switch op.Kind {
		case device.RecWrite:
			k := pageKey{op.Rel, op.Page}
			t.writes[k] = append(t.writes[k], i)
		case device.RecSync:
			last = i
		default:
			var b [10]byte
			b[0] = byte(op.Kind)
			putU32(b[1:], uint32(op.Rel))
			putU32(b[5:], op.Page)
			h.Write(b[:])
		}
		t.metaHash[i+1] = hashSum(h)
		t.syncBefore[i+1] = last
	}
	for k := range t.writes {
		t.pages = append(t.pages, k)
	}
	sort.Slice(t.pages, func(i, j int) bool {
		if t.pages[i].rel != t.pages[j].rel {
			return t.pages[i].rel < t.pages[j].rel
		}
		return t.pages[i].page < t.pages[j].page
	})
	return t
}

func hashSum(h interface{ Sum64() uint64 }) uint64 { return h.Sum64() }

func putU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// mix folds one page's surviving content hash into a state signature,
// order-independently (pages are disjoint, so XOR of well-mixed
// per-page terms identifies the image).
func mix(k pageKey, contentHash uint64) uint64 {
	h := fnv.New64a()
	var b [20]byte
	putU32(b[0:], uint32(k.rel))
	putU32(b[4:], k.page)
	for i := 0; i < 8; i++ {
		b[8+i] = byte(contentHash >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// signature computes a byte-content fingerprint of the disk image state
// (crashIndex, choices) would materialise, without materialising it:
// the metadata prefix hash XOR one mixed term per touched page carrying
// the hash of its surviving content. Two states with equal signatures
// are byte-identical images and need verifying only once.
func (t *traceIndex) signature(crashIndex int, choice map[pageKey]int) uint64 {
	sig := t.metaHash[crashIndex]
	barrier := t.syncBefore[crashIndex]
	for _, k := range t.pages {
		idxs := t.writes[k]
		// m: writes before the crash; b: writes at or before the barrier.
		m := sort.SearchInts(idxs, crashIndex)
		if m == 0 {
			continue
		}
		b := sort.SearchInts(idxs, barrier+1)
		winN := m - b
		c := winN // default: all window writes landed
		if cc, ok := choice[k]; ok {
			if cc < 0 {
				cc = 0
			}
			if cc > winN {
				cc = winN
			}
			c = cc
		}
		var content uint64
		switch {
		case c > 0:
			content = t.ops[idxs[b+c-1]].Hash
		case b > 0:
			content = t.ops[idxs[b-1]].Hash
		default:
			content = 0x9e3779b97f4a7c15 // page allocated but never written
		}
		sig ^= mix(k, content)
	}
	return sig
}

// Enumerate walks the crash-state space of a recorded trace and calls
// visit once per distinct disk image, in four passes:
//
//  1. every pure prefix (crash at each index, all window writes landed),
//  2. targeted torn states at each sync barrier and at trace end: for
//     each page written in the open window, the state where only that
//     page's writes landed and the state where every page but that one
//     landed, plus the all-lost state — the adversarial states that
//     catch missing-barrier bugs deterministically,
//  3. seeded random samples across (crashIndex, per-page choices),
//  4. optionally (Exhaustive) the full cartesian product per crash
//     index.
//
// States are deduplicated by image signature, so the visitor sees each
// distinct image once. Enumeration stops early when MaxStates distinct
// states have been visited (reported via Capped) or when visit returns
// ErrStop; any other visitor error aborts the walk and is returned.
func Enumerate(ops []device.RecOp, o EnumOpts, visit func(State) error) (EnumStats, error) {
	if o.Samples <= 0 {
		o.Samples = 128
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 4000
	}
	if o.Start < 0 {
		o.Start = 0
	}
	t := indexTrace(ops)
	stats := EnumStats{Ops: len(ops), CrashPoints: len(ops) - o.Start + 1}
	seen := make(map[uint64]bool)

	emit := func(crashIndex int, choice map[pageKey]int) error {
		stats.Generated++
		sig := t.signature(crashIndex, choice)
		if seen[sig] {
			stats.Deduped++
			return nil
		}
		seen[sig] = true
		if stats.Visited >= o.MaxStates {
			stats.Capped = true
			return errStopEnum
		}
		stats.Visited++
		st := State{CrashIndex: crashIndex}
		for _, k := range t.pages {
			if c, ok := choice[k]; ok {
				st.Choices = append(st.Choices, PageChoice{Rel: k.rel, Page: k.page, Choice: c})
			}
		}
		return visit(st)
	}

	run := func() error {
		// Pass 1: pure prefixes.
		for i := o.Start; i <= len(ops); i++ {
			if err := emit(i, nil); err != nil {
				return err
			}
		}

		// Pass 2: targeted torn states at barriers and at trace end.
		var points []int
		for i := o.Start; i < len(ops); i++ {
			if ops[i].Kind == device.RecSync {
				points = append(points, i)
			}
		}
		points = append(points, len(ops))
		for _, ci := range points {
			_, win := windowAt(ops, ci)
			if len(win) == 0 {
				continue
			}
			keys := sortedKeys(win)
			allLost := make(map[pageKey]int, len(keys))
			for _, k := range keys {
				allLost[k] = 0
			}
			if err := emit(ci, allLost); err != nil {
				return err
			}
			for _, k := range keys {
				only := make(map[pageKey]int, len(keys))
				allBut := make(map[pageKey]int, 1)
				for _, k2 := range keys {
					if k2 == k {
						only[k2] = len(win[k2])
						allBut[k2] = 0
					} else {
						only[k2] = 0
					}
				}
				if err := emit(ci, only); err != nil {
					return err
				}
				if err := emit(ci, allBut); err != nil {
					return err
				}
			}
		}

		// Pass 3: seeded random samples.
		rng := rand.New(rand.NewSource(o.Seed))
		span := len(ops) - o.Start + 1
		for n := 0; n < o.Samples && span > 0; n++ {
			ci := o.Start + rng.Intn(span)
			_, win := windowAt(ops, ci)
			choice := make(map[pageKey]int, len(win))
			for _, k := range sortedKeys(win) {
				choice[k] = rng.Intn(len(win[k]) + 1)
			}
			if err := emit(ci, choice); err != nil {
				return err
			}
		}

		// Pass 4: exhaustive cartesian product.
		if o.Exhaustive {
			for ci := o.Start; ci <= len(ops); ci++ {
				_, win := windowAt(ops, ci)
				keys := sortedKeys(win)
				if len(keys) == 0 {
					continue
				}
				vec := make([]int, len(keys))
				for {
					choice := make(map[pageKey]int, len(keys))
					for i, k := range keys {
						choice[k] = vec[i]
					}
					if err := emit(ci, choice); err != nil {
						return err
					}
					// Odometer increment over per-page choice ranges.
					p := 0
					for p < len(vec) {
						vec[p]++
						if vec[p] <= len(win[keys[p]]) {
							break
						}
						vec[p] = 0
						p++
					}
					if p == len(vec) {
						break
					}
				}
			}
		}
		return nil
	}

	err := run()
	if errors.Is(err, errStopEnum) {
		err = nil
	}
	return stats, err
}

func sortedKeys(win map[pageKey][]int) []pageKey {
	keys := make([]pageKey, 0, len(win))
	for k := range win {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].rel != keys[j].rel {
			return keys[i].rel < keys[j].rel
		}
		return keys[i].page < keys[j].page
	})
	return keys
}
