package torture

import (
	"sync"

	"repro/internal/device"
)

// Image is the fresh backing store a crash state is materialised onto.
// It is a plain page map like device.Mem, with two replay-specific
// differences: Create is idempotent against pages that already exist
// (core.Open re-places the fixed relations on every recovery), and
// pages can be force-grown when a lost Extend would otherwise strand a
// recorded write. Class is "mem" so core.Open's log-device preference
// treats an Image exactly like the device the trace was recorded from.
type Image struct {
	mu   sync.Mutex
	rels map[device.OID][][]byte
}

// NewImage returns an empty image.
func NewImage() *Image {
	return &Image{rels: make(map[device.OID][][]byte)}
}

// Class reports "mem": replay must look like the recorded device.
func (im *Image) Class() string { return "mem" }

// Create registers a relation; re-creating an existing one keeps its
// pages (recovery calls Create on relations that already exist).
func (im *Image) Create(rel device.OID) error {
	im.mu.Lock()
	defer im.mu.Unlock()
	if _, ok := im.rels[rel]; !ok {
		im.rels[rel] = nil
	}
	return nil
}

// Drop removes a relation.
func (im *Image) Drop(rel device.OID) error {
	im.mu.Lock()
	defer im.mu.Unlock()
	if _, ok := im.rels[rel]; !ok {
		return device.ErrNoRelation
	}
	delete(im.rels, rel)
	return nil
}

// NPages reports the relation's page count.
func (im *Image) NPages(rel device.OID) (uint32, error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	pages, ok := im.rels[rel]
	if !ok {
		return 0, device.ErrNoRelation
	}
	return uint32(len(pages)), nil
}

// Extend appends a zeroed page.
func (im *Image) Extend(rel device.OID) (uint32, error) {
	im.mu.Lock()
	defer im.mu.Unlock()
	pages, ok := im.rels[rel]
	if !ok {
		return 0, device.ErrNoRelation
	}
	im.rels[rel] = append(pages, make([]byte, device.PageSize))
	return uint32(len(pages)), nil
}

// ReadPage copies a page into buf.
func (im *Image) ReadPage(rel device.OID, page uint32, buf []byte) error {
	im.mu.Lock()
	defer im.mu.Unlock()
	pages, ok := im.rels[rel]
	if !ok {
		return device.ErrNoRelation
	}
	if int(page) >= len(pages) {
		return device.ErrNoPage
	}
	copy(buf, pages[page])
	return nil
}

// WritePage stores buf into a page.
func (im *Image) WritePage(rel device.OID, page uint32, buf []byte) error {
	im.mu.Lock()
	defer im.mu.Unlock()
	pages, ok := im.rels[rel]
	if !ok {
		return device.ErrNoRelation
	}
	if int(page) >= len(pages) {
		return device.ErrNoPage
	}
	copy(pages[page], buf)
	return nil
}

// Sync is a no-op: the image is the stable state by construction.
func (im *Image) Sync() error { return nil }

var _ device.Manager = (*Image)(nil)

// grow ensures the relation exists and has at least page+1 pages, so a
// recorded write always has somewhere to land during materialisation.
func (im *Image) grow(rel device.OID, page uint32) {
	im.mu.Lock()
	defer im.mu.Unlock()
	pages := im.rels[rel]
	for uint32(len(pages)) <= page {
		pages = append(pages, make([]byte, device.PageSize))
	}
	im.rels[rel] = pages
}

// apply lands one recorded write on the image unconditionally.
func (im *Image) apply(op device.RecOp) {
	im.grow(op.Rel, op.Page)
	im.mu.Lock()
	copy(im.rels[op.Rel][op.Page], op.Data)
	im.mu.Unlock()
}

// pageKey identifies one page of one relation.
type pageKey struct {
	rel  device.OID
	page uint32
}

// windowAt computes the open write window at a crash index: the index
// of the last completed sync barrier before it (-1 if none) and, for
// each page, the in-order trace indices of the writes issued to it
// after that barrier. Writes at or before the barrier are durable;
// writes in the window are subject to per-page choice.
func windowAt(ops []device.RecOp, crashIndex int) (lastSync int, win map[pageKey][]int) {
	lastSync = -1
	for i := 0; i < crashIndex && i < len(ops); i++ {
		if ops[i].Kind == device.RecSync {
			lastSync = i
		}
	}
	win = make(map[pageKey][]int)
	for i := lastSync + 1; i < crashIndex && i < len(ops); i++ {
		if ops[i].Kind == device.RecWrite {
			k := pageKey{ops[i].Rel, ops[i].Page}
			win[k] = append(win[k], i)
		}
	}
	return lastSync, win
}

// Materialize constructs the disk image a crash in state st would have
// left behind: metadata ops and pre-barrier writes from ops[0:CrashIndex]
// are applied in issue order; window writes land according to the
// per-page choices (default: all landed, i.e. the pure prefix).
func Materialize(ops []device.RecOp, st State) *Image {
	img := NewImage()
	ci := st.CrashIndex
	if ci > len(ops) {
		ci = len(ops)
	}
	lastSync, win := windowAt(ops, ci)
	choice := make(map[pageKey]int, len(st.Choices))
	for _, c := range st.Choices {
		choice[pageKey{c.Rel, c.Page}] = c.Choice
	}
	for i := 0; i < ci; i++ {
		op := ops[i]
		switch op.Kind {
		case device.RecCreate:
			img.Create(op.Rel)
		case device.RecDrop:
			img.Drop(op.Rel)
		case device.RecExtend:
			// Extends are metadata: applied deterministically in order.
			img.grow(op.Rel, op.Page)
		case device.RecWrite:
			if i <= lastSync {
				img.apply(op)
			}
		}
	}
	for k, idxs := range win {
		c, ok := choice[k]
		if !ok || c > len(idxs) {
			c = len(idxs)
		}
		if c > 0 {
			img.apply(ops[idxs[c-1]])
		}
	}
	return img
}
