package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/txn"
)

// A Workload drives a live database over a recording device and
// returns the durable outcomes it expects. Drive runs with the
// database already open and the start barrier already recorded; the
// harness crashes the database afterwards and enumerates the trace.
type Workload struct {
	Name string
	Opts core.Options
	Drive func(db *core.DB, rec *device.Recorder, seed int64) ([]FileExpect, error)
}

// Workloads returns the torture workloads, each stressing a different
// corner of the commit pipeline:
//
//   - "mini": two sequential small commits — small enough for
//     exhaustive enumeration of the full cartesian product.
//   - "groupcommit": concurrent committers absorbed into group-commit
//     batches (g=4, then g=8) under a commit window, the async
//     pipeline's ordering worst case.
//   - "bgwriter": background-writer churn racing commit forces, so
//     data pages reach the device from two uncoordinated paths.
//   - "checkpoint": checkpoint advancement racing commits, plus an
//     overwrite history on one shared path to exercise multi-version
//     time travel across crash states.
//   - "namespace": an eight-way hash-partitioned namespace under a
//     mkdir/unlink storm plus concurrent directory-crossing renames.
//     A rename between directories in different shards is a two-shard
//     transactional move (delete in one relation set, insert in
//     another, one commit record); every crash state must observe it
//     atomically — content at exactly one of the two names, never
//     both, never neither once acked.
func Workloads() []Workload {
	return []Workload{
		{Name: "mini", Drive: driveMini},
		{
			Name: "namespace",
			Opts: core.Options{
				NamespaceShards:   8,
				GroupCommitWindow: 2 * time.Millisecond,
			},
			Drive: driveNamespace,
		},
		{
			Name: "groupcommit",
			Opts: core.Options{GroupCommitWindow: 2 * time.Millisecond},
			Drive: driveGroupCommit,
		},
		{
			Name: "bgwriter",
			Opts: core.Options{
				Buffers:          32,
				BackgroundWriter: true,
				BGWriter: buffer.BGConfig{
					HighFrac: 0.3,
					LowFrac:  0.1,
					Interval: time.Millisecond,
					MaxBatch: 8,
				},
			},
			Drive: driveBGWriter,
		},
		{Name: "checkpoint", Drive: driveCheckpoint},
	}
}

// WorkloadByName resolves a workload.
func WorkloadByName(name string) (Workload, error) {
	for _, w := range Workloads() {
		if w.Name == name {
			return w, nil
		}
	}
	return Workload{}, fmt.Errorf("torture: unknown workload %q", name)
}

// fileContent derives a file's deterministic content from the run seed
// and its path, so replay needs no stored RNG state beyond the seed.
func fileContent(seed int64, path string, n int) []byte {
	rng := rand.New(rand.NewSource(seed ^ int64(device.PayloadHash([]byte(path)))))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// expects collects FileExpect records as commits are acknowledged.
type expects struct {
	mu   sync.Mutex
	list []FileExpect
}

// acked records one acknowledged commit: the commit time the manager
// assigned the XID and the trace length at acknowledgement. Any crash
// index at or beyond that length includes the commit's sync barrier.
func (e *expects) acked(db *core.DB, rec *device.Recorder, xid txn.XID, path string, data []byte) {
	t := db.Manager().CommitTime(xid)
	ai := rec.Len()
	e.mu.Lock()
	e.list = append(e.list, FileExpect{Path: path, Content: data, CommitTime: t, AckIndex: ai})
	e.mu.Unlock()
}

// commitFile creates path with the given content in one transaction.
func commitFile(db *core.DB, path string, data []byte) (txn.XID, error) {
	tx, err := db.Manager().Begin()
	if err != nil {
		return txn.InvalidXID, err
	}
	f, err := db.CreateTx(tx, path, "torture", "", "", 0)
	if err != nil {
		tx.Abort()
		return txn.InvalidXID, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		tx.Abort()
		return txn.InvalidXID, err
	}
	if err := f.Close(); err != nil {
		tx.Abort()
		return txn.InvalidXID, err
	}
	return tx.ID(), tx.Commit()
}

// overwriteFile replaces path's content in one transaction.
func overwriteFile(db *core.DB, path string, data []byte) (txn.XID, error) {
	tx, err := db.Manager().Begin()
	if err != nil {
		return txn.InvalidXID, err
	}
	f, err := db.OpenTx(tx, path, true)
	if err != nil {
		tx.Abort()
		return txn.InvalidXID, err
	}
	if err := f.Truncate(0); err != nil {
		f.Close()
		tx.Abort()
		return txn.InvalidXID, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		tx.Abort()
		return txn.InvalidXID, err
	}
	if err := f.Close(); err != nil {
		tx.Abort()
		return txn.InvalidXID, err
	}
	return tx.ID(), tx.Commit()
}

// mkdirTx creates one directory in its own transaction.
func mkdirTx(db *core.DB, path string) error {
	tx, err := db.Manager().Begin()
	if err != nil {
		return err
	}
	if _, err := db.MkdirTx(tx, path, "torture"); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// renameTx moves oldPath to newPath in its own transaction.
func renameTx(db *core.DB, oldPath, newPath string) (txn.XID, error) {
	tx, err := db.Manager().Begin()
	if err != nil {
		return txn.InvalidXID, err
	}
	if err := db.RenameTx(tx, oldPath, newPath); err != nil {
		tx.Abort()
		return txn.InvalidXID, err
	}
	return tx.ID(), tx.Commit()
}

// driveNamespace: cross-shard rename atomicity on a partitioned
// namespace. Six directories spread (by parent-OID hash) across eight
// shards; a mkdir/unlink storm churns naming rows in several shards;
// then four files are created and concurrently renamed into different
// directories — at N=8 most of those moves cross shards, so the commit
// record covers naming deletes and inserts in different relation sets.
// Each rename is recorded as a move expect (MovedFrom), which
// VerifyState checks for two-shard atomicity at every crash state. The
// recovered database is opened without an explicit shard count, so
// every crash state also proves the bootstrap-persisted count routes
// recovery to the right shards.
func driveNamespace(db *core.DB, rec *device.Recorder, seed int64) ([]FileExpect, error) {
	const dirs = 6
	for d := 0; d < dirs; d++ {
		if err := mkdirTx(db, fmt.Sprintf("/nd%d", d)); err != nil {
			return nil, err
		}
	}
	// Storm: one transaction scatters scratch files across the
	// directories, a second unlinks half of them — naming rows with
	// stamped xmax in several shards, no expected survivors to track
	// (the structural scrub still walks them on every crash state).
	tx, err := db.Manager().Begin()
	if err != nil {
		return nil, err
	}
	for d := 0; d < dirs; d++ {
		f, err := db.CreateTx(tx, fmt.Sprintf("/nd%d/scratch%d", d, d), "torture", "", "", 0)
		if err != nil {
			tx.Abort()
			return nil, err
		}
		if err := f.Close(); err != nil {
			tx.Abort()
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	tx, err = db.Manager().Begin()
	if err != nil {
		return nil, err
	}
	for d := 0; d < dirs; d += 2 {
		if err := db.UnlinkTx(tx, fmt.Sprintf("/nd%d/scratch%d", d, d)); err != nil {
			tx.Abort()
			return nil, err
		}
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}

	// The moves: create sequentially (so every rename has a durable
	// source), then rename concurrently under the commit window, each
	// into a different directory than its source.
	const moves = 4
	type created struct {
		oldPath, newPath string
		content          []byte
		commitTime       int64
		ackIndex         int
	}
	var cs [moves]created
	for i := 0; i < moves; i++ {
		c := &cs[i]
		c.oldPath = fmt.Sprintf("/nd%d/src%d", i, i)
		c.newPath = fmt.Sprintf("/nd%d/dst%d", (i+3)%dirs, i)
		c.content = fileContent(seed, c.oldPath, 250+i*150)
		xid, err := commitFile(db, c.oldPath, c.content)
		if err != nil {
			return nil, err
		}
		c.commitTime = db.Manager().CommitTime(xid)
		c.ackIndex = rec.Len()
	}
	ex := &expects{}
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < moves; i++ {
		wg.Add(1)
		go func(c *created) {
			defer wg.Done()
			// Two moves touching the same directory pair in opposite
			// orders can deadlock on the directories' attribute rows;
			// the loser retries, like any client would.
			xid, err := renameTx(db, c.oldPath, c.newPath)
			for errors.Is(err, txn.ErrDeadlock) {
				xid, err = renameTx(db, c.oldPath, c.newPath)
			}
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("rename %s -> %s: %w", c.oldPath, c.newPath, err)
				}
				errMu.Unlock()
				return
			}
			t := db.Manager().CommitTime(xid)
			ai := rec.Len()
			ex.mu.Lock()
			ex.list = append(ex.list, FileExpect{
				Path:           c.newPath,
				Content:        c.content,
				CommitTime:     t,
				AckIndex:       ai,
				MovedFrom:      c.oldPath,
				FromCommitTime: c.commitTime,
				FromAckIndex:   c.ackIndex,
			})
			ex.mu.Unlock()
		}(&cs[i])
	}
	wg.Wait()
	return ex.list, firstErr
}

// driveMini: two sequential sub-chunk commits. The whole trace is a few
// dozen ops, small enough that exhaustive enumeration terminates.
func driveMini(db *core.DB, rec *device.Recorder, seed int64) ([]FileExpect, error) {
	ex := &expects{}
	for i := 0; i < 2; i++ {
		path := fmt.Sprintf("/mini-%d", i)
		data := fileContent(seed, path, 200+i*300)
		xid, err := commitFile(db, path, data)
		if err != nil {
			return nil, err
		}
		ex.acked(db, rec, xid, path, data)
	}
	return ex.list, nil
}

// driveGroupCommit: two rounds of concurrent committers (g=4, g=8)
// under a 2ms commit window, so followers ride a leader's force. Sizes
// straddle chunk boundaries: sub-chunk, multi-chunk, and partial-tail
// files all appear in every batch.
func driveGroupCommit(db *core.DB, rec *device.Recorder, seed int64) ([]FileExpect, error) {
	ex := &expects{}
	var firstErr error
	var errMu sync.Mutex
	for r, g := range []int{4, 8} {
		var wg sync.WaitGroup
		for i := 0; i < g; i++ {
			wg.Add(1)
			go func(r, i int) {
				defer wg.Done()
				path := fmt.Sprintf("/gc-%d-%d", r, i)
				size := 700 + (i*2641)%(2*core.ChunkSize)
				data := fileContent(seed, path, size)
				xid, err := commitFile(db, path, data)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", path, err)
					}
					errMu.Unlock()
					return
				}
				ex.acked(db, rec, xid, path, data)
			}(r, i)
		}
		wg.Wait()
	}
	return ex.list, firstErr
}

// driveBGWriter: commits race the background writer, so data pages
// reach the device both from commit forces and from watermark flushes
// the commit never sees. Two writers, three files each, multi-chunk
// sizes to keep the dirty set above the low watermark.
func driveBGWriter(db *core.DB, rec *device.Recorder, seed int64) ([]FileExpect, error) {
	ex := &expects{}
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				path := fmt.Sprintf("/bg-%d-%d", w, i)
				size := core.ChunkSize + 500 + w*1000 + i*700
				data := fileContent(seed, path, size)
				xid, err := commitFile(db, path, data)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("%s: %w", path, err)
					}
					errMu.Unlock()
					return
				}
				ex.acked(db, rec, xid, path, data)
			}
		}(w)
	}
	wg.Wait()
	return ex.list, firstErr
}

// driveCheckpoint: checkpoints race commits, and one shared path is
// overwritten every round so crash states carry a multi-version
// history whose every acked version must stay time-travel readable.
func driveCheckpoint(db *core.DB, rec *device.Recorder, seed int64) ([]FileExpect, error) {
	ex := &expects{}
	shared := "/ckpt-shared"
	v0 := fileContent(seed, shared+"@0", 900)
	xid, err := commitFile(db, shared, v0)
	if err != nil {
		return nil, err
	}
	ex.acked(db, rec, xid, shared, v0)

	var ckptWg sync.WaitGroup
	var ckptErr error
	var errMu sync.Mutex
	for k := 1; k <= 4; k++ {
		if k%2 == 0 {
			ckptWg.Add(1)
			go func() {
				defer ckptWg.Done()
				if err := db.Checkpoint(); err != nil {
					errMu.Lock()
					if ckptErr == nil {
						ckptErr = err
					}
					errMu.Unlock()
				}
			}()
		}
		vk := fileContent(seed, fmt.Sprintf("%s@%d", shared, k), 600+k*450)
		xid, err := overwriteFile(db, shared, vk)
		if err != nil {
			return nil, err
		}
		ex.acked(db, rec, xid, shared, vk)

		path := fmt.Sprintf("/ckpt-%d", k)
		data := fileContent(seed, path, 400+k*core.ChunkSize/2)
		xid, err = commitFile(db, path, data)
		if err != nil {
			return nil, err
		}
		ex.acked(db, rec, xid, path, data)
	}
	ckptWg.Wait()
	if ckptErr != nil {
		return nil, ckptErr
	}
	// One final checkpoint so recovery starts from an advanced horizon.
	if err := db.Checkpoint(); err != nil {
		return nil, err
	}
	return ex.list, nil
}
