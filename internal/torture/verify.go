package torture

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/device"
)

// The standing invariants a freshly recovered database must satisfy on
// EVERY legal crash state:
//
//  1. Recovery succeeds. Reopening the image is the entire recovery
//     path; it may repair, it may not fail.
//  2. Every acknowledged commit is durable: a version whose commit was
//     acked at trace index a is byte-exact readable on any crash at
//     index ≥ a, and its Stat size agrees.
//  3. No torn commits, acked or not: a version that was not (yet)
//     acknowledged may be present in full or absent entirely — the
//     group-commit leader may have forced a follower's record before
//     the follower observed the ack — but a file whose content matches
//     no committed version is a corruption.
//  4. Time travel holds: each durable version is readable as-of its
//     commit time; the path does not exist as-of the instant before
//     its first version; nothing is visible as-of time 1 (bootstrap) —
//     the observable symptom of a committed transaction with a zeroed
//     commit time.
//  5. The structural scrub is clean: B-tree invariants, namespace
//     cross-links, chunk records, self-identifying pages, no
//     committed-without-commit-time XIDs left in the log.
//  6. Recovery is idempotent: crashing the recovered instance without
//     new work and recovering again yields the same durable state.
//
// Scope: workloads in this package never vacuum and stay below B-tree
// split-reversal sizes, so every on-disk structure only grows during a
// run — which is what makes "reopen and read" a complete check.

// VerifyState materialises one crash state onto a fresh image, runs
// recovery, and checks every invariant above. It returns nil for a
// consistent state, or an error naming the first violation.
func VerifyState(ops []device.RecOp, st State, exps []FileExpect) error {
	img := Materialize(ops, st)
	sw := device.NewSwitch()
	sw.Register(img)
	if err := verifyOpen(sw, st.CrashIndex, exps, true); err != nil {
		return err
	}
	// Idempotence: a second recovery over the same image (now possibly
	// repaired by the first) must converge to the same durable state.
	if err := verifyOpen(sw, st.CrashIndex, exps, false); err != nil {
		return fmt.Errorf("second recovery: %w", err)
	}
	return nil
}

// verifyOpen runs one recovery over the switch and checks the
// invariants at the given crash index. withScrub additionally runs the
// full structural scrub (the first recovery scrubs; the idempotence
// pass only re-checks durability).
func verifyOpen(sw *device.Switch, crashIndex int, exps []FileExpect, withScrub bool) error {
	db, err := core.Open(sw, core.Options{})
	if err != nil {
		return fmt.Errorf("recovery failed: %w", err)
	}
	defer db.Crash()

	sess := db.NewSession("torture")
	var plain []FileExpect
	for _, e := range exps {
		if e.MovedFrom != "" {
			if err := verifyMove(sess, e, crashIndex); err != nil {
				return err
			}
			continue
		}
		plain = append(plain, e)
	}
	for _, g := range groupExpects(plain) {
		if err := verifyPath(sess, g, crashIndex); err != nil {
			return err
		}
	}

	if withScrub {
		rep, err := db.Scrub()
		if err != nil {
			return fmt.Errorf("scrub errored: %w", err)
		}
		if !rep.OK() {
			msg := rep.Summary()
			for _, c := range rep.Media.Corrupt {
				msg += "; " + c.String()
			}
			for _, p := range rep.Problems {
				msg += "; " + p
			}
			return fmt.Errorf("scrub not clean: %s", msg)
		}
	}
	return nil
}

// groupExpects orders expectations into per-path version histories,
// each sorted by commit time, with the groups themselves in first-seen
// order.
func groupExpects(exps []FileExpect) [][]FileExpect {
	byPath := make(map[string][]FileExpect)
	var order []string
	for _, e := range exps {
		if _, ok := byPath[e.Path]; !ok {
			order = append(order, e.Path)
		}
		byPath[e.Path] = append(byPath[e.Path], e)
	}
	out := make([][]FileExpect, 0, len(order))
	for _, p := range order {
		vers := byPath[p]
		sort.Slice(vers, func(i, j int) bool { return vers[i].CommitTime < vers[j].CommitTime })
		out = append(out, vers)
	}
	return out
}

// verifyPath checks one path's version history against the recovered
// state at the given crash index.
func verifyPath(sess *core.Session, vers []FileExpect, crashIndex int) error {
	path := vers[0].Path

	// The newest version whose commit was acknowledged before the crash.
	acked := -1
	for vi, e := range vers {
		if e.AckIndex >= 0 && e.AckIndex <= crashIndex {
			acked = vi
		}
	}

	data, rerr := sess.ReadFile(path)
	if acked >= 0 {
		// Invariant 2: acked content durable, byte-exact or newer.
		if rerr != nil {
			return fmt.Errorf("%s: acked commit lost: %w", path, rerr)
		}
		if vi := matchVersion(vers, data, acked); vi < 0 {
			return fmt.Errorf("%s: torn state: %d bytes on disk match no version ≥ the last acked (len(acked)=%d)",
				path, len(data), len(vers[acked].Content))
		}
		attr, serr := sess.Stat(path)
		if serr != nil {
			return fmt.Errorf("%s: readable but unstattable: %w", path, serr)
		}
		if attr.Size != int64(len(data)) {
			return fmt.Errorf("%s: stat size %d, content %d bytes", path, attr.Size, len(data))
		}
		// Invariant 4: each acked version readable as of its commit time.
		for vi := 0; vi <= acked; vi++ {
			e := vers[vi]
			old, err := sess.ReadFileAsOf(path, e.CommitTime)
			if err != nil {
				return fmt.Errorf("%s: version as of t=%d unreadable: %w", path, e.CommitTime, err)
			}
			if !bytes.Equal(old, e.Content) {
				return fmt.Errorf("%s: version as of t=%d has %d bytes, want %d",
					path, e.CommitTime, len(old), len(e.Content))
			}
		}
		if _, err := sess.StatAsOf(path, vers[0].CommitTime-1); !errors.Is(err, core.ErrNotExist) {
			return fmt.Errorf("%s: exists before its first commit (t=%d): err=%v",
				path, vers[0].CommitTime-1, err)
		}
	} else {
		// Invariant 3: an unacked commit is all-or-nothing.
		switch {
		case rerr == nil:
			if vi := matchVersion(vers, data, 0); vi < 0 {
				return fmt.Errorf("%s: partial unacked commit visible: %d bytes match no version",
					path, len(data))
			}
		case !errors.Is(rerr, core.ErrNotExist):
			return fmt.Errorf("%s: unexpected read error: %w", path, rerr)
		}
	}

	// Invariant 4, zero-commit-time guard: nothing the workload created
	// may be visible as of the bootstrap instant.
	if _, err := sess.StatAsOf(path, 1); !errors.Is(err, core.ErrNotExist) {
		return fmt.Errorf("%s: visible as of time 1 — committed transaction with no commit time (err=%v)",
			path, err)
	}
	return nil
}

// verifyMove checks one committed-rename expectation: a file created at
// e.MovedFrom and renamed to e.Path, the two possibly in different
// namespace shards. The rename is a two-shard transactional move
// (delete the naming row in the source shard, insert in the
// destination shard, one commit record), so the invariant is
// atomicity across the shard pair at every crash state.
func verifyMove(sess *core.Session, e FileExpect, crashIndex int) error {
	renameAcked := e.AckIndex >= 0 && e.AckIndex <= crashIndex
	createAcked := e.FromAckIndex >= 0 && e.FromAckIndex <= crashIndex

	newData, newErr := sess.ReadFile(e.Path)
	if newErr != nil && !errors.Is(newErr, core.ErrNotExist) {
		return fmt.Errorf("%s: unexpected read error: %w", e.Path, newErr)
	}
	oldData, oldErr := sess.ReadFile(e.MovedFrom)
	if oldErr != nil && !errors.Is(oldErr, core.ErrNotExist) {
		return fmt.Errorf("%s: unexpected read error: %w", e.MovedFrom, oldErr)
	}
	// Whichever path is visible must carry the full content — a partial
	// file at either end is a torn commit regardless of ack state.
	if newErr == nil && !bytes.Equal(newData, e.Content) {
		return fmt.Errorf("%s: torn content after rename: %d bytes, want %d",
			e.Path, len(newData), len(e.Content))
	}
	if oldErr == nil && !bytes.Equal(oldData, e.Content) {
		return fmt.Errorf("%s: torn content at rename source: %d bytes, want %d",
			e.MovedFrom, len(oldData), len(e.Content))
	}

	switch {
	case renameAcked:
		// The acked rename is durable: content at the destination only.
		if newErr != nil {
			return fmt.Errorf("%s: acked rename lost (created at %s): %w", e.Path, e.MovedFrom, newErr)
		}
		if oldErr == nil {
			return fmt.Errorf("rename not atomic: %s still visible alongside %s", e.MovedFrom, e.Path)
		}
		// Time travel across the move: the file is readable at the source
		// as of the create and at the destination as of the rename, and
		// the destination name did not exist the instant before the
		// rename committed.
		if old, err := sess.ReadFileAsOf(e.MovedFrom, e.FromCommitTime); err != nil {
			return fmt.Errorf("%s: pre-rename version as of t=%d unreadable: %w", e.MovedFrom, e.FromCommitTime, err)
		} else if !bytes.Equal(old, e.Content) {
			return fmt.Errorf("%s: pre-rename version as of t=%d has %d bytes, want %d",
				e.MovedFrom, e.FromCommitTime, len(old), len(e.Content))
		}
		if now, err := sess.ReadFileAsOf(e.Path, e.CommitTime); err != nil {
			return fmt.Errorf("%s: renamed version as of t=%d unreadable: %w", e.Path, e.CommitTime, err)
		} else if !bytes.Equal(now, e.Content) {
			return fmt.Errorf("%s: renamed version as of t=%d has %d bytes, want %d",
				e.Path, e.CommitTime, len(now), len(e.Content))
		}
		if _, err := sess.StatAsOf(e.Path, e.CommitTime-1); !errors.Is(err, core.ErrNotExist) {
			return fmt.Errorf("%s: exists before the rename committed (t=%d): err=%v",
				e.Path, e.CommitTime-1, err)
		}
	case createAcked:
		// Create durable, rename maybe: the content lives at exactly one
		// of the two names. Both visible is a half-applied move (the
		// destination shard's insert landed without the source shard's
		// delete); neither visible loses an acked commit.
		if oldErr == nil && newErr == nil {
			return fmt.Errorf("rename not atomic: %s and %s both visible", e.MovedFrom, e.Path)
		}
		if oldErr != nil && newErr != nil {
			return fmt.Errorf("%s: acked create lost (rename to %s unacked): %w", e.MovedFrom, e.Path, oldErr)
		}
	default:
		// Nothing acked: each commit is still all-or-nothing, so at most
		// one name is visible (the torn-content checks above already
		// rejected partial states).
		if oldErr == nil && newErr == nil {
			return fmt.Errorf("rename not atomic: %s and %s both visible (neither commit acked)", e.MovedFrom, e.Path)
		}
	}

	// Zero-commit-time guard for both names.
	for _, p := range []string{e.MovedFrom, e.Path} {
		if _, err := sess.StatAsOf(p, 1); !errors.Is(err, core.ErrNotExist) {
			return fmt.Errorf("%s: visible as of time 1 — committed transaction with no commit time (err=%v)", p, err)
		}
	}
	return nil
}

// matchVersion reports the index of the first version ≥ from whose
// content equals data, or -1.
func matchVersion(vers []FileExpect, data []byte, from int) int {
	for vi := from; vi < len(vers); vi++ {
		if bytes.Equal(data, vers[vi].Content) {
			return vi
		}
	}
	return -1
}

// CrashDuringRecovery materialises a crash state, injects a one-shot
// fault on the n-th device operation of the given class during
// recovery itself (crashing the recovering process), heals the device,
// and requires the second recovery to converge: it must succeed and
// satisfy every invariant. tripped reports whether the fault actually
// fired (recovery may complete before the n-th operation).
func CrashDuringRecovery(ops []device.RecOp, st State, exps []FileExpect,
	faultOp device.FaultOp, nth uint64) (tripped bool, err error) {
	img := Materialize(ops, st)
	f := device.NewFaulty(img, 1).FailNth(faultOp, nth, nil)
	sw := device.NewSwitch()
	sw.Register(f)

	db, openErr := core.Open(sw, core.Options{})
	tripped = f.Trips() > 0
	if openErr == nil {
		// Recovery finished before the fault point (or the fault hit a
		// non-fatal path); crash it and recover again below.
		db.Crash()
	} else if !tripped {
		return false, fmt.Errorf("recovery failed without an injected fault: %w", openErr)
	}
	f.Clear().Heal()
	if err := verifyOpen(sw, st.CrashIndex, exps, true); err != nil {
		return tripped, fmt.Errorf("recovery after mid-recovery crash (op %s #%d): %w", faultOp, nth, err)
	}
	return tripped, nil
}
