package torture

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/device"
)

// BreakMode deliberately sabotages the commit pipeline's data force.
// The harness must detect both modes — they are the self-test proving
// a broken durability path cannot slip past enumeration.
type BreakMode string

const (
	// BreakNone leaves the pipeline intact.
	BreakNone BreakMode = ""
	// BreakNoFlush replaces ForceData with a no-op: commits ack without
	// data pages ever reaching the device. Even the pure end-of-trace
	// prefix then loses acked data — detected deterministically.
	BreakNoFlush BreakMode = "noflush"
	// BreakNoSync keeps the flush but drops the data sync barrier. The
	// data writes stay in the open window all the way to the log force,
	// so enumeration reaches states where the commit record landed but
	// a data page did not — a torn commit the intact pipeline's barrier
	// makes unconstructible.
	BreakNoSync BreakMode = "nosync"
)

// RunConfig configures one harness run.
type RunConfig struct {
	// Workload names one of Workloads(). Required.
	Workload string
	// Seed drives workload content and the sampling pass.
	Seed int64
	// Exhaustive walks the full per-window cartesian product (use with
	// the "mini" workload; capped by MaxStates otherwise).
	Exhaustive bool
	// Samples and MaxStates are passed to Enumerate (defaults apply).
	Samples   int
	MaxStates int
	// Break sabotages the force path for detection self-tests.
	Break BreakMode
	// MaxViolations stops enumeration after this many failing states
	// (default 3): each one writes a repro bundle.
	MaxViolations int
	// OutDir receives repro bundles (default: $TORTURE_OUT, then the
	// system temp dir).
	OutDir string
	// Logf, when set, receives progress lines.
	Logf func(format string, args ...any)
}

// Violation is one crash state that failed verification.
type Violation struct {
	State State
	Err   error
}

// Result reports one harness run.
type Result struct {
	Workload   string
	Seed       int64
	TraceOps   int
	Start      int
	Stats      EnumStats
	Violations []Violation
	Bundles    []string
}

// Run records one workload over a fresh in-memory database, then
// enumerates the crash states of the recorded trace and verifies every
// one. Failing states are serialised as self-contained repro bundles.
func Run(cfg RunConfig) (*Result, error) {
	wl, err := WorkloadByName(cfg.Workload)
	if err != nil {
		return nil, err
	}
	if cfg.MaxViolations <= 0 {
		cfg.MaxViolations = 3
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	rec := device.NewRecorder(device.NewMem(nil, 0))
	sw := device.NewSwitch()
	sw.Register(rec)
	db, err := core.Open(sw, wl.Opts)
	if err != nil {
		return nil, fmt.Errorf("torture: opening workload db: %w", err)
	}
	rec.SetObs(db.Obs())

	switch cfg.Break {
	case BreakNone:
	case BreakNoFlush:
		db.Manager().ForceData = func() error { return nil }
	case BreakNoSync:
		pool := db.Pool()
		db.Manager().ForceData = pool.FlushAll
	default:
		db.Crash()
		return nil, fmt.Errorf("torture: unknown break mode %q", cfg.Break)
	}

	// Start barrier: quiesce bootstrap and mark the first legal crash
	// index. States before it (mkfs in progress) are out of scope.
	if err := db.Pool().FlushAll(); err != nil {
		db.Crash()
		return nil, err
	}
	if err := sw.Sync(); err != nil {
		db.Crash()
		return nil, err
	}
	start := rec.Len()

	exps, derr := wl.Drive(db, rec, cfg.Seed)
	db.Crash()
	if derr != nil {
		return nil, fmt.Errorf("torture: workload %s: %w", wl.Name, derr)
	}
	ops := rec.Trace()
	logf("torture: %s: recorded %d ops (%d in scope), %d expected files",
		wl.Name, len(ops), len(ops)-start, len(exps))

	res := &Result{Workload: wl.Name, Seed: cfg.Seed, TraceOps: len(ops), Start: start}
	dir := bundleDir(cfg.OutDir)
	stats, err := Enumerate(ops, EnumOpts{
		Start:      start,
		Exhaustive: cfg.Exhaustive,
		Seed:       cfg.Seed,
		Samples:    cfg.Samples,
		MaxStates:  cfg.MaxStates,
	}, func(st State) error {
		verr := VerifyState(ops, st, exps)
		if verr == nil {
			return nil
		}
		res.Violations = append(res.Violations, Violation{State: st, Err: verr})
		b := &Bundle{
			Workload: wl.Name,
			Seed:     cfg.Seed,
			Note:     verr.Error(),
			Ops:      ops,
			State:    st,
			Exps:     exps,
		}
		path := bundlePath(dir, wl.Name, cfg.Seed, st, len(res.Violations))
		if werr := WriteBundle(path, b); werr != nil {
			logf("torture: writing repro bundle: %v", werr)
		} else {
			res.Bundles = append(res.Bundles, path)
			logf("torture: VIOLATION %s: %v (repro: %s)", st, verr, path)
		}
		if len(res.Violations) >= cfg.MaxViolations {
			return ErrStop
		}
		return nil
	})
	res.Stats = stats
	if err != nil {
		return res, err
	}
	logf("torture: %s: %d crash points, %d states generated, %d verified, %d deduped, capped=%v, %d violations",
		wl.Name, stats.CrashPoints, stats.Generated, stats.Visited, stats.Deduped,
		stats.Capped, len(res.Violations))
	return res, nil
}

// RecordTrace runs just the record phase of a workload: it returns the
// recorded ops, the workload-start barrier index, and the expected
// outcomes, for callers (crash-during-recovery tests, custom
// enumerations) that drive verification themselves.
func RecordTrace(workload string, seed int64, brk BreakMode) (ops []device.RecOp, start int, exps []FileExpect, err error) {
	wl, err := WorkloadByName(workload)
	if err != nil {
		return nil, 0, nil, err
	}
	rec := device.NewRecorder(device.NewMem(nil, 0))
	sw := device.NewSwitch()
	sw.Register(rec)
	db, err := core.Open(sw, wl.Opts)
	if err != nil {
		return nil, 0, nil, err
	}
	switch brk {
	case BreakNoFlush:
		db.Manager().ForceData = func() error { return nil }
	case BreakNoSync:
		pool := db.Pool()
		db.Manager().ForceData = pool.FlushAll
	}
	if err := db.Pool().FlushAll(); err != nil {
		db.Crash()
		return nil, 0, nil, err
	}
	if err := sw.Sync(); err != nil {
		db.Crash()
		return nil, 0, nil, err
	}
	start = rec.Len()
	exps, derr := wl.Drive(db, rec, seed)
	db.Crash()
	if derr != nil {
		return nil, 0, nil, derr
	}
	return rec.Trace(), start, exps, nil
}
