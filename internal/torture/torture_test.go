package torture

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/txn"
)

// -torture.full (or TORTURE_FULL=1) removes the smoke caps: more
// samples, higher state ceilings, exhaustive passes where feasible.
// CI's torture-smoke job runs the default; the full walk is for
// dedicated soak runs.
var tortureFull = flag.Bool("torture.full", false,
	"run the full (slow) crash-state enumeration instead of the smoke sample")

func fullMode() bool { return *tortureFull || os.Getenv("TORTURE_FULL") != "" }

// smokeCfg scales a run to the mode: seeded smoke sample by default,
// the heavy walk under -torture.full.
func smokeCfg(t *testing.T, workload string) RunConfig {
	cfg := RunConfig{
		Workload:  workload,
		Seed:      42,
		Samples:   96,
		MaxStates: 900,
		// Honour TORTURE_OUT (CI uploads that directory as the repro
		// artifact on failure); fall back to the test's temp dir.
		OutDir: os.Getenv("TORTURE_OUT"),
		Logf:   t.Logf,
	}
	if cfg.OutDir == "" {
		cfg.OutDir = t.TempDir()
	}
	if fullMode() {
		cfg.Samples = 512
		cfg.MaxStates = 20000
		cfg.Exhaustive = true
	}
	return cfg
}

func mustRun(t *testing.T, cfg RunConfig) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%s): %v", cfg.Workload, err)
	}
	return res
}

func assertClean(t *testing.T, res *Result) {
	t.Helper()
	for _, v := range res.Violations {
		t.Errorf("%s: crash state %s violates invariants: %v", res.Workload, v.State, v.Err)
	}
	if res.Stats.Visited == 0 {
		t.Fatalf("%s: enumeration visited no states", res.Workload)
	}
	if res.Stats.Visited <= res.Stats.CrashPoints-1 && !res.Stats.Capped {
		t.Errorf("%s: visited %d states over %d crash points — reorderings not enumerated?",
			res.Workload, res.Stats.Visited, res.Stats.CrashPoints)
	}
}

func TestTortureGroupCommit(t *testing.T) {
	assertClean(t, mustRun(t, smokeCfg(t, "groupcommit")))
}

func TestTortureBGWriter(t *testing.T) {
	assertClean(t, mustRun(t, smokeCfg(t, "bgwriter")))
}

func TestTortureCheckpoint(t *testing.T) {
	assertClean(t, mustRun(t, smokeCfg(t, "checkpoint")))
}

// TestTortureNamespace enumerates crash states of the partitioned-
// namespace workload: concurrent directory-crossing renames on an
// eight-shard volume, each verified for two-shard atomicity (content at
// exactly one of the two names at every crash state), plus the
// mkdir/unlink storm the structural scrub walks. It also sanity-checks
// the trace actually spans multiple shard relation sets — otherwise the
// cross-shard path was never recorded and the run proves nothing.
func TestTortureNamespace(t *testing.T) {
	assertClean(t, mustRun(t, smokeCfg(t, "namespace")))

	ops, _, exps, err := RecordTrace("namespace", 42, BreakNone)
	if err != nil {
		t.Fatal(err)
	}
	rels := map[device.OID]bool{}
	for _, op := range ops {
		if op.Kind == device.RecWrite {
			rels[op.Rel] = true
		}
	}
	shardRels := 0
	for rel := range rels {
		if rel >= 20 && rel < 100 {
			shardRels++
		}
	}
	if shardRels == 0 {
		t.Fatalf("namespace trace touched no non-legacy shard relations: %v", rels)
	}
	moves := 0
	for _, e := range exps {
		if e.MovedFrom != "" {
			moves++
		}
	}
	if moves == 0 {
		t.Fatalf("namespace workload recorded no move expects")
	}
	t.Logf("namespace trace: %d ops, %d shard relations written, %d move expects",
		len(ops), shardRels, moves)
}

// TestTortureExhaustiveMini runs the full cartesian product over the
// two-commit trace: every crash prefix and every legal per-page
// write-survival combination, deduplicated by image signature. All of
// them must verify.
func TestTortureExhaustiveMini(t *testing.T) {
	cfg := smokeCfg(t, "mini")
	cfg.Exhaustive = true
	cfg.MaxStates = 6000
	res := mustRun(t, cfg)
	assertClean(t, res)
	if res.Stats.Generated <= res.Stats.CrashPoints {
		t.Errorf("exhaustive mini generated only %d states over %d crash points — no reorderings walked",
			res.Stats.Generated, res.Stats.CrashPoints)
	}
	t.Logf("mini exhaustive: %+v", res.Stats)
}

// TestTortureDetectsNoFlush is the harness's own detector self-test: a
// commit pipeline whose ForceData does nothing must be caught. With no
// flush, acked data never reaches the device, so even the pure
// end-of-trace prefix loses committed files.
func TestTortureDetectsNoFlush(t *testing.T) {
	cfg := smokeCfg(t, "mini")
	cfg.Break = BreakNoFlush
	res := mustRun(t, cfg)
	if len(res.Violations) == 0 {
		t.Fatalf("noflush pipeline not detected: %+v", res.Stats)
	}
	if len(res.Bundles) == 0 {
		t.Fatalf("violations found but no repro bundle written")
	}
	t.Logf("noflush detected: %d violations, first: %v", len(res.Violations), res.Violations[0].Err)
}

// TestTortureDetectsNoSync: a pipeline that flushes data but skips the
// sync barrier leaves the data writes in the open window all the way
// to the log force. Enumeration must reach a state where the commit
// record landed and a data page did not — the torn commit the barrier
// exists to prevent.
func TestTortureDetectsNoSync(t *testing.T) {
	cfg := smokeCfg(t, "mini")
	cfg.Break = BreakNoSync
	cfg.Exhaustive = true
	cfg.MaxStates = 6000
	res := mustRun(t, cfg)
	if len(res.Violations) == 0 {
		t.Fatalf("nosync pipeline not detected: %+v", res.Stats)
	}
	t.Logf("nosync detected: %d violations, first: %v", len(res.Violations), res.Violations[0].Err)
}

// TestBundleReplay proves the repro bundle is self-contained and
// byte-deterministic: replaying a violation bundle reproduces the
// identical violation, twice.
func TestBundleReplay(t *testing.T) {
	cfg := smokeCfg(t, "mini")
	cfg.Break = BreakNoFlush
	cfg.MaxViolations = 1
	res := mustRun(t, cfg)
	if len(res.Bundles) == 0 {
		t.Fatalf("no bundle to replay")
	}
	first := Replay(res.Bundles[0])
	if first == nil {
		t.Fatalf("replay of failing bundle verified clean")
	}
	second := Replay(res.Bundles[0])
	if second == nil || first.Error() != second.Error() {
		t.Fatalf("replay not deterministic:\n first: %v\nsecond: %v", first, second)
	}
	if !strings.Contains(first.Error(), res.Violations[0].Err.Error()) &&
		first.Error() != res.Violations[0].Err.Error() {
		t.Logf("note: replay violation %q vs live violation %q", first, res.Violations[0].Err)
	}
}

// TestBundleRoundTrip checks serialisation alone: ops, state, and
// expectations survive a write/read cycle bit-for-bit.
func TestBundleRoundTrip(t *testing.T) {
	ops, start, exps, err := RecordTrace("mini", 7, BreakNone)
	if err != nil {
		t.Fatal(err)
	}
	b := &Bundle{
		Workload: "mini",
		Seed:     7,
		Ops:      ops,
		State:    State{CrashIndex: start + 1, Choices: []PageChoice{{Rel: 3, Page: 0, Choice: 1}}},
		Exps:     exps,
	}
	path := filepath.Join(t.TempDir(), "rt.repro")
	if err := WriteBundle(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(b.Ops) || got.State.CrashIndex != b.State.CrashIndex ||
		len(got.Exps) != len(b.Exps) || got.State.Choices[0] != b.State.Choices[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range got.Ops {
		if got.Ops[i].Kind != b.Ops[i].Kind || got.Ops[i].Hash != b.Ops[i].Hash {
			t.Fatalf("op %d mismatch after round trip", i)
		}
	}
}

// TestCrashDuringRecovery injects faults into recovery itself: reads
// (the log/page loads recovery performs) and writes (the zero-time
// repair force). Whatever the first recovery manages before dying, the
// second recovery over the healed device must converge and satisfy
// every invariant.
func TestCrashDuringRecovery(t *testing.T) {
	ops, _, exps, err := RecordTrace("mini", 42, BreakNone)
	if err != nil {
		t.Fatal(err)
	}

	// Crash state: the full trace — recovery reads the whole log.
	full := State{CrashIndex: len(ops)}
	anyTripped := false
	maxN := uint64(24)
	if fullMode() {
		maxN = 200
	}
	for n := uint64(1); n <= maxN; n++ {
		tripped, err := CrashDuringRecovery(ops, full, exps, device.FaultRead, n)
		if err != nil {
			t.Fatalf("read-fault at op %d: %v", n, err)
		}
		anyTripped = anyTripped || tripped
	}
	if !anyTripped {
		t.Fatalf("no read fault ever tripped — recovery performs no reads?")
	}

	// Crash state: the commit record's window torn so the commit time
	// page was lost — recovery must repair (a write), and a crash on
	// that very repair write must still converge on the second pass.
	lastSync := -1
	for i, op := range ops {
		if op.Kind == device.RecSync {
			lastSync = i
		}
	}
	if lastSync < 0 {
		t.Fatalf("trace has no sync barrier")
	}
	torn := State{
		CrashIndex: lastSync,
		Choices:    []PageChoice{{Rel: device.OID(2), Page: 0, Choice: 0}},
	}
	for n := uint64(1); n <= 4; n++ {
		tripped, err := CrashDuringRecovery(ops, torn, exps, device.FaultWrite, n)
		if err != nil {
			t.Fatalf("write-fault at op %d over torn-time state: %v", n, err)
		}
		_ = tripped
	}
}

// TestBootstrapDurableAtOpen is the regression test for the second bug
// the harness surfaced: bootstrap wrote the root directory through the
// buffer pool but never flushed or synced it, so a crash after Open
// returned could persist the bootstrap commit record while losing the
// root directory's rows — recovery then had to silently re-bootstrap,
// and any partially-landed bootstrap page produced a half-built
// namespace. Open must leave a fully durable image: recovering a
// crash-at-open image performs no data writes (recovery is read-only
// outside log repair) and finds the root directory intact.
func TestBootstrapDurableAtOpen(t *testing.T) {
	rec := device.NewRecorder(device.NewMem(nil, 0))
	sw := device.NewSwitch()
	sw.Register(rec)
	db, err := core.Open(sw, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	db.Crash()
	ops := rec.Trace()

	img := Materialize(ops, State{CrashIndex: len(ops)})
	rec2 := device.NewRecorder(img)
	sw2 := device.NewSwitch()
	sw2.Register(rec2)
	db2, err := core.Open(sw2, core.Options{})
	if err != nil {
		t.Fatalf("recovery of a crashed-at-open image failed: %v", err)
	}
	defer db2.Crash()
	for _, op := range rec2.Trace() {
		if op.Kind == device.RecWrite && op.Rel != txn.StatusLogRel && op.Rel != txn.TimeLogRel {
			t.Fatalf("recovery re-wrote rel %d page %d: bootstrap was not durable when Open returned",
				op.Rel, op.Page)
		}
	}
	sess := db2.NewSession("torture")
	if _, err := sess.ReadDir("/"); err != nil {
		t.Fatalf("root directory after crash-at-open recovery: %v", err)
	}
}

// TestTortureCountersInObs: a recording run surfaces its traffic in
// the database's metrics registry — the same registry /metrics serves —
// so torture and fault-injection activity is observable like any other
// subsystem.
func TestTortureCountersInObs(t *testing.T) {
	rec := device.NewRecorder(device.NewMem(nil, 0))
	sw := device.NewSwitch()
	sw.Register(rec)
	db, err := core.Open(sw, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Crash()
	rec.SetObs(db.Obs())
	faulty := device.NewFaulty(device.NewMem(nil, 0), 1)
	faulty.SetObs(db.Obs())
	faulty.FailNth(device.FaultRead, 1, nil)
	if err := faulty.ReadPage(device.OID(99), 0, make([]byte, device.PageSize)); err == nil {
		t.Fatal("armed fault did not fire")
	}

	if _, err := commitFile(db, "/obs", []byte("observed")); err != nil {
		t.Fatal(err)
	}
	snap := db.Obs().Snapshot()
	want := map[string]bool{
		"torture.recorded_writes": false,
		"torture.recorded_syncs":  false,
		"device.faults_injected":  false,
	}
	for _, c := range snap.Counters {
		if _, ok := want[c.Name]; ok && c.Value > 0 {
			want[c.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("counter %s missing or zero in registry snapshot", name)
		}
	}
}

// TestMiniTraceShape sanity-checks the recorder itself: the mini
// workload's trace must contain both writes and sync barriers, or
// everything above is enumerating an empty space.
func TestMiniTraceShape(t *testing.T) {
	ops, _, _, err := RecordTrace("mini", 1, BreakNone)
	if err != nil {
		t.Fatal(err)
	}
	writes, syncs := 0, 0
	for _, op := range ops {
		switch op.Kind {
		case device.RecWrite:
			writes++
		case device.RecSync:
			syncs++
		}
	}
	if writes == 0 || syncs == 0 {
		t.Fatalf("mini trace has writes=%d syncs=%d", writes, syncs)
	}
}
