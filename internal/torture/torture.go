// Package torture is the crash-state enumeration harness: a
// record/replay torture chamber for the commit pipeline.
//
// Crash consistency is a protocol property, not a point property.
// Single-fault injection (device.Faulty) proves the system survives one
// chosen failure; it says nothing about the states a real power cut can
// leave behind, which are determined by what the device had actually
// persisted when the machine died. This package closes that gap the
// ALICE way: record the exact sequence of operations the file system
// issued to its backend (device.Recorder), then *construct* every disk
// image a crash could legally have produced from that sequence, reopen
// the database on each image, and check the durability invariants.
//
// The crash model (DESIGN.md §13):
//
//   - A Sync op is a durability barrier: every operation issued before
//     it is stable once it completes.
//   - Metadata ops (create/drop/extend) are applied in issue order up
//     to the crash point — page allocation is treated as ordered.
//   - Page writes since the last completed barrier form the open
//     window. The device may have persisted any per-page subset of
//     them; for each page, either no write landed (the pre-window
//     content survives) or some prefix of its writes did, in which
//     case the last write of that prefix is the surviving content.
//   - Individual page writes are atomic (no torn 8K pages).
//
// A crash state is therefore (crashIndex, per-page choice vector), and
// Enumerate walks that space: every pure prefix, targeted torn states
// around each barrier, seeded random samples, and — for small traces —
// the full cartesian product. Verify materialises each state onto a
// fresh in-memory image, runs recovery (core.Open), and asserts the
// standing invariants; see VerifyState. Failing states serialise to a
// self-contained repro bundle that replays byte-for-byte.
package torture

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/device"
)

// PageChoice selects which write to one page survived the crash out of
// the writes issued to it inside the open window: Choice 0 means none
// landed (the pre-window content survives), Choice j means the j-th
// window write to that page is the surviving content. A page with
// window writes but no PageChoice defaults to "all landed".
type PageChoice struct {
	Rel    device.OID
	Page   uint32
	Choice int
}

// State identifies one crash state: the trace prefix that was issued
// (ops[0:CrashIndex]) plus the per-page survival choices for writes in
// the open window at that point.
type State struct {
	CrashIndex int
	Choices    []PageChoice
}

func (st State) String() string {
	return fmt.Sprintf("crash@%d (%d page choices)", st.CrashIndex, len(st.Choices))
}

// FileExpect is one expected durable outcome recorded by a workload: a
// path, the exact content a committed transaction gave it, the commit
// time the transaction was assigned, and the recorded-trace length at
// the moment the commit was acknowledged. A crash at index ≥ AckIndex
// must preserve the version; a crash before it may lose the version
// entirely but must never surface it partially. Multiple expects may
// name one path (overwrite workloads): they are versions in CommitTime
// order.
type FileExpect struct {
	Path       string
	Content    []byte
	CommitTime int64
	AckIndex   int

	// MovedFrom, when non-empty, marks this expect as the outcome of a
	// committed rename: the file was created at MovedFrom (by the commit
	// described by FromCommitTime/FromAckIndex) and moved to Path by the
	// commit described by CommitTime/AckIndex. The two paths may live in
	// different namespace shards, so the invariant is two-shard
	// atomicity: once the rename is durable the content is byte-exact at
	// Path and MovedFrom does not exist; before that, the content is
	// visible at exactly one of the two paths — never both, never (after
	// the create is durable) neither, and never partially. A workload
	// recording a move expect must not also record a plain expect for
	// MovedFrom. Fields absent from old repro bundles gob-decode to zero
	// values, which read as "not a move".
	MovedFrom      string
	FromCommitTime int64
	FromAckIndex   int
}

// Bundle is a self-contained repro for one failing crash state: the
// recorded operation sequence, the crash state, and the workload's
// expectations. Replaying a bundle rebuilds the identical disk image
// byte-for-byte and re-runs the identical verification — no workload,
// scheduler, or timing involved.
type Bundle struct {
	Workload string
	Seed     int64
	Note     string
	Ops      []device.RecOp
	State    State
	Exps     []FileExpect
}

// WriteBundle serialises a bundle with encoding/gob.
func WriteBundle(path string, b *Bundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(f).Encode(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadBundle deserialises a bundle written by WriteBundle.
func ReadBundle(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var b Bundle
	if err := gob.NewDecoder(f).Decode(&b); err != nil {
		return nil, err
	}
	return &b, nil
}

// Replay re-runs a repro bundle and returns the violation it
// reproduces (nil means the state now verifies clean — the bug the
// bundle captured is fixed).
func Replay(path string) error {
	b, err := ReadBundle(path)
	if err != nil {
		return fmt.Errorf("torture: reading bundle: %w", err)
	}
	return VerifyState(b.Ops, b.State, b.Exps)
}

// bundleDir resolves where repro bundles go: an explicit directory, the
// TORTURE_OUT environment variable, or the system temp directory.
func bundleDir(explicit string) string {
	if explicit != "" {
		return explicit
	}
	if d := os.Getenv("TORTURE_OUT"); d != "" {
		return d
	}
	return os.TempDir()
}

// bundlePath names a bundle file for one failing state.
func bundlePath(dir, workload string, seed int64, st State, n int) string {
	return filepath.Join(dir, fmt.Sprintf("torture-%s-seed%d-crash%d-%d.repro",
		workload, seed, st.CrashIndex, n))
}
