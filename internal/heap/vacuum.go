package heap

import (
	"encoding/binary"

	"repro/internal/txn"
)

// VacuumMode selects what happens to obsolete records. The paper:
// "Periodically, obsolete records must be garbage-collected from the
// database, and either moved elsewhere or physically deleted. … If time
// travel is desired, the records must be saved forever somewhere."
type VacuumMode int

// Vacuum modes.
const (
	VacuumArchive VacuumMode = iota // move obsolete records to the archive
	VacuumDiscard                   // physically delete them ("nosave")
)

// VacuumStats reports what a vacuum pass did.
type VacuumStats struct {
	Pages     int // pages scanned
	Scanned   int // live slots examined
	Archived  int // obsolete records moved to the archive
	Removed   int // slots freed (archived + aborted + discarded)
	Reclaimed int // bytes recovered by page compaction
}

// Add accumulates another pass's stats into s.
func (s *VacuumStats) Add(o VacuumStats) {
	s.Pages += o.Pages
	s.Scanned += o.Scanned
	s.Archived += o.Archived
	s.Removed += o.Removed
	s.Reclaimed += o.Reclaimed
}

// ArchiveHeader is the envelope prepended to archived payloads so a
// historical reader can reconstruct visibility from commit times alone.
type ArchiveHeader struct {
	Rel        uint32 // relation the record came from
	Xmin, Xmax txn.XID
	XminTime   int64 // commit time of the inserter
	XmaxTime   int64 // commit time of the deleter
}

const archiveHeaderSize = 4 + 4 + 4 + 8 + 8

// EncodeArchive builds an archive record from a header and payload.
func EncodeArchive(h ArchiveHeader, payload []byte) []byte {
	out := make([]byte, archiveHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(out[0:], h.Rel)
	binary.LittleEndian.PutUint32(out[4:], uint32(h.Xmin))
	binary.LittleEndian.PutUint32(out[8:], uint32(h.Xmax))
	binary.LittleEndian.PutUint64(out[12:], uint64(h.XminTime))
	binary.LittleEndian.PutUint64(out[20:], uint64(h.XmaxTime))
	copy(out[archiveHeaderSize:], payload)
	return out
}

// DecodeArchive splits an archive record into header and payload.
func DecodeArchive(rec []byte) (ArchiveHeader, []byte, bool) {
	if len(rec) < archiveHeaderSize {
		return ArchiveHeader{}, nil, false
	}
	h := ArchiveHeader{
		Rel:      binary.LittleEndian.Uint32(rec[0:]),
		Xmin:     txn.XID(binary.LittleEndian.Uint32(rec[4:])),
		Xmax:     txn.XID(binary.LittleEndian.Uint32(rec[8:])),
		XminTime: int64(binary.LittleEndian.Uint64(rec[12:])),
		XmaxTime: int64(binary.LittleEndian.Uint64(rec[20:])),
	}
	return h, rec[archiveHeaderSize:], true
}

// Vacuum is the vacuum cleaner: it removes obsolete records from r —
// records deleted by a transaction that committed before horizon, and
// records inserted by aborted transactions — compacts the pages it
// touched, and (in VacuumArchive mode) moves the obsolete-but-committed
// history into archive under archX. onRemove, if non-nil, is told each
// TID freed so callers can purge index entries.
func (r *Relation) Vacuum(horizon txn.XID, mode VacuumMode, archive *Relation, archX txn.XID, onRemove func(tid TID, payload []byte)) (VacuumStats, error) {
	var stats VacuumStats
	n, err := r.pool.NPages(r.OID)
	if err != nil {
		return stats, err
	}
	for pn := uint32(0); pn < n; pn++ {
		f, err := r.pool.Get(r.OID, pn)
		if err != nil {
			return stats, err
		}
		f.Lock()
		if !f.Data.Initialized() {
			f.Unlock()
			r.pool.Release(f, false)
			continue
		}
		stats.Pages++
		type victim struct {
			slot    int
			xmin    txn.XID
			xmax    txn.XID
			payload []byte
			dead    bool // aborted insert: never archive
		}
		var victims []victim
		for s := 0; s < f.Data.NumSlots(); s++ {
			item := f.Data.Item(s)
			if item == nil {
				continue
			}
			stats.Scanned++
			xmin := txn.XID(binary.LittleEndian.Uint32(item[0:]))
			xmax := txn.XID(binary.LittleEndian.Uint32(item[4:]))
			if r.mgr.StatusOf(xmin) == txn.StatusAborted {
				p := make([]byte, len(item)-recordHeader)
				copy(p, item[recordHeader:])
				victims = append(victims, victim{s, xmin, xmax, p, true})
				continue
			}
			if xmax == txn.InvalidXID || xmax >= horizon {
				continue
			}
			switch r.mgr.StatusOf(xmax) {
			case txn.StatusCommitted:
				p := make([]byte, len(item)-recordHeader)
				copy(p, item[recordHeader:])
				victims = append(victims, victim{s, xmin, xmax, p, false})
			case txn.StatusAborted:
				// Deleter aborted: clear the stale xmax stamp.
				binary.LittleEndian.PutUint32(item[4:], 0)
			}
		}
		dirty := false
		for _, v := range victims {
			f.Data.Delete(v.slot)
			dirty = true
			stats.Removed++
		}
		if dirty {
			stats.Reclaimed += f.Data.Compact()
		}
		f.Unlock()
		r.pool.Release(f, dirty)

		for _, v := range victims {
			tid := TID{pn, uint16(v.slot)}
			if onRemove != nil {
				onRemove(tid, v.payload)
			}
			if v.dead || mode != VacuumArchive || archive == nil {
				continue
			}
			rec := EncodeArchive(ArchiveHeader{
				Rel:      uint32(r.OID),
				Xmin:     v.xmin,
				Xmax:     v.xmax,
				XminTime: r.mgr.CommitTime(v.xmin),
				XmaxTime: r.mgr.CommitTime(v.xmax),
			}, v.payload)
			if _, err := archive.Insert(archX, rec); err != nil {
				return stats, err
			}
			stats.Archived++
		}
	}
	return stats, nil
}
