// Package heap implements the no-overwrite heap storage manager. When a
// record is updated or deleted, the original record is marked invalid
// (its xmax is stamped) but remains in place; updates append a new
// record. Combined with the transaction status file this yields MVCC
// reads, fine-grained time travel, and crash recovery with no log
// processing [STON87].
package heap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/device"
	"repro/internal/page"
	"repro/internal/txn"
)

// Record header stored in front of every payload on a page:
//
//	0..3  xmin — inserting transaction
//	4..7  xmax — deleting transaction (0 while live)
//	8..9  flags (reserved)
//	10..11 pad
const recordHeader = 12

// MaxPayload is the largest record payload a page can hold.
const MaxPayload = page.MaxItem - recordHeader

// Errors returned by the heap layer.
var (
	ErrNotVisible   = errors.New("heap: record not visible to snapshot")
	ErrNoRecord     = errors.New("heap: no such record")
	ErrTooLarge     = errors.New("heap: record payload exceeds page capacity")
	ErrWriteClash   = errors.New("heap: record already deleted by a committed transaction")
	ErrReadOnlySnap = errors.New("heap: snapshot is read-only")
)

// TID addresses a record: page number plus slot within the page.
type TID struct {
	Page uint32
	Slot uint16
}

// Pack encodes the TID into a uint64 (for storage in index entries).
func (t TID) Pack() uint64 { return uint64(t.Page)<<16 | uint64(t.Slot) }

// UnpackTID decodes a TID packed with Pack.
func UnpackTID(v uint64) TID {
	return TID{Page: uint32(v >> 16), Slot: uint16(v & 0xffff)}
}

func (t TID) String() string { return fmt.Sprintf("(%d,%d)", t.Page, t.Slot) }

// Relation is one heap table.
type Relation struct {
	OID  device.OID
	pool *buffer.Pool
	mgr  *txn.Manager

	mu         sync.Mutex
	insertHint uint32 // page that last accepted an insert
	haveHint   bool
}

// Open returns a handle on relation oid. The relation must already be
// placed on a device.
func Open(oid device.OID, pool *buffer.Pool, mgr *txn.Manager) *Relation {
	return &Relation{OID: oid, pool: pool, mgr: mgr}
}

// NPages reports the relation's current page count.
func (r *Relation) NPages() (uint32, error) { return r.pool.NPages(r.OID) }

// Insert appends a record stamped with inserting transaction x and
// returns its TID.
func (r *Relation) Insert(x txn.XID, payload []byte) (TID, error) {
	if len(payload) > MaxPayload {
		return TID{}, ErrTooLarge
	}
	item := make([]byte, recordHeader+len(payload))
	binary.LittleEndian.PutUint32(item[0:], uint32(x))
	copy(item[recordHeader:], payload)

	r.mu.Lock()
	defer r.mu.Unlock()

	// Try the hinted page, then the last page, then extend.
	n, err := r.pool.NPages(r.OID)
	if err != nil {
		return TID{}, err
	}
	var candidates []uint32
	if r.haveHint && r.insertHint < n {
		candidates = append(candidates, r.insertHint)
	}
	if n > 0 && (len(candidates) == 0 || candidates[0] != n-1) {
		candidates = append(candidates, n-1)
	}
	for _, pn := range candidates {
		f, err := r.pool.Get(r.OID, pn)
		if err != nil {
			return TID{}, err
		}
		f.Lock()
		if !f.Data.Initialized() {
			page.Init(f.Data, uint32(r.OID), pn)
		}
		slot := f.Data.Insert(item)
		f.Unlock()
		r.pool.Release(f, slot >= 0)
		if slot >= 0 {
			r.insertHint, r.haveHint = pn, true
			return TID{Page: pn, Slot: uint16(slot)}, nil
		}
	}
	f, pn, err := r.pool.NewPage(r.OID)
	if err != nil {
		return TID{}, err
	}
	f.Lock()
	page.Init(f.Data, uint32(r.OID), pn)
	slot := f.Data.Insert(item)
	f.Unlock()
	r.pool.Release(f, true)
	if slot < 0 {
		return TID{}, ErrTooLarge
	}
	r.insertHint, r.haveHint = pn, true
	return TID{Page: pn, Slot: uint16(slot)}, nil
}

// Delete stamps the record at tid as deleted by x. The record body is
// untouched — this is the no-overwrite discipline. Deleting a record
// whose previous deleter aborted re-stamps it; deleting one whose
// deleter committed (or is a live competitor) reports ErrWriteClash.
func (r *Relation) Delete(x txn.XID, tid TID) error {
	f, err := r.pool.Get(r.OID, tid.Page)
	if err != nil {
		return err
	}
	defer r.pool.Release(f, true)
	f.Lock()
	defer f.Unlock()
	item := f.Data.Item(int(tid.Slot))
	if item == nil {
		return ErrNoRecord
	}
	oldMax := txn.XID(binary.LittleEndian.Uint32(item[4:]))
	if oldMax != txn.InvalidXID && oldMax != x {
		switch r.mgr.StatusOf(oldMax) {
		case txn.StatusCommitted, txn.StatusInProgress:
			return ErrWriteClash
		}
	}
	binary.LittleEndian.PutUint32(item[4:], uint32(x))
	return nil
}

// Update replaces the record at tid: the old version is stamped deleted
// by x and a new version is inserted, returning the new TID.
func (r *Relation) Update(x txn.XID, tid TID, payload []byte) (TID, error) {
	if err := r.Delete(x, tid); err != nil {
		return TID{}, err
	}
	return r.Insert(x, payload)
}

// UpdateInPlace is Update with a same-transaction fast path: when the
// version at tid was created by x itself and no one has stamped it, it
// is overwritten in place (same-size payloads only — the slot cannot
// grow) and the same TID is returned, meaning the caller must not add
// another index entry. An uncommitted version is invisible to every
// snapshot but its own transaction's, and that transaction can only
// ever see its newest state, so collapsing intermediate
// same-transaction versions preserves the no-overwrite discipline for
// everything a snapshot could observe. Rows a transaction rewrites k
// times (a directory's mtime under a create storm) would otherwise
// chain k versions and k index entries per commit, and every later
// reader would walk the whole chain.
func (r *Relation) UpdateInPlace(x txn.XID, tid TID, payload []byte) (TID, error) {
	if len(payload) <= MaxPayload {
		f, err := r.pool.Get(r.OID, tid.Page)
		if err != nil {
			return TID{}, err
		}
		f.Lock()
		item := f.Data.Item(int(tid.Slot))
		if item != nil && len(item) == recordHeader+len(payload) {
			xmin := txn.XID(binary.LittleEndian.Uint32(item[0:]))
			xmax := txn.XID(binary.LittleEndian.Uint32(item[4:]))
			if xmin == x && xmax == txn.InvalidXID {
				copy(item[recordHeader:], payload)
				f.Unlock()
				r.pool.Release(f, true)
				return tid, nil
			}
		}
		f.Unlock()
		r.pool.Release(f, false)
	}
	return r.Update(x, tid, payload)
}

// Fetch returns a copy of the record payload at tid if it is visible to
// snap; otherwise ErrNotVisible (or ErrNoRecord if the slot is dead).
func (r *Relation) Fetch(snap *txn.Snapshot, tid TID) ([]byte, error) {
	f, err := r.pool.Get(r.OID, tid.Page)
	if err != nil {
		return nil, err
	}
	defer r.pool.Release(f, false)
	f.RLock()
	defer f.RUnlock()
	item := f.Data.Item(int(tid.Slot))
	if item == nil {
		return nil, ErrNoRecord
	}
	xmin := txn.XID(binary.LittleEndian.Uint32(item[0:]))
	xmax := txn.XID(binary.LittleEndian.Uint32(item[4:]))
	if !snap.CanSee(xmin, xmax) {
		return nil, ErrNotVisible
	}
	out := make([]byte, len(item)-recordHeader)
	copy(out, item[recordHeader:])
	return out, nil
}

// Stamps returns the raw xmin/xmax of the record at tid regardless of
// visibility (vacuum and tests use this).
func (r *Relation) Stamps(tid TID) (xmin, xmax txn.XID, err error) {
	f, err := r.pool.Get(r.OID, tid.Page)
	if err != nil {
		return 0, 0, err
	}
	defer r.pool.Release(f, false)
	f.RLock()
	defer f.RUnlock()
	item := f.Data.Item(int(tid.Slot))
	if item == nil {
		return 0, 0, ErrNoRecord
	}
	return txn.XID(binary.LittleEndian.Uint32(item[0:])),
		txn.XID(binary.LittleEndian.Uint32(item[4:])), nil
}

// RelStats is a cheap physical profile of one relation, for the
// inv_relations catalog. Live and dead are estimates from the raw
// stamps alone — a record is counted dead as soon as any transaction
// has stamped its xmax, without consulting the status log — so a
// concurrent writer's uncommitted deletes show up as dead immediately.
type RelStats struct {
	Pages int // initialized pages
	Live  int // records with no deleter stamped (xmax == 0)
	Dead  int // records with a deleter stamped (vacuum candidates)
}

// TupleStats walks the relation once (read latches only, one page at a
// time) and reports its page and tuple counts.
func (r *Relation) TupleStats() (RelStats, error) {
	var st RelStats
	n, err := r.pool.NPages(r.OID)
	if err != nil {
		return st, err
	}
	for pn := uint32(0); pn < n; pn++ {
		f, err := r.pool.Get(r.OID, pn)
		if err != nil {
			return st, err
		}
		f.RLock()
		if f.Data.Initialized() {
			st.Pages++
			for s := 0; s < f.Data.NumSlots(); s++ {
				item := f.Data.Item(s)
				if item == nil {
					continue
				}
				if txn.XID(binary.LittleEndian.Uint32(item[4:])) == txn.InvalidXID {
					st.Live++
				} else {
					st.Dead++
				}
			}
		}
		f.RUnlock()
		r.pool.Release(f, false)
	}
	return st, nil
}

// Scan calls fn for every record visible to snap, in physical order.
// fn returns stop=true to end the scan early. The payload passed to fn
// is a copy the callback may retain.
func (r *Relation) Scan(snap *txn.Snapshot, fn func(tid TID, payload []byte) (stop bool, err error)) error {
	n, err := r.pool.NPages(r.OID)
	if err != nil {
		return err
	}
	for pn := uint32(0); pn < n; pn++ {
		f, err := r.pool.Get(r.OID, pn)
		if err != nil {
			return err
		}
		f.RLock()
		if !f.Data.Initialized() {
			f.RUnlock()
			r.pool.Release(f, false)
			continue
		}
		type hit struct {
			tid     TID
			payload []byte
		}
		var hits []hit
		for s := 0; s < f.Data.NumSlots(); s++ {
			item := f.Data.Item(s)
			if item == nil {
				continue
			}
			xmin := txn.XID(binary.LittleEndian.Uint32(item[0:]))
			xmax := txn.XID(binary.LittleEndian.Uint32(item[4:]))
			if !snap.CanSee(xmin, xmax) {
				continue
			}
			p := make([]byte, len(item)-recordHeader)
			copy(p, item[recordHeader:])
			hits = append(hits, hit{TID{pn, uint16(s)}, p})
		}
		f.RUnlock()
		r.pool.Release(f, false)
		for _, h := range hits {
			stop, err := fn(h.tid, h.payload)
			if err != nil {
				return err
			}
			if stop {
				return nil
			}
		}
	}
	return nil
}

// ScanAll calls fn for every live slot regardless of visibility,
// passing the raw stamps. Vacuum uses it.
func (r *Relation) ScanAll(fn func(tid TID, xmin, xmax txn.XID, payload []byte) (stop bool, err error)) error {
	n, err := r.pool.NPages(r.OID)
	if err != nil {
		return err
	}
	for pn := uint32(0); pn < n; pn++ {
		f, err := r.pool.Get(r.OID, pn)
		if err != nil {
			return err
		}
		f.RLock()
		if !f.Data.Initialized() {
			f.RUnlock()
			r.pool.Release(f, false)
			continue
		}
		type raw struct {
			tid        TID
			xmin, xmax txn.XID
			payload    []byte
		}
		var rows []raw
		for s := 0; s < f.Data.NumSlots(); s++ {
			item := f.Data.Item(s)
			if item == nil {
				continue
			}
			p := make([]byte, len(item)-recordHeader)
			copy(p, item[recordHeader:])
			rows = append(rows, raw{
				TID{pn, uint16(s)},
				txn.XID(binary.LittleEndian.Uint32(item[0:])),
				txn.XID(binary.LittleEndian.Uint32(item[4:])),
				p,
			})
		}
		f.RUnlock()
		r.pool.Release(f, false)
		for _, row := range rows {
			stop, err := fn(row.tid, row.xmin, row.xmax, row.payload)
			if err != nil {
				return err
			}
			if stop {
				return nil
			}
		}
	}
	return nil
}
