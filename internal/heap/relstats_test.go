package heap

import "testing"

func TestTupleStats(t *testing.T) {
	fx := newFixture(t)
	tx := fx.begin(t)
	var tids []TID
	for i := 0; i < 10; i++ {
		tid, err := fx.rel.Insert(tx.ID(), []byte("rowrowrow"))
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}
	fx.commit(t, tx)

	st, err := fx.rel.TupleStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 10 || st.Dead != 0 || st.Pages < 1 {
		t.Fatalf("after inserts: %+v, want 10 live / 0 dead / >=1 page", st)
	}

	tx2 := fx.begin(t)
	for _, tid := range tids[:4] {
		if err := fx.rel.Delete(tx2.ID(), tid); err != nil {
			t.Fatal(err)
		}
	}
	// Uncommitted deletes already count as dead: the estimate reads raw
	// stamps without consulting the status log.
	st, err = fx.rel.TupleStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Live != 6 || st.Dead != 4 {
		t.Fatalf("mid-delete: %+v, want 6 live / 4 dead", st)
	}
	fx.commit(t, tx2)
}

func TestVacuumStatsPages(t *testing.T) {
	fx := newFixture(t)
	tx := fx.begin(t)
	tid, err := fx.rel.Insert(tx.ID(), []byte("victim"))
	if err != nil {
		t.Fatal(err)
	}
	fx.commit(t, tx)
	tx2 := fx.begin(t)
	if err := fx.rel.Delete(tx2.ID(), tid); err != nil {
		t.Fatal(err)
	}
	fx.commit(t, tx2)

	stats, err := fx.rel.Vacuum(fx.mgr.Horizon(), VacuumDiscard, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Pages < 1 {
		t.Fatalf("vacuum scanned %d pages, want >=1", stats.Pages)
	}
	if stats.Removed != 1 {
		t.Fatalf("vacuum removed %d, want 1", stats.Removed)
	}

	var sum VacuumStats
	sum.Add(stats)
	sum.Add(stats)
	if sum.Pages != 2*stats.Pages || sum.Removed != 2*stats.Removed {
		t.Fatalf("VacuumStats.Add mismatch: %+v vs %+v", sum, stats)
	}
}
