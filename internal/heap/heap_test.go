package heap

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/device"
	"repro/internal/txn"
)

type fixture struct {
	sw   *device.Switch
	pool *buffer.Pool
	mgr  *txn.Manager
	rel  *Relation
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	log, err := txn.OpenLog(mustManager(t, sw))
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(log)
	n := int64(0)
	var mu sync.Mutex
	mgr.TimeSource = func() int64 { mu.Lock(); defer mu.Unlock(); n += 10; return n }
	pool := buffer.NewPool(sw, 32)
	const relOID device.OID = 100
	if err := sw.Place(relOID, ""); err != nil {
		t.Fatal(err)
	}
	return &fixture{sw: sw, pool: pool, mgr: mgr, rel: Open(relOID, pool, mgr)}
}

func mustManager(t *testing.T, sw *device.Switch) device.Manager {
	t.Helper()
	m, err := sw.Manager("mem")
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func (fx *fixture) begin(t *testing.T) *txn.Tx {
	t.Helper()
	tx, err := fx.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func (fx *fixture) commit(t *testing.T, tx *txn.Tx) {
	t.Helper()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertFetchVisibility(t *testing.T) {
	fx := newFixture(t)
	tx := fx.begin(t)
	tid, err := fx.rel.Insert(tx.ID(), []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	// Own snapshot sees it.
	if got, err := fx.rel.Fetch(tx.Snapshot(), tid); err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("self fetch: %q, %v", got, err)
	}
	// Outside snapshot does not.
	if _, err := fx.rel.Fetch(fx.mgr.CurrentSnapshot(), tid); !errors.Is(err, ErrNotVisible) {
		t.Fatalf("uncommitted visible outside: %v", err)
	}
	fx.commit(t, tx)
	if got, err := fx.rel.Fetch(fx.mgr.CurrentSnapshot(), tid); err != nil || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("post-commit fetch: %q, %v", got, err)
	}
}

func TestAbortInvisible(t *testing.T) {
	fx := newFixture(t)
	tx := fx.begin(t)
	tid, _ := fx.rel.Insert(tx.ID(), []byte("doomed"))
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := fx.rel.Fetch(fx.mgr.CurrentSnapshot(), tid); !errors.Is(err, ErrNotVisible) {
		t.Fatalf("aborted insert visible: %v", err)
	}
}

func TestDeleteAndTimeTravel(t *testing.T) {
	fx := newFixture(t)
	t1 := fx.begin(t)
	tid, _ := fx.rel.Insert(t1.ID(), []byte("v1"))
	fx.commit(t, t1)
	time1 := fx.mgr.CommitTime(t1.ID())

	t2 := fx.begin(t)
	if err := fx.rel.Delete(t2.ID(), tid); err != nil {
		t.Fatal(err)
	}
	// Deleter's own snapshot no longer sees it.
	if _, err := fx.rel.Fetch(t2.Snapshot(), tid); !errors.Is(err, ErrNotVisible) {
		t.Fatalf("deleter still sees record: %v", err)
	}
	fx.commit(t, t2)
	time2 := fx.mgr.CommitTime(t2.ID())

	if _, err := fx.rel.Fetch(fx.mgr.CurrentSnapshot(), tid); !errors.Is(err, ErrNotVisible) {
		t.Fatalf("deleted record visible now: %v", err)
	}
	// Time travel to before the delete: the record is back.
	if got, err := fx.rel.Fetch(fx.mgr.AsOf(time1), tid); err != nil || !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("asof fetch: %q, %v", got, err)
	}
	if _, err := fx.rel.Fetch(fx.mgr.AsOf(time2), tid); !errors.Is(err, ErrNotVisible) {
		t.Fatalf("asof(after delete) sees record: %v", err)
	}
}

func TestUpdateKeepsOldVersion(t *testing.T) {
	fx := newFixture(t)
	t1 := fx.begin(t)
	tid, _ := fx.rel.Insert(t1.ID(), []byte("old"))
	fx.commit(t, t1)
	time1 := fx.mgr.CommitTime(t1.ID())

	t2 := fx.begin(t)
	tid2, err := fx.rel.Update(t2.ID(), tid, []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	fx.commit(t, t2)

	snap := fx.mgr.CurrentSnapshot()
	if got, _ := fx.rel.Fetch(snap, tid2); !bytes.Equal(got, []byte("new")) {
		t.Fatalf("current = %q", got)
	}
	if _, err := fx.rel.Fetch(snap, tid); !errors.Is(err, ErrNotVisible) {
		t.Fatal("old version still current")
	}
	if got, _ := fx.rel.Fetch(fx.mgr.AsOf(time1), tid); !bytes.Equal(got, []byte("old")) {
		t.Fatalf("history = %q", got)
	}
}

func TestWriteClash(t *testing.T) {
	fx := newFixture(t)
	t1 := fx.begin(t)
	tid, _ := fx.rel.Insert(t1.ID(), []byte("x"))
	fx.commit(t, t1)

	t2 := fx.begin(t)
	if err := fx.rel.Delete(t2.ID(), tid); err != nil {
		t.Fatal(err)
	}
	t3 := fx.begin(t)
	if err := fx.rel.Delete(t3.ID(), tid); !errors.Is(err, ErrWriteClash) {
		t.Fatalf("concurrent delete: %v", err)
	}
	// t2 aborts; t3 may now delete (the stale stamp is overwritten).
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := fx.rel.Delete(t3.ID(), tid); err != nil {
		t.Fatalf("delete after aborted deleter: %v", err)
	}
	fx.commit(t, t3)
}

func TestScan(t *testing.T) {
	fx := newFixture(t)
	tx := fx.begin(t)
	for i := 0; i < 10; i++ {
		if _, err := fx.rel.Insert(tx.ID(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	fx.commit(t, tx)
	// Delete evens.
	tx2 := fx.begin(t)
	err := fx.rel.Scan(tx2.Snapshot(), func(tid TID, p []byte) (bool, error) {
		if p[0]%2 == 0 {
			return false, fx.rel.Delete(tx2.ID(), tid)
		}
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.commit(t, tx2)
	var got []byte
	err = fx.rel.Scan(fx.mgr.CurrentSnapshot(), func(tid TID, p []byte) (bool, error) {
		got = append(got, p[0])
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("scan saw %v", got)
	}
	for _, b := range got {
		if b%2 == 0 {
			t.Fatalf("deleted record in scan: %v", got)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	fx := newFixture(t)
	tx := fx.begin(t)
	for i := 0; i < 10; i++ {
		if _, err := fx.rel.Insert(tx.ID(), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	fx.commit(t, tx)
	n := 0
	err := fx.rel.Scan(fx.mgr.CurrentSnapshot(), func(TID, []byte) (bool, error) {
		n++
		return n == 3, nil
	})
	if err != nil || n != 3 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

func TestLargeRecordsSpanPages(t *testing.T) {
	fx := newFixture(t)
	tx := fx.begin(t)
	payload := make([]byte, MaxPayload)
	for i := 0; i < 5; i++ {
		payload[0] = byte(i)
		if _, err := fx.rel.Insert(tx.ID(), payload); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	fx.commit(t, tx)
	n, err := fx.rel.NPages()
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("5 max-size records used %d pages, want 5", n)
	}
	if _, err := fx.rel.Insert(txn.BootstrapXID, make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized insert: %v", err)
	}
}

func TestVacuumDiscard(t *testing.T) {
	fx := newFixture(t)
	t1 := fx.begin(t)
	var tids []TID
	for i := 0; i < 6; i++ {
		tid, _ := fx.rel.Insert(t1.ID(), []byte{byte(i)})
		tids = append(tids, tid)
	}
	fx.commit(t, t1)
	t2 := fx.begin(t)
	for _, tid := range tids[:3] {
		if err := fx.rel.Delete(t2.ID(), tid); err != nil {
			t.Fatal(err)
		}
	}
	fx.commit(t, t2)

	var removed []TID
	stats, err := fx.rel.Vacuum(fx.mgr.Horizon(), VacuumDiscard, nil, 0, func(tid TID, _ []byte) {
		removed = append(removed, tid)
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 3 || len(removed) != 3 {
		t.Fatalf("stats = %+v, removed %v", stats, removed)
	}
	// Survivors intact.
	count := 0
	_ = fx.rel.Scan(fx.mgr.CurrentSnapshot(), func(TID, []byte) (bool, error) { count++; return false, nil })
	if count != 3 {
		t.Fatalf("%d records after vacuum", count)
	}
}

func TestVacuumArchivePreservesHistory(t *testing.T) {
	fx := newFixture(t)
	const archOID device.OID = 101
	if err := fx.sw.Place(archOID, ""); err != nil {
		t.Fatal(err)
	}
	arch := Open(archOID, fx.pool, fx.mgr)

	t1 := fx.begin(t)
	tid, _ := fx.rel.Insert(t1.ID(), []byte("precious"))
	fx.commit(t, t1)
	t2 := fx.begin(t)
	if err := fx.rel.Delete(t2.ID(), tid); err != nil {
		t.Fatal(err)
	}
	fx.commit(t, t2)

	vx := fx.begin(t)
	stats, err := fx.rel.Vacuum(fx.mgr.Horizon(), VacuumArchive, arch, vx.ID(), nil)
	if err != nil {
		t.Fatal(err)
	}
	fx.commit(t, vx)
	if stats.Archived != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	found := false
	err = arch.Scan(fx.mgr.CurrentSnapshot(), func(_ TID, rec []byte) (bool, error) {
		h, payload, ok := DecodeArchive(rec)
		if !ok {
			return false, fmt.Errorf("bad archive record")
		}
		if h.Xmin == t1.ID() && h.Xmax == t2.ID() && bytes.Equal(payload, []byte("precious")) {
			if h.XminTime != fx.mgr.CommitTime(t1.ID()) || h.XmaxTime != fx.mgr.CommitTime(t2.ID()) {
				return false, fmt.Errorf("archive times wrong")
			}
			found = true
		}
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("archived record not found")
	}
}

func TestVacuumSkipsRecordsLiveSnapshotsNeed(t *testing.T) {
	fx := newFixture(t)
	t1 := fx.begin(t)
	tid, _ := fx.rel.Insert(t1.ID(), []byte("x"))
	fx.commit(t, t1)

	reader := fx.begin(t) // holds the horizon down
	t2 := fx.begin(t)
	if err := fx.rel.Delete(t2.ID(), tid); err != nil {
		t.Fatal(err)
	}
	fx.commit(t, t2)

	stats, err := fx.rel.Vacuum(fx.mgr.Horizon(), VacuumDiscard, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 0 {
		t.Fatalf("vacuum removed records a live snapshot needs: %+v", stats)
	}
	// The old reader can still fetch it.
	if got, err := fx.rel.Fetch(reader.Snapshot(), tid); err != nil || !bytes.Equal(got, []byte("x")) {
		t.Fatalf("reader fetch after vacuum: %q %v", got, err)
	}
	if err := reader.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestVacuumRemovesAbortedInserts(t *testing.T) {
	fx := newFixture(t)
	tx := fx.begin(t)
	if _, err := fx.rel.Insert(tx.ID(), []byte("junk")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	stats, err := fx.rel.Vacuum(fx.mgr.Horizon(), VacuumArchive, nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 1 || stats.Archived != 0 {
		t.Fatalf("aborted insert handling: %+v", stats)
	}
}

func TestCrashRecoveryEndToEnd(t *testing.T) {
	fx := newFixture(t)
	// Committed txn with flush.
	t1 := fx.begin(t)
	tidOK, _ := fx.rel.Insert(t1.ID(), []byte("durable"))
	if err := fx.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	fx.commit(t, t1)

	// In-flight txn whose data pages even reach disk — but no commit.
	t2 := fx.begin(t)
	tidBad, _ := fx.rel.Insert(t2.ID(), []byte("ghost"))
	if err := fx.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}

	// Crash: lose the buffer cache, reopen log and manager.
	fx.pool.Crash()
	log2, err := txn.OpenLog(mustManager(t, fx.sw))
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := txn.NewManager(log2)
	pool2 := buffer.NewPool(fx.sw, 32)
	rel2 := Open(fx.rel.OID, pool2, mgr2)

	snap := mgr2.CurrentSnapshot()
	if got, err := rel2.Fetch(snap, tidOK); err != nil || !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("committed record lost: %q %v", got, err)
	}
	if _, err := rel2.Fetch(snap, tidBad); !errors.Is(err, ErrNotVisible) {
		t.Fatalf("uncommitted record visible after crash: %v", err)
	}
}

// property: a random interleaving of committed/aborted transactions
// inserting and deleting records always leaves exactly the committed,
// undeleted records visible.
func TestPropertyVisibilityModel(t *testing.T) {
	f := func(seed int64) bool {
		fx := newFixture(t)
		rng := newRand(seed)
		type rec struct {
			tid     TID
			payload byte
		}
		model := map[TID]byte{} // committed live records
		var visible []rec
		_ = visible
		for round := 0; round < 20; round++ {
			tx, err := fx.mgr.Begin()
			if err != nil {
				return false
			}
			local := map[TID]byte{}
			deleted := map[TID]bool{}
			nops := 1 + rng.Intn(6)
			for i := 0; i < nops; i++ {
				if len(model) > 0 && rng.Intn(3) == 0 {
					// delete a random committed record not yet deleted
					for tid := range model {
						if deleted[tid] {
							continue
						}
						if err := fx.rel.Delete(tx.ID(), tid); err != nil {
							return false
						}
						deleted[tid] = true
						break
					}
				} else {
					b := byte(rng.Intn(256))
					tid, err := fx.rel.Insert(tx.ID(), []byte{b})
					if err != nil {
						return false
					}
					local[tid] = b
				}
			}
			if rng.Intn(2) == 0 {
				if err := tx.Commit(); err != nil {
					return false
				}
				for tid, b := range local {
					model[tid] = b
				}
				for tid := range deleted {
					delete(model, tid)
				}
			} else {
				if err := tx.Abort(); err != nil {
					return false
				}
			}
			// Verify visible state matches the model.
			seen := map[TID]byte{}
			err = fx.rel.Scan(fx.mgr.CurrentSnapshot(), func(tid TID, p []byte) (bool, error) {
				seen[tid] = p[0]
				return false, nil
			})
			if err != nil {
				return false
			}
			if len(seen) != len(model) {
				return false
			}
			for tid, b := range model {
				if seen[tid] != b {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func newRand(seed int64) *randSrc {
	return &randSrc{state: uint64(seed)*2862933555777941757 + 3037000493}
}

// randSrc is a tiny deterministic generator so the property test does
// not depend on math/rand behaviour across Go versions.
type randSrc struct{ state uint64 }

func (r *randSrc) Intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}

func TestTIDPackUnpack(t *testing.T) {
	cases := []TID{{0, 0}, {1, 2}, {1 << 30, 65535}, {42, 7}}
	for _, tid := range cases {
		if got := UnpackTID(tid.Pack()); got != tid {
			t.Fatalf("round trip %v -> %v", tid, got)
		}
	}
	if s := (TID{3, 4}).String(); s != "(3,4)" {
		t.Fatalf("String = %q", s)
	}
}

func TestStampsAndScanAll(t *testing.T) {
	fx := newFixture(t)
	t1 := fx.begin(t)
	tid, _ := fx.rel.Insert(t1.ID(), []byte("v"))
	fx.commit(t, t1)
	t2 := fx.begin(t)
	if err := fx.rel.Delete(t2.ID(), tid); err != nil {
		t.Fatal(err)
	}
	fx.commit(t, t2)

	xmin, xmax, err := fx.rel.Stamps(tid)
	if err != nil || xmin != t1.ID() || xmax != t2.ID() {
		t.Fatalf("Stamps = %d/%d, %v", xmin, xmax, err)
	}
	if _, _, err := fx.rel.Stamps(TID{99, 99}); err == nil {
		t.Fatal("Stamps on missing record succeeded")
	}

	// ScanAll sees the dead record a visible Scan would skip.
	seen := 0
	err = fx.rel.ScanAll(func(got TID, xm, xx txn.XID, payload []byte) (bool, error) {
		seen++
		if got == tid && (xm != t1.ID() || xx != t2.ID() || string(payload) != "v") {
			t.Fatalf("ScanAll row: %v %d %d %q", got, xm, xx, payload)
		}
		return false, nil
	})
	if err != nil || seen != 1 {
		t.Fatalf("ScanAll saw %d rows, %v", seen, err)
	}
	// Early stop.
	if _, err := fx.rel.Insert(txn.BootstrapXID, []byte("w")); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := fx.rel.ScanAll(func(TID, txn.XID, txn.XID, []byte) (bool, error) {
		n++
		return true, nil
	}); err != nil || n != 1 {
		t.Fatalf("ScanAll early stop: %d, %v", n, err)
	}
}

func TestUpdateOfDeletedRecordFails(t *testing.T) {
	fx := newFixture(t)
	t1 := fx.begin(t)
	tid, _ := fx.rel.Insert(t1.ID(), []byte("x"))
	fx.commit(t, t1)
	t2 := fx.begin(t)
	if err := fx.rel.Delete(t2.ID(), tid); err != nil {
		t.Fatal(err)
	}
	fx.commit(t, t2)
	t3 := fx.begin(t)
	if _, err := fx.rel.Update(t3.ID(), tid, []byte("y")); !errors.Is(err, ErrWriteClash) {
		t.Fatalf("update of deleted record: %v", err)
	}
	if err := t3.Abort(); err != nil {
		t.Fatal(err)
	}
}
