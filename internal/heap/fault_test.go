package heap

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/buffer"
	"repro/internal/device"
	"repro/internal/txn"
)

// faultFixture is the heap fixture over a fault-injecting backend: the
// data relation's I/O goes through the Faulty, the transaction log does
// not (its device is reached directly), so injected data faults never
// corrupt the status log.
type faultFixture struct {
	*fixture
	faulty *device.Faulty
}

func newFaultFixture(t *testing.T, poolSize int) *faultFixture {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	log, err := txn.OpenLog(mustManager(t, sw))
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(log)
	mgr.TimeSource = func() int64 { return 0 } // monotone-forced anyway
	faulty := device.NewFaulty(sw, 1)
	pool := buffer.NewPool(faulty, poolSize)
	const relOID device.OID = 100
	if err := sw.Place(relOID, ""); err != nil {
		t.Fatal(err)
	}
	fx := &fixture{sw: sw, pool: pool, mgr: mgr, rel: Open(relOID, pool, mgr)}
	return &faultFixture{fixture: fx, faulty: faulty}
}

// insertCommitted inserts payload under its own committed transaction.
func (fx *faultFixture) insertCommitted(t *testing.T, payload []byte) TID {
	t.Helper()
	tx := fx.begin(t)
	tid, err := fx.rel.Insert(tx.ID(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return tid
}

// TestInsertFaults drives Insert into each failing backend operation
// and checks the error surfaces and the relation recovers once the
// device heals.
func TestInsertFaults(t *testing.T) {
	cases := []struct {
		name string
		arm  func(f *device.Faulty)
	}{
		{"extend-fails", func(f *device.Faulty) { f.FailNth(device.FaultExtend, 1, nil) }},
		{"first-read-fails", func(f *device.Faulty) { f.FailNth(device.FaultRead, 1, nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fx := newFaultFixture(t, 16)
			if tc.name == "first-read-fails" {
				// A read can only fail once the relation has a page,
				// and only if that page is not already cached.
				fx.insertCommitted(t, []byte("seed"))
				if err := fx.pool.FlushAll(); err != nil {
					t.Fatal(err)
				}
				fx.pool.Crash()
			}
			tx := fx.begin(t)
			tc.arm(fx.faulty)
			if _, err := fx.rel.Insert(tx.ID(), []byte("doomed")); !errors.Is(err, device.ErrInjected) {
				t.Fatalf("Insert under fault: %v", err)
			}
			if err := tx.Abort(); err != nil {
				t.Fatal(err)
			}
			// Healed (one-shot rules are spent): inserts work again.
			tid := fx.insertCommitted(t, []byte("after-heal"))
			got, err := fx.rel.Fetch(fx.mgr.CurrentSnapshot(), tid)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, []byte("after-heal")) {
				t.Fatalf("payload = %q", got)
			}
		})
	}
}

// TestInsertEvictionFaultLosesNothing fills a tiny pool so inserts
// force dirty evictions, fails those writebacks, and asserts every
// record that was ever successfully inserted is still readable after
// the device heals — the end-to-end version of the buffer-layer
// regression.
func TestInsertEvictionFaultLosesNothing(t *testing.T) {
	fx := newFaultFixture(t, 2)
	payload := func(i int) []byte { return bytes.Repeat([]byte{byte(i)}, 4000) }

	var tids []TID
	tx := fx.begin(t)
	for i := 0; i < 6; i++ { // ~2 records per page over a 2-frame pool
		tid, err := fx.rel.Insert(tx.ID(), payload(i))
		if err != nil {
			t.Fatal(err)
		}
		tids = append(tids, tid)
	}

	// Every data-relation writeback now fails; keep inserting until an
	// eviction actually trips it.
	fx.faulty.FailIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == 100 }, nil)
	sawFault := false
	for i := 6; i < 20; i++ {
		tid, err := fx.rel.Insert(tx.ID(), payload(i))
		if err != nil {
			if !errors.Is(err, device.ErrInjected) {
				t.Fatalf("unexpected error: %v", err)
			}
			sawFault = true
			break
		}
		tids = append(tids, tid)
	}
	if !sawFault {
		t.Fatal("no eviction writeback was injected; pool too large for the test")
	}

	fx.faulty.Clear()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := fx.mgr.CurrentSnapshot()
	for i, tid := range tids {
		got, err := fx.rel.Fetch(snap, tid)
		if err != nil {
			t.Fatalf("record %d at %v lost: %v", i, tid, err)
		}
		if !bytes.Equal(got, payload(i)) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

// TestUpdateFaultKeepsOldVersion: an update whose page read fails must
// leave the previous version visible and unmodified.
func TestUpdateFaultKeepsOldVersion(t *testing.T) {
	fx := newFaultFixture(t, 16)
	tid := fx.insertCommitted(t, []byte("v1"))
	if err := fx.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	fx.pool.Crash() // evict the cached page so the update must hit the device

	tx := fx.begin(t)
	fx.faulty.FailIf(device.FaultRead,
		func(rel device.OID, page uint32) bool { return rel == 100 }, nil)
	if _, err := fx.rel.Update(tx.ID(), tid, []byte("v2")); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Update under fault: %v", err)
	}
	fx.faulty.Clear()
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	got, err := fx.rel.Fetch(fx.mgr.CurrentSnapshot(), tid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("v1")) {
		t.Fatalf("old version damaged: %q", got)
	}
}

// TestFetchAndScanFaults: reads that fail surface errors instead of
// fabricating data, and succeed verbatim on retry.
func TestFetchAndScanFaults(t *testing.T) {
	fx := newFaultFixture(t, 2) // tiny pool: fetches miss and hit the device
	var tids []TID
	for i := 0; i < 4; i++ {
		tids = append(tids, fx.insertCommitted(t, []byte(fmt.Sprintf("rec-%d", i))))
	}
	// The heap fixture has no ForceData hook, so flush explicitly, then
	// drop the cache to force all subsequent reads to the device.
	if err := fx.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	fx.pool.Crash()

	fx.faulty.FailEvery(device.FaultRead, 1, nil) // every read fails
	snap := fx.mgr.CurrentSnapshot()
	if _, err := fx.rel.Fetch(snap, tids[0]); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Fetch under fault: %v", err)
	}
	if err := fx.rel.Scan(snap, func(TID, []byte) (bool, error) { return false, nil }); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Scan under fault: %v", err)
	}

	fx.faulty.Clear()
	for i, tid := range tids {
		got, err := fx.rel.Fetch(snap, tid)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("rec-%d", i); string(got) != want {
			t.Fatalf("record %d = %q, want %q", i, got, want)
		}
	}
}
