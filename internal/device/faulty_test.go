package device

import (
	"errors"
	"testing"
)

// newFaultyMem returns a Faulty over a Mem with one relation of n
// pages.
func newFaultyMem(t *testing.T, rel OID, n int, seed int64) *Faulty {
	t.Helper()
	m := NewMem(nil, 0)
	if err := m.Create(rel); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := m.Extend(rel); err != nil {
			t.Fatal(err)
		}
	}
	return NewFaulty(m, seed)
}

func TestFaultyTransparent(t *testing.T) {
	f := newFaultyMem(t, 1, 2, 1)
	buf := make([]byte, PageSize)
	buf[0] = 0xAB
	if err := f.WritePage(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := f.ReadPage(1, 0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xAB {
		t.Fatalf("round trip lost data: %#x", got[0])
	}
	if n, err := f.NPages(1); err != nil || n != 2 {
		t.Fatalf("NPages = %d, %v", n, err)
	}
}

func TestFaultyFailNth(t *testing.T) {
	f := newFaultyMem(t, 1, 1, 1)
	f.FailNth(FaultRead, 3, nil)
	buf := make([]byte, PageSize)
	for i := 1; i <= 5; i++ {
		err := f.ReadPage(1, 0, buf)
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("read %d: want injected fault, got %v", i, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
	if f.Trips() != 1 {
		t.Fatalf("trips = %d", f.Trips())
	}
}

func TestFaultyFailEvery(t *testing.T) {
	f := newFaultyMem(t, 1, 1, 1)
	f.FailEvery(FaultWrite, 2, nil)
	buf := make([]byte, PageSize)
	var failed []int
	for i := 1; i <= 6; i++ {
		if err := f.WritePage(1, 0, buf); err != nil {
			failed = append(failed, i)
		}
	}
	if len(failed) != 3 || failed[0] != 2 || failed[1] != 4 || failed[2] != 6 {
		t.Fatalf("failed writes = %v, want [2 4 6]", failed)
	}
}

func TestFaultyFailIf(t *testing.T) {
	f := newFaultyMem(t, 1, 4, 1)
	sentinel := errors.New("bad sector")
	f.FailIf(FaultRead, func(rel OID, page uint32) bool { return rel == 1 && page == 2 }, sentinel)
	buf := make([]byte, PageSize)
	for p := uint32(0); p < 4; p++ {
		err := f.ReadPage(1, p, buf)
		if p == 2 {
			if !errors.Is(err, sentinel) {
				t.Fatalf("page 2: want bad sector, got %v", err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("page %d: %v", p, err)
		}
	}
	// Predicate rules are not one-shot: page 2 stays bad.
	if err := f.ReadPage(1, 2, buf); !errors.Is(err, sentinel) {
		t.Fatalf("second hit on page 2: %v", err)
	}
}

// TestFaultyProbDeterministic is the seeding contract: the same seed
// over the same op sequence injects the same failures.
func TestFaultyProbDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		f := newFaultyMem(t, 1, 1, seed)
		f.FailProb(FaultRead, 0.3, nil)
		buf := make([]byte, PageSize)
		out := make([]bool, 200)
		for i := range out {
			out[i] = f.ReadPage(1, 0, buf) != nil
		}
		return out
	}
	a, b := pattern(42), pattern(42)
	anyFail := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: same seed diverged", i)
		}
		anyFail = anyFail || a[i]
	}
	if !anyFail {
		t.Fatal("p=0.3 over 200 ops injected nothing")
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical patterns")
	}
}

func TestFaultyCrashAndHeal(t *testing.T) {
	f := newFaultyMem(t, 1, 2, 1)
	hooked := 0
	f.CrashOn(FaultWrite, 2, func() { hooked++ })
	buf := make([]byte, PageSize)
	if err := f.WritePage(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(1, 1, buf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write 2: want crash, got %v", err)
	}
	if hooked != 1 {
		t.Fatalf("hook ran %d times", hooked)
	}
	if !f.Down() {
		t.Fatal("device not down after crash")
	}
	// Everything fails while down, including reads and metadata.
	if err := f.ReadPage(1, 0, buf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read while down: %v", err)
	}
	if _, err := f.NPages(1); !errors.Is(err, ErrCrashed) {
		t.Fatalf("NPages while down: %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync while down: %v", err)
	}
	f.Heal()
	if err := f.ReadPage(1, 0, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	// One-shot: healed device does not re-crash.
	if err := f.WritePage(1, 1, buf); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

func TestFaultyCrashIfOnLogRelation(t *testing.T) {
	f := newFaultyMem(t, 7, 1, 1)
	f.CrashIf(FaultWrite, func(rel OID, page uint32) bool { return rel == 7 }, nil)
	buf := make([]byte, PageSize)
	if err := f.WritePage(7, 0, buf); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash on rel 7 write, got %v", err)
	}
}

// TestFaultyAsSwitchManager registers a Faulty-wrapped Mem in the
// switch: the composition the full-stack recovery tests use.
func TestFaultyAsSwitchManager(t *testing.T) {
	fm := NewFaulty(NewMem(nil, 0), 1)
	sw := NewSwitch()
	sw.Register(fm)
	if fm.Class() != "mem" {
		t.Fatalf("class = %q", fm.Class())
	}
	if err := sw.Place(9, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.Extend(9); err != nil {
		t.Fatal(err)
	}
	fm.FailNth(FaultWrite, 1, nil)
	buf := make([]byte, PageSize)
	if err := sw.WritePage(9, 0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("switch write through faulty manager: %v", err)
	}
	if err := sw.WritePage(9, 0, buf); err != nil {
		t.Fatalf("after one-shot: %v", err)
	}
	if err := sw.Drop(9); err != nil {
		t.Fatal(err)
	}
}

// TestFaultyOverSwitch wraps the whole switch — the buffer.Backend
// composition.
func TestFaultyOverSwitch(t *testing.T) {
	sw := NewSwitch()
	sw.Register(NewMem(nil, 0))
	if err := sw.Place(3, ""); err != nil {
		t.Fatal(err)
	}
	var f PageIO = NewFaulty(sw, 1)
	if _, err := f.Extend(3); err != nil {
		t.Fatal(err)
	}
	f.(*Faulty).FailNth(FaultExtend, 2, nil) // counter already at 1
	if _, err := f.Extend(3); !errors.Is(err, ErrInjected) {
		t.Fatalf("extend: %v", err)
	}
	if n, err := f.NPages(3); err != nil || n != 1 {
		t.Fatalf("NPages = %d, %v", n, err)
	}
}
