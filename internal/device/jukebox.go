package device

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/iosim"
)

// JukeboxParams configures the simulated Sony WORM optical jukebox.
// The paper: "Due to extremely high setup costs (many seconds to load an
// optical platter) and relatively low transfer rates, using the jukebox
// directly for every transfer would be very slow. Instead, the Sony
// jukebox device manager caches recently-used blocks on magnetic disk.
// The size of this cache is tunable, and defaults to 10 MBytes."
type JukeboxParams struct {
	PlatterLoad   time.Duration // robot arm + spin-up to swap platters
	AccessLatency time.Duration // per-transfer settle on a loaded platter
	TransferRate  float64       // optical read/write bytes per second
	PlatterPages  int64         // capacity of one platter side, in pages
	CachePages    int           // magnetic-disk staging cache capacity
	CacheDisk     iosim.DiskParams
}

// DefaultJukebox returns parameters approximating the 327 GB Sony WORM
// jukebox in the Berkeley installation.
func DefaultJukebox() JukeboxParams {
	return JukeboxParams{
		PlatterLoad:   8 * time.Second,
		AccessLatency: 120 * time.Millisecond,
		TransferRate:  400e3,
		PlatterPages:  400_000, // ~3.2 GB per side
		CachePages:    10 << 20 / PageSize,
		CacheDisk:     iosim.RZ58(),
	}
}

// jbPage is the stable state of one logical page.
type jbPage struct {
	data   []byte // authoritative contents
	burned bool   // true once written to the platter at addr
	plat   int    // platter index
	addr   int64  // page address within the platter
}

type jbRel struct {
	plat  int
	pages []*jbPage
}

type jbCacheKey struct {
	rel  OID
	page uint32
}

// Jukebox is the write-once optical jukebox device manager. Logical
// pages are write-many: rewriting a burned page allocates a fresh
// platter address, the cached-WORM remapping strategy of Quinlan's
// Plan 9 file server, which the paper cites. Recently used pages are
// staged on a simulated magnetic disk cache so repeated access does not
// pay platter loads.
type Jukebox struct {
	mu        sync.Mutex
	params    JukeboxParams
	clock     *iosim.Clock
	cacheDisk *iosim.Disk
	rels      map[OID]*jbRel
	loaded    int // currently loaded platter, -1 if none
	platUsed  []int64
	cache     map[jbCacheKey]*list.Element
	lru       *list.List // of jbCacheKey, front = most recent
	loads     int64
}

// NewJukebox returns a jukebox manager charging costs to clock.
func NewJukebox(p JukeboxParams, clock *iosim.Clock) *Jukebox {
	if p.PlatterPages <= 0 {
		p.PlatterPages = DefaultJukebox().PlatterPages
	}
	if p.CachePages <= 0 {
		p.CachePages = DefaultJukebox().CachePages
	}
	return &Jukebox{
		params:    p,
		clock:     clock,
		cacheDisk: iosim.NewDisk(p.CacheDisk, clock),
		rels:      make(map[OID]*jbRel),
		loaded:    -1,
		platUsed:  []int64{0},
		cache:     make(map[jbCacheKey]*list.Element),
		lru:       list.New(),
	}
}

// Class reports "jukebox".
func (j *Jukebox) Class() string { return "jukebox" }

// Create registers a new relation, assigning it to the platter with the
// most free space (first platter that fits an extent, extending the
// jukebox with new platters as needed).
func (j *Jukebox) Create(rel OID) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.rels[rel]; ok {
		return nil
	}
	j.rels[rel] = &jbRel{plat: j.pickPlatter()}
	return nil
}

func (j *Jukebox) pickPlatter() int {
	for i, used := range j.platUsed {
		if used < j.params.PlatterPages {
			return i
		}
	}
	j.platUsed = append(j.platUsed, 0)
	return len(j.platUsed) - 1
}

// Drop removes a relation. WORM space is not reclaimed.
func (j *Jukebox) Drop(rel OID) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.rels[rel]
	if !ok {
		return ErrNoRelation
	}
	for p := range r.pages {
		if el, ok := j.cache[jbCacheKey{rel, uint32(p)}]; ok {
			j.lru.Remove(el)
			delete(j.cache, jbCacheKey{rel, uint32(p)})
		}
	}
	delete(j.rels, rel)
	return nil
}

// NPages reports the relation's page count.
func (j *Jukebox) NPages(rel OID) (uint32, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.rels[rel]
	if !ok {
		return 0, ErrNoRelation
	}
	return uint32(len(r.pages)), nil
}

// Extend appends a zeroed, not-yet-burned page.
func (j *Jukebox) Extend(rel OID) (uint32, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.rels[rel]
	if !ok {
		return 0, ErrNoRelation
	}
	pg := &jbPage{data: make([]byte, PageSize), plat: r.plat}
	r.pages = append(r.pages, pg)
	return uint32(len(r.pages) - 1), nil
}

// touchCache records (rel,page) as cached, evicting LRU entries beyond
// capacity. Evicting a dirty (unburned-since-write) page burns it.
func (j *Jukebox) touchCache(rel OID, page uint32) {
	key := jbCacheKey{rel, page}
	if el, ok := j.cache[key]; ok {
		j.lru.MoveToFront(el)
		return
	}
	j.cache[key] = j.lru.PushFront(key)
	for j.lru.Len() > j.params.CachePages {
		back := j.lru.Back()
		victim := back.Value.(jbCacheKey)
		j.lru.Remove(back)
		delete(j.cache, victim)
		j.burn(victim)
	}
}

// burn writes the page's current contents to a fresh platter address,
// charging platter mechanics.
func (j *Jukebox) burn(key jbCacheKey) {
	r, ok := j.rels[key.rel]
	if !ok || int(key.page) >= len(r.pages) {
		return
	}
	pg := r.pages[key.page]
	j.chargePlatter(pg.plat)
	pg.addr = j.platUsed[pg.plat]
	j.platUsed[pg.plat]++
	pg.burned = true
}

// chargePlatter charges a platter load if needed plus one access.
func (j *Jukebox) chargePlatter(plat int) {
	if j.loaded != plat {
		j.clock.Advance(j.params.PlatterLoad)
		j.loaded = plat
		j.loads++
	}
	cost := j.params.AccessLatency
	if j.params.TransferRate > 0 {
		cost += time.Duration(float64(PageSize) / j.params.TransferRate * float64(time.Second))
	}
	j.clock.Advance(cost)
}

// ReadPage copies a page into buf. Cache hits pay magnetic disk costs;
// misses pay platter mechanics and populate the cache.
func (j *Jukebox) ReadPage(rel OID, page uint32, buf []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.rels[rel]
	if !ok {
		return ErrNoRelation
	}
	if int(page) >= len(r.pages) {
		return ErrNoPage
	}
	pg := r.pages[page]
	if _, hit := j.cache[jbCacheKey{rel, page}]; hit || !pg.burned {
		j.cacheDisk.Access(int64(page), PageSize)
	} else {
		j.chargePlatter(pg.plat)
	}
	j.touchCache(rel, page)
	copy(buf, pg.data)
	return nil
}

// WritePage stores buf into a page. Writes land in the staging cache
// (magnetic disk cost) and are burned to the platter on eviction or
// Sync. Rewriting an already-burned page remaps it to a new address.
func (j *Jukebox) WritePage(rel OID, page uint32, buf []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	r, ok := j.rels[rel]
	if !ok {
		return ErrNoRelation
	}
	if int(page) >= len(r.pages) {
		return ErrNoPage
	}
	pg := r.pages[page]
	copy(pg.data, buf)
	pg.burned = false // contents superseded; must burn to a new address
	j.cacheDisk.Access(int64(page), PageSize)
	j.touchCache(rel, page)
	return nil
}

// Sync is a no-op: the staging cache lives on non-volatile magnetic
// disk, so cached-but-unburned pages are already stable. Pages reach
// the platter when evicted from the cache, or on an explicit Drain.
func (j *Jukebox) Sync() error { return nil }

// Drain burns every cached-but-unburned page to its platter (used when
// retiring the staging disk, and by tests).
func (j *Jukebox) Drain() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	for el := j.lru.Back(); el != nil; el = el.Prev() {
		key := el.Value.(jbCacheKey)
		if r, ok := j.rels[key.rel]; ok && int(key.page) < len(r.pages) && !r.pages[key.page].burned {
			j.burn(key)
		}
	}
	return nil
}

// DropCache empties the staging cache without burning anything; pages
// not yet burned would be lost, so it drains first. Benchmarks use it
// to measure truly cold platter reads.
func (j *Jukebox) DropCache() error {
	if err := j.Drain(); err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.cache = make(map[jbCacheKey]*list.Element)
	j.lru.Init()
	return nil
}

// PlatterLoads reports how many platter swaps the robot performed.
func (j *Jukebox) PlatterLoads() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.loads
}
