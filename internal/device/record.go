package device

import (
	"hash/fnv"
	"sync"

	"repro/internal/obs"
)

// RecKind classifies one recorded backend operation.
type RecKind uint8

const (
	RecCreate RecKind = iota
	RecDrop
	RecExtend
	RecWrite
	RecSync
)

func (k RecKind) String() string {
	switch k {
	case RecCreate:
		return "create"
	case RecDrop:
		return "drop"
	case RecExtend:
		return "extend"
	case RecWrite:
		return "write"
	case RecSync:
		return "sync"
	}
	return "rec?"
}

// RecOp is one operation that reached the backend device, in issue
// order. Write ops carry a private copy of the page payload (so a
// recorded trace can be replayed byte-for-byte later, whatever the
// caller did with its buffer since) plus an FNV-64a hash for compact
// diagnostics. Extend carries the page number the device returned.
type RecOp struct {
	Kind RecKind
	Rel  OID
	Page uint32
	Data []byte
	Hash uint64
}

// PayloadHash is the hash recorded for write payloads (FNV-64a).
func PayloadHash(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Recorder wraps a device manager and logs every operation that
// succeeds against it — writes (with payload), syncs, extends, creates,
// drops. The recorded sequence is the raw material of crash-state
// enumeration: a sync op is a durability barrier, and everything
// between two barriers is fair game for loss and reordering.
//
// Failed operations are not recorded: an op the inner device rejected
// never changed stable storage, so it is not part of any crash state.
// Recorder composes with Faulty in either order (both implement
// Manager); stacking Faulty above the Recorder keeps injected failures
// out of the trace, which is what the torture harness wants.
type Recorder struct {
	inner Manager

	mu  sync.Mutex
	ops []RecOp

	writes  *obs.Counter // recorded write ops
	syncs   *obs.Counter // recorded sync barriers
	extends *obs.Counter // recorded extends
	metas   *obs.Counter // recorded create/drop ops
}

// NewRecorder wraps inner.
func NewRecorder(inner Manager) *Recorder { return &Recorder{inner: inner} }

// SetObs attaches a metrics registry: recorded traffic shows up under
// "torture.recorded_*", so a harness run is visible in /metrics like
// every other subsystem.
func (r *Recorder) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	r.mu.Lock()
	r.writes = reg.Counter("torture.recorded_writes")
	r.syncs = reg.Counter("torture.recorded_syncs")
	r.extends = reg.Counter("torture.recorded_extends")
	r.metas = reg.Counter("torture.recorded_meta_ops")
	r.mu.Unlock()
}

func (r *Recorder) record(op RecOp) {
	r.mu.Lock()
	r.ops = append(r.ops, op)
	switch op.Kind {
	case RecWrite:
		r.writes.Inc()
	case RecSync:
		r.syncs.Inc()
	case RecExtend:
		r.extends.Inc()
	default:
		r.metas.Inc()
	}
	r.mu.Unlock()
}

// Len reports how many operations have been recorded. Called right
// after an acknowledged commit it gives an index i such that any crash
// at or beyond i includes that commit's sync barrier.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}

// Trace returns a copy of the recorded operation sequence.
func (r *Recorder) Trace() []RecOp {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RecOp, len(r.ops))
	copy(out, r.ops)
	return out
}

// Reset discards the recorded trace (counters are kept).
func (r *Recorder) Reset() {
	r.mu.Lock()
	r.ops = nil
	r.mu.Unlock()
}

// Manager implementation.

// Class reports the wrapped manager's class, so placement and the
// log-device preference behave exactly as they would unwrapped.
func (r *Recorder) Class() string { return r.inner.Class() }

// Create delegates and records.
func (r *Recorder) Create(rel OID) error {
	if err := r.inner.Create(rel); err != nil {
		return err
	}
	r.record(RecOp{Kind: RecCreate, Rel: rel})
	return nil
}

// Drop delegates and records.
func (r *Recorder) Drop(rel OID) error {
	if err := r.inner.Drop(rel); err != nil {
		return err
	}
	r.record(RecOp{Kind: RecDrop, Rel: rel})
	return nil
}

// NPages delegates (reads are not part of a crash state).
func (r *Recorder) NPages(rel OID) (uint32, error) { return r.inner.NPages(rel) }

// Extend delegates and records the new page number.
func (r *Recorder) Extend(rel OID) (uint32, error) {
	pn, err := r.inner.Extend(rel)
	if err != nil {
		return 0, err
	}
	r.record(RecOp{Kind: RecExtend, Rel: rel, Page: pn})
	return pn, nil
}

// ReadPage delegates.
func (r *Recorder) ReadPage(rel OID, page uint32, buf []byte) error {
	return r.inner.ReadPage(rel, page, buf)
}

// WritePage delegates and records a payload copy.
func (r *Recorder) WritePage(rel OID, page uint32, buf []byte) error {
	if err := r.inner.WritePage(rel, page, buf); err != nil {
		return err
	}
	cp := make([]byte, len(buf))
	copy(cp, buf)
	r.record(RecOp{Kind: RecWrite, Rel: rel, Page: page, Data: cp, Hash: PayloadHash(cp)})
	return nil
}

// Sync delegates and records the durability barrier.
func (r *Recorder) Sync() error {
	if err := r.inner.Sync(); err != nil {
		return err
	}
	r.record(RecOp{Kind: RecSync})
	return nil
}

var _ Manager = (*Recorder)(nil)
