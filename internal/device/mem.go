package device

import (
	"sync"
	"time"

	"repro/internal/iosim"
)

// Mem is the non-volatile RAM device manager. POSTGRES 4.0.1 shipped an
// NVRAM device manager operating on a raw device; here it is a map of
// pages with a small fixed access cost charged to the virtual clock.
type Mem struct {
	mu      sync.Mutex
	clock   *iosim.Clock
	latency time.Duration
	rels    map[OID][][]byte
}

// NewMem returns an NVRAM device manager. clock may be nil to disable
// cost accounting; latency is charged per page access.
func NewMem(clock *iosim.Clock, latency time.Duration) *Mem {
	return &Mem{clock: clock, latency: latency, rels: make(map[OID][][]byte)}
}

// Class reports "mem".
func (m *Mem) Class() string { return "mem" }

// Create registers a new empty relation.
func (m *Mem) Create(rel OID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.rels[rel]; !ok {
		m.rels[rel] = nil
	}
	return nil
}

// Drop removes a relation.
func (m *Mem) Drop(rel OID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.rels[rel]; !ok {
		return ErrNoRelation
	}
	delete(m.rels, rel)
	return nil
}

// NPages reports the relation's page count.
func (m *Mem) NPages(rel OID) (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pages, ok := m.rels[rel]
	if !ok {
		return 0, ErrNoRelation
	}
	return uint32(len(pages)), nil
}

// Extend appends a zeroed page.
func (m *Mem) Extend(rel OID) (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	pages, ok := m.rels[rel]
	if !ok {
		return 0, ErrNoRelation
	}
	m.rels[rel] = append(pages, make([]byte, PageSize))
	return uint32(len(pages)), nil
}

// ReadPage copies a page into buf.
func (m *Mem) ReadPage(rel OID, page uint32, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	pages, ok := m.rels[rel]
	if !ok {
		return ErrNoRelation
	}
	if int(page) >= len(pages) {
		return ErrNoPage
	}
	copy(buf, pages[page])
	m.clock.Advance(m.latency)
	return nil
}

// WritePage stores buf into a page.
func (m *Mem) WritePage(rel OID, page uint32, buf []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	pages, ok := m.rels[rel]
	if !ok {
		return ErrNoRelation
	}
	if int(page) >= len(pages) {
		return ErrNoPage
	}
	copy(pages[page], buf)
	m.clock.Advance(m.latency)
	return nil
}

// Sync is a no-op: NVRAM is already stable.
func (m *Mem) Sync() error { return nil }
