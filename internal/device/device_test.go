package device

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/iosim"
)

func fill(b []byte, v byte) {
	for i := range b {
		b[i] = v
	}
}

func testManagerBasics(t *testing.T, m Manager) {
	t.Helper()
	const rel OID = 100
	if err := m.Create(rel); err != nil {
		t.Fatalf("Create: %v", err)
	}
	n, err := m.NPages(rel)
	if err != nil || n != 0 {
		t.Fatalf("NPages = %d, %v", n, err)
	}
	for i := 0; i < 5; i++ {
		pn, err := m.Extend(rel)
		if err != nil {
			t.Fatalf("Extend: %v", err)
		}
		if pn != uint32(i) {
			t.Fatalf("Extend returned page %d, want %d", pn, i)
		}
	}
	buf := make([]byte, PageSize)
	fill(buf, 0xAB)
	if err := m.WritePage(rel, 3, buf); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	got := make([]byte, PageSize)
	if err := m.ReadPage(rel, 3, got); err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(buf, got) {
		t.Fatal("read back wrong contents")
	}
	// Unwritten page reads zero.
	if err := m.ReadPage(rel, 4, got); err != nil {
		t.Fatalf("ReadPage(4): %v", err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("fresh page not zeroed")
		}
	}
	if err := m.ReadPage(rel, 9, got); err != ErrNoPage {
		t.Fatalf("out-of-range read: %v", err)
	}
	if err := m.ReadPage(999, 0, got); err != ErrNoRelation {
		t.Fatalf("missing relation read: %v", err)
	}
	if err := m.Drop(rel); err != nil {
		t.Fatalf("Drop: %v", err)
	}
	if _, err := m.NPages(rel); err != ErrNoRelation {
		t.Fatalf("NPages after drop: %v", err)
	}
}

func TestMemManager(t *testing.T) {
	testManagerBasics(t, NewMem(nil, 0))
}

func TestDiskManager(t *testing.T) {
	testManagerBasics(t, NewDisk(nil, 0))
}

func TestJukeboxManager(t *testing.T) {
	testManagerBasics(t, NewJukebox(DefaultJukebox(), nil))
}

func TestDiskExtentLayoutSequential(t *testing.T) {
	clock := iosim.NewClock()
	d := NewDisk(iosim.NewDisk(iosim.RZ58(), clock), 16)
	const rel OID = 5
	if err := d.Create(rel); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 16; i++ {
		if _, err := d.Extend(rel); err != nil {
			t.Fatal(err)
		}
	}
	clock.Reset()
	for i := 0; i < 16; i++ {
		if err := d.WritePage(rel, uint32(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	seq := clock.Now()
	clock.Reset()
	for i := 15; i >= 0; i-- {
		if err := d.WritePage(rel, uint32(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	rev := clock.Now()
	if seq >= rev {
		t.Fatalf("sequential writes (%v) not cheaper than reverse (%v)", seq, rev)
	}
}

func TestJukeboxCacheAvoidsPlatterLoads(t *testing.T) {
	clock := iosim.NewClock()
	p := DefaultJukebox()
	p.CachePages = 8
	j := NewJukebox(p, clock)
	const rel OID = 7
	if err := j.Create(rel); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 4; i++ {
		if _, err := j.Extend(rel); err != nil {
			t.Fatal(err)
		}
		if err := j.WritePage(rel, uint32(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	// All four pages fit in the staging cache: reads must not load a
	// platter.
	loadsBefore := j.PlatterLoads()
	for i := 0; i < 4; i++ {
		if err := j.ReadPage(rel, uint32(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	if j.PlatterLoads() != loadsBefore {
		t.Fatal("cached reads loaded a platter")
	}
	// Force them out to the platter and drop the cache by filling it
	// with other pages.
	if err := j.Drain(); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 14; i++ {
		if _, err := j.Extend(rel); err != nil {
			t.Fatal(err)
		}
		if err := j.WritePage(rel, uint32(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	before := clock.Now()
	if err := j.ReadPage(rel, 0, buf); err != nil {
		t.Fatal(err)
	}
	if cost := clock.Now() - before; cost < p.AccessLatency {
		t.Fatalf("platter read cost only %v", cost)
	}
}

func TestJukeboxSyncBurnsAndPreserves(t *testing.T) {
	j := NewJukebox(DefaultJukebox(), nil)
	const rel OID = 9
	if err := j.Create(rel); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Extend(rel); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	fill(buf, 0x5A)
	if err := j.WritePage(rel, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := j.Drain(); err != nil {
		t.Fatal(err)
	}
	// Rewriting a burned page must succeed (remap) and preserve the new
	// contents.
	fill(buf, 0x77)
	if err := j.WritePage(rel, 0, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := j.ReadPage(rel, 0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0x77 {
		t.Fatal("rewrite lost")
	}
}

func TestSwitchPlacementAndRouting(t *testing.T) {
	s := NewSwitch()
	mem := NewMem(nil, time.Microsecond)
	dsk := NewDisk(nil, 0)
	s.Register(dsk)
	s.Register(mem)
	if err := s.SetDefault("disk"); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(1, ""); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(2, "mem"); err != nil {
		t.Fatal(err)
	}
	if c, _ := s.HomeClass(1); c != "disk" {
		t.Fatalf("oid 1 on %q", c)
	}
	if c, _ := s.HomeClass(2); c != "mem" {
		t.Fatalf("oid 2 on %q", c)
	}
	if err := s.Place(3, "tape"); err == nil {
		t.Fatal("placed on unknown class")
	}
	// I/O routes transparently.
	if _, err := s.Extend(1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	fill(buf, 1)
	if err := s.WritePage(1, 0, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, PageSize)
	if err := s.ReadPage(1, 0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("routed read wrong")
	}
}

func TestSwitchMigrate(t *testing.T) {
	s := NewSwitch()
	dsk := NewDisk(nil, 0)
	jb := NewJukebox(DefaultJukebox(), nil)
	s.Register(dsk)
	s.Register(jb)
	const rel OID = 11
	if err := s.Place(rel, "disk"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 3; i++ {
		if _, err := s.Extend(rel); err != nil {
			t.Fatal(err)
		}
		fill(buf, byte(i+1))
		if err := s.WritePage(rel, uint32(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Migrate(rel, "jukebox"); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if c, _ := s.HomeClass(rel); c != "jukebox" {
		t.Fatalf("after migrate on %q", c)
	}
	for i := 0; i < 3; i++ {
		if err := s.ReadPage(rel, uint32(i), buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i+1) {
			t.Fatalf("page %d contents lost in migration", i)
		}
	}
	// Source no longer has it.
	if _, err := dsk.NPages(rel); err != ErrNoRelation {
		t.Fatal("source still holds relation after migrate")
	}
}
