package device

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func openFD(t *testing.T, path string) *FileDisk {
	t.Helper()
	d, err := OpenFileDisk(path, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestFileDiskBasics(t *testing.T) {
	testManagerBasics(t, openFD(t, filepath.Join(t.TempDir(), "db")))
}

func TestFileDiskPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	d, err := OpenFileDisk(path, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	const rel OID = 42
	if err := d.Create(rel); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 20; i++ { // spans two extents
		if _, err := d.Extend(rel); err != nil {
			t.Fatal(err)
		}
		fill(buf, byte(i+1))
		if err := d.WritePage(rel, uint32(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2 := openFD(t, path)
	n, err := d2.NPages(rel)
	if err != nil || n != 20 {
		t.Fatalf("NPages after reopen = %d, %v", n, err)
	}
	got := make([]byte, PageSize)
	for i := 0; i < 20; i++ {
		if err := d2.ReadPage(rel, uint32(i), got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) || got[PageSize-1] != byte(i+1) {
			t.Fatalf("page %d contents lost: %d", i, got[0])
		}
	}
	// New allocations continue above the old ones (no overlap).
	const rel2 OID = 43
	if err := d2.Create(rel2); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Extend(rel2); err != nil {
		t.Fatal(err)
	}
	fill(buf, 0xEE)
	if err := d2.WritePage(rel2, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := d2.ReadPage(rel, 0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("new relation's blocks collided with old relation")
	}
}

func TestFileDiskSparseReadsZero(t *testing.T) {
	d := openFD(t, filepath.Join(t.TempDir(), "db"))
	const rel OID = 7
	if err := d.Create(rel); err != nil {
		t.Fatal(err)
	}
	// Extend without writing: the file stays sparse; reads are zeros.
	for i := 0; i < 3; i++ {
		if _, err := d.Extend(rel); err != nil {
			t.Fatal(err)
		}
	}
	buf := bytes.Repeat([]byte{0xFF}, PageSize)
	if err := d.ReadPage(rel, 2, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("sparse page not zero")
		}
	}
}

func TestFileDiskRejectsCorruptMeta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db")
	d, err := OpenFileDisk(path, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Smash the header.
	if err := writeBytesAt(path, 0, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileDisk(path, nil, 16); err == nil {
		t.Fatal("corrupt backing file opened")
	}
}

// writeBytesAt patches a file in place (test helper).
func writeBytesAt(path string, off int64, b []byte) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt(b, off)
	return err
}
