package device

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/iosim"
	"repro/internal/rowenc"
)

// FileDisk is a magnetic-disk device manager backed by a real file on
// the host, giving the database durability across process restarts.
// The layout mirrors the simulated Disk manager — relations are
// allocated in contiguous extents from a linear block space — with a
// metadata region at the front of the file recording the extent maps.
// An optional cost model still charges virtual time, so a persistent
// database can participate in benchmarks too.
//
// File layout:
//
//	page 0 .. metaPages-1   metadata region (see encodeMeta)
//	page metaPages + b      data block b
type FileDisk struct {
	mu          sync.Mutex
	f           *os.File
	model       *iosim.Disk
	extentPages int
	nextBlock   int64
	rels        map[OID]*diskRel
	metaDirty   bool
}

const (
	fdMagic     = 0x494e_5644 // "INVD"
	fdMetaPages = 256         // 2 MB of metadata: ~50k extents
)

// ErrMetaFull reports that the metadata region cannot hold more extent
// map entries; the database has outgrown this backing file.
var ErrMetaFull = errors.New("device: backing file metadata region full")

// OpenFileDisk opens (or creates) a persistent disk at path. model may
// be nil to disable virtual-time accounting.
func OpenFileDisk(path string, model *iosim.Disk, extentPages int) (*FileDisk, error) {
	if extentPages <= 0 {
		extentPages = DefaultExtentPages
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	d := &FileDisk{
		f:           f,
		model:       model,
		extentPages: extentPages,
		rels:        make(map[OID]*diskRel),
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		d.metaDirty = true
		if err := d.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		return d, nil
	}
	if err := d.loadMeta(); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// Close syncs metadata and closes the backing file.
func (d *FileDisk) Close() error {
	if err := d.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}

// Class reports "disk": a FileDisk is a drop-in replacement for the
// simulated magnetic disk.
func (d *FileDisk) Class() string { return "disk" }

// encodeMeta serialises the extent maps:
//
//	magic(4) version(4) extentPages(4) nextBlock(8) nrels(4)
//	then per relation: oid(4) npages(4) nextents(4) extents(8 each)
func (d *FileDisk) encodeMeta() ([]byte, error) {
	w := rowenc.NewWriter(4096)
	w.Uint32(fdMagic).Uint32(1).Uint32(uint32(d.extentPages))
	w.Uint64(uint64(d.nextBlock)).Uint32(uint32(len(d.rels)))
	for oid, r := range d.rels {
		w.Uint32(uint32(oid)).Uint32(r.npages).Uint32(uint32(len(r.extents)))
		for _, e := range r.extents {
			w.Uint64(uint64(e))
		}
	}
	buf := w.Done()
	if len(buf)+8 > fdMetaPages*PageSize {
		return nil, ErrMetaFull
	}
	out := make([]byte, 8+len(buf))
	binary.LittleEndian.PutUint64(out, uint64(len(buf)))
	copy(out[8:], buf)
	return out, nil
}

func (d *FileDisk) loadMeta() error {
	var lenb [8]byte
	if _, err := d.f.ReadAt(lenb[:], 0); err != nil {
		return fmt.Errorf("device: reading backing file header: %w", err)
	}
	n := binary.LittleEndian.Uint64(lenb[:])
	if n == 0 || n > fdMetaPages*PageSize {
		return fmt.Errorf("device: backing file metadata length %d corrupt", n)
	}
	buf := make([]byte, n)
	if _, err := d.f.ReadAt(buf, 8); err != nil {
		return fmt.Errorf("device: reading backing file metadata: %w", err)
	}
	r := rowenc.NewReader(buf)
	if r.Uint32() != fdMagic {
		return errors.New("device: backing file has bad magic")
	}
	if v := r.Uint32(); v != 1 {
		return fmt.Errorf("device: backing file version %d unsupported", v)
	}
	d.extentPages = int(r.Uint32())
	d.nextBlock = int64(r.Uint64())
	nrels := int(r.Uint32())
	for i := 0; i < nrels; i++ {
		oid := OID(r.Uint32())
		rel := &diskRel{npages: r.Uint32()}
		next := int(r.Uint32())
		for e := 0; e < next; e++ {
			rel.extents = append(rel.extents, int64(r.Uint64()))
		}
		d.rels[oid] = rel
	}
	if err := r.Err(); err != nil {
		return fmt.Errorf("device: backing file metadata corrupt: %w", err)
	}
	return nil
}

func (d *FileDisk) dataOffset(block int64) int64 {
	return (int64(fdMetaPages) + block) * PageSize
}

// Create registers a new empty relation (idempotent: reopening a
// database re-places catalogued relations).
func (d *FileDisk) Create(rel OID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.rels[rel]; !ok {
		d.rels[rel] = &diskRel{}
		d.metaDirty = true
	}
	return nil
}

// Drop removes a relation's map entry; its blocks are not reclaimed.
func (d *FileDisk) Drop(rel OID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.rels[rel]; !ok {
		return ErrNoRelation
	}
	delete(d.rels, rel)
	d.metaDirty = true
	return nil
}

// NPages reports the relation's page count.
func (d *FileDisk) NPages(rel OID) (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.rels[rel]
	if !ok {
		return 0, ErrNoRelation
	}
	return r.npages, nil
}

// Extend appends a zeroed page; the file stays sparse until the page is
// written.
func (d *FileDisk) Extend(rel OID) (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.rels[rel]
	if !ok {
		return 0, ErrNoRelation
	}
	if int(r.npages) >= len(r.extents)*d.extentPages {
		r.extents = append(r.extents, d.nextBlock)
		d.nextBlock += int64(d.extentPages)
	}
	page := r.npages
	r.npages++
	d.metaDirty = true
	return page, nil
}

// ReadPage fills buf from the backing file (zero-filling sparse holes).
func (d *FileDisk) ReadPage(rel OID, page uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.rels[rel]
	if !ok {
		return ErrNoRelation
	}
	if page >= r.npages {
		return ErrNoPage
	}
	block := r.block(page, d.extentPages)
	d.model.Access(block, PageSize)
	n, err := d.f.ReadAt(buf[:PageSize], d.dataOffset(block))
	if err == io.EOF || (err == nil && n < PageSize) {
		for i := n; i < PageSize; i++ {
			buf[i] = 0
		}
		return nil
	}
	return err
}

// WritePage stores buf into the backing file.
func (d *FileDisk) WritePage(rel OID, page uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.rels[rel]
	if !ok {
		return ErrNoRelation
	}
	if page >= r.npages {
		return ErrNoPage
	}
	block := r.block(page, d.extentPages)
	d.model.Access(block, PageSize)
	_, err := d.f.WriteAt(buf[:PageSize], d.dataOffset(block))
	return err
}

// Sync persists the metadata region and fsyncs the backing file — the
// stable-storage force the no-overwrite manager's commits rely on.
func (d *FileDisk) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.metaDirty {
		meta, err := d.encodeMeta()
		if err != nil {
			return err
		}
		if _, err := d.f.WriteAt(meta, 0); err != nil {
			return err
		}
		d.metaDirty = false
	}
	return d.f.Sync()
}
