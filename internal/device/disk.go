package device

import (
	"sync"

	"repro/internal/iosim"
)

// DefaultExtentPages is how many physically contiguous pages a disk or
// jukebox extent holds. The paper: the Sony jukebox "allocates tables in
// units of extents … the extent size is tunable … but defaults to 16
// pages"; the same clustering strategy is used here for magnetic disk so
// that data within one relation stays sequential (the cylinder-group
// effect of the underlying UNIX FFS the paper's disk manager relied on).
const DefaultExtentPages = 16

type diskRel struct {
	extents []int64 // starting block address of each extent
	npages  uint32
}

// Disk is the magnetic disk device manager. Pages live in memory (this
// is a simulation), but every access is charged to a mechanical disk
// model: relations are laid out in contiguous extents carved from a
// linear block address space, so intra-relation scans are sequential
// while interleaved access across relations pays seeks — the effect the
// paper blames for Inversion's file-creation overhead.
type Disk struct {
	mu          sync.Mutex
	model       *iosim.Disk
	extentPages int
	nextBlock   int64
	rels        map[OID]*diskRel
	pages       map[OID][][]byte
}

// NewDisk returns a magnetic disk manager charging costs to model
// (which may be nil to disable accounting).
func NewDisk(model *iosim.Disk, extentPages int) *Disk {
	if extentPages <= 0 {
		extentPages = DefaultExtentPages
	}
	return &Disk{
		model:       model,
		extentPages: extentPages,
		rels:        make(map[OID]*diskRel),
		pages:       make(map[OID][][]byte),
	}
}

// Class reports "disk".
func (d *Disk) Class() string { return "disk" }

// Create registers a new empty relation.
func (d *Disk) Create(rel OID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.rels[rel]; !ok {
		d.rels[rel] = &diskRel{}
		d.pages[rel] = nil
	}
	return nil
}

// Drop removes a relation. Its blocks are not reused: 1993 FFS-era
// allocators rarely compacted, and leaking simulated blocks only makes
// the address space sparser.
func (d *Disk) Drop(rel OID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.rels[rel]; !ok {
		return ErrNoRelation
	}
	delete(d.rels, rel)
	delete(d.pages, rel)
	return nil
}

// NPages reports the relation's page count.
func (d *Disk) NPages(rel OID) (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.rels[rel]
	if !ok {
		return 0, ErrNoRelation
	}
	return r.npages, nil
}

// Extend appends a zeroed page, allocating a new extent when the last
// one is full.
func (d *Disk) Extend(rel OID) (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.rels[rel]
	if !ok {
		return 0, ErrNoRelation
	}
	if int(r.npages) >= len(r.extents)*d.extentPages {
		r.extents = append(r.extents, d.nextBlock)
		d.nextBlock += int64(d.extentPages)
	}
	page := r.npages
	r.npages++
	d.pages[rel] = append(d.pages[rel], make([]byte, PageSize))
	return page, nil
}

// block maps a relation page number to its linear block address.
func (r *diskRel) block(page uint32, extentPages int) int64 {
	ext := int(page) / extentPages
	off := int(page) % extentPages
	return r.extents[ext] + int64(off)
}

// ReadPage copies a page into buf, charging disk mechanics.
func (d *Disk) ReadPage(rel OID, page uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.rels[rel]
	if !ok {
		return ErrNoRelation
	}
	if page >= r.npages {
		return ErrNoPage
	}
	d.model.Access(r.block(page, d.extentPages), PageSize)
	copy(buf, d.pages[rel][page])
	return nil
}

// WritePage stores buf into a page, charging disk mechanics.
func (d *Disk) WritePage(rel OID, page uint32, buf []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	r, ok := d.rels[rel]
	if !ok {
		return ErrNoRelation
	}
	if page >= r.npages {
		return ErrNoPage
	}
	d.model.Access(r.block(page, d.extentPages), PageSize)
	copy(d.pages[rel][page], buf)
	return nil
}

// Sync is a no-op: pages are written through in this model.
func (d *Disk) Sync() error { return nil }

// Model exposes the underlying mechanical model (for benchmark stats).
func (d *Disk) Model() *iosim.Disk { return d.model }
