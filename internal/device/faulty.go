package device

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/obs"
)

// FaultOp names a device operation class that Faulty can inject
// failures into.
type FaultOp uint8

const (
	FaultRead FaultOp = iota
	FaultWrite
	FaultExtend
	FaultSync
	nFaultOps
)

func (op FaultOp) String() string {
	switch op {
	case FaultRead:
		return "read"
	case FaultWrite:
		return "write"
	case FaultExtend:
		return "extend"
	case FaultSync:
		return "sync"
	}
	return fmt.Sprintf("faultop(%d)", op)
}

// Errors injected by Faulty. Injected errors wrap these, so tests match
// with errors.Is regardless of the op/rel/page detail in the message.
var (
	ErrInjected = errors.New("device: injected fault")
	ErrCrashed  = errors.New("device: device crashed")
)

// PageIO is the minimal page-I/O surface Faulty wraps. Both Manager and
// *Switch satisfy it, and it is exactly the surface the buffer cache
// needs, so a Faulty composes either under the switch (one flaky
// device) or over it (every page the buffer pool touches).
type PageIO interface {
	NPages(rel OID) (uint32, error)
	Extend(rel OID) (uint32, error)
	ReadPage(rel OID, page uint32, buf []byte) error
	WritePage(rel OID, page uint32, buf []byte) error
}

// faultRule is one armed injection. Exactly one trigger field is set by
// the public constructors; pred-only rules fire on every matching op.
type faultRule struct {
	op      FaultOp
	nth     uint64                            // fire when the op counter hits nth
	every   uint64                            // fire when counter % every == 0
	prob    float64                           // fire with probability prob (seeded rng)
	pred    func(rel OID, page uint32) bool   // fire when pred matches
	err     error                             // error to inject (wraps ErrInjected)
	hook    func()                            // crash hook, run once outside the lock
	oneShot bool                              // disarm after the first firing
	spent   bool
}

// Faulty wraps a device (or the whole switch) and injects deterministic
// failures. All scheduling is driven by per-op call counters and a
// seeded PRNG, so a test that arms the same rules over the same
// workload observes the same failures on every run — the determinism
// contract EXPERIMENTS.md recovery runs rely on.
//
// A Faulty with no armed rules is transparent. Rules are evaluated in
// arming order; the first rule that fires supplies the injected error.
// When a crash rule fires the device goes down: every subsequent
// operation fails with ErrCrashed until Heal is called, simulating a
// device that stops responding rather than one that fails a single
// request.
type Faulty struct {
	inner PageIO

	mu     sync.Mutex
	rng    *rand.Rand
	counts [nFaultOps]uint64
	trips  uint64
	down   bool
	rules  []*faultRule

	obsTrips   *obs.Counter // injected failures ("device.faults_injected")
	obsCrashes *obs.Counter // crash rules fired ("device.fault_crashes")
}

// SetObs attaches a metrics registry: every injected failure counts in
// "device.faults_injected" and every crash-rule firing in
// "device.fault_crashes", so fault-injection and torture runs show up
// in /metrics like every other subsystem.
func (f *Faulty) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	f.mu.Lock()
	f.obsTrips = reg.Counter("device.faults_injected")
	f.obsCrashes = reg.Counter("device.fault_crashes")
	f.mu.Unlock()
}

// NewFaulty wraps inner. The seed drives probabilistic rules
// (FailProb); counter-based rules are deterministic regardless.
func NewFaulty(inner PageIO, seed int64) *Faulty {
	return &Faulty{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// FailNth arms a one-shot failure on the n-th (1-based) operation of
// the given class. A nil err injects ErrInjected.
func (f *Faulty) FailNth(op FaultOp, n uint64, err error) *Faulty {
	return f.arm(&faultRule{op: op, nth: n, err: err, oneShot: true})
}

// FailEvery arms a failure on every k-th operation of the given class.
func (f *Faulty) FailEvery(op FaultOp, k uint64, err error) *Faulty {
	return f.arm(&faultRule{op: op, every: k, err: err})
}

// FailIf arms a failure on every operation of the given class whose
// (rel, page) the predicate matches. Sync ops carry rel 0, page 0.
func (f *Faulty) FailIf(op FaultOp, pred func(rel OID, page uint32) bool, err error) *Faulty {
	return f.arm(&faultRule{op: op, pred: pred, err: err})
}

// FailProb arms a failure on each operation of the given class with
// probability p, drawn from the seeded PRNG.
func (f *Faulty) FailProb(op FaultOp, p float64, err error) *Faulty {
	return f.arm(&faultRule{op: op, prob: p, err: err})
}

// CrashOn arms a one-shot crash at the n-th operation of the given
// class: the hook (typically buffer.Pool.Crash, or a test's bookkeeping)
// runs once, the operation fails with ErrCrashed, and the device stays
// down until Heal. hook may be nil.
//
// The hook runs with no Faulty lock held, but the faulting operation is
// still on the caller's stack: a hook must not re-enter a lock the
// caller holds. buffer.Pool.Crash is safe from log-relation writes
// (commit issues them outside the pool) and from data-page writebacks
// (the sharded pool issues those holding only the victim frame's
// latch, which Crash never takes); the conventional arming point is
// still the status-log write, because that is where a torn commit is
// semantically interesting.
func (f *Faulty) CrashOn(op FaultOp, n uint64, hook func()) *Faulty {
	return f.arm(&faultRule{op: op, nth: n, err: ErrCrashed, hook: hook, oneShot: true})
}

// CrashIf arms a one-shot crash on the first operation of the given
// class matching the predicate. See CrashOn for the hook contract.
func (f *Faulty) CrashIf(op FaultOp, pred func(rel OID, page uint32) bool, hook func()) *Faulty {
	return f.arm(&faultRule{op: op, pred: pred, err: ErrCrashed, hook: hook, oneShot: true})
}

func (f *Faulty) arm(r *faultRule) *Faulty {
	if r.err == nil {
		r.err = ErrInjected
	}
	f.mu.Lock()
	f.rules = append(f.rules, r)
	f.mu.Unlock()
	return f
}

// Clear disarms every rule (counters and the down state are kept).
func (f *Faulty) Clear() *Faulty {
	f.mu.Lock()
	f.rules = nil
	f.mu.Unlock()
	return f
}

// Heal brings a crashed device back up.
func (f *Faulty) Heal() *Faulty {
	f.mu.Lock()
	f.down = false
	f.mu.Unlock()
	return f
}

// Count reports how many operations of the given class have been
// issued (including failed ones).
func (f *Faulty) Count(op FaultOp) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// Trips reports how many failures have been injected in total.
func (f *Faulty) Trips() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.trips
}

// Down reports whether a crash rule has taken the device down.
func (f *Faulty) Down() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.down
}

// check advances the op counter and evaluates the armed rules,
// returning the injected error if one fires. The crash hook, if any,
// runs after the lock is released.
func (f *Faulty) check(op FaultOp, rel OID, page uint32) error {
	f.mu.Lock()
	if f.down {
		f.mu.Unlock()
		return fmt.Errorf("%w: %s rel=%d page=%d", ErrCrashed, op, rel, page)
	}
	f.counts[op]++
	n := f.counts[op]
	var fired *faultRule
	for _, r := range f.rules {
		if r.spent || r.op != op {
			continue
		}
		fire := false
		switch {
		case r.nth > 0:
			fire = n == r.nth
		case r.every > 0:
			fire = n%r.every == 0
		case r.prob > 0:
			fire = f.rng.Float64() < r.prob
		case r.pred != nil:
			fire = r.pred(rel, page)
		}
		if !fire {
			continue
		}
		if r.oneShot {
			r.spent = true
		}
		if errors.Is(r.err, ErrCrashed) {
			f.down = true
			f.obsCrashes.Inc()
		}
		f.trips++
		f.obsTrips.Inc()
		fired = r
		break
	}
	f.mu.Unlock()
	if fired == nil {
		return nil
	}
	if fired.hook != nil {
		fired.hook()
	}
	return fmt.Errorf("%w: %s rel=%d page=%d (op #%d)", fired.err, op, rel, page, n)
}

// downErr reports the crashed state for metadata ops that are not
// otherwise fault targets.
func (f *Faulty) downErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down {
		return ErrCrashed
	}
	return nil
}

// PageIO (and Manager page-I/O) methods.

// NPages delegates to the wrapped device; it fails only while crashed.
func (f *Faulty) NPages(rel OID) (uint32, error) {
	if err := f.downErr(); err != nil {
		return 0, err
	}
	return f.inner.NPages(rel)
}

// Extend injects FaultExtend rules, then delegates.
func (f *Faulty) Extend(rel OID) (uint32, error) {
	if err := f.check(FaultExtend, rel, 0); err != nil {
		return 0, err
	}
	return f.inner.Extend(rel)
}

// ReadPage injects FaultRead rules, then delegates.
func (f *Faulty) ReadPage(rel OID, page uint32, buf []byte) error {
	if err := f.check(FaultRead, rel, page); err != nil {
		return err
	}
	return f.inner.ReadPage(rel, page, buf)
}

// WritePage injects FaultWrite rules, then delegates.
func (f *Faulty) WritePage(rel OID, page uint32, buf []byte) error {
	if err := f.check(FaultWrite, rel, page); err != nil {
		return err
	}
	return f.inner.WritePage(rel, page, buf)
}

// Remaining Manager methods, so a Faulty over a Manager can be
// Registered in a Switch like any other device. When the wrapped value
// does not implement the method (e.g. a *Switch), they are inert.

// Class reports the wrapped manager's class, or "faulty".
func (f *Faulty) Class() string {
	if m, ok := f.inner.(Manager); ok {
		return m.Class()
	}
	return "faulty"
}

// Create delegates to the wrapped manager, if it is one.
func (f *Faulty) Create(rel OID) error {
	if err := f.downErr(); err != nil {
		return err
	}
	if m, ok := f.inner.(Manager); ok {
		return m.Create(rel)
	}
	return nil
}

// Drop delegates to the wrapped manager or switch.
func (f *Faulty) Drop(rel OID) error {
	if err := f.downErr(); err != nil {
		return err
	}
	if d, ok := f.inner.(interface{ Drop(OID) error }); ok {
		return d.Drop(rel)
	}
	return nil
}

// Sync injects FaultSync rules, then delegates.
func (f *Faulty) Sync() error {
	if err := f.check(FaultSync, 0, 0); err != nil {
		return err
	}
	if s, ok := f.inner.(interface{ Sync() error }); ok {
		return s.Sync()
	}
	return nil
}

var _ Manager = (*Faulty)(nil)
var _ PageIO = (*Switch)(nil)
