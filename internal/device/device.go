// Package device implements the POSTGRES device manager switch that
// Inversion relies on for location-transparent storage. Administrators
// register device managers (the paper ships non-volatile RAM, magnetic
// disk, and a 327 GB Sony WORM optical jukebox); every relation is placed
// on one manager at creation and is thereafter addressed only by its
// object identifier, so callers never know which device holds their data.
package device

import (
	"errors"
	"fmt"
	"sync"
)

// PageSize is the size of a data manager page. The paper: "This page
// size was chosen early in the design of POSTGRES, and was intended to
// make magnetic disk transfers fast."
const PageSize = 8192

// OID identifies a relation (or any other database object). Object
// identifiers play the role inode numbers play in a conventional file
// system.
type OID uint32

// Errors returned by device managers.
var (
	ErrNoRelation   = errors.New("device: no such relation")
	ErrNoPage       = errors.New("device: no such page")
	ErrWriteOnce    = errors.New("device: page already written (write-once medium)")
	ErrUnknownClass = errors.New("device: unknown device class")
)

// Manager is one entry in the device manager switch. It stores pages of
// relations and reports a short class name ("mem", "disk", "jukebox").
// Implementations must be safe for concurrent use.
type Manager interface {
	// Class reports the device class this manager implements.
	Class() string
	// Create registers a new, empty relation.
	Create(rel OID) error
	// Drop removes a relation and releases its storage.
	Drop(rel OID) error
	// NPages reports how many pages the relation currently has.
	NPages(rel OID) (uint32, error)
	// Extend appends one zeroed page to the relation and returns its
	// page number.
	Extend(rel OID) (uint32, error)
	// ReadPage fills buf (len PageSize) from the given page.
	ReadPage(rel OID, page uint32, buf []byte) error
	// WritePage stores buf (len PageSize) to the given page.
	WritePage(rel OID, page uint32, buf []byte) error
	// Sync forces any device-private caching to stable storage.
	Sync() error
}

// Switch is the device manager switch: it routes relation I/O to the
// manager the relation was placed on at creation, exactly as the
// bdevsw-style table in POSTGRES does.
type Switch struct {
	mu       sync.RWMutex
	managers map[string]Manager
	homes    map[OID]Manager
	dflt     string
}

// NewSwitch returns an empty device switch.
func NewSwitch() *Switch {
	return &Switch{
		managers: make(map[string]Manager),
		homes:    make(map[OID]Manager),
	}
}

// Register adds a manager under its class name. The first registered
// manager becomes the default placement target.
func (s *Switch) Register(m Manager) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.managers[m.Class()] = m
	if s.dflt == "" {
		s.dflt = m.Class()
	}
}

// SetDefault selects the class used when Place is called with class "".
func (s *Switch) SetDefault(class string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.managers[class]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownClass, class)
	}
	s.dflt = class
	return nil
}

// Classes lists the registered device classes.
func (s *Switch) Classes() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.managers))
	for c := range s.managers {
		out = append(out, c)
	}
	return out
}

// Manager returns the registered manager for a class.
func (s *Switch) Manager(class string) (Manager, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.managers[class]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownClass, class)
	}
	return m, nil
}

// Place creates rel on the manager of the given class ("" means the
// default class) and records the placement for later routing.
func (s *Switch) Place(rel OID, class string) error {
	s.mu.Lock()
	if class == "" {
		class = s.dflt
	}
	m, ok := s.managers[class]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownClass, class)
	}
	s.homes[rel] = m
	s.mu.Unlock()
	return m.Create(rel)
}

// Home reports which manager holds rel.
func (s *Switch) Home(rel OID) (Manager, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	m, ok := s.homes[rel]
	if !ok {
		return nil, fmt.Errorf("%w: oid %d", ErrNoRelation, rel)
	}
	return m, nil
}

// HomeClass reports the device class holding rel.
func (s *Switch) HomeClass(rel OID) (string, error) {
	m, err := s.Home(rel)
	if err != nil {
		return "", err
	}
	return m.Class(), nil
}

// Migrate moves every page of rel from its current manager to the
// manager of the given class. This is the primitive the rules-driven
// migration service ("Services Under Investigation") is built on.
func (s *Switch) Migrate(rel OID, class string) error {
	s.mu.Lock()
	src, ok := s.homes[rel]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: oid %d", ErrNoRelation, rel)
	}
	dst, ok := s.managers[class]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownClass, class)
	}
	s.mu.Unlock()
	if src == dst {
		return nil
	}
	n, err := src.NPages(rel)
	if err != nil {
		return err
	}
	if err := dst.Create(rel); err != nil {
		return err
	}
	buf := make([]byte, PageSize)
	for p := uint32(0); p < n; p++ {
		if err := src.ReadPage(rel, p, buf); err != nil {
			return err
		}
		if _, err := dst.Extend(rel); err != nil {
			return err
		}
		if err := dst.WritePage(rel, p, buf); err != nil {
			return err
		}
	}
	// Flip routing before dropping the source, so a racing reader is
	// never pointed at a dropped relation.
	s.mu.Lock()
	s.homes[rel] = dst
	s.mu.Unlock()
	return src.Drop(rel)
}

// Drop removes rel from its home manager and forgets the placement.
func (s *Switch) Drop(rel OID) error {
	s.mu.Lock()
	m, ok := s.homes[rel]
	if ok {
		delete(s.homes, rel)
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: oid %d", ErrNoRelation, rel)
	}
	return m.Drop(rel)
}

// Route helpers: the switch itself satisfies the page I/O surface the
// buffer cache needs, routing by relation OID.

// NPages reports the page count of rel via its home manager.
func (s *Switch) NPages(rel OID) (uint32, error) {
	m, err := s.Home(rel)
	if err != nil {
		return 0, err
	}
	return m.NPages(rel)
}

// Extend appends a page to rel via its home manager.
func (s *Switch) Extend(rel OID) (uint32, error) {
	m, err := s.Home(rel)
	if err != nil {
		return 0, err
	}
	return m.Extend(rel)
}

// ReadPage reads a page of rel via its home manager.
func (s *Switch) ReadPage(rel OID, page uint32, buf []byte) error {
	m, err := s.Home(rel)
	if err != nil {
		return err
	}
	return m.ReadPage(rel, page, buf)
}

// WritePage writes a page of rel via its home manager.
func (s *Switch) WritePage(rel OID, page uint32, buf []byte) error {
	m, err := s.Home(rel)
	if err != nil {
		return err
	}
	return m.WritePage(rel, page, buf)
}

// Sync flushes every registered manager.
func (s *Switch) Sync() error {
	s.mu.RLock()
	managers := make([]Manager, 0, len(s.managers))
	for _, m := range s.managers {
		managers = append(managers, m)
	}
	s.mu.RUnlock()
	for _, m := range managers {
		if err := m.Sync(); err != nil {
			return err
		}
	}
	return nil
}
