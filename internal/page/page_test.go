package page

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newPage(t *testing.T) Page {
	t.Helper()
	p := make(Page, Size)
	Init(p, 42, 7)
	return p
}

func TestInitAndIdent(t *testing.T) {
	p := newPage(t)
	if !p.Initialized() {
		t.Fatal("page not initialized after Init")
	}
	if p.Rel() != 42 || p.Block() != 7 {
		t.Fatalf("ident = (%d,%d), want (42,7)", p.Rel(), p.Block())
	}
	if p.NumSlots() != 0 {
		t.Fatalf("fresh page has %d slots", p.NumSlots())
	}
	p.SetIdent(9, 10)
	if p.Rel() != 9 || p.Block() != 10 {
		t.Fatalf("SetIdent: got (%d,%d)", p.Rel(), p.Block())
	}
}

func TestZeroPageNotInitialized(t *testing.T) {
	p := make(Page, Size)
	if p.Initialized() {
		t.Fatal("zero page reads as initialized")
	}
}

func TestInsertAndItem(t *testing.T) {
	p := newPage(t)
	a := p.Insert([]byte("hello"))
	b := p.Insert([]byte("world!"))
	if a < 0 || b < 0 || a == b {
		t.Fatalf("slots: %d, %d", a, b)
	}
	if got := p.Item(a); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Item(a) = %q", got)
	}
	if got := p.Item(b); !bytes.Equal(got, []byte("world!")) {
		t.Fatalf("Item(b) = %q", got)
	}
}

func TestItemAliasing(t *testing.T) {
	p := newPage(t)
	s := p.Insert([]byte{1, 2, 3, 4})
	item := p.Item(s)
	item[0] = 99
	if got := p.Item(s); got[0] != 99 {
		t.Fatal("Item is not aliased into the page")
	}
}

func TestInsertRejectsBadSizes(t *testing.T) {
	p := newPage(t)
	if s := p.Insert(nil); s >= 0 {
		t.Fatal("inserted empty item")
	}
	if s := p.Insert(make([]byte, MaxItem+1)); s >= 0 {
		t.Fatal("inserted oversized item")
	}
	if s := p.Insert(make([]byte, MaxItem)); s < 0 {
		t.Fatal("rejected exactly-max item")
	}
}

func TestDeleteAndSlotReuse(t *testing.T) {
	p := newPage(t)
	a := p.Insert([]byte("aaaa"))
	p.Insert([]byte("bbbb"))
	p.Delete(a)
	if p.Item(a) != nil {
		t.Fatal("deleted slot still returns item")
	}
	c := p.Insert([]byte("cccc"))
	if c != a {
		t.Fatalf("dead slot not reused: got %d want %d", c, a)
	}
	if p.NumSlots() != 2 {
		t.Fatalf("slot count grew to %d", p.NumSlots())
	}
}

func TestDeleteOutOfRangeNoop(t *testing.T) {
	p := newPage(t)
	p.Delete(-1)
	p.Delete(5)
	if p.NumSlots() != 0 {
		t.Fatal("out-of-range delete changed page")
	}
}

func TestFillUntilFull(t *testing.T) {
	p := newPage(t)
	item := make([]byte, 100)
	n := 0
	for {
		if s := p.Insert(item); s < 0 {
			break
		}
		n++
	}
	want := (Size - headerSize) / (100 + slotSize)
	if n != want {
		t.Fatalf("page held %d 100-byte items, want %d", n, want)
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	p := newPage(t)
	item := make([]byte, 1000)
	var slots []int
	for i := 0; i < 8; i++ {
		s := p.Insert(item)
		if s < 0 {
			t.Fatalf("insert %d failed", i)
		}
		slots = append(slots, s)
	}
	// Mark alternating slots dead and remember the survivors' contents.
	for i, s := range slots {
		if i%2 == 0 {
			p.Delete(s)
		} else {
			copy(p.Item(s), []byte{byte(i), byte(i), byte(i)})
		}
	}
	before := p.FreeSpace()
	reclaimed := p.Compact()
	if reclaimed != 4*1000 {
		t.Fatalf("reclaimed %d, want 4000", reclaimed)
	}
	if p.FreeSpace() <= before {
		t.Fatal("free space did not grow")
	}
	for i, s := range slots {
		if i%2 == 0 {
			if p.Item(s) != nil {
				t.Fatalf("dead slot %d alive after compact", s)
			}
			continue
		}
		it := p.Item(s)
		if it == nil || it[0] != byte(i) || it[1] != byte(i) || it[2] != byte(i) {
			t.Fatalf("slot %d corrupted after compact: %v", s, it[:3])
		}
	}
}

func TestLiveItems(t *testing.T) {
	p := newPage(t)
	a := p.Insert([]byte("x"))
	p.Insert([]byte("y"))
	if p.LiveItems() != 2 {
		t.Fatalf("LiveItems = %d", p.LiveItems())
	}
	p.Delete(a)
	if p.LiveItems() != 1 {
		t.Fatalf("LiveItems after delete = %d", p.LiveItems())
	}
}

// property: any sequence of inserts/deletes/compacts preserves the
// contents of live items exactly.
func TestPropertyRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := make(Page, Size)
		Init(p, 1, 1)
		type live struct {
			slot int
			data []byte
		}
		var model []live
		for op := 0; op < 300; op++ {
			switch {
			case len(model) == 0 || rng.Intn(3) > 0:
				n := 1 + rng.Intn(600)
				data := make([]byte, n)
				rng.Read(data)
				s := p.Insert(data)
				if s >= 0 {
					model = append(model, live{s, append([]byte(nil), data...)})
				}
			case rng.Intn(2) == 0:
				i := rng.Intn(len(model))
				p.Delete(model[i].slot)
				model = append(model[:i], model[i+1:]...)
			default:
				p.Compact()
			}
			for _, m := range model {
				if !bytes.Equal(p.Item(m.slot), m.data) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
