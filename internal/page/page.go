// Package page implements the 8 KB slotted data page used by every
// relation in the system. A page holds variable-length items addressed
// by slot number; the slot array grows from the front while item bytes
// grow from the back, exactly like a POSTGRES heap page. The first 16
// bytes carry a self-identifying header (relation OID and block number):
// the paper notes that "space has been reserved in the tables storing
// file data" to make all blocks self-identifying so media corruption can
// be detected.
package page

import "encoding/binary"

// Size is the page size in bytes, shared with the device layer.
const Size = 8192

// Header layout (little endian):
//
//	0..3   relation OID (self-identification)
//	4..7   block number (self-identification)
//	8..9   lower: byte offset one past the end of the slot array
//	10..11 upper: byte offset of the lowest item byte
//	12..13 nslots
//	14..15 flags (reserved)
//
// Slots are 4 bytes each: {offset uint16, length uint16}. A slot with
// length 0 is dead and its space is reclaimable by Compact.
const (
	headerSize = 16
	slotSize   = 4
)

// MaxItem is the largest item that fits on an empty page.
const MaxItem = Size - headerSize - slotSize

// Page is an 8 KB byte slice interpreted as a slotted page. The zero
// page (all zero bytes) is not valid; call Init first.
type Page []byte

// Init formats p as an empty page belonging to the given relation and
// block.
func Init(p Page, rel uint32, block uint32) {
	for i := range p {
		p[i] = 0
	}
	binary.LittleEndian.PutUint32(p[0:], rel)
	binary.LittleEndian.PutUint32(p[4:], block)
	p.setLower(headerSize)
	p.setUpper(Size)
	p.setNSlots(0)
}

// Initialized reports whether p has been formatted (upper is nonzero on
// any formatted page and zero on a fresh device page).
func (p Page) Initialized() bool { return p.upper() != 0 }

// Rel reports the self-identifying relation OID stamped on the page.
func (p Page) Rel() uint32 { return binary.LittleEndian.Uint32(p[0:]) }

// Block reports the self-identifying block number stamped on the page.
func (p Page) Block() uint32 { return binary.LittleEndian.Uint32(p[4:]) }

// SetIdent restamps the self-identification header.
func (p Page) SetIdent(rel, block uint32) {
	binary.LittleEndian.PutUint32(p[0:], rel)
	binary.LittleEndian.PutUint32(p[4:], block)
}

func (p Page) lower() int      { return int(binary.LittleEndian.Uint16(p[8:])) }
func (p Page) setLower(v int)  { binary.LittleEndian.PutUint16(p[8:], uint16(v)) }
func (p Page) upper() int      { return int(binary.LittleEndian.Uint16(p[10:])) }
func (p Page) setUpper(v int)  { binary.LittleEndian.PutUint16(p[10:], uint16(v)) }
func (p Page) nslots() int     { return int(binary.LittleEndian.Uint16(p[12:])) }
func (p Page) setNSlots(v int) { binary.LittleEndian.PutUint16(p[12:], uint16(v)) }

// NumSlots reports the number of slots ever allocated on the page,
// including dead ones.
func (p Page) NumSlots() int { return p.nslots() }

// FreeSpace reports how many bytes remain for one more item (item bytes
// plus its slot).
func (p Page) FreeSpace() int {
	free := p.upper() - p.lower() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// Fits reports whether an item of n bytes can be inserted without
// compaction.
func (p Page) Fits(n int) bool { return p.FreeSpace() >= n }

func (p Page) slotAt(i int) (off, ln int) {
	base := headerSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p[base:])), int(binary.LittleEndian.Uint16(p[base+2:]))
}

func (p Page) setSlot(i, off, ln int) {
	base := headerSize + i*slotSize
	binary.LittleEndian.PutUint16(p[base:], uint16(off))
	binary.LittleEndian.PutUint16(p[base+2:], uint16(ln))
}

// Insert stores item and returns its slot number. It returns -1 if the
// page lacks space (the caller should try another page). Dead slots are
// reused, so slot numbers stay dense over long update histories.
func (p Page) Insert(item []byte) int {
	if len(item) == 0 || len(item) > MaxItem {
		return -1
	}
	// Look for a reusable dead slot: reusing one saves the 4-byte slot.
	reuse := -1
	for i := 0; i < p.nslots(); i++ {
		if _, ln := p.slotAt(i); ln == 0 {
			reuse = i
			break
		}
	}
	need := len(item)
	if reuse < 0 {
		need += slotSize
	}
	if p.upper()-p.lower() < need {
		return -1
	}
	off := p.upper() - len(item)
	copy(p[off:], item)
	p.setUpper(off)
	if reuse >= 0 {
		p.setSlot(reuse, off, len(item))
		return reuse
	}
	i := p.nslots()
	p.setNSlots(i + 1)
	p.setLower(p.lower() + slotSize)
	p.setSlot(i, off, len(item))
	return i
}

// Item returns the bytes of slot i, aliased into the page so callers
// may mutate item contents in place (the heap layer uses this to stamp
// xmax into a record header without rewriting the record). It returns
// nil for dead or out-of-range slots.
func (p Page) Item(i int) []byte {
	if i < 0 || i >= p.nslots() {
		return nil
	}
	off, ln := p.slotAt(i)
	if ln == 0 {
		return nil
	}
	return p[off : off+ln]
}

// Delete marks slot i dead. Its bytes are reclaimed by the next
// Compact. Deleting a dead or out-of-range slot is a no-op.
func (p Page) Delete(i int) {
	if i < 0 || i >= p.nslots() {
		return
	}
	off, _ := p.slotAt(i)
	p.setSlot(i, off, 0)
}

// Compact squeezes out the space of dead items, preserving the slot
// numbers of live items. It returns the number of bytes reclaimed.
func (p Page) Compact() int {
	n := p.nslots()
	type live struct{ slot, off, ln int }
	items := make([]live, 0, n)
	for i := 0; i < n; i++ {
		off, ln := p.slotAt(i)
		if ln > 0 {
			items = append(items, live{i, off, ln})
		}
	}
	// Copy live items into a scratch area back-to-front, remembering
	// where each one lands.
	var scratch [Size]byte
	upper := Size
	newOff := make([]int, len(items))
	for k, it := range items {
		upper -= it.ln
		copy(scratch[upper:], p[it.off:it.off+it.ln])
		newOff[k] = upper
	}
	reclaimed := upper - p.upper()
	copy(p[upper:], scratch[upper:])
	for k, it := range items {
		p.setSlot(it.slot, newOff[k], it.ln)
	}
	p.setUpper(upper)
	return reclaimed
}

// LiveItems reports how many slots currently hold an item.
func (p Page) LiveItems() int {
	n := 0
	for i := 0; i < p.nslots(); i++ {
		if _, ln := p.slotAt(i); ln > 0 {
			n++
		}
	}
	return n
}
