// Package iosim provides a virtual clock and cost models for the storage
// devices and networks the paper's evaluation ran on (DEC RZ58 magnetic
// disk, Sony WORM optical jukebox, 10 Mbit/s Ethernet with TCP/IP).
//
// The 1993 hardware is long gone, so the benchmark harness charges every
// simulated I/O to a virtual clock instead of sleeping. Elapsed virtual
// time is then comparable in *shape* to the elapsed seconds the paper
// reports: sequential transfers are cheap, head movement is expensive,
// platter loads are very expensive, and network messages pay a fixed
// protocol-processing cost plus a per-byte bandwidth cost.
package iosim

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Clock is a virtual clock. Cost models advance it; harnesses read it.
// A nil *Clock is valid and ignores all advances, so production code can
// run with timing disabled at zero cost.
type Clock struct {
	mu  sync.Mutex
	now time.Duration
}

// NewClock returns a virtual clock starting at zero.
func NewClock() *Clock { return &Clock{} }

// Advance moves the clock forward by d. Negative d is ignored. Every
// simulated device charge (seek, rotation, transfer, platter load,
// network) funnels through here, so this is also where a traced
// request picks up its virtual-device attribution — kept separate from
// wall-clock charges because simulated nanoseconds are not wall time.
func (c *Clock) Advance(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.mu.Lock()
	c.now += d
	c.mu.Unlock()
	obs.Active().AddDevSim(int64(d))
}

// Now reports the current virtual time.
func (c *Clock) Now() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Reset rewinds the clock to zero.
func (c *Clock) Reset() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.now = 0
	c.mu.Unlock()
}

// Stopwatch measures an interval of virtual time.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// StartWatch begins measuring virtual time on c.
func StartWatch(c *Clock) *Stopwatch {
	return &Stopwatch{clock: c, start: c.Now()}
}

// Elapsed reports virtual time since the watch started.
func (w *Stopwatch) Elapsed() time.Duration { return w.clock.Now() - w.start }

// Restart resets the interval origin to the current virtual time.
func (w *Stopwatch) Restart() { w.start = w.clock.Now() }
