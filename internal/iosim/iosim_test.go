package iosim

import (
	"testing"
	"time"
)

func TestClockBasics(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("fresh clock not at zero")
	}
	c.Advance(time.Second)
	c.Advance(500 * time.Millisecond)
	if got := c.Now(); got != 1500*time.Millisecond {
		t.Fatalf("Now = %v", got)
	}
	c.Advance(-time.Hour)
	if got := c.Now(); got != 1500*time.Millisecond {
		t.Fatalf("negative advance changed clock: %v", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset did not zero clock")
	}
}

func TestNilClockSafe(t *testing.T) {
	var c *Clock
	c.Advance(time.Second) // must not panic
	if c.Now() != 0 {
		t.Fatal("nil clock nonzero")
	}
}

func TestStopwatch(t *testing.T) {
	c := NewClock()
	w := StartWatch(c)
	c.Advance(3 * time.Second)
	if w.Elapsed() != 3*time.Second {
		t.Fatalf("Elapsed = %v", w.Elapsed())
	}
	w.Restart()
	if w.Elapsed() != 0 {
		t.Fatalf("Elapsed after restart = %v", w.Elapsed())
	}
}

func TestDiskSequentialCheaperThanRandom(t *testing.T) {
	p := RZ58()

	seq := NewClock()
	d := NewDisk(p, seq)
	for b := int64(0); b < 100; b++ {
		d.Access(b, 8192)
	}

	rnd := NewClock()
	d2 := NewDisk(p, rnd)
	for b := int64(0); b < 100; b++ {
		d2.Access(b*1000, 8192)
	}

	if seq.Now()*2 >= rnd.Now() {
		t.Fatalf("sequential (%v) not much cheaper than random (%v)", seq.Now(), rnd.Now())
	}
	if d.Seeks() >= d2.Seeks() {
		t.Fatalf("seek counts: seq %d, rnd %d", d.Seeks(), d2.Seeks())
	}
}

func TestDiskTrackSeekCheaperThanFullSeek(t *testing.T) {
	p := RZ58()
	near := NewClock()
	d := NewDisk(p, near)
	d.Access(0, 8192)
	d.Access(3, 8192) // within TrackBlocks

	far := NewClock()
	d2 := NewDisk(p, far)
	d2.Access(0, 8192)
	d2.Access(100000, 8192)

	if near.Now() >= far.Now() {
		t.Fatalf("near seek (%v) not cheaper than far seek (%v)", near.Now(), far.Now())
	}
}

func TestDiskNilClock(t *testing.T) {
	d := NewDisk(RZ58(), nil)
	d.Access(0, 8192) // must not panic
	if d.Transfers() != 0 {
		t.Fatal("nil-clock disk counted transfers")
	}
}

func TestNetworkCosts(t *testing.T) {
	c := NewClock()
	n := NewNetwork(Ethernet10(2*time.Millisecond), c)
	n.RoundTrip(100, 100)
	small := c.Now()
	n.RoundTrip(1<<20, 0)
	big := c.Now() - small
	if small >= big {
		t.Fatalf("small message (%v) not cheaper than 1MB transfer (%v)", small, big)
	}
	// 1 MB at 1.25 MB/s is ~0.84 s.
	if big < 700*time.Millisecond || big > time.Second {
		t.Fatalf("1MB transfer cost %v, want ~0.84s", big)
	}
	if n.Messages() != 2 {
		t.Fatalf("Messages = %d", n.Messages())
	}
}
