package iosim

import "time"

// NetParams models a client/server network path. The paper's testbed was
// a 10 Mbit/s Ethernet between a DECstation 3100 client and a DECsystem
// 5900 server; it blames Inversion's "relatively heavy-weight network
// communication protocol, which is based on TCP/IP" for much of the
// client/server gap, so the per-message cost is the interesting knob.
type NetParams struct {
	PerMessage time.Duration // protocol processing per request/response pair
	Bandwidth  float64       // bytes per second on the wire
}

// Ethernet10 returns parameters approximating the paper's 10 Mbit/s
// Ethernet with 1993-era TCP/IP protocol stacks on both ends.
func Ethernet10(perMessage time.Duration) NetParams {
	return NetParams{PerMessage: perMessage, Bandwidth: 10e6 / 8}
}

// Network charges message costs against a virtual clock.
type Network struct {
	Params NetParams
	Clock  *Clock
	msgs   int64
}

// NewNetwork returns a network model charging to clock. A nil clock
// disables cost accounting (the "single process" configuration).
func NewNetwork(p NetParams, clock *Clock) *Network {
	return &Network{Params: p, Clock: clock}
}

// RoundTrip charges one request/response exchange carrying the given
// request and response payload sizes.
func (n *Network) RoundTrip(reqBytes, respBytes int) {
	if n == nil || n.Clock == nil {
		return
	}
	cost := n.Params.PerMessage
	if n.Params.Bandwidth > 0 {
		cost += time.Duration(float64(reqBytes+respBytes) / n.Params.Bandwidth * float64(time.Second))
	}
	n.msgs++
	n.Clock.Advance(cost)
}

// Messages reports the number of round trips charged.
func (n *Network) Messages() int64 { return n.msgs }
