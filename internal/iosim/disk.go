package iosim

import "time"

// DiskParams describes the mechanical behaviour of a simulated magnetic
// disk. The defaults approximate the DEC RZ58 the paper used: ~15 ms
// average seek, ~5.5 ms average rotational latency (5400 RPM class),
// and a sustained transfer rate around 1.5 MB/s.
type DiskParams struct {
	AvgSeek      time.Duration // seek across half the platter
	TrackSeek    time.Duration // track-to-track seek
	AvgRotation  time.Duration // average rotational latency
	TransferRate float64       // sustained bytes per second
	TrackBlocks  int           // 8 KB blocks per track (no-seek window)
	SpanBlocks   int64         // blocks of a half-stroke seek (distance scale)
}

// RZ58 returns parameters approximating the paper's DEC RZ58 drive
// (1.3 GB, ~160K 8 KB blocks).
func RZ58() DiskParams {
	return DiskParams{
		AvgSeek:      15 * time.Millisecond,
		TrackSeek:    2500 * time.Microsecond,
		AvgRotation:  5600 * time.Microsecond,
		TransferRate: 1.6e6,
		TrackBlocks:  6,
		SpanBlocks:   80_000,
	}
}

// Disk charges mechanical costs for block accesses against a virtual
// clock. It tracks the head position (a linear block address) so that
// sequential access streams are cheap and interleaved streams pay seeks.
// All methods are safe for concurrent use by way of the caller: the
// buffer cache serialises device I/O per device.
type Disk struct {
	Params DiskParams
	Clock  *Clock
	head   int64
	seeks  int64
	xfers  int64
}

// NewDisk returns a disk model charging to clock. A nil clock disables
// cost accounting.
func NewDisk(p DiskParams, clock *Clock) *Disk {
	return &Disk{Params: p, Clock: clock, head: -10}
}

// Access charges the cost of transferring nbytes at linear block addr
// and moves the head there. It is used for both reads and writes; WORM
// and NVRAM devices wrap it with their own extra costs.
func (d *Disk) Access(block int64, nbytes int) {
	if d == nil || d.Clock == nil {
		return
	}
	var cost time.Duration
	dist := block - d.head
	if dist < 0 {
		dist = -dist
	}
	switch {
	case dist <= 1:
		// Sequential or same-block access: transfer only.
	case int(dist) <= d.Params.TrackBlocks:
		cost += d.Params.TrackSeek + d.Params.AvgRotation
		d.seeks++
	default:
		// Seek time grows with distance up to the half-stroke figure;
		// short hops inside one file are much cheaper than crossing the
		// platter, which is why the paper's NFS random reads within a
		// 25 MB file barely degrade.
		span := d.Params.SpanBlocks
		if span <= 0 {
			span = 80_000
		}
		frac := float64(dist) / float64(span)
		if frac > 1 {
			frac = 1
		}
		cost += d.Params.TrackSeek +
			time.Duration(frac*float64(d.Params.AvgSeek-d.Params.TrackSeek)) +
			d.Params.AvgRotation
		d.seeks++
	}
	if d.Params.TransferRate > 0 {
		cost += time.Duration(float64(nbytes) / d.Params.TransferRate * float64(time.Second))
	}
	d.head = block + int64(nbytes)/8192
	d.xfers++
	d.Clock.Advance(cost)
}

// Seeks reports how many non-sequential accesses the disk has served.
func (d *Disk) Seeks() int64 { return d.seeks }

// Transfers reports the total number of accesses served.
func (d *Disk) Transfers() int64 { return d.xfers }
