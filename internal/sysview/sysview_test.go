package sysview

import (
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/txn"
	"repro/internal/value"
)

func newManager(t *testing.T) *txn.Manager {
	t.Helper()
	log, err := txn.OpenLog(device.NewMem(nil, 0))
	if err != nil {
		t.Fatal(err)
	}
	return txn.NewManager(log)
}

// checkShape verifies every row has exactly one value per column.
func checkShape(t *testing.T, v VirtualRel) [][]value.V {
	t.Helper()
	rows, err := v.Rows()
	if err != nil {
		t.Fatalf("%s: Rows: %v", v.Name(), err)
	}
	for i, r := range rows {
		if len(r) != len(v.Columns()) {
			t.Fatalf("%s row %d has %d values, want %d", v.Name(), i, len(r), len(v.Columns()))
		}
	}
	return rows
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	mgr := newManager(t)
	r.Register(NewTransactions(mgr))
	r.Register(NewLocks(mgr.Locks()))
	if _, ok := r.Lookup("inv_locks"); !ok {
		t.Fatal("inv_locks not found")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Fatal("bogus lookup succeeded")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "inv_locks" || names[1] != "inv_transactions" {
		t.Fatalf("Names = %v", names)
	}
	// Replace-on-duplicate: re-registering must not grow the set.
	r.Register(NewLocks(mgr.Locks()))
	if len(r.Names()) != 2 {
		t.Fatalf("duplicate Register grew the registry: %v", r.Names())
	}
	var nilReg *Registry
	if _, ok := nilReg.Lookup("inv_locks"); ok {
		t.Fatal("nil registry resolved a name")
	}
}

func TestStatOps(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("wire.op.begin_ns")
	for i := 0; i < 10; i++ {
		h.Observe(int64(i+1) * 1000)
	}
	reg.Histogram("txn.commit_force_ns").Observe(500) // not a wire op: excluded
	v := NewStatOps(reg)
	rows := checkShape(t, v)
	if len(rows) != 1 {
		t.Fatalf("rows = %d, want 1 (only wire.op.* histograms)", len(rows))
	}
	if rows[0][0].S != "begin" {
		t.Fatalf("op = %q, want begin", rows[0][0].S)
	}
	if rows[0][1].I != 10 {
		t.Fatalf("count = %d, want 10", rows[0][1].I)
	}
	// p50 <= p95 <= p99, all positive for a populated histogram.
	p50, p95, p99 := rows[0][3].I, rows[0][4].I, rows[0][5].I
	if p50 <= 0 || p50 > p95 || p95 > p99 {
		t.Fatalf("quantiles not monotone: p50=%d p95=%d p99=%d", p50, p95, p99)
	}
}

func TestStatBuffer(t *testing.T) {
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	const rel device.OID = 100
	if err := sw.Place(rel, ""); err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(sw, 8)
	f, _, err := pool.NewPage(rel)
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(f, true)
	for i := 0; i < 3; i++ {
		f, err := pool.Get(rel, 0)
		if err != nil {
			t.Fatal(err)
		}
		pool.Release(f, false)
	}
	rows := checkShape(t, NewStatBuffer(pool))
	if len(rows) != 17 {
		t.Fatalf("rows = %d, want 16 shards + all", len(rows))
	}
	all := rows[16]
	if all[0].S != "all" {
		t.Fatalf("last row label = %q, want all", all[0].S)
	}
	if all[2].I != 3 { // hits
		t.Fatalf("merged hits = %d, want 3", all[2].I)
	}
	if all[4].F <= 0 || all[4].F > 1 {
		t.Fatalf("hit_ratio = %v, want in (0,1]", all[4].F)
	}
}

func TestLocksAndTransactions(t *testing.T) {
	mgr := newManager(t)
	locks := NewLocks(mgr.Locks())
	txns := NewTransactions(mgr)

	if rows := checkShape(t, locks); len(rows) != 0 {
		t.Fatalf("idle lock table has %d rows", len(rows))
	}

	tx, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	mgr.AnnotateTx(tx.ID(), "inv1234")
	tag := txn.LockTag{Space: txn.SpaceRelation, Rel: 9, Key: 2}
	if err := tx.Lock(tag, txn.LockExclusive); err != nil {
		t.Fatal(err)
	}

	rows := checkShape(t, locks)
	if len(rows) != 1 {
		t.Fatalf("lock rows = %d, want 1", len(rows))
	}
	r := rows[0]
	if r[0].I != int64(tx.ID()) || r[1].S != "relation" || r[2].I != 9 ||
		r[3].I != 2 || r[4].S != "exclusive" || !r[5].B || r[6].I != 0 {
		t.Fatalf("lock row = %v", r)
	}

	trows := checkShape(t, txns)
	if len(trows) != 1 {
		t.Fatalf("txn rows = %d, want 1", len(trows))
	}
	tr := trows[0]
	if tr[0].I != int64(tx.ID()) || tr[1].S != "in-progress" || tr[3].S != "inv1234" {
		t.Fatalf("txn row = %v", tr)
	}
	if tr[2].I < 0 || tr[2].I > int64(time.Minute/time.Millisecond) {
		t.Fatalf("age_ms = %d looks wrong", tr[2].I)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if rows := checkShape(t, txns); len(rows) != 0 {
		t.Fatalf("committed txn still listed: %v", rows)
	}
}

func TestRelationsAndVacuum(t *testing.T) {
	rels := NewRelations(func() ([]RelRow, error) {
		return []RelRow{
			{OID: 4, Name: "inv_fileatt", Kind: "heap", Pages: 2, Live: 10, Dead: 1},
			{OID: 3, Name: "inv_naming", Kind: "heap", Pages: 1, Live: 5},
		}, nil
	})
	rows := checkShape(t, rels)
	if len(rows) != 2 || rows[0][0].I != 3 || rows[1][0].I != 4 {
		t.Fatalf("relations not sorted by oid: %v", rows)
	}

	vac := NewVacuum(func() []VacuumRow {
		return []VacuumRow{{StartUnixNs: 99, DurationNs: 5, Relations: 2, Pages: 3, Scanned: 30, Removed: 4, Reclaimed: 512}}
	})
	vrows := checkShape(t, vac)
	if len(vrows) != 1 || vrows[0][0].I != 99 || vrows[0][3].I != 3 || vrows[0][6].I != 4 {
		t.Fatalf("vacuum rows = %v", vrows)
	}
}

func TestTraces(t *testing.T) {
	ring := obs.NewTraceRing(4)
	ring.Record(obs.SpanData{Op: "read", WallNs: 100, BufHits: 2, Outcome: "ok"})
	ring.Record(obs.SpanData{Op: "write", WallNs: 300, Outcome: "ok"})
	rows := checkShape(t, NewTraces(ring))
	if len(rows) != 2 {
		t.Fatalf("trace rows = %d, want 2", len(rows))
	}
	if rows[0][0].S != "write" || rows[0][4].I != 300 {
		t.Fatalf("slowest-first violated: %v", rows[0])
	}
}

func TestColumnsCatalog(t *testing.T) {
	r := NewRegistry()
	mgr := newManager(t)
	r.Register(NewTransactions(mgr))
	r.Register(NewColumnsCatalog(r))
	v, _ := r.Lookup("inv_columns")
	rows := checkShape(t, v)
	// 4 own columns + 4 inv_transactions columns.
	if len(rows) != 8 {
		t.Fatalf("inv_columns rows = %d, want 8", len(rows))
	}
	seen := map[string]bool{}
	for _, row := range rows {
		seen[row[0].S+"."+row[1].S] = true
		if row[2].S == "" || row[3].S == "" {
			t.Fatalf("column row missing type/doc: %v", row)
		}
	}
	if !seen["inv_transactions.age_ms"] || !seen["inv_columns.relation"] {
		t.Fatalf("expected columns missing: %v", seen)
	}
}

func TestEveryCatalogHasDocsAndNames(t *testing.T) {
	mgr := newManager(t)
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	pool := buffer.NewPool(sw, 8)
	reg := NewRegistry()
	reg.Register(NewStatOps(obs.NewRegistry()))
	reg.Register(NewStatBuffer(pool))
	reg.Register(NewLocks(mgr.Locks()))
	reg.Register(NewTransactions(mgr))
	reg.Register(NewRelations(func() ([]RelRow, error) { return nil, nil }))
	reg.Register(NewVacuum(func() []VacuumRow { return nil }))
	reg.Register(NewTraces(obs.NewTraceRing(4)))
	reg.Register(NewColumnsCatalog(reg))
	if got := len(reg.Names()); got != 8 {
		t.Fatalf("catalogs = %d, want 8", got)
	}
	for _, v := range reg.All() {
		if v.Doc() == "" {
			t.Fatalf("%s has no doc", v.Name())
		}
		if len(v.Columns()) == 0 {
			t.Fatalf("%s has no columns", v.Name())
		}
		names := map[string]bool{}
		for _, c := range v.Columns() {
			if c.Name == "" || c.Doc == "" {
				t.Fatalf("%s has an undocumented column: %+v", v.Name(), c)
			}
			if names[c.Name] {
				t.Fatalf("%s has duplicate column %s", v.Name(), c.Name)
			}
			names[c.Name] = true
		}
		checkShape(t, v)
	}
}
