package sysview

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/buffer"
	"repro/internal/obs"
	"repro/internal/txn"
	"repro/internal/value"
)

// wireOpPrefix/Suffix bracket the per-opcode histograms the wire
// server registers ("wire.op.<name>_ns"); inv_stat_ops is a view over
// exactly that family.
const (
	wireOpPrefix = "wire.op."
	wireOpSuffix = "_ns"
)

// NewStatOps returns inv_stat_ops: one row per wire opcode with its
// request count and latency quantiles, extracted from the metrics
// registry's per-op histograms. Counts are cumulative since server
// start; quantiles are interpolated from the 28 power-of-two buckets.
func NewStatOps(reg *obs.Registry) VirtualRel {
	return &funcRel{
		name: "inv_stat_ops",
		doc:  "per-opcode request counts and latency quantiles (cumulative)",
		cols: []Column{
			{"op", value.KindString, "wire opcode name"},
			{"count", value.KindInt, "requests served since start"},
			{"mean_ns", value.KindInt, "mean latency, nanoseconds"},
			{"p50_ns", value.KindInt, "median latency, nanoseconds"},
			{"p95_ns", value.KindInt, "95th-percentile latency, nanoseconds"},
			{"p99_ns", value.KindInt, "99th-percentile latency, nanoseconds"},
		},
		rows: func() ([][]value.V, error) {
			snap := reg.Snapshot()
			var out [][]value.V
			for _, h := range snap.Hists {
				if !strings.HasPrefix(h.Name, wireOpPrefix) || !strings.HasSuffix(h.Name, wireOpSuffix) {
					continue
				}
				op := strings.TrimSuffix(strings.TrimPrefix(h.Name, wireOpPrefix), wireOpSuffix)
				out = append(out, []value.V{
					value.Str(op),
					value.Int(h.Count),
					value.Int(h.MeanNs()),
					value.Int(h.Quantile(0.50)),
					value.Int(h.Quantile(0.95)),
					value.Int(h.Quantile(0.99)),
				})
			}
			return out, nil // snapshot order is already name-sorted
		},
	}
}

// NewStatBuffer returns inv_stat_buffer: one row per buffer-pool lock
// shard plus a merged "all" row, from the pool's always-on per-shard
// counters.
func NewStatBuffer(pool *buffer.Pool) VirtualRel {
	return &funcRel{
		name: "inv_stat_buffer",
		doc:  "buffer-pool cache statistics per lock shard, plus a merged 'all' row",
		cols: []Column{
			{"shard", value.KindString, "shard index 00..15, or 'all' for the merged row"},
			{"frames", value.KindInt, "frames currently cached in this shard"},
			{"hits", value.KindInt, "Gets served from cache"},
			{"misses", value.KindInt, "Gets that issued a backend read"},
			{"hit_ratio", value.KindFloat, "hits / (hits + misses), 0 when idle"},
			{"evictions", value.KindInt, "frames dropped to make room"},
			{"writebacks", value.KindInt, "dirty pages written to the backend"},
		},
		rows: func() ([][]value.V, error) {
			shards := pool.ShardStats()
			out := make([][]value.V, 0, len(shards)+1)
			var total buffer.ShardStat
			for _, s := range shards {
				total.Frames += s.Frames
				total.Hits += s.Hits
				total.Misses += s.Misses
				total.Evictions += s.Evictions
				total.Writebacks += s.Writebacks
				out = append(out, bufferRow(fmt.Sprintf("%02d", s.Shard), s))
			}
			out = append(out, bufferRow("all", total))
			return out, nil
		},
	}
}

func bufferRow(label string, s buffer.ShardStat) []value.V {
	ratio := 0.0
	if s.Hits+s.Misses > 0 {
		ratio = float64(s.Hits) / float64(s.Hits+s.Misses)
	}
	return []value.V{
		value.Str(label),
		value.Int(int64(s.Frames)),
		value.Int(s.Hits),
		value.Int(s.Misses),
		value.Float(ratio),
		value.Int(s.Evictions),
		value.Int(s.Writebacks),
	}
}

// NewLocks returns inv_locks: the lock table, one row per granted
// (tag, holder) pair and one per queued waiter. The dump is a single
// short critical section on the lock manager, so each query sees a
// consistent instant of the table.
func NewLocks(lm *txn.LockManager) VirtualRel {
	return &funcRel{
		name: "inv_locks",
		doc:  "the 2PL lock table: granted locks and queued waiters",
		cols: []Column{
			{"txn", value.KindInt, "transaction holding or requesting the lock"},
			{"space", value.KindString, "lock namespace: relation, name, or meta"},
			{"rel", value.KindInt, "relation OID the tag names"},
			{"key", value.KindInt, "key within the space (e.g. name hash)"},
			{"mode", value.KindString, "shared or exclusive"},
			{"granted", value.KindBool, "true for holders, false for queued waiters"},
			{"waiters", value.KindInt, "queue length behind this tag"},
		},
		rows: func() ([][]value.V, error) {
			dump := lm.DumpLocks()
			sort.Slice(dump, func(i, j int) bool {
				a, b := dump[i], dump[j]
				if a.Tag != b.Tag {
					if a.Tag.Space != b.Tag.Space {
						return a.Tag.Space < b.Tag.Space
					}
					if a.Tag.Rel != b.Tag.Rel {
						return a.Tag.Rel < b.Tag.Rel
					}
					return a.Tag.Key < b.Tag.Key
				}
				if a.Granted != b.Granted {
					return a.Granted // holders before waiters
				}
				return a.Txn < b.Txn
			})
			out := make([][]value.V, 0, len(dump))
			for _, d := range dump {
				out = append(out, []value.V{
					value.Int(int64(d.Txn)),
					value.Str(d.Tag.Space.String()),
					value.Int(int64(d.Tag.Rel)),
					value.Int(int64(d.Tag.Key)),
					value.Str(d.Mode.String()),
					value.Bool(d.Granted),
					value.Int(int64(d.Waiters)),
				})
			}
			return out, nil
		},
	}
}

// NewTransactions returns inv_transactions: the live transaction set
// with wall-clock ages. Ended transactions disappear immediately; the
// status log's history is not replayed here.
func NewTransactions(mgr *txn.Manager) VirtualRel {
	return &funcRel{
		name: "inv_transactions",
		doc:  "live transactions: xid, state, wall-clock age, annotated relation",
		cols: []Column{
			{"xid", value.KindInt, "transaction id"},
			{"state", value.KindString, "always 'in-progress' (ended txns leave the set)"},
			{"age_ms", value.KindInt, "wall-clock milliseconds since Begin"},
			{"relation", value.KindString, "first data relation touched, empty if none yet"},
		},
		rows: func() ([][]value.V, error) {
			act := mgr.ActiveTxns()
			sort.Slice(act, func(i, j int) bool { return act[i].XID < act[j].XID })
			now := time.Now().UnixNano()
			out := make([][]value.V, 0, len(act))
			for _, a := range act {
				age := (now - a.StartUnixNs) / int64(time.Millisecond)
				if age < 0 {
					age = 0
				}
				out = append(out, []value.V{
					value.Int(int64(a.XID)),
					value.Str("in-progress"),
					value.Int(age),
					value.Str(a.Note),
				})
			}
			return out, nil
		},
	}
}

// RelRow is one heap relation's physical profile; core materializes
// these from its catalog plus heap.TupleStats.
type RelRow struct {
	OID   int64
	Name  string
	Kind  string
	Pages int64
	Live  int64
	Dead  int64
}

// NewRelations returns inv_relations over a closure core supplies
// (sysview cannot depend on core's catalog or heap handles directly).
func NewRelations(fetch func() ([]RelRow, error)) VirtualRel {
	return &funcRel{
		name: "inv_relations",
		doc:  "heap relations: page counts and live/dead tuple estimates",
		cols: []Column{
			{"oid", value.KindInt, "relation OID"},
			{"name", value.KindString, "relation name"},
			{"kind", value.KindString, "heap or index"},
			{"pages", value.KindInt, "initialized pages"},
			{"live", value.KindInt, "tuples with no deleter stamped"},
			{"dead", value.KindInt, "tuples with a deleter stamped (vacuum candidates)"},
		},
		rows: func() ([][]value.V, error) {
			rels, err := fetch()
			if err != nil {
				return nil, err
			}
			sort.Slice(rels, func(i, j int) bool { return rels[i].OID < rels[j].OID })
			out := make([][]value.V, 0, len(rels))
			for _, r := range rels {
				out = append(out, []value.V{
					value.Int(r.OID),
					value.Str(r.Name),
					value.Str(r.Kind),
					value.Int(r.Pages),
					value.Int(r.Live),
					value.Int(r.Dead),
				})
			}
			return out, nil
		},
	}
}

// VacuumRow is one completed vacuum run; core keeps a ring of recent
// runs and supplies them newest-first.
type VacuumRow struct {
	StartUnixNs int64
	DurationNs  int64
	Relations   int64
	Pages       int64
	Scanned     int64
	Archived    int64
	Removed     int64
	Reclaimed   int64
}

// NewVacuum returns inv_vacuum over core's recent-run history.
func NewVacuum(fetch func() []VacuumRow) VirtualRel {
	return &funcRel{
		name: "inv_vacuum",
		doc:  "recent vacuum runs, newest first",
		cols: []Column{
			{"start_unix_ns", value.KindInt, "wall-clock start of the run"},
			{"duration_ns", value.KindInt, "wall-clock duration"},
			{"relations", value.KindInt, "relations vacuumed"},
			{"pages", value.KindInt, "pages scanned"},
			{"scanned", value.KindInt, "tuples examined"},
			{"archived", value.KindInt, "tuples moved to the archive"},
			{"removed", value.KindInt, "tuples reclaimed (slots freed)"},
			{"reclaimed_bytes", value.KindInt, "bytes recovered by page compaction"},
		},
		rows: func() ([][]value.V, error) {
			runs := fetch()
			out := make([][]value.V, 0, len(runs))
			for _, r := range runs {
				out = append(out, []value.V{
					value.Int(r.StartUnixNs),
					value.Int(r.DurationNs),
					value.Int(r.Relations),
					value.Int(r.Pages),
					value.Int(r.Scanned),
					value.Int(r.Archived),
					value.Int(r.Removed),
					value.Int(r.Reclaimed),
				})
			}
			return out, nil
		},
	}
}

// NewTraces returns inv_traces: the slowest-request ring with the
// per-layer cost breakdown, slowest first.
func NewTraces(ring *obs.TraceRing) VirtualRel {
	return &funcRel{
		name: "inv_traces",
		doc:  "slowest recent requests with per-layer cost breakdown",
		cols: []Column{
			{"op", value.KindString, "wire opcode"},
			{"txn", value.KindInt, "transaction id serving the request (0 if none)"},
			{"relation", value.KindString, "relation the request touched"},
			{"outcome", value.KindString, "ok, error code, panic, or reaped"},
			{"wall_ns", value.KindInt, "end-to-end wall time"},
			{"lock_wait_ns", value.KindInt, "time parked in the lock manager"},
			{"buf_load_ns", value.KindInt, "backend read time (incl. load waits)"},
			{"buf_write_ns", value.KindInt, "backend write time (writebacks, flushes)"},
			{"commit_force_ns", value.KindInt, "status-log force time"},
			{"buf_hits", value.KindInt, "buffer-cache hits"},
			{"buf_misses", value.KindInt, "buffer-cache misses"},
			{"bytes_in", value.KindInt, "request payload bytes"},
			{"bytes_out", value.KindInt, "reply payload bytes"},
			{"start_unix_ns", value.KindInt, "wall-clock request start"},
			{"trace_id", value.KindString, "trace the request belongs to"},
			{"attempt", value.KindInt, "client retry attempt (0 = first try)"},
		},
		rows: func() ([][]value.V, error) {
			spans := ring.Slowest()
			out := make([][]value.V, 0, len(spans))
			for _, d := range spans {
				out = append(out, []value.V{
					value.Str(d.Op),
					value.Int(int64(d.Txn)),
					value.Str(d.Rel),
					value.Str(d.Outcome),
					value.Int(d.WallNs),
					value.Int(d.LockWaitNs),
					value.Int(d.BufLoadNs),
					value.Int(d.BufWriteNs),
					value.Int(d.CommitNs),
					value.Int(d.BufHits),
					value.Int(d.BufMisses),
					value.Int(d.BytesIn),
					value.Int(d.BytesOut),
					value.Int(d.StartUnixNs),
					value.Str(d.TraceID),
					value.Int(int64(d.Attempt)),
				})
			}
			return out, nil
		},
	}
}

// NewWaitEvents returns inv_wait_events: the sampled wait-event profile
// (pg_wait_sampling's profile view). Each row is one (class, event, op,
// relation) combination with the number of sampler rounds that caught a
// goroutine waiting there. Empty until a sampler is configured
// (Options.WaitSampling).
func NewWaitEvents(profile func() obs.WaitProfile) VirtualRel {
	return &funcRel{
		name: "inv_wait_events",
		doc:  "sampled wait-event profile: where goroutines block, by event, op, and relation",
		cols: []Column{
			{"class", value.KindString, "event class (Lock, LWLock, BufferIO, IO, IPC, Timeout, Activity)"},
			{"event", value.KindString, "wait event name"},
			{"op", value.KindString, "wire op or background loop that was waiting"},
			{"relation", value.KindString, "relation the wait is attributed to"},
			{"samples", value.KindInt, "sampler rounds that observed this wait"},
		},
		rows: func() ([][]value.V, error) {
			p := profile()
			out := make([][]value.V, 0, len(p.Rows))
			for _, r := range p.Rows {
				out = append(out, []value.V{
					value.Str(r.Class),
					value.Str(r.Event),
					value.Str(r.Op),
					value.Str(r.Rel),
					value.Int(int64(r.Samples)),
				})
			}
			return out, nil
		},
	}
}

// NewStatTxn returns inv_stat_txn: the commit pipeline's operational
// counters as stat/value rows — group-commit batching effectiveness,
// commit-force latency, log checkpoint state, and background-writer
// progress. Values with no natural integer form (means, ratios) are
// carried in the float column; everything else is exact.
func NewStatTxn(reg *obs.Registry, mgr *txn.Manager, pool *buffer.Pool) VirtualRel {
	return &funcRel{
		name: "inv_stat_txn",
		doc:  "commit pipeline statistics: group commit, log forces, checkpoints, background writer",
		cols: []Column{
			{"stat", value.KindString, "statistic name"},
			{"value", value.KindFloat, "current value (cumulative counters, or point-in-time gauges)"},
			{"doc", value.KindString, "one-line description"},
		},
		rows: func() ([][]value.V, error) {
			row := func(name string, v float64, doc string) []value.V {
				return []value.V{value.Str(name), value.Float(v), value.Str(doc)}
			}
			bs := reg.Histogram("txn.group_commit.batch_size").Snapshot("")
			lw := reg.Histogram("txn.group_commit.leader_wait_ns").Snapshot("")
			cf := reg.Histogram("txn.commit_force_ns").Snapshot("")
			meanBatch := 0.0
			if bs.Count > 0 {
				meanBatch = float64(bs.SumNs) / float64(bs.Count)
			}
			log := mgr.Log()
			loaded, total := log.LoadedPages()
			ps := pool.Stats()
			return [][]value.V{
				row("group_commit.batches", float64(bs.Count), "commit batches forced (one leader each)"),
				row("group_commit.commits", float64(bs.SumNs), "transactions committed through the group pipeline"),
				row("group_commit.batch_size_mean", meanBatch, "mean committers per batch (1.0 = no batching)"),
				row("group_commit.forces_saved", float64(reg.Counter("txn.group_commit.forces_saved").Load()), "log forces avoided by riding a leader's batch"),
				row("group_commit.leader_wait_p50_ns", float64(lw.Quantile(0.50)), "median follower wait for its leader's force"),
				row("group_commit.leader_wait_p95_ns", float64(lw.Quantile(0.95)), "95th-percentile follower wait"),
				row("commit_force_count", float64(cf.Count), "commit forces timed (includes solo commits)"),
				row("commit_force_p50_ns", float64(cf.Quantile(0.50)), "median commit force latency"),
				row("commit_force_p95_ns", float64(cf.Quantile(0.95)), "95th-percentile commit force latency"),
				row("log.forces", float64(log.Forces()), "log force-and-sync rounds completed"),
				row("log.checkpoint_xid", float64(log.CheckpointXID()), "horizon persisted by the last checkpoint"),
				row("log.lazy_loads", float64(log.LazyLoads()), "pre-checkpoint log pages faulted in on demand"),
				row("log.pages_loaded", float64(loaded), "log pages resident in memory"),
				row("log.pages_total", float64(total), "log pages on disk"),
				row("buffer.dirty_pages", float64(ps.DirtyPages), "dirty pages awaiting writeback"),
				row("buffer.bg_writebacks", float64(ps.BGWritebacks), "pages written by the background writer"),
				row("buffer.bg_rounds", float64(ps.BGRounds), "background flush rounds that made progress"),
				row("buffer.bg_errors", float64(ps.BGErrors), "background writeback errors (pages left dirty)"),
			}, nil
		},
	}
}

// NamespaceShardRow is one namespace shard's profile: row counts from
// a heap scan plus the shard's traffic and contention counters; core
// materializes these (sysview cannot depend on core's shard table).
type NamespaceShardRow struct {
	Shard        int64
	NamingOID    int64
	FileAttOID   int64
	NamingLive   int64
	NamingDead   int64
	FileAttLive  int64
	FileAttDead  int64
	Lookups      int64
	Hits         int64
	Inserts      int64
	Removes      int64
	Renames      int64
	CrossRenames int64
	LockWaits    int64
}

// NewStatNamespace returns inv_stat_namespace: one row per namespace
// shard plus a merged "all" row, mirroring inv_stat_buffer's shape.
func NewStatNamespace(fetch func() ([]NamespaceShardRow, error)) VirtualRel {
	return &funcRel{
		name: "inv_stat_namespace",
		doc:  "namespace metadata shards: row counts, routing traffic, and lock contention",
		cols: []Column{
			{"shard", value.KindString, "shard index 00..15, or 'all' for the merged row"},
			{"naming_oid", value.KindInt, "the shard's naming heap OID (0 in the merged row)"},
			{"fileatt_oid", value.KindInt, "the shard's fileatt heap OID (0 in the merged row)"},
			{"naming_live", value.KindInt, "live naming rows"},
			{"naming_dead", value.KindInt, "dead naming rows (vacuum candidates)"},
			{"fileatt_live", value.KindInt, "live fileatt rows"},
			{"fileatt_dead", value.KindInt, "dead fileatt rows"},
			{"lookups", value.KindInt, "name lookups routed to this shard"},
			{"hits", value.KindInt, "lookups that found a visible row"},
			{"inserts", value.KindInt, "naming rows added"},
			{"removes", value.KindInt, "naming rows deleted"},
			{"renames", value.KindInt, "renames sourced in this shard"},
			{"cross_renames", value.KindInt, "renames that moved the row to another shard"},
			{"lock_waits", value.KindInt, "name-lock acquisitions that queued here"},
		},
		rows: func() ([][]value.V, error) {
			shards, err := fetch()
			if err != nil {
				return nil, err
			}
			out := make([][]value.V, 0, len(shards)+1)
			var total NamespaceShardRow
			for _, s := range shards {
				total.NamingLive += s.NamingLive
				total.NamingDead += s.NamingDead
				total.FileAttLive += s.FileAttLive
				total.FileAttDead += s.FileAttDead
				total.Lookups += s.Lookups
				total.Hits += s.Hits
				total.Inserts += s.Inserts
				total.Removes += s.Removes
				total.Renames += s.Renames
				total.CrossRenames += s.CrossRenames
				total.LockWaits += s.LockWaits
				out = append(out, namespaceRow(fmt.Sprintf("%02d", s.Shard), s))
			}
			out = append(out, namespaceRow("all", total))
			return out, nil
		},
	}
}

func namespaceRow(label string, s NamespaceShardRow) []value.V {
	return []value.V{
		value.Str(label),
		value.Int(s.NamingOID),
		value.Int(s.FileAttOID),
		value.Int(s.NamingLive),
		value.Int(s.NamingDead),
		value.Int(s.FileAttLive),
		value.Int(s.FileAttDead),
		value.Int(s.Lookups),
		value.Int(s.Hits),
		value.Int(s.Inserts),
		value.Int(s.Removes),
		value.Int(s.Renames),
		value.Int(s.CrossRenames),
		value.Int(s.LockWaits),
	}
}

// NewColumnsCatalog returns inv_columns, the meta-catalog: one row per
// column of every registered virtual relation, so clients (invql \dv)
// can discover the catalogs over the wire with a plain query. It reads
// the registry it is registered in, so catalogs added later appear
// automatically.
func NewColumnsCatalog(reg *Registry) VirtualRel {
	return &funcRel{
		name: "inv_columns",
		doc:  "columns of every virtual relation (the catalog of catalogs)",
		cols: []Column{
			{"relation", value.KindString, "virtual relation name"},
			{"column", value.KindString, "column name"},
			{"type", value.KindString, "column type"},
			{"doc", value.KindString, "one-line column description"},
		},
		rows: func() ([][]value.V, error) {
			var out [][]value.V
			for _, v := range reg.All() {
				for _, c := range v.Columns() {
					out = append(out, []value.V{
						value.Str(v.Name()),
						value.Str(c.Name),
						value.Str(KindName(c.Kind)),
						value.Str(c.Doc),
					})
				}
			}
			return out, nil
		},
	}
}

// HistorySeriesRow is one recorded metrics-history series: a (name,
// labels, kind) triple with its tick span and newest value. The core
// layer materializes these from the inv_history_samples relation.
type HistorySeriesRow struct {
	Name      string
	Labels    string
	Kind      string
	Ticks     int64
	FirstSeq  int64
	LastSeq   int64
	LastValue float64
}

// NewHistoryMeta returns inv_history_meta: the map of what the stored
// metrics history currently holds — one row per recorded series. Empty
// while metrics history has never been enabled on the volume.
func NewHistoryMeta(fetch func() ([]HistorySeriesRow, error)) VirtualRel {
	return &funcRel{
		name: "inv_history_meta",
		doc:  "recorded metrics-history series: name, labels, kind, tick span, newest value",
		cols: []Column{
			{"name", value.KindString, "metric name"},
			{"labels", value.KindString, "sample labels (quantile label, wait op/rel, …)"},
			{"kind", value.KindString, "counter (delta) | gauge (point) | quantile (point)"},
			{"ticks", value.KindInt, "recorded sample count for this series"},
			{"first_seq", value.KindInt, "oldest tick seq holding the series"},
			{"last_seq", value.KindInt, "newest tick seq holding the series"},
			{"last_value", value.KindFloat, "value at the newest tick"},
		},
		rows: func() ([][]value.V, error) {
			series, err := fetch()
			if err != nil {
				return nil, err
			}
			out := make([][]value.V, 0, len(series))
			for _, s := range series {
				out = append(out, []value.V{
					value.Str(s.Name),
					value.Str(s.Labels),
					value.Str(s.Kind),
					value.Int(s.Ticks),
					value.Int(s.FirstSeq),
					value.Int(s.LastSeq),
					value.Float(s.LastValue),
				})
			}
			return out, nil
		},
	}
}
