// Package sysview implements virtual relations: POSTQUEL-queryable
// system catalogs materialized from live engine state rather than from
// heap pages. The paper's thesis is that file-system state becomes
// more useful when it lives in ordinary database tables; this package
// finishes the thought for the system's own internals — the lock
// table, the live-transaction set, the buffer shards, the vacuum
// history, and the latency histograms are all just more relations.
//
// A virtual relation materializes its rows at query time from
// short-critical-section snapshot accessors (txn.Manager.ActiveTxns,
// LockManager.DumpLocks, buffer.Pool.ShardStats, ...). Every catalog
// is therefore live-only: rows describe the instant the query ran, not
// any transaction snapshot, so time travel (asof) over a virtual
// relation is an error by construction — there is no history to read.
//
// The package sits below internal/core (which registers the catalogs)
// and beside internal/query (which resolves range variables against a
// Registry), so it depends only on the storage layers it reports on.
package sysview

import (
	"sort"
	"sync"

	"repro/internal/value"
)

// Column documents one column of a virtual relation.
type Column struct {
	Name string
	Kind value.Kind
	Doc  string
}

// KindName renders a value kind for the inv_columns catalog and \d.
func KindName(k value.Kind) string {
	switch k {
	case value.KindInt:
		return "int"
	case value.KindFloat:
		return "float"
	case value.KindString:
		return "string"
	case value.KindBool:
		return "bool"
	case value.KindList:
		return "list"
	default:
		return "null"
	}
}

// VirtualRel is one queryable system catalog. Rows materializes the
// current state as one value per column, in Columns order; it must be
// safe for concurrent use and must never read the database's virtual
// (simulated) clock — ages and timestamps come from wall time only.
type VirtualRel interface {
	Name() string
	Doc() string
	Columns() []Column
	Rows() ([][]value.V, error)
}

// Registry maps names to virtual relations. Registration happens at
// wiring time (core.Open, wire.NewServer); lookups are read-locked so
// queries never contend with each other.
type Registry struct {
	mu   sync.RWMutex
	rels map[string]VirtualRel
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{rels: make(map[string]VirtualRel)}
}

// Register adds (or replaces) a virtual relation under its own name.
func (r *Registry) Register(v VirtualRel) {
	if r == nil || v == nil {
		return
	}
	r.mu.Lock()
	r.rels[v.Name()] = v
	r.mu.Unlock()
}

// Lookup resolves a catalog by name. A nil registry resolves nothing.
func (r *Registry) Lookup(name string) (VirtualRel, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	v, ok := r.rels[name]
	r.mu.RUnlock()
	return v, ok
}

// Names reports the registered catalog names, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	out := make([]string, 0, len(r.rels))
	for n := range r.rels {
		out = append(out, n)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// All reports the registered catalogs in name order.
func (r *Registry) All() []VirtualRel {
	if r == nil {
		return nil
	}
	names := r.Names()
	out := make([]VirtualRel, 0, len(names))
	r.mu.RLock()
	for _, n := range names {
		out = append(out, r.rels[n])
	}
	r.mu.RUnlock()
	return out
}

// funcRel adapts a rows closure into a VirtualRel; every catalog in
// this package is one of these.
type funcRel struct {
	name string
	doc  string
	cols []Column
	rows func() ([][]value.V, error)
}

func (f *funcRel) Name() string               { return f.name }
func (f *funcRel) Doc() string                { return f.doc }
func (f *funcRel) Columns() []Column          { return f.cols }
func (f *funcRel) Rows() ([][]value.V, error) { return f.rows() }
