package wire

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

// startHistoryServer is startServer over a database with metrics
// history enabled (manual ticks — the interval never fires in-test).
func startHistoryServer(t *testing.T) (string, *core.DB) {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	var mu sync.Mutex
	tick := int64(1 << 40)
	db, err := core.Open(sw, core.Options{
		Buffers: 128,
		TimeSource: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			tick += 1000
			return tick
		},
		MetricsHistory: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	srv := NewServer(db)
	srv.SetLogf(func(string, ...any) {})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, db
}

// TestHistoryAsOfReplayOverWire: a past tick replays over the ordinary
// query op with asof — the path invtop -asof uses.
func TestHistoryAsOfReplayOverWire(t *testing.T) {
	addr, db := startHistoryServer(t)
	c := dial(t, addr, "mao")

	db.Obs().Counter("test.wire.counter").Add(11)
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}
	before := db.Manager().LastCommitTime()
	db.Obs().Counter("test.wire.counter").Add(4)
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}

	live, err := c.Query(`retrieve (s.seq, s.value) from s in inv_history_samples where s.name = "test.wire.counter" sort by s.seq`)
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Rows) != 2 || live.Rows[1][1].F != 4 {
		t.Fatalf("live rows = %v", live.Rows)
	}

	// Replay the past instant: only the first tick existed then.
	past, err := c.Query(fmt.Sprintf(
		`retrieve (s.seq, s.value) from s in inv_history_samples where s.name = "test.wire.counter" asof %d`, before))
	if err != nil {
		t.Fatal(err)
	}
	if len(past.Rows) != 1 || past.Rows[0][0].I != 1 || past.Rows[0][1].F != 11 {
		t.Fatalf("asof rows = %v", past.Rows)
	}

	// The tick metadata replays the same way (invtop joins on seq).
	tickRow, err := c.Query(fmt.Sprintf(
		`retrieve (h.seq, h.wall_ns) from h in inv_history sort by h.seq desc limit 1 asof %d`, before))
	if err != nil {
		t.Fatal(err)
	}
	if len(tickRow.Rows) != 1 || tickRow.Rows[0][0].I != 1 {
		t.Fatalf("asof tick = %v", tickRow.Rows)
	}
}
