package wire

import (
	"io"
	"math"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/rowenc"
	"repro/internal/value"
)

func floatBits(f float64) uint64  { return math.Float64bits(f) }
func floatFrom(u uint64) float64  { return math.Float64frombits(u) }
func oidFrom(u uint32) device.OID { return device.OID(u) }

// FD is a remote file descriptor.
type FD int32

// Whence values for PLseek, mirroring io.Seek*.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Client is the special library the paper's programs link to reach
// Inversion remotely. All calls are synchronous request/response over
// one TCP connection; the client is safe for concurrent use but calls
// serialise, matching the one-transaction-per-application model.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to an Inversion server and performs the owner
// handshake.
func Dial(addr, owner string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	if err := writeMsg(conn, 0, []byte(owner)); err != nil {
		conn.Close()
		return nil, err
	}
	if _, _, err := readMsg(conn); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Close tears the connection down.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one request/response round trip.
func (c *Client) call(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeMsg(c.conn, op, payload); err != nil {
		return nil, err
	}
	status, resp, err := readMsg(c.conn)
	if err != nil {
		return nil, err
	}
	if status == statusErr {
		return nil, &RemoteError{Msg: string(resp)}
	}
	return resp, nil
}

// PBegin starts a transaction.
func (c *Client) PBegin() error { _, err := c.call(OpBegin, nil); return err }

// PCommit commits the transaction.
func (c *Client) PCommit() error { _, err := c.call(OpCommit, nil); return err }

// PAbort aborts the transaction.
func (c *Client) PAbort() error { _, err := c.call(OpAbort, nil); return err }

// PCreat creates a file; mode selects type, device class and flags
// ("the mode flag to p_open and p_creat encodes the device on which the
// file should reside").
func (c *Client) PCreat(path string, opts core.CreateOpts) (FD, error) {
	resp, err := c.call(OpCreat, rowenc.NewWriter(64).
		String(path).String(opts.Type).String(opts.Class).Uint32(opts.Flags).Done())
	if err != nil {
		return -1, err
	}
	return FD(rowenc.NewReader(resp).Uint32()), nil
}

// POpen opens a file; timestamp != 0 opens the historical version as
// of that time (read-only).
func (c *Client) POpen(path string, write bool, timestamp int64) (FD, error) {
	w := uint32(0)
	if write {
		w = 1
	}
	resp, err := c.call(OpOpen, rowenc.NewWriter(32).
		String(path).Uint32(w).Int64(timestamp).Done())
	if err != nil {
		return -1, err
	}
	return FD(rowenc.NewReader(resp).Uint32()), nil
}

// PClose closes a descriptor.
func (c *Client) PClose(fd FD) error {
	_, err := c.call(OpClose, rowenc.NewWriter(4).Uint32(uint32(fd)).Done())
	return err
}

// PRead reads up to len(buf) bytes at the descriptor's position.
func (c *Client) PRead(fd FD, buf []byte) (int, error) {
	resp, err := c.call(OpRead, rowenc.NewWriter(8).
		Uint32(uint32(fd)).Uint32(uint32(len(buf))).Done())
	if err != nil {
		return 0, err
	}
	n := copy(buf, resp)
	if n == 0 && len(buf) > 0 {
		return 0, io.EOF
	}
	return n, nil
}

// PWrite writes buf at the descriptor's position.
func (c *Client) PWrite(fd FD, buf []byte) (int, error) {
	resp, err := c.call(OpWrite, rowenc.NewWriter(8+len(buf)).
		Uint32(uint32(fd)).Bytes(buf).Done())
	if err != nil {
		return 0, err
	}
	return int(rowenc.NewReader(resp).Uint32()), nil
}

// PLseek repositions a descriptor. The paper splits the 64-bit offset
// across two ints so clients can address 17.6 TB files; Go just uses
// int64.
func (c *Client) PLseek(fd FD, offset int64, whence int) (int64, error) {
	resp, err := c.call(OpLseek, rowenc.NewWriter(16).
		Uint32(uint32(fd)).Int64(offset).Uint32(uint32(whence)).Done())
	if err != nil {
		return 0, err
	}
	return rowenc.NewReader(resp).Int64(), nil
}

// PTruncate resizes an open file.
func (c *Client) PTruncate(fd FD, size int64) error {
	_, err := c.call(OpTruncate, rowenc.NewWriter(12).
		Uint32(uint32(fd)).Int64(size).Done())
	return err
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error {
	_, err := c.call(OpMkdir, rowenc.NewWriter(len(path)+4).String(path).Done())
	return err
}

// Unlink removes a file or empty directory.
func (c *Client) Unlink(path string) error {
	_, err := c.call(OpUnlink, rowenc.NewWriter(len(path)+4).String(path).Done())
	return err
}

// Rename moves a file.
func (c *Client) Rename(oldPath, newPath string) error {
	_, err := c.call(OpRename, rowenc.NewWriter(len(oldPath)+len(newPath)+8).
		String(oldPath).String(newPath).Done())
	return err
}

// Stat fetches attributes; timestamp != 0 asks about the past.
func (c *Client) Stat(path string, timestamp int64) (core.FileAttr, error) {
	resp, err := c.call(OpStat, rowenc.NewWriter(32).String(path).Int64(timestamp).Done())
	if err != nil {
		return core.FileAttr{}, err
	}
	return decodeAttrWire(resp)
}

// DirEntry is a remote directory entry.
type DirEntry struct {
	Name string
	Attr core.FileAttr
}

// ReadDir lists a directory; timestamp != 0 lists it as of the past.
func (c *Client) ReadDir(path string, timestamp int64) ([]DirEntry, error) {
	resp, err := c.call(OpReadDir, rowenc.NewWriter(32).String(path).Int64(timestamp).Done())
	if err != nil {
		return nil, err
	}
	r := rowenc.NewReader(resp)
	n := int(r.Uint32())
	out := make([]DirEntry, 0, n)
	for i := 0; i < n; i++ {
		name := r.String()
		attrB := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, err
		}
		attr, err := decodeAttrWire(attrB)
		if err != nil {
			return nil, err
		}
		out = append(out, DirEntry{name, attr})
	}
	return out, nil
}

// QueryResult is a remote query result.
type QueryResult struct {
	Message string
	Columns []string
	Rows    [][]value.V
}

// Query runs a POSTQUEL statement on the server.
func (c *Client) Query(q string) (*QueryResult, error) {
	resp, err := c.call(OpQuery, rowenc.NewWriter(len(q)+8).String(q).Done())
	if err != nil {
		return nil, err
	}
	r := rowenc.NewReader(resp)
	res := &QueryResult{Message: r.String()}
	ncols := int(r.Uint32())
	for i := 0; i < ncols; i++ {
		res.Columns = append(res.Columns, r.String())
	}
	nrows := int(r.Uint32())
	for i := 0; i < nrows; i++ {
		row := make([]value.V, 0, ncols)
		for j := 0; j < ncols; j++ {
			vb := r.Bytes()
			if err := r.Err(); err != nil {
				return nil, err
			}
			v, err := decodeValue(rowenc.NewReader(vb))
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, r.Err()
}

// Call invokes a registered function on a file.
func (c *Client) Call(fn, path string) (value.V, error) {
	resp, err := c.call(OpCall, rowenc.NewWriter(len(fn)+len(path)+8).
		String(fn).String(path).Done())
	if err != nil {
		return value.Null(), err
	}
	return decodeValue(rowenc.NewReader(resp))
}

// DefineType declares a file type on the server.
func (c *Client) DefineType(name, doc string) error {
	_, err := c.call(OpDefineType, rowenc.NewWriter(len(name)+len(doc)+8).
		String(name).String(doc).Done())
	return err
}

// SetFileType assigns a file type (it must be defined on the server).
func (c *Client) SetFileType(path, typ string) error {
	_, err := c.call(OpSetType, rowenc.NewWriter(len(path)+len(typ)+8).
		String(path).String(typ).Done())
	return err
}

// Migrate moves a file to another device class.
func (c *Client) Migrate(path, class string) error {
	_, err := c.call(OpMigrate, rowenc.NewWriter(len(path)+len(class)+8).
		String(path).String(class).Done())
	return err
}

// Stats mirrors core.Stats over the wire.
type Stats struct {
	CacheHits, CacheMisses, CacheWritebacks int64
	CacheCapacity                           int
	Relations, Types, Functions             int
	Horizon                                 uint32
	LastCommitTime                          int64
}

// Stats fetches the server's operational counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.call(OpStats, nil)
	if err != nil {
		return Stats{}, err
	}
	r := rowenc.NewReader(resp)
	st := Stats{
		CacheHits:       r.Int64(),
		CacheMisses:     r.Int64(),
		CacheWritebacks: r.Int64(),
		CacheCapacity:   int(r.Uint32()),
		Relations:       int(r.Uint32()),
		Types:           int(r.Uint32()),
		Functions:       int(r.Uint32()),
		Horizon:         r.Uint32(),
		LastCommitTime:  r.Int64(),
	}
	return st, r.Err()
}

// Vacuum runs the vacuum cleaner on the server.
func (c *Client) Vacuum() (relations, scanned, archived, removed int, err error) {
	resp, err := c.call(OpVacuum, nil)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	r := rowenc.NewReader(resp)
	return int(r.Uint32()), int(r.Uint32()), int(r.Uint32()), int(r.Uint32()), r.Err()
}
