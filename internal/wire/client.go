package wire

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/rowenc"
	"repro/internal/value"
)

func floatBits(f float64) uint64  { return math.Float64bits(f) }
func floatFrom(u uint64) float64  { return math.Float64frombits(u) }
func oidFrom(u uint32) device.OID { return device.OID(u) }

// ErrConnLost is returned (wrapped) when the connection to the server
// died and the operation could not be safely retried on a fresh one.
// If a transaction was open it has been aborted server-side; the
// application should re-run it — the paper's
// one-transaction-per-application model makes the transaction the unit
// of retry.
var ErrConnLost = errors.New("wire: connection lost")

// FD is a remote file descriptor.
type FD int32

// Whence values for PLseek, mirroring io.Seek*.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Client reconnection defaults; zero fields in DialConfig take these.
const (
	DefaultDialTimeout = 5 * time.Second
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// DialConfig configures DialWithConfig.
type DialConfig struct {
	Addr  string
	Owner string
	// DialTimeout bounds one connection attempt.
	DialTimeout time.Duration
	// CallTimeout bounds one request/response round trip; 0 means no
	// deadline. A timed-out call poisons the connection (a partial frame
	// may be in flight), so the connection is dropped and the usual
	// reconnect rules apply.
	CallTimeout time.Duration
	// MaxRetries is how many reconnect attempts a single call may make
	// after losing the connection. 0 disables reconnection: the first
	// transport error marks the client broken and every subsequent call
	// fails fast with ErrConnLost.
	MaxRetries int
	// BackoffBase and BackoffMax shape the exponential backoff between
	// reconnect attempts; each delay is jittered to half..full of the
	// nominal value.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

func (c DialConfig) withDefaults() DialConfig {
	if c.DialTimeout <= 0 {
		c.DialTimeout = DefaultDialTimeout
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	return c
}

// Client is the special library the paper's programs link to reach
// Inversion remotely. All calls are synchronous request/response over
// one TCP connection; the client is safe for concurrent use but calls
// serialise, matching the one-transaction-per-application model.
//
// A client dialed with a reconnecting DialConfig re-establishes the
// connection with exponential backoff, but only re-sends operations
// that are safe to repeat: descriptor operations never (remote fds die
// with the connection), and inside a transaction only idempotent path
// reads — an in-transaction mutation after a connection loss returns
// ErrConnLost so the application re-runs the whole transaction. The
// lost-transaction state is sticky: every later mutation inside the
// dead bracket fails with ErrConnLost as well (only idempotent reads
// proceed), until Begin, Commit, or Abort resets it.
type Client struct {
	cfg DialConfig

	// mu serialises calls and guards the transaction tracking below.
	mu     sync.Mutex
	inTx   bool // an explicit transaction is open on the current conn
	txLost bool // the conn died mid-tx; fail mutations until the next bracketing op
	rng    *rand.Rand

	// Current trace context: minted at Begin and shared by every op in
	// the transaction's bracket, so the server stitches a multi-op
	// transaction into one trace. Ops outside a transaction mint a
	// fresh single-op trace per call.
	traceHi, traceLo uint64
	rootSpan         uint64

	// connMu guards conn and closed separately from mu so Close never
	// waits behind a call that is blocked on a stalled server or
	// sleeping out a reconnect backoff: closing the live conn unblocks
	// its I/O, and closedCh cuts the backoff sleep short.
	connMu   sync.Mutex
	conn     net.Conn
	closed   bool
	closedCh chan struct{}
}

// Dial connects to an Inversion server and performs the owner
// handshake. The resulting client does not reconnect: after a
// transport error it fails fast with ErrConnLost (use DialWithConfig
// for a reconnecting client).
func Dial(addr, owner string) (*Client, error) {
	return DialWithConfig(DialConfig{Addr: addr, Owner: owner})
}

// DialWithConfig connects with explicit timeout and reconnection
// settings.
func DialWithConfig(cfg DialConfig) (*Client, error) {
	c := &Client{
		cfg:      cfg.withDefaults(),
		rng:      rand.New(rand.NewSource(time.Now().UnixNano())),
		closedCh: make(chan struct{}),
	}
	conn, err := c.connect()
	if err != nil {
		return nil, err
	}
	c.conn = conn
	return c, nil
}

// connect dials and performs the owner handshake on a fresh connection.
func (c *Client) connect() (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	_ = conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if err := writeMsg(conn, 0, []byte(c.cfg.Owner)); err != nil {
		conn.Close()
		return nil, err
	}
	if _, _, err := readMsg(conn); err != nil {
		conn.Close()
		return nil, err
	}
	_ = conn.SetDeadline(time.Time{})
	return conn, nil
}

// Close tears the connection down; the client cannot be used again.
// It returns without waiting for in-flight calls: closing the live
// connection unblocks a call stalled in I/O, and a call mid-backoff is
// woken and fails with ErrConnLost.
func (c *Client) Close() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closedCh)
	conn := c.conn
	c.conn = nil
	c.connMu.Unlock()
	if conn == nil {
		return nil
	}
	return conn.Close()
}

// liveConn snapshots the current connection and closed flag.
func (c *Client) liveConn() (net.Conn, bool) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.conn, c.closed
}

// installConn publishes a freshly dialed connection unless the client
// was closed meanwhile (then the caller must close it).
func (c *Client) installConn(conn net.Conn) bool {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		return false
	}
	c.conn = conn
	return true
}

// dropConn closes a poisoned connection and unpublishes it if it is
// still the live one.
func (c *Client) dropConn(conn net.Conn) {
	conn.Close()
	c.connMu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.connMu.Unlock()
}

// retryable reports whether op may be transparently re-sent on a fresh
// connection, evaluated against the transaction state from before the
// loss. Descriptor ops never are: remote fds die with the connection.
// Inside a transaction only idempotent path reads are (the transaction
// itself is gone; the retried read sees committed state and the loss is
// reported at commit). Outside a transaction everything else is fair
// game — autocommit retries are at-least-once, which the paper's
// failure model accepts.
func (c *Client) retryable(op byte) bool {
	switch op {
	case OpClose, OpRead, OpWrite, OpLseek, OpTruncate:
		return false
	}
	if !c.inTx {
		return true
	}
	switch op {
	case OpStat, OpReadDir, OpCall, OpStats, OpStatsV2, OpScrub, OpWaitProfile:
		return true
	}
	return false
}

// roundTrip performs one request/response exchange on conn under the
// call deadline.
func (c *Client) roundTrip(conn net.Conn, op byte, payload []byte) ([]byte, error) {
	if c.cfg.CallTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(c.cfg.CallTimeout))
		defer conn.SetDeadline(time.Time{})
	}
	if err := writeMsg(conn, op, payload); err != nil {
		return nil, err
	}
	status, resp, err := readMsg(conn)
	if err != nil {
		return nil, err
	}
	if status == statusErr {
		return nil, decodeErrFrame(resp)
	}
	return resp, nil
}

// sleepBackoff waits out the attempt'th reconnect delay: exponential
// from BackoffBase capped at BackoffMax, jittered across the upper half
// so a fleet of clients does not stampede a restarted server. The sleep
// is cut short if the client is closed, so Close interrupts a retrying
// call instead of waiting out its backoff schedule.
func (c *Client) sleepBackoff(attempt int) error {
	d := c.cfg.BackoffBase << uint(attempt)
	if d <= 0 || d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	half := d / 2
	t := time.NewTimer(half + time.Duration(c.rng.Int63n(int64(half)+1)))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.closedCh:
		return fmt.Errorf("wire: client closed: %w", ErrConnLost)
	}
}

// noteOutcome updates transaction tracking after the server answered
// (success or remote error — either way the connection is healthy). A
// failed commit or abort still ends the server-side transaction.
func (c *Client) noteOutcome(op byte, err error) {
	switch op {
	case OpBegin:
		if err == nil {
			c.inTx = true
		}
	case OpCommit, OpAbort:
		c.inTx = false
	}
}

// call performs one request/response round trip, reconnecting and
// retrying when the operation is safe to repeat.
func (c *Client) call(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()

	// A transaction lost to a dead connection is reported at its
	// bracketing ops — commit cannot have happened; abort already did —
	// and the lost state is sticky until then: every other op issued
	// inside the dead transaction's bracket fails with ErrConnLost too,
	// except the idempotent path reads, which proceed against committed
	// state. Without that, a mutation following a silently retried read
	// would run in autocommit on the fresh connection and survive the
	// transaction re-run the application is about to perform.
	switch op {
	case OpBegin:
		c.txLost = false
	case OpCommit:
		if c.txLost {
			c.txLost = false
			return nil, fmt.Errorf("wire: transaction lost before commit: %w", ErrConnLost)
		}
	case OpAbort:
		if c.txLost {
			c.txLost = false
			return nil, nil
		}
	case OpStat, OpReadDir, OpCall, OpStats, OpStatsV2, OpScrub, OpWaitProfile:
		// Idempotent reads; safe whether or not the transaction is lost.
	default:
		if c.txLost {
			return nil, fmt.Errorf("wire: transaction lost: %w", ErrConnLost)
		}
	}

	// Trace context: Begin mints the trace the whole transaction
	// bracket will share; ops outside a transaction are each their own
	// single-op trace. The context is fixed before the retry loop, so a
	// retried op keeps its trace id across reconnects — only the
	// attempt byte changes.
	tc := traceCtx{Hi: c.traceHi, Lo: c.traceLo, Parent: c.rootSpan, Sampled: true}
	if op == OpBegin || !c.inTx {
		tc.Hi, tc.Lo = c.rng.Uint64()|1, c.rng.Uint64()
		tc.Parent = c.rng.Uint64() | 1
		if op == OpBegin {
			c.traceHi, c.traceLo, c.rootSpan = tc.Hi, tc.Lo, tc.Parent
		}
	}

	conn, closed := c.liveConn()
	if closed {
		return nil, fmt.Errorf("wire: client closed: %w", ErrConnLost)
	}
	if conn == nil && (!c.retryable(op) || c.cfg.MaxRetries == 0) {
		return nil, fmt.Errorf("wire: not connected: %w", ErrConnLost)
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		if conn == nil {
			fresh, err := c.connect()
			if err != nil {
				lastErr = err
				if attempt >= c.cfg.MaxRetries {
					break
				}
				if err := c.sleepBackoff(attempt); err != nil {
					return nil, err
				}
				continue
			}
			if !c.installConn(fresh) {
				fresh.Close()
				return nil, fmt.Errorf("wire: client closed: %w", ErrConnLost)
			}
			conn = fresh
		}
		if attempt > 255 {
			tc.Attempt = 255
		} else {
			tc.Attempt = byte(attempt)
		}
		framed := appendTraceCtx(make([]byte, 0, traceCtxLen+len(payload)), tc)
		framed = append(framed, payload...)
		resp, err := c.roundTrip(conn, op|opTraceFlag, framed)
		var remote *RemoteError
		if err == nil || errors.As(err, &remote) {
			// The server answered; the connection is healthy.
			c.noteOutcome(op, err)
			return resp, err
		}
		// Transport failure: the connection is poisoned (a partial frame
		// may be in flight), so drop it. Decide retryability against the
		// pre-loss transaction state, then record that the transaction —
		// if any — died with the connection.
		lastErr = err
		retry := c.retryable(op)
		c.dropConn(conn)
		conn = nil
		if c.inTx {
			c.inTx = false
			c.txLost = true
		}
		if !retry || attempt >= c.cfg.MaxRetries {
			break
		}
		if err := c.sleepBackoff(attempt); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("wire: %v: %w", lastErr, ErrConnLost)
}

// PBegin starts a transaction.
func (c *Client) PBegin() error { _, err := c.call(OpBegin, nil); return err }

// PCommit commits the transaction.
func (c *Client) PCommit() error { _, err := c.call(OpCommit, nil); return err }

// PAbort aborts the transaction.
func (c *Client) PAbort() error { _, err := c.call(OpAbort, nil); return err }

// PCreat creates a file; mode selects type, device class and flags
// ("the mode flag to p_open and p_creat encodes the device on which the
// file should reside").
func (c *Client) PCreat(path string, opts core.CreateOpts) (FD, error) {
	resp, err := c.call(OpCreat, rowenc.NewWriter(64).
		String(path).String(opts.Type).String(opts.Class).Uint32(opts.Flags).Done())
	if err != nil {
		return -1, err
	}
	return FD(rowenc.NewReader(resp).Uint32()), nil
}

// POpen opens a file; timestamp != 0 opens the historical version as
// of that time (read-only).
func (c *Client) POpen(path string, write bool, timestamp int64) (FD, error) {
	w := uint32(0)
	if write {
		w = 1
	}
	resp, err := c.call(OpOpen, rowenc.NewWriter(32).
		String(path).Uint32(w).Int64(timestamp).Done())
	if err != nil {
		return -1, err
	}
	return FD(rowenc.NewReader(resp).Uint32()), nil
}

// PClose closes a descriptor.
func (c *Client) PClose(fd FD) error {
	_, err := c.call(OpClose, rowenc.NewWriter(4).Uint32(uint32(fd)).Done())
	return err
}

// PRead reads up to len(buf) bytes at the descriptor's position.
func (c *Client) PRead(fd FD, buf []byte) (int, error) {
	resp, err := c.call(OpRead, rowenc.NewWriter(8).
		Uint32(uint32(fd)).Uint32(uint32(len(buf))).Done())
	if err != nil {
		return 0, err
	}
	n := copy(buf, resp)
	if n == 0 && len(buf) > 0 {
		return 0, io.EOF
	}
	return n, nil
}

// PWrite writes buf at the descriptor's position.
func (c *Client) PWrite(fd FD, buf []byte) (int, error) {
	resp, err := c.call(OpWrite, rowenc.NewWriter(8+len(buf)).
		Uint32(uint32(fd)).Bytes(buf).Done())
	if err != nil {
		return 0, err
	}
	return int(rowenc.NewReader(resp).Uint32()), nil
}

// PLseek repositions a descriptor. The paper splits the 64-bit offset
// across two ints so clients can address 17.6 TB files; Go just uses
// int64.
func (c *Client) PLseek(fd FD, offset int64, whence int) (int64, error) {
	resp, err := c.call(OpLseek, rowenc.NewWriter(16).
		Uint32(uint32(fd)).Int64(offset).Uint32(uint32(whence)).Done())
	if err != nil {
		return 0, err
	}
	return rowenc.NewReader(resp).Int64(), nil
}

// PTruncate resizes an open file.
func (c *Client) PTruncate(fd FD, size int64) error {
	_, err := c.call(OpTruncate, rowenc.NewWriter(12).
		Uint32(uint32(fd)).Int64(size).Done())
	return err
}

// Mkdir creates a directory.
func (c *Client) Mkdir(path string) error {
	_, err := c.call(OpMkdir, rowenc.NewWriter(len(path)+4).String(path).Done())
	return err
}

// Unlink removes a file or empty directory.
func (c *Client) Unlink(path string) error {
	_, err := c.call(OpUnlink, rowenc.NewWriter(len(path)+4).String(path).Done())
	return err
}

// Rename moves a file.
func (c *Client) Rename(oldPath, newPath string) error {
	_, err := c.call(OpRename, rowenc.NewWriter(len(oldPath)+len(newPath)+8).
		String(oldPath).String(newPath).Done())
	return err
}

// Stat fetches attributes; timestamp != 0 asks about the past.
func (c *Client) Stat(path string, timestamp int64) (core.FileAttr, error) {
	resp, err := c.call(OpStat, rowenc.NewWriter(32).String(path).Int64(timestamp).Done())
	if err != nil {
		return core.FileAttr{}, err
	}
	return decodeAttrWire(resp)
}

// DirEntry is a remote directory entry.
type DirEntry struct {
	Name string
	Attr core.FileAttr
}

// ReadDir lists a directory; timestamp != 0 lists it as of the past.
func (c *Client) ReadDir(path string, timestamp int64) ([]DirEntry, error) {
	resp, err := c.call(OpReadDir, rowenc.NewWriter(32).String(path).Int64(timestamp).Done())
	if err != nil {
		return nil, err
	}
	r := rowenc.NewReader(resp)
	n := int(r.Uint32())
	out := make([]DirEntry, 0, n)
	for i := 0; i < n; i++ {
		name := r.String()
		attrB := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, err
		}
		attr, err := decodeAttrWire(attrB)
		if err != nil {
			return nil, err
		}
		out = append(out, DirEntry{name, attr})
	}
	return out, nil
}

// QueryResult is a remote query result.
type QueryResult struct {
	Message string
	Columns []string
	Rows    [][]value.V
}

// Query runs a POSTQUEL statement on the server.
func (c *Client) Query(q string) (*QueryResult, error) {
	resp, err := c.call(OpQuery, rowenc.NewWriter(len(q)+8).String(q).Done())
	if err != nil {
		return nil, err
	}
	r := rowenc.NewReader(resp)
	res := &QueryResult{Message: r.String()}
	ncols := int(r.Uint32())
	for i := 0; i < ncols; i++ {
		res.Columns = append(res.Columns, r.String())
	}
	nrows := int(r.Uint32())
	for i := 0; i < nrows; i++ {
		row := make([]value.V, 0, ncols)
		for j := 0; j < ncols; j++ {
			vb := r.Bytes()
			if err := r.Err(); err != nil {
				return nil, err
			}
			v, err := decodeValue(rowenc.NewReader(vb))
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, r.Err()
}

// Call invokes a registered function on a file.
func (c *Client) Call(fn, path string) (value.V, error) {
	resp, err := c.call(OpCall, rowenc.NewWriter(len(fn)+len(path)+8).
		String(fn).String(path).Done())
	if err != nil {
		return value.Null(), err
	}
	return decodeValue(rowenc.NewReader(resp))
}

// DefineType declares a file type on the server.
func (c *Client) DefineType(name, doc string) error {
	_, err := c.call(OpDefineType, rowenc.NewWriter(len(name)+len(doc)+8).
		String(name).String(doc).Done())
	return err
}

// SetFileType assigns a file type (it must be defined on the server).
func (c *Client) SetFileType(path, typ string) error {
	_, err := c.call(OpSetType, rowenc.NewWriter(len(path)+len(typ)+8).
		String(path).String(typ).Done())
	return err
}

// Migrate moves a file to another device class.
func (c *Client) Migrate(path, class string) error {
	_, err := c.call(OpMigrate, rowenc.NewWriter(len(path)+len(class)+8).
		String(path).String(class).Done())
	return err
}

// Stats mirrors core.Stats over the wire.
type Stats struct {
	CacheHits, CacheMisses, CacheWritebacks int64
	CacheCapacity                           int
	Relations, Types, Functions             int
	Horizon                                 uint32
	LastCommitTime                          int64

	// Per-layer contention observables (buffer pool, txn visibility
	// cache, 2PL lock queue).
	CacheEvictions, CacheOvercommits, CacheLoadWaits int64
	StatusCacheHits, StatusCacheMisses               int64
	LockWaits                                        int64
}

// Stats fetches the server's operational counters.
func (c *Client) Stats() (Stats, error) {
	resp, err := c.call(OpStats, nil)
	if err != nil {
		return Stats{}, err
	}
	r := rowenc.NewReader(resp)
	st := Stats{
		CacheHits:       r.Int64(),
		CacheMisses:     r.Int64(),
		CacheWritebacks: r.Int64(),
		CacheCapacity:   int(r.Uint32()),
		Relations:       int(r.Uint32()),
		Types:           int(r.Uint32()),
		Functions:       int(r.Uint32()),
		Horizon:         r.Uint32(),
		LastCommitTime:  r.Int64(),

		CacheEvictions:    r.Int64(),
		CacheOvercommits:  r.Int64(),
		CacheLoadWaits:    r.Int64(),
		StatusCacheHits:   r.Int64(),
		StatusCacheMisses: r.Int64(),
		LockWaits:         r.Int64(),
	}
	return st, r.Err()
}

// StatsV2 fetches the server's full metrics-registry snapshot:
// counters, gauges, and per-layer latency histograms.
func (c *Client) StatsV2() (obs.Snapshot, error) {
	resp, err := c.call(OpStatsV2, nil)
	if err != nil {
		return obs.Snapshot{}, err
	}
	return obs.DecodeSnapshot(resp)
}

// WaitProfile fetches the server's accumulated wait-event profile
// (empty when the server runs without a wait sampler).
func (c *Client) WaitProfile() (obs.WaitProfile, error) {
	resp, err := c.call(OpWaitProfile, nil)
	if err != nil {
		return obs.WaitProfile{}, err
	}
	return obs.DecodeWaitProfile(resp)
}

// Vacuum runs the vacuum cleaner on the server.
func (c *Client) Vacuum() (relations, scanned, archived, removed int, err error) {
	resp, err := c.call(OpVacuum, nil)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	r := rowenc.NewReader(resp)
	return int(r.Uint32()), int(r.Uint32()), int(r.Uint32()), int(r.Uint32()), r.Err()
}

// ScrubResult is the wire form of the server's full integrity pass
// (core.ScrubReport): check counts plus human-readable descriptions of
// every media fault and structural problem found.
type ScrubResult struct {
	Relations    int
	PagesChecked int
	Indexes      int
	Files        int
	Chunks       int
	Corrupt      []string
	Problems     []string
}

// OK reports whether the database verified clean.
func (s ScrubResult) OK() bool { return len(s.Corrupt) == 0 && len(s.Problems) == 0 }

// Summary renders the result in one line.
func (s ScrubResult) Summary() string {
	return fmt.Sprintf("scrub: %d pages, %d indexes, %d files, %d chunks checked; %d media faults, %d problems",
		s.PagesChecked, s.Indexes, s.Files, s.Chunks, len(s.Corrupt), len(s.Problems))
}

// Scrub runs the server's full integrity pass: the media scrub plus
// structural B-tree, namespace, chunk, and transaction-log checks.
func (c *Client) Scrub() (ScrubResult, error) {
	resp, err := c.call(OpScrub, nil)
	if err != nil {
		return ScrubResult{}, err
	}
	r := rowenc.NewReader(resp)
	res := ScrubResult{
		Relations:    int(r.Uint32()),
		PagesChecked: int(r.Uint32()),
		Indexes:      int(r.Uint32()),
		Files:        int(r.Uint32()),
		Chunks:       int(r.Uint32()),
	}
	for n := r.Uint32(); n > 0; n-- {
		res.Corrupt = append(res.Corrupt, r.String())
	}
	for n := r.Uint32(); n > 0; n-- {
		res.Problems = append(res.Problems, r.String())
	}
	return res, r.Err()
}
