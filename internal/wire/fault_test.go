package wire

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/rowenc"
)

// startFaultyServer is startServer with the device manager wrapped in
// a Faulty, so tests can make the server's backend flaky mid-session.
func startFaultyServer(t *testing.T) (string, *device.Faulty, *core.DB) {
	t.Helper()
	faulty := device.NewFaulty(device.NewMem(nil, 0), 1)
	sw := device.NewSwitch()
	sw.Register(faulty)
	var mu sync.Mutex
	tick := int64(1 << 40)
	db, err := core.Open(sw, core.Options{
		Buffers: 128,
		TimeSource: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			tick += 1000
			return tick
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(db)
	srv.SetLogf(func(string, ...any) {})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, faulty, db
}

// dataRels matches every relation except the transaction logs, so the
// abort record can always be recorded.
func dataRels(rel device.OID, page uint32) bool { return rel > 2 }

// TestServerSurvivesFlakyBackend: a backend that starts failing must
// turn into clean statusErr responses; the connection keeps working
// and heals with the device.
func TestServerSurvivesFlakyBackend(t *testing.T) {
	addr, faulty, _ := startFaultyServer(t)
	c := dial(t, addr, "flaky")

	// Healthy warm-up.
	if err := c.Mkdir("/pre"); err != nil {
		t.Fatal(err)
	}

	// Every data-page write now fails: a transactional write cannot
	// force its pages at commit.
	faulty.FailIf(device.FaultWrite, dataRels, nil)
	if err := c.PBegin(); err != nil {
		t.Fatal(err)
	}
	fd, err := c.PCreat("/doomed.txt", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PWrite(fd, []byte("lost to the storm")); err != nil {
		t.Fatal(err)
	}
	err = c.PCommit()
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("commit over failing backend: %v", err)
	}

	// The connection is alive: the very next round trip succeeds.
	if _, err := c.Stat("/", 0); err != nil {
		t.Fatalf("connection wedged after backend failure: %v", err)
	}

	// Device heals: the same client finishes a full transaction.
	faulty.Clear()
	if err := c.PBegin(); err != nil {
		t.Fatal(err)
	}
	fd, err = c.PCreat("/healed.txt", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PWrite(fd, []byte("made it")); err != nil {
		t.Fatal(err)
	}
	if err := c.PCommit(); err != nil {
		t.Fatal(err)
	}
	fd, err = c.POpen("/healed.txt", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := c.PRead(fd, buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(buf[:n]) != "made it" {
		t.Fatalf("read back %q", buf[:n])
	}

	// The doomed file never came into existence.
	if _, err := c.Stat("/doomed.txt", 0); err == nil {
		t.Fatal("aborted create is visible")
	}
}

// TestServerFlakyReads: intermittent read failures surface as remote
// errors, and the same request succeeds once the device behaves.
func TestServerFlakyReads(t *testing.T) {
	addr, faulty, db := startFaultyServer(t)
	c := dial(t, addr, "reader")
	if err := writeRemoteFile(t, c, "/blob.bin"); err != nil {
		t.Fatal(err)
	}

	// Drop the server's buffer cache so the next reads hit the device.
	db.Crash()
	faulty.FailEvery(device.FaultRead, 1, nil) // all reads fail
	_, err := c.ReadDir("/", 0)
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("readdir over failing backend: %v", err)
	}
	faulty.Clear()
	entries, err := c.ReadDir("/", 0)
	if err != nil {
		t.Fatalf("readdir after heal: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("directory empty after heal")
	}
}

// writeRemoteFile creates a small file through the wire — a full
// create/write/commit round trip — so a later read has something to
// miss on.
func writeRemoteFile(t *testing.T, c *Client, path string) error {
	t.Helper()
	if err := c.PBegin(); err != nil {
		return err
	}
	fd, err := c.PCreat(path, core.CreateOpts{})
	if err != nil {
		return err
	}
	if _, err := c.PWrite(fd, []byte("payload")); err != nil {
		return err
	}
	return c.PCommit()
}

// TestTruncatedPayloadsRejected sends payloads cut short of their
// schema for every opcode the server used to decode without checking
// r.Err(): each must come back as a clean protocol error, the
// connection must keep serving, and no operation may act on the
// zero values the truncated decode produces.
func TestTruncatedPayloadsRejected(t *testing.T) {
	addr, _, _ := startFaultyServer(t)
	conn := rawConn(t, addr)
	handshake(t, conn)

	send := func(op byte, payload []byte) byte {
		t.Helper()
		if err := writeMsg(conn, op, payload); err != nil {
			t.Fatal(err)
		}
		status, _, err := readMsg(conn)
		if err != nil {
			t.Fatalf("connection dropped after op %d: %v", op, err)
		}
		return status
	}

	// Open a transaction and a real file with content, so a buggy
	// truncate-to-zero would be observable.
	if got := send(OpBegin, nil); got != statusOK {
		t.Fatal("begin failed")
	}
	resp := func(op byte, payload []byte) []byte {
		t.Helper()
		if err := writeMsg(conn, op, payload); err != nil {
			t.Fatal(err)
		}
		status, body, err := readMsg(conn)
		if err != nil || status != statusOK {
			t.Fatalf("op %d: status=%d err=%v body=%q", op, status, err, body)
		}
		return body
	}
	fdResp := resp(OpCreat, rowenc.NewWriter(32).String("/t.txt").String("").String("").Uint32(0).Done())
	fd := rowenc.NewReader(fdResp).Uint32()
	resp(OpWrite, rowenc.NewWriter(32).Uint32(fd).Bytes([]byte("twelve bytes")).Done())

	fdOnly := rowenc.NewWriter(4).Uint32(fd).Done()
	pathOnly := rowenc.NewWriter(8).String("/").Done()
	cases := []struct {
		name    string
		op      byte
		payload []byte
	}{
		{"close-empty", OpClose, nil},
		{"read-missing-count", OpRead, fdOnly},
		{"lseek-missing-offset", OpLseek, fdOnly},
		{"truncate-missing-size", OpTruncate, fdOnly},
		{"stat-missing-timestamp", OpStat, pathOnly},
		{"readdir-missing-timestamp", OpReadDir, pathOnly},
		{"mkdir-empty", OpMkdir, nil},
		{"unlink-empty", OpUnlink, nil},
	}
	for _, tc := range cases {
		if got := send(tc.op, tc.payload); got != statusErr {
			t.Errorf("%s: status = %d, want statusErr", tc.name, got)
		}
	}

	// The truncated OpTruncate must not have cut the file to size 0
	// (the fd decoded fine; the missing size read back as zero on the
	// seed code). Seek to end reports the real length.
	posResp := resp(OpLseek, rowenc.NewWriter(16).Uint32(fd).Int64(0).Uint32(2).Done())
	if pos := rowenc.NewReader(posResp).Int64(); pos != int64(len("twelve bytes")) {
		t.Fatalf("file length after rejected truncate = %d, want %d", pos, len("twelve bytes"))
	}
	if got := send(OpAbort, nil); got != statusOK {
		t.Fatal("abort failed")
	}
}
