package wire

import (
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/core"
)

// rawConn dials the server without the client library, for sending
// malformed traffic.
func rawConn(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func handshake(t *testing.T, conn net.Conn) {
	t.Helper()
	if err := writeMsg(conn, 0, []byte("raw")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := readMsg(conn); err != nil {
		t.Fatal(err)
	}
}

// TestServerSurvivesMalformedFrames throws hostile byte streams at the
// server; it must drop the connection or answer with an error, never
// crash, and must keep serving well-formed clients afterwards.
func TestServerSurvivesMalformedFrames(t *testing.T) {
	_, addr, _ := startServer(t)

	attacks := [][]byte{
		// Zero-length frame.
		{0, 0, 0, 0},
		// Giant declared length.
		{0xff, 0xff, 0xff, 0xff},
		// Length larger than payload actually sent (connection then
		// closed mid-frame by the deferred cleanup).
		{0xe8, 0x03, 0, 0, OpQuery},
		// Unknown opcode.
		{2, 0, 0, 0, 0xEE, 0x01},
		// Truncated rowenc payload for an op that decodes fields.
		{3, 0, 0, 0, OpOpen, 0x50, 0x50},
	}
	for i, attack := range attacks {
		conn := rawConn(t, addr)
		handshake(t, conn)
		if _, err := conn.Write(attack); err != nil {
			t.Fatalf("attack %d write: %v", i, err)
		}
		// Read whatever comes back (error reply or EOF); just don't hang.
		conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		var hdr [4]byte
		_, _ = io.ReadFull(conn, hdr[:])
		conn.Close()
	}

	// The server is still healthy for real clients.
	c := dial(t, addr, "survivor")
	fd, err := c.PCreat("/after-attacks", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PWrite(fd, []byte("still serving")); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}
	attr, err := c.Stat("/after-attacks", 0)
	if err != nil || attr.Size != 13 {
		t.Fatalf("post-attack stat: %+v %v", attr, err)
	}
}

// TestServerRejectsOversizeFrameDeclaration confirms the length guard.
func TestServerRejectsOversizeFrameDeclaration(t *testing.T) {
	_, addr, _ := startServer(t)
	conn := rawConn(t, addr)
	handshake(t, conn)
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], maxMessage+1)
	hdr[4] = OpQuery
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	n, _ := conn.Read(buf)
	// Either an error frame or a dropped connection is acceptable; a
	// hang is not (the deadline catches that as a timeout error, which
	// also passes — the point is the server did not allocate 4 GB).
	_ = n
}

// TestRemoteStats exercises the monitoring op.
func TestRemoteStats(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr, "mon")
	fd, err := c.PCreat("/s", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheCapacity == 0 || st.Relations == 0 {
		t.Fatalf("stats look empty: %+v", st)
	}
	if st.LastCommitTime == 0 {
		t.Fatal("no commit time recorded")
	}
}
