//go:build !race

package wire

// spanAttributionFloor in non-race builds is the paper-strength check:
// untimed CPU may hide at most 5% of a slow request's wall time. See
// race_on_test.go for why the race build relaxes it.
const spanAttributionFloor = 0.95
