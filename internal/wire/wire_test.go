package wire

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/typefuncs"
)

func newTestDB(t *testing.T) *core.DB {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	var mu sync.Mutex
	tick := int64(1 << 40)
	db, err := core.Open(sw, core.Options{
		Buffers: 128,
		TimeSource: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			tick += 1000
			return tick
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := typefuncs.RegisterAll(db.NewSession("setup")); err != nil {
		t.Fatal(err)
	}
	return db
}

func startServer(t *testing.T) (*Server, string, *core.DB) {
	t.Helper()
	return startServerCfg(t, ServerConfig{}, nil)
}

// startServerCfg is startServer with explicit lifecycle settings and an
// optional request hook (installed before Listen, as required).
func startServerCfg(t *testing.T, cfg ServerConfig, hook func(op byte, payload []byte)) (*Server, string, *core.DB) {
	t.Helper()
	db := newTestDB(t)
	srv := NewServerWith(db, cfg)
	srv.SetLogf(func(string, ...any) {})
	srv.testHook = hook
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, db
}

func dial(t *testing.T, addr, owner string) *Client {
	t.Helper()
	c, err := Dial(addr, owner)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestRemoteFileIO(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr, "mao")

	fd, err := c.PCreat("/remote.txt", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PWrite(fd, []byte("over the wire")); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}

	fd, err = c.POpen("/remote.txt", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := c.PRead(fd, buf)
	if err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf[:n]) != "over the wire" {
		t.Fatalf("read %q", buf[:n])
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteSeekAndTruncate(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr, "mao")
	fd, err := c.PCreat("/s", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PWrite(fd, bytes.Repeat([]byte("ab"), 100)); err != nil {
		t.Fatal(err)
	}
	pos, err := c.PLseek(fd, 10, SeekSet)
	if err != nil || pos != 10 {
		t.Fatalf("seek: %d %v", pos, err)
	}
	buf := make([]byte, 2)
	if _, err := c.PRead(fd, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ab" {
		t.Fatalf("read at 10: %q", buf)
	}
	if err := c.PTruncate(fd, 4); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}
	attr, err := c.Stat("/s", 0)
	if err != nil || attr.Size != 4 {
		t.Fatalf("stat after truncate: %+v %v", attr, err)
	}
}

func TestRemoteTransactions(t *testing.T) {
	_, addr, _ := startServer(t)
	c1 := dial(t, addr, "alice")
	c2 := dial(t, addr, "bob")

	if err := c1.PBegin(); err != nil {
		t.Fatal(err)
	}
	fd, err := c1.PCreat("/tx-file", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.PWrite(fd, []byte("tx data")); err != nil {
		t.Fatal(err)
	}
	// Invisible to c2 before commit.
	if _, err := c2.Stat("/tx-file", 0); err == nil {
		t.Fatal("uncommitted file visible remotely")
	}
	if err := c1.PCommit(); err != nil {
		t.Fatal(err)
	}
	attr, err := c2.Stat("/tx-file", 0)
	if err != nil || attr.Size != 7 {
		t.Fatalf("after commit: %+v %v", attr, err)
	}
}

func TestRemoteAbortRollsBack(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr, "mao")
	if err := c.PBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PCreat("/doomed", core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := c.PAbort(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/doomed", 0); err == nil {
		t.Fatal("aborted create visible")
	}
}

func TestRemoteTimeTravel(t *testing.T) {
	_, addr, db := startServer(t)
	c := dial(t, addr, "mao")
	fd, err := c.PCreat("/tt", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PWrite(fd, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}
	before := db.Manager().LastCommitTime()

	fd, err = c.POpen("/tt", true, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PTruncate(fd, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PWrite(fd, []byte("v2!")); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}

	// Historical open via timestamp parameter.
	fd, err = c.POpen("/tt", false, before)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, _ := c.PRead(fd, buf)
	if string(buf[:n]) != "v1" {
		t.Fatalf("historical read: %q", buf[:n])
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}
	// Historical writes rejected.
	if _, err := c.POpen("/tt", true, before); err == nil {
		t.Fatal("historical open for write allowed")
	}
}

func TestRemoteNamespaceOps(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr, "mao")
	if err := c.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	fd, err := c.PCreat("/dir/a", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}
	entries, err := c.ReadDir("/dir", 0)
	if err != nil || len(entries) != 1 || entries[0].Name != "a" {
		t.Fatalf("readdir: %+v %v", entries, err)
	}
	if err := c.Rename("/dir/a", "/dir/b"); err != nil {
		t.Fatal(err)
	}
	if err := c.Unlink("/dir/b"); err != nil {
		t.Fatal(err)
	}
	entries, err = c.ReadDir("/dir", 0)
	if err != nil || len(entries) != 0 {
		t.Fatalf("readdir after unlink: %+v %v", entries, err)
	}
}

func TestRemoteQueryAndCall(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr, "mao")
	fd, err := c.PCreat("/q.txt", core.CreateOpts{Type: typefuncs.TypeASCII})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PWrite(fd, []byte("one\ntwo\n")); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}
	v, err := c.Call("linecount", "/q.txt")
	if err != nil || v.I != 2 {
		t.Fatalf("remote call: %v %v", v, err)
	}
	res, err := c.Query(`retrieve (filename, size(file)) where owner(file) = "mao"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "q.txt" || res.Rows[0][1].I != 8 {
		t.Fatalf("remote query rows: %+v", res.Rows)
	}
	if err := c.DefineType("newtype", "doc"); err != nil {
		t.Fatal(err)
	}
	if _, _, _, _, err := c.Vacuum(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteErrorsSurface(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr, "mao")
	_, err := c.POpen("/does-not-exist", false, 0)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("expected RemoteError, got %v", err)
	}
	if err := c.PClose(FD(99)); err == nil {
		t.Fatal("bad fd accepted")
	}
}

func TestConnectionDropAbortsTx(t *testing.T) {
	_, addr, db := startServer(t)
	c := dial(t, addr, "mao")
	if err := c.PBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PCreat("/drop", core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// The server must abort the dropped connection's transaction; poll
	// until the lock is released and visibility confirms the rollback.
	s := db.NewSession("check")
	for i := 0; i < 100; i++ {
		if _, err := s.Stat("/drop"); err != nil {
			return // invisible: rolled back
		}
	}
	t.Fatal("dropped connection's transaction not aborted")
}
