package wire

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// The scrub wire op: a clean database reports a clean result with
// non-trivial check counts, and the counts reflect the files written.
func TestRemoteScrub(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr, "operator")

	for _, p := range []string{"/a", "/b"} {
		fd, err := c.PCreat(p, core.CreateOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.PWrite(fd, []byte(strings.Repeat(p, 50))); err != nil {
			t.Fatal(err)
		}
		if err := c.PClose(fd); err != nil {
			t.Fatal(err)
		}
	}

	res, err := c.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("fresh database scrub not clean: corrupt=%v problems=%v", res.Corrupt, res.Problems)
	}
	if res.Files < 2 {
		t.Fatalf("scrub saw %d files, want ≥ 2", res.Files)
	}
	if res.Chunks < 2 || res.PagesChecked == 0 || res.Indexes == 0 {
		t.Fatalf("implausible scrub counts: %+v", res)
	}
	if !strings.Contains(res.Summary(), "0 problems") {
		t.Fatalf("summary: %s", res.Summary())
	}
}

// Scrub is a read-only operator op: it must be retryable outside a
// transaction like the other introspection calls.
func TestScrubRetryable(t *testing.T) {
	c := &Client{}
	if !c.retryable(OpScrub) {
		t.Fatal("OpScrub not retryable outside a transaction")
	}
}
