package wire

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/rowenc"
	"repro/internal/value"
)

// Server serves the Inversion protocol over TCP. Each connection gets
// its own Session (one transaction at a time) and file descriptor
// table.
type Server struct {
	db     *core.DB
	eng    *query.Engine
	ln     net.Listener
	logf   func(format string, args ...any)
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// NewServer returns a server for db.
func NewServer(db *core.DB) *Server {
	return &Server{db: db, eng: query.New(db), logf: log.Printf}
}

// SetLogf overrides the server's logger (tests silence it).
func (s *Server) SetLogf(f func(string, ...any)) { s.logf = f }

// Listen binds the address and begins accepting connections in the
// background. It returns the bound address (addr may use port 0).
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.logf("inversion: accept: %v", err)
			}
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Close stops accepting and waits for connections to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// conn state: a session plus open file table.
type connState struct {
	sess   *core.Session
	files  map[int32]*core.File
	nextFD int32
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	st := &connState{files: make(map[int32]*core.File), nextFD: 3}
	defer func() {
		for _, f := range st.files {
			_ = f.Close()
		}
		if st.sess != nil && st.sess.InTx() {
			_ = st.sess.Abort()
		}
	}()

	// Handshake: first message is the owner name.
	kind, payload, err := readMsg(conn)
	if err != nil || kind != 0 {
		return
	}
	st.sess = s.db.NewSession(string(payload))
	if err := writeMsg(conn, statusOK, nil); err != nil {
		return
	}

	for {
		op, payload, err := readMsg(conn)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("inversion: conn read: %v", err)
			}
			return
		}
		resp, err := s.handle(st, op, payload)
		if err != nil {
			if werr := writeMsg(conn, statusErr, []byte(err.Error())); werr != nil {
				return
			}
			continue
		}
		if err := writeMsg(conn, statusOK, resp); err != nil {
			return
		}
	}
}

func encodeAttrWire(a core.FileAttr) []byte {
	return rowenc.NewWriter(96).
		Uint32(uint32(a.File)).String(a.Owner).String(a.Type).
		Int64(a.Size).Int64(a.CTime).Int64(a.MTime).Int64(a.ATime).
		Uint32(a.Flags).String(a.Class).Done()
}

func decodeAttrWire(b []byte) (core.FileAttr, error) {
	r := rowenc.NewReader(b)
	a := core.FileAttr{}
	a.File = oidFrom(r.Uint32())
	a.Owner = r.String()
	a.Type = r.String()
	a.Size = r.Int64()
	a.CTime = r.Int64()
	a.MTime = r.Int64()
	a.ATime = r.Int64()
	a.Flags = r.Uint32()
	a.Class = r.String()
	return a, r.Err()
}

func encodeValue(v value.V) []byte {
	w := rowenc.NewWriter(32).Uint32(uint32(v.Kind)).Int64(v.I)
	w.Uint64(floatBits(v.F)).String(v.S)
	if v.B {
		w.Uint32(1)
	} else {
		w.Uint32(0)
	}
	w.Uint32(uint32(len(v.L)))
	for _, s := range v.L {
		w.String(s)
	}
	return w.Done()
}

func decodeValue(r *rowenc.Reader) (value.V, error) {
	v := value.V{Kind: value.Kind(r.Uint32())}
	v.I = r.Int64()
	v.F = floatFrom(r.Uint64())
	v.S = r.String()
	v.B = r.Uint32() != 0
	n := int(r.Uint32())
	for i := 0; i < n; i++ {
		v.L = append(v.L, r.String())
	}
	return v, r.Err()
}

func (s *Server) handle(st *connState, op byte, payload []byte) ([]byte, error) {
	r := rowenc.NewReader(payload)
	switch op {
	case OpBegin:
		return nil, st.sess.Begin()
	case OpCommit:
		// Commit invalidates every open descriptor (their files were
		// flushed and closed by the session).
		err := st.sess.Commit()
		st.files = make(map[int32]*core.File)
		return nil, err
	case OpAbort:
		err := st.sess.Abort()
		st.files = make(map[int32]*core.File)
		return nil, err
	case OpCreat:
		path := r.String()
		opts := core.CreateOpts{Type: r.String(), Class: r.String(), Flags: r.Uint32()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, err := st.sess.Create(path, opts)
		if err != nil {
			return nil, err
		}
		return st.addFD(f), nil
	case OpOpen:
		path := r.String()
		write := r.Uint32() != 0
		ts := r.Int64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var f *core.File
		var err error
		switch {
		case ts != 0:
			// "Historical files may not be opened for writing."
			if write {
				return nil, core.ErrHistoricalWr
			}
			f, err = st.sess.OpenAsOf(path, ts)
		case write:
			f, err = st.sess.OpenWrite(path)
		default:
			f, err = st.sess.Open(path)
		}
		if err != nil {
			return nil, err
		}
		return st.addFD(f), nil
	case OpClose:
		fd := int32(r.Uint32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := st.files[fd]
		if !ok {
			return nil, fmt.Errorf("wire: bad fd %d", fd)
		}
		delete(st.files, fd)
		return nil, f.Close()
	case OpRead:
		fd := int32(r.Uint32())
		n := int(r.Uint32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := st.files[fd]
		if !ok {
			return nil, fmt.Errorf("wire: bad fd %d", fd)
		}
		if n < 0 || n > maxMessage/2 {
			return nil, fmt.Errorf("wire: bad read size %d", n)
		}
		buf := make([]byte, n)
		got, err := f.Read(buf)
		if err != nil && err != io.EOF {
			return nil, err
		}
		return buf[:got], nil
	case OpWrite:
		fd := int32(r.Uint32())
		data := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := st.files[fd]
		if !ok {
			return nil, fmt.Errorf("wire: bad fd %d", fd)
		}
		n, err := f.Write(data)
		if err != nil {
			return nil, err
		}
		return rowenc.NewWriter(8).Uint32(uint32(n)).Done(), nil
	case OpLseek:
		fd := int32(r.Uint32())
		off := r.Int64()
		whence := int(r.Uint32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := st.files[fd]
		if !ok {
			return nil, fmt.Errorf("wire: bad fd %d", fd)
		}
		pos, err := f.Seek(off, whence)
		if err != nil {
			return nil, err
		}
		return rowenc.NewWriter(8).Int64(pos).Done(), nil
	case OpTruncate:
		fd := int32(r.Uint32())
		size := r.Int64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := st.files[fd]
		if !ok {
			return nil, fmt.Errorf("wire: bad fd %d", fd)
		}
		return nil, f.Truncate(size)
	case OpMkdir:
		path := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, st.sess.Mkdir(path)
	case OpUnlink:
		path := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, st.sess.Unlink(path)
	case OpRename:
		oldp, newp := r.String(), r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, st.sess.Rename(oldp, newp)
	case OpStat:
		path := r.String()
		ts := r.Int64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var attr core.FileAttr
		var err error
		if ts != 0 {
			attr, err = st.sess.StatAsOf(path, ts)
		} else {
			attr, err = st.sess.Stat(path)
		}
		if err != nil {
			return nil, err
		}
		return encodeAttrWire(attr), nil
	case OpReadDir:
		path := r.String()
		ts := r.Int64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var entries []core.DirEntry
		var err error
		if ts != 0 {
			entries, err = st.sess.ReadDirAsOf(path, ts)
		} else {
			entries, err = st.sess.ReadDir(path)
		}
		if err != nil {
			return nil, err
		}
		w := rowenc.NewWriter(64 * len(entries)).Uint32(uint32(len(entries)))
		for _, e := range entries {
			w.String(e.Name)
			w.Bytes(encodeAttrWire(e.Attr))
		}
		return w.Done(), nil
	case OpQuery:
		q := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		res, err := s.eng.Run(st.sess, q)
		if err != nil {
			return nil, err
		}
		w := rowenc.NewWriter(256).String(res.Message).Uint32(uint32(len(res.Columns)))
		for _, c := range res.Columns {
			w.String(c)
		}
		w.Uint32(uint32(len(res.Rows)))
		for _, row := range res.Rows {
			for _, v := range row {
				w.Bytes(encodeValue(v))
			}
		}
		return w.Done(), nil
	case OpCall:
		fn, path := r.String(), r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		v, err := st.sess.Call(fn, path)
		if err != nil {
			return nil, err
		}
		return encodeValue(v), nil
	case OpDefineType:
		name, doc := r.String(), r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, st.sess.DefineType(name, doc)
	case OpMigrate:
		path, class := r.String(), r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, st.sess.Migrate(path, class)
	case OpVacuum:
		stats, err := s.db.Vacuum()
		if err != nil {
			return nil, err
		}
		return rowenc.NewWriter(32).
			Uint32(uint32(stats.Relations)).
			Uint32(uint32(stats.Scanned)).
			Uint32(uint32(stats.Archived)).
			Uint32(uint32(stats.Removed)).Done(), nil
	case OpSetType:
		path, typ := r.String(), r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, st.sess.SetFileType(path, typ)
	case OpStats:
		st := s.db.Stats()
		return rowenc.NewWriter(64).
			Int64(st.CacheHits).Int64(st.CacheMisses).Int64(st.CacheWritebacks).
			Uint32(uint32(st.CacheCapacity)).
			Uint32(uint32(st.Relations)).Uint32(uint32(st.Types)).Uint32(uint32(st.Functions)).
			Uint32(uint32(st.Horizon)).Int64(st.LastCommitTime).Done(), nil
	default:
		return nil, fmt.Errorf("wire: unknown opcode %d", op)
	}
}

func (st *connState) addFD(f *core.File) []byte {
	fd := st.nextFD
	st.nextFD++
	st.files[fd] = f
	return rowenc.NewWriter(4).Uint32(uint32(fd)).Done()
}
