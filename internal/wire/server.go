package wire

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/rowenc"
	"repro/internal/sysview"
	"repro/internal/value"
)

// Lifecycle defaults; zero fields in ServerConfig take these values.
const (
	DefaultIdleTimeout  = 2 * time.Minute
	DefaultGracePeriod  = 5 * time.Second
	DefaultWriteTimeout = 30 * time.Second
)

// ServerConfig tunes the server's connection lifecycle.
type ServerConfig struct {
	// IdleTimeout is how long a connection with an open transaction may
	// stay silent before the reaper aborts the transaction, releasing
	// its locks. A connection that stays silent for twice the timeout is
	// dropped (the read deadline enforces this), so a kill -9'd client
	// cannot pin its locks or its connection. Idle connections with no
	// transaction hold no locks and are left alone.
	IdleTimeout time.Duration
	// GracePeriod bounds Close: in-flight requests get this long to
	// drain before every connection is force-closed and idle
	// transactions are aborted.
	GracePeriod time.Duration
	// WriteTimeout bounds one response write, so a stalled client that
	// stops reading cannot wedge its handler goroutine.
	WriteTimeout time.Duration
	// SlowOp is the slow-operation threshold. Zero keeps the trace ring
	// fed with the slowest requests but logs nothing; a positive value
	// additionally logs every request whose handling took at least this
	// long, with its per-layer attribution.
	SlowOp time.Duration
	// TraceRingSize caps the recent-traces ring (default 32).
	TraceRingSize int
	// PanicHook, if set, runs after a handler panic has been recovered
	// and logged, with the op name and the recovered value. invd uses it
	// to dump the flight recorder, so the crash bundle is written while
	// the timeline still ends at the panicking op.
	PanicHook func(op string, recovered any)
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.GracePeriod <= 0 {
		c.GracePeriod = DefaultGracePeriod
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	return c
}

// Server serves the Inversion protocol over TCP. Each connection gets
// its own Session (one transaction at a time) and file descriptor
// table.
type Server struct {
	db   *core.DB
	eng  *query.Engine
	cfg  ServerConfig
	logf func(format string, args ...any)
	wg   sync.WaitGroup
	quit chan struct{}

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	conns  map[*serverConn]struct{}

	// Observability: one latency histogram per opcode plus request and
	// outcome counters, all resolved once at construction; the trace
	// ring keeps the slowest recent requests for /traces/recent.
	ring     *obs.TraceRing
	opNs     [256]*obs.Histogram
	devSimNs *obs.Histogram
	requests *obs.Counter
	errs     *obs.Counter
	panics   *obs.Counter
	reapedRq *obs.Counter
	bytesIn  *obs.Counter
	bytesOut *obs.Counter

	// testHook, when set before Listen, runs at the top of every request
	// handler; tests use it to inject handler panics.
	testHook func(op byte, payload []byte)
}

// serverConn tracks one live connection. Its mutex serialises the three
// goroutines that may touch the session from outside a request: the
// connection's own loop, the idle reaper, and shutdown.
type serverConn struct {
	conn net.Conn
	st   *connState

	mu         sync.Mutex
	busy       bool // a request is being handled right now
	reaped     bool // tx aborted by the reaper; answer the next request with ErrReaped
	lastActive time.Time
}

// NewServer returns a server for db with default lifecycle settings.
func NewServer(db *core.DB) *Server { return NewServerWith(db, ServerConfig{}) }

// NewServerWith returns a server for db with explicit lifecycle
// settings.
func NewServerWith(db *core.DB, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:    db,
		eng:   query.New(db),
		cfg:   cfg,
		logf:  log.Printf,
		conns: make(map[*serverConn]struct{}),
		ring:  obs.NewTraceRing(cfg.TraceRingSize),
	}
	reg := db.Obs()
	for op := OpBegin; op <= OpWaitProfile; op++ {
		s.opNs[op] = reg.Histogram("wire.op." + OpName(op) + "_ns")
	}
	s.devSimNs = reg.Histogram("device.sim_ns")
	s.requests = reg.Counter("wire.requests")
	s.errs = reg.Counter("wire.errors")
	s.panics = reg.Counter("wire.panics")
	s.reapedRq = reg.Counter("wire.reaped_replies")
	s.bytesIn = reg.Counter("wire.bytes_in")
	s.bytesOut = reg.Counter("wire.bytes_out")
	// The slow-request ring lives on the server, not the DB, so the
	// inv_traces catalog is registered here rather than in core.Open.
	db.SysViews().Register(sysview.NewTraces(s.ring))
	return s
}

// Traces exposes the server's recent-traces ring (the HTTP endpoint
// serves it).
func (s *Server) Traces() *obs.TraceRing { return s.ring }

// SetLogf overrides the server's logger (tests silence it).
func (s *Server) SetLogf(f func(string, ...any)) { s.logf = f }

// Listen binds the address and begins accepting connections in the
// background. It returns the bound address (addr may use port 0).
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	s.ln = ln
	s.quit = make(chan struct{})
	s.mu.Unlock()
	s.wg.Add(2)
	go s.acceptLoop(ln)
	go s.reapLoop()
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if !closed {
				s.logf("inversion: accept: %v", err)
			}
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// reapLoop periodically aborts transactions whose connection has gone
// quiet past the idle timeout, so a dead client's locks are released
// long before TCP notices the peer is gone.
func (s *Server) reapLoop() {
	defer s.wg.Done()
	interval := s.cfg.IdleTimeout / 4
	if interval > time.Second {
		interval = time.Second
	}
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		w := obs.BeginWaitLoop(obs.WaitReaperIdle, "reaper")
		select {
		case <-s.quit:
			w.End()
			return
		case <-t.C:
			w.End()
			s.reapOnce(time.Now())
		}
	}
}

func (s *Server) reapOnce(now time.Time) {
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		sc.mu.Lock()
		idle := now.Sub(sc.lastActive)
		if !sc.busy && !sc.reaped && sc.st.sess != nil && sc.st.sess.InTx() &&
			idle > s.cfg.IdleTimeout {
			sc.reaped = true
			if sc.st.sess.AbortExternal() {
				s.logf("inversion: reaped idle transaction (owner %q, idle %v)",
					sc.st.sess.Owner(), idle.Round(time.Millisecond))
			}
		}
		sc.mu.Unlock()
	}
}

// Close stops accepting and shuts down in two bounded phases: in-flight
// requests get GracePeriod to drain; after that every connection is
// closed, idle transactions are aborted (releasing their locks and
// unblocking any handler stuck in a lock wait), and the remaining
// goroutines get one more GracePeriod before Close returns regardless.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	quit := s.quit
	s.mu.Unlock()
	if quit != nil {
		close(quit)
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-time.After(s.cfg.GracePeriod):
	}

	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	for _, sc := range conns {
		_ = sc.conn.Close()
		sc.mu.Lock()
		if !sc.busy && sc.st.sess != nil {
			sc.st.sess.AbortExternal()
		}
		sc.mu.Unlock()
	}
	select {
	case <-done:
	case <-time.After(s.cfg.GracePeriod):
		s.logf("inversion: shutdown: connections still draining after force-close")
	}
	return err
}

// conn state: a session plus open file table.
type connState struct {
	sess   *core.Session
	files  map[int32]*core.File
	nextFD int32
}

// writeReply sends one response frame under the write deadline.
func (s *Server) writeReply(conn net.Conn, status byte, payload []byte) error {
	_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	err := writeMsg(conn, status, payload)
	_ = conn.SetWriteDeadline(time.Time{})
	return err
}

func (s *Server) serveConn(conn net.Conn) {
	sc := &serverConn{conn: conn, lastActive: time.Now()}
	st := &connState{files: make(map[int32]*core.File), nextFD: 3}
	sc.st = st
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[sc] = struct{}{}
	s.mu.Unlock()

	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
		// Serialise final cleanup against the reaper and shutdown so the
		// session and its files are never torn down from two goroutines
		// at once.
		sc.mu.Lock()
		for _, f := range st.files {
			_ = f.Close()
		}
		if st.sess != nil && st.sess.InTx() {
			_ = st.sess.Abort()
		}
		sc.mu.Unlock()
	}()

	// Handshake: first message is the owner name, under a deadline so a
	// connect-and-stall peer cannot hold the goroutine forever.
	_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	kind, payload, err := readMsg(conn)
	if err != nil || kind != 0 {
		return
	}
	sess := s.db.NewSession(string(payload))
	sc.mu.Lock()
	st.sess = sess
	sc.mu.Unlock()
	if err := s.writeReply(conn, statusOK, nil); err != nil {
		return
	}

	for {
		// In-transaction connections read under a deadline of twice the
		// idle timeout: the reaper aborts the transaction at one timeout
		// and the deadline drops a connection still silent at two. Idle
		// connections outside a transaction hold no locks and may stay
		// quiet indefinitely.
		if sess.InTx() {
			_ = conn.SetReadDeadline(time.Now().Add(2 * s.cfg.IdleTimeout))
		} else {
			_ = conn.SetReadDeadline(time.Time{})
		}
		op, payload, err := readMsg(conn)
		if err != nil {
			var ne net.Error
			switch {
			case errors.Is(err, io.EOF), errors.Is(err, net.ErrClosed):
			case errors.As(err, &ne) && ne.Timeout():
				s.logf("inversion: dropping silent in-transaction connection (owner %q)", sess.Owner())
			default:
				s.logf("inversion: conn read: %v", err)
			}
			return
		}
		op, payload, tc, hasTC, tcErr := splitTraceCtx(op, payload)
		if tcErr != nil {
			if werr := s.writeReply(conn, statusErr, errFrame(tcErr)); werr != nil {
				return
			}
			continue
		}

		sp := obs.NewSpan(OpName(op))
		// Bind the request into a trace: forward the client's context
		// when present, mint a fresh trace otherwise, and name this
		// request with a server-side span id either way.
		if hasTC {
			sp.TraceHi, sp.TraceLo = tc.Hi, tc.Lo
			sp.ParentSpan = tc.Parent
			sp.Attempt = tc.Attempt
			sp.Sampled = tc.Sampled
		} else {
			sp.TraceHi, sp.TraceLo = obs.NewTraceID()
		}
		sp.SpanID = obs.NewSpanID()
		sp.BytesIn = int64(len(payload))
		sp.StartUnixNs = time.Now().UnixNano()
		s.requests.Inc()
		s.bytesIn.Add(sp.BytesIn)

		sc.mu.Lock()
		if sc.reaped {
			sc.reaped = false
			sc.lastActive = time.Now()
			sc.mu.Unlock()
			// The request raced the reaper: its transaction is gone.
			// Tell the client distinctly and keep serving. The span still
			// gets recorded so a reaped burst is visible in the traces.
			sp.SetOutcome("reaped")
			s.reapedRq.Inc()
			s.recordSpan(sp, op)
			if werr := s.writeReply(conn, statusErr, errFrame(core.ErrReaped)); werr != nil {
				return
			}
			continue
		}
		sc.busy = true
		sc.mu.Unlock()

		t0 := time.Now()
		resp, panicked, err := s.handleSafe(sp, st, op, payload)
		sp.WallNs.Store(int64(time.Since(t0)))

		sc.mu.Lock()
		sc.busy = false
		sc.lastActive = time.Now()
		sc.mu.Unlock()

		switch {
		case panicked:
			sp.SetOutcome("panic")
			s.panics.Inc()
		case err != nil:
			sp.SetOutcome(fmt.Sprintf("error:%d", errFrame(err)[0]))
			s.errs.Inc()
		default:
			sp.SetOutcome("ok")
			sp.AddBytesOut(int64(len(resp)))
			s.bytesOut.Add(int64(len(resp)))
		}
		s.recordSpan(sp, op)

		if panicked {
			// A poisoned request must not take the process down: answer
			// with an error, then tear this connection down (the deferred
			// cleanup aborts the session's transaction, releasing locks).
			_ = s.writeReply(conn, statusErr, errFrame(err))
			return
		}
		if err != nil {
			if werr := s.writeReply(conn, statusErr, errFrame(err)); werr != nil {
				return
			}
			continue
		}
		if err := s.writeReply(conn, statusOK, resp); err != nil {
			return
		}
	}
}

// recordSpan files a finished request span: its wall latency into the
// per-opcode histogram, its simulated-device charge into the shared
// device histogram, the span itself into the trace ring, and — above
// the SlowOp threshold — a structured line into the log with the
// per-layer breakdown that explains where the time went.
func (s *Server) recordSpan(sp *obs.Span, op byte) {
	wall := sp.WallNs.Load()
	s.opNs[op].Observe(wall)
	if d := sp.DevSimNs.Load(); d > 0 {
		s.devSimNs.Observe(d)
	}
	data := sp.Data()
	s.ring.Record(data)
	obs.Flight().RecordSpan(data)
	if s.cfg.SlowOp > 0 && wall >= int64(s.cfg.SlowOp) {
		s.logf("inversion: slow op %s (%s): wall=%s lock=%s load=%s write=%s force=%s devsim=%s txn=%d rel=%q buf=%d/%d h/m",
			data.Op, data.Outcome, obs.FormatNs(wall),
			obs.FormatNs(data.LockWaitNs), obs.FormatNs(data.BufLoadNs),
			obs.FormatNs(data.BufWriteNs), obs.FormatNs(data.CommitNs),
			obs.FormatNs(data.DevSimNs), data.Txn, data.Rel,
			data.BufHits, data.BufMisses)
	}
}

// handleSafe runs one request with its span active, converting a
// handler panic into an error so a single poisoned request cannot kill
// the server process.
func (s *Server) handleSafe(sp *obs.Span, st *connState, op byte, payload []byte) (resp []byte, panicked bool, err error) {
	// The span is active exactly for the handler: every layer below
	// (locks, buffer pool, simulated devices) charges obs.Active().
	// Unbinding is deferred — via Activate(nil), the documented cleanup
	// form — so it runs even when the handler panics: a slot that
	// survived a panic would pin the active-span count above zero and
	// make every charge site in the process pay the goid lookup
	// forever.
	obs.Activate(sp)
	defer obs.Activate(nil)
	defer func() {
		if r := recover(); r != nil {
			s.logf("inversion: handler panic (op %d): %v\n%s", op, r, debug.Stack())
			obs.Flight().RecordMarker("panic", fmt.Sprintf("op %s: %v", OpName(op), r))
			if s.cfg.PanicHook != nil {
				s.cfg.PanicHook(OpName(op), r)
			}
			resp, panicked, err = nil, true, fmt.Errorf("wire: internal server error: %v", r)
		}
	}()
	if s.testHook != nil {
		s.testHook(op, payload)
	}
	resp, err = s.handle(st, op, payload)
	return resp, false, err
}

func encodeAttrWire(a core.FileAttr) []byte {
	return rowenc.NewWriter(96).
		Uint32(uint32(a.File)).String(a.Owner).String(a.Type).
		Int64(a.Size).Int64(a.CTime).Int64(a.MTime).Int64(a.ATime).
		Uint32(a.Flags).String(a.Class).Done()
}

func decodeAttrWire(b []byte) (core.FileAttr, error) {
	r := rowenc.NewReader(b)
	a := core.FileAttr{}
	a.File = oidFrom(r.Uint32())
	a.Owner = r.String()
	a.Type = r.String()
	a.Size = r.Int64()
	a.CTime = r.Int64()
	a.MTime = r.Int64()
	a.ATime = r.Int64()
	a.Flags = r.Uint32()
	a.Class = r.String()
	return a, r.Err()
}

func encodeValue(v value.V) []byte {
	w := rowenc.NewWriter(32).Uint32(uint32(v.Kind)).Int64(v.I)
	w.Uint64(floatBits(v.F)).String(v.S)
	if v.B {
		w.Uint32(1)
	} else {
		w.Uint32(0)
	}
	w.Uint32(uint32(len(v.L)))
	for _, s := range v.L {
		w.String(s)
	}
	return w.Done()
}

func decodeValue(r *rowenc.Reader) (value.V, error) {
	v := value.V{Kind: value.Kind(r.Uint32())}
	v.I = r.Int64()
	v.F = floatFrom(r.Uint64())
	v.S = r.String()
	v.B = r.Uint32() != 0
	n := int(r.Uint32())
	for i := 0; i < n; i++ {
		v.L = append(v.L, r.String())
	}
	return v, r.Err()
}

func (s *Server) handle(st *connState, op byte, payload []byte) ([]byte, error) {
	r := rowenc.NewReader(payload)
	switch op {
	case OpBegin:
		return nil, st.sess.Begin()
	case OpCommit:
		// Commit invalidates every open descriptor (their files were
		// flushed and closed by the session).
		err := st.sess.Commit()
		st.files = make(map[int32]*core.File)
		return nil, err
	case OpAbort:
		err := st.sess.Abort()
		st.files = make(map[int32]*core.File)
		return nil, err
	case OpCreat:
		path := r.String()
		opts := core.CreateOpts{Type: r.String(), Class: r.String(), Flags: r.Uint32()}
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, err := st.sess.Create(path, opts)
		if err != nil {
			return nil, err
		}
		return st.addFD(f), nil
	case OpOpen:
		path := r.String()
		write := r.Uint32() != 0
		ts := r.Int64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var f *core.File
		var err error
		switch {
		case ts != 0:
			// "Historical files may not be opened for writing."
			if write {
				return nil, core.ErrHistoricalWr
			}
			f, err = st.sess.OpenAsOf(path, ts)
		case write:
			f, err = st.sess.OpenWrite(path)
		default:
			f, err = st.sess.Open(path)
		}
		if err != nil {
			return nil, err
		}
		return st.addFD(f), nil
	case OpClose:
		fd := int32(r.Uint32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := st.files[fd]
		if !ok {
			return nil, fmt.Errorf("wire: bad fd %d", fd)
		}
		delete(st.files, fd)
		return nil, f.Close()
	case OpRead:
		fd := int32(r.Uint32())
		n := int(r.Uint32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := st.files[fd]
		if !ok {
			return nil, fmt.Errorf("wire: bad fd %d", fd)
		}
		if n < 0 || n > maxMessage/2 {
			return nil, fmt.Errorf("wire: bad read size %d", n)
		}
		buf := make([]byte, n)
		got, err := f.Read(buf)
		if err != nil && err != io.EOF {
			return nil, err
		}
		return buf[:got], nil
	case OpWrite:
		fd := int32(r.Uint32())
		data := r.Bytes()
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := st.files[fd]
		if !ok {
			return nil, fmt.Errorf("wire: bad fd %d", fd)
		}
		n, err := f.Write(data)
		if err != nil {
			return nil, err
		}
		return rowenc.NewWriter(8).Uint32(uint32(n)).Done(), nil
	case OpLseek:
		fd := int32(r.Uint32())
		off := r.Int64()
		whence := int(r.Uint32())
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := st.files[fd]
		if !ok {
			return nil, fmt.Errorf("wire: bad fd %d", fd)
		}
		pos, err := f.Seek(off, whence)
		if err != nil {
			return nil, err
		}
		return rowenc.NewWriter(8).Int64(pos).Done(), nil
	case OpTruncate:
		fd := int32(r.Uint32())
		size := r.Int64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		f, ok := st.files[fd]
		if !ok {
			return nil, fmt.Errorf("wire: bad fd %d", fd)
		}
		return nil, f.Truncate(size)
	case OpMkdir:
		path := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, st.sess.Mkdir(path)
	case OpUnlink:
		path := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, st.sess.Unlink(path)
	case OpRename:
		oldp, newp := r.String(), r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, st.sess.Rename(oldp, newp)
	case OpStat:
		path := r.String()
		ts := r.Int64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var attr core.FileAttr
		var err error
		if ts != 0 {
			attr, err = st.sess.StatAsOf(path, ts)
		} else {
			attr, err = st.sess.Stat(path)
		}
		if err != nil {
			return nil, err
		}
		return encodeAttrWire(attr), nil
	case OpReadDir:
		path := r.String()
		ts := r.Int64()
		if err := r.Err(); err != nil {
			return nil, err
		}
		var entries []core.DirEntry
		var err error
		if ts != 0 {
			entries, err = st.sess.ReadDirAsOf(path, ts)
		} else {
			entries, err = st.sess.ReadDir(path)
		}
		if err != nil {
			return nil, err
		}
		w := rowenc.NewWriter(64 * len(entries)).Uint32(uint32(len(entries)))
		for _, e := range entries {
			w.String(e.Name)
			w.Bytes(encodeAttrWire(e.Attr))
		}
		return w.Done(), nil
	case OpQuery:
		q := r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		res, err := s.eng.Run(st.sess, q)
		if err != nil {
			return nil, err
		}
		w := rowenc.NewWriter(256).String(res.Message).Uint32(uint32(len(res.Columns)))
		for _, c := range res.Columns {
			w.String(c)
		}
		w.Uint32(uint32(len(res.Rows)))
		for _, row := range res.Rows {
			for _, v := range row {
				w.Bytes(encodeValue(v))
			}
		}
		return w.Done(), nil
	case OpCall:
		fn, path := r.String(), r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		v, err := st.sess.Call(fn, path)
		if err != nil {
			return nil, err
		}
		return encodeValue(v), nil
	case OpDefineType:
		name, doc := r.String(), r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, st.sess.DefineType(name, doc)
	case OpMigrate:
		path, class := r.String(), r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, st.sess.Migrate(path, class)
	case OpVacuum:
		stats, err := s.db.Vacuum()
		if err != nil {
			return nil, err
		}
		return rowenc.NewWriter(32).
			Uint32(uint32(stats.Relations)).
			Uint32(uint32(stats.Scanned)).
			Uint32(uint32(stats.Archived)).
			Uint32(uint32(stats.Removed)).Done(), nil
	case OpSetType:
		path, typ := r.String(), r.String()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return nil, st.sess.SetFileType(path, typ)
	case OpStats:
		st := s.db.Stats()
		return rowenc.NewWriter(128).
			Int64(st.CacheHits).Int64(st.CacheMisses).Int64(st.CacheWritebacks).
			Uint32(uint32(st.CacheCapacity)).
			Uint32(uint32(st.Relations)).Uint32(uint32(st.Types)).Uint32(uint32(st.Functions)).
			Uint32(uint32(st.Horizon)).Int64(st.LastCommitTime).
			Int64(st.CacheEvictions).Int64(st.CacheOvercommits).Int64(st.CacheLoadWaits).
			Int64(st.StatusCacheHits).Int64(st.StatusCacheMisses).
			Int64(st.LockWaits).Done(), nil
	case OpStatsV2:
		// The full registry snapshot: counters, gauges, and latency
		// histograms from every layer. Gauges mirroring derived state
		// are refreshed so the snapshot is current.
		s.db.RefreshObsGauges()
		return obs.EncodeSnapshot(s.db.Obs().Snapshot()), nil
	case OpWaitProfile:
		// The accumulated wait-event profile (empty when no sampler is
		// configured), so client tooling can ask "what has the server
		// been waiting on" without scraping HTTP.
		return obs.EncodeWaitProfile(s.db.WaitProfile()), nil
	case OpScrub:
		// The full integrity pass (media, B-trees, namespace, chunks,
		// txn log), exposed as an operator command.
		rep, err := s.db.Scrub()
		if err != nil {
			return nil, err
		}
		w := rowenc.NewWriter(256).
			Uint32(uint32(rep.Media.Relations)).
			Uint32(uint32(rep.Media.PagesChecked)).
			Uint32(uint32(rep.IndexesChecked)).
			Uint32(uint32(rep.FilesChecked)).
			Uint32(uint32(rep.ChunksChecked)).
			Uint32(uint32(len(rep.Media.Corrupt)))
		for _, c := range rep.Media.Corrupt {
			w.String(c.String())
		}
		w.Uint32(uint32(len(rep.Problems)))
		for _, p := range rep.Problems {
			w.String(p)
		}
		return w.Done(), nil
	default:
		return nil, fmt.Errorf("wire: unknown opcode %d", op)
	}
}

func (st *connState) addFD(f *core.File) []byte {
	fd := st.nextFD
	st.nextFD++
	st.files[fd] = f
	return rowenc.NewWriter(4).Uint32(uint32(fd)).Done()
}
