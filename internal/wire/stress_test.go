package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestConcurrentTCPClients hammers one server with parallel clients
// doing transactional and autocommit work over real TCP, then verifies
// the final state from a fresh connection.
func TestConcurrentTCPClients(t *testing.T) {
	_, addr, _ := startServer(t)
	const clients = 6
	const rounds = 15

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := Dial(addr, fmt.Sprintf("client%d", ci))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			dir := fmt.Sprintf("/c%d", ci)
			if err := c.Mkdir(dir); err != nil {
				errs <- err
				return
			}
			for r := 0; r < rounds; r++ {
				// Transactional pair of files.
				if err := c.PBegin(); err != nil {
					errs <- err
					return
				}
				payload := bytes.Repeat([]byte{byte(r)}, 500+r)
				for _, name := range []string{"x", "y"} {
					path := fmt.Sprintf("%s/%s%d", dir, name, r)
					fd, err := c.PCreat(path, core.CreateOpts{})
					if err != nil {
						errs <- fmt.Errorf("client%d creat %s: %w", ci, path, err)
						return
					}
					if _, err := c.PWrite(fd, payload); err != nil {
						errs <- err
						return
					}
					if err := c.PClose(fd); err != nil {
						errs <- err
						return
					}
				}
				if r%3 == 2 {
					if err := c.PAbort(); err != nil {
						errs <- err
						return
					}
					continue
				}
				if err := c.PCommit(); err != nil {
					errs <- err
					return
				}
				// Read one back (autocommit).
				path := fmt.Sprintf("%s/x%d", dir, r)
				fd, err := c.POpen(path, false, 0)
				if err != nil {
					errs <- err
					return
				}
				buf := make([]byte, len(payload)+10)
				n, err := c.PRead(fd, buf)
				if err != nil && err != io.EOF {
					errs <- err
					return
				}
				if n != len(payload) || !bytes.Equal(buf[:n], payload) {
					errs <- fmt.Errorf("client%d read %s: %d bytes", ci, path, n)
					return
				}
				if err := c.PClose(fd); err != nil {
					errs <- err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Verify from a fresh connection: aborted rounds absent, committed
	// rounds present with the right sizes.
	v, err := Dial(addr, "verifier")
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	for ci := 0; ci < clients; ci++ {
		entries, err := v.ReadDir(fmt.Sprintf("/c%d", ci), 0)
		if err != nil {
			t.Fatal(err)
		}
		byName := map[string]int64{}
		for _, e := range entries {
			byName[e.Name] = e.Attr.Size
		}
		for r := 0; r < rounds; r++ {
			xname, yname := fmt.Sprintf("x%d", r), fmt.Sprintf("y%d", r)
			if r%3 == 2 {
				if _, ok := byName[xname]; ok {
					t.Fatalf("client %d: aborted round %d visible", ci, r)
				}
				continue
			}
			want := int64(500 + r)
			if byName[xname] != want || byName[yname] != want {
				t.Fatalf("client %d round %d sizes: %d/%d want %d",
					ci, r, byName[xname], byName[yname], want)
			}
		}
	}
}

// TestRemoteQueryConcurrentWithWrites runs metadata queries while other
// connections churn, checking queries never observe torn transactions
// (both files of a committed pair, or neither).
func TestRemoteQueryConcurrentWithWrites(t *testing.T) {
	_, addr, _ := startServer(t)
	writer, err := Dial(addr, "writer")
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	reader, err := Dial(addr, "reader")
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	stop := make(chan struct{})
	werr := make(chan error, 1)
	go func() {
		defer close(werr)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := writer.PBegin(); err != nil {
				werr <- err
				return
			}
			for _, n := range []string{"a", "b"} {
				fd, err := writer.PCreat(fmt.Sprintf("/pair%d-%s", i, n), core.CreateOpts{})
				if err != nil {
					werr <- err
					return
				}
				if err := writer.PClose(fd); err != nil {
					werr <- err
					return
				}
			}
			if err := writer.PCommit(); err != nil {
				werr <- err
				return
			}
		}
	}()

	for q := 0; q < 30; q++ {
		res, err := reader.Query(`retrieve (filename) where not isdir(file) sort by filename`)
		if err != nil {
			t.Fatal(err)
		}
		pairs := map[string]int{}
		for _, row := range res.Rows {
			name := row[0].S
			if i := strings.LastIndexByte(name, '-'); i > 0 {
				pairs[name[:i]]++
			}
		}
		for p, n := range pairs {
			if n != 2 {
				t.Fatalf("query saw torn transaction: %s has %d files", p, n)
			}
		}
	}
	close(stop)
	if err, ok := <-werr; ok && err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
}
