package wire

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/typefuncs"
)

// startWaitServer is startServerCfg over a database with the wait-event
// sampler running at 1ms, for tests that assert on inv_wait_events.
func startWaitServer(t *testing.T) (*Server, string, *core.DB) {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	var mu sync.Mutex
	tick := int64(1 << 40)
	db, err := core.Open(sw, core.Options{
		Buffers:      128,
		WaitSampling: time.Millisecond,
		TimeSource: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			tick += 1000
			return tick
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := typefuncs.RegisterAll(db.NewSession("setup")); err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(db, ServerConfig{IdleTimeout: time.Minute})
	srv.SetLogf(func(string, ...any) {})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, db
}

// TestPanicDoesNotLeakSpanSlot is the wire-level span-leak regression:
// a handler panic must still unbind the request's span from the
// goroutine. Before Activate(nil) became a real Deactivate, the slot
// survived the recovery, pinning the active-span count above zero and
// taxing every charge site in the process with a goid lookup forever.
func TestPanicDoesNotLeakSpanSlot(t *testing.T) {
	hook := func(op byte, payload []byte) {
		if op == OpMkdir && bytes.Contains(payload, []byte("boom")) {
			panic("injected leak probe")
		}
	}
	_, addr, _ := startServerCfg(t, ServerConfig{IdleTimeout: time.Minute}, hook)
	base := obs.ActiveSpanCount()

	c := dial(t, addr, "leaker")
	if err := c.Mkdir("/boom"); err == nil || !strings.Contains(err.Error(), "internal server error") {
		t.Fatalf("panicked request error = %v", err)
	}
	// The reply is written after the span is unbound, so by the time the
	// client sees the error the slot is gone; a short poll absorbs any
	// cleanup still racing on the server side.
	deadline := time.After(2 * time.Second)
	for obs.ActiveSpanCount() != base {
		select {
		case <-deadline:
			t.Fatalf("active span count = %d, want %d: panicked handler leaked its slot",
				obs.ActiveSpanCount(), base)
		case <-time.After(time.Millisecond):
		}
	}
}

// TestPanicProducesFlightBundle: a handler panic must leave a usable
// crash timeline in the flight recorder — the panicking op's span with
// outcome "panic", a panic marker naming the op, and the configured
// PanicHook fired (invd's hook writes the bundle to disk).
func TestPanicProducesFlightBundle(t *testing.T) {
	obs.ResetFlight(256)
	defer obs.ResetFlight(0)

	hooked := make(chan string, 1)
	hook := func(op byte, payload []byte) {
		if op == OpMkdir && bytes.Contains(payload, []byte("boom")) {
			panic("flight probe")
		}
	}
	_, addr, _ := startServerCfg(t, ServerConfig{
		IdleTimeout: time.Minute,
		PanicHook: func(op string, recovered any) {
			hooked <- fmt.Sprintf("%s: %v", op, recovered)
		},
	}, hook)

	c := dial(t, addr, "crasher")
	if err := c.Mkdir("/ok"); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/boom"); err == nil {
		t.Fatal("panicked request succeeded")
	}

	select {
	case got := <-hooked:
		if !strings.Contains(got, "mkdir") || !strings.Contains(got, "flight probe") {
			t.Fatalf("panic hook saw %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("panic hook never fired")
	}

	var buf bytes.Buffer
	if err := obs.Flight().WriteBundle(&buf, "test-panic", nil); err != nil {
		t.Fatal(err)
	}
	fb, err := obs.ParseFlightBundle(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var sawPanicSpan, sawMarker, sawOKSpan bool
	for _, ev := range fb.Events {
		switch {
		case ev.Kind == "span" && ev.Span != nil && ev.Span.Op == "mkdir" && ev.Span.Outcome == "panic":
			sawPanicSpan = true
		case ev.Kind == "marker" && ev.Name == "panic" && strings.Contains(ev.Detail, "mkdir"):
			sawMarker = true
		case ev.Kind == "span" && ev.Span != nil && ev.Span.Op == "mkdir" && ev.Span.Outcome == "ok":
			sawOKSpan = true
		}
	}
	if !sawPanicSpan || !sawMarker || !sawOKSpan {
		t.Fatalf("bundle timeline missing events: panicSpan=%v marker=%v okSpan=%v (%d events)",
			sawPanicSpan, sawMarker, sawOKSpan, len(fb.Events))
	}
}

// TestTraceStitchedAcrossRetry: every op in a transaction bracket
// carries the trace minted at Begin, and a retried op keeps that trace
// id across a forced reconnect — only its attempt counter advances. The
// server therefore sees the whole transaction, retries included, as one
// trace.
func TestTraceStitchedAcrossRetry(t *testing.T) {
	srv, addr, _ := startServerCfg(t, ServerConfig{IdleTimeout: time.Minute}, nil)
	c, err := DialWithConfig(DialConfig{Addr: addr, Owner: "tracer", MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	if err := c.PBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/", 0); err != nil {
		t.Fatal(err)
	}
	// Sever the live connection out from under the client: the next
	// idempotent read fails its first send, reconnects, and retries.
	c.connMu.Lock()
	c.conn.Close()
	c.connMu.Unlock()
	if _, err := c.Stat("/", 0); err != nil {
		t.Fatalf("retried stat failed: %v", err)
	}

	// The transaction died with the connection; stitch the server-side
	// spans by the trace id the begin span carries.
	spans := srv.Traces().Slowest()
	var trace string
	for _, d := range spans {
		if d.Op == "begin" {
			trace = d.TraceID
		}
	}
	if trace == "" {
		t.Fatalf("no begin span in %d traced spans", len(spans))
	}
	var stitched []string
	var retried bool
	for _, d := range spans {
		if d.TraceID != trace {
			continue
		}
		stitched = append(stitched, fmt.Sprintf("%s/a%d", d.Op, d.Attempt))
		if d.Op == "stat" && d.Attempt == 1 {
			retried = true
		}
		if d.SpanID == "" {
			t.Errorf("span %s has no span id", d.Op)
		}
	}
	if len(stitched) < 3 {
		t.Fatalf("trace %s stitched only %v, want begin + both stats", trace, stitched)
	}
	if !retried {
		t.Fatalf("no stat with attempt=1 in %v: retry minted a new trace instead of keeping it", stitched)
	}

	// An op outside any transaction mints its own fresh trace.
	if err := c.PAbort(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/", 0); err != nil {
		t.Fatal(err)
	}
	solo := srv.Traces().Slowest()
	for _, d := range solo {
		if d.Op == "stat" && d.TraceID == "" {
			t.Fatal("stat span missing trace id")
		}
	}
}

// TestLockWaitEventAttribution is the tentpole acceptance test: a
// transaction parked in the lock manager must show up in the sampled
// wait profile as a Lock-class lock_acquire event attributed to the
// relation whose lock it wants — and the same rows must be readable
// through the inv_wait_events catalog.
func TestLockWaitEventAttribution(t *testing.T) {
	_, addr, db := startWaitServer(t)

	c1 := dial(t, addr, "holder")
	if err := c1.PBegin(); err != nil {
		t.Fatal(err)
	}
	fd, err := c1.PCreat("/hot", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.PClose(fd); err != nil {
		t.Fatal(err)
	}
	if err := c1.PCommit(); err != nil {
		t.Fatal(err)
	}
	attr, err := c1.Stat("/hot", 0)
	if err != nil {
		t.Fatal(err)
	}
	wantRel := fmt.Sprintf("inv%d", attr.File)

	// Holder takes the exclusive lock; the blocker parks behind it.
	if err := c1.PBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.POpen("/hot", true, 0); err != nil {
		t.Fatal(err)
	}
	c2 := dial(t, addr, "blocker")
	blocked := make(chan error, 1)
	go func() {
		if err := c2.PBegin(); err != nil {
			blocked <- err
			return
		}
		_, err := c2.POpen("/hot", true, 0)
		blocked <- err
	}()

	deadline := time.After(5 * time.Second)
	for {
		var found bool
		for _, r := range db.WaitProfile().Rows {
			if r.Event == "lock_acquire" && r.Class == "Lock" &&
				r.Op == "open" && r.Rel == wantRel && r.Samples > 0 {
				found = true
			}
		}
		if found {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("lock_acquire on %s never sampled; profile = %+v", wantRel, db.WaitProfile())
		case <-time.After(2 * time.Millisecond):
		}
	}

	// Release and drain the blocker before reading the catalog.
	if err := c1.PAbort(); err != nil {
		t.Fatal(err)
	}
	if err := <-blocked; err != nil {
		t.Fatalf("blocker failed after release: %v", err)
	}
	if err := c2.PAbort(); err != nil {
		t.Fatal(err)
	}

	res, err := c1.Query("retrieve (w.class, w.event, w.op, w.relation, w.samples) from w in inv_wait_events")
	if err != nil {
		t.Fatal(err)
	}
	var catalogued bool
	for _, row := range res.Rows {
		if row[1].String() == "lock_acquire" && row[3].String() == wantRel {
			catalogued = true
		}
	}
	if !catalogued {
		t.Fatalf("inv_wait_events has no lock_acquire row for %s: %v", wantRel, res.Rows)
	}
}

// TestClientWaitProfile round-trips the sampled profile over the wire,
// and proves the op is an idempotent read: it survives a lost
// transaction bracket.
func TestClientWaitProfile(t *testing.T) {
	_, addr, _ := startWaitServer(t)
	c := dial(t, addr, "profiler")

	// Let the 1ms sampler take a few rounds (background loops publish
	// idle waits even with no load).
	deadline := time.After(2 * time.Second)
	for {
		p, err := c.WaitProfile()
		if err != nil {
			t.Fatal(err)
		}
		if p.IntervalNs != int64(time.Millisecond) {
			t.Fatalf("interval = %d, want 1ms", p.IntervalNs)
		}
		if p.Rounds > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("sampler never rounded")
		case <-time.After(5 * time.Millisecond):
		}
	}

	// A server without a sampler answers with a zero profile, not an
	// error.
	_, addr2, _ := startServer(t)
	c2 := dial(t, addr2, "profiler2")
	p, err := c2.WaitProfile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Rounds != 0 || len(p.Rows) != 0 {
		t.Fatalf("unsampled server returned %+v", p)
	}
}

// TestTraceCtxWireFormat pins the frame-level encoding: the flag bit,
// the 26-byte prefix, and the truncation error.
func TestTraceCtxWireFormat(t *testing.T) {
	tc := traceCtx{Hi: 0x1111, Lo: 0x2222, Parent: 0x3333, Sampled: true, Attempt: 7}
	framed := appendTraceCtx(nil, tc)
	if len(framed) != traceCtxLen {
		t.Fatalf("encoded length = %d, want %d", len(framed), traceCtxLen)
	}
	framed = append(framed, []byte("payload")...)

	op, payload, got, has, err := splitTraceCtx(OpStat|opTraceFlag, framed)
	if err != nil || !has {
		t.Fatalf("split: err=%v has=%v", err, has)
	}
	if op != OpStat || string(payload) != "payload" {
		t.Fatalf("op=%d payload=%q", op, payload)
	}
	if got != tc {
		t.Fatalf("decoded %+v, want %+v", got, tc)
	}

	// No flag: passthrough, old clients keep working.
	op, payload, _, has, err = splitTraceCtx(OpStat, []byte("raw"))
	if err != nil || has || op != OpStat || string(payload) != "raw" {
		t.Fatalf("passthrough: op=%d payload=%q has=%v err=%v", op, payload, has, err)
	}

	// Flagged but short: a loud error, not a misparse.
	if _, _, _, _, err := splitTraceCtx(OpStat|opTraceFlag, framed[:10]); err == nil {
		t.Fatal("truncated trace context accepted")
	}
}
