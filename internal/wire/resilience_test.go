package wire

// Resilience tests: connection lifecycle, handler panic isolation,
// deadlock surfaced over the wire, the idle-session reaper, and the
// reconnecting client. These exercise the server and client against the
// failure modes the paper's client/server split exposes: a dead client
// must not pin its locks, a poisoned request must not kill the server,
// and a restarted server must be transparent to read-only callers while
// in-transaction mutations fail loudly.

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/txn"
)

// restartServer brings a fresh server up over an existing database on a
// specific address (the one a closed server just vacated).
func restartServer(t *testing.T, db *core.DB, addr string, cfg ServerConfig) *Server {
	t.Helper()
	srv := NewServerWith(db, cfg)
	srv.SetLogf(func(string, ...any) {})
	if _, err := srv.Listen(addr); err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// autocommitCreate creates path outside any transaction.
func autocommitCreate(t *testing.T, c *Client, path string) {
	t.Helper()
	fd, err := c.PCreat(path, core.CreateOpts{})
	if err != nil {
		t.Fatalf("creating %s: %v", path, err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatalf("closing %s: %v", path, err)
	}
}

// TestServerCloseDrainsMidRequest: Close must let an in-flight request
// finish and must return within a bounded multiple of the grace period
// even though the (idle) connection never hangs up on its own.
func TestServerCloseDrainsMidRequest(t *testing.T) {
	cfg := ServerConfig{IdleTimeout: time.Minute, GracePeriod: 400 * time.Millisecond}
	hook := func(op byte, payload []byte) {
		if op == OpStats {
			time.Sleep(150 * time.Millisecond)
		}
	}
	srv, addr, _ := startServerCfg(t, cfg, hook)
	c := dial(t, addr, "drain")

	done := make(chan error, 1)
	go func() {
		_, err := c.Stats()
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the slow handler

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	elapsed := time.Since(start)
	if err := <-done; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	// Two grace periods (drain, then force-close settle) plus slack.
	if elapsed > 3*time.Second {
		t.Fatalf("Close took %v; shutdown is not bounded", elapsed)
	}
}

// TestHandlerPanicIsolated: a request that panics inside its handler
// must produce an error reply and a torn-down connection — with the
// panicking transaction's locks released — while the server keeps
// serving everyone else.
func TestHandlerPanicIsolated(t *testing.T) {
	hook := func(op byte, payload []byte) {
		if op == OpMkdir && bytes.Contains(payload, []byte("boom")) {
			panic("injected handler fault")
		}
	}
	_, addr, _ := startServerCfg(t, ServerConfig{IdleTimeout: time.Minute}, hook)

	c1 := dial(t, addr, "victim")
	if err := c1.PBegin(); err != nil {
		t.Fatal(err)
	}
	if err := c1.Mkdir("/held"); err != nil {
		t.Fatal(err)
	}
	err := c1.Mkdir("/boom")
	if err == nil || !strings.Contains(err.Error(), "internal server error") {
		t.Fatalf("panicked request error = %v, want internal server error", err)
	}
	// The connection was torn down after the reply; the non-reconnecting
	// client fails fast from here on.
	if _, err := c1.Stat("/", 0); !errors.Is(err, ErrConnLost) {
		t.Fatalf("call after panic teardown = %v, want ErrConnLost", err)
	}

	// The server survived and the victim's transaction was aborted:
	// another client can take the same locks and commit.
	c2 := dial(t, addr, "survivor")
	if err := c2.PBegin(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Mkdir("/held"); err != nil {
		t.Fatalf("locks not released after panic teardown: %v", err)
	}
	if err := c2.PCommit(); err != nil {
		t.Fatal(err)
	}
}

// TestWireDeadlockSurfaced: a deadlock between two remote transactions
// must reach the victim as txn.ErrDeadlock (matchable with errors.Is
// across the wire), and aborting the victim must free the survivor to
// commit.
func TestWireDeadlockSurfaced(t *testing.T) {
	_, addr, _ := startServerCfg(t, ServerConfig{IdleTimeout: time.Minute}, nil)
	c1 := dial(t, addr, "t1")
	c2 := dial(t, addr, "t2")
	autocommitCreate(t, c1, "/a")
	autocommitCreate(t, c1, "/b")

	if err := c1.PBegin(); err != nil {
		t.Fatal(err)
	}
	if err := c2.PBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.POpen("/a", true, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.POpen("/b", true, 0); err != nil {
		t.Fatal(err)
	}

	blocked := make(chan error, 1)
	go func() {
		_, err := c2.POpen("/a", true, 0) // queues behind c1's lock
		blocked <- err
	}()
	time.Sleep(100 * time.Millisecond) // let c2 start waiting server-side

	_, err := c1.POpen("/b", true, 0) // closes the cycle; c1 is the victim
	if !errors.Is(err, txn.ErrDeadlock) {
		t.Fatalf("deadlock victim error = %v, want txn.ErrDeadlock", err)
	}
	if !strings.Contains(err.Error(), "deadlock detected") {
		t.Fatalf("deadlock message = %q", err.Error())
	}

	// Victim aborts; the survivor's blocked open proceeds and commits.
	if err := c1.PAbort(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-blocked:
		if err != nil {
			t.Fatalf("survivor open after victim abort: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("survivor still blocked after victim aborted")
	}
	if err := c2.PCommit(); err != nil {
		t.Fatalf("survivor commit: %v", err)
	}
}

// TestReaperFreesDeadClientLocks: a client that goes silent while
// holding locks (a kill -9'd process with its socket still open) must
// have its transaction reaped after the idle timeout so waiters get the
// locks; if the client comes back it is told distinctly that its
// transaction was reaped, and the connection keeps serving.
func TestReaperFreesDeadClientLocks(t *testing.T) {
	cfg := ServerConfig{IdleTimeout: 200 * time.Millisecond, GracePeriod: time.Second}
	_, addr, _ := startServerCfg(t, cfg, nil)

	c1 := dial(t, addr, "frozen")
	autocommitCreate(t, c1, "/locked")
	if err := c1.PBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.POpen("/locked", true, 0); err != nil {
		t.Fatal(err)
	}
	// c1 now goes silent, holding an exclusive lock.

	c2 := dial(t, addr, "heir")
	if err := c2.PBegin(); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c2.POpen("/locked", true, 0); err != nil {
		t.Fatalf("waiter after reap: %v", err)
	}
	waited := time.Since(start)
	if waited < 100*time.Millisecond {
		t.Fatalf("lock granted after %v; it was never held", waited)
	}

	// The frozen client wakes up: its next request is answered with the
	// distinct reap error, not a generic failure, and the connection
	// stays usable.
	err := c1.PCommit()
	if !errors.Is(err, core.ErrReaped) {
		t.Fatalf("commit after reap = %v, want core.ErrReaped", err)
	}
	if _, err := c1.Stat("/locked", 0); err != nil {
		t.Fatalf("connection unusable after reap reply: %v", err)
	}

	if err := c2.PCommit(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadConnAbortsTransaction: when a lock-holding client's socket
// closes outright (process killed, FIN delivered), the server aborts
// its transaction on EOF and waiters proceed.
func TestDeadConnAbortsTransaction(t *testing.T) {
	_, addr, _ := startServerCfg(t, ServerConfig{IdleTimeout: time.Minute}, nil)
	c1 := dial(t, addr, "killed")
	autocommitCreate(t, c1, "/k")
	if err := c1.PBegin(); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.POpen("/k", true, 0); err != nil {
		t.Fatal(err)
	}
	c1.Close() // dies without aborting

	c2 := dial(t, addr, "after")
	if err := c2.PBegin(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c2.POpen("/k", true, 0)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("open after client death: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dead client's locks never released")
	}
	if err := c2.PCommit(); err != nil {
		t.Fatal(err)
	}
}

// TestClientReconnectsAfterServerRestart: a reconnecting client must
// ride out a server restart — backing off until the listener is back —
// and then complete a read successfully.
func TestClientReconnectsAfterServerRestart(t *testing.T) {
	srv1, addr, db := startServerCfg(t, ServerConfig{GracePeriod: 100 * time.Millisecond}, nil)
	c, err := DialWithConfig(DialConfig{
		Addr: addr, Owner: "phoenix",
		MaxRetries:  8,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  200 * time.Millisecond,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	fd, err := c.PCreat("/r.txt", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PWrite(fd, []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}

	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	// Bring the server back only after a delay, so the client's first
	// reconnect attempts fail and it has to back off.
	const downFor = 100 * time.Millisecond
	restarted := make(chan *Server, 1)
	go func() {
		time.Sleep(downFor)
		srv := NewServerWith(db, ServerConfig{})
		srv.SetLogf(func(string, ...any) {})
		if _, err := srv.Listen(addr); err != nil {
			srv = nil
		}
		restarted <- srv
	}()

	start := time.Now()
	attr, err := c.Stat("/r.txt", 0)
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	if attr.Size != int64(len("survives")) {
		t.Fatalf("stat size = %d, want %d", attr.Size, len("survives"))
	}
	if time.Since(start) < downFor {
		t.Fatalf("read succeeded in %v, before the server was back", time.Since(start))
	}
	srv2 := <-restarted
	if srv2 == nil {
		t.Fatal("restarted server failed to listen")
	}
	t.Cleanup(func() { srv2.Close() })
}

// TestInTxMutationNotRetriedOnConnLoss: losing the connection mid-
// transaction must abort the transaction, fail the interrupted mutation
// with ErrConnLost rather than silently replaying it (the restarted
// server is listening, so a retry WOULD succeed if attempted), report
// the loss at commit, and leave the client able to run a fresh
// transaction end to end.
func TestInTxMutationNotRetriedOnConnLoss(t *testing.T) {
	srv1, addr, db := startServerCfg(t, ServerConfig{GracePeriod: 100 * time.Millisecond}, nil)
	c, err := DialWithConfig(DialConfig{
		Addr: addr, Owner: "cursed",
		MaxRetries:  8,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	if err := c.PBegin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/pre"); err != nil {
		t.Fatal(err)
	}

	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	restartServer(t, db, addr, ServerConfig{})

	err = c.Mkdir("/lost")
	if !errors.Is(err, ErrConnLost) {
		t.Fatalf("in-tx mutation after conn loss = %v, want ErrConnLost", err)
	}
	err = c.PCommit()
	if !errors.Is(err, ErrConnLost) || !strings.Contains(err.Error(), "transaction lost") {
		t.Fatalf("commit after conn loss = %v, want transaction-lost ErrConnLost", err)
	}

	// A fresh transaction reconnects and works end to end.
	if err := c.PBegin(); err != nil {
		t.Fatalf("begin after reconnect: %v", err)
	}
	if err := c.Mkdir("/after"); err != nil {
		t.Fatal(err)
	}
	if err := c.PCommit(); err != nil {
		t.Fatal(err)
	}

	if _, err := c.Stat("/lost", 0); err == nil {
		t.Fatal("interrupted in-tx mutation was silently retried")
	}
	if _, err := c.Stat("/pre", 0); err == nil {
		t.Fatal("aborted transaction's mkdir is visible")
	}
	if _, err := c.Stat("/after", 0); err != nil {
		t.Fatalf("post-reconnect commit not visible: %v", err)
	}
}

// TestTxLostFailsMutationsAfterSilentReadRetry: when the connection
// dies mid-transaction and a retryable read is what discovers the loss
// (reconnecting silently), a subsequent mutation must NOT run in
// autocommit on the fresh connection — it fails with ErrConnLost until
// the application starts over, or the re-run of the transaction would
// duplicate it.
func TestTxLostFailsMutationsAfterSilentReadRetry(t *testing.T) {
	srv1, addr, db := startServerCfg(t, ServerConfig{GracePeriod: 100 * time.Millisecond}, nil)
	c, err := DialWithConfig(DialConfig{
		Addr: addr, Owner: "sneaky",
		MaxRetries:  8,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	if err := c.PBegin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/pre"); err != nil {
		t.Fatal(err)
	}

	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}
	restartServer(t, db, addr, ServerConfig{})

	// The read discovers the loss and silently reconnects.
	if _, err := c.Stat("/", 0); err != nil {
		t.Fatalf("idempotent read after conn loss: %v", err)
	}
	// Every mutation inside the dead bracket must now fail loudly.
	if err := c.Mkdir("/lost"); !errors.Is(err, ErrConnLost) {
		t.Fatalf("mkdir after silent read retry = %v, want ErrConnLost", err)
	}
	if err := c.Rename("/pre", "/moved"); !errors.Is(err, ErrConnLost) {
		t.Fatalf("rename after silent read retry = %v, want ErrConnLost", err)
	}
	if err := c.PCommit(); !errors.Is(err, ErrConnLost) {
		t.Fatalf("commit after conn loss = %v, want ErrConnLost", err)
	}

	// Nothing from the dead bracket reached the store, and the re-run
	// applies exactly once.
	if _, err := c.Stat("/lost", 0); err == nil {
		t.Fatal("post-loss mutation slipped into autocommit")
	}
	if err := c.PBegin(); err != nil {
		t.Fatal(err)
	}
	if err := c.Mkdir("/lost"); err != nil {
		t.Fatalf("re-run mkdir: %v", err)
	}
	if err := c.PCommit(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/lost", 0); err != nil {
		t.Fatalf("re-run commit not visible: %v", err)
	}
}

// TestCloseInterruptsRetryingCall: Close must not wait behind a call
// that is sleeping out its reconnect backoff schedule, and the call
// itself must fail promptly with ErrConnLost instead of exhausting its
// retries against a server that is never coming back.
func TestCloseInterruptsRetryingCall(t *testing.T) {
	srv, addr, _ := startServerCfg(t, ServerConfig{GracePeriod: 50 * time.Millisecond}, nil)
	c, err := DialWithConfig(DialConfig{
		Addr: addr, Owner: "impatient",
		MaxRetries:  1000,
		BackoffBase: 200 * time.Millisecond,
		BackoffMax:  5 * time.Second,
		DialTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := c.Stat("/", 0)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the call enter the retry loop

	start := time.Now()
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close blocked %v behind a retrying call", elapsed)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrConnLost) {
			t.Fatalf("interrupted call = %v, want ErrConnLost", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("retrying call not interrupted by Close")
	}
}

// TestBrokenClientFailsFast: with reconnection disabled, the first
// transport error marks the client broken and later calls fail
// immediately with ErrConnLost instead of hanging on a dead socket.
func TestBrokenClientFailsFast(t *testing.T) {
	srv, addr, _ := startServerCfg(t, ServerConfig{GracePeriod: 50 * time.Millisecond}, nil)
	c := dial(t, addr, "broken")
	if _, err := c.Stat("/", 0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/", 0); !errors.Is(err, ErrConnLost) {
		t.Fatalf("first call on dead conn = %v, want ErrConnLost", err)
	}
	start := time.Now()
	if _, err := c.Stat("/", 0); !errors.Is(err, ErrConnLost) {
		t.Fatalf("second call = %v, want ErrConnLost", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("broken client took %v to fail; want fail-fast", elapsed)
	}
}
