package wire

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// TestSysViewLocksOverWire is the PR's aha moment: a second client can
// watch the first client's open transaction and the lock it holds, via
// plain POSTQUEL over the unchanged wire protocol.
func TestSysViewLocksOverWire(t *testing.T) {
	_, addr, _ := startServer(t)
	holder := dial(t, addr, "holder")
	watcher := dial(t, addr, "watcher")

	if err := holder.PBegin(); err != nil {
		t.Fatal(err)
	}
	fd, err := holder.PCreat("/locked.txt", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := holder.PWrite(fd, []byte("mine until commit")); err != nil {
		t.Fatal(err)
	}

	res, err := watcher.Query(`retrieve (l.txn, l.mode, l.rel)
		from l in inv_locks where l.granted and l.mode = "exclusive"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no exclusive locks visible while holder txn is open")
	}
	holderTxn := res.Rows[0][0].I

	res, err = watcher.Query(`retrieve (t.xid, t.state, t.relation)
		from t in inv_transactions`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range res.Rows {
		if row[0].I == holderTxn {
			found = true
			if row[1].S != "in-progress" {
				t.Fatalf("holder txn state = %q", row[1].S)
			}
			if !strings.HasPrefix(row[2].S, "inv") {
				t.Fatalf("holder txn relation = %q, want inv<oid>", row[2].S)
			}
		}
	}
	if !found {
		t.Fatalf("lock-holding txn %d missing from inv_transactions", holderTxn)
	}

	if err := holder.PCommit(); err != nil {
		t.Fatal(err)
	}
	res, err = watcher.Query(fmt.Sprintf(
		`retrieve (l.txn) from l in inv_locks where l.txn = %d`, holderTxn))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("locks survived commit: %v", res.Rows)
	}
}

// TestSysViewAllCatalogsOverWire exercises every registered catalog
// through the wire path and checks the ones with guaranteed content
// actually return rows.
func TestSysViewAllCatalogsOverWire(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr, "mao")

	// Generate state: a committed file populates the heap relations, the
	// op histograms, and the trace ring.
	writeRemote(t, c, "/seed.txt", []byte("rows for everyone"))

	// Discover the catalogs from the meta-catalog itself.
	res, err := c.Query(`retrieve (c.relation) from c in inv_columns`)
	if err != nil {
		t.Fatal(err)
	}
	rels := map[string]bool{}
	for _, row := range res.Rows {
		rels[row[0].S] = true
	}
	want := []string{
		"inv_stat_ops", "inv_stat_buffer", "inv_locks", "inv_transactions",
		"inv_relations", "inv_vacuum", "inv_traces", "inv_columns",
	}
	for _, name := range want {
		if !rels[name] {
			t.Errorf("catalog %s missing from inv_columns", name)
		}
	}

	// Every catalog must answer a full-row query without error.
	for name := range rels {
		if _, err := c.Query(fmt.Sprintf(`retrieve (x.%s) from x in %s`,
			firstColumn(t, c, name), name)); err != nil {
			t.Errorf("query over %s: %v", name, err)
		}
	}

	// Catalogs with guaranteed content return rows: the wire ops above
	// populate the op histograms and the trace ring, the pool has cached
	// pages, and the seed file lives in heap relations.
	for _, q := range []string{
		`retrieve (o.op, o.count, o.p99_ns) from o in inv_stat_ops where o.count > 0`,
		`retrieve (b.shard, b.hits) from b in inv_stat_buffer`,
		`retrieve (r.name, r.live) from r in inv_relations where r.name = "naming" and r.live > 0`,
		`retrieve (t.op, t.wall_ns, t.outcome) from t in inv_traces where t.outcome = "ok"`,
	} {
		res, err := c.Query(q)
		if err != nil {
			t.Fatalf("query %q: %v", q, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("query %q returned no rows", q)
		}
	}
}

// writeRemote creates a file over the wire in one autocommitted op
// sequence.
func writeRemote(t *testing.T, c *Client, path string, data []byte) {
	t.Helper()
	fd, err := c.PCreat(path, core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PWrite(fd, data); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}
}

func firstColumn(t *testing.T, c *Client, rel string) string {
	t.Helper()
	res, err := c.Query(fmt.Sprintf(
		`retrieve (c.column) from c in inv_columns where c.relation = "%s" limit 1`, rel))
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("no columns for %s: %v", rel, err)
	}
	return res.Rows[0][0].S
}

// TestAsofOverVirtualWire: time travel over a live catalog is a loud,
// specific error — not silently-current rows.
func TestAsofOverVirtualWire(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr, "mao")
	_, err := c.Query(`retrieve (l.txn) from l in inv_locks asof 12345`)
	if err == nil {
		t.Fatal("asof over inv_locks succeeded")
	}
	if !strings.Contains(err.Error(), "live-only") {
		t.Fatalf("asof error = %v, want live-only explanation", err)
	}
}

// TestStatOpsMatchesStatsV2: inv_stat_ops and the StatsV2 snapshot are
// two views over the same histograms; quiesced, their counts agree. The
// in-flight ops themselves ("query", "statsv2") are excluded — each
// records its own span after the response is built.
func TestStatOpsMatchesStatsV2(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr, "mao")

	writeRemote(t, c, "/a.txt", []byte("x"))
	if _, err := c.Stat("/a.txt", 0); err != nil {
		t.Fatal(err)
	}

	res, err := c.Query(`retrieve (o.op, o.count) from o in inv_stat_ops`)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.StatsV2()
	if err != nil {
		t.Fatal(err)
	}
	histCount := map[string]int64{}
	for _, h := range snap.Hists {
		histCount[h.Name] = h.Count
	}
	checked := 0
	for _, row := range res.Rows {
		op, count := row[0].S, row[1].I
		if op == "query" || op == "statsv2" {
			continue
		}
		want, ok := histCount["wire.op."+op+"_ns"]
		if !ok {
			t.Errorf("op %s missing from StatsV2 snapshot", op)
			continue
		}
		if count != want {
			t.Errorf("op %s: inv_stat_ops count %d != StatsV2 count %d", op, count, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no opcodes cross-checked")
	}
}

// TestSysViewConcurrentChurn runs catalog queries against live
// transaction and lock churn; under -race this proves the snapshot
// accessors are clean.
func TestSysViewConcurrentChurn(t *testing.T) {
	_, addr, _ := startServer(t)

	const writers, rounds = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dial(t, addr, fmt.Sprintf("writer-%d", w))
			for i := 0; i < rounds; i++ {
				if err := c.PBegin(); err != nil {
					t.Error(err)
					return
				}
				fd, err := c.PCreat(fmt.Sprintf("/churn-%d-%d", w, i), core.CreateOpts{})
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := c.PWrite(fd, []byte("busy")); err != nil {
					t.Error(err)
					return
				}
				if err := c.PCommit(); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c := dial(t, addr, fmt.Sprintf("reader-%d", r))
			queries := []string{
				`retrieve (l.txn, l.mode, l.waiters) from l in inv_locks`,
				`retrieve (t.xid, t.age_ms, t.relation) from t in inv_transactions`,
				`retrieve (b.shard, b.hit_ratio) from b in inv_stat_buffer where b.shard = "all"`,
				`retrieve (o.op, o.count) from o in inv_stat_ops sort by o.count desc limit 3`,
			}
			for i := 0; i < rounds*2; i++ {
				if _, err := c.Query(queries[i%len(queries)]); err != nil {
					t.Errorf("churn query: %v", err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
}
