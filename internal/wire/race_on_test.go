//go:build race

package wire

// spanAttributionFloor is the minimum per-layer-sum/wall ratio
// TestSpanAttributionCoversWall accepts. Race instrumentation inflates
// the request's uncharged CPU (chunk encoding, catalog work) 10-20x
// while the charged device sleeps stay fixed, so the floor drops; the
// attribution plumbing itself is identical in both builds and the
// strict 5% budget still runs in every non-race pass.
const spanAttributionFloor = 0.85
