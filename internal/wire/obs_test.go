package wire

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/typefuncs"
)

// findValue returns a named counter/gauge value from a snapshot section.
func findValue(t *testing.T, section []obs.NamedValue, name string) int64 {
	t.Helper()
	for _, nv := range section {
		if nv.Name == name {
			return nv.Value
		}
	}
	t.Fatalf("metric %q not in snapshot", name)
	return 0
}

func findHist(s obs.Snapshot, name string) (obs.HistogramSnapshot, bool) {
	for _, h := range s.Hists {
		if h.Name == name {
			return h, true
		}
	}
	return obs.HistogramSnapshot{}, false
}

// TestStatsV2RoundTrip drives real traffic through a server and checks
// that the statsv2 reply decodes into a snapshot whose per-layer series
// reflect that traffic.
func TestStatsV2RoundTrip(t *testing.T) {
	_, addr, _ := startServer(t)
	c := dial(t, addr, "obs")

	fd, err := c.PCreat("/obs.txt", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(strings.Repeat("metrics! ", 1024))
	if _, err := c.PWrite(fd, payload); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}
	fd, err = c.POpen("/obs.txt", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(payload))
	if _, err := c.PRead(fd, buf); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}

	snap, err := c.StatsV2()
	if err != nil {
		t.Fatal(err)
	}
	if got := findValue(t, snap.Counters, "wire.requests"); got < 6 {
		t.Errorf("wire.requests = %d, want >= 6", got)
	}
	if got := findValue(t, snap.Counters, "wire.bytes_out"); got < int64(len(payload)) {
		t.Errorf("wire.bytes_out = %d, want >= %d", got, len(payload))
	}
	// The gauges come from RefreshObsGauges on the statsv2 path.
	if got := findValue(t, snap.Gauges, "buffer.capacity_pages"); got != 128 {
		t.Errorf("buffer.capacity_pages = %d, want 128", got)
	}
	// Per-op latency histograms: the ops we issued must have samples.
	for _, op := range []string{"creat", "write", "open", "read", "close"} {
		h, ok := findHist(snap, "wire.op."+op+"_ns")
		if !ok {
			t.Errorf("histogram wire.op.%s_ns missing", op)
			continue
		}
		if h.Count < 1 {
			t.Errorf("wire.op.%s_ns count = 0, want >= 1", op)
		}
		if h.SumNs <= 0 {
			t.Errorf("wire.op.%s_ns sum = %d, want > 0", op, h.SumNs)
		}
	}
	// Buffer shards are merged by name, not here: the raw snapshot must
	// retain shard-level detail. At least one shard saw a hit.
	var shardHits int64
	for _, nv := range snap.Counters {
		if strings.HasPrefix(nv.Name, "buffer.shard") && strings.HasSuffix(nv.Name, ".hits") {
			shardHits += nv.Value
		}
	}
	if shardHits == 0 {
		t.Error("no buffer.shardNN.hits recorded across any shard")
	}

	// Ordering: the snapshot contract is sorted names in each section.
	for i := 1; i < len(snap.Counters); i++ {
		if snap.Counters[i-1].Name >= snap.Counters[i].Name {
			t.Fatalf("counters not sorted: %q before %q",
				snap.Counters[i-1].Name, snap.Counters[i].Name)
		}
	}

	// A second scrape must never go backwards.
	snap2, err := c.StatsV2()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := findValue(t, snap.Counters, "wire.requests"), findValue(t, snap2.Counters, "wire.requests"); b <= a {
		t.Errorf("wire.requests not monotonic: %d then %d", a, b)
	}
}

// crawlMem real-sleeps on every backend page transfer, so a request's
// wall time is dominated by charges the buffer pool attributes to its
// span. The sleep is outside any device lock.
type crawlMem struct {
	*device.Mem
	delay time.Duration
}

func (m crawlMem) ReadPage(rel device.OID, page uint32, buf []byte) error {
	time.Sleep(m.delay)
	return m.Mem.ReadPage(rel, page, buf)
}

func (m crawlMem) WritePage(rel device.OID, page uint32, buf []byte) error {
	time.Sleep(m.delay)
	return m.Mem.WritePage(rel, page, buf)
}

// TestSpanAttributionCoversWall is the acceptance check for the span
// plumbing: with a device slow enough that backend transfers dominate,
// the per-layer charges on a request's span (lock wait + buffer loads +
// buffer writes + commit force) must sum to within 5% of the measured
// wall latency. Untimed CPU between charges is the only slack, so a
// large gap means a layer lost track of time it spent.
func TestSpanAttributionCoversWall(t *testing.T) {
	if testing.Short() {
		t.Skip("real-sleep device")
	}
	// Large enough that the request's uncharged CPU (chunk encoding,
	// compression, catalog work — a few ms total) stays under the 5%
	// budget next to the charged device time. Race builds inflate that
	// CPU 10-20x, so the floor is relaxed there (race_on_test.go).
	const delay = 25 * time.Millisecond

	sw := device.NewSwitch()
	sw.Register(crawlMem{device.NewMem(nil, 0), delay})
	var mu sync.Mutex
	tick := int64(1 << 40)
	db, err := core.Open(sw, core.Options{
		// Far smaller than the working set, so the read below misses.
		Buffers: 8,
		TimeSource: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			tick += 1000
			return tick
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := typefuncs.RegisterAll(db.NewSession("setup")); err != nil {
		t.Fatal(err)
	}
	srv := NewServerWith(db, ServerConfig{})
	srv.SetLogf(func(string, ...any) {})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, addr, "attr")

	fd, err := c.PCreat("/big.bin", core.CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 200<<10)
	for i := range data {
		data[i] = byte(i)
	}
	if _, err := c.PWrite(fd, data); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}
	fd, err = c.POpen("/big.bin", false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PRead(fd, make([]byte, 64<<10)); err != nil {
		t.Fatal(err)
	}
	if err := c.PClose(fd); err != nil {
		t.Fatal(err)
	}

	spans := srv.Traces().Slowest()
	if len(spans) == 0 {
		t.Fatal("trace ring is empty")
	}
	// Check every span slow enough for timing noise not to matter: at
	// >= 10 device delays of wall, scheduler jitter is well under 5%.
	checked := 0
	for _, sp := range spans {
		if sp.WallNs < int64(10*delay) {
			continue
		}
		checked++
		sum := sp.LockWaitNs + sp.BufLoadNs + sp.BufWriteNs + sp.CommitNs
		ratio := float64(sum) / float64(sp.WallNs)
		t.Logf("op=%s wall=%s lock=%s load=%s write=%s force=%s sum/wall=%.3f",
			sp.Op, obs.FormatNs(sp.WallNs), obs.FormatNs(sp.LockWaitNs),
			obs.FormatNs(sp.BufLoadNs), obs.FormatNs(sp.BufWriteNs),
			obs.FormatNs(sp.CommitNs), ratio)
		if ratio < spanAttributionFloor {
			t.Errorf("op %s: per-layer sum %s covers only %.1f%% of wall %s (floor %.0f%%)",
				sp.Op, obs.FormatNs(sum), ratio*100, obs.FormatNs(sp.WallNs),
				spanAttributionFloor*100)
		}
		if ratio > 1.02 {
			t.Errorf("op %s: per-layer sum %s exceeds wall %s (double-charged?)",
				sp.Op, obs.FormatNs(sum), obs.FormatNs(sp.WallNs))
		}
		if sp.Outcome != "ok" {
			t.Errorf("op %s outcome = %q, want ok", sp.Op, sp.Outcome)
		}
	}
	if checked == 0 {
		t.Fatalf("no span exceeded %v wall; slowest was %s",
			10*delay, obs.FormatNs(spans[0].WallNs))
	}
}

// TestSlowOpLog checks the -slow-op path: with a threshold of 1ns every
// request logs a per-layer breakdown line.
func TestSlowOpLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	db := newTestDB(t)
	srv := NewServerWith(db, ServerConfig{SlowOp: time.Nanosecond})
	// Installed before Listen: logf must not change once conns exist.
	srv.SetLogf(func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, addr, "slow")
	if err := c.Mkdir("/slowdir"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	found := false
	for _, ln := range lines {
		if strings.Contains(ln, "slow op mkdir") && strings.Contains(ln, "wall=") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no slow-op line for mkdir in %d log lines: %q", len(lines), lines)
	}
}
