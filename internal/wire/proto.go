// Package wire implements the client/server access path to Inversion:
// "The current implementation requires programmers to link a special
// library in order to access Inversion file data" — this is that
// library, speaking a length-prefixed binary protocol over TCP (the
// paper's transport: "client/server communication was via TCP/IP over a
// 10 Mbit/sec Ethernet"). The client exposes the paper's interface
// routines: p_creat, p_open, p_close, p_read, p_write, p_lseek, and
// p_begin/p_commit/p_abort, plus the query monitor entry point.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/txn"
)

// Opcodes.
const (
	OpBegin byte = iota + 1
	OpCommit
	OpAbort
	OpCreat
	OpOpen
	OpClose
	OpRead
	OpWrite
	OpLseek
	OpTruncate
	OpMkdir
	OpUnlink
	OpRename
	OpReadDir
	OpStat
	OpQuery
	OpCall
	OpDefineType
	OpMigrate
	OpVacuum
	OpStats
	OpSetType
	OpStatsV2
	OpScrub
	OpWaitProfile
)

// opNames labels opcodes for metrics and traces. Indexed by opcode.
var opNames = [...]string{
	OpBegin: "begin", OpCommit: "commit", OpAbort: "abort",
	OpCreat: "creat", OpOpen: "open", OpClose: "close",
	OpRead: "read", OpWrite: "write", OpLseek: "lseek",
	OpTruncate: "truncate", OpMkdir: "mkdir", OpUnlink: "unlink",
	OpRename: "rename", OpReadDir: "readdir", OpStat: "stat",
	OpQuery: "query", OpCall: "call", OpDefineType: "deftype",
	OpMigrate: "migrate", OpVacuum: "vacuum", OpStats: "stats",
	OpSetType: "settype", OpStatsV2: "statsv2", OpScrub: "scrub",
	OpWaitProfile: "waitprofile",
}

// OpName reports the metric label for an opcode ("op<N>" if unknown).
func OpName(op byte) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op%d", op)
}

// opTraceFlag is the high bit of a request's op byte. When set, the
// payload begins with a fixed-size trace context (traceCtxLen bytes)
// ahead of the op's own payload. Opcodes stay below 0x80, so the flag
// never collides with a real op, and servers that predate it reject
// the unknown op loudly instead of misparsing the payload.
const opTraceFlag byte = 0x80

// traceCtx is the trace context a client attaches to each request:
// the 128-bit trace id shared by every op of a logical transaction,
// the client-side parent span that minted it, a sampled flag, and an
// attempt counter so a retried op is visibly the same logical op on
// its Nth try rather than a fresh one.
type traceCtx struct {
	Hi, Lo  uint64
	Parent  uint64
	Sampled bool
	Attempt uint8
}

// traceCtxLen is the encoded size: 3×u64 + flags byte + attempt byte.
const traceCtxLen = 26

// appendTraceCtx prepends nothing — it appends the encoded context to
// dst (callers build the full payload as ctx || op payload).
func appendTraceCtx(dst []byte, tc traceCtx) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, tc.Hi)
	dst = binary.LittleEndian.AppendUint64(dst, tc.Lo)
	dst = binary.LittleEndian.AppendUint64(dst, tc.Parent)
	var flags byte
	if tc.Sampled {
		flags = 1
	}
	return append(dst, flags, tc.Attempt)
}

// splitTraceCtx strips the trace flag and context (if present) off an
// incoming request, returning the bare op and the op's own payload.
func splitTraceCtx(op byte, payload []byte) (byte, []byte, traceCtx, bool, error) {
	if op&opTraceFlag == 0 {
		return op, payload, traceCtx{}, false, nil
	}
	if len(payload) < traceCtxLen {
		return op, payload, traceCtx{}, false,
			fmt.Errorf("wire: truncated trace context (%d bytes)", len(payload))
	}
	tc := traceCtx{
		Hi:      binary.LittleEndian.Uint64(payload[0:8]),
		Lo:      binary.LittleEndian.Uint64(payload[8:16]),
		Parent:  binary.LittleEndian.Uint64(payload[16:24]),
		Sampled: payload[24]&1 != 0,
		Attempt: payload[25],
	}
	return op &^ opTraceFlag, payload[traceCtxLen:], tc, true, nil
}

// Response status codes.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// Error codes carried in the first byte of a statusErr payload, so
// clients can match sentinel errors (deadlock, reap) without parsing
// message text.
const (
	errCodeGeneric  byte = 0
	errCodeDeadlock byte = 1
	errCodeReaped   byte = 2
)

// errFrame encodes an error reply payload: code byte + message.
func errFrame(err error) []byte {
	code := errCodeGeneric
	switch {
	case errors.Is(err, txn.ErrDeadlock):
		code = errCodeDeadlock
	case errors.Is(err, core.ErrReaped):
		code = errCodeReaped
	}
	msg := err.Error()
	buf := make([]byte, 1+len(msg))
	buf[0] = code
	copy(buf[1:], msg)
	return buf
}

// decodeErrFrame is the client-side inverse of errFrame.
func decodeErrFrame(payload []byte) *RemoteError {
	if len(payload) == 0 {
		return &RemoteError{Msg: "unknown error"}
	}
	return &RemoteError{Code: payload[0], Msg: string(payload[1:])}
}

// maxMessage bounds a single protocol message.
const maxMessage = 1 << 24

// writeMsg sends one framed message: u32 length | kind | payload.
func writeMsg(w io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMsg receives one framed message.
func readMsg(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxMessage {
		return 0, nil, fmt.Errorf("wire: bad message length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// RemoteError is an error reported by the server. Code classifies the
// failure; errors.Is(err, txn.ErrDeadlock) and errors.Is(err,
// core.ErrReaped) match the corresponding codes, so remote sentinel
// errors behave like local ones.
type RemoteError struct {
	Code byte
	Msg  string
}

func (e *RemoteError) Error() string { return "inversion server: " + e.Msg }

// Is maps wire error codes back onto the sentinel errors they encode.
func (e *RemoteError) Is(target error) bool {
	switch e.Code {
	case errCodeDeadlock:
		return target == txn.ErrDeadlock
	case errCodeReaped:
		return target == core.ErrReaped
	}
	return false
}
