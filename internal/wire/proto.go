// Package wire implements the client/server access path to Inversion:
// "The current implementation requires programmers to link a special
// library in order to access Inversion file data" — this is that
// library, speaking a length-prefixed binary protocol over TCP (the
// paper's transport: "client/server communication was via TCP/IP over a
// 10 Mbit/sec Ethernet"). The client exposes the paper's interface
// routines: p_creat, p_open, p_close, p_read, p_write, p_lseek, and
// p_begin/p_commit/p_abort, plus the query monitor entry point.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Opcodes.
const (
	OpBegin byte = iota + 1
	OpCommit
	OpAbort
	OpCreat
	OpOpen
	OpClose
	OpRead
	OpWrite
	OpLseek
	OpTruncate
	OpMkdir
	OpUnlink
	OpRename
	OpReadDir
	OpStat
	OpQuery
	OpCall
	OpDefineType
	OpMigrate
	OpVacuum
	OpStats
	OpSetType
)

// Response status codes.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

// maxMessage bounds a single protocol message.
const maxMessage = 1 << 24

// writeMsg sends one framed message: u32 length | kind | payload.
func writeMsg(w io.Writer, kind byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(payload)))
	hdr[4] = kind
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readMsg receives one framed message.
func readMsg(r io.Reader) (kind byte, payload []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxMessage {
		return 0, nil, fmt.Errorf("wire: bad message length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// RemoteError is an error reported by the server.
type RemoteError struct{ Msg string }

func (e *RemoteError) Error() string { return "inversion server: " + e.Msg }
