// Package satgen generates synthetic multi-band satellite images
// standing in for the Thematic Mapper scenes the Berkeley installation
// stored ("Inversion currently stores several hundred satellite images
// from the Thematic Mapper satellite, a device which records five
// spectral bands for each image"). The real Sequoia 2000 scenes are not
// available, so images are synthesized with a planted snow mask; the
// snow() classification function recovers the planted fraction, which
// lets tests assert exact expected values.
package satgen

import "encoding/binary"

// Bands is the number of spectral bands per image.
const Bands = 5

// Snow-pixel convention: a pixel is snow when its first two bands are
// both at or above SnowThreshold. The generator plants values on either
// side of the threshold; classifiers recover them.
const SnowThreshold = 200

// Image is a decoded multi-band scene. Pixel (x, y) of band b is at
// Pix[b][y*Width+x].
type Image struct {
	Width, Height int
	Pix           [Bands][]byte
}

// Params configures generation.
type Params struct {
	Width, Height int
	SnowFraction  float64 // fraction of pixels planted as snow
	Seed          uint64
}

const magic = 0x4d49_4d54 // "TMIM"

// Generate builds a synthetic scene with approximately SnowFraction of
// its pixels planted as snow (deterministic for a given seed).
func Generate(p Params) *Image {
	img := &Image{Width: p.Width, Height: p.Height}
	n := p.Width * p.Height
	for b := 0; b < Bands; b++ {
		img.Pix[b] = make([]byte, n)
	}
	rng := p.Seed*2862933555777941757 + 3037000493
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 33
	}
	threshold := uint64(p.SnowFraction * (1 << 20))
	for i := 0; i < n; i++ {
		snow := next()%(1<<20) < threshold
		for b := 0; b < Bands; b++ {
			v := byte(next() % 180) // background stays below threshold
			if snow && b < 2 {
				v = SnowThreshold + byte(next()%(256-SnowThreshold))
			}
			img.Pix[b][i] = v
		}
	}
	return img
}

// Encode serialises the image: magic, width, height, bands, then
// band-major pixel bytes.
func (img *Image) Encode() []byte {
	n := img.Width * img.Height
	out := make([]byte, 16+Bands*n)
	binary.LittleEndian.PutUint32(out[0:], magic)
	binary.LittleEndian.PutUint32(out[4:], uint32(img.Width))
	binary.LittleEndian.PutUint32(out[8:], uint32(img.Height))
	binary.LittleEndian.PutUint32(out[12:], Bands)
	off := 16
	for b := 0; b < Bands; b++ {
		copy(out[off:], img.Pix[b])
		off += n
	}
	return out
}

// Decode parses an encoded image.
func Decode(data []byte) (*Image, bool) {
	if len(data) < 16 || binary.LittleEndian.Uint32(data[0:]) != magic {
		return nil, false
	}
	w := int(binary.LittleEndian.Uint32(data[4:]))
	h := int(binary.LittleEndian.Uint32(data[8:]))
	bands := int(binary.LittleEndian.Uint32(data[12:]))
	n := w * h
	if w <= 0 || h <= 0 || bands != Bands || len(data) < 16+Bands*n {
		return nil, false
	}
	img := &Image{Width: w, Height: h}
	off := 16
	for b := 0; b < Bands; b++ {
		img.Pix[b] = data[off : off+n]
		off += n
	}
	return img, true
}

// SnowCount counts planted snow pixels.
func (img *Image) SnowCount() int {
	n := 0
	for i := range img.Pix[0] {
		if img.Pix[0][i] >= SnowThreshold && img.Pix[1][i] >= SnowThreshold {
			n++
		}
	}
	return n
}

// PixelCount reports the number of pixels per band.
func (img *Image) PixelCount() int { return img.Width * img.Height }

// PixelAvg reports the mean pixel value across all bands.
func (img *Image) PixelAvg() float64 {
	total := 0.0
	n := 0
	for b := 0; b < Bands; b++ {
		for _, v := range img.Pix[b] {
			total += float64(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// GetPixel reads pixel (x, y) of a band.
func (img *Image) GetPixel(band, x, y int) (byte, bool) {
	if band < 0 || band >= Bands || x < 0 || x >= img.Width || y < 0 || y >= img.Height {
		return 0, false
	}
	return img.Pix[band][y*img.Width+x], true
}

// GetBand returns one band's pixels.
func (img *Image) GetBand(band int) ([]byte, bool) {
	if band < 0 || band >= Bands {
		return nil, false
	}
	return img.Pix[band], true
}
