package satgen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := Generate(Params{Width: 17, Height: 9, SnowFraction: 0.3, Seed: 42})
	data := img.Encode()
	got, ok := Decode(data)
	if !ok {
		t.Fatal("decode failed")
	}
	if got.Width != 17 || got.Height != 9 {
		t.Fatalf("dims = %dx%d", got.Width, got.Height)
	}
	for b := 0; b < Bands; b++ {
		for i := range img.Pix[b] {
			if img.Pix[b][i] != got.Pix[b][i] {
				t.Fatalf("band %d pixel %d differs", b, i)
			}
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 15),
		Generate(Params{Width: 4, Height: 4, Seed: 1}).Encode()[:20], // truncated
	}
	for i, b := range bad {
		if _, ok := Decode(b); ok {
			t.Errorf("case %d decoded", i)
		}
	}
}

func TestSnowFractionPlanted(t *testing.T) {
	for _, frac := range []float64{0, 0.25, 0.5, 0.9, 1} {
		img := Generate(Params{Width: 100, Height: 100, SnowFraction: frac, Seed: 7})
		got := float64(img.SnowCount()) / float64(img.PixelCount())
		if math.Abs(got-frac) > 0.05 {
			t.Errorf("planted %.2f, recovered %.3f", frac, got)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Generate(Params{Width: 8, Height: 8, SnowFraction: 0.5, Seed: 3})
	b := Generate(Params{Width: 8, Height: 8, SnowFraction: 0.5, Seed: 3})
	c := Generate(Params{Width: 8, Height: 8, SnowFraction: 0.5, Seed: 4})
	if string(a.Encode()) != string(b.Encode()) {
		t.Fatal("same seed differs")
	}
	if string(a.Encode()) == string(c.Encode()) {
		t.Fatal("different seeds identical")
	}
}

func TestGetPixelAndBandBounds(t *testing.T) {
	img := Generate(Params{Width: 4, Height: 3, Seed: 1})
	if _, ok := img.GetPixel(0, 3, 2); !ok {
		t.Fatal("valid pixel rejected")
	}
	bad := [][3]int{{-1, 0, 0}, {Bands, 0, 0}, {0, 4, 0}, {0, 0, 3}}
	for _, c := range bad {
		if _, ok := img.GetPixel(c[0], c[1], c[2]); ok {
			t.Errorf("out-of-range pixel %v accepted", c)
		}
	}
	if b, ok := img.GetBand(2); !ok || len(b) != 12 {
		t.Fatalf("GetBand = %d bytes, %v", len(b), ok)
	}
	if _, ok := img.GetBand(Bands); ok {
		t.Fatal("bad band accepted")
	}
}

func TestPixelAvgBounds(t *testing.T) {
	img := Generate(Params{Width: 16, Height: 16, SnowFraction: 0.5, Seed: 5})
	avg := img.PixelAvg()
	if avg <= 0 || avg >= 255 {
		t.Fatalf("avg = %f", avg)
	}
}

func TestPropertyRoundTripAnyDims(t *testing.T) {
	f := func(w, h uint8, frac float64, seed uint64) bool {
		width, height := int(w%40)+1, int(h%40)+1
		img := Generate(Params{Width: width, Height: height,
			SnowFraction: math.Mod(math.Abs(frac), 1), Seed: seed})
		got, ok := Decode(img.Encode())
		return ok && got.Width == width && got.Height == height &&
			got.SnowCount() == img.SnowCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
