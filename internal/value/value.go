// Package value defines the dynamically typed values exchanged between
// the query language, user-defined functions, and file metadata.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates value types.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindList // list of strings (e.g. keywords(file))
)

// V is one dynamically typed value.
type V struct {
	Kind Kind
	I    int64
	F    float64
	S    string
	B    bool
	L    []string
}

// Constructors.

// Null returns the null value.
func Null() V { return V{Kind: KindNull} }

// Int returns an integer value.
func Int(i int64) V { return V{Kind: KindInt, I: i} }

// Float returns a floating-point value.
func Float(f float64) V { return V{Kind: KindFloat, F: f} }

// Str returns a string value.
func Str(s string) V { return V{Kind: KindString, S: s} }

// Bool returns a boolean value.
func Bool(b bool) V { return V{Kind: KindBool, B: b} }

// List returns a list-of-strings value.
func List(l []string) V { return V{Kind: KindList, L: l} }

// IsNull reports whether v is null.
func (v V) IsNull() bool { return v.Kind == KindNull }

// AsFloat converts numeric values to float64.
func (v V) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindInt:
		return float64(v.I), true
	case KindFloat:
		return v.F, true
	default:
		return 0, false
	}
}

// Truthy reports boolean truth for predicates.
func (v V) Truthy() bool {
	switch v.Kind {
	case KindBool:
		return v.B
	case KindInt:
		return v.I != 0
	case KindFloat:
		return v.F != 0
	case KindString:
		return v.S != ""
	case KindList:
		return len(v.L) > 0
	default:
		return false
	}
}

// Equal compares two values, coercing numerics.
func Equal(a, b V) bool {
	if af, ok := a.AsFloat(); ok {
		if bf, ok := b.AsFloat(); ok {
			return af == bf
		}
		return false
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindString:
		return a.S == b.S
	case KindBool:
		return a.B == b.B
	case KindNull:
		return true
	case KindList:
		if len(a.L) != len(b.L) {
			return false
		}
		for i := range a.L {
			if a.L[i] != b.L[i] {
				return false
			}
		}
		return true
	}
	return false
}

// Compare orders two values: -1, 0, +1. Mixed numeric kinds coerce;
// anything else compares as strings of their display form.
func Compare(a, b V) int {
	if af, aok := a.AsFloat(); aok {
		if bf, bok := b.AsFloat(); bok {
			switch {
			case af < bf:
				return -1
			case af > bf:
				return 1
			default:
				return 0
			}
		}
	}
	return strings.Compare(a.String(), b.String())
}

// Contains reports whether the list (or string) v contains s.
func (v V) Contains(s string) bool {
	switch v.Kind {
	case KindList:
		for _, x := range v.L {
			if x == s {
				return true
			}
		}
		return false
	case KindString:
		return strings.Contains(v.S, s)
	default:
		return false
	}
}

// String renders the value for display.
func (v V) String() string {
	switch v.Kind {
	case KindNull:
		return "null"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return v.S
	case KindBool:
		return strconv.FormatBool(v.B)
	case KindList:
		return "{" + strings.Join(v.L, ", ") + "}"
	default:
		return fmt.Sprintf("value?%d", int(v.Kind))
	}
}
