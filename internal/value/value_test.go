package value

import "testing"

func TestConstructorsAndString(t *testing.T) {
	cases := []struct {
		v    V
		want string
	}{
		{Null(), "null"},
		{Int(-5), "-5"},
		{Float(2.5), "2.5"},
		{Str("abc"), "abc"},
		{Bool(true), "true"},
		{List([]string{"a", "b"}), "{a, b}"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestAsFloat(t *testing.T) {
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Fatalf("Int AsFloat = %v %v", f, ok)
	}
	if f, ok := Float(1.5).AsFloat(); !ok || f != 1.5 {
		t.Fatalf("Float AsFloat = %v %v", f, ok)
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Fatal("string converted to float")
	}
}

func TestTruthy(t *testing.T) {
	truthy := []V{Int(1), Float(0.1), Str("x"), Bool(true), List([]string{"a"})}
	falsy := []V{Null(), Int(0), Float(0), Str(""), Bool(false), List(nil)}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v not truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v truthy", v)
		}
	}
}

func TestEqualCoercesNumerics(t *testing.T) {
	if !Equal(Int(2), Float(2.0)) {
		t.Fatal("2 != 2.0")
	}
	if Equal(Int(2), Str("2")) {
		t.Fatal("2 == \"2\"")
	}
	if !Equal(Str("a"), Str("a")) || Equal(Str("a"), Str("b")) {
		t.Fatal("string equality broken")
	}
	if !Equal(List([]string{"a"}), List([]string{"a"})) {
		t.Fatal("list equality broken")
	}
	if Equal(List([]string{"a"}), List([]string{"a", "b"})) {
		t.Fatal("lists of different length equal")
	}
	if !Equal(Null(), Null()) {
		t.Fatal("null != null")
	}
}

func TestCompare(t *testing.T) {
	if Compare(Int(1), Int(2)) >= 0 {
		t.Fatal("1 !< 2")
	}
	if Compare(Float(2.5), Int(2)) <= 0 {
		t.Fatal("2.5 !> 2")
	}
	if Compare(Int(2), Int(2)) != 0 {
		t.Fatal("2 != 2")
	}
	if Compare(Str("a"), Str("b")) >= 0 {
		t.Fatal("a !< b")
	}
}

func TestContains(t *testing.T) {
	l := List([]string{"RISC", "databases"})
	if !l.Contains("RISC") || l.Contains("CISC") {
		t.Fatal("list contains broken")
	}
	s := Str("hello world")
	if !s.Contains("lo wo") || s.Contains("xyz") {
		t.Fatal("string contains broken")
	}
	if Int(1).Contains("1") {
		t.Fatal("int contains")
	}
}
