package core

import (
	"fmt"
	"sync"
)

// Type integrity rules. The paper's "Consistency Guarantees": "Since
// many files have complicated structure and are semantically rich, it
// is important to guarantee that they remain structurally consistent.
// The symbol table and text space of a program, for example, contain
// mutually dependent entries … Use of transaction processing and the
// POSTGRES rules system can guarantee this consistency."
//
// A TypeValidator is the rules-system half of that guarantee: it runs
// inside the data manager when a file of its type is closed after
// writing, and a violation fails the close — under autocommit that
// aborts the write transaction outright, and under an explicit
// transaction the failed close aborts the commit. Either way a file of
// a validated type can never be seen in a structurally inconsistent
// committed state.

// TypeValidator checks a file's structural integrity. It sees the
// file's new contents (including the writing transaction's uncommitted
// changes) through the usual function context.
type TypeValidator func(ctx *FuncCtx) error

type validatorRegistry struct {
	mu sync.RWMutex
	m  map[string]TypeValidator
}

// RegisterValidator installs (or replaces) the integrity rule for a
// file type. Like function implementations, validators are in-process
// code — the Go analogue of rules compiled into the data manager.
func (db *DB) RegisterValidator(typeName string, v TypeValidator) {
	db.valMu.Lock()
	if db.validators == nil {
		db.validators = make(map[string]TypeValidator)
	}
	db.validators[typeName] = v
	db.valMu.Unlock()
}

// validator looks up the integrity rule for a type.
func (db *DB) validator(typeName string) (TypeValidator, bool) {
	db.valMu.RLock()
	defer db.valMu.RUnlock()
	v, ok := db.validators[typeName]
	return v, ok
}

// validateOnClose runs the file's type rule against its post-write
// state; it is called from Close after the coalescing buffer has been
// flushed and before metadata is finalised.
func (f *File) validateOnClose() error {
	if f.attr.Type == "" || !f.wroteData {
		return nil
	}
	v, ok := f.db.validator(f.attr.Type)
	if !ok {
		return nil
	}
	ctx := &FuncCtx{DB: f.db, Snap: f.snap, OID: f.oid, Attr: f.Attr()}
	defer ctx.close()
	if err := v(ctx); err != nil {
		return fmt.Errorf("inversion: integrity rule for type %q rejected %s: %w",
			f.attr.Type, DataRelName(f.oid), err)
	}
	return nil
}
