package core

import (
	"fmt"
	"io"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/rowenc"
	"repro/internal/txn"
)

// File is an open Inversion file. Byte-oriented operations are turned
// into operations on chunk records; "multiple small sequential writes
// during a single transaction are coalesced to maximize the size of the
// chunk stored in each database record". File implements io.Reader,
// io.Writer, io.Seeker, io.ReaderAt, io.WriterAt and io.Closer.
//
// A File is bound to the transaction (or historical snapshot) it was
// opened under and is not safe for concurrent use, matching the paper's
// single-transaction-per-application client library.
type File struct {
	db        *DB
	tx        *txn.Tx
	snap      *txn.Snapshot
	oid       device.OID
	attr      FileAttr
	data      *heap.Relation
	idx       *btree.Tree
	pos       int64
	size      int64
	writable  bool
	closed    bool
	metaDirt  bool
	readSeen  bool
	wroteData bool

	// Write-coalescing buffer: wbuf holds bytes for [wstart, wstart+len).
	wbuf   []byte
	wstart int64

	// closeHook, set by the session layer, runs last in Close with
	// Close's error so far; for autocommit opens it commits or aborts
	// the file's private transaction.
	closeHook func(error) error
}

// CreateTx creates a new file under an explicit transaction. class
// selects the device manager ("A file is located on a particular device
// manager at creation"); "" means the database default. A uniquely
// named table inv<oid> is created for the file's chunks, plus a B-tree
// on the chunk number.
func (db *DB) CreateTx(tx *txn.Tx, path, owner, fileType, class string, flags uint32) (*File, error) {
	snap := db.writeSnap(tx)
	parent, name, err := db.splitDirBase(snap, path)
	if err != nil {
		return nil, err
	}
	if err := db.lockName(tx, parent, name); err != nil {
		return nil, err
	}
	snap = db.writeSnap(tx) // re-read after the lock serialised us
	if _, _, err := db.lookupChild(snap, parent, name); err == nil {
		return nil, fmt.Errorf("%w: %q", ErrExist, path)
	} else if !isNotExist(err) {
		return nil, err
	}
	if class == "" {
		class = db.opts.DefaultClass
	}
	if fileType != "" && fileType != TypeDirectory {
		if _, ok := db.cat.Type(fileType); !ok {
			return nil, fmt.Errorf("inversion: file type %q is not defined", fileType)
		}
	}
	oid := db.cat.AllocOID()
	if err := tx.Lock(txn.LockTag{Space: txn.SpaceRelation, Rel: oid}, txn.LockExclusive); err != nil {
		return nil, err
	}
	if _, err := db.cat.CreateRelationAt(tx, oid, DataRelName(oid), class, catalog.KindHeap); err != nil {
		return nil, err
	}
	idxInfo, err := db.cat.CreateRelation(tx, IdxRelName(oid), class, catalog.KindIndex)
	if err != nil {
		return nil, err
	}
	now := db.mgr.TimeSource()
	attr := FileAttr{
		File: oid, Idx: idxInfo.OID, Owner: owner, Type: fileType,
		CTime: now, MTime: now, ATime: now, Flags: flags, Class: class,
	}
	if err := db.addNaming(tx, name, parent, oid); err != nil {
		return nil, err
	}
	fs := db.ns.fileShard(oid)
	tidA, err := fs.fileatt.Insert(tx.ID(), encodeAttr(attr))
	if err != nil {
		return nil, err
	}
	if _, err := fs.attIdx.Insert(btree.Entry{Key: oidKey(oid), Val: tidA.Pack()}); err != nil {
		return nil, err
	}
	if err := db.touchMTime(tx, snap, parent); err != nil {
		return nil, err
	}
	idxTree, err := db.chunkTree(idxInfo.OID)
	if err != nil {
		return nil, err
	}
	obs.Active().SetRel(DataRelName(oid))
	db.mgr.AnnotateTx(tx.ID(), DataRelName(oid))
	return &File{
		db: db, tx: tx, snap: snap, oid: oid, attr: attr,
		data: db.dataRel(oid), idx: idxTree, writable: true,
	}, nil
}

// OpenTx opens an existing file under an explicit transaction. Writers
// take an exclusive lock on the file; readers share.
func (db *DB) OpenTx(tx *txn.Tx, path string, write bool) (*File, error) {
	snap := tx.Snapshot()
	if write {
		// Writers use a current read: once the exclusive lock is held,
		// the version chain this transaction will extend is the latest
		// committed one, not the one its start-time snapshot saw.
		snap = db.writeSnap(tx)
	}
	oid, err := db.Resolve(snap, path)
	if err != nil {
		return nil, err
	}
	mode := txn.LockShared
	if write {
		mode = txn.LockExclusive
	}
	if err := tx.Lock(txn.LockTag{Space: txn.SpaceRelation, Rel: oid}, mode); err != nil {
		return nil, err
	}
	if write {
		snap = db.writeSnap(tx)
	}
	return db.openByOID(tx, snap, oid, write)
}

// OpenAsOf opens the file as it existed at time asof ("the p_open call
// includes a parameter to specify the time for which the file should be
// viewed. Historical files may not be opened for writing."). No locks
// are taken: history is immutable.
func (db *DB) OpenAsOf(path string, asof int64) (*File, error) {
	snap := db.mgr.AsOf(asof)
	oid, err := db.Resolve(snap, path)
	if err != nil {
		return nil, err
	}
	return db.openByOID(nil, snap, oid, false)
}

func (db *DB) openByOID(tx *txn.Tx, snap *txn.Snapshot, oid device.OID, write bool) (*File, error) {
	attr, _, err := db.getAttr(snap, oid)
	if err != nil {
		return nil, err
	}
	if attr.IsDir() {
		return nil, ErrIsDirectory
	}
	idxTree, err := db.chunkTree(attr.Idx)
	if err != nil {
		return nil, err
	}
	obs.Active().SetRel(DataRelName(oid))
	if tx != nil {
		// Annotate the live-transaction entry too, so inv_transactions
		// names the relation a long-running transaction is touching.
		db.mgr.AnnotateTx(tx.ID(), DataRelName(oid))
	}
	return &File{
		db: db, tx: tx, snap: snap, oid: oid, attr: attr,
		data: db.dataRel(oid), idx: idxTree,
		size: attr.Size, writable: write,
	}, nil
}

// OID reports the file's object identifier.
func (f *File) OID() device.OID { return f.oid }

// Attr reports the file's attributes as of open (size reflects writes
// through this handle).
func (f *File) Attr() FileAttr {
	a := f.attr
	a.Size = f.size
	return a
}

// Size reports the file's current logical size in bytes.
func (f *File) Size() int64 { return f.size }

// chunk row: chunkno(4) | payload (length-prefixed). Compressed files
// interpose a raw-length field; see compress.go.
func encodeChunk(chunkno uint32, data []byte) []byte {
	return rowenc.NewWriter(8 + len(data)).Uint32(chunkno).Bytes(data).Done()
}

func decodeChunk(rec []byte) (chunkno uint32, data []byte, err error) {
	r := rowenc.NewReader(rec)
	chunkno = r.Uint32()
	data = r.Bytes()
	return chunkno, data, r.Err()
}

// findChunk returns the visible record of a chunk, if any. Versions are
// probed newest-first via the shared index helper, so heavily rewritten
// chunks do not pay for their dead history on every read. The chunk
// number is verified on the record itself so archive fallbacks (which
// bypass the index) cannot return the wrong chunk.
func (f *File) findChunk(chunkno uint32) (heap.TID, []byte, bool, error) {
	return f.db.fetchVisible(f.idx, btree.Key{K1: uint64(chunkno)}, f.data, f.snap,
		func(rec []byte) (bool, error) {
			no, _, err := decodeChunk(rec)
			if err != nil {
				return false, err
			}
			return no == chunkno, nil
		})
}

// readChunk returns the (decompressed) contents of a chunk, or nil for
// a hole.
func (f *File) readChunk(chunkno uint32) ([]byte, error) {
	_, rec, found, err := f.findChunk(chunkno)
	if err != nil || !found {
		return nil, err
	}
	no, data, err := decodeChunk(rec)
	if err != nil {
		return nil, err
	}
	if no != chunkno {
		return nil, fmt.Errorf("inversion: chunk index pointed %d at record %d", chunkno, no)
	}
	if f.attr.Compressed() {
		return decompressChunk(data)
	}
	return data, nil
}

// writeChunk stores the complete new contents of a chunk: the visible
// old version (if any) is superseded in the normal no-overwrite way and
// the index gains an entry for the new record. Old index entries stay;
// they are how historical versions of the file are found.
func (f *File) writeChunk(chunkno uint32, data []byte) error {
	if f.attr.Compressed() {
		var err error
		data, err = compressChunk(data)
		if err != nil {
			return err
		}
	}
	rec := encodeChunk(chunkno, data)
	oldTID, _, found, err := f.findChunk(chunkno)
	if err != nil {
		return err
	}
	var newTID heap.TID
	if found {
		newTID, err = f.data.Update(f.tx.ID(), oldTID, rec)
	} else {
		newTID, err = f.data.Insert(f.tx.ID(), rec)
	}
	if err != nil {
		return err
	}
	f.wroteData = true
	_, err = f.idx.Insert(btree.Entry{Key: btree.Key{K1: uint64(chunkno)}, Val: newTID.Pack()})
	return err
}

// deleteChunk removes the visible version of a chunk (truncation).
func (f *File) deleteChunk(chunkno uint32) error {
	tid, _, found, err := f.findChunk(chunkno)
	if err != nil || !found {
		return err
	}
	f.wroteData = true
	return f.data.Delete(f.tx.ID(), tid)
}

// Write implements io.Writer at the current position.
func (f *File) Write(p []byte) (int, error) {
	n, err := f.WriteAt(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// WriteAt implements io.WriterAt. Sequential writes accumulate in the
// coalescing buffer; anything else flushes first.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if !f.writable {
		return 0, ErrReadOnly
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset", ErrBadPath)
	}
	if off+int64(len(p)) > MaxFileSize {
		return 0, ErrFileTooBig
	}
	if len(p) == 0 {
		return 0, nil
	}
	if len(f.wbuf) > 0 && off != f.wstart+int64(len(f.wbuf)) {
		if err := f.Flush(); err != nil {
			return 0, err
		}
	}
	if len(f.wbuf) == 0 {
		f.wstart = off
	}
	f.wbuf = append(f.wbuf, p...)
	if end := off + int64(len(p)); end > f.size {
		f.size = end
	}
	f.metaDirt = true
	// Flush whole chunks eagerly so the buffer stays bounded.
	if err := f.flushFullChunks(); err != nil {
		return 0, err
	}
	return len(p), nil
}

// flushFullChunks writes out every chunk the buffer fully covers,
// keeping any partial tail (and partial head) buffered.
func (f *File) flushFullChunks() error {
	for {
		start := f.wstart
		if len(f.wbuf) < ChunkSize {
			return nil
		}
		chunkno := start / ChunkSize
		chunkStart := chunkno * ChunkSize
		if start != chunkStart {
			// Buffer starts mid-chunk: flush the partial head so the
			// rest aligns.
			headLen := chunkStart + ChunkSize - start
			if int64(len(f.wbuf)) < headLen {
				return nil
			}
			if err := f.flushRange(start, f.wbuf[:headLen]); err != nil {
				return err
			}
			f.wbuf = f.wbuf[headLen:]
			f.wstart += headLen
			continue
		}
		if err := f.writeChunk(uint32(chunkno), clone(f.wbuf[:ChunkSize])); err != nil {
			return err
		}
		f.wbuf = f.wbuf[ChunkSize:]
		f.wstart += ChunkSize
	}
}

// Flush empties the coalescing buffer into chunk records.
func (f *File) Flush() error {
	if len(f.wbuf) == 0 {
		return nil
	}
	buf, start := f.wbuf, f.wstart
	f.wbuf, f.wstart = f.wbuf[:0], 0
	return f.flushRange(start, buf)
}

// flushRange applies buffered bytes covering [start, start+len(buf)) to
// the underlying chunks, merging with existing contents where the range
// covers a chunk only partially.
func (f *File) flushRange(start int64, buf []byte) error {
	for len(buf) > 0 {
		chunkno := start / ChunkSize
		inOff := start - chunkno*ChunkSize
		span := ChunkSize - inOff
		if span > int64(len(buf)) {
			span = int64(len(buf))
		}
		if inOff == 0 && span == ChunkSize {
			if err := f.writeChunk(uint32(chunkno), clone(buf[:span])); err != nil {
				return err
			}
		} else {
			old, err := f.readChunk(uint32(chunkno))
			if err != nil {
				return err
			}
			// The merged chunk extends to whatever is larger: the old
			// contents, or the end of this write (bounded by the file
			// size for interior chunks).
			newLen := int64(len(old))
			if inOff+span > newLen {
				newLen = inOff + span
			}
			if limit := f.size - chunkno*ChunkSize; limit < newLen {
				newLen = limit
			}
			if limit := int64(ChunkSize); limit < newLen {
				newLen = limit
			}
			merged := make([]byte, newLen)
			copy(merged, old)
			copy(merged[inOff:], buf[:span])
			if err := f.writeChunk(uint32(chunkno), merged); err != nil {
				return err
			}
		}
		start += span
		buf = buf[span:]
	}
	return nil
}

// Read implements io.Reader at the current position.
func (f *File) Read(p []byte) (int, error) {
	n, err := f.ReadAt(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// ReadAt implements io.ReaderAt. Holes read as zeros; reads past the
// end return io.EOF.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if err := f.Flush(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset", ErrBadPath)
	}
	if off >= f.size {
		return 0, io.EOF
	}
	f.readSeen = true
	total := int64(len(p))
	if off+total > f.size {
		total = f.size - off
	}
	read := int64(0)
	for read < total {
		pos := off + read
		chunkno := pos / ChunkSize
		inOff := pos - chunkno*ChunkSize
		span := ChunkSize - inOff
		if span > total-read {
			span = total - read
		}
		data, err := f.readChunk(uint32(chunkno))
		if err != nil {
			return int(read), err
		}
		dst := p[read : read+span]
		for i := range dst {
			dst[i] = 0
		}
		if int64(len(data)) > inOff {
			copy(dst, data[inOff:])
		}
		read += span
	}
	var err error
	if off+read >= f.size && read < int64(len(p)) {
		err = io.EOF
	}
	return int(read), err
}

// Seek implements io.Seeker. The paper's p_lseek takes a 64-bit offset
// split across two ints so clients can address 17.6 TB files.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, ErrClosed
	}
	if err := f.Flush(); err != nil {
		return 0, err
	}
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = f.pos + offset
	case io.SeekEnd:
		abs = f.size + offset
	default:
		return 0, fmt.Errorf("inversion: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("inversion: negative seek position")
	}
	f.pos = abs
	return abs, nil
}

// Truncate sets the file's logical size. Shrinking removes or trims
// chunk records (their old versions remain for time travel); growing
// just extends the size (the gap reads as zeros).
func (f *File) Truncate(n int64) error {
	if f.closed {
		return ErrClosed
	}
	if !f.writable {
		return ErrReadOnly
	}
	if n < 0 || n > MaxFileSize {
		return ErrFileTooBig
	}
	if err := f.Flush(); err != nil {
		return err
	}
	if n < f.size {
		firstDead := (n + ChunkSize - 1) / ChunkSize
		lastOld := (f.size - 1) / ChunkSize
		for c := firstDead; c <= lastOld; c++ {
			if err := f.deleteChunk(uint32(c)); err != nil {
				return err
			}
		}
		if rem := n % ChunkSize; rem > 0 {
			boundary := n / ChunkSize
			old, err := f.readChunk(uint32(boundary))
			if err != nil {
				return err
			}
			if int64(len(old)) > rem {
				if err := f.writeChunk(uint32(boundary), clone(old[:rem])); err != nil {
					return err
				}
			}
		}
	}
	f.size = n
	f.metaDirt = true
	return nil
}

// Close flushes buffered writes and records new metadata (size, mtime,
// and optionally atime) in the fileatt table under the file's
// transaction. For files opened outside an explicit transaction, Close
// also commits (or, on error, aborts) the file's private transaction.
func (f *File) Close() error {
	if f.closed {
		return ErrClosed
	}
	err := f.closeLocked()
	f.closed = true
	if f.closeHook != nil {
		return f.closeHook(err)
	}
	return err
}

func (f *File) closeLocked() error {
	if err := f.Flush(); err != nil {
		return err
	}
	if f.tx == nil || f.tx.Done() {
		return nil
	}
	// The attribute row is rewritten only when the size changed:
	// forcing a metadata page (and its index page) for every same-size
	// overwrite would double the write cost of update-in-place
	// workloads, so mtime maintenance piggybacks on size changes, the
	// same economy ULTRIX-era file servers made with deferred
	// atime/mtime updates.
	if f.metaDirt && f.size != f.attr.Size {
		now := f.db.mgr.TimeSource()
		size := f.size
		if err := f.db.updateAttr(f.tx, f.snap, f.oid, func(a *FileAttr) {
			a.Size = size
			a.MTime = now
			if f.db.opts.TrackATime && f.readSeen {
				a.ATime = now
			}
		}); err != nil {
			return err
		}
	} else if f.db.opts.TrackATime && f.readSeen && f.writable {
		now := f.db.mgr.TimeSource()
		if err := f.db.updateAttr(f.tx, f.snap, f.oid, func(a *FileAttr) { a.ATime = now }); err != nil {
			return err
		}
	}
	// Integrity rules ("Consistency Guarantees") run last, over the
	// file's final state for this transaction: a violated rule fails
	// the close, which aborts the surrounding (or autocommit)
	// transaction — a file of a validated type can never commit
	// structurally broken. (Callers inside explicit transactions must
	// not ignore Close errors; Session.Commit handles this itself.)
	return f.validateOnClose()
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }
