package core

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/value"
)

// newDB builds an in-memory database with a deterministic clock.
func newDB(t *testing.T) (*DB, *Session) {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	var mu sync.Mutex
	tick := int64(1 << 20)
	db, err := Open(sw, Options{
		Buffers: 128,
		TimeSource: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			tick += 1000
			return tick
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db, db.NewSession("mao")
}

func TestCreateWriteRead(t *testing.T) {
	_, s := newDB(t)
	f, err := s.Create("/hello.txt", CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello, inversion")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello, inversion" {
		t.Fatalf("read %q", got)
	}
	attr, err := s.Stat("/hello.txt")
	if err != nil {
		t.Fatal(err)
	}
	if attr.Size != 16 || attr.Owner != "mao" {
		t.Fatalf("attr = %+v", attr)
	}
}

func TestCreateExistingFails(t *testing.T) {
	_, s := newDB(t)
	if err := s.WriteFile("/a", []byte("x"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/a", CreateOpts{}); !errors.Is(err, ErrExist) {
		t.Fatalf("create existing: %v", err)
	}
}

func TestLargeFileMultiChunk(t *testing.T) {
	_, s := newDB(t)
	data := make([]byte, 3*ChunkSize+1234)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := s.WriteFile("/big", data, CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("/big")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("multi-chunk round trip failed")
	}
}

func TestSeekAndPartialRW(t *testing.T) {
	_, s := newDB(t)
	data := make([]byte, 2*ChunkSize)
	if err := s.WriteFile("/f", data, CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	f, err := s.OpenWrite("/f")
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite a region spanning the chunk boundary.
	patch := []byte("PATCH-ACROSS-BOUNDARY")
	off := int64(ChunkSize - 10)
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(patch); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[off:off+int64(len(patch))], patch) {
		t.Fatal("patch not applied")
	}
	if got[off-1] != 0 || got[off+int64(len(patch))] != 0 {
		t.Fatal("patch damaged neighbours")
	}
	if int64(len(got)) != 2*ChunkSize {
		t.Fatalf("size changed to %d", len(got))
	}
}

func TestSparseFileReadsZeros(t *testing.T) {
	_, s := newDB(t)
	f, err := s.Create("/sparse", CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(5*ChunkSize, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("/sparse")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != 5*ChunkSize+4 {
		t.Fatalf("size = %d", len(got))
	}
	for i := 0; i < 5*ChunkSize; i++ {
		if got[i] != 0 {
			t.Fatalf("hole byte %d = %d", i, got[i])
		}
	}
	if string(got[5*ChunkSize:]) != "tail" {
		t.Fatal("tail lost")
	}
}

func TestWriteCoalescing(t *testing.T) {
	db, s := newDB(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	f, err := s.Create("/coalesce", CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Many small sequential writes within one transaction must
	// coalesce into few chunk records, not one record per write.
	for i := 0; i < 1000; i++ {
		if _, err := f.Write(bytes.Repeat([]byte{byte(i)}, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	// 10000 bytes = 2 chunks.
	rel := db.dataRel(mustOID(t, db, "/coalesce"))
	n := 0
	if err := rel.Scan(db.mgr.CurrentSnapshot(), func(_ anyTID, _ []byte) (bool, error) {
		n++
		return false, nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("1000 small writes produced %d chunk records, want 2", n)
	}
}

func TestTransactionAtomicity(t *testing.T) {
	_, s := newDB(t)
	if err := s.WriteFile("/stable", []byte("before"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/stable", []byte("after"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("/new-in-tx", CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	// Reads inside the tx see its changes.
	got, err := s.ReadFile("/stable")
	if err != nil || string(got) != "after" {
		t.Fatalf("in-tx read: %q %v", got, err)
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}
	got, err = s.ReadFile("/stable")
	if err != nil || string(got) != "before" {
		t.Fatalf("post-abort read: %q %v", got, err)
	}
	if _, err := s.Stat("/new-in-tx"); !isNotExist(err) {
		t.Fatalf("aborted create visible: %v", err)
	}
}

func TestMultiFileAtomicCommit(t *testing.T) {
	// The paper's motivating example: checking in several source files
	// at once.
	db, s := newDB(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"/src-a.c", "/src-b.c", "/src-c.c"} {
		if err := s.WriteFile(name, []byte("fixed "+name), CreateOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	// Not visible to others before commit.
	other := db.NewSession("other")
	if _, err := other.Stat("/src-a.c"); !isNotExist(err) {
		t.Fatalf("uncommitted checkin visible: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"/src-a.c", "/src-b.c", "/src-c.c"} {
		if _, err := other.Stat(name); err != nil {
			t.Fatalf("committed checkin missing %s: %v", name, err)
		}
	}
}

func TestTimeTravelFileVersions(t *testing.T) {
	db, s := newDB(t)
	if err := s.WriteFile("/doc", []byte("version one"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	t1 := db.mgr.LastCommitTime()
	if err := s.WriteFile("/doc", []byte("version TWO, longer"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	t2 := db.mgr.LastCommitTime()

	cur, err := s.ReadFile("/doc")
	if err != nil || string(cur) != "version TWO, longer" {
		t.Fatalf("current: %q %v", cur, err)
	}
	old, err := s.ReadFileAsOf("/doc", t1)
	if err != nil || string(old) != "version one" {
		t.Fatalf("asof t1: %q %v", old, err)
	}
	again, err := s.ReadFileAsOf("/doc", t2)
	if err != nil || string(again) != "version TWO, longer" {
		t.Fatalf("asof t2: %q %v", again, err)
	}
	// Historical attr sees historical size.
	attr, err := s.StatAsOf("/doc", t1)
	if err != nil || attr.Size != int64(len("version one")) {
		t.Fatalf("asof stat: %+v %v", attr, err)
	}
}

func TestUndeleteViaTimeTravel(t *testing.T) {
	db, s := newDB(t)
	if err := s.WriteFile("/precious", []byte("do not lose"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	before := db.mgr.LastCommitTime()
	if err := s.Unlink("/precious"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat("/precious"); !isNotExist(err) {
		t.Fatalf("unlinked file still visible: %v", err)
	}
	// "it allows users to undelete files removed accidentally"
	data, err := s.ReadFileAsOf("/precious", before)
	if err != nil || string(data) != "do not lose" {
		t.Fatalf("undelete read: %q %v", data, err)
	}
	// Restore it.
	if err := s.WriteFile("/precious", data, CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("/precious")
	if err != nil || string(got) != "do not lose" {
		t.Fatalf("restored: %q %v", got, err)
	}
}

func TestHistoricalOpenNotWritable(t *testing.T) {
	db, s := newDB(t)
	if err := s.WriteFile("/h", []byte("x"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	f, err := s.OpenAsOf("/h", db.mgr.LastCommitTime())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("y")); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("historical write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectories(t *testing.T) {
	_, s := newDB(t)
	if err := s.MkdirAll("/users/mao/projects"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/users/mao/notes.txt", []byte("n"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	entries, err := s.ReadDir("/users/mao")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Name != "notes.txt" || entries[1].Name != "projects" {
		t.Fatalf("readdir = %+v", entries)
	}
	if !entries[1].Attr.IsDir() {
		t.Fatal("projects not a directory")
	}
	// Non-empty directory cannot be removed.
	if err := s.Unlink("/users/mao"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("unlink non-empty: %v", err)
	}
	// Path reconstruction (used by dir(file) in queries).
	db := s.DB()
	oid, err := db.Resolve(db.mgr.CurrentSnapshot(), "/users/mao/notes.txt")
	if err != nil {
		t.Fatal(err)
	}
	p, err := db.PathOf(db.mgr.CurrentSnapshot(), oid)
	if err != nil || p != "/users/mao/notes.txt" {
		t.Fatalf("PathOf = %q %v", p, err)
	}
}

func TestNamingTableShape(t *testing.T) {
	// Table 1 of the paper: the entries constructing "/etc/passwd".
	db, s := newDB(t)
	if err := s.Mkdir("/etc"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/etc/passwd", []byte("root:0"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	snap := db.mgr.CurrentSnapshot()
	// Root row: ("/", 0, RootDirOID).
	name, parent, _, err := db.NamingEntry(snap, RootDirOID)
	if err != nil || name != "/" || parent != 0 {
		t.Fatalf("root naming row: %q %d %v", name, parent, err)
	}
	etc, err := db.Resolve(snap, "/etc")
	if err != nil {
		t.Fatal(err)
	}
	name, parent, _, err = db.NamingEntry(snap, etc)
	if err != nil || name != "etc" || parent != RootDirOID {
		t.Fatalf("etc naming row: %q %d %v", name, parent, err)
	}
	passwd, err := db.Resolve(snap, "/etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	name, parent, _, err = db.NamingEntry(snap, passwd)
	if err != nil || name != "passwd" || parent != etc {
		t.Fatalf("passwd naming row: %q %d %v", name, parent, err)
	}
	// The chunk table is named inv<oid>.
	ri, ok := db.Catalog().Relation(DataRelName(passwd))
	if !ok || ri.OID != passwd {
		t.Fatalf("data relation: %+v ok=%v", ri, ok)
	}
}

func TestRename(t *testing.T) {
	db, s := newDB(t)
	if err := s.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Mkdir("/b"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/a/f", []byte("data"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	before := db.mgr.LastCommitTime()
	if err := s.Rename("/a/f", "/b/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Stat("/a/f"); !isNotExist(err) {
		t.Fatal("old name still bound")
	}
	got, err := s.ReadFile("/b/g")
	if err != nil || string(got) != "data" {
		t.Fatalf("renamed read: %q %v", got, err)
	}
	// History: under the old name before the rename.
	old, err := s.ReadFileAsOf("/a/f", before)
	if err != nil || string(old) != "data" {
		t.Fatalf("historical old name: %q %v", old, err)
	}
}

func TestCrashRecovery(t *testing.T) {
	db, s := newDB(t)
	if err := s.WriteFile("/durable", []byte("committed data"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	// Uncommitted transaction in flight at the crash.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/ghost", []byte("never committed"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	db.Crash()
	db2, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	s2 := db2.NewSession("mao")
	got, err := s2.ReadFile("/durable")
	if err != nil || string(got) != "committed data" {
		t.Fatalf("committed file after crash: %q %v", got, err)
	}
	if _, err := s2.Stat("/ghost"); !isNotExist(err) {
		t.Fatalf("uncommitted file visible after crash: %v", err)
	}
}

func TestCrashMidTransactionDataFlushed(t *testing.T) {
	// Even if the in-flight transaction's dirty pages reached disk
	// (cache pressure), its records must be invisible after recovery.
	db, s := newDB(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	big := make([]byte, 4*ChunkSize)
	if err := s.WriteFile("/ghost", big, CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Pool().FlushAll(); err != nil { // pages hit "disk"
		t.Fatal(err)
	}
	db.Crash()
	db2, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db2.NewSession("x").Stat("/ghost"); !isNotExist(err) {
		t.Fatalf("flushed-but-uncommitted file visible: %v", err)
	}
}

func TestTypedFilesAndFunctions(t *testing.T) {
	_, s := newDB(t)
	if err := s.DefineType("ASCII document", "plain text"); err != nil {
		t.Fatal(err)
	}
	err := s.DefineFunction(catalog.FuncInfo{
		Name: "linecount", TypeName: "ASCII document", Doc: "number of lines",
	}, func(c *FuncCtx) (Value, error) {
		data, err := c.Contents()
		if err != nil {
			return value.Null(), err
		}
		return value.Int(int64(bytes.Count(data, []byte("\n")))), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/doc.txt", []byte("a\nb\nc\n"), CreateOpts{Type: "ASCII document"}); err != nil {
		t.Fatal(err)
	}
	v, err := s.Call("linecount", "/doc.txt")
	if err != nil || v.I != 3 {
		t.Fatalf("linecount = %v, %v", v, err)
	}
	// Type checking: calling on a file of the wrong type fails.
	if err := s.WriteFile("/untyped", []byte("x\n"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call("linecount", "/untyped"); !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("type check: %v", err)
	}
	// Undefined type on create is rejected.
	if _, err := s.Create("/bad", CreateOpts{Type: "no-such-type"}); err == nil {
		t.Fatal("created file with undefined type")
	}
	// Builtins.
	v, err = s.Call("owner", "/doc.txt")
	if err != nil || v.S != "mao" {
		t.Fatalf("owner = %v %v", v, err)
	}
	v, err = s.Call("size", "/doc.txt")
	if err != nil || v.I != 6 {
		t.Fatalf("size = %v %v", v, err)
	}
	v, err = s.Call("dir", "/doc.txt")
	if err != nil || v.S != "/" {
		t.Fatalf("dir = %v %v", v, err)
	}
}

func TestCompressedFiles(t *testing.T) {
	_, s := newDB(t)
	// Compressible data spanning several chunks.
	data := bytes.Repeat([]byte("inversion file system "), 2000)
	if err := s.WriteFile("/z", data, CreateOpts{Flags: FlagCompressed}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("/z")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("compressed round trip failed: %d vs %d bytes, %v", len(got), len(data), err)
	}
	// Random access into the middle.
	f, err := s.Open("/z")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	off := int64(ChunkSize + 777)
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[off:off+100]) {
		t.Fatal("random access into compressed file wrong")
	}
	// Stored sizes show compression happened.
	raw, stored, err := f.StoredSizes()
	if err != nil {
		t.Fatal(err)
	}
	var rawSum, storedSum int
	for i := range raw {
		rawSum += raw[i]
		storedSum += stored[i]
	}
	if rawSum != len(data) {
		t.Fatalf("raw sizes sum to %d, want %d", rawSum, len(data))
	}
	if storedSum >= rawSum/2 {
		t.Fatalf("no real compression: stored %d raw %d", storedSum, rawSum)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestIncompressibleCompressedFile(t *testing.T) {
	_, s := newDB(t)
	data := make([]byte, 2*ChunkSize)
	rngState := uint64(12345)
	for i := range data {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		data[i] = byte(rngState >> 56)
	}
	if err := s.WriteFile("/rand", data, CreateOpts{Flags: FlagCompressed}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("/rand")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("incompressible round trip failed: %v", err)
	}
}

func TestTruncate(t *testing.T) {
	_, s := newDB(t)
	data := make([]byte, 2*ChunkSize+100)
	for i := range data {
		data[i] = 0xAA
	}
	if err := s.WriteFile("/t", data, CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	f, err := s.OpenWrite("/t")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(ChunkSize + 50); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("/t")
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != ChunkSize+50 {
		t.Fatalf("size after truncate = %d", len(got))
	}
	for _, b := range got {
		if b != 0xAA {
			t.Fatal("truncate damaged contents")
		}
	}
	// Grow back: the cut region must read zeros, not resurrect 0xAA.
	f, err = s.OpenWrite("/t")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(2 * ChunkSize); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err = s.ReadFile("/t")
	if err != nil {
		t.Fatal(err)
	}
	for i := ChunkSize + 50; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("regrown byte %d = %x, want 0", i, got[i])
		}
	}
}

func TestMigrationPreservesContents(t *testing.T) {
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	sw.Register(device.NewJukebox(device.DefaultJukebox(), nil))
	db, err := Open(sw, Options{Buffers: 64, DefaultClass: "mem"})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("mao")
	data := make([]byte, 3*ChunkSize)
	for i := range data {
		data[i] = byte(i)
	}
	if err := s.WriteFile("/dataset", data, CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Migrate("/dataset", "jukebox"); err != nil {
		t.Fatal(err)
	}
	oid, err := db.Resolve(db.mgr.CurrentSnapshot(), "/dataset")
	if err != nil {
		t.Fatal(err)
	}
	if class, _ := sw.HomeClass(oid); class != "jukebox" {
		t.Fatalf("file on %q after migrate", class)
	}
	got, err := s.ReadFile("/dataset")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("contents after migration: %v", err)
	}
	// And it is still writable, transparently.
	if err := s.WriteFile("/dataset", []byte("new"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestVacuumKeepsCurrentDropsOld(t *testing.T) {
	db, s := newDB(t)
	if err := s.WriteFile("/v", []byte("one"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.WriteFile("/v", bytes.Repeat([]byte{byte('a' + i)}, 10), CreateOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed == 0 || stats.Archived == 0 {
		t.Fatalf("vacuum did nothing: %+v", stats)
	}
	got, err := s.ReadFile("/v")
	if err != nil || string(got) != "eeeeeeeeee" {
		t.Fatalf("current version after vacuum: %q %v", got, err)
	}
	// A second write after vacuum still works (indexes consistent).
	if err := s.WriteFile("/v", []byte("post-vacuum"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	got, err = s.ReadFile("/v")
	if err != nil || string(got) != "post-vacuum" {
		t.Fatalf("post-vacuum write: %q %v", got, err)
	}
}

func TestConcurrentSessionsLocking(t *testing.T) {
	db, _ := newDB(t)
	s1 := db.NewSession("a")
	s2 := db.NewSession("b")
	if err := s1.WriteFile("/shared", []byte("init"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Begin(); err != nil {
		t.Fatal(err)
	}
	f, err := s1.OpenWrite("/shared")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("from s1")); err != nil {
		t.Fatal(err)
	}
	done := make(chan []byte, 1)
	go func() {
		// s2 blocks on the lock until s1 commits, then sees s1's data.
		data, err := s2.ReadFile("/shared")
		if err != nil {
			done <- nil
			return
		}
		done <- data
	}()
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	got := <-done
	if string(got) != "from s1" {
		t.Fatalf("s2 read %q", got)
	}
}

func TestReadDirAsOf(t *testing.T) {
	db, s := newDB(t)
	if err := s.WriteFile("/old-file", []byte("x"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	before := db.mgr.LastCommitTime()
	if err := s.WriteFile("/new-file", []byte("y"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Unlink("/old-file"); err != nil {
		t.Fatal(err)
	}
	now, err := s.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	then, err := s.ReadDirAsOf("/", before)
	if err != nil {
		t.Fatal(err)
	}
	if len(now) != 1 || now[0].Name != "new-file" {
		t.Fatalf("now = %+v", now)
	}
	if len(then) != 1 || then[0].Name != "old-file" {
		t.Fatalf("then = %+v", then)
	}
}

// helpers

type anyTID = heap.TID

func mustOID(t *testing.T, db *DB, path string) device.OID {
	t.Helper()
	oid, err := db.Resolve(db.mgr.CurrentSnapshot(), path)
	if err != nil {
		t.Fatal(err)
	}
	return oid
}
