package core

import (
	"bytes"
	"testing"
)

// FuzzDecompressChunk: arbitrary stored bytes must never panic the
// chunk decompressor; they either decode or error.
func FuzzDecompressChunk(f *testing.F) {
	good, _ := compressChunk([]byte("seed data for the corpus"))
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{chunkRaw, 0, 0, 0, 0})
	f.Add([]byte{chunkFlate, 1, 0, 0, 0, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		out, err := decompressChunk(data)
		if err == nil && out == nil && len(data) >= 5 {
			// nil-with-no-error is only legal for a zero-length chunk.
			raw, err2 := decompressChunk(data)
			if err2 == nil && len(raw) != 0 {
				t.Fatal("inconsistent decompress results")
			}
		}
	})
}

// FuzzCompressRoundTrip: whatever bytes go in must come back.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte("hello"))
	f.Add(bytes.Repeat([]byte{0}, 5000))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > ChunkSize {
			data = data[:ChunkSize]
		}
		stored, err := compressChunk(data)
		if err != nil {
			t.Fatal(err)
		}
		back, err := decompressChunk(stored)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip: %d bytes in, %d out", len(data), len(back))
		}
	})
}

// FuzzSplitPath: arbitrary path strings must never panic the resolver.
func FuzzSplitPath(f *testing.F) {
	for _, seed := range []string{"/", "", "/a/b/c", "//", "/../..", "a", "/a/./../b"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		parts, err := SplitPath(path)
		if err != nil {
			return
		}
		for _, p := range parts {
			if p == "" || p == "." || p == ".." {
				t.Fatalf("SplitPath(%q) leaked component %q", path, p)
			}
		}
	})
}
