package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/txn"
)

// TestStressConcurrentSessions runs many sessions doing a random mix of
// operations concurrently — private namespaces for churn, one shared
// file for lock contention, explicit multi-file transactions for
// deadlock exposure — then verifies global consistency: every surviving
// file reads back exactly what its last committed writer wrote, the
// indexes agree with the heaps, and the media scrubs clean.
func TestStressConcurrentSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	db, setup := newDB(t)
	const workers = 6
	const opsPerWorker = 120

	if err := setup.WriteFile("/shared", []byte("initial"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		if err := setup.Mkdir(fmt.Sprintf("/w%d", w)); err != nil {
			t.Fatal(err)
		}
	}

	type finalState struct {
		mu    sync.Mutex
		files map[string][]byte // last committed contents per path
	}
	state := &finalState{files: make(map[string][]byte)}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := db.NewSession(fmt.Sprintf("worker%d", w))
			rng := newRand(int64(w + 1))
			dir := fmt.Sprintf("/w%d", w)
			mine := make(map[string][]byte)
			for op := 0; op < opsPerWorker; op++ {
				switch rng.Intn(6) {
				case 0: // create/overwrite a private file
					path := fmt.Sprintf("%s/f%d", dir, rng.Intn(8))
					data := bytes.Repeat([]byte{byte(rng.Intn(256))}, 1+rng.Intn(3000))
					if err := s.WriteFile(path, data, CreateOpts{}); err != nil {
						errs <- fmt.Errorf("w%d write %s: %w", w, path, err)
						return
					}
					mine[path] = data
				case 1: // read a private file back
					for path, want := range mine {
						got, err := s.ReadFile(path)
						if err != nil {
							errs <- fmt.Errorf("w%d read %s: %w", w, path, err)
							return
						}
						if !bytes.Equal(got, want) {
							errs <- fmt.Errorf("w%d read %s: %d bytes, want %d", w, path, len(got), len(want))
							return
						}
						break
					}
				case 2: // unlink a private file
					for path := range mine {
						if err := s.Unlink(path); err != nil {
							errs <- fmt.Errorf("w%d unlink %s: %w", w, path, err)
							return
						}
						delete(mine, path)
						break
					}
				case 3: // contend on the shared file (single-op txn)
					data := bytes.Repeat([]byte{byte(w)}, 64)
					if err := s.WriteFile("/shared", data, CreateOpts{}); err != nil {
						errs <- fmt.Errorf("w%d shared write: %w", w, err)
						return
					}
				case 4: // read the shared file; must be some worker's full write
					got, err := s.ReadFile("/shared")
					if err != nil {
						errs <- fmt.Errorf("w%d shared read: %w", w, err)
						return
					}
					if len(got) > 0 && len(got) != 7 && len(got) != 64 {
						errs <- fmt.Errorf("w%d shared read: torn %d bytes", w, len(got))
						return
					}
				case 5: // explicit two-file transaction; deadlock = retry
					err := func() error {
						if err := s.Begin(); err != nil {
							return err
						}
						a := fmt.Sprintf("%s/txa", dir)
						b := fmt.Sprintf("%s/txb", dir)
						if err := s.WriteFile(a, []byte("A"), CreateOpts{}); err != nil {
							_ = s.Abort()
							return err
						}
						if err := s.WriteFile(b, []byte("B"), CreateOpts{}); err != nil {
							_ = s.Abort()
							return err
						}
						mine[a], mine[b] = []byte("A"), []byte("B")
						return s.Commit()
					}()
					if err != nil && !errors.Is(err, txn.ErrDeadlock) {
						errs <- fmt.Errorf("w%d tx: %w", w, err)
						return
					}
				}
			}
			state.mu.Lock()
			for p, d := range mine {
				state.files[p] = d
			}
			state.mu.Unlock()
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Global consistency: every recorded file reads back intact.
	verify := db.NewSession("verify")
	for path, want := range state.files {
		got, err := verify.ReadFile(path)
		if err != nil {
			t.Fatalf("verify %s: %v", path, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("verify %s: %d bytes, want %d", path, len(got), len(want))
		}
	}
	// The medium scrubs clean.
	rep, err := db.CheckMedia()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("media corrupt after stress: %+v", rep.Corrupt)
	}
	// Vacuum still works and preserves current state.
	if _, err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	for path, want := range state.files {
		got, err := verify.ReadFile(path)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("post-vacuum verify %s: %v", path, err)
		}
	}
	// And the database survives a crash with all committed state.
	db.Crash()
	db2, err := db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	verify2 := db2.NewSession("verify2")
	for path, want := range state.files {
		got, err := verify2.ReadFile(path)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("post-crash verify %s: %v", path, err)
		}
	}
}
