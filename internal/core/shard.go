package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/txn"
)

// MaxNamespaceShards bounds the shard count so every shard's five fixed
// relation OIDs stay below catalog.FirstUserOID (shard 15's last OID is
// 94; user relations start at 100).
const MaxNamespaceShards = 16

// shardOIDBase is where the extra shards' relation OIDs start. Shard 0
// keeps the legacy OIDs (3/4/13/14/15) so an N=1 volume is
// byte-identical to the pre-shard layout; shard i≥1 takes five
// consecutive OIDs at 20+5*(i-1).
const shardOIDBase device.OID = 20

// shardRelOIDs reports the five relation OIDs backing shard i:
// naming heap, fileatt heap, name index, file index, attr index.
func shardRelOIDs(i int) (naming, fileatt, nameIdx, fileIdx, attIdx device.OID) {
	if i == 0 {
		return NamingRel, FileAttRel, NameIdxRel, FileIdxRel, AttIdxRel
	}
	base := shardOIDBase + device.OID(5*(i-1))
	return base, base + 1, base + 2, base + 3, base + 4
}

// nsShard is one namespace partition: its own naming/fileatt heaps and
// name/file/attr B-trees, plus contention counters. Handles are opened
// once at DB open — there is no per-access lock to resolve them, which
// is the point: unrelated directories touch disjoint shards and never
// meet on an index root page or a relation mutex.
type nsShard struct {
	id int

	naming  *heap.Relation
	fileatt *heap.Relation
	nameIdx *btree.Tree
	fileIdx *btree.Tree
	attIdx  *btree.Tree

	// Contention and traffic observables, served by inv_stat_namespace
	// and the /metrics gauges.
	lookups      atomic.Int64 // lookupChild probes routed here
	hits         atomic.Int64 // probes that found a visible row
	inserts      atomic.Int64 // naming rows added (create/mkdir/rename-in)
	removes      atomic.Int64 // naming rows deleted (unlink/rename-out)
	renames      atomic.Int64 // renames whose source row lived here
	crossRenames atomic.Int64 // renames that left this shard for another
	lockWaits    atomic.Int64 // name-lock acquisitions that queued
}

// namespaceShards maps a parent directory (or file OID) to the shard
// holding its metadata. The count is fixed at bootstrap and persisted
// in the log control page; with n=1 every route lands on shard 0 and
// the layout is byte-identical to the unsharded one.
type namespaceShards struct {
	n      uint32
	shards []*nsShard
}

// openShards places (if needed) and opens the n shards' relations.
// shardClasses, when non-empty, binds shard i's five relations to
// device class shardClasses[i%len] instead of the default class, so
// shards can be spread across spindles.
func openShards(n int, sw *device.Switch, pool *buffer.Pool, mgr *txn.Manager, class string, shardClasses []string) (*namespaceShards, error) {
	ns := &namespaceShards{n: uint32(n), shards: make([]*nsShard, n)}
	for i := 0; i < n; i++ {
		cls := class
		if len(shardClasses) > 0 {
			cls = shardClasses[i%len(shardClasses)]
		}
		no, fo, nio, fio, aio := shardRelOIDs(i)
		for _, oid := range []device.OID{no, fo, nio, fio, aio} {
			if _, err := sw.Home(oid); err != nil {
				if err := sw.Place(oid, cls); err != nil {
					return nil, err
				}
			}
		}
		s := &nsShard{
			id:      i,
			naming:  heap.Open(no, pool, mgr),
			fileatt: heap.Open(fo, pool, mgr),
		}
		var err error
		if s.nameIdx, err = btree.Open(nio, pool); err != nil {
			return nil, err
		}
		if s.fileIdx, err = btree.Open(fio, pool); err != nil {
			return nil, err
		}
		if s.attIdx, err = btree.Open(aio, pool); err != nil {
			return nil, err
		}
		ns.shards[i] = s
	}
	return ns, nil
}

// mix64 is the splitmix64 finalizer: a cheap bijective scrambler so
// consecutive OIDs (the allocator hands them out sequentially) spread
// across shards instead of striding.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fileShardSalt decorrelates attribute placement from naming placement
// so a directory's fileatt row does not share a shard with its own
// children's naming rows by construction.
const fileShardSalt = 0x9e3779b97f4a7c15

// dirShard routes by parent directory: all naming rows (and their
// name/file index entries) for children of one directory live in one
// shard — the HopsFS partitioning rule, which keeps lookup and ReadDir
// single-shard.
func (ns *namespaceShards) dirShard(parent device.OID) *nsShard {
	if ns.n == 1 {
		return ns.shards[0]
	}
	return ns.shards[mix64(uint64(parent))%uint64(ns.n)]
}

// fileShard routes by file OID: a file's fileatt row (and attr index
// entry) lives in the shard named by its own OID, so getAttr is a
// single probe and rename never has to move attributes.
func (ns *namespaceShards) fileShard(oid device.OID) *nsShard {
	if ns.n == 1 {
		return ns.shards[0]
	}
	return ns.shards[mix64(uint64(oid)^fileShardSalt)%uint64(ns.n)]
}

// shardName labels shard i's relation rel ("naming", "fileatt", …) for
// catalogs: shard 0 keeps the legacy unsuffixed names.
func shardName(i int, rel string) string {
	if i == 0 {
		return rel
	}
	return fmt.Sprintf("%s_s%d", rel, i)
}

// resolveShardCount decides how many shards this volume has. A fresh
// volume takes the requested count (0 = default 1) and, when above
// one, persists it in the log control page. An existing volume uses
// the persisted count (0 = legacy single-shard); an explicit request
// that disagrees is a configuration error and is rejected loudly —
// silently rerouting hashes would make every existing row unreachable.
func resolveShardCount(log *txn.Log, requested int) (int, error) {
	if requested < 0 || requested > MaxNamespaceShards {
		return 0, fmt.Errorf("inversion: namespace shard count %d out of range [0,%d]", requested, MaxNamespaceShards)
	}
	if log.Bootstrapped() {
		n := requested
		if n == 0 {
			n = 1
		}
		if n > 1 {
			if err := log.SetNamespaceShards(uint32(n)); err != nil {
				return 0, err
			}
		}
		return n, nil
	}
	stored := int(log.NamespaceShards())
	if stored == 0 {
		stored = 1
	}
	if stored > MaxNamespaceShards {
		return 0, fmt.Errorf("inversion: volume declares %d namespace shards, above the maximum %d — refusing to guess", stored, MaxNamespaceShards)
	}
	if requested != 0 && requested != stored {
		return 0, fmt.Errorf("inversion: volume was bootstrapped with %d namespace shards, opened with %d — shard count is fixed at bootstrap", stored, requested)
	}
	return stored, nil
}
