package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/txn"
)

// newHistDB opens an in-memory database with metrics history enabled at
// an interval long enough that the recorder goroutine never fires on
// its own — tests drive ticks manually for determinism.
func newHistDB(t *testing.T, budget HistoryBudget) *DB {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	var mu sync.Mutex
	tick := int64(1 << 20)
	db, err := Open(sw, Options{
		Buffers: 128,
		TimeSource: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			tick += 1000
			return tick
		},
		MetricsHistory: time.Hour,
		HistoryBudget:  budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return db
}

// scanTicks reads every inv_history row visible to snap.
func scanTicks(t *testing.T, db *DB, snap *txn.Snapshot) []HistoryTick {
	t.Helper()
	var out []HistoryTick
	err := db.dataRel(HistoryRel).Scan(snap, func(_ heap.TID, payload []byte) (bool, error) {
		tk, err := decodeHistoryTick(payload)
		if err != nil {
			return false, err
		}
		out = append(out, tk)
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// scanSamples reads every inv_history_samples row for one series.
func scanSamples(t *testing.T, db *DB, snap *txn.Snapshot, name string) map[int64]obs.HistorySample {
	t.Helper()
	out := make(map[int64]obs.HistorySample)
	err := db.dataRel(HistorySamplesRel).Scan(snap, func(_ heap.TID, payload []byte) (bool, error) {
		seq, s, err := decodeHistorySample(payload)
		if err != nil {
			return false, err
		}
		if s.Name == name {
			out[seq] = s
		}
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHistoryDisabledByDefault(t *testing.T) {
	db, s := newDB(t)
	if err := db.RecordMetricsTick(); !errors.Is(err, ErrHistoryDisabled) {
		t.Fatalf("RecordMetricsTick = %v, want ErrHistoryDisabled", err)
	}
	// Work happens, relations are still never created.
	if err := s.WriteFile("/f", []byte("x"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	for _, oid := range []device.OID{HistoryRel, HistorySamplesRel} {
		if _, ok := db.cat.RelationByOID(oid); ok {
			t.Fatalf("relation %d created with history disabled", oid)
		}
	}
	if _, _, ok := db.StoredSysRel(HistoryRelName); ok {
		t.Fatal("StoredSysRel resolves inv_history with history disabled")
	}
}

func TestHistoryTickRecordedAndQueryable(t *testing.T) {
	db := newHistDB(t, HistoryBudget{})
	s := db.NewSession("hist")
	if err := s.WriteFile("/f", []byte("payload"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	db.Obs().Counter("test.hist.counter").Add(10)
	db.Obs().Gauge("test.hist.gauge").Set(4)
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}
	db.Obs().Counter("test.hist.counter").Add(7)
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}

	snap := db.mgr.CurrentSnapshot()
	ticks := scanTicks(t, db, snap)
	if len(ticks) != 2 {
		t.Fatalf("got %d ticks, want 2: %+v", len(ticks), ticks)
	}
	for i, tk := range ticks {
		if tk.Seq != int64(i+1) || tk.Level != HistoryLevelRaw || tk.Dropped {
			t.Fatalf("tick %d: %+v", i, tk)
		}
	}
	cs := scanSamples(t, db, snap, "test.hist.counter")
	if cs[1].Value != 10 || cs[2].Value != 7 {
		t.Fatalf("counter deltas: %+v, want 10 then 7", cs)
	}
	if cs[1].Kind != obs.SampleCounter {
		t.Fatalf("kind = %q", cs[1].Kind)
	}
	gs := scanSamples(t, db, snap, "test.hist.gauge")
	if gs[1].Value != 4 || gs[2].Value != 4 || gs[1].Kind != obs.SampleGauge {
		t.Fatalf("gauge points: %+v", gs)
	}

	// The inv_history_meta catalog sees the series.
	rows, err := db.historySeriesRows()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rows {
		if r.Name == "test.hist.counter" {
			found = true
			if r.Ticks != 2 || r.FirstSeq != 1 || r.LastSeq != 2 || r.LastValue != 7 {
				t.Fatalf("meta row: %+v", r)
			}
		}
	}
	if !found {
		t.Fatalf("test.hist.counter missing from inv_history_meta rows: %+v", rows)
	}

	// The query engine resolves the stored relations with schemas.
	cols, _, ok := db.StoredSysRel(HistorySamplesRelName)
	if !ok || len(cols) != 5 {
		t.Fatalf("StoredSysRel(%s): ok=%v cols=%v", HistorySamplesRelName, ok, cols)
	}
}

func TestHistorySurvivesCrashAndAsOf(t *testing.T) {
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	var mu sync.Mutex
	tick := int64(1 << 20)
	opts := Options{
		Buffers: 128,
		TimeSource: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			tick += 1000
			return tick
		},
		MetricsHistory: time.Hour,
	}
	db, err := Open(sw, opts)
	if err != nil {
		t.Fatal(err)
	}
	db.Obs().Counter("test.crash.counter").Add(3)
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}
	preCrash := db.mgr.LastCommitTime()

	db.Crash()
	db, err = db.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// History recorded before the crash is intact, and the sequence
	// resumes monotonically.
	if got := scanTicks(t, db, db.mgr.CurrentSnapshot()); len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("post-recovery ticks: %+v", got)
	}
	db.Obs().Counter("test.crash.counter").Add(5)
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}
	ticks := scanTicks(t, db, db.mgr.CurrentSnapshot())
	if len(ticks) != 2 || ticks[0].Seq+ticks[1].Seq != 3 {
		t.Fatalf("ticks after recovery: %+v", ticks)
	}

	// asof a pre-crash instant sees only the pre-crash tick.
	old := scanTicks(t, db, db.mgr.AsOf(preCrash))
	if len(old) != 1 || old[0].Seq != 1 {
		t.Fatalf("asof pre-crash ticks: %+v", old)
	}
	// The fresh recorder's differ starts from zero, so the post-recovery
	// tick records the counter's full cumulative value: nothing that
	// happened before the crash is silently lost.
	cs := scanSamples(t, db, db.mgr.CurrentSnapshot(), "test.crash.counter")
	if cs[1].Value != 3 {
		t.Fatalf("pre-crash delta: %+v", cs)
	}
}

func TestHistoryRetentionLadder(t *testing.T) {
	budget := HistoryBudget{RawFor: time.Hour, RollupEvery: time.Minute, RollupFor: 24 * time.Hour}
	db := newHistDB(t, budget)

	// Drive the recorder's wall clock by hand.
	base := time.Date(2026, 8, 8, 12, 0, 10, 0, time.UTC)
	now := base
	db.hist.now = func() time.Time { return now }

	db.Obs().Counter("test.ret.counter").Add(10)
	db.Obs().Gauge("test.ret.gauge").Set(4)
	if err := db.RecordMetricsTick(); err != nil { // seq 1 @ base
		t.Fatal(err)
	}
	now = base.Add(30 * time.Second)
	db.Obs().Counter("test.ret.counter").Add(10)
	db.Obs().Gauge("test.ret.gauge").Set(8)
	if err := db.RecordMetricsTick(); err != nil { // seq 2 @ base+30s
		t.Fatal(err)
	}

	// Jump past RawFor: the next tick's retention pass rolls seqs 1–2
	// into one 1-minute window and deletes the raw rows.
	now = base.Add(budget.RawFor + 2*time.Minute)
	if err := db.RecordMetricsTick(); err != nil { // seq 3, triggers rollup
		t.Fatal(err)
	}
	snap := db.mgr.CurrentSnapshot()
	ticks := scanTicks(t, db, snap)
	var raw, roll []HistoryTick
	for _, tk := range ticks {
		if tk.Level == HistoryLevelRollup {
			roll = append(roll, tk)
		} else {
			raw = append(raw, tk)
		}
	}
	if len(raw) != 1 || raw[0].Seq != 3 {
		t.Fatalf("raw ticks after rollup: %+v", raw)
	}
	window := base.Truncate(time.Minute).UnixNano()
	if len(roll) != 1 || roll[0].WallNs != window || roll[0].IntervalNs != int64(time.Minute) {
		t.Fatalf("rollup ticks: %+v (want wall %d)", roll, window)
	}
	cs := scanSamples(t, db, snap, "test.ret.counter")
	if got := cs[roll[0].Seq]; got.Value != 20 { // counter deltas sum
		t.Fatalf("rolled-up counter: %+v", got)
	}
	gs := scanSamples(t, db, snap, "test.ret.gauge")
	if got := gs[roll[0].Seq]; got.Value != 6 { // gauge points average
		t.Fatalf("rolled-up gauge: %+v", got)
	}

	// Jump past RollupFor: the rollup itself expires.
	now = now.Add(budget.RollupFor + time.Hour)
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range scanTicks(t, db, db.mgr.CurrentSnapshot()) {
		if tk.WallNs == window {
			t.Fatalf("expired rollup still visible: %+v", tk)
		}
	}

	// Vacuum physically reclaims the deleted versions (discard mode — the
	// history relations never feed the archive).
	stats, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed == 0 {
		t.Fatalf("vacuum removed nothing: %+v", stats)
	}
	if stats.Archived != 0 {
		t.Fatalf("history versions were archived: %+v", stats)
	}
}

// TestHistoryVacuumRacesRollupQuery: a long-running query holding a
// pre-retention snapshot keeps seeing the raw ticks while retention
// deletes them and vacuum runs — MVCC protects history readers exactly
// as it protects file readers.
func TestHistoryVacuumRacesRollupQuery(t *testing.T) {
	budget := HistoryBudget{RawFor: time.Hour, RollupEvery: time.Minute, RollupFor: 24 * time.Hour}
	db := newHistDB(t, budget)
	base := time.Date(2026, 8, 8, 12, 0, 10, 0, time.UTC)
	now := base
	db.hist.now = func() time.Time { return now }

	db.Obs().Counter("test.race.counter").Add(5)
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}

	// The "rollup query": a reader transaction whose snapshot predates
	// retention. It holds the horizon, so vacuum must not reclaim what
	// it can still see.
	reader, err := db.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	readerSnap := db.mgr.CurrentSnapshotFor(reader.ID())

	now = base.Add(budget.RawFor + 2*time.Minute)
	if err := db.RecordMetricsTick(); err != nil { // retention expires seq 1
		t.Fatal(err)
	}
	if _, err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}

	var sawRaw bool
	for _, tk := range scanTicks(t, db, readerSnap) {
		if tk.Seq == 1 && tk.Level == HistoryLevelRaw {
			sawRaw = true
		}
	}
	if !sawRaw {
		t.Fatal("pre-retention snapshot lost the raw tick under concurrent vacuum")
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}

	// Reader gone: now the dead raw versions may actually go.
	if _, err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range scanTicks(t, db, db.mgr.CurrentSnapshot()) {
		if tk.Seq == 1 && tk.Level == HistoryLevelRaw {
			t.Fatalf("expired raw tick still visible to a fresh snapshot: %+v", tk)
		}
	}
}

// TestHistoryDroppedTickFlag: when a recording transaction loses to
// device backpressure, the attempt aborts cleanly and the next tick
// that lands carries the dropped flag.
func TestHistoryDroppedTickFlag(t *testing.T) {
	faulty := device.NewFaulty(device.NewMem(nil, 0), 1)
	sw := device.NewSwitch()
	sw.Register(faulty)
	var mu sync.Mutex
	tick := int64(1 << 20)
	db, err := Open(sw, Options{
		Buffers: 128,
		TimeSource: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			tick += 1000
			return tick
		},
		MetricsHistory: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var armed bool
	faulty.FailIf(device.FaultExtend, func(rel device.OID, _ uint32) bool {
		return armed && rel == HistoryRel
	}, nil)

	armed = true
	if err := db.RecordMetricsTick(); err == nil {
		t.Fatal("tick succeeded under injected extend fault")
	}
	armed = false

	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}
	ticks := scanTicks(t, db, db.mgr.CurrentSnapshot())
	if len(ticks) != 2 {
		t.Fatalf("got %d ticks: %+v", len(ticks), ticks)
	}
	if !ticks[0].Dropped {
		t.Fatalf("first landed tick not flagged dropped: %+v", ticks[0])
	}
	if ticks[1].Dropped {
		t.Fatalf("healthy tick flagged dropped: %+v", ticks[1])
	}
	if db.Obs().Counter("history.ticks_dropped").Load() == 0 {
		t.Fatal("ticks_dropped counter not bumped")
	}
}

// TestHistoryRecorderStopIdempotent: Close halts the recorder before
// the pool shuts down, twice-Close is safe, and a live recorder under a
// fast interval shuts down cleanly mid-traffic.
func TestHistoryRecorderStopIdempotent(t *testing.T) {
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	db, err := Open(sw, Options{
		Buffers:        128,
		MetricsHistory: time.Millisecond, // real ticks, fast
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("stopper")
	for i := 0; i < 5; i++ {
		if err := s.WriteFile("/f", []byte("spin"), CreateOpts{}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	db.hist.halt() // and directly re-halting the recorder is a no-op
}
