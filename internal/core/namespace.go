package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/btree"
	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/txn"
)

// DirEntry is one row of a directory listing.
type DirEntry struct {
	Name string
	File device.OID
	Attr FileAttr
}

// SplitPath normalises an absolute path into components. "/" yields an
// empty slice.
func SplitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: %q (paths are absolute)", ErrBadPath, path)
	}
	var parts []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			if len(parts) > 0 {
				parts = parts[:len(parts)-1]
			}
		default:
			parts = append(parts, c)
		}
	}
	return parts, nil
}

// fetchVisible finds the record a key's index entries point at that is
// both visible to snap and accepted by check (the index key may be a
// hash, so check resolves collisions). Entries are probed newest-first
// — the visible version of a hot row is almost always the most recently
// inserted one, and update-heavy rows can have thousands of dead
// versions below it.
//
// For historical snapshots, a miss falls through to the vacuum archive:
// the vacuum cleaner moves obsolete records there rather than losing
// them ("If time travel is desired, the records must be saved forever
// somewhere"), so time travel keeps working across vacuums. Archived
// hits return a zero TID — history is never updated in place.
func (db *DB) fetchVisible(tree *btree.Tree, key btree.Key, rel *heap.Relation, snap *txn.Snapshot,
	check func(payload []byte) (bool, error)) (heap.TID, []byte, bool, error) {
	var vals []uint64
	if err := tree.Lookup(key, func(e btree.Entry) bool {
		vals = append(vals, e.Val)
		return true
	}); err != nil {
		return heap.TID{}, nil, false, err
	}
	for i := len(vals) - 1; i >= 0; i-- {
		tid := heap.UnpackTID(vals[i])
		payload, err := rel.Fetch(snap, tid)
		if err != nil {
			if errors.Is(err, heap.ErrNotVisible) || errors.Is(err, heap.ErrNoRecord) {
				continue
			}
			return heap.TID{}, nil, false, err
		}
		ok, err := check(payload)
		if err != nil {
			return heap.TID{}, nil, false, err
		}
		if ok {
			return tid, payload, true, nil
		}
	}
	if snap.Historical() {
		payload, found, err := db.archiveLookup(rel.OID, snap.AsOfTime(), check)
		if err != nil || found {
			return heap.TID{}, payload, found, err
		}
	}
	return heap.TID{}, nil, false, nil
}

// archiveLookup scans the vacuum archive for a record of relation rel
// that was live at time asof and satisfies check.
func (db *DB) archiveLookup(rel device.OID, asof int64, check func(payload []byte) (bool, error)) ([]byte, bool, error) {
	var (
		out     []byte
		found   bool
		scanErr error
	)
	err := db.archive.Scan(db.mgr.CurrentSnapshot(), func(_ heap.TID, rec []byte) (bool, error) {
		h, payload, ok := heap.DecodeArchive(rec)
		if !ok || h.Rel != uint32(rel) {
			return false, nil
		}
		if h.XminTime == 0 || h.XminTime > asof {
			return false, nil
		}
		if h.XmaxTime != 0 && h.XmaxTime <= asof {
			return false, nil
		}
		ok2, err := check(payload)
		if err != nil {
			scanErr = err
			return true, nil
		}
		if ok2 {
			out, found = clone(payload), true
			return true, nil
		}
		return false, nil
	})
	if err != nil {
		return nil, false, err
	}
	if scanErr != nil {
		return nil, false, scanErr
	}
	return out, found, nil
}

// lookupChild finds the file OID bound to name inside directory parent,
// using the parent's shard's naming index and verifying against that
// shard's heap (the index key is a hash, so collisions are resolved by
// checking the actual row).
func (db *DB) lookupChild(snap *txn.Snapshot, parent device.OID, name string) (device.OID, heap.TID, error) {
	s := db.ns.dirShard(parent)
	s.lookups.Add(1)
	tid, payload, found, err := db.fetchVisible(s.nameIdx, nameKey(parent, name), s.naming, snap,
		func(payload []byte) (bool, error) {
			gotName, gotParent, _, err := decodeNaming(payload)
			if err != nil {
				return false, err
			}
			return gotName == name && gotParent == parent, nil
		})
	if err != nil {
		return 0, heap.TID{}, err
	}
	if !found {
		return 0, heap.TID{}, ErrNotExist
	}
	s.hits.Add(1)
	_, _, fileOID, err := decodeNaming(payload)
	if err != nil {
		return 0, heap.TID{}, err
	}
	return fileOID, tid, nil
}

// Resolve walks an absolute path to its file OID under snap: one
// snapshot for the whole walk, one shard hop per component. The walk is
// optimistic — it probes the child binding directly and only fetches
// the parent's attributes to classify a miss (is the parent not a
// directory, or does the child not exist?). This is sound because a
// naming row only ever exists under a verified directory: mkdir/create
// check the parent's type before binding, directories are never
// retyped, and OIDs are never reused — so a successful child probe
// proves the parent was a directory without a second index probe.
func (db *DB) Resolve(snap *txn.Snapshot, path string) (device.OID, error) {
	parts, err := SplitPath(path)
	if err != nil {
		return 0, err
	}
	cur := RootDirOID
	for i, name := range parts {
		oid, _, lerr := db.lookupChild(snap, cur, name)
		if lerr == nil {
			cur = oid
			continue
		}
		if !isNotExist(lerr) {
			return 0, fmt.Errorf("%w: %q", lerr, path)
		}
		// Miss: classify against the parent before reporting.
		attr, _, err := db.getAttr(snap, cur)
		if err != nil {
			return 0, err
		}
		if !attr.IsDir() {
			return 0, fmt.Errorf("%w: /%s", ErrNotDirectory, strings.Join(parts[:i], "/"))
		}
		return 0, fmt.Errorf("%w: %q", lerr, path)
	}
	return cur, nil
}

// getAttr fetches the visible fileatt row for a file OID from the
// shard the OID hashes to (attributes route by file OID, not parent,
// so this is always a single-shard probe).
func (db *DB) getAttr(snap *txn.Snapshot, oid device.OID) (FileAttr, heap.TID, error) {
	s := db.ns.fileShard(oid)
	tid, payload, found, err := db.fetchVisible(s.attIdx, oidKey(oid), s.fileatt, snap,
		func(payload []byte) (bool, error) {
			got, err := decodeAttr(payload)
			if err != nil {
				return false, err
			}
			return got.File == oid, nil
		})
	if err != nil {
		return FileAttr{}, heap.TID{}, err
	}
	if !found {
		return FileAttr{}, heap.TID{}, ErrNotExist
	}
	attr, err := decodeAttr(payload)
	if err != nil {
		return FileAttr{}, heap.TID{}, err
	}
	return attr, tid, nil
}

// updateAttr rewrites a file's attribute row under tx (no-overwrite:
// new version inserted, old stamped, index entry added for the new
// TID).
func (db *DB) updateAttr(tx *txn.Tx, snap *txn.Snapshot, oid device.OID, mutate func(*FileAttr)) error {
	attr, tid, err := db.getAttr(snap, oid)
	if err != nil {
		return err
	}
	mutate(&attr)
	s := db.ns.fileShard(oid)
	newTID, err := s.fileatt.UpdateInPlace(tx.ID(), tid, encodeAttr(attr))
	if err != nil {
		return err
	}
	if newTID == tid {
		return nil // same-tx in-place rewrite: index entry already points here
	}
	_, err = s.attIdx.Insert(btree.Entry{Key: oidKey(oid), Val: newTID.Pack()})
	return err
}

// addNaming inserts a naming row plus its index entries into the
// parent directory's shard.
func (db *DB) addNaming(tx *txn.Tx, name string, parent, file device.OID) error {
	s := db.ns.dirShard(parent)
	tid, err := s.naming.Insert(tx.ID(), encodeNaming(name, parent, file))
	if err != nil {
		return err
	}
	if _, err := s.nameIdx.Insert(btree.Entry{Key: nameKey(parent, name), Val: tid.Pack()}); err != nil {
		return err
	}
	if _, err := s.fileIdx.Insert(btree.Entry{Key: oidKey(file), Val: tid.Pack()}); err != nil {
		return err
	}
	s.inserts.Add(1)
	return nil
}

// NamingEntry reports the visible naming row for a file OID: its name
// and parent directory. The row lives in its parent's shard, and the
// parent is exactly what we do not know yet, so every shard's file
// index is probed (the reverse lookup is an admin/path-reconstruction
// operation, not a hot path).
func (db *DB) NamingEntry(snap *txn.Snapshot, oid device.OID) (name string, parent device.OID, tid heap.TID, err error) {
	for _, s := range db.ns.shards {
		var payload []byte
		var found bool
		tid, payload, found, err = db.fetchVisible(s.fileIdx, oidKey(oid), s.naming, snap,
			func(payload []byte) (bool, error) {
				_, _, fileOID, err := decodeNaming(payload)
				if err != nil {
					return false, err
				}
				return fileOID == oid, nil
			})
		if err != nil {
			return "", 0, heap.TID{}, err
		}
		if !found {
			continue
		}
		name, parent, _, err = decodeNaming(payload)
		if err != nil {
			return "", 0, heap.TID{}, err
		}
		return name, parent, tid, nil
	}
	return "", 0, heap.TID{}, ErrNotExist
}

// PathOf reconstructs the absolute path of a file OID ("Inversion
// includes routines … to construct pathnames for particular file
// identifiers").
func (db *DB) PathOf(snap *txn.Snapshot, oid device.OID) (string, error) {
	if oid == RootDirOID {
		return "/", nil
	}
	var parts []string
	cur := oid
	for cur != RootDirOID {
		name, parent, _, err := db.NamingEntry(snap, cur)
		if err != nil {
			return "", err
		}
		parts = append(parts, name)
		cur = parent
		if len(parts) > 4096 {
			return "", fmt.Errorf("%w: naming cycle at oid %d", ErrBadPath, oid)
		}
	}
	// Reverse.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return "/" + strings.Join(parts, "/"), nil
}

// ReadDir lists the visible entries of a directory, sorted by name.
func (db *DB) ReadDir(snap *txn.Snapshot, dir device.OID) ([]DirEntry, error) {
	attr, _, err := db.getAttr(snap, dir)
	if err != nil {
		return nil, err
	}
	if !attr.IsDir() {
		return nil, ErrNotDirectory
	}
	// A directory's entries all live in its own shard (naming routes by
	// parent), so a listing is a single-shard index scan.
	s := db.ns.dirShard(dir)
	seen := make(map[device.OID]bool)
	var out []DirEntry
	var scanErr error
	err = s.nameIdx.Ascend(btree.Key{K1: uint64(dir)}, func(e btree.Entry) bool {
		if e.Key.K1 != uint64(dir) {
			return false
		}
		tid := heap.UnpackTID(e.Val)
		payload, ferr := s.naming.Fetch(snap, tid)
		if ferr != nil {
			return true
		}
		name, parent, fileOID, derr := decodeNaming(payload)
		if derr != nil {
			scanErr = derr
			return false
		}
		if parent != dir || seen[fileOID] {
			return true
		}
		seen[fileOID] = true
		fa, _, aerr := db.getAttr(snap, fileOID)
		if aerr != nil {
			// Attribute row missing (e.g. partially created): skip.
			return true
		}
		out = append(out, DirEntry{Name: name, File: fileOID, Attr: fa})
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	// Historical listings must also surface entries whose naming rows
	// were vacuumed into the archive since then.
	if snap.Historical() {
		asof := snap.AsOfTime()
		err := db.archive.Scan(db.mgr.CurrentSnapshot(), func(_ heap.TID, rec []byte) (bool, error) {
			h, payload, ok := heap.DecodeArchive(rec)
			if !ok || h.Rel != uint32(s.naming.OID) {
				return false, nil
			}
			if h.XminTime == 0 || h.XminTime > asof || (h.XmaxTime != 0 && h.XmaxTime <= asof) {
				return false, nil
			}
			name, parent, fileOID, derr := decodeNaming(payload)
			if derr != nil || parent != dir || seen[fileOID] {
				return false, nil
			}
			seen[fileOID] = true
			fa, _, aerr := db.getAttr(snap, fileOID)
			if aerr != nil {
				return false, nil
			}
			out = append(out, DirEntry{Name: name, File: fileOID, Attr: fa})
			return false, nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// ForEachFile iterates every visible naming row — the range the query
// engine's retrieve statements run over. The naming ⋈ fileatt join
// happens lazily through the function layer.
func (db *DB) ForEachFile(snap *txn.Snapshot, fn func(name string, parent, oid device.OID) error) error {
	for _, s := range db.ns.shards {
		err := s.naming.Scan(snap, func(_ heap.TID, payload []byte) (bool, error) {
			name, parent, oid, err := decodeNaming(payload)
			if err != nil {
				return false, err
			}
			if err := fn(name, parent, oid); err != nil {
				return false, err
			}
			return false, nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// splitDirBase resolves the directory part of path and returns its OID
// plus the final component.
func (db *DB) splitDirBase(snap *txn.Snapshot, path string) (device.OID, string, error) {
	parts, err := SplitPath(path)
	if err != nil {
		return 0, "", err
	}
	if len(parts) == 0 {
		return 0, "", fmt.Errorf("%w: %q has no final component", ErrBadPath, path)
	}
	dirPath := "/" + strings.Join(parts[:len(parts)-1], "/")
	dir, err := db.Resolve(snap, dirPath)
	if err != nil {
		return 0, "", err
	}
	attr, _, err := db.getAttr(snap, dir)
	if err != nil {
		return 0, "", err
	}
	if !attr.IsDir() {
		return 0, "", fmt.Errorf("%w: %q", ErrNotDirectory, dirPath)
	}
	return dir, parts[len(parts)-1], nil
}

// lockName takes an exclusive lock on a (directory, name) binding so
// concurrent creates/unlinks of the same entry serialise. The tag is
// shard-qualified — Rel is the shard's naming OID, and the key mixes
// the parent OID with the name hash — so bindings in unrelated
// directories get distinct tags and never queue on each other, and a
// wait can be charged to the shard it happened in.
func (db *DB) lockName(tx *txn.Tx, parent device.OID, name string) error {
	s := db.ns.dirShard(parent)
	k := nameKey(parent, name)
	waited, err := tx.LockWaited(txn.LockTag{
		Space: txn.SpaceName,
		Rel:   s.naming.OID,
		Key:   mix64(uint64(parent)) ^ k.K2,
	}, txn.LockExclusive)
	if waited {
		s.lockWaits.Add(1)
	}
	return err
}

// writeSnap returns the current-read snapshot mutations use to locate
// the row versions they supersede: latest committed state plus the
// transaction's own changes. Transaction-start snapshots would miss
// commits that landed between transaction start and lock acquisition.
func (db *DB) writeSnap(tx *txn.Tx) *txn.Snapshot {
	return db.mgr.CurrentSnapshotFor(tx.ID())
}

// MkdirTx creates a directory under an explicit transaction.
func (db *DB) MkdirTx(tx *txn.Tx, path, owner string) (device.OID, error) {
	snap := db.writeSnap(tx)
	parent, name, err := db.splitDirBase(snap, path)
	if err != nil {
		return 0, err
	}
	if err := db.lockName(tx, parent, name); err != nil {
		return 0, err
	}
	snap = db.writeSnap(tx) // re-read after the lock serialised us
	if _, _, err := db.lookupChild(snap, parent, name); err == nil {
		return 0, fmt.Errorf("%w: %q", ErrExist, path)
	} else if !isNotExist(err) {
		return 0, err
	}
	oid := db.cat.AllocOID()
	if err := db.addNaming(tx, name, parent, oid); err != nil {
		return 0, err
	}
	now := db.mgr.TimeSource()
	attr := FileAttr{
		File: oid, Owner: owner, Type: TypeDirectory,
		CTime: now, MTime: now, ATime: now,
	}
	fs := db.ns.fileShard(oid)
	tidA, err := fs.fileatt.Insert(tx.ID(), encodeAttr(attr))
	if err != nil {
		return 0, err
	}
	if _, err := fs.attIdx.Insert(btree.Entry{Key: oidKey(oid), Val: tidA.Pack()}); err != nil {
		return 0, err
	}
	if err := db.touchMTime(tx, snap, parent); err != nil {
		return 0, err
	}
	return oid, nil
}

// touchMTime bumps a directory's modification time. The directory's
// attribute row is a hotspot every create/unlink in it rewrites, so it
// is guarded by its own metadata lock and located via a current read.
func (db *DB) touchMTime(tx *txn.Tx, _ *txn.Snapshot, dir device.OID) error {
	if err := tx.Lock(txn.LockTag{Space: txn.SpaceMeta, Rel: dir}, txn.LockExclusive); err != nil {
		return err
	}
	now := db.mgr.TimeSource()
	return db.updateAttr(tx, db.writeSnap(tx), dir, func(a *FileAttr) { a.MTime = now })
}

// UnlinkTx removes a file or empty directory binding. The file's data
// relation and old record versions remain in the database, which is
// what makes undelete-via-time-travel possible.
func (db *DB) UnlinkTx(tx *txn.Tx, path string) error {
	snap := db.writeSnap(tx)
	parent, name, err := db.splitDirBase(snap, path)
	if err != nil {
		return err
	}
	if err := db.lockName(tx, parent, name); err != nil {
		return err
	}
	snap = db.writeSnap(tx)
	oid, namingTID, err := db.lookupChild(snap, parent, name)
	if err != nil {
		return fmt.Errorf("%w: %q", err, path)
	}
	attr, attrTID, err := db.getAttr(snap, oid)
	if err != nil {
		return err
	}
	if attr.IsDir() {
		entries, err := db.ReadDir(snap, oid)
		if err != nil {
			return err
		}
		if len(entries) > 0 {
			return fmt.Errorf("%w: %q", ErrNotEmpty, path)
		}
	} else {
		// Serialise with writers of the file.
		if err := tx.Lock(txn.LockTag{Space: txn.SpaceRelation, Rel: oid}, txn.LockExclusive); err != nil {
			return err
		}
	}
	ds := db.ns.dirShard(parent)
	if err := ds.naming.Delete(tx.ID(), namingTID); err != nil {
		return err
	}
	ds.removes.Add(1)
	if err := db.ns.fileShard(oid).fileatt.Delete(tx.ID(), attrTID); err != nil {
		return err
	}
	return db.touchMTime(tx, snap, parent)
}

// RenameTx moves a binding to a new path (same database). The file
// keeps its OID; only the naming row changes. When the old and new
// parents hash to different shards this is a two-shard transactional
// move — delete in the source shard, insert in the destination — and
// both halves ride the same transaction, so visibility (and crash
// recovery) makes them atomic: no snapshot can ever see the binding in
// both shards or in neither. The file's fileatt row routes by file
// OID, not parent, so attributes never move on rename.
func (db *DB) RenameTx(tx *txn.Tx, oldPath, newPath string) error {
	snap := db.writeSnap(tx)
	oldParent, oldName, err := db.splitDirBase(snap, oldPath)
	if err != nil {
		return err
	}
	newParent, newName, err := db.splitDirBase(snap, newPath)
	if err != nil {
		return err
	}
	// Old binding first, then new; two renames crossing the same pair
	// in opposite directions can close a lock cycle, which the deadlock
	// detector resolves by aborting one (callers retry on ErrDeadlock).
	if err := db.lockName(tx, oldParent, oldName); err != nil {
		return err
	}
	if err := db.lockName(tx, newParent, newName); err != nil {
		return err
	}
	snap = db.writeSnap(tx)
	oid, namingTID, err := db.lookupChild(snap, oldParent, oldName)
	if err != nil {
		return fmt.Errorf("%w: %q", err, oldPath)
	}
	if _, _, err := db.lookupChild(snap, newParent, newName); err == nil {
		return fmt.Errorf("%w: %q", ErrExist, newPath)
	} else if !isNotExist(err) {
		return err
	}
	src, dst := db.ns.dirShard(oldParent), db.ns.dirShard(newParent)
	if err := src.naming.Delete(tx.ID(), namingTID); err != nil {
		return err
	}
	src.removes.Add(1)
	if err := db.addNaming(tx, newName, newParent, oid); err != nil {
		return err
	}
	src.renames.Add(1)
	if src != dst {
		src.crossRenames.Add(1)
	}
	if err := db.touchMTime(tx, snap, oldParent); err != nil {
		return err
	}
	if newParent != oldParent {
		return db.touchMTime(tx, snap, newParent)
	}
	return nil
}

func isNotExist(err error) bool { return errors.Is(err, ErrNotExist) }
