package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// jsonishValidator demands that a file's contents start with '{' and
// end with '}' — a stand-in for the paper's "symbol table and text
// space contain mutually dependent entries" example.
func jsonishValidator(c *FuncCtx) error {
	data, err := c.Contents()
	if err != nil {
		return err
	}
	s := strings.TrimSpace(string(data))
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return errors.New("contents are not a braced object")
	}
	return nil
}

func newValidatedDB(t *testing.T) (*DB, *Session) {
	t.Helper()
	db, s := newDB(t)
	if err := s.DefineType("config", "validated configuration"); err != nil {
		t.Fatal(err)
	}
	db.RegisterValidator("config", jsonishValidator)
	return db, s
}

func TestValidatorAcceptsGoodFile(t *testing.T) {
	_, s := newValidatedDB(t)
	if err := s.WriteFile("/ok.cfg", []byte(`{ "a": 1 }`), CreateOpts{Type: "config"}); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("/ok.cfg")
	if err != nil || string(got) != `{ "a": 1 }` {
		t.Fatalf("read: %q %v", got, err)
	}
}

func TestValidatorAbortsAutocommitWrite(t *testing.T) {
	_, s := newValidatedDB(t)
	err := s.WriteFile("/bad.cfg", []byte("not braced"), CreateOpts{Type: "config"})
	if err == nil || !strings.Contains(err.Error(), "integrity rule") {
		t.Fatalf("bad write: %v", err)
	}
	// The whole autocommit transaction rolled back: no file at all.
	if _, err := s.Stat("/bad.cfg"); !isNotExist(err) {
		t.Fatalf("rejected file exists: %v", err)
	}
}

func TestValidatorAbortsExplicitTransactionAtCommit(t *testing.T) {
	_, s := newValidatedDB(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	// A good file and a bad file in one transaction: commit must fail
	// and take the good file with it (atomicity).
	if err := s.WriteFile("/good.cfg", []byte(`{}`), CreateOpts{Type: "config"}); err != nil {
		t.Fatal(err)
	}
	f, err := s.Create("/bad.cfg", CreateOpts{Type: "config"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("garbage")); err != nil {
		t.Fatal(err)
	}
	// Session.Commit closes open files; the failing close aborts.
	if err := s.Commit(); err == nil {
		t.Fatal("commit with invalid file succeeded")
	}
	for _, p := range []string{"/good.cfg", "/bad.cfg"} {
		if _, err := s.Stat(p); !isNotExist(err) {
			t.Fatalf("%s survived aborted commit: %v", p, err)
		}
	}
}

func TestValidatorRewriteChecked(t *testing.T) {
	_, s := newValidatedDB(t)
	if err := s.WriteFile("/c.cfg", []byte(`{1}`), CreateOpts{Type: "config"}); err != nil {
		t.Fatal(err)
	}
	// Damaging an existing validated file is rejected...
	f, err := s.OpenWrite("/c.cfg")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("oops")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err == nil {
		t.Fatal("damaging rewrite accepted")
	}
	// ...and the old contents survive.
	got, err := s.ReadFile("/c.cfg")
	if err != nil || string(got) != `{1}` {
		t.Fatalf("after rejected rewrite: %q %v", got, err)
	}
}

func TestValidatorNotRunOnReads(t *testing.T) {
	calls := 0
	db, s := newDB(t)
	if err := s.DefineType("counted", ""); err != nil {
		t.Fatal(err)
	}
	db.RegisterValidator("counted", func(c *FuncCtx) error {
		calls++
		return nil
	})
	if err := s.WriteFile("/c", []byte("x"), CreateOpts{Type: "counted"}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("validator ran %d times for one write", calls)
	}
	if _, err := s.ReadFile("/c"); err != nil {
		t.Fatal(err)
	}
	f, err := s.Open("/c")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("validator ran on a read path (%d calls)", calls)
	}
}

func TestUntypedFilesUnvalidated(t *testing.T) {
	_, s := newValidatedDB(t)
	if err := s.WriteFile("/free", []byte("anything goes"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestValidatorSeesMultiChunkContents(t *testing.T) {
	_, s := newValidatedDB(t)
	big := fmt.Sprintf("{%s}", strings.Repeat("x", 3*ChunkSize))
	if err := s.WriteFile("/big.cfg", []byte(big), CreateOpts{Type: "config"}); err != nil {
		t.Fatalf("valid multi-chunk write rejected: %v", err)
	}
	bad := strings.Repeat("y", 3*ChunkSize)
	if err := s.WriteFile("/bad-big.cfg", []byte(bad), CreateOpts{Type: "config"}); err == nil {
		t.Fatal("invalid multi-chunk write accepted")
	}
}
