package core

import (
	"repro/internal/device"
	"repro/internal/rowenc"
)

// TypeDirectory is the file type of directories.
const TypeDirectory = "directory"

// Attribute flags.
const (
	// FlagCompressed marks a file whose chunks are stored compressed,
	// with per-chunk uncompressed sizes recorded so random access stays
	// cheap ("Services Under Investigation").
	FlagCompressed uint32 = 1 << iota
	// FlagNoHistory marks a file whose old versions need not be saved:
	// "For files in which the user has no interest in maintaining
	// history, POSTGRES can be instructed not to save old versions."
	FlagNoHistory
)

// FileAttr is one row of the fileatt table:
//
//	fileatt(file = object_id, owner = owner_id, type = type_id,
//	        size = longlong, ctime = time, mtime = time, atime = time)
//
// extended with the chunk-index relation OID, storage flags, and the
// device class the file was placed on at creation ("the mode flag to
// p_open and p_creat encodes the device on which the file should reside
// at creation time").
type FileAttr struct {
	File  device.OID
	Idx   device.OID
	Owner string
	Type  string
	Size  int64
	CTime int64
	MTime int64
	ATime int64
	Flags uint32
	Class string
}

// IsDir reports whether the attributes describe a directory.
func (a FileAttr) IsDir() bool { return a.Type == TypeDirectory }

// Compressed reports whether chunk payloads are stored compressed.
func (a FileAttr) Compressed() bool { return a.Flags&FlagCompressed != 0 }

// NoHistory reports whether old versions of this file may be discarded.
func (a FileAttr) NoHistory() bool { return a.Flags&FlagNoHistory != 0 }

func encodeAttr(a FileAttr) []byte {
	return rowenc.NewWriter(96).
		Uint32(uint32(a.File)).
		Uint32(uint32(a.Idx)).
		String(a.Owner).
		String(a.Type).
		Int64(a.Size).
		Int64(a.CTime).
		Int64(a.MTime).
		Int64(a.ATime).
		Uint32(a.Flags).
		String(a.Class).
		Done()
}

func decodeAttr(b []byte) (FileAttr, error) {
	r := rowenc.NewReader(b)
	a := FileAttr{
		File:  device.OID(r.Uint32()),
		Idx:   device.OID(r.Uint32()),
		Owner: r.String(),
		Type:  r.String(),
		Size:  r.Int64(),
		CTime: r.Int64(),
		MTime: r.Int64(),
		ATime: r.Int64(),
		Flags: r.Uint32(),
	}
	a.Class = r.String()
	return a, r.Err()
}
