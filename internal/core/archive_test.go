package core

import (
	"bytes"
	"testing"
)

// Time travel must survive the vacuum cleaner: obsolete record
// versions move to the archive, and historical snapshots consult it.

func TestTimeTravelAcrossVacuumFileData(t *testing.T) {
	db, s := newDB(t)
	if err := s.WriteFile("/doc", []byte("generation one"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	t1 := db.mgr.LastCommitTime()
	if err := s.WriteFile("/doc", []byte("generation TWO"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	t2 := db.mgr.LastCommitTime()
	if err := s.WriteFile("/doc", []byte("generation 3!"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}

	stats, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Archived == 0 {
		t.Fatalf("nothing archived: %+v", stats)
	}

	// Historical reads of vacuumed versions come from the archive.
	old, err := s.ReadFileAsOf("/doc", t1)
	if err != nil || string(old) != "generation one" {
		t.Fatalf("asof t1 after vacuum: %q %v", old, err)
	}
	mid, err := s.ReadFileAsOf("/doc", t2)
	if err != nil || string(mid) != "generation TWO" {
		t.Fatalf("asof t2 after vacuum: %q %v", mid, err)
	}
	cur, err := s.ReadFile("/doc")
	if err != nil || string(cur) != "generation 3!" {
		t.Fatalf("current after vacuum: %q %v", cur, err)
	}
}

func TestTimeTravelAcrossVacuumMultiChunk(t *testing.T) {
	db, s := newDB(t)
	gen1 := bytes.Repeat([]byte{1}, 2*ChunkSize+100)
	gen2 := bytes.Repeat([]byte{2}, ChunkSize+50)
	if err := s.WriteFile("/big", gen1, CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	t1 := db.mgr.LastCommitTime()
	if err := s.WriteFile("/big", gen2, CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	old, err := s.ReadFileAsOf("/big", t1)
	if err != nil || !bytes.Equal(old, gen1) {
		t.Fatalf("multi-chunk history after vacuum: %d bytes, %v", len(old), err)
	}
}

func TestUndeleteAcrossVacuum(t *testing.T) {
	db, s := newDB(t)
	if err := s.WriteFile("/gone", []byte("bring me back"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	before := db.mgr.LastCommitTime()
	if err := s.Unlink("/gone"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	// The naming and attribute rows were vacuumed into the archive;
	// resolution under a historical snapshot must still find them.
	data, err := s.ReadFileAsOf("/gone", before)
	if err != nil || string(data) != "bring me back" {
		t.Fatalf("undelete after vacuum: %q %v", data, err)
	}
	attr, err := s.StatAsOf("/gone", before)
	if err != nil || attr.Size != int64(len("bring me back")) {
		t.Fatalf("stat after vacuum: %+v %v", attr, err)
	}
}

func TestReadDirAsOfAcrossVacuum(t *testing.T) {
	db, s := newDB(t)
	if err := s.WriteFile("/old-entry", []byte("x"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	before := db.mgr.LastCommitTime()
	if err := s.Unlink("/old-entry"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/new-entry", []byte("y"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	then, err := s.ReadDirAsOf("/", before)
	if err != nil {
		t.Fatal(err)
	}
	if len(then) != 1 || then[0].Name != "old-entry" {
		t.Fatalf("historical listing after vacuum: %+v", then)
	}
	now, err := s.ReadDir("/")
	if err != nil || len(now) != 1 || now[0].Name != "new-entry" {
		t.Fatalf("current listing after vacuum: %+v %v", now, err)
	}
}

func TestNoHistoryFileLosesVacuumedHistory(t *testing.T) {
	// The explicit opt-out: with FlagNoHistory the vacuum discards old
	// versions, and time travel to before the overwrite yields the
	// file as absent data (not the old bytes).
	db, s := newDB(t)
	if err := s.WriteFile("/fast", []byte("v1"), CreateOpts{Flags: FlagNoHistory}); err != nil {
		t.Fatal(err)
	}
	t1 := db.mgr.LastCommitTime()
	if err := s.WriteFile("/fast", []byte("v2"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	old, err := s.ReadFileAsOf("/fast", t1)
	if err != nil {
		// Attribute history may also be gone; either failing the open
		// or reading zeros is acceptable — what is NOT acceptable is
		// recovering "v1".
		return
	}
	if string(old) == "v1" {
		t.Fatal("no-history file's old version survived vacuum")
	}
}

func TestNameReuseKeepsHistoriesApart(t *testing.T) {
	// The same path bound to two different files over time: each
	// historical instant resolves to the file (and contents) of its
	// era, even after vacuuming.
	db, s := newDB(t)
	if err := s.WriteFile("/name", []byte("first incarnation"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	t1 := db.mgr.LastCommitTime()
	firstOID := mustOID(t, db, "/name")
	if err := s.Unlink("/name"); err != nil {
		t.Fatal(err)
	}
	t2 := db.mgr.LastCommitTime()
	if err := s.WriteFile("/name", []byte("second, different file"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	secondOID := mustOID(t, db, "/name")
	if firstOID == secondOID {
		t.Fatal("oid reused for a new file")
	}
	check := func() {
		t.Helper()
		got, err := s.ReadFileAsOf("/name", t1)
		if err != nil || string(got) != "first incarnation" {
			t.Fatalf("asof t1: %q %v", got, err)
		}
		if _, err := s.StatAsOf("/name", t2); !isNotExist(err) {
			t.Fatalf("between incarnations: %v", err)
		}
		got, err = s.ReadFile("/name")
		if err != nil || string(got) != "second, different file" {
			t.Fatalf("current: %q %v", got, err)
		}
	}
	check()
	if _, err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	check()
}

// Media scrubbing over the self-identifying page headers.

func TestCheckMediaClean(t *testing.T) {
	db, s := newDB(t)
	if err := s.WriteFile("/a", bytes.Repeat([]byte{7}, 2*ChunkSize), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	rep, err := db.CheckMedia()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("clean database reported corrupt: %+v", rep.Corrupt)
	}
	if rep.PagesChecked == 0 || rep.Relations < 4 {
		t.Fatalf("scrub did no work: %+v", rep)
	}
}

func TestCheckMediaDetectsCorruption(t *testing.T) {
	db, s := newDB(t)
	if err := s.WriteFile("/victim", bytes.Repeat([]byte{9}, ChunkSize), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := db.pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	oid := mustOID(t, db, "/victim")
	// Corrupt the self-identification of the file's first page on
	// "stable storage" — a block written to the wrong place by a
	// failing controller.
	buf := make([]byte, 8192)
	if err := db.sw.ReadPage(oid, 0, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0xFF
	if err := db.sw.WritePage(oid, 0, buf); err != nil {
		t.Fatal(err)
	}
	db.pool.Crash() // drop cached copy so the scrub sees the device

	rep, err := db.CheckMedia()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("corruption not detected")
	}
	found := false
	for _, c := range rep.Corrupt {
		if c.Rel == oid && c.Page == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong corruption report: %+v", rep.Corrupt)
	}
}
