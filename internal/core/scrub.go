package core

import (
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/page"
	"repro/internal/txn"
)

// Media scrubbing. The paper: "The only difficulties arise when the
// physical storage medium is damaged, or when garbage has been written
// to the medium by hardware or software failures. Inversion could
// detect these cases by making all blocks self-identifying; every block
// could be tagged with its file identifier and block number." Every
// heap page here carries that tag, and CheckMedia verifies it against
// stable storage.

// Corruption describes one damaged page found by CheckMedia.
type Corruption struct {
	Rel    device.OID
	Page   uint32
	Reason string
}

func (c Corruption) String() string {
	return fmt.Sprintf("relation %d page %d: %s", c.Rel, c.Page, c.Reason)
}

// MediaReport summarises a scrub pass.
type MediaReport struct {
	Relations    int
	PagesChecked int
	Corrupt      []Corruption
}

// OK reports whether the medium verified clean.
func (r MediaReport) OK() bool { return len(r.Corrupt) == 0 }

// CheckMedia reads every heap page of every catalogued relation (plus
// the fixed system relations) directly from stable storage and verifies
// the self-identifying header. Dirty pages are flushed first so the
// device contents are current. Index relations use the B-tree node
// format and are verified structurally by btree.CheckInvariants
// instead.
func (db *DB) CheckMedia() (MediaReport, error) {
	var rep MediaReport
	if err := db.pool.FlushAll(); err != nil {
		return rep, err
	}
	var rels []device.OID
	for _, s := range db.ns.shards {
		rels = append(rels, s.naming.OID, s.fileatt.OID)
	}
	rels = append(rels, ArchiveRel,
		catalog.RelationsRel, catalog.TypesRel, catalog.FunctionsRel)
	for _, ri := range db.cat.Relations() {
		if ri.Kind == catalog.KindHeap {
			rels = append(rels, ri.OID)
		}
	}
	buf := make(page.Page, page.Size)
	for _, rel := range rels {
		n, err := db.sw.NPages(rel)
		if err != nil {
			// A catalogued relation whose storage is gone is itself a
			// media fault.
			rep.Corrupt = append(rep.Corrupt, Corruption{Rel: rel, Reason: err.Error()})
			continue
		}
		rep.Relations++
		for pn := uint32(0); pn < n; pn++ {
			if err := db.sw.ReadPage(rel, pn, buf); err != nil {
				rep.Corrupt = append(rep.Corrupt, Corruption{rel, pn, err.Error()})
				continue
			}
			rep.PagesChecked++
			if !buf.Initialized() {
				continue // never-written extension page
			}
			if buf.Rel() != uint32(rel) {
				rep.Corrupt = append(rep.Corrupt, Corruption{rel, pn,
					fmt.Sprintf("self-ident relation %d, want %d", buf.Rel(), rel)})
				continue
			}
			if buf.Block() != pn {
				rep.Corrupt = append(rep.Corrupt, Corruption{rel, pn,
					fmt.Sprintf("self-ident block %d, want %d", buf.Block(), pn)})
			}
		}
	}
	return rep, nil
}

// ScrubReport is the result of a full integrity pass: the media scrub
// plus structural checks of every B-tree, the namespace cross-links,
// every file's chunk records, and the transaction log. It is the
// torture harness's verifier and, over the wire, an operator tool.
type ScrubReport struct {
	Media          MediaReport
	IndexesChecked int
	FilesChecked   int
	ChunksChecked  int
	Problems       []string
}

// OK reports whether the database verified clean.
func (r ScrubReport) OK() bool { return r.Media.OK() && len(r.Problems) == 0 }

// Summary renders the report in one line.
func (r ScrubReport) Summary() string {
	return fmt.Sprintf("scrub: %d pages, %d indexes, %d files, %d chunks checked; %d media faults, %d problems",
		r.Media.PagesChecked, r.IndexesChecked, r.FilesChecked, r.ChunksChecked,
		len(r.Media.Corrupt), len(r.Problems))
}

func (r *ScrubReport) problemf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Scrub runs the full read-only integrity pass over the latest
// committed state:
//
//   - the media scrub (self-identifying page headers against stable
//     storage),
//   - structural invariants of every B-tree (node kinds, key order,
//     child separators),
//   - namespace cross-checks: every visible naming row resolves to a
//     live attribute row, parents exist and are directories, and the
//     name and file indexes can find the row,
//   - chunk well-formedness for every visible file: records decode, no
//     chunk exceeds ChunkSize, no visible chunk lies wholly beyond the
//     file's size, and each is reachable through the chunk index,
//   - the transaction log: no committed transaction without a commit
//     time (the torn-force state recovery repairs at open).
//
// Scrub takes no locks; it reads under a current snapshot, so running
// it against a live database may report transient problems if writers
// race it. The torture harness runs it on a quiesced, freshly recovered
// database, where any problem is real.
func (db *DB) Scrub() (ScrubReport, error) {
	var rep ScrubReport
	media, err := db.CheckMedia()
	if err != nil {
		return rep, err
	}
	rep.Media = media

	// Structural B-tree invariants: every shard's namespace indexes plus
	// every catalogued chunk index.
	var idxTrees []struct {
		name string
		tree *btree.Tree
	}
	for i, s := range db.ns.shards {
		idxTrees = append(idxTrees,
			struct {
				name string
				tree *btree.Tree
			}{shardName(i, "naming_name_idx"), s.nameIdx},
			struct {
				name string
				tree *btree.Tree
			}{shardName(i, "naming_file_idx"), s.fileIdx},
			struct {
				name string
				tree *btree.Tree
			}{shardName(i, "fileatt_idx"), s.attIdx})
	}
	for _, ri := range db.cat.Relations() {
		if ri.Kind != catalog.KindIndex {
			continue
		}
		t, err := db.chunkTree(ri.OID)
		if err != nil {
			rep.problemf("index %s (oid %d): open: %v", ri.Name, ri.OID, err)
			continue
		}
		idxTrees = append(idxTrees, struct {
			name string
			tree *btree.Tree
		}{ri.Name, t})
	}
	for _, it := range idxTrees {
		rep.IndexesChecked++
		if err := it.tree.CheckInvariants(); err != nil {
			rep.problemf("index %s: %v", it.name, err)
		}
	}

	// Transaction log: a committed XID with no commit time is the torn
	// commit force recovery heals; seeing one here means the log on this
	// live instance is in that state right now.
	for _, x := range db.mgr.Log().CheckZeroTimes() {
		rep.problemf("txn log: committed xid %d has no commit time", x)
	}

	// Namespace and chunk checks under one current snapshot.
	snap := db.mgr.CurrentSnapshot()
	type nameRow struct {
		name   string
		parent device.OID
		file   device.OID
	}
	var rows []nameRow
	for _, s := range db.ns.shards {
		s := s
		err = s.naming.Scan(snap, func(_ heap.TID, rec []byte) (bool, error) {
			name, parent, file, err := decodeNaming(rec)
			if err != nil {
				rep.problemf("%s: undecodable row: %v", shardName(s.id, "naming"), err)
				return false, nil
			}
			// Routing invariant: a naming row must live in its parent's
			// shard, or lookups would never find it.
			if home := db.ns.dirShard(parent); home != s {
				rep.problemf("file %q (oid %d): naming row in shard %d, parent %d routes to shard %d",
					name, file, s.id, parent, home.id)
			}
			rows = append(rows, nameRow{name, parent, file})
			return false, nil
		})
		if err != nil {
			return rep, err
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].file < rows[j].file })
	dirs := make(map[device.OID]bool)
	attrs := make(map[device.OID]FileAttr)
	for _, row := range rows {
		attr, _, err := db.getAttr(snap, row.file)
		if err != nil {
			rep.problemf("file %q (oid %d): naming row has no attribute row: %v",
				row.name, row.file, err)
			continue
		}
		attrs[row.file] = attr
		if attr.IsDir() {
			dirs[row.file] = true
		}
	}
	for _, row := range rows {
		if row.parent == 0 {
			if row.name != "/" {
				rep.problemf("file %q (oid %d): parent 0 but not the root", row.name, row.file)
			}
			continue
		}
		if !dirs[row.parent] {
			rep.problemf("file %q (oid %d): parent %d is not a visible directory",
				row.name, row.file, row.parent)
		}
		// The lookup indexes must find the row the scan found.
		if oid, _, err := db.lookupChild(snap, row.parent, row.name); err != nil || oid != row.file {
			rep.problemf("file %q (oid %d): name index lookup failed (got oid %d, err %v)",
				row.name, row.file, oid, err)
		}
	}

	// Chunk well-formedness, file by file.
	for _, row := range rows {
		attr, ok := attrs[row.file]
		if !ok || attr.IsDir() {
			continue
		}
		rep.FilesChecked++
		db.scrubChunks(&rep, snap, row.name, attr)
	}
	return rep, nil
}

// scrubChunks verifies one file's visible chunk records: decodable, in
// bounds, and reachable through the chunk index.
func (db *DB) scrubChunks(rep *ScrubReport, snap *txn.Snapshot, name string, attr FileAttr) {
	idx, err := db.chunkTree(attr.Idx)
	if err != nil {
		rep.problemf("file %q: chunk index %d: %v", name, attr.Idx, err)
		return
	}
	data := db.dataRel(attr.File)
	err = data.Scan(snap, func(tid heap.TID, rec []byte) (bool, error) {
		rep.ChunksChecked++
		no, payload, err := decodeChunk(rec)
		if err != nil {
			rep.problemf("file %q: chunk at %s: undecodable: %v", name, tid, err)
			return false, nil
		}
		limit := ChunkSize
		if attr.Compressed() {
			limit = ChunkSize + compressOverhead
		}
		if len(payload) > limit {
			rep.problemf("file %q: chunk %d: payload %d exceeds %d bytes", name, no, len(payload), limit)
		}
		if int64(no)*ChunkSize >= attr.Size {
			rep.problemf("file %q: visible chunk %d lies wholly beyond size %d", name, no, attr.Size)
		}
		// The index must be able to reach this visible record.
		gotTID, _, found, err := db.fetchVisible(idx, btree.Key{K1: uint64(no)}, data, snap,
			func(r []byte) (bool, error) {
				n2, _, err := decodeChunk(r)
				return err == nil && n2 == no, nil
			})
		if err != nil || !found || gotTID != tid {
			rep.problemf("file %q: chunk %d at %s unreachable via index (found=%v tid=%v err=%v)",
				name, no, tid, found, gotTID, err)
		}
		return false, nil
	})
	if err != nil {
		rep.problemf("file %q: chunk scan: %v", name, err)
	}
}
