package core

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/page"
)

// Media scrubbing. The paper: "The only difficulties arise when the
// physical storage medium is damaged, or when garbage has been written
// to the medium by hardware or software failures. Inversion could
// detect these cases by making all blocks self-identifying; every block
// could be tagged with its file identifier and block number." Every
// heap page here carries that tag, and CheckMedia verifies it against
// stable storage.

// Corruption describes one damaged page found by CheckMedia.
type Corruption struct {
	Rel    device.OID
	Page   uint32
	Reason string
}

func (c Corruption) String() string {
	return fmt.Sprintf("relation %d page %d: %s", c.Rel, c.Page, c.Reason)
}

// MediaReport summarises a scrub pass.
type MediaReport struct {
	Relations    int
	PagesChecked int
	Corrupt      []Corruption
}

// OK reports whether the medium verified clean.
func (r MediaReport) OK() bool { return len(r.Corrupt) == 0 }

// CheckMedia reads every heap page of every catalogued relation (plus
// the fixed system relations) directly from stable storage and verifies
// the self-identifying header. Dirty pages are flushed first so the
// device contents are current. Index relations use the B-tree node
// format and are verified structurally by btree.CheckInvariants
// instead.
func (db *DB) CheckMedia() (MediaReport, error) {
	var rep MediaReport
	if err := db.pool.FlushAll(); err != nil {
		return rep, err
	}
	rels := []device.OID{
		NamingRel, FileAttRel, ArchiveRel,
		catalog.RelationsRel, catalog.TypesRel, catalog.FunctionsRel,
	}
	for _, ri := range db.cat.Relations() {
		if ri.Kind == catalog.KindHeap {
			rels = append(rels, ri.OID)
		}
	}
	buf := make(page.Page, page.Size)
	for _, rel := range rels {
		n, err := db.sw.NPages(rel)
		if err != nil {
			// A catalogued relation whose storage is gone is itself a
			// media fault.
			rep.Corrupt = append(rep.Corrupt, Corruption{Rel: rel, Reason: err.Error()})
			continue
		}
		rep.Relations++
		for pn := uint32(0); pn < n; pn++ {
			if err := db.sw.ReadPage(rel, pn, buf); err != nil {
				rep.Corrupt = append(rep.Corrupt, Corruption{rel, pn, err.Error()})
				continue
			}
			rep.PagesChecked++
			if !buf.Initialized() {
				continue // never-written extension page
			}
			if buf.Rel() != uint32(rel) {
				rep.Corrupt = append(rep.Corrupt, Corruption{rel, pn,
					fmt.Sprintf("self-ident relation %d, want %d", buf.Rel(), rel)})
				continue
			}
			if buf.Block() != pn {
				rep.Corrupt = append(rep.Corrupt, Corruption{rel, pn,
					fmt.Sprintf("self-ident block %d, want %d", buf.Block(), pn)})
			}
		}
	}
	return rep, nil
}
