package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/device"
	"repro/internal/txn"
	"repro/internal/value"
)

// Value is the dynamically typed result of a file function or query
// expression.
type Value = value.V

// FuncCtx is handed to user-defined functions when they run inside the
// data manager. It gives access to the file's attributes, its contents
// (through an ordinary read-only File), and its path.
type FuncCtx struct {
	DB   *DB
	Snap *txn.Snapshot
	OID  device.OID
	Attr FileAttr

	file *File
}

// File opens (once) and returns a read-only handle on the subject file,
// positioned at the start.
func (c *FuncCtx) File() (*File, error) {
	if c.file != nil {
		if _, err := c.file.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		return c.file, nil
	}
	f, err := c.DB.openByOID(nil, c.Snap, c.OID, false)
	if err != nil {
		return nil, err
	}
	c.file = f
	return f, nil
}

// Contents reads the whole subject file.
func (c *FuncCtx) Contents() ([]byte, error) {
	f, err := c.File()
	if err != nil {
		return nil, err
	}
	data := make([]byte, f.Size())
	if len(data) == 0 {
		return data, nil
	}
	if _, err := io.ReadFull(f, data); err != nil && err != io.EOF {
		return nil, err
	}
	return data, nil
}

// Path reports the subject file's absolute pathname.
func (c *FuncCtx) Path() (string, error) { return c.DB.PathOf(c.Snap, c.OID) }

func (c *FuncCtx) close() {
	if c.file != nil {
		_ = c.file.Close()
		c.file = nil
	}
}

// RegisterFunc installs the implementation of a function. It is the
// analogue of POSTGRES dynamically loading user code into the data
// manager process: the function will execute with the data manager's
// own address space and permissions.
func (db *DB) RegisterFunc(name string, impl FileFunc) {
	db.funcMu.Lock()
	db.funcs[name] = impl
	db.funcMu.Unlock()
}

// FuncRegistered reports whether an implementation is loaded.
func (db *DB) FuncRegistered(name string) bool {
	db.funcMu.RLock()
	defer db.funcMu.RUnlock()
	_, ok := db.funcs[name]
	if !ok {
		_, ok = db.builtin[name]
	}
	return ok
}

// CallFunc invokes a function on a file. Builtins (owner, size, dir,
// …) need no declaration; user functions must be declared in the
// catalog and type-check against the file's type: "POSTGRES will
// automatically enforce type checking when … functions are called that
// operate on the file."
func (db *DB) CallFunc(snap *txn.Snapshot, name string, oid device.OID) (Value, error) {
	attr, _, err := db.getAttr(snap, oid)
	if err != nil {
		return value.Null(), err
	}
	ctx := &FuncCtx{DB: db, Snap: snap, OID: oid, Attr: attr}
	defer ctx.close()

	if impl, ok := db.builtin[name]; ok {
		return impl(ctx)
	}
	decl, ok := db.cat.Function(name)
	if !ok {
		return value.Null(), fmt.Errorf("%w: %q", ErrNoFunction, name)
	}
	if decl.TypeName != "" && decl.TypeName != attr.Type {
		return value.Null(), fmt.Errorf("%w: %s applies to type %q, file is %q",
			ErrTypeMismatch, name, decl.TypeName, attr.Type)
	}
	db.funcMu.RLock()
	impl, ok := db.funcs[name]
	db.funcMu.RUnlock()
	if !ok {
		return value.Null(), fmt.Errorf("%w: %q declared but not loaded", ErrNoFunction, name)
	}
	return impl(ctx)
}

// registerBuiltins installs the metadata accessors every POSTQUEL query
// over the file system relies on (owner(file), filetype(file),
// size(file), dir(file), month_of(file), …).
func (db *DB) registerBuiltins() {
	db.builtin = map[string]FileFunc{
		"owner": func(c *FuncCtx) (Value, error) { return value.Str(c.Attr.Owner), nil },
		"filetype": func(c *FuncCtx) (Value, error) {
			return value.Str(c.Attr.Type), nil
		},
		"size": func(c *FuncCtx) (Value, error) { return value.Int(c.Attr.Size), nil },
		"name": func(c *FuncCtx) (Value, error) {
			n, _, _, err := c.DB.NamingEntry(c.Snap, c.OID)
			if err != nil {
				return value.Null(), err
			}
			return value.Str(n), nil
		},
		"dir": func(c *FuncCtx) (Value, error) {
			if c.OID == RootDirOID {
				return value.Str("/"), nil // the root is its own parent
			}
			_, parent, _, err := c.DB.NamingEntry(c.Snap, c.OID)
			if err != nil {
				return value.Null(), err
			}
			p, err := c.DB.PathOf(c.Snap, parent)
			if err != nil {
				return value.Null(), err
			}
			return value.Str(p), nil
		},
		"path": func(c *FuncCtx) (Value, error) {
			p, err := c.Path()
			if err != nil {
				return value.Null(), err
			}
			return value.Str(p), nil
		},
		"oid":   func(c *FuncCtx) (Value, error) { return value.Int(int64(c.Attr.File)), nil },
		"ctime": func(c *FuncCtx) (Value, error) { return value.Int(c.Attr.CTime), nil },
		"mtime": func(c *FuncCtx) (Value, error) { return value.Int(c.Attr.MTime), nil },
		"atime": func(c *FuncCtx) (Value, error) { return value.Int(c.Attr.ATime), nil },
		"device": func(c *FuncCtx) (Value, error) {
			class, err := c.DB.sw.HomeClass(c.Attr.File)
			if err != nil {
				// Directories own no relation; report the attr class.
				return value.Str(c.Attr.Class), nil
			}
			return value.Str(class), nil
		},
		"isdir": func(c *FuncCtx) (Value, error) { return value.Bool(c.Attr.IsDir()), nil },
		"month_of": func(c *FuncCtx) (Value, error) {
			return value.Str(time.Unix(0, c.Attr.MTime).UTC().Month().String()), nil
		},
	}
}
