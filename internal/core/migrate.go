package core

import (
	"time"

	"repro/internal/btree"
	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/sysview"
	"repro/internal/txn"
)

func btreeEntry(key btree.Key, tid heap.TID) btree.Entry {
	return btree.Entry{Key: key, Val: tid.Pack()}
}

func chunkKey(chunkno uint32) btree.Key { return btree.Key{K1: uint64(chunkno)} }

// MigrateFile moves a file's chunk table and chunk index to another
// device class. Accesses stay location-transparent throughout; only the
// device switch's routing changes. ("Files that meet some selection
// criteria should be moved from fast, expensive storage like magnetic
// disk to slower, cheaper storage, such as magnetic tape.")
func (db *DB) MigrateFile(oid device.OID, attr FileAttr, class string) error {
	if _, err := db.sw.Manager(class); err != nil {
		return err
	}
	// Push cached pages down so the copy sees current bytes, then drop
	// them: page identity moves devices.
	if err := db.pool.FlushRel(oid); err != nil {
		return err
	}
	if err := db.pool.FlushRel(attr.Idx); err != nil {
		return err
	}
	if err := db.sw.Migrate(oid, class); err != nil {
		return err
	}
	db.pool.InvalidateRel(oid)
	if err := db.sw.Migrate(attr.Idx, class); err != nil {
		return err
	}
	db.pool.InvalidateRel(attr.Idx)
	return nil
}

// VacuumStats aggregates a database-wide vacuum pass.
type VacuumStats struct {
	Relations int
	heap.VacuumStats
}

// Vacuum runs the vacuum cleaner over the naming and attribute tables
// and every file chunk table. Obsolete record versions are moved to the
// archive relation (or discarded for FlagNoHistory files), and stale
// index entries are removed from the B-trees.
func (db *DB) Vacuum() (VacuumStats, error) {
	var out VacuumStats
	// Wall clock, deliberately not the injected TimeSource: vacuum
	// telemetry (the registry and inv_vacuum) reports real durations
	// even under a simulated commit clock.
	start := time.Now()
	vx, err := db.mgr.Begin()
	if err != nil {
		return out, err
	}
	horizon := db.mgr.Horizon()
	snap := db.mgr.CurrentSnapshot()

	// Metadata relations, shard by shard: archive history, fix up each
	// shard's own indexes (a row's index entries live in its shard).
	for _, s := range db.ns.shards {
		s := s
		nstats, err := s.naming.Vacuum(horizon, heap.VacuumArchive, db.archive, vx.ID(),
			func(tid heap.TID, payload []byte) {
				if name, parent, file, err := decodeNaming(payload); err == nil {
					_ = s.nameIdx.Delete(btreeEntry(nameKey(parent, name), tid))
					_ = s.fileIdx.Delete(btreeEntry(oidKey(file), tid))
				}
			})
		if err != nil {
			abort(vx)
			return out, err
		}
		out.merge(nstats)
		astats, err := s.fileatt.Vacuum(horizon, heap.VacuumArchive, db.archive, vx.ID(),
			func(tid heap.TID, payload []byte) {
				if a, err := decodeAttr(payload); err == nil {
					_ = s.attIdx.Delete(btreeEntry(oidKey(a.File), tid))
				}
			})
		if err != nil {
			abort(vx)
			return out, err
		}
		out.merge(astats)
	}

	// File chunk tables: every relation named inv<oid> in the catalog.
	for _, ri := range db.cat.Relations() {
		if ri.Name != DataRelName(ri.OID) {
			continue
		}
		mode := heap.VacuumArchive
		if attr, _, err := db.getAttr(snap, ri.OID); err == nil && attr.NoHistory() {
			mode = heap.VacuumDiscard
		}
		tree, err := db.chunkTreeForFile(snap, ri.OID)
		rel := db.dataRel(ri.OID)
		if err != nil {
			abort(vx)
			return out, err
		}
		stats, err := rel.Vacuum(horizon, mode, db.archive, vx.ID(),
			func(tid heap.TID, payload []byte) {
				if tree == nil {
					return
				}
				if chunkno, _, err := decodeChunk(payload); err == nil {
					_ = tree.Delete(btreeEntry(chunkKey(chunkno), tid))
				}
			})
		if err != nil {
			abort(vx)
			return out, err
		}
		out.merge(stats)
		out.Relations++
	}
	// Metrics-history relations (when the volume has them): ticks the
	// retention ladder deleted are discarded, never archived — the
	// history relations are themselves the archive of the registry, and
	// the budget is the point of retention.
	for _, oid := range []device.OID{HistoryRel, HistorySamplesRel} {
		if _, ok := db.cat.RelationByOID(oid); !ok {
			continue
		}
		stats, err := db.dataRel(oid).Vacuum(horizon, heap.VacuumDiscard, nil, vx.ID(), nil)
		if err != nil {
			abort(vx)
			return out, err
		}
		out.merge(stats)
		out.Relations++
	}
	if err := vx.Commit(); err != nil {
		return out, err
	}
	db.recordVacuum(out, start, time.Since(start))
	return out, nil
}

func (v *VacuumStats) merge(s heap.VacuumStats) { v.VacuumStats.Add(s) }

// recordVacuum publishes a completed run to the metrics registry (the
// vacuum.* counters /metrics scrapes) and to the bounded in-memory
// history that inv_vacuum serves.
func (db *DB) recordVacuum(s VacuumStats, start time.Time, dur time.Duration) {
	m := db.metrics
	m.Counter("vacuum.runs").Inc()
	m.Counter("vacuum.pages_scanned").Add(int64(s.Pages))
	m.Counter("vacuum.tuples_scanned").Add(int64(s.Scanned))
	m.Counter("vacuum.tuples_archived").Add(int64(s.Archived))
	m.Counter("vacuum.tuples_removed").Add(int64(s.Removed))
	m.Counter("vacuum.bytes_reclaimed").Add(int64(s.Reclaimed))

	row := sysview.VacuumRow{
		StartUnixNs: start.UnixNano(),
		DurationNs:  int64(dur),
		Relations:   int64(s.Relations),
		Pages:       int64(s.Pages),
		Scanned:     int64(s.Scanned),
		Archived:    int64(s.Archived),
		Removed:     int64(s.Removed),
		Reclaimed:   int64(s.Reclaimed),
	}
	db.vacMu.Lock()
	db.vacRuns = append([]sysview.VacuumRow{row}, db.vacRuns...)
	if len(db.vacRuns) > maxVacuumRuns {
		db.vacRuns = db.vacRuns[:maxVacuumRuns]
	}
	db.vacMu.Unlock()
}

func abort(tx *txn.Tx) { _ = tx.Abort() }

// chunkTreeForFile finds a file's chunk index tree via its attributes;
// it returns nil (no error) if the attribute row is gone (file
// unlinked) — dead chunk index entries are then left to the index's own
// emptiness.
func (db *DB) chunkTreeForFile(snap *txn.Snapshot, oid device.OID) (*btree.Tree, error) {
	attr, _, err := db.getAttr(snap, oid)
	if err != nil {
		if isNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	t, err := db.chunkTree(attr.Idx)
	if err != nil {
		return nil, err
	}
	return t, nil
}
