package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/rowenc"
	"repro/internal/sysview"
	"repro/internal/txn"
	"repro/internal/value"
)

// Metrics history: the engine as its own observability backend. The
// registry, trace ring, and flight recorder are all scrape-or-lose
// state; here an opt-in recorder periodically diffs the registry (via
// obs.HistoryDiffer) and appends the per-tick samples into two real
// system relations, so the full POSTQUEL surface — including asof —
// works on the system's own history, across its own crash recoveries.
//
// The recorder is wall-clock paced and never reads the virtual commit
// clock (TimeSource): tick timestamps are observability truth, not
// transaction time, and the simulated-clock benchmark digits must stay
// byte-identical whether or not history is enabled. When disabled (the
// default) the relations are never created and no recorder goroutine
// exists.

// Well-known OIDs for the metrics-history relations. Like the other
// system OIDs they sit below FirstUserOID; the relations are created
// lazily at first enable and registered in the system catalog, which
// buys reopen re-placement, CheckMedia coverage, and inv_relations
// visibility for free. They carry no naming rows, so they are invisible
// to ReadDir, and their names differ from DataRelName(oid), so the
// chunk-table vacuum loop and scrub's chunk checks skip them.
const (
	HistoryRel        device.OID = 17 // inv_history: one row per tick
	HistorySamplesRel device.OID = 18 // inv_history_samples: tick × metric
)

// Names the history relations are catalogued (and queried) under.
const (
	HistoryRelName        = "inv_history"
	HistorySamplesRelName = "inv_history_samples"
)

// Tick levels: raw recorder ticks and retention rollups.
const (
	HistoryLevelRaw    = 0
	HistoryLevelRollup = 1
)

// ErrHistoryDisabled is returned by history APIs when the database was
// opened without Options.MetricsHistory.
var ErrHistoryDisabled = errors.New("inversion: metrics history not enabled")

// HistoryBudget is the retention ladder: raw ticks are kept RawFor,
// then aggregated into RollupEvery-wide level-1 ticks which are kept
// RollupFor; everything older is deleted (and physically reclaimed by
// the next vacuum). Zero fields select the defaults.
type HistoryBudget struct {
	RawFor      time.Duration // keep raw ticks this long (default 1h)
	RollupEvery time.Duration // rollup window width (default 1m)
	RollupFor   time.Duration // keep rollups this long (default 24h)
}

func (b HistoryBudget) withDefaults() HistoryBudget {
	if b.RawFor <= 0 {
		b.RawFor = time.Hour
	}
	if b.RollupEvery <= 0 {
		b.RollupEvery = time.Minute
	}
	if b.RollupFor <= 0 {
		b.RollupFor = 24 * time.Hour
	}
	return b
}

// HistoryTick is one inv_history row: the metadata of a recorded tick.
// Dropped marks a tick whose predecessor(s) failed to record (the gap
// before this tick lost data), so replay tools can render the hole
// honestly instead of interpolating across it.
type HistoryTick struct {
	Seq        int64
	WallNs     int64
	IntervalNs int64
	Level      uint32
	Dropped    bool
}

func encodeHistoryTick(t HistoryTick) []byte {
	var dropped uint32
	if t.Dropped {
		dropped = 1
	}
	return rowenc.NewWriter(40).
		Int64(t.Seq).Int64(t.WallNs).Int64(t.IntervalNs).
		Uint32(t.Level).Uint32(dropped).Done()
}

func decodeHistoryTick(b []byte) (HistoryTick, error) {
	r := rowenc.NewReader(b)
	t := HistoryTick{
		Seq:        r.Int64(),
		WallNs:     r.Int64(),
		IntervalNs: r.Int64(),
		Level:      r.Uint32(),
	}
	t.Dropped = r.Uint32() != 0
	return t, r.Err()
}

func encodeHistorySample(seq int64, s obs.HistorySample) []byte {
	return rowenc.NewWriter(48 + len(s.Name) + len(s.Labels)).
		Int64(seq).String(s.Name).String(s.Labels).String(s.Kind).
		Uint64(math.Float64bits(s.Value)).Done()
}

func decodeHistorySample(b []byte) (seq int64, s obs.HistorySample, err error) {
	r := rowenc.NewReader(b)
	seq = r.Int64()
	s.Name = r.String()
	s.Labels = r.String()
	s.Kind = r.String()
	s.Value = math.Float64frombits(r.Uint64())
	return seq, s, r.Err()
}

// historyRecorder owns the recording goroutine and the tick sequence.
// All mutation of history state (recorder ticks, the loader path, and
// retention) runs under mu, so ticks never interleave.
type historyRecorder struct {
	db       *DB
	interval time.Duration
	budget   HistoryBudget
	now      func() time.Time // wall clock; injectable in tests

	mu      sync.Mutex
	differ  *obs.HistoryDiffer
	seq     int64 // last assigned tick seq
	seqInit bool
	dropped bool // a recording attempt failed since the last good tick

	haltMu sync.Mutex // halt is idempotent and callable concurrently
	stop   chan struct{}
	done   chan struct{}
}

func newHistoryRecorder(db *DB, interval time.Duration, budget HistoryBudget) *historyRecorder {
	return &historyRecorder{
		db:       db,
		interval: interval,
		budget:   budget.withDefaults(),
		now:      time.Now,
		differ:   obs.NewHistoryDiffer(),
	}
}

func (r *historyRecorder) start() {
	r.stop = make(chan struct{})
	r.done = make(chan struct{})
	go r.loop(r.stop, r.done)
}

func (r *historyRecorder) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(r.interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			// Errors are deliberately dropped: the failure is already
			// accounted (ticks_dropped counter + the next tick's dropped
			// flag), and the next tick retries.
			_ = r.recordTick(stop)
		}
	}
}

// halt stops the recording goroutine and waits for it to exit; an
// in-flight recording transaction aborts cleanly (recordTick checks
// the stop channel before committing). Idempotent, and deliberately
// NOT under DB.closeMu: recordTick calls DB.WaitProfile, which takes
// closeMu, so stopBackground halts the recorder before acquiring it.
func (r *historyRecorder) halt() {
	if r == nil {
		return
	}
	r.haltMu.Lock()
	defer r.haltMu.Unlock()
	if r.stop == nil {
		return
	}
	close(r.stop)
	<-r.done
	r.stop = nil
}

// ensureHistoryRels creates the history relations under tx if this is
// the first enable on this volume. Catalog registration makes them
// reopen-persistent (the re-place loop in Open) and CheckMedia-covered.
func (db *DB) ensureHistoryRels(tx *txn.Tx) error {
	rels := []struct {
		oid  device.OID
		name string
	}{
		{HistoryRel, HistoryRelName},
		{HistorySamplesRel, HistorySamplesRelName},
	}
	for _, r := range rels {
		if _, ok := db.cat.RelationByOID(r.oid); ok {
			continue
		}
		if _, err := db.cat.CreateRelationAt(tx, r.oid, r.name, db.opts.DefaultClass, catalog.KindHeap); err != nil {
			return err
		}
	}
	return nil
}

// initSeq resumes the tick sequence from the highest recorded seq, so
// history written before a crash and history written after recovery
// form one monotone series.
func (r *historyRecorder) initSeq(snap *txn.Snapshot) error {
	if r.seqInit {
		return nil
	}
	var maxSeq int64
	err := r.db.dataRel(HistoryRel).Scan(snap, func(_ heap.TID, payload []byte) (bool, error) {
		t, err := decodeHistoryTick(payload)
		if err != nil {
			return false, err
		}
		if t.Seq > maxSeq {
			maxSeq = t.Seq
		}
		return false, nil
	})
	if err != nil {
		return err
	}
	r.seq = maxSeq
	r.seqInit = true
	return nil
}

// recordTick records one tick: refresh derived gauges, diff the
// registry and wait profile, and append the tick row plus its samples
// under one internal transaction. cancel, when closed before the
// commit, aborts the in-flight transaction cleanly (bounded shutdown).
// A failed attempt arms the dropped flag carried by the next tick that
// does land.
func (r *historyRecorder) recordTick(cancel <-chan struct{}) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	db := r.db
	db.RefreshObsGauges()
	samples := r.differ.Diff(db.metrics.Snapshot(), db.WaitProfile())
	nowNs := r.now().UnixNano()

	fail := func(err error) error {
		r.dropped = true
		db.metrics.Counter("history.ticks_dropped").Inc()
		return err
	}
	tx, err := db.mgr.Begin()
	if err != nil {
		return fail(err)
	}
	if err := db.ensureHistoryRels(tx); err != nil {
		abort(tx)
		return fail(err)
	}
	if err := r.initSeq(tx.Snapshot()); err != nil {
		abort(tx)
		return fail(err)
	}
	seq := r.seq + 1
	tick := HistoryTick{
		Seq: seq, WallNs: nowNs, IntervalNs: int64(r.interval),
		Level: HistoryLevelRaw, Dropped: r.dropped,
	}
	if _, err := db.dataRel(HistoryRel).Insert(tx.ID(), encodeHistoryTick(tick)); err != nil {
		abort(tx)
		return fail(err)
	}
	for _, s := range samples {
		if _, err := db.dataRel(HistorySamplesRel).Insert(tx.ID(), encodeHistorySample(seq, s)); err != nil {
			abort(tx)
			return fail(err)
		}
	}
	select {
	case <-cancel:
		abort(tx)
		return nil
	default:
	}
	if err := tx.Commit(); err != nil {
		return fail(err)
	}
	r.seq = seq
	r.dropped = false
	db.metrics.Counter("history.ticks_recorded").Inc()

	// Retention runs in its own transaction so a retention failure never
	// takes the recorded tick down with it.
	if err := r.retain(nowNs); err != nil {
		db.metrics.Counter("history.retention_errors").Inc()
	}
	return nil
}

type tickAt struct {
	t   HistoryTick
	tid heap.TID
}

// retain enforces the retention ladder: raw ticks older than RawFor
// are aggregated per RollupEvery window into level-1 ticks (counters
// summed, gauges and quantiles averaged) and deleted; rollups older
// than RollupFor are deleted outright. Deletion is MVCC deletion — a
// concurrent reader's snapshot (or an asof inside the budget) still
// sees the rows; physical reclaim belongs to vacuum. Caller holds mu.
func (r *historyRecorder) retain(nowNs int64) error {
	db := r.db
	cutRaw := nowNs - int64(r.budget.RawFor)
	cutRollup := nowNs - int64(r.budget.RollupFor)
	win := int64(r.budget.RollupEvery)

	tx, err := db.mgr.Begin()
	if err != nil {
		return err
	}
	snap := tx.Snapshot()
	histRel := db.dataRel(HistoryRel)
	sampRel := db.dataRel(HistorySamplesRel)

	var expired []tickAt                // raw past RawFor and rollups past RollupFor
	rollWindow := make(map[int64]int64) // raw seq → its rollup window start
	windowTicks := make(map[int64][]tickAt)
	err = histRel.Scan(snap, func(tid heap.TID, payload []byte) (bool, error) {
		t, err := decodeHistoryTick(payload)
		if err != nil {
			return false, err
		}
		switch {
		case t.Level == HistoryLevelRaw && t.WallNs < cutRaw:
			at := tickAt{t, tid}
			expired = append(expired, at)
			w := t.WallNs - t.WallNs%win
			rollWindow[t.Seq] = w
			windowTicks[w] = append(windowTicks[w], at)
		case t.Level == HistoryLevelRollup && t.WallNs < cutRollup:
			expired = append(expired, tickAt{t, tid})
		}
		return false, nil
	})
	if err != nil {
		abort(tx)
		return err
	}
	if len(expired) == 0 {
		abort(tx)
		return nil
	}

	// One pass over the samples: aggregate expiring raw samples into
	// their windows and collect every expiring tick's sample TIDs.
	expiredSeq := make(map[int64]bool, len(expired))
	for _, e := range expired {
		expiredSeq[e.t.Seq] = true
	}
	type aggKey struct{ name, labels, kind string }
	type aggVal struct {
		sum float64
		n   int64
	}
	agg := make(map[int64]map[aggKey]*aggVal) // window → series → acc
	var deadSamples []heap.TID
	err = sampRel.Scan(snap, func(tid heap.TID, payload []byte) (bool, error) {
		seq, s, err := decodeHistorySample(payload)
		if err != nil {
			return false, err
		}
		if !expiredSeq[seq] {
			return false, nil
		}
		deadSamples = append(deadSamples, tid)
		w, isRaw := rollWindow[seq]
		if !isRaw {
			return false, nil
		}
		m := agg[w]
		if m == nil {
			m = make(map[aggKey]*aggVal)
			agg[w] = m
		}
		k := aggKey{s.Name, s.Labels, s.Kind}
		v := m[k]
		if v == nil {
			v = &aggVal{}
			m[k] = v
		}
		v.sum += s.Value
		v.n++
		return false, nil
	})
	if err != nil {
		abort(tx)
		return err
	}

	// Insert rollup ticks, oldest window first so seq stays time-ordered.
	windows := make([]int64, 0, len(windowTicks))
	for w := range windowTicks {
		windows = append(windows, w)
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	seq := r.seq
	for _, w := range windows {
		seq++
		dropped := false
		for _, m := range windowTicks[w] {
			dropped = dropped || m.t.Dropped
		}
		tick := HistoryTick{
			Seq: seq, WallNs: w, IntervalNs: win,
			Level: HistoryLevelRollup, Dropped: dropped,
		}
		if _, err := histRel.Insert(tx.ID(), encodeHistoryTick(tick)); err != nil {
			abort(tx)
			return err
		}
		keys := make([]aggKey, 0, len(agg[w]))
		for k := range agg[w] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.name != b.name {
				return a.name < b.name
			}
			if a.labels != b.labels {
				return a.labels < b.labels
			}
			return a.kind < b.kind
		})
		for _, k := range keys {
			v := agg[w][k]
			val := v.sum // counters: deltas sum across the window
			if k.kind != obs.SampleCounter {
				val = v.sum / float64(v.n) // gauges, quantiles: mean
			}
			s := obs.HistorySample{Name: k.name, Labels: k.labels, Kind: k.kind, Value: val}
			if _, err := sampRel.Insert(tx.ID(), encodeHistorySample(seq, s)); err != nil {
				abort(tx)
				return err
			}
		}
	}
	for _, e := range expired {
		if err := histRel.Delete(tx.ID(), e.tid); err != nil {
			abort(tx)
			return err
		}
	}
	for _, tid := range deadSamples {
		if err := sampRel.Delete(tx.ID(), tid); err != nil {
			abort(tx)
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	r.seq = seq
	db.metrics.Counter("history.ticks_expired").Add(int64(len(expired)))
	db.metrics.Counter("history.rollup_ticks").Add(int64(len(windows)))
	return nil
}

// RecordMetricsTick records one metrics-history tick immediately (the
// recorder goroutine does the same on its interval). Primarily for
// tests and tools that want deterministic tick placement.
func (db *DB) RecordMetricsTick() error {
	if db.hist == nil {
		return ErrHistoryDisabled
	}
	return db.hist.recordTick(nil)
}

// AppendHistoryTick appends a tick with caller-supplied wall time and
// samples, bypassing the registry differ — the loader path invbench
// -regress and CI use to replay an externally captured trajectory
// (e.g. BENCH_smoke.json) into the history relations.
func (db *DB) AppendHistoryTick(wallNs, intervalNs int64, samples []obs.HistorySample) (int64, error) {
	if db.hist == nil {
		return 0, ErrHistoryDisabled
	}
	r := db.hist
	r.mu.Lock()
	defer r.mu.Unlock()
	tx, err := db.mgr.Begin()
	if err != nil {
		return 0, err
	}
	if err := db.ensureHistoryRels(tx); err != nil {
		abort(tx)
		return 0, err
	}
	if err := r.initSeq(tx.Snapshot()); err != nil {
		abort(tx)
		return 0, err
	}
	seq := r.seq + 1
	tick := HistoryTick{Seq: seq, WallNs: wallNs, IntervalNs: intervalNs, Level: HistoryLevelRaw}
	if _, err := db.dataRel(HistoryRel).Insert(tx.ID(), encodeHistoryTick(tick)); err != nil {
		abort(tx)
		return 0, err
	}
	for _, s := range samples {
		if _, err := db.dataRel(HistorySamplesRel).Insert(tx.ID(), encodeHistorySample(seq, s)); err != nil {
			abort(tx)
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	r.seq = seq
	return seq, nil
}

// RegressionResult is DB.CheckRegression's verdict on one series.
type RegressionResult struct {
	Series    string  `json:"series"`
	Windows   int     `json:"windows"`  // baseline points actually used
	Baseline  float64 `json:"baseline"` // mean of the baseline window
	Latest    float64 `json:"latest"`   // newest recorded value
	Ratio     float64 `json:"ratio"`    // latest / baseline (0 if baseline 0)
	Regressed bool    `json:"regressed"`
}

// CheckRegression queries the history relations for the named series
// (sample name; labels are ignored so a plain series loads cleanly) and
// compares the latest value against the mean of up to `windows` prior
// values. Regressed when latest/baseline meets threshold (default 1.5,
// windows default 5) — a slowdown detector: improvements stay quiet.
func (db *DB) CheckRegression(series string, windows int, threshold float64) (RegressionResult, error) {
	if windows <= 0 {
		windows = 5
	}
	if threshold <= 0 {
		threshold = 1.5
	}
	res := RegressionResult{Series: series}
	if _, ok := db.cat.RelationByOID(HistorySamplesRel); !ok {
		return res, fmt.Errorf("inversion: no metrics history on this volume (%s missing)", HistorySamplesRelName)
	}
	type pt struct {
		seq int64
		v   float64
	}
	var pts []pt
	snap := db.mgr.CurrentSnapshot()
	err := db.dataRel(HistorySamplesRel).Scan(snap, func(_ heap.TID, payload []byte) (bool, error) {
		seq, s, err := decodeHistorySample(payload)
		if err != nil {
			return false, err
		}
		if s.Name == series {
			pts = append(pts, pt{seq, s.Value})
		}
		return false, nil
	})
	if err != nil {
		return res, err
	}
	if len(pts) < 2 {
		return res, fmt.Errorf("inversion: series %q has %d recorded points (need ≥ 2)", series, len(pts))
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].seq < pts[j].seq })
	res.Latest = pts[len(pts)-1].v
	base := pts[:len(pts)-1]
	if len(base) > windows {
		base = base[len(base)-windows:]
	}
	var sum float64
	for _, p := range base {
		sum += p.v
	}
	res.Windows = len(base)
	res.Baseline = sum / float64(len(base))
	if res.Baseline > 0 {
		res.Ratio = res.Latest / res.Baseline
		res.Regressed = res.Ratio >= threshold
	}
	return res, nil
}

// StoredSysRel resolves a heap-backed system relation by name for the
// query engine: the history relations are real MVCC heaps, so the
// normal retrieve path (including asof — a historical snapshot from
// Manager.AsOf) scans them like any stored relation; no bespoke reader.
// ok is false for unknown names and while the relations do not exist
// (history never enabled on this volume).
func (db *DB) StoredSysRel(name string) (cols []sysview.Column, scan func(*txn.Snapshot, func([]value.V) (bool, error)) error, ok bool) {
	var oid device.OID
	var decode func([]byte) ([]value.V, error)
	switch name {
	case HistoryRelName:
		oid = HistoryRel
		cols = []sysview.Column{
			{Name: "seq", Kind: value.KindInt, Doc: "tick sequence number (monotone across recoveries)"},
			{Name: "wall_ns", Kind: value.KindInt, Doc: "wall-clock unix nanoseconds of the tick"},
			{Name: "interval_ns", Kind: value.KindInt, Doc: "recorder interval (rollup window width for level 1)"},
			{Name: "level", Kind: value.KindInt, Doc: "0 = raw tick, 1 = retention rollup"},
			{Name: "dropped", Kind: value.KindBool, Doc: "true when recording attempts before this tick were lost"},
		}
		decode = func(b []byte) ([]value.V, error) {
			t, err := decodeHistoryTick(b)
			if err != nil {
				return nil, err
			}
			return []value.V{
				value.Int(t.Seq), value.Int(t.WallNs), value.Int(t.IntervalNs),
				value.Int(int64(t.Level)), value.Bool(t.Dropped),
			}, nil
		}
	case HistorySamplesRelName:
		oid = HistorySamplesRel
		cols = []sysview.Column{
			{Name: "seq", Kind: value.KindInt, Doc: "tick this sample belongs to (join to inv_history.seq)"},
			{Name: "name", Kind: value.KindString, Doc: "metric name"},
			{Name: "labels", Kind: value.KindString, Doc: "sample labels (quantile label, wait op/rel, …)"},
			{Name: "kind", Kind: value.KindString, Doc: "counter (delta) | gauge (point) | quantile (point)"},
			{Name: "value", Kind: value.KindFloat, Doc: "sample value"},
		}
		decode = func(b []byte) ([]value.V, error) {
			seq, s, err := decodeHistorySample(b)
			if err != nil {
				return nil, err
			}
			return []value.V{
				value.Int(seq), value.Str(s.Name), value.Str(s.Labels),
				value.Str(s.Kind), value.Float(s.Value),
			}, nil
		}
	default:
		return nil, nil, false
	}
	if _, exists := db.cat.RelationByOID(oid); !exists {
		return nil, nil, false
	}
	rel := db.dataRel(oid)
	scan = func(snap *txn.Snapshot, yield func([]value.V) (bool, error)) error {
		return rel.Scan(snap, func(_ heap.TID, payload []byte) (bool, error) {
			row, err := decode(payload)
			if err != nil {
				return false, err
			}
			return yield(row)
		})
	}
	return cols, scan, true
}

// historySeriesRows materializes inv_history_meta: one row per recorded
// series (name, labels, kind) with its tick span and newest value —
// the map of what the history relations currently hold. Empty (not an
// error) while history has never been enabled on this volume.
func (db *DB) historySeriesRows() ([]sysview.HistorySeriesRow, error) {
	if _, ok := db.cat.RelationByOID(HistorySamplesRel); !ok {
		return nil, nil
	}
	type key struct{ name, labels, kind string }
	acc := make(map[key]*sysview.HistorySeriesRow)
	snap := db.mgr.CurrentSnapshot()
	err := db.dataRel(HistorySamplesRel).Scan(snap, func(_ heap.TID, payload []byte) (bool, error) {
		seq, s, err := decodeHistorySample(payload)
		if err != nil {
			return false, err
		}
		k := key{s.Name, s.Labels, s.Kind}
		r := acc[k]
		if r == nil {
			r = &sysview.HistorySeriesRow{
				Name: s.Name, Labels: s.Labels, Kind: s.Kind,
				FirstSeq: seq, LastSeq: seq, LastValue: s.Value,
			}
			acc[k] = r
		}
		r.Ticks++
		if seq < r.FirstSeq {
			r.FirstSeq = seq
		}
		if seq >= r.LastSeq {
			r.LastSeq = seq
			r.LastValue = s.Value
		}
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	out := make([]sysview.HistorySeriesRow, 0, len(acc))
	for _, r := range acc {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Labels != b.Labels {
			return a.Labels < b.Labels
		}
		return a.Kind < b.Kind
	})
	return out, nil
}
