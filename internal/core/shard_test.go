package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
)

// newShardDB opens an in-memory database with the given namespace shard
// count, returning the switch so tests can crash and reopen the volume.
func newShardDB(t *testing.T, shards int) (*DB, *Session, *device.Switch) {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	db, err := Open(sw, Options{Buffers: 128, NamespaceShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return db, db.NewSession("shard-test"), sw
}

// shardLockWaits sums the per-shard name-lock wait counters.
func shardLockWaits(db *DB) int64 {
	var n int64
	for _, s := range db.NamespaceStats() {
		n += s.LockWaits
	}
	return n
}

// TestLockNameShardGranularity is the regression test for name-lock
// granularity: a create holding the (directory, name) lock in one
// directory must never make a create in a different directory wait,
// even for the identical entry name — the lock tag is qualified by
// shard and parent, not by name hash alone. The positive control at the
// end proves the assertion has teeth: a second create of the same
// binding does wait, and the wait is charged to that binding's shard.
func TestLockNameShardGranularity(t *testing.T) {
	db, s, _ := newShardDB(t, 8)
	defer db.Crash()
	if err := s.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := s.Mkdir("/b"); err != nil {
		t.Fatal(err)
	}

	// tx1 creates /a/x and holds the binding lock (uncommitted).
	tx1, err := db.Manager().Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.MkdirTx(tx1, "/a/x", "t"); err != nil {
		t.Fatal(err)
	}

	// The same name in a different directory must not queue behind tx1.
	// Run it on a goroutine so a granularity regression fails fast as a
	// timeout instead of hanging until tx1 commits.
	done := make(chan error, 1)
	go func() {
		tx2, err := db.Manager().Begin()
		if err != nil {
			done <- err
			return
		}
		if _, err := db.MkdirTx(tx2, "/b/x", "t"); err != nil {
			tx2.Abort()
			done <- err
			return
		}
		done <- tx2.Commit()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		tx1.Abort()
		t.Fatal("create of /b/x queued behind an uncommitted create of /a/x: name lock is not shard/parent-qualified")
	}
	if w := shardLockWaits(db); w != 0 {
		t.Fatalf("creates in unrelated directories recorded %d name-lock waits, want 0", w)
	}

	// Positive control: the SAME binding must wait (and then observe
	// tx1's committed row as ErrExist).
	ctl := make(chan error, 1)
	go func() {
		tx3, err := db.Manager().Begin()
		if err != nil {
			ctl <- err
			return
		}
		defer tx3.Abort()
		_, err = db.MkdirTx(tx3, "/a/x", "t")
		ctl <- err
	}()
	select {
	case err := <-ctl:
		tx1.Abort()
		t.Fatalf("create of /a/x did not wait for the uncommitted create of /a/x (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-ctl; !errors.Is(err, ErrExist) {
		t.Fatalf("second create of /a/x after wait: err=%v, want ErrExist", err)
	}
	if w := shardLockWaits(db); w == 0 {
		t.Fatal("same-binding conflict recorded no name-lock wait: the lock counters are dead")
	}
}

// twoDirsInDifferentShards makes directories until two land in
// different namespace shards, returning their paths.
func twoDirsInDifferentShards(t *testing.T, db *DB, s *Session) (string, string) {
	t.Helper()
	first := ""
	var firstShard *nsShard
	for i := 0; i < 64; i++ {
		p := fmt.Sprintf("/xdir%d", i)
		if err := s.Mkdir(p); err != nil {
			t.Fatal(err)
		}
		attr, err := s.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		sh := db.ns.dirShard(attr.File)
		if first == "" {
			first, firstShard = p, sh
			continue
		}
		if sh != firstShard {
			return first, p
		}
	}
	t.Fatal("64 directories all hashed to one shard")
	return "", ""
}

// TestCrossShardRenameAtomicity moves a file between directories whose
// naming rows live in different shards and checks the two-shard
// transactional move end to end: an uncommitted move is invisible to
// other snapshots, an aborted move leaves the source untouched, and a
// committed move atomically switches the name — content byte-exact at
// the destination, source gone, cross-shard counter incremented.
func TestCrossShardRenameAtomicity(t *testing.T) {
	db, s, _ := newShardDB(t, 8)
	defer db.Crash()
	dirA, dirB := twoDirsInDifferentShards(t, db, s)
	content := []byte("crosses shards intact")
	if err := s.WriteFile(dirA+"/f", content, CreateOpts{}); err != nil {
		t.Fatal(err)
	}

	// Uncommitted move: another session sees the old world.
	tx, err := db.Manager().Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RenameTx(tx, dirA+"/f", dirB+"/g"); err != nil {
		t.Fatal(err)
	}
	other := db.NewSession("observer")
	if _, err := other.ReadFile(dirA + "/f"); err != nil {
		t.Fatalf("uncommitted move already hid the source: %v", err)
	}
	if _, err := other.ReadFile(dirB + "/g"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("uncommitted move already visible at destination: err=%v", err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadFile(dirA + "/f"); err != nil {
		t.Fatalf("aborted move damaged the source: %v", err)
	}
	if _, err := s.ReadFile(dirB + "/g"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("aborted move left the destination behind: err=%v", err)
	}

	// Committed move: name switches atomically, content intact.
	if err := s.Rename(dirA+"/f", dirB+"/g"); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile(dirB + "/g")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("content after cross-shard move: %q", got)
	}
	if _, err := s.ReadFile(dirA + "/f"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("source still visible after committed move: err=%v", err)
	}
	var cross int64
	for _, st := range db.NamespaceStats() {
		cross += st.CrossRenames
	}
	if cross == 0 {
		t.Fatal("no cross-shard rename counted: the two directories did not exercise the two-shard path")
	}
}

// TestSeedFormatVolumeCompat pins the N=1 compatibility contract: a
// volume bootstrapped without any shard configuration writes only the
// legacy relation OIDs (no shard relation set, no control-page count),
// and reopens identically whether the caller passes nothing or an
// explicit count of 1 — the sharded code path is byte-invisible at N=1.
func TestSeedFormatVolumeCompat(t *testing.T) {
	rec := device.NewRecorder(device.NewMem(nil, 0))
	sw := device.NewSwitch()
	sw.Register(rec)
	db, err := Open(sw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("seed")
	if err := s.Mkdir("/dir"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/dir/f", []byte("seed format"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for _, op := range rec.Trace() {
		if op.Rel >= shardOIDBase && op.Rel < 100 {
			t.Fatalf("unsharded volume touched shard relation OID %d (op %v)", op.Rel, op.Kind)
		}
	}

	// Reopen bare, then with an explicit count of 1 — both must see the
	// identical namespace.
	for _, opts := range []Options{{}, {NamespaceShards: 1}} {
		db, err := Open(sw, opts)
		if err != nil {
			t.Fatalf("reopen with %+v: %v", opts, err)
		}
		s := db.NewSession("seed")
		got, err := s.ReadFile("/dir/f")
		if err != nil || string(got) != "seed format" {
			t.Fatalf("reopen with %+v: read %q, %v", opts, got, err)
		}
		ents, err := s.ReadDir("/dir")
		if err != nil || len(ents) != 1 {
			t.Fatalf("reopen with %+v: ReadDir %v, %v", opts, ents, err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardCountFixedAtBootstrap pins the mixed-version rules for a
// partitioned volume: the bootstrap count persists in the control page,
// a bare reopen auto-detects it, and a conflicting explicit count is
// rejected loudly instead of silently rerouting every hash.
func TestShardCountFixedAtBootstrap(t *testing.T) {
	db, s, sw := newShardDB(t, 8)
	if err := s.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/d/f", []byte("eight ways"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Conflicting count: refused, with an error a operator can act on.
	if _, err := Open(sw, Options{NamespaceShards: 4}); err == nil {
		t.Fatal("reopening an 8-shard volume with NamespaceShards=4 succeeded")
	} else if !strings.Contains(err.Error(), "fixed at bootstrap") {
		t.Fatalf("mismatch error does not say what went wrong: %v", err)
	}

	// Bare reopen: the persisted count routes every lookup correctly.
	db2, err := Open(sw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Crash()
	if got := len(db2.NamespaceStats()); got != 8 {
		t.Fatalf("bare reopen resolved %d shards, want 8", got)
	}
	got, err := db2.NewSession("reopen").ReadFile("/d/f")
	if err != nil || string(got) != "eight ways" {
		t.Fatalf("read after bare reopen: %q, %v", got, err)
	}
}
