package core

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// Chunk compression ("Services Under Investigation"): Inversion
// "supports compression and uncompression of 'chunks' of user files.
// Special indices are maintained indicating the sizes of the
// uncompressed and compressed chunks. Random access on the uncompressed
// version is straightforward." Because the logical chunk size is fixed,
// the byte offset → chunk number mapping is unchanged; each stored
// chunk carries a method byte and its uncompressed length, and a chunk
// that does not compress is stored raw so the record still fits on one
// page.

// Compression methods stored in the chunk envelope.
const (
	chunkRaw   byte = 0
	chunkFlate byte = 1
)

// compressOverhead is the envelope size: method(1) | rawLen(4).
const compressOverhead = 5

// compressChunk wraps chunk contents in the compression envelope:
// method(1) | rawLen(4) | payload.
func compressChunk(data []byte) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(chunkFlate)
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(data)))
	buf.Write(lenb[:])
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if buf.Len()-5 >= len(data) {
		// Incompressible: store raw.
		out := make([]byte, 5+len(data))
		out[0] = chunkRaw
		binary.LittleEndian.PutUint32(out[1:], uint32(len(data)))
		copy(out[5:], data)
		return out, nil
	}
	return buf.Bytes(), nil
}

// decompressChunk unwraps the envelope written by compressChunk.
func decompressChunk(stored []byte) ([]byte, error) {
	if len(stored) < 5 {
		return nil, fmt.Errorf("inversion: compressed chunk too short (%d bytes)", len(stored))
	}
	method := stored[0]
	rawLen := binary.LittleEndian.Uint32(stored[1:])
	body := stored[5:]
	switch method {
	case chunkRaw:
		if int(rawLen) != len(body) {
			return nil, fmt.Errorf("inversion: raw chunk length mismatch: %d vs %d", rawLen, len(body))
		}
		return clone(body), nil
	case chunkFlate:
		r := flate.NewReader(bytes.NewReader(body))
		out := make([]byte, 0, rawLen)
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
		}
		if err := r.Close(); err != nil {
			return nil, err
		}
		if len(out) != int(rawLen) {
			return nil, fmt.Errorf("inversion: decompressed %d bytes, header says %d", len(out), rawLen)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("inversion: unknown chunk compression method %d", method)
	}
}

// StoredSizes reports the uncompressed and stored sizes of every chunk
// of a compressed file, in chunk order (the "special indices" of the
// paper, surfaced for inspection and the compression ablation bench).
func (f *File) StoredSizes() (raw, stored []int, err error) {
	if err := f.Flush(); err != nil {
		return nil, nil, err
	}
	nchunks := (f.size + ChunkSize - 1) / ChunkSize
	for c := int64(0); c < nchunks; c++ {
		_, rec, found, err := f.findChunk(uint32(c))
		if err != nil {
			return nil, nil, err
		}
		if !found {
			raw = append(raw, 0)
			stored = append(stored, 0)
			continue
		}
		_, data, err := decodeChunk(rec)
		if err != nil {
			return nil, nil, err
		}
		if f.attr.Compressed() && len(data) >= 5 {
			raw = append(raw, int(binary.LittleEndian.Uint32(data[1:])))
		} else {
			raw = append(raw, len(data))
		}
		stored = append(stored, len(data))
	}
	return raw, stored, nil
}
