package core

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/device"
	"repro/internal/txn"
)

// TestPropertyFileMatchesByteSlice drives a file through random
// sequences of writes, seeks, truncates, and reads inside transactions
// and checks every observation against a plain byte-slice model.
func TestPropertyFileMatchesByteSlice(t *testing.T) {
	f := func(seed int64) bool {
		_, s := newDB(t)
		rng := newRand(seed)
		if err := s.Begin(); err != nil {
			return false
		}
		fh, err := s.Create("/model", CreateOpts{})
		if err != nil {
			return false
		}
		var model []byte
		const maxSize = 3*ChunkSize + 500
		for op := 0; op < 60; op++ {
			switch rng.Intn(4) {
			case 0: // write at random offset
				off := rng.Intn(maxSize / 2)
				n := 1 + rng.Intn(ChunkSize)
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(rng.Intn(256))
				}
				if _, err := fh.WriteAt(data, int64(off)); err != nil {
					t.Logf("WriteAt: %v", err)
					return false
				}
				if off+n > len(model) {
					model = append(model, make([]byte, off+n-len(model))...)
				}
				copy(model[off:], data)
			case 1: // sequential append via Write
				n := 1 + rng.Intn(500)
				data := bytes.Repeat([]byte{byte(op)}, n)
				if _, err := fh.Seek(0, io.SeekEnd); err != nil {
					return false
				}
				if _, err := fh.Write(data); err != nil {
					return false
				}
				model = append(model, data...)
			case 2: // truncate
				n := rng.Intn(maxSize)
				if err := fh.Truncate(int64(n)); err != nil {
					t.Logf("Truncate: %v", err)
					return false
				}
				if n <= len(model) {
					model = model[:n]
				} else {
					model = append(model, make([]byte, n-len(model))...)
				}
			case 3: // read a random region and compare
				if len(model) == 0 {
					continue
				}
				off := rng.Intn(len(model))
				n := 1 + rng.Intn(2*ChunkSize)
				buf := make([]byte, n)
				got, err := fh.ReadAt(buf, int64(off))
				if err != nil && err != io.EOF {
					t.Logf("ReadAt: %v", err)
					return false
				}
				want := model[off:]
				if len(want) > got {
					want = want[:got]
				}
				if !bytes.Equal(buf[:got], want[:got]) {
					t.Logf("mismatch at %d len %d", off, n)
					return false
				}
			}
			if fh.Size() != int64(len(model)) {
				t.Logf("size %d != model %d", fh.Size(), len(model))
				return false
			}
		}
		if err := fh.Close(); err != nil {
			return false
		}
		if err := s.Commit(); err != nil {
			return false
		}
		// Post-commit, the whole file matches.
		got, err := s.ReadFile("/model")
		if err != nil {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockBetweenSessions(t *testing.T) {
	db, _ := newDB(t)
	s1 := db.NewSession("a")
	s2 := db.NewSession("b")
	if err := s1.WriteFile("/x", []byte("x"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := s1.WriteFile("/y", []byte("y"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Begin(); err != nil {
		t.Fatal(err)
	}
	f1, err := s1.OpenWrite("/x")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s2.OpenWrite("/y")
	if err != nil {
		t.Fatal(err)
	}
	_ = f1
	_ = f2
	// s1 wants /y (held by s2); s2 wants /x (held by s1): a cycle.
	// Exactly one side must get ErrDeadlock; it aborts at once
	// (releasing its locks) and the other side's acquire then succeeds.
	errc := make(chan error, 1)
	go func() {
		_, err := s1.OpenWrite("/y")
		if errors.Is(err, txn.ErrDeadlock) {
			_ = s1.Abort() // victim releases so the survivor can run
		}
		errc <- err
	}()
	_, err2 := s2.OpenWrite("/x")
	if errors.Is(err2, txn.ErrDeadlock) {
		_ = s2.Abort()
	}
	err1 := <-errc

	victim1 := errors.Is(err1, txn.ErrDeadlock)
	victim2 := errors.Is(err2, txn.ErrDeadlock)
	if victim1 == victim2 {
		t.Fatalf("want exactly one deadlock victim, got err1=%v err2=%v", err1, err2)
	}
	if victim1 {
		if err2 != nil {
			t.Fatalf("survivor s2 failed: %v", err2)
		}
		if err := s2.Commit(); err != nil {
			t.Fatal(err)
		}
	} else {
		if err1 != nil {
			t.Fatalf("survivor s1 failed: %v", err1)
		}
		if err := s1.Commit(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestNoHistoryVacuumDiscards(t *testing.T) {
	db, s := newDB(t)
	if err := s.WriteFile("/nohist", []byte("gen0"), CreateOpts{Flags: FlagNoHistory}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/hist", []byte("gen0"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.WriteFile("/nohist", []byte("gen1"), CreateOpts{}); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteFile("/hist", []byte("gen1"), CreateOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	before := archiveCount(t, db)
	stats, err := db.Vacuum()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed == 0 {
		t.Fatalf("vacuum removed nothing: %+v", stats)
	}
	after := archiveCount(t, db)
	// The history file's dead chunks were archived; the no-history
	// file's were discarded. Both also have metadata versions archived,
	// so just assert the archive grew and both files still read.
	if after <= before {
		t.Fatal("archive did not grow")
	}
	for _, p := range []string{"/nohist", "/hist"} {
		got, err := s.ReadFile(p)
		if err != nil || string(got) != "gen1" {
			t.Fatalf("%s after vacuum: %q %v", p, got, err)
		}
	}
}

func archiveCount(t *testing.T, db *DB) int {
	t.Helper()
	n := 0
	err := db.archive.Scan(db.mgr.CurrentSnapshot(), func(heapTID, []byte) (bool, error) {
		n++
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSetFileType(t *testing.T) {
	_, s := newDB(t)
	if err := s.DefineType("log", "log files"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/app.log", []byte("x"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetFileType("/app.log", "log"); err != nil {
		t.Fatal(err)
	}
	attr, err := s.Stat("/app.log")
	if err != nil || attr.Type != "log" {
		t.Fatalf("attr = %+v %v", attr, err)
	}
	if err := s.SetFileType("/app.log", "undefined-type"); err == nil {
		t.Fatal("undefined type accepted")
	}
	// Untype.
	if err := s.SetFileType("/app.log", ""); err != nil {
		t.Fatal(err)
	}
}

func TestTrackATime(t *testing.T) {
	sw := newMemSwitch()
	tick := int64(1 << 20)
	db, err := Open(sw, Options{Buffers: 64, TrackATime: true, TimeSource: func() int64 {
		tick += 1000
		return tick
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("u")
	if err := s.WriteFile("/a", []byte("data"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	before, err := s.Stat("/a")
	if err != nil {
		t.Fatal(err)
	}
	// A write-mode open that reads updates atime at close.
	f, err := s.OpenWrite("/a")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.Read(buf); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	after, err := s.Stat("/a")
	if err != nil {
		t.Fatal(err)
	}
	if after.ATime <= before.ATime {
		t.Fatalf("atime not updated: %d -> %d", before.ATime, after.ATime)
	}
}

func TestPathEdgeCases(t *testing.T) {
	_, s := newDB(t)
	if err := s.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/d/f", []byte("x"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	// Path normalisation.
	for _, p := range []string{"/d/f", "//d//f", "/d/./f", "/d/../d/f", "/x/../d/f"} {
		if _, err := s.Stat(p); err != nil {
			t.Errorf("Stat(%q): %v", p, err)
		}
	}
	// Relative and empty paths rejected.
	for _, p := range []string{"", "d/f", "./d"} {
		if _, err := s.Stat(p); !errors.Is(err, ErrBadPath) {
			t.Errorf("Stat(%q): %v", p, err)
		}
	}
	// ".." above root stays at root.
	if _, err := s.Stat("/../../d/f"); err != nil {
		t.Errorf("above-root path: %v", err)
	}
	// Files are not directories.
	if _, err := s.Stat("/d/f/g"); !errors.Is(err, ErrNotDirectory) {
		t.Errorf("file-as-dir: %v", err)
	}
	if _, err := s.ReadDir("/d/f"); !errors.Is(err, ErrNotDirectory) {
		t.Errorf("ReadDir on file: %v", err)
	}
	// Opening a directory as a file fails.
	if _, err := s.Open("/d"); !errors.Is(err, ErrIsDirectory) {
		t.Errorf("Open(dir): %v", err)
	}
	// Root cannot be created or removed.
	if err := s.Unlink("/"); err == nil {
		t.Error("unlinked root")
	}
	if _, err := s.Create("/", CreateOpts{}); err == nil {
		t.Error("created root")
	}
}

func TestRenameDirectoryMovesSubtree(t *testing.T) {
	_, s := newDB(t)
	if err := s.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/a/b/deep", []byte("d"), CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Rename("/a", "/z"); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadFile("/z/b/deep")
	if err != nil || string(got) != "d" {
		t.Fatalf("after dir rename: %q %v", got, err)
	}
	if _, err := s.Stat("/a/b/deep"); !isNotExist(err) {
		t.Fatalf("old subtree path alive: %v", err)
	}
}

func TestFileSizeLimit(t *testing.T) {
	_, s := newDB(t)
	f, err := s.Create("/huge", CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Writing right at the 17.6 TB boundary is rejected...
	if _, err := f.WriteAt([]byte("x"), MaxFileSize); !errors.Is(err, ErrFileTooBig) {
		t.Fatalf("over-limit write: %v", err)
	}
	// ...but a sparse write just under it works (only the tail chunk
	// is materialised).
	if _, err := f.WriteAt([]byte("end"), MaxFileSize-10); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	attr, err := s.Stat("/huge")
	if err != nil || attr.Size != MaxFileSize-7 {
		t.Fatalf("attr = %+v %v", attr, err)
	}
	// Reading the tail back.
	fr, err := s.Open("/huge")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := fr.ReadAt(buf, MaxFileSize-10); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "end" {
		t.Fatalf("tail = %q", buf)
	}
	if err := fr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionTransactionErrors(t *testing.T) {
	_, s := newDB(t)
	if err := s.Commit(); err == nil {
		t.Fatal("commit without begin")
	}
	if err := s.Abort(); err == nil {
		t.Fatal("abort without begin")
	}
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if err := s.Begin(); !errors.Is(err, txn.ErrNestedTx) {
		t.Fatalf("nested begin: %v", err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestAbortInvalidatesOpenFiles(t *testing.T) {
	_, s := newDB(t)
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	f, err := s.Create("/af", CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after session abort: %v", err)
	}
}

func TestDoubleCloseAndUseAfterClose(t *testing.T) {
	_, s := newDB(t)
	f, err := s.Create("/dc", CreateOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	if _, err := f.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := f.Seek(0, io.SeekStart); !errors.Is(err, ErrClosed) {
		t.Fatalf("seek after close: %v", err)
	}
}

// helpers

type heapTID = anyTID

func newMemSwitch() *device.Switch {
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	return sw
}

// xorRand is a tiny deterministic generator for the property tests.
type xorRand struct{ state uint64 }

func newRand(seed int64) *xorRand {
	return &xorRand{state: uint64(seed)*2862933555777941757 + 3037000493}
}

func (r *xorRand) Intn(n int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(n))
}
