package core

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/txn"
)

// ErrReaped is returned by Commit or Abort after the session's
// transaction was aborted from outside — the server's idle-session
// reaper released its locks because the connection went quiet. The
// application should re-run the transaction.
var ErrReaped = errors.New("inversion: transaction aborted: idle session reaped")

// Session is one client of the file system, holding at most one active
// transaction ("a single application program may only have one
// transaction active at any time"). Operations outside an explicit
// Begin/Commit bracket run in their own short transactions
// (autocommit), which is exactly how NFS clients would behave per the
// paper's discussion of NFS access.
type Session struct {
	db    *DB
	owner string

	mu     sync.Mutex
	tx     *txn.Tx
	open   map[*File]bool
	reaped bool // tx was externally aborted; surfaced once via Commit/Abort
}

// NewSession opens a session for the given owner.
func (db *DB) NewSession(owner string) *Session {
	return &Session{db: db, owner: owner, open: make(map[*File]bool)}
}

// DB exposes the underlying database.
func (s *Session) DB() *DB { return s.db }

// Begin starts an explicit transaction (p_begin).
func (s *Session) Begin() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx != nil {
		return txn.ErrNestedTx
	}
	tx, err := s.db.mgr.Begin()
	if err != nil {
		return err
	}
	s.tx = tx
	s.reaped = false
	obs.Active().SetTxn(uint64(tx.ID()))
	return nil
}

// InTx reports whether an explicit transaction is active.
func (s *Session) InTx() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tx != nil
}

// Commit commits the explicit transaction (p_commit), first closing any
// files still open under it so their buffered writes and metadata reach
// the database.
func (s *Session) Commit() error {
	s.mu.Lock()
	tx := s.tx
	s.tx = nil
	wasReaped := s.reaped
	s.reaped = false
	files := make([]*File, 0, len(s.open))
	for f := range s.open {
		files = append(files, f)
	}
	s.open = make(map[*File]bool)
	s.mu.Unlock()
	if tx == nil {
		if wasReaped {
			return ErrReaped
		}
		return errors.New("inversion: no transaction in progress")
	}
	for _, f := range files {
		if err := f.Close(); err != nil && !errors.Is(err, ErrClosed) {
			abortErr := tx.Abort()
			if abortErr != nil {
				return errors.Join(err, abortErr)
			}
			return err
		}
	}
	return tx.Commit()
}

// Abort rolls the explicit transaction back (p_abort). Open files are
// invalidated; their writes never happened.
func (s *Session) Abort() error {
	s.mu.Lock()
	tx := s.tx
	s.tx = nil
	wasReaped := s.reaped
	s.reaped = false
	for f := range s.open {
		f.closed = true
	}
	s.open = make(map[*File]bool)
	s.mu.Unlock()
	if tx == nil {
		if wasReaped {
			return ErrReaped
		}
		return errors.New("inversion: no transaction in progress")
	}
	return tx.Abort()
}

// AbortExternal aborts the session's active transaction from outside
// its owning request loop: the wire server's idle-session reaper and
// shutdown path use it to release a dead client's locks. Open files are
// invalidated, and the session is marked reaped so the next Commit or
// Abort surfaces ErrReaped (Begin clears the mark). It reports whether
// a transaction was actually aborted.
//
// The caller must guarantee no operation on this session runs
// concurrently — the server only reaps connections with no request in
// flight. A session blocked inside a lock wait is safe: releasing the
// transaction's locks unblocks the wait with txn.ErrLockAborted.
func (s *Session) AbortExternal() bool {
	s.mu.Lock()
	tx := s.tx
	s.tx = nil
	if tx == nil {
		s.mu.Unlock()
		return false
	}
	s.reaped = true
	for f := range s.open {
		f.closed = true
	}
	s.open = make(map[*File]bool)
	s.mu.Unlock()
	// The abort may lose the race with a concurrent Commit/Abort that
	// was already past the session check; the claim inside Tx decides.
	return tx.Abort() == nil
}

// Reaped reports whether the session's transaction was externally
// aborted and the fact not yet surfaced to the application.
func (s *Session) Reaped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reaped
}

// snapshot returns the session's read view: the transaction's snapshot
// inside a transaction, the latest committed state otherwise.
func (s *Session) snapshot() *txn.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx != nil {
		return s.tx.Snapshot()
	}
	return s.db.mgr.CurrentSnapshot()
}

// ensureTx returns the active transaction, or starts an implicit one;
// implicit reports which. done(err) finishes an implicit transaction.
func (s *Session) ensureTx() (tx *txn.Tx, implicit bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx != nil {
		obs.Active().SetTxn(uint64(s.tx.ID()))
		return s.tx, false, nil
	}
	tx, err = s.db.mgr.Begin()
	if err == nil {
		obs.Active().SetTxn(uint64(tx.ID()))
	}
	return tx, true, err
}

func finish(tx *txn.Tx, implicit bool, err error) error {
	if !implicit {
		return err
	}
	if err != nil {
		if aerr := tx.Abort(); aerr != nil {
			return errors.Join(err, aerr)
		}
		return err
	}
	return tx.Commit()
}

// track registers an open file with the session so Commit can flush it;
// the file's close hook untracks it.
func (s *Session) track(f *File, implicitTx bool) *File {
	if implicitTx {
		// Closing the file commits its private transaction.
		tx := f.tx
		f.closeHook = func(err error) error {
			if err != nil {
				if aerr := tx.Abort(); aerr != nil {
					return errors.Join(err, aerr)
				}
				return err
			}
			return tx.Commit()
		}
		return f
	}
	s.mu.Lock()
	s.open[f] = true
	s.mu.Unlock()
	f.closeHook = func(err error) error {
		s.mu.Lock()
		delete(s.open, f)
		s.mu.Unlock()
		return err
	}
	return f
}

// CreateOpts configures Create.
type CreateOpts struct {
	Type  string // file type (must be defined); "" = untyped
	Class string // device class; "" = database default
	Flags uint32 // FlagCompressed, FlagNoHistory
}

// Create creates a new file (p_creat) and opens it for writing. Outside
// an explicit transaction the file gets its own transaction, committed
// by Close.
func (s *Session) Create(path string, opts CreateOpts) (*File, error) {
	tx, implicit, err := s.ensureTx()
	if err != nil {
		return nil, err
	}
	f, err := s.db.CreateTx(tx, path, s.owner, opts.Type, opts.Class, opts.Flags)
	if err != nil {
		return nil, finish(tx, implicit, err)
	}
	return s.track(f, implicit), nil
}

// Open opens a file read-only (p_open with timestamp 0).
func (s *Session) Open(path string) (*File, error) { return s.open2(path, false) }

// OpenWrite opens a file for reading and writing.
func (s *Session) OpenWrite(path string) (*File, error) { return s.open2(path, true) }

func (s *Session) open2(path string, write bool) (*File, error) {
	tx, implicit, err := s.ensureTx()
	if err != nil {
		return nil, err
	}
	f, err := s.db.OpenTx(tx, path, write)
	if err != nil {
		return nil, finish(tx, implicit, err)
	}
	return s.track(f, implicit), nil
}

// OpenAsOf opens a historical version of a file (p_open with a
// timestamp): the file exactly as it was at time asof.
func (s *Session) OpenAsOf(path string, asof int64) (*File, error) {
	return s.db.OpenAsOf(path, asof)
}

// Mkdir creates a directory.
func (s *Session) Mkdir(path string) error {
	tx, implicit, err := s.ensureTx()
	if err != nil {
		return err
	}
	_, err = s.db.MkdirTx(tx, path, s.owner)
	return finish(tx, implicit, err)
}

// MkdirAll creates a directory and any missing parents.
func (s *Session) MkdirAll(path string) error {
	parts, err := SplitPath(path)
	if err != nil {
		return err
	}
	cur := ""
	for _, p := range parts {
		cur += "/" + p
		if err := s.Mkdir(cur); err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

// Unlink removes a file or empty directory.
func (s *Session) Unlink(path string) error {
	tx, implicit, err := s.ensureTx()
	if err != nil {
		return err
	}
	return finish(tx, implicit, s.db.UnlinkTx(tx, path))
}

// Rename moves a file or directory.
func (s *Session) Rename(oldPath, newPath string) error {
	tx, implicit, err := s.ensureTx()
	if err != nil {
		return err
	}
	return finish(tx, implicit, s.db.RenameTx(tx, oldPath, newPath))
}

// Stat reports a file's attributes.
func (s *Session) Stat(path string) (FileAttr, error) {
	snap := s.snapshot()
	oid, err := s.db.Resolve(snap, path)
	if err != nil {
		return FileAttr{}, err
	}
	attr, _, err := s.db.getAttr(snap, oid)
	return attr, err
}

// StatAsOf reports a file's attributes as of a moment in the past.
func (s *Session) StatAsOf(path string, asof int64) (FileAttr, error) {
	snap := s.db.mgr.AsOf(asof)
	oid, err := s.db.Resolve(snap, path)
	if err != nil {
		return FileAttr{}, err
	}
	attr, _, err := s.db.getAttr(snap, oid)
	return attr, err
}

// ReadDir lists a directory.
func (s *Session) ReadDir(path string) ([]DirEntry, error) {
	snap := s.snapshot()
	oid, err := s.db.Resolve(snap, path)
	if err != nil {
		return nil, err
	}
	return s.db.ReadDir(snap, oid)
}

// ReadDirAsOf lists a directory as it was at time asof.
func (s *Session) ReadDirAsOf(path string, asof int64) ([]DirEntry, error) {
	snap := s.db.mgr.AsOf(asof)
	oid, err := s.db.Resolve(snap, path)
	if err != nil {
		return nil, err
	}
	return s.db.ReadDir(snap, oid)
}

// WriteFile creates (or replaces) a file with the given contents in one
// transaction.
func (s *Session) WriteFile(path string, data []byte, opts CreateOpts) error {
	tx, implicit, err := s.ensureTx()
	if err != nil {
		return err
	}
	err = func() error {
		f, err := s.db.CreateTx(tx, path, s.owner, opts.Type, opts.Class, opts.Flags)
		if errors.Is(err, ErrExist) {
			f, err = s.db.OpenTx(tx, path, true)
			if err != nil {
				return err
			}
			if err := f.Truncate(0); err != nil {
				return err
			}
		} else if err != nil {
			return err
		}
		if _, err := f.Write(data); err != nil {
			return err
		}
		return f.Close()
	}()
	return finish(tx, implicit, err)
}

// ReadFile reads a whole file.
func (s *Session) ReadFile(path string) ([]byte, error) {
	tx, implicit, err := s.ensureTx()
	if err != nil {
		return nil, err
	}
	var data []byte
	err = func() error {
		f, err := s.db.OpenTx(tx, path, false)
		if err != nil {
			return err
		}
		data = make([]byte, f.Size())
		if _, err := io.ReadFull(f, data); err != nil && err != io.EOF && !errors.Is(err, io.ErrUnexpectedEOF) {
			return err
		}
		return f.Close()
	}()
	if err := finish(tx, implicit, err); err != nil {
		return nil, err
	}
	return data, nil
}

// ReadFileAsOf reads a whole historical file.
func (s *Session) ReadFileAsOf(path string, asof int64) ([]byte, error) {
	f, err := s.db.OpenAsOf(path, asof)
	if err != nil {
		return nil, err
	}
	data := make([]byte, f.Size())
	if len(data) > 0 {
		if _, err := io.ReadFull(f, data); err != nil && err != io.EOF {
			return nil, err
		}
	}
	return data, f.Close()
}

// DefineType declares a new file type (the paper's "define type").
func (s *Session) DefineType(name, doc string) error {
	tx, implicit, err := s.ensureTx()
	if err != nil {
		return err
	}
	return finish(tx, implicit, s.db.cat.DefineType(tx, catalog.TypeInfo{Name: name, Doc: doc}))
}

// DefineFunction declares a function over a file type and registers its
// implementation (the Go analogue of "define function" plus dynamic
// loading).
func (s *Session) DefineFunction(fi catalog.FuncInfo, impl FileFunc) error {
	tx, implicit, err := s.ensureTx()
	if err != nil {
		return err
	}
	if fi.Lang == "" {
		fi.Lang = "go"
	}
	if err := s.db.cat.DefineFunction(tx, fi); err != nil {
		return finish(tx, implicit, err)
	}
	s.db.RegisterFunc(fi.Name, impl)
	return finish(tx, implicit, nil)
}

// Call invokes a registered function on a file and returns its value.
func (s *Session) Call(funcName, path string) (v Value, err error) {
	snap := s.snapshot()
	oid, err := s.db.Resolve(snap, path)
	if err != nil {
		return Value{}, err
	}
	return s.db.CallFunc(snap, funcName, oid)
}

// SetFileType retypes a file (type checking applies from then on).
func (s *Session) SetFileType(path, fileType string) error {
	tx, implicit, err := s.ensureTx()
	if err != nil {
		return err
	}
	err = func() error {
		if fileType != "" {
			if _, ok := s.db.cat.Type(fileType); !ok {
				return fmt.Errorf("inversion: file type %q is not defined", fileType)
			}
		}
		snap := s.db.writeSnap(tx)
		oid, err := s.db.Resolve(snap, path)
		if err != nil {
			return err
		}
		if err := tx.Lock(txn.LockTag{Space: txn.SpaceRelation, Rel: oid}, txn.LockExclusive); err != nil {
			return err
		}
		return s.db.updateAttr(tx, s.db.writeSnap(tx), oid, func(a *FileAttr) { a.Type = fileType })
	}()
	return finish(tx, implicit, err)
}

// Migrate moves a file's chunk table and index to another device class,
// the primitive under the rules-driven migration service. The file is
// locked exclusively for the duration so no session-level reader or
// writer sees it mid-move.
func (s *Session) Migrate(path, class string) error {
	tx, implicit, err := s.ensureTx()
	if err != nil {
		return err
	}
	err = func() error {
		snap := s.db.writeSnap(tx)
		oid, err := s.db.Resolve(snap, path)
		if err != nil {
			return err
		}
		if err := tx.Lock(txn.LockTag{Space: txn.SpaceRelation, Rel: oid}, txn.LockExclusive); err != nil {
			return err
		}
		attr, _, err := s.db.getAttr(snap, oid)
		if err != nil {
			return err
		}
		if attr.IsDir() {
			return ErrIsDirectory
		}
		return s.db.MigrateFile(oid, attr, class)
	}()
	return finish(tx, implicit, err)
}

// Owner reports the session's owner name.
func (s *Session) Owner() string { return s.owner }
