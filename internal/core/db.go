// Package core implements the Inversion file system: a file system
// built on top of a database system. Files are decomposed into chunk
// records stored in per-file tables, the namespace and file attributes
// are ordinary tables, and every file system operation is a database
// operation — which is how Inversion gets transaction protection,
// fine-grained time travel, instant crash recovery, typed files with
// user-defined functions, and ad hoc queries, all from "a small set of
// routines compiled into the data manager".
package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/btree"
	"repro/internal/buffer"
	"repro/internal/catalog"
	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/rowenc"
	"repro/internal/sysview"
	"repro/internal/txn"
	"repro/internal/value"
)

// Well-known OIDs (beyond the txn-log OIDs 1 and 2 and catalog OIDs
// 5–7).
const (
	NamingRel      device.OID = 3  // naming(filename, parentid, file)
	FileAttRel     device.OID = 4  // fileatt(file, owner, type, size, …)
	NameIdxRel     device.OID = 13 // (parentid, hash(filename)) → naming TID
	FileIdxRel     device.OID = 14 // file OID → naming TID
	AttIdxRel      device.OID = 15 // file OID → fileatt TID
	ArchiveRel     device.OID = 16 // vacuum archive
	RootDirOID     device.OID = 10 // the "/" directory
	InvalidFileOID device.OID = 0
)

// ChunkSize is the number of file bytes stored per chunk record. It is
// computed so that a single chunk record fits exactly on one 8 KB data
// manager page in every form it can take: plain (chunkno 4 + length
// prefix 4), compressed-but-incompressible (+ 5-byte compression
// envelope), and vacuumed into the archive (+ 28-byte archive header):
// "File data are collected into chunks slightly smaller than 8 KBytes."
const ChunkSize = heap.MaxPayload - 41

// MaxFileSize is the largest Inversion file: 2^31 chunks of ChunkSize
// bytes ≈ 17.6 TB, the figure the paper quotes (chunk numbers are
// 32-bit signed, chunks are ~8 KB).
const MaxFileSize = int64(1<<31) * int64(ChunkSize)

// Errors returned by the file system layer.
var (
	ErrNotExist     = errors.New("inversion: file does not exist")
	ErrExist        = errors.New("inversion: file already exists")
	ErrIsDirectory  = errors.New("inversion: is a directory")
	ErrNotDirectory = errors.New("inversion: not a directory")
	ErrNotEmpty     = errors.New("inversion: directory not empty")
	ErrReadOnly     = errors.New("inversion: file opened read-only")
	ErrHistoricalWr = errors.New("inversion: historical files may not be opened for writing")
	ErrClosed       = errors.New("inversion: file is closed")
	ErrBadPath      = errors.New("inversion: bad path")
	ErrFileTooBig   = errors.New("inversion: file would exceed 17.6TB limit")
	ErrNoFunction   = errors.New("inversion: no such function")
	ErrTypeMismatch = errors.New("inversion: function does not apply to this file type")
)

// Options configures a database instance.
type Options struct {
	// Buffers is the shared page cache size (default 64, the paper's
	// as-shipped figure; the Berkeley installation used 300).
	Buffers int
	// LogClass is the device class holding the transaction logs
	// (default: the switch's default class).
	LogClass string
	// DefaultClass is where new files go when no class is named.
	DefaultClass string
	// TimeSource overrides commit timestamping (tests).
	TimeSource func() int64
	// TrackATime records access times on reads (costs a metadata
	// update per read transaction; off by default).
	TrackATime bool
	// BackgroundWriter starts the buffer pool's background writer:
	// eviction writebacks move off the foreground, and a commit's data
	// force flushes only the recent dirty set the writer has not
	// reached yet. Off by default — the writer's wall-clock pacing
	// would make the simulated-clock benchmark digits nondeterministic,
	// so only wall-clock deployments (invd, the scaling benchmarks)
	// enable it.
	BackgroundWriter bool
	// BGWriter tunes the background writer when enabled (zero values
	// select buffer.BGConfig defaults).
	BGWriter buffer.BGConfig
	// CheckpointEvery, when positive, checkpoints the transaction log
	// at this wall-clock interval: the current horizon is persisted in
	// the log's control page so the next recovery reads only log pages
	// covering recent transactions. 0 disables (DB.Checkpoint can
	// still be called manually).
	CheckpointEvery time.Duration
	// GroupCommitWindow, when positive, lets a commit-batch leader hold
	// its force open this long to absorb concurrent committers into one
	// log force (see txn.Manager.CommitWindow). 0 (default) forces
	// immediately.
	GroupCommitWindow time.Duration
	// NamespaceShards partitions the namespace metadata (naming/fileatt
	// and their indexes) into this many hash-routed shards. Fixed at
	// bootstrap and persisted in the log control page: on a fresh volume
	// 0 means 1 (the legacy byte-identical layout); on an existing
	// volume 0 means "use what the volume was bootstrapped with", and a
	// non-zero mismatch is rejected at Open.
	NamespaceShards int
	// ShardClasses optionally spreads the namespace shards across device
	// classes: shard i is placed on ShardClasses[i % len]. This is the
	// multi-storage-manager story applied to metadata — one naming
	// relation necessarily lives on one device, but hash-partitioned
	// shards can each be bound to their own spindle so concurrent
	// metadata I/O spreads across the hardware. Placement happens only
	// when a shard's relations are first created; empty means
	// DefaultClass for every shard.
	ShardClasses []string
	// WaitSampling, when positive, runs a wait-event sampler at this
	// wall-clock interval: every blocking site (lock parks, page loads,
	// latches, log forces, background loops) publishes what it is
	// waiting on, and the sampler accumulates the (event, op, relation)
	// profile served by the inv_wait_events catalog, the waitprofile
	// wire op, and /metrics. Off by default: with no sampler attached,
	// every instrumented site is a single atomic load, and the
	// simulated-clock benchmark digits are untouched either way (the
	// sampler never reads the virtual clock).
	WaitSampling time.Duration
	// MetricsHistory, when positive, runs the metrics-history recorder
	// at this wall-clock interval: every tick the obs registry is
	// diffed and appended into the inv_history/inv_history_samples
	// system relations (created lazily at first enable), so the full
	// query surface — including asof — works on the engine's own
	// telemetry. Off by default: no relations are created and the
	// simulated-clock benchmark digits are untouched (the recorder
	// never reads the virtual clock).
	MetricsHistory time.Duration
	// HistoryBudget tunes history retention when MetricsHistory is
	// enabled (zero values select the defaults: raw ticks 1h, 1-minute
	// rollups 24h).
	HistoryBudget HistoryBudget
}

// FileFunc is a user-defined function over a file, executed inside the
// data manager process — the Go analogue of the dynamically loaded C
// functions of POSTGRES 4.0.1.
type FileFunc func(ctx *FuncCtx) (value.V, error)

// DB is one Inversion database: a mount point whose files all root at
// "/" in this database.
type DB struct {
	sw   *device.Switch
	pool *buffer.Pool
	log  *txn.Log
	mgr  *txn.Manager
	cat  *catalog.Catalog
	opts Options

	ns      *namespaceShards
	archive *heap.Relation

	relMu   sync.RWMutex
	rels    map[device.OID]*heap.Relation
	trees   map[device.OID]*btree.Tree
	funcMu  sync.RWMutex
	funcs   map[string]FileFunc
	builtin map[string]FileFunc

	valMu      sync.RWMutex
	validators map[string]TypeValidator

	metrics *obs.Registry
	views   *sysview.Registry

	vacMu   sync.Mutex
	vacRuns []sysview.VacuumRow // recent vacuum runs, newest first

	stopBG   func()        // background writer, when started
	stopCkpt chan struct{} // closed to stop the checkpointer
	ckptWg   sync.WaitGroup
	sampler  *obs.WaitSampler // wait-event sampler, when configured
	hist     *historyRecorder // metrics-history recorder, when configured
	closeMu  sync.Mutex       // Close is idempotent on the goroutines
}

// maxVacuumRuns bounds the in-memory vacuum history inv_vacuum serves.
const maxVacuumRuns = 32

// Open opens (or bootstraps) an Inversion database over the device
// switch. The switch must have at least one registered device manager.
func Open(sw *device.Switch, opts Options) (*DB, error) {
	if opts.Buffers <= 0 {
		opts.Buffers = buffer.DefaultBuffers
	}
	logClass := opts.LogClass
	logDev, err := pickManager(sw, logClass)
	if err != nil {
		return nil, err
	}
	log, err := txn.OpenLog(logDev)
	if err != nil {
		return nil, err
	}
	mgr := txn.NewManager(log)
	if opts.TimeSource != nil {
		mgr.TimeSource = opts.TimeSource
	}
	mgr.CommitWindow = opts.GroupCommitWindow
	pool := buffer.NewPool(sw, opts.Buffers)
	mgr.ForceData = func() error {
		if err := pool.FlushAll(); err != nil {
			return err
		}
		return sw.Sync()
	}

	db := &DB{
		sw:      sw,
		pool:    pool,
		log:     log,
		mgr:     mgr,
		opts:    opts,
		rels:    make(map[device.OID]*heap.Relation),
		trees:   make(map[device.OID]*btree.Tree),
		funcs:   make(map[string]FileFunc),
		metrics: obs.NewRegistry(),
	}
	pool.SetObs(db.metrics)
	mgr.SetObs(db.metrics)

	// Ensure the fixed relations exist and are placed. The namespace
	// shards place their own relations in openShards below.
	fixed := []struct {
		oid  device.OID
		kind catalog.RelKind
	}{
		{catalog.RelationsRel, catalog.KindHeap},
		{catalog.TypesRel, catalog.KindHeap},
		{catalog.FunctionsRel, catalog.KindHeap},
		{ArchiveRel, catalog.KindHeap},
	}
	for _, f := range fixed {
		if _, err := sw.Home(f.oid); err != nil {
			if err := sw.Place(f.oid, opts.DefaultClass); err != nil {
				return nil, err
			}
		}
	}

	nShards, err := resolveShardCount(log, opts.NamespaceShards)
	if err != nil {
		return nil, err
	}
	if db.ns, err = openShards(nShards, sw, pool, mgr, opts.DefaultClass, opts.ShardClasses); err != nil {
		return nil, err
	}
	db.archive = heap.Open(ArchiveRel, pool, mgr)

	cat, err := catalog.Open(
		heap.Open(catalog.RelationsRel, pool, mgr),
		heap.Open(catalog.TypesRel, pool, mgr),
		heap.Open(catalog.FunctionsRel, pool, mgr),
		mgr, sw)
	if err != nil {
		return nil, err
	}
	db.cat = cat
	cat.NoteOID(RootDirOID)

	// Re-place catalogued relations whose home the switch does not know
	// — this is how a persistent database reopened over a fresh switch
	// finds its file tables again (the catalog records each relation's
	// device class).
	for _, ri := range cat.Relations() {
		if _, err := sw.Home(ri.OID); err != nil {
			if err := sw.Place(ri.OID, ri.Class); err != nil {
				return nil, err
			}
		}
	}

	db.registerBuiltins()

	// System catalogs: the engine's own internals as virtual relations.
	// The wire server adds inv_traces (the trace ring lives there);
	// inv_columns reads the registry itself, so it sees that addition.
	db.views = sysview.NewRegistry()
	db.views.Register(sysview.NewStatOps(db.metrics))
	db.views.Register(sysview.NewStatBuffer(pool))
	db.views.Register(sysview.NewLocks(mgr.Locks()))
	db.views.Register(sysview.NewTransactions(mgr))
	db.views.Register(sysview.NewRelations(db.relRows))
	db.views.Register(sysview.NewVacuum(db.vacuumRuns))
	db.views.Register(sysview.NewStatTxn(db.metrics, mgr, pool))
	db.views.Register(sysview.NewStatNamespace(db.namespaceRows))
	db.views.Register(sysview.NewWaitEvents(db.WaitProfile))
	db.views.Register(sysview.NewHistoryMeta(db.historySeriesRows))
	db.views.Register(sysview.NewColumnsCatalog(db.views))

	// Optional background machinery. Both are wall-clock paced, so the
	// simulated-clock benchmarks leave them off; when off, commits and
	// recovery behave exactly as before this machinery existed.
	if opts.BackgroundWriter {
		db.stopBG = pool.StartBackgroundWriter(opts.BGWriter)
	}
	if opts.WaitSampling > 0 {
		db.sampler = obs.NewWaitSampler(opts.WaitSampling, db.metrics)
		db.sampler.Start()
	}
	if opts.MetricsHistory > 0 {
		db.hist = newHistoryRecorder(db, opts.MetricsHistory, opts.HistoryBudget)
		db.hist.start()
	}
	if opts.CheckpointEvery > 0 {
		db.stopCkpt = make(chan struct{})
		db.ckptWg.Add(1)
		go func() {
			defer db.ckptWg.Done()
			ticker := time.NewTicker(opts.CheckpointEvery)
			defer ticker.Stop()
			for {
				w := obs.BeginWaitLoop(obs.WaitCheckpointIdle, "checkpointer")
				select {
				case <-db.stopCkpt:
					w.End()
					return
				case <-ticker.C:
					w.End()
					// Errors are deliberately dropped: a failed
					// checkpoint leaves the previous (still correct)
					// checkpoint in place, and the next tick retries.
					t0 := time.Now()
					err := db.mgr.Checkpoint()
					detail := ""
					if err != nil {
						detail = "error: " + err.Error()
					}
					obs.Flight().RecordLifecycle("checkpoint", detail,
						int64(time.Since(t0)), 1)
				}
			}
		}()
	}

	// Bootstrap the root directory if this database is fresh: "The
	// root directory, named '/', appears in every POSTGRES database as
	// shipped from Berkeley."
	if _, _, err := db.lookupChild(mgr.CurrentSnapshot(), 0, "/"); errors.Is(err, ErrNotExist) {
		if err := db.bootstrapRoot(); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}
	return db, nil
}

func pickManager(sw *device.Switch, class string) (device.Manager, error) {
	if class != "" {
		return sw.Manager(class)
	}
	classes := sw.Classes()
	if len(classes) == 0 {
		return nil, errors.New("inversion: device switch has no managers")
	}
	// Prefer NVRAM for the logs if present, else any manager.
	if m, err := sw.Manager("mem"); err == nil {
		return m, nil
	}
	return sw.Manager(classes[0])
}

func (db *DB) bootstrapRoot() error {
	x := txn.BootstrapXID
	ds := db.ns.dirShard(0)
	tidN, err := ds.naming.Insert(x, encodeNaming("/", 0, RootDirOID))
	if err != nil {
		return err
	}
	if _, err := ds.nameIdx.Insert(btree.Entry{Key: nameKey(0, "/"), Val: tidN.Pack()}); err != nil {
		return err
	}
	if _, err := ds.fileIdx.Insert(btree.Entry{Key: oidKey(RootDirOID), Val: tidN.Pack()}); err != nil {
		return err
	}
	attr := FileAttr{
		File: RootDirOID, Owner: "root", Type: TypeDirectory,
	}
	fs := db.ns.fileShard(RootDirOID)
	tidA, err := fs.fileatt.Insert(x, encodeAttr(attr))
	if err != nil {
		return err
	}
	if _, err := fs.attIdx.Insert(btree.Entry{Key: oidKey(RootDirOID), Val: tidA.Pack()}); err != nil {
		return err
	}
	// Flush AND sync: the bootstrap transaction's status was forced (with
	// a sync) by OpenLog before these pages existed, so without a sync of
	// its own the root directory could be lost in a crash while its
	// commit record survives — a committed transaction with torn data.
	// (The simulated devices' Sync is free, so benchmark digits are
	// unaffected.)
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	return db.sw.Sync()
}

// Manager exposes the transaction manager.
func (db *DB) Manager() *txn.Manager { return db.mgr }

// Catalog exposes the system catalog.
func (db *DB) Catalog() *catalog.Catalog { return db.cat }

// Pool exposes the buffer pool (benchmarks read its stats).
func (db *DB) Pool() *buffer.Pool { return db.pool }

// Switch exposes the device switch.
func (db *DB) Switch() *device.Switch { return db.sw }

// Obs exposes the metrics registry every layer of this database records
// into.
func (db *DB) Obs() *obs.Registry { return db.metrics }

// SysViews exposes the virtual-relation registry. The query engine
// resolves range variables against it; servers may register additional
// catalogs (the wire server adds inv_traces).
func (db *DB) SysViews() *sysview.Registry { return db.views }

// relRows materializes the inv_relations catalog: the fixed system
// heaps plus every catalogued relation. Heap relations get full tuple
// statistics from a one-pass scan; index relations report page counts
// only (their pages are not record-formatted).
func (db *DB) relRows() ([]sysview.RelRow, error) {
	type fixedRel struct {
		oid  device.OID
		name string
	}
	fixed := []fixedRel{
		{catalog.RelationsRel, "pg_relations"},
		{catalog.TypesRel, "pg_types"},
		{catalog.FunctionsRel, "pg_functions"},
	}
	for i, s := range db.ns.shards {
		fixed = append(fixed,
			fixedRel{s.naming.OID, shardName(i, "naming")},
			fixedRel{s.fileatt.OID, shardName(i, "fileatt")})
	}
	fixed = append(fixed, fixedRel{ArchiveRel, "archive"})
	var out []sysview.RelRow
	add := func(oid device.OID, name, kind string, scan bool) error {
		row := sysview.RelRow{OID: int64(oid), Name: name, Kind: kind}
		if scan {
			st, err := db.dataRel(oid).TupleStats()
			if err != nil {
				return err
			}
			row.Pages, row.Live, row.Dead = int64(st.Pages), int64(st.Live), int64(st.Dead)
		} else if n, err := db.pool.NPages(oid); err == nil {
			row.Pages = int64(n)
		}
		out = append(out, row)
		return nil
	}
	for _, f := range fixed {
		if err := add(f.oid, f.name, "heap", true); err != nil {
			return nil, err
		}
	}
	var idxs []fixedRel
	for i, s := range db.ns.shards {
		idxs = append(idxs,
			fixedRel{s.nameIdx.OID(), shardName(i, "naming_name_idx")},
			fixedRel{s.fileIdx.OID(), shardName(i, "naming_file_idx")},
			fixedRel{s.attIdx.OID(), shardName(i, "fileatt_idx")})
	}
	for _, idx := range idxs {
		if err := add(idx.oid, idx.name, "index", false); err != nil {
			return nil, err
		}
	}
	for _, ri := range db.cat.Relations() {
		switch ri.Kind {
		case catalog.KindHeap:
			if err := add(ri.OID, ri.Name, "heap", true); err != nil {
				return nil, err
			}
		case catalog.KindIndex:
			if err := add(ri.OID, ri.Name, "index", false); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// vacuumRuns reports the recent vacuum history, newest first.
func (db *DB) vacuumRuns() []sysview.VacuumRow {
	db.vacMu.Lock()
	out := make([]sysview.VacuumRow, len(db.vacRuns))
	copy(out, db.vacRuns)
	db.vacMu.Unlock()
	return out
}

// RefreshObsGauges updates the registry gauges that mirror derived
// state, so a scrape or snapshot sees current values. Called by the
// stats handlers, not on any hot path.
func (db *DB) RefreshObsGauges() {
	m := db.metrics
	m.Gauge("buffer.capacity_pages").Set(int64(db.pool.Capacity()))
	m.Gauge("catalog.relations").Set(int64(len(db.cat.Relations())))
	m.Gauge("catalog.types").Set(int64(len(db.cat.Types())))
	m.Gauge("catalog.functions").Set(int64(len(db.cat.Functions())))
	m.Gauge("txn.horizon_xid").Set(int64(db.mgr.Horizon()))
	m.Gauge("txn.last_commit_unix_ns").Set(db.mgr.LastCommitTime())
	m.Gauge("txn.checkpoint_xid").Set(int64(db.log.CheckpointXID()))
	ps := db.pool.Stats()
	m.Gauge("buffer.dirty_pages").Set(ps.DirtyPages)
	m.Gauge("namespace.shards").Set(int64(db.ns.n))
	for _, s := range db.ns.shards {
		pre := fmt.Sprintf("namespace.shard%d.", s.id)
		m.Gauge(pre + "lookups").Set(s.lookups.Load())
		m.Gauge(pre + "hits").Set(s.hits.Load())
		m.Gauge(pre + "inserts").Set(s.inserts.Load())
		m.Gauge(pre + "removes").Set(s.removes.Load())
		m.Gauge(pre + "renames").Set(s.renames.Load())
		m.Gauge(pre + "cross_renames").Set(s.crossRenames.Load())
		m.Gauge(pre + "lock_waits").Set(s.lockWaits.Load())
	}
}

// NamespaceShardCount reports how many shards this volume's namespace
// metadata is partitioned into (1 = the legacy layout).
func (db *DB) NamespaceShardCount() int { return int(db.ns.n) }

// NamespaceShardStats is one shard's traffic and contention counters
// (no row counts — those need a heap scan; see namespaceRows).
type NamespaceShardStats struct {
	Shard        int
	Lookups      int64
	Hits         int64
	Inserts      int64
	Removes      int64
	Renames      int64
	CrossRenames int64
	LockWaits    int64
}

// NamespaceStats snapshots every shard's counters (benchmarks, tests).
func (db *DB) NamespaceStats() []NamespaceShardStats {
	out := make([]NamespaceShardStats, len(db.ns.shards))
	for i, s := range db.ns.shards {
		out[i] = NamespaceShardStats{
			Shard:        s.id,
			Lookups:      s.lookups.Load(),
			Hits:         s.hits.Load(),
			Inserts:      s.inserts.Load(),
			Removes:      s.removes.Load(),
			Renames:      s.renames.Load(),
			CrossRenames: s.crossRenames.Load(),
			LockWaits:    s.lockWaits.Load(),
		}
	}
	return out
}

// namespaceRows materializes inv_stat_namespace: one row per shard with
// live/dead naming and fileatt row counts (a heap scan, computed on
// demand — the catalog path, not the metrics path) plus the atomic
// traffic counters.
func (db *DB) namespaceRows() ([]sysview.NamespaceShardRow, error) {
	out := make([]sysview.NamespaceShardRow, 0, len(db.ns.shards))
	for _, s := range db.ns.shards {
		nst, err := s.naming.TupleStats()
		if err != nil {
			return nil, err
		}
		ast, err := s.fileatt.TupleStats()
		if err != nil {
			return nil, err
		}
		out = append(out, sysview.NamespaceShardRow{
			Shard:        int64(s.id),
			NamingOID:    int64(s.naming.OID),
			FileAttOID:   int64(s.fileatt.OID),
			NamingLive:   int64(nst.Live),
			NamingDead:   int64(nst.Dead),
			FileAttLive:  int64(ast.Live),
			FileAttDead:  int64(ast.Dead),
			Lookups:      s.lookups.Load(),
			Hits:         s.hits.Load(),
			Inserts:      s.inserts.Load(),
			Removes:      s.removes.Load(),
			Renames:      s.renames.Load(),
			CrossRenames: s.crossRenames.Load(),
			LockWaits:    s.lockWaits.Load(),
		})
	}
	return out, nil
}

// Stats aggregates operational counters for monitoring.
type Stats struct {
	CacheHits       int64
	CacheMisses     int64
	CacheWritebacks int64
	CacheCapacity   int
	Relations       int // catalogued relations
	Types           int
	Functions       int
	Horizon         txn.XID // oldest XID any live snapshot can need
	LastCommitTime  int64

	// Concurrency observables: buffer-pool pressure and the txn
	// manager's visibility fast path.
	CacheEvictions   int64
	CacheOvercommits int64 // demand exceeded capacity with all frames pinned
	CacheLoadWaits   int64 // Gets that waited behind another goroutine's load
	StatusCacheHits  int64 // committed-XID cache hits (lock-free visibility)
	StatusCacheMisses int64
	LockWaits        int64 // lock requests that had to queue
}

// Stats reports operational counters.
func (db *DB) Stats() Stats {
	ps := db.pool.Stats()
	sh, sm := db.mgr.StatusCacheStats()
	return Stats{
		CacheHits:       ps.Hits,
		CacheMisses:     ps.Misses,
		CacheWritebacks: ps.Writebacks,
		CacheCapacity:   db.pool.Capacity(),
		Relations:       len(db.cat.Relations()),
		Types:           len(db.cat.Types()),
		Functions:       len(db.cat.Functions()),
		Horizon:         db.mgr.Horizon(),
		LastCommitTime:  db.mgr.LastCommitTime(),

		CacheEvictions:    ps.Evictions,
		CacheOvercommits:  ps.Overcommits,
		CacheLoadWaits:    ps.LoadWaits,
		StatusCacheHits:   sh,
		StatusCacheMisses: sm,
		LockWaits:         db.mgr.Locks().Waits(),
	}
}

// Checkpoint persists the current transaction horizon in the log's
// control page, bounding the log pages the next recovery must read.
func (db *DB) Checkpoint() error { return db.mgr.Checkpoint() }

// stopBackground halts the history recorder, background writer, and
// checkpointer (if started), waiting for every goroutine to exit.
// Idempotent. The recorder is halted first — and outside closeMu,
// which its ticks acquire via WaitProfile — so an in-flight recording
// transaction aborts before the pool is torn down beneath it.
func (db *DB) stopBackground() {
	db.hist.halt()
	db.closeMu.Lock()
	defer db.closeMu.Unlock()
	if db.stopBG != nil {
		db.stopBG()
		db.stopBG = nil
	}
	if db.stopCkpt != nil {
		close(db.stopCkpt)
		db.ckptWg.Wait()
		db.stopCkpt = nil
	}
	if db.sampler != nil {
		db.sampler.Stop()
		db.sampler = nil
	}
}

// WaitProfile reports the accumulated wait-event profile (zero when no
// sampler is configured).
func (db *DB) WaitProfile() obs.WaitProfile {
	db.closeMu.Lock()
	s := db.sampler
	db.closeMu.Unlock()
	return s.Snapshot()
}

// Close flushes every dirty page and forces the devices, leaving the
// database cleanly reopenable. Device managers themselves (e.g. a
// persistent FileDisk) are owned by the caller and closed separately.
func (db *DB) Close() error {
	db.stopBackground()
	if err := db.pool.FlushAll(); err != nil {
		return err
	}
	return db.sw.Sync()
}

// Crash simulates a machine crash for recovery tests: the buffer cache
// is lost; stable storage survives. Reopen with Recover.
func (db *DB) Crash() {
	db.stopBackground()
	db.pool.Crash()
}

// Recover reopens the database over the same devices after a Crash.
// There is no consistency check pass: recovery is the reopen itself.
func (db *DB) Recover() (*DB, error) { return Open(db.sw, db.opts) }

// dataRel returns (caching) the heap relation handle for a file's
// chunk table. The fast path is a shared-lock map read; only the first
// access of a relation takes the write lock.
func (db *DB) dataRel(oid device.OID) *heap.Relation {
	db.relMu.RLock()
	r, ok := db.rels[oid]
	db.relMu.RUnlock()
	if ok {
		return r
	}
	db.relMu.Lock()
	defer db.relMu.Unlock()
	if r, ok := db.rels[oid]; ok {
		return r
	}
	r = heap.Open(oid, db.pool, db.mgr)
	db.rels[oid] = r
	return r
}

// chunkTree returns (caching) the B-tree handle for a file's chunk
// index, with the same shared-lock fast path as dataRel.
func (db *DB) chunkTree(oid device.OID) (*btree.Tree, error) {
	db.relMu.RLock()
	t, ok := db.trees[oid]
	db.relMu.RUnlock()
	if ok {
		return t, nil
	}
	db.relMu.Lock()
	defer db.relMu.Unlock()
	if t, ok := db.trees[oid]; ok {
		return t, nil
	}
	t, err := btree.Open(oid, db.pool)
	if err != nil {
		return nil, err
	}
	db.trees[oid] = t
	return t, nil
}

// nameKey builds the naming-index key for a child name under a parent
// directory.
func nameKey(parent device.OID, name string) btree.Key {
	h := fnv.New64a()
	h.Write([]byte(name))
	return btree.Key{K1: uint64(parent), K2: h.Sum64()}
}

// oidKey builds a single-OID index key.
func oidKey(oid device.OID) btree.Key { return btree.Key{K1: uint64(oid)} }

// Naming rows: naming(filename = char[], parentid = object_id,
// file = object_id).
func encodeNaming(name string, parent, file device.OID) []byte {
	return rowenc.NewWriter(32).String(name).Uint32(uint32(parent)).Uint32(uint32(file)).Done()
}

func decodeNaming(b []byte) (name string, parent, file device.OID, err error) {
	r := rowenc.NewReader(b)
	name = r.String()
	parent = device.OID(r.Uint32())
	file = device.OID(r.Uint32())
	return name, parent, file, r.Err()
}

// DataRelName reports the name of the table storing a file's chunks:
// "The name of the POSTGRES table storing data chunks for /etc/passwd
// would be inv23114."
func DataRelName(oid device.OID) string { return fmt.Sprintf("inv%d", oid) }

// IdxRelName names a file's chunk-number index relation.
func IdxRelName(oid device.OID) string { return fmt.Sprintf("inv%d_chunk_idx", oid) }
