package rowenc

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	row := NewWriter(64).
		Uint32(42).
		Uint64(1 << 40).
		Int64(-7).
		String("hello").
		Bytes([]byte{1, 2, 3}).
		String("").
		Done()
	r := NewReader(row)
	if got := r.Uint32(); got != 42 {
		t.Fatalf("Uint32 = %d", got)
	}
	if got := r.Uint64(); got != 1<<40 {
		t.Fatalf("Uint64 = %d", got)
	}
	if got := r.Int64(); got != -7 {
		t.Fatalf("Int64 = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes remain", r.Remaining())
	}
}

func TestTruncatedRowsErr(t *testing.T) {
	row := NewWriter(16).String("hello world").Done()
	for cut := 0; cut < len(row); cut++ {
		r := NewReader(row[:cut])
		_ = r.String()
		if r.Err() == nil {
			t.Fatalf("no error at cut %d", cut)
		}
	}
}

func TestErrorSticky(t *testing.T) {
	r := NewReader([]byte{1})
	_ = r.Uint64() // fails
	if r.Err() == nil {
		t.Fatal("no error")
	}
	if got := r.Uint32(); got != 0 {
		t.Fatalf("post-error read = %d", got)
	}
}

func TestReadingWrongShapeNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		r := NewReader(data)
		_ = r.Uint32()
		_ = r.String()
		_ = r.Int64()
		_ = r.Bytes()
		_ = r.Uint64()
		return true // just must not panic
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(a uint32, b uint64, c int64, s string, raw []byte) bool {
		row := NewWriter(0).Uint32(a).Uint64(b).Int64(c).String(s).Bytes(raw).Done()
		r := NewReader(row)
		if r.Uint32() != a || r.Uint64() != b || r.Int64() != c {
			return false
		}
		if r.String() != s {
			return false
		}
		if !bytes.Equal(r.Bytes(), raw) && !(len(raw) == 0) {
			return false
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtremeValues(t *testing.T) {
	row := NewWriter(0).Int64(math.MinInt64).Int64(math.MaxInt64).Uint64(math.MaxUint64).Done()
	r := NewReader(row)
	if r.Int64() != math.MinInt64 || r.Int64() != math.MaxInt64 || r.Uint64() != math.MaxUint64 {
		t.Fatal("extremes corrupted")
	}
}
