// Package rowenc is a small codec for fixed-schema rows stored in heap
// records: unsigned ints, signed ints, strings, and byte slices with
// length prefixes, little-endian throughout.
package rowenc

import (
	"encoding/binary"
	"errors"
)

// ErrCorrupt reports a malformed row.
var ErrCorrupt = errors.New("rowenc: corrupt row")

// Writer accumulates an encoded row.
type Writer struct{ buf []byte }

// NewWriter returns a writer with capacity for n bytes.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Uint32 appends a fixed 32-bit value.
func (w *Writer) Uint32(v uint32) *Writer {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
	return w
}

// Uint64 appends a fixed 64-bit value.
func (w *Writer) Uint64(v uint64) *Writer {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	return w
}

// Int64 appends a signed 64-bit value.
func (w *Writer) Int64(v int64) *Writer { return w.Uint64(uint64(v)) }

// String appends a length-prefixed string.
func (w *Writer) String(s string) *Writer {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(s)))
	w.buf = append(w.buf, s...)
	return w
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) *Writer {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(b)))
	w.buf = append(w.buf, b...)
	return w
}

// Done returns the encoded row.
func (w *Writer) Done() []byte { return w.buf }

// Reader decodes a row encoded by Writer. Decoding errors are sticky:
// check Err once after all fields are read.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a reader over an encoded row.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err reports the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = ErrCorrupt
		}
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Uint32 reads a fixed 32-bit value.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Uint64 reads a fixed 64-bit value.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 reads a signed 64-bit value.
func (r *Reader) Int64() int64 { return int64(r.Uint64()) }

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := int(r.Uint32())
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Bytes reads a length-prefixed byte slice (aliased into the row).
func (r *Reader) Bytes() []byte {
	n := int(r.Uint32())
	return r.take(n)
}

// Remaining reports how many bytes are left undecoded.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }
