package query

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/satgen"
	"repro/internal/typefuncs"
	"repro/internal/value"
)

func newEnv(t *testing.T) (*core.DB, *core.Session, *Engine) {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	var mu sync.Mutex
	tick := int64(1 << 30)
	db, err := core.Open(sw, Options(&mu, &tick))
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("mao")
	if err := typefuncs.RegisterAll(s); err != nil {
		t.Fatal(err)
	}
	return db, s, New(db)
}

// Options builds deterministic core options (helper kept separate so the
// fixture reads clearly).
func Options(mu *sync.Mutex, tick *int64) core.Options {
	return core.Options{
		Buffers: 128,
		TimeSource: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			*tick += 1000
			return *tick
		},
	}
}

func mustRun(t *testing.T, e *Engine, s *core.Session, q string) *Result {
	t.Helper()
	res, err := e.Run(s, q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func names(res *Result) []string {
	var out []string
	for _, row := range res.Rows {
		out = append(out, row[len(row)-1].S)
	}
	return out
}

func TestOwnerTypeDirQuery(t *testing.T) {
	// The paper's example: movie or sound files owned by mao in
	// /users/mao.
	_, s, e := newEnv(t)
	if err := s.DefineType("movie", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.DefineType("sound", ""); err != nil {
		t.Fatal(err)
	}
	if err := s.MkdirAll("/users/mao"); err != nil {
		t.Fatal(err)
	}
	files := map[string]core.CreateOpts{
		"/users/mao/clip.movie": {Type: "movie"},
		"/users/mao/song.sound": {Type: "sound"},
		"/users/mao/notes.txt":  {Type: typefuncs.TypeASCII},
		"/other-owner-clip.mov": {Type: "movie"},
	}
	for path, opts := range files {
		owner := s
		if strings.HasPrefix(path, "/other") {
			owner = s.DB().NewSession("someone-else")
		}
		if err := owner.WriteFile(path, []byte("x"), opts); err != nil {
			t.Fatal(err)
		}
	}
	res := mustRun(t, e, s, `retrieve (filename)
		where owner(file) = "mao"
		and (filetype(file) = "movie" or filetype(file) = "sound")
		and dir(file) = "/users/mao"`)
	got := map[string]bool{}
	for _, row := range res.Rows {
		got[row[0].S] = true
	}
	if len(got) != 2 || !got["clip.movie"] || !got["song.sound"] {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestSnowQuery(t *testing.T) {
	// The paper's TM query: April images that are more than 50% snow.
	_, s, e := newEnv(t)
	scenes := []struct {
		name string
		frac float64
	}{
		{"/tm-snowy", 0.8},
		{"/tm-patchy", 0.6},
		{"/tm-clear", 0.1},
	}
	for i, sc := range scenes {
		img := satgen.Generate(satgen.Params{Width: 32, Height: 32, SnowFraction: sc.frac, Seed: uint64(i + 1)})
		if err := s.WriteFile(sc.name, img.Encode(), core.CreateOpts{Type: typefuncs.TypeTM}); err != nil {
			t.Fatal(err)
		}
	}
	// Not a TM file: must be filtered, not error, since snow() is
	// declared only for type tm.
	if err := s.WriteFile("/readme", []byte("no pixels here"), core.CreateOpts{Type: typefuncs.TypeASCII}); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, e, s, `retrieve (snow(file), filename)
		where filetype(file) = "tm" and snow(file)/pixelcount(file) > 0.5`)
	got := map[string]int64{}
	for _, row := range res.Rows {
		got[row[1].S] = row[0].I
	}
	if len(got) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if _, ok := got["tm-snowy"]; !ok {
		t.Fatal("snowy scene missing")
	}
	if _, ok := got["tm-patchy"]; !ok {
		t.Fatal("patchy scene missing")
	}
	if got["tm-snowy"] <= 0 {
		t.Fatal("snow() returned nonpositive count")
	}
}

func TestKeywordsInQuery(t *testing.T) {
	// retrieve (filename) where "RISC" in keywords(file)
	_, s, e := newEnv(t)
	doc := ".KW RISC architecture\n.KW benchmarks\nThe RISC paper body.\n"
	if err := s.WriteFile("/risc.t", []byte(doc), core.CreateOpts{Type: typefuncs.TypeTroff}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/other.t", []byte(".KW databases\nbody\n"), core.CreateOpts{Type: typefuncs.TypeTroff}); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, e, s, `retrieve (filename) where "RISC" in keywords(file)`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "risc.t" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestArithmeticAndComparisons(t *testing.T) {
	_, s, e := newEnv(t)
	if err := s.WriteFile("/f1", make([]byte, 100), core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/f2", make([]byte, 300), core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, e, s, `retrieve (filename, size(file)) where size(file) >= 100 and size(file) * 2 < 500`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "f1" || res.Rows[0][1].I != 100 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustRun(t, e, s, `retrieve (filename) where not (size(file) = 100) and not isdir(file)`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "f2" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestAsOfQuery(t *testing.T) {
	db, s, e := newEnv(t)
	if err := s.WriteFile("/old", []byte("x"), core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	before := db.Manager().LastCommitTime()
	if err := s.Unlink("/old"); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/new", []byte("y"), core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	now := mustRun(t, e, s, `retrieve (filename) where not isdir(file)`)
	then := mustRun(t, e, s, fmt.Sprintf(`retrieve (filename) where not isdir(file) asof %d`, before))
	if got := names(now); len(got) != 1 || got[0] != "new" {
		t.Fatalf("now = %v", got)
	}
	if got := names(then); len(got) != 1 || got[0] != "old" {
		t.Fatalf("then = %v", got)
	}
}

func TestDefineStatements(t *testing.T) {
	db, s, e := newEnv(t)
	res := mustRun(t, e, s, `define type "HDF" doc "Hierarchical Data Format"`)
	if res.Message == "" {
		t.Fatal("no message")
	}
	if _, ok := db.Catalog().Type("HDF"); !ok {
		t.Fatal("type not defined")
	}
	res = mustRun(t, e, s, `define function "hdfdims" for "HDF" doc "dataset dimensions"`)
	if res.Message == "" {
		t.Fatal("no message")
	}
	if _, ok := db.Catalog().Function("hdfdims"); !ok {
		t.Fatal("function not declared")
	}
	// Declared but not loaded: calling errors.
	if err := s.WriteFile("/d.hdf", []byte("x"), core.CreateOpts{Type: "HDF"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call("hdfdims", "/d.hdf"); !errors.Is(err, core.ErrNoFunction) {
		t.Fatalf("unloaded function call: %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	_, s, e := newEnv(t)
	bad := []string{
		``,
		`retrieve filename`,
		`retrieve (filename`,
		`retrieve (filename) where`,
		`retrieve (filename) where size(file) >`,
		`retrieve (filename) extra`,
		`retrieve (nosuchattr)`,
		`retrieve (size(file, file))`,
		`retrieve (size(filename))`,
		`retrieve (filename) where "a" in "unterminated`,
		`define widget "x"`,
	}
	for _, q := range bad {
		if _, err := e.Run(s, q); err == nil {
			t.Errorf("query %q did not fail", q)
		}
	}
}

func TestSortByAndLimit(t *testing.T) {
	_, s, e := newEnv(t)
	sizes := map[string]int{"/a": 300, "/b": 100, "/c": 200, "/d": 50}
	for p, n := range sizes {
		if err := s.WriteFile(p, make([]byte, n), core.CreateOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	res := mustRun(t, e, s, `retrieve (filename, size(file)) where not isdir(file) sort by size(file)`)
	want := []string{"d", "b", "c", "a"}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, w := range want {
		if res.Rows[i][0].S != w {
			t.Fatalf("ascending order = %v", res.Rows)
		}
	}
	res = mustRun(t, e, s, `retrieve (filename) where not isdir(file) sort by size(file) desc limit 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].S != "a" || res.Rows[1][0].S != "c" {
		t.Fatalf("desc limit rows = %v", res.Rows)
	}
	// Sort by a string key.
	res = mustRun(t, e, s, `retrieve (filename) where not isdir(file) sort by filename desc limit 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "d" {
		t.Fatalf("string sort = %v", res.Rows)
	}
	// Bad limits are rejected.
	for _, q := range []string{
		`retrieve (filename) limit 0`,
		`retrieve (filename) limit x`,
		`retrieve (filename) sort size(file)`,
	} {
		if _, err := e.Run(s, q); err == nil {
			t.Errorf("query %q did not fail", q)
		}
	}
}

func TestQueryValueRendering(t *testing.T) {
	_, s, e := newEnv(t)
	if err := s.WriteFile("/v", []byte("abc"), core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, e, s, `retrieve (filename, size(file), owner(file)) where filename = "v"`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0].Kind != value.KindString || row[1].Kind != value.KindInt || row[2].S != "mao" {
		t.Fatalf("row = %v", row)
	}
	if res.Columns[0] != "filename" || res.Columns[1] != "size" {
		t.Fatalf("columns = %v", res.Columns)
	}
}
