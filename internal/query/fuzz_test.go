package query

import "testing"

// FuzzParse: arbitrary statement text must never panic the lexer or
// parser; it either yields an AST or an error.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`retrieve (filename) where owner(file) = "mao"`,
		`retrieve (snow(file), filename) where snow(file)/size(file) > 0.5`,
		`define type "x" doc "y"`,
		`retrieve (filename) sort by size(file) desc limit 3 asof 12345`,
		`retrieve ((((filename))))`,
		`retrieve (1 + 2 * -3 / 4 - 5)`,
		"retrieve (filename) where \"unterminated",
		`retrieve () where and or not`,
		`retrieve (l.txn, l.mode) from l in inv_locks where l.granted = 1`,
		`retrieve (c.type, c.doc) from c in inv_columns sort by c.relation limit 5`,
		`retrieve (shard) from b in inv_stat_buffer where b.hit_ratio > 0.9`,
		`retrieve (x.a) from x in`,
		`retrieve (x.a) from in x`,
		`retrieve (x.) from x in y`,
		`retrieve (.y) from x in y`,
		`retrieve (a.b.c) from x in y asof 1`,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = parse(src) // must not panic
	})
}
