package query

import "testing"

// FuzzParse: arbitrary statement text must never panic the lexer or
// parser; it either yields an AST or an error.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`retrieve (filename) where owner(file) = "mao"`,
		`retrieve (snow(file), filename) where snow(file)/size(file) > 0.5`,
		`define type "x" doc "y"`,
		`retrieve (filename) sort by size(file) desc limit 3 asof 12345`,
		`retrieve ((((filename))))`,
		`retrieve (1 + 2 * -3 / 4 - 5)`,
		"retrieve (filename) where \"unterminated",
		`retrieve () where and or not`,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = parse(src) // must not panic
	})
}
