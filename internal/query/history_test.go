package query

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/device"
)

// newHistEnv is newEnv with metrics history enabled (manual ticks: the
// interval is far past the test's lifetime).
func newHistEnv(t *testing.T) (*core.DB, *core.Session, *Engine) {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	var mu sync.Mutex
	tick := int64(1 << 30)
	opts := Options(&mu, &tick)
	opts.MetricsHistory = time.Hour
	db, err := core.Open(sw, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = db.Close() })
	return db, db.NewSession("mao"), New(db)
}

func TestRetrieveHistorySamples(t *testing.T) {
	db, s, e := newHistEnv(t)
	db.Obs().Counter("test.q.counter").Add(10)
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}
	db.Obs().Counter("test.q.counter").Add(7)
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}

	res := mustRun(t, e, s,
		`retrieve (s.seq, s.kind, s.value) from s in inv_history_samples where s.name = "test.q.counter" sort by s.seq`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].I != 1 || res.Rows[0][1].S != "counter" || res.Rows[0][2].F != 10 {
		t.Fatalf("row 0 = %v", res.Rows[0])
	}
	if res.Rows[1][0].I != 2 || res.Rows[1][2].F != 7 {
		t.Fatalf("row 1 = %v", res.Rows[1])
	}

	// Tick metadata through the same path, with a where over the join key.
	res = mustRun(t, e, s,
		`retrieve (h.seq, h.level, h.dropped) from h in inv_history where h.seq = 2`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 2 || res.Rows[0][1].I != 0 || res.Rows[0][2].B {
		t.Fatalf("tick row = %v", res.Rows)
	}

	// The meta catalog (a live virtual relation) describes the series.
	res = mustRun(t, e, s,
		`retrieve (m.name, m.ticks, m.last_value) from m in inv_history_meta where m.name = "test.q.counter"`)
	if len(res.Rows) != 1 || res.Rows[0][1].I != 2 || res.Rows[0][2].F != 7 {
		t.Fatalf("meta row = %v", res.Rows)
	}
}

func TestRetrieveHistoryAsOf(t *testing.T) {
	db, s, e := newHistEnv(t)
	db.Obs().Counter("test.asof.counter").Add(1)
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}
	before := db.Manager().LastCommitTime()
	db.Obs().Counter("test.asof.counter").Add(1)
	if err := db.RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}

	now := mustRun(t, e, s,
		`retrieve (s.seq) from s in inv_history_samples where s.name = "test.asof.counter"`)
	if len(now.Rows) != 2 {
		t.Fatalf("now rows = %v", now.Rows)
	}
	then := mustRun(t, e, s, fmt.Sprintf(
		`retrieve (s.seq) from s in inv_history_samples where s.name = "test.asof.counter" asof %d`, before))
	if len(then.Rows) != 1 || then.Rows[0][0].I != 1 {
		t.Fatalf("asof rows = %v", then.Rows)
	}

	// asof over a file relation still works while history records: the
	// two time-travel paths share the same MVCC machinery.
	if err := s.WriteFile("/old", []byte("x"), core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	fileBefore := db.Manager().LastCommitTime()
	if err := db.RecordMetricsTick(); err != nil { // history keeps recording
		t.Fatal(err)
	}
	if err := s.Unlink("/old"); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, e, s, fmt.Sprintf(
		`retrieve (filename) where not isdir(file) asof %d`, fileBefore))
	if len(res.Rows) != 1 || res.Rows[0][0].S != "old" {
		t.Fatalf("file asof rows = %v", res.Rows)
	}
}

func TestRetrieveHistoryErrors(t *testing.T) {
	_, s, e := newHistEnv(t)

	// Before any tick the relations do not exist: same unknown-relation
	// error as any bad name.
	_, err := e.Run(s, `retrieve (s.seq) from s in inv_history_samples`)
	if err == nil || !strings.Contains(err.Error(), "unknown virtual relation") {
		t.Fatalf("pre-enable err = %v", err)
	}

	// A bad column errors statically even on an empty relation.
	dbNudge(t, e, s)
	_, err = e.Run(s, `retrieve (s.bogus) from s in inv_history_samples`)
	if err == nil || !strings.Contains(err.Error(), "no column") {
		t.Fatalf("bad column err = %v", err)
	}

	// Virtual (live-only) relations still reject asof loudly.
	_, err = e.Run(s, `retrieve (m.name) from m in inv_history_meta asof 12345`)
	if err == nil || !strings.Contains(err.Error(), "live-only") {
		t.Fatalf("virtual asof err = %v", err)
	}
}

// dbNudge records one tick so the stored relations exist.
func dbNudge(t *testing.T, e *Engine, s *core.Session) {
	t.Helper()
	res, err := e.Run(s, `retrieve (relation) from c in inv_columns where c.relation = "inv_history_meta" limit 1`)
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("inv_history_meta not catalogued: %v %v", res, err)
	}
	if err := engineDB(e).RecordMetricsTick(); err != nil {
		t.Fatal(err)
	}
}

// engineDB exposes the engine's database to the history tests.
func engineDB(e *Engine) *core.DB { return e.db }
