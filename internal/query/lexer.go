// Package query implements a POSTQUEL-subset query language over the
// file system: "the user may run the query language monitor program to
// execute arbitrarily complex queries", e.g.
//
//	retrieve (filename) where owner(file) = "mao"
//	    and (filetype(file) = "movie" or filetype(file) = "sound")
//	    and dir(file) = "/users/mao"
//
//	retrieve (snow(file), filename) where filetype(file) = "tm"
//	    and snow(file)/size(file) > 0.5 and month_of(file) = "April"
//
// plus "define type" and "define function" declarations and an asof
// clause for historical queries (time travel applies to queries too,
// since the metadata tables are versioned like everything else).
package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokOp // punctuation and operators
	tokKeyword
)

var keywords = map[string]bool{
	"retrieve": true, "where": true, "and": true, "or": true, "not": true,
	"in": true, "asof": true, "define": true, "type": true, "function": true, "from": true,
	"for": true, "doc": true, "as": true, "sort": true, "by": true,
	"limit": true, "desc": true, "asc": true,
}

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			l.lexNumber()
		case unicode.IsLetter(rune(c)) || c == '_':
			l.lexIdent()
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			l.toks = append(l.toks, token{tokString, sb.String(), start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("query: unterminated string at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if !unicode.IsDigit(rune(c)) {
			break
		}
		l.pos++
	}
	l.toks = append(l.toks, token{tokNumber, l.src[start:l.pos], start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	word := l.src[start:l.pos]
	if keywords[strings.ToLower(word)] {
		l.toks = append(l.toks, token{tokKeyword, strings.ToLower(word), start})
	} else {
		l.toks = append(l.toks, token{tokIdent, word, start})
	}
}

var twoCharOps = map[string]bool{"<=": true, ">=": true, "!=": true}

func (l *lexer) lexOp() error {
	start := l.pos
	if l.pos+1 < len(l.src) && twoCharOps[l.src[l.pos:l.pos+2]] {
		l.toks = append(l.toks, token{tokOp, l.src[l.pos : l.pos+2], start})
		l.pos += 2
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '(', ')', ',', '=', '<', '>', '+', '-', '*', '/', '.':
		l.toks = append(l.toks, token{tokOp, string(c), start})
		l.pos++
		return nil
	default:
		return fmt.Errorf("query: unexpected character %q at %d", c, start)
	}
}
