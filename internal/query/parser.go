package query

import (
	"fmt"
	"strconv"
)

// AST node kinds.

type expr interface{ exprNode() }

type numLit struct {
	isFloat bool
	i       int64
	f       float64
}

type strLit struct{ s string }

// ident is a bare attribute reference like filename.
type ident struct{ name string }

// fieldRef is a range-variable column reference like l.mode.
type fieldRef struct {
	v     string // range variable
	field string // column name
}

// call is a function application like snow(file).
type call struct {
	fn   string
	args []expr
}

type unary struct {
	op string // "-" or "not"
	x  expr
}

type binary struct {
	op   string // = != < <= > >= + - * / and or in
	l, r expr
}

func (numLit) exprNode()   {}
func (strLit) exprNode()   {}
func (ident) exprNode()    {}
func (fieldRef) exprNode() {}
func (call) exprNode()     {}
func (unary) exprNode()    {}
func (binary) exprNode()   {}

// Statement forms.

type retrieveStmt struct {
	targets []target
	fromVar string // range variable ("" = the implicit file range)
	fromRel string // relation the range variable iterates
	where   expr   // nil = all
	sortBy  expr   // nil = unsorted
	sortDsc bool
	limit   int // 0 = unlimited
	asof    int64
	asofSet bool
}

type target struct {
	e    expr
	name string // display column name
}

type defineTypeStmt struct {
	name string
	doc  string
}

type defineFuncStmt struct {
	name     string
	typeName string
	doc      string
}

type stmt interface{ stmtNode() }

func (*retrieveStmt) stmtNode()   {}
func (*defineTypeStmt) stmtNode() {}
func (*defineFuncStmt) stmtNode() {}

type parser struct {
	toks []token
	pos  int
}

func parse(src string) (stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	s, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, fmt.Errorf("query: trailing input at %q", p.cur().text)
	}
	return s, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, fmt.Errorf("query: expected %q, found %q", text, p.cur().text)
}

func (p *parser) parseStmt() (stmt, error) {
	switch {
	case p.accept(tokKeyword, "retrieve"):
		return p.parseRetrieve()
	case p.accept(tokKeyword, "define"):
		return p.parseDefine()
	default:
		return nil, fmt.Errorf("query: expected retrieve or define, found %q", p.cur().text)
	}
}

func (p *parser) parseRetrieve() (stmt, error) {
	if _, err := p.expect(tokOp, "("); err != nil {
		return nil, err
	}
	var targets []target
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		name := exprName(e)
		if p.accept(tokKeyword, "as") {
			t, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			name = t.text
		}
		targets = append(targets, target{e, name})
		if !p.accept(tokOp, ",") {
			break
		}
	}
	if _, err := p.expect(tokOp, ")"); err != nil {
		return nil, err
	}
	st := &retrieveStmt{targets: targets}
	if p.accept(tokKeyword, "from") {
		v, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "in"); err != nil {
			return nil, err
		}
		rel, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		st.fromVar, st.fromRel = v.text, rel.text
	}
	if p.accept(tokKeyword, "where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.where = w
	}
	if p.accept(tokKeyword, "sort") {
		if _, err := p.expect(tokKeyword, "by"); err != nil {
			return nil, err
		}
		k, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.sortBy = k
		if p.accept(tokKeyword, "desc") {
			st.sortDsc = true
		} else {
			p.accept(tokKeyword, "asc")
		}
	}
	if p.accept(tokKeyword, "limit") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("query: bad limit %q", t.text)
		}
		st.limit = n
	}
	if p.accept(tokKeyword, "asof") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad asof timestamp %q", t.text)
		}
		st.asof, st.asofSet = v, true
	}
	return st, nil
}

func (p *parser) parseDefine() (stmt, error) {
	switch {
	case p.accept(tokKeyword, "type"):
		name, err := p.nameToken()
		if err != nil {
			return nil, err
		}
		st := &defineTypeStmt{name: name}
		if p.accept(tokKeyword, "doc") {
			d, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			st.doc = d.text
		}
		return st, nil
	case p.accept(tokKeyword, "function"):
		name, err := p.nameToken()
		if err != nil {
			return nil, err
		}
		st := &defineFuncStmt{name: name}
		if p.accept(tokKeyword, "for") {
			tn, err := p.nameToken()
			if err != nil {
				return nil, err
			}
			st.typeName = tn
		}
		if p.accept(tokKeyword, "doc") {
			d, err := p.expect(tokString, "")
			if err != nil {
				return nil, err
			}
			st.doc = d.text
		}
		return st, nil
	default:
		return nil, fmt.Errorf("query: expected type or function after define, found %q", p.cur().text)
	}
}

// nameToken accepts either an identifier or a quoted string (type names
// like "ASCII document" contain spaces).
func (p *parser) nameToken() (string, error) {
	if p.at(tokIdent, "") || p.at(tokString, "") {
		return p.next().text, nil
	}
	return "", fmt.Errorf("query: expected name, found %q", p.cur().text)
}

// Expression grammar, standard precedence climbing.

func (p *parser) parseExpr() (expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binary{"or", l, r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = binary{"and", l, r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr, error) {
	if p.accept(tokKeyword, "not") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return unary{"not", x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(tokOp, "="), p.at(tokOp, "!="), p.at(tokOp, "<"),
			p.at(tokOp, "<="), p.at(tokOp, ">"), p.at(tokOp, ">="):
			op := p.next().text
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			l = binary{op, l, r}
		case p.accept(tokKeyword, "in"):
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			l = binary{"in", l, r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseAdd() (expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "+") || p.at(tokOp, "-") {
		op := p.next().text
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = binary{op, l, r}
	}
	return l, nil
}

func (p *parser) parseMul() (expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(tokOp, "*") || p.at(tokOp, "/") {
		op := p.next().text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binary{op, l, r}
	}
	return l, nil
}

func (p *parser) parseUnary() (expr, error) {
	if p.accept(tokOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unary{"-", x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.next()
		if i, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return numLit{i: i}, nil
		}
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad number %q", t.text)
		}
		return numLit{isFloat: true, f: f}, nil
	case tokString:
		p.next()
		return strLit{t.text}, nil
	case tokIdent:
		p.next()
		if p.accept(tokOp, ".") {
			// Range-variable column reference. The field position accepts
			// keywords too: catalog columns may collide with reserved
			// words (inv_columns has "type" and "doc" columns).
			f := p.cur()
			if f.kind != tokIdent && f.kind != tokKeyword {
				return nil, fmt.Errorf("query: expected column name after %q., found %q", t.text, f.text)
			}
			p.next()
			return fieldRef{v: t.text, field: f.text}, nil
		}
		if p.accept(tokOp, "(") {
			var args []expr
			if !p.at(tokOp, ")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(tokOp, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return call{t.text, args}, nil
		}
		return ident{t.text}, nil
	case tokOp:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokOp, ")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("query: unexpected token %q", t.text)
}

// exprName derives a display column name for a target expression.
func exprName(e expr) string {
	switch v := e.(type) {
	case ident:
		return v.name
	case fieldRef:
		return v.field
	case call:
		return v.fn
	case strLit:
		return "const"
	case numLit:
		return "const"
	default:
		return "expr"
	}
}
