package query

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/txn"
	"repro/internal/value"
)

// colIdx maps a result's column names to positions.
func colIdx(res *Result) map[string]int {
	m := make(map[string]int, len(res.Columns))
	for i, c := range res.Columns {
		m[c] = i
	}
	return m
}

func TestRetrieveFromVirtualRelation(t *testing.T) {
	_, s, e := newEnv(t)
	// inv_stat_buffer always has 17 rows (16 shards + "all").
	res := mustRun(t, e, s, `retrieve (b.shard, b.hits, b.misses) from b in inv_stat_buffer`)
	if len(res.Rows) != 17 {
		t.Fatalf("inv_stat_buffer rows = %d, want 17", len(res.Rows))
	}
	if got := res.Columns; got[0] != "shard" || got[1] != "hits" || got[2] != "misses" {
		t.Fatalf("columns = %v", got)
	}
	// Bare column names resolve in the virtual scope too.
	res = mustRun(t, e, s, `retrieve (shard, frames) from b in inv_stat_buffer where shard = "all"`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "all" {
		t.Fatalf("merged row = %v", res.Rows)
	}
	// where / sort / limit compose over the virtual range.
	res = mustRun(t, e, s, `retrieve (b.shard) from b in inv_stat_buffer
		where b.shard != "all" sort by b.shard desc limit 3`)
	if len(res.Rows) != 3 || res.Rows[0][0].S != "15" {
		t.Fatalf("sorted shards = %v", res.Rows)
	}
}

func TestRetrieveLocksAndTransactions(t *testing.T) {
	db, s, e := newEnv(t)
	mgr := db.Manager()
	tx, err := mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tx.Abort() }()
	mgr.AnnotateTx(tx.ID(), "inv42")
	tag := txn.LockTag{Space: txn.SpaceRelation, Rel: 42}
	if err := mgr.Locks().Acquire(tx.ID(), tag, txn.LockExclusive); err != nil {
		t.Fatal(err)
	}

	res := mustRun(t, e, s, `retrieve (l.txn, l.mode, l.granted) from l in inv_locks where l.rel = 42`)
	if len(res.Rows) != 1 {
		t.Fatalf("inv_locks rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[0].I != int64(tx.ID()) || row[1].S != "exclusive" || !row[2].B {
		t.Fatalf("lock row = %v", row)
	}

	res = mustRun(t, e, s, `retrieve (t.xid, t.state, t.relation, t.age_ms) from t in inv_transactions`)
	ci := colIdx(res)
	found := false
	for _, r := range res.Rows {
		if r[ci["xid"]].I == int64(tx.ID()) {
			found = true
			if r[ci["state"]].S != "in-progress" || r[ci["relation"]].S != "inv42" {
				t.Fatalf("txn row = %v", r)
			}
			if r[ci["age_ms"]].I < 0 {
				t.Fatalf("negative age: %v", r)
			}
		}
	}
	if !found {
		t.Fatalf("open transaction %d missing from inv_transactions: %v", tx.ID(), res.Rows)
	}
}

func TestRetrieveColumnsKeywordFields(t *testing.T) {
	// inv_columns has columns named "type" and "doc" — both lexer
	// keywords; the field position after '.' must accept them.
	_, s, e := newEnv(t)
	res := mustRun(t, e, s, `retrieve (c.relation, c.column, c.type, c.doc) from c in inv_columns
		where c.relation = "inv_locks" and c.column = "mode"`)
	if len(res.Rows) != 1 {
		t.Fatalf("inv_columns rows = %v", res.Rows)
	}
	row := res.Rows[0]
	if row[2].S != "string" || row[3].S == "" {
		t.Fatalf("mode column metadata = %v", row)
	}
}

func TestRetrieveRelationsAndVacuum(t *testing.T) {
	db, s, e := newEnv(t)
	if err := s.WriteFile("/f", []byte("hello"), core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, e, s, `retrieve (r.name, r.pages, r.live) from r in inv_relations where r.name = "naming"`)
	if len(res.Rows) != 1 {
		t.Fatalf("naming row = %v", res.Rows)
	}
	if res.Rows[0][2].I < 1 {
		t.Fatalf("naming live tuples = %v", res.Rows[0])
	}
	// No vacuum has run: inv_vacuum is empty but well-formed.
	res = mustRun(t, e, s, `retrieve (v.pages) from v in inv_vacuum`)
	if len(res.Rows) != 0 {
		t.Fatalf("vacuum rows before any run = %v", res.Rows)
	}
	if _, err := db.Vacuum(); err != nil {
		t.Fatal(err)
	}
	res = mustRun(t, e, s, `retrieve (v.pages, v.duration_ns) from v in inv_vacuum`)
	if len(res.Rows) != 1 || res.Rows[0][0].I < 1 {
		t.Fatalf("vacuum rows after run = %v", res.Rows)
	}
}

func TestVirtualRelationErrors(t *testing.T) {
	_, s, e := newEnv(t)
	cases := []struct {
		q    string
		want string
	}{
		{`retrieve (x.a) from x in no_such_rel`, "unknown virtual relation"},
		{`retrieve (l.bogus) from l in inv_locks`, "no column"},
		{`retrieve (m.txn) from l in inv_locks`, "unknown range variable"},
		{`retrieve (size(file)) from l in inv_locks`, "not defined over virtual relation"},
		{`retrieve (l.txn) from l in inv_locks asof 12345`, "live-only"},
		{`retrieve (l.txn)`, "unknown range variable"},
		{`retrieve (l.txn) from l`, "expected"},
		{`retrieve (l.txn) from l in`, "expected"},
	}
	for _, c := range cases {
		_, err := e.Run(s, c.q)
		if err == nil {
			t.Errorf("query %q did not fail", c.q)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("query %q error = %v, want substring %q", c.q, err, c.want)
		}
	}
}

func TestStatOpsMatchesRegistry(t *testing.T) {
	// inv_stat_ops is derived from the same histograms the obs registry
	// snapshots; in a quiesced engine the counts must agree exactly.
	db, s, e := newEnv(t)
	// Generate some op traffic through the registry the way the wire
	// layer does.
	h := db.Obs().Histogram("wire.op.read_ns")
	for i := 0; i < 5; i++ {
		h.Observe(int64(1000 * (i + 1)))
	}
	res := mustRun(t, e, s, `retrieve (o.op, o.count) from o in inv_stat_ops where o.op = "read"`)
	if len(res.Rows) != 1 {
		t.Fatalf("inv_stat_ops rows = %v", res.Rows)
	}
	if res.Rows[0][1].I != 5 {
		t.Fatalf("read count = %v, want 5", res.Rows[0])
	}
	if res.Rows[0][0].Kind != value.KindString {
		t.Fatalf("op column kind = %v", res.Rows[0][0].Kind)
	}
}

// TestStatNamespaceVirtualRelation drives metadata traffic on a
// four-shard volume and checks inv_stat_namespace reports it: one row
// per shard plus the merged "all" row, live naming counts that add up,
// and routing counters that reflect the creates and the
// directory-crossing rename.
func TestStatNamespaceVirtualRelation(t *testing.T) {
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	db, err := core.Open(sw, core.Options{Buffers: 128, NamespaceShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Crash()
	s := db.NewSession("mao")
	e := New(db)

	const dirs = 4
	for d := 0; d < dirs; d++ {
		if err := s.Mkdir(fmt.Sprintf("/vd%d", d)); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			if err := s.WriteFile(fmt.Sprintf("/vd%d/f%d", d, k), []byte("x"), core.CreateOpts{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Rename("/vd0/f0", "/vd1/moved"); err != nil {
		t.Fatal(err)
	}

	res := mustRun(t, e, s, `retrieve (n.shard, n.naming_live, n.inserts, n.renames, n.lock_waits)
		from n in inv_stat_namespace`)
	if len(res.Rows) != 5 {
		t.Fatalf("inv_stat_namespace rows = %d, want 4 shards + all", len(res.Rows))
	}
	var perShardLive, allLive int64
	for _, row := range res.Rows {
		if row[0].S == "all" {
			allLive = row[1].I
		} else {
			perShardLive += row[1].I
		}
	}
	if allLive == 0 || perShardLive != allLive {
		t.Fatalf("merged naming_live %d != per-shard sum %d", allLive, perShardLive)
	}
	// 4 dirs + 12 files + the root's children: every naming row is live.
	if allLive < 16 {
		t.Fatalf("naming_live = %d, want at least the 16 created entries", allLive)
	}
	res = mustRun(t, e, s, `retrieve (n.shard) from n in inv_stat_namespace
		where n.inserts > 0 and n.shard != "all"`)
	if len(res.Rows) < 2 {
		t.Fatalf("metadata traffic reached %d shards, want >= 2 at N=4 (degenerate routing?)", len(res.Rows))
	}
	res = mustRun(t, e, s, `retrieve (n.renames) from n in inv_stat_namespace where n.shard = "all"`)
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 {
		t.Fatalf("merged renames = %v, want 1", res.Rows)
	}
}
