package query

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/txn"
	"repro/internal/value"
)

// Result is a query result set.
type Result struct {
	Columns []string
	Rows    [][]value.V
	Message string // for define statements
}

// Engine executes POSTQUEL-subset statements against a database.
type Engine struct {
	db *core.DB
}

// New returns an engine over db.
func New(db *core.DB) *Engine { return &Engine{db: db} }

// errSkipRow filters a file out of the result set: applying a function
// a file's type does not support simply fails to match ("would find all
// the files stored by Inversion for which the keywords function was
// defined, and whose keywords included RISC").
var errSkipRow = errors.New("query: row filtered")

// Run parses and executes one statement. The session supplies the
// transaction context for define statements and the default snapshot
// for retrieves.
func (e *Engine) Run(s *core.Session, src string) (*Result, error) {
	st, err := parse(src)
	if err != nil {
		return nil, err
	}
	switch st := st.(type) {
	case *defineTypeStmt:
		if err := s.DefineType(st.name, st.doc); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("type %q defined", st.name)}, nil
	case *defineFuncStmt:
		tx, implicit, err := beginFor(s)
		if err != nil {
			return nil, err
		}
		err = e.db.Catalog().DefineFunction(tx, catalog.FuncInfo{
			Name: st.name, TypeName: st.typeName, Lang: "go", Doc: st.doc,
		})
		if err2 := finishFor(tx, implicit, err); err2 != nil {
			return nil, err2
		}
		return &Result{Message: fmt.Sprintf("function %q declared (register its implementation in-process)", st.name)}, nil
	case *retrieveStmt:
		return e.runRetrieve(st)
	default:
		return nil, fmt.Errorf("query: unhandled statement %T", st)
	}
}

func beginFor(s *core.Session) (*txn.Tx, bool, error) {
	tx, err := s.DB().Manager().Begin()
	if err != nil {
		return nil, false, err
	}
	return tx, true, nil
}

func finishFor(tx *txn.Tx, implicit bool, err error) error {
	if err != nil {
		_ = tx.Abort()
		return err
	}
	if implicit {
		return tx.Commit()
	}
	return nil
}

// rowScope resolves the name forms whose meaning depends on what the
// query ranges over. The shared evaluator (evalExpr) handles literals,
// logic, comparison, and arithmetic; idents, range-variable fields, and
// function calls are delegated here so the file range and virtual
// relations share one evaluator.
type rowScope interface {
	ident(name string) (value.V, error)
	field(varName, field string) (value.V, error)
	call(fn string, args []expr) (value.V, error)
}

// fileRow is the joined naming ⋈ fileatt row the evaluator sees.
type fileRow struct {
	name   string
	parent device.OID
	oid    device.OID
}

// fileScope is the implicit range of a plain retrieve: every file.
type fileScope struct {
	e    *Engine
	snap *txn.Snapshot
	row  fileRow
}

func (s fileScope) ident(name string) (value.V, error) {
	switch name {
	case "filename":
		return value.Str(s.row.name), nil
	case "parentid":
		return value.Int(int64(s.row.parent)), nil
	case "file":
		return value.Int(int64(s.row.oid)), nil
	default:
		return value.Null(), fmt.Errorf("query: unknown attribute %q", name)
	}
}

func (s fileScope) field(varName, field string) (value.V, error) {
	return value.Null(), fmt.Errorf("query: unknown range variable %q (declare it with from %s in <relation>)", varName, varName)
}

func (s fileScope) call(fn string, args []expr) (value.V, error) {
	if len(args) != 1 {
		return value.Null(), fmt.Errorf("query: %s takes exactly one argument (file)", fn)
	}
	if id, ok := args[0].(ident); !ok || id.name != "file" {
		return value.Null(), fmt.Errorf("query: %s must be applied to the range variable file", fn)
	}
	v, err := s.e.db.CallFunc(s.snap, fn, s.row.oid)
	if err != nil {
		// A function the file's type does not support — or a
		// content function applied to a directory — filters the
		// row rather than failing the query.
		if errors.Is(err, core.ErrTypeMismatch) || errors.Is(err, core.ErrIsDirectory) {
			return value.Null(), errSkipRow
		}
		return value.Null(), err
	}
	return v, nil
}

// virtualScope binds a declared range variable to one materialized row
// of a virtual relation. Columns resolve through the variable (l.mode)
// or bare (mode); type functions are not defined over catalogs.
type virtualScope struct {
	relName string
	varName string
	cols    map[string]int
	row     []value.V
}

func (s virtualScope) lookup(field string) (value.V, error) {
	if i, ok := s.cols[field]; ok {
		return s.row[i], nil
	}
	return value.Null(), fmt.Errorf("query: relation %s has no column %q", s.relName, field)
}

func (s virtualScope) ident(name string) (value.V, error) { return s.lookup(name) }

func (s virtualScope) field(varName, field string) (value.V, error) {
	if varName != s.varName {
		return value.Null(), fmt.Errorf("query: unknown range variable %q (the from clause declared %q)", varName, s.varName)
	}
	return s.lookup(field)
}

func (s virtualScope) call(fn string, args []expr) (value.V, error) {
	return value.Null(), fmt.Errorf("query: function %s is not defined over virtual relation %s", fn, s.relName)
}

// collector applies where/targets/sort/limit uniformly for every range
// kind.
type collector struct {
	st    *retrieveStmt
	res   *Result
	keyed []sortedRow
}

type sortedRow struct {
	key value.V
	row []value.V
}

// add evaluates one row in the given scope. A row that fails the where
// clause, or whose evaluation hits errSkipRow, is silently dropped.
func (c *collector) add(sc rowScope) error {
	if c.st.where != nil {
		v, err := evalExpr(sc, c.st.where)
		if errors.Is(err, errSkipRow) {
			return nil
		}
		if err != nil {
			return err
		}
		if !v.Truthy() {
			return nil
		}
	}
	var out []value.V
	for _, t := range c.st.targets {
		v, err := evalExpr(sc, t.e)
		if errors.Is(err, errSkipRow) {
			return nil
		}
		if err != nil {
			return err
		}
		out = append(out, v)
	}
	if c.st.sortBy != nil {
		k, err := evalExpr(sc, c.st.sortBy)
		if errors.Is(err, errSkipRow) {
			return nil
		}
		if err != nil {
			return err
		}
		c.keyed = append(c.keyed, sortedRow{k, out})
		return nil
	}
	c.res.Rows = append(c.res.Rows, out)
	return nil
}

// finish applies the sort order and limit.
func (c *collector) finish() {
	if c.st.sortBy != nil {
		sort.SliceStable(c.keyed, func(i, j int) bool {
			cmp := value.Compare(c.keyed[i].key, c.keyed[j].key)
			if c.st.sortDsc {
				return cmp > 0
			}
			return cmp < 0
		})
		for _, kr := range c.keyed {
			c.res.Rows = append(c.res.Rows, kr.row)
		}
	}
	if c.st.limit > 0 && len(c.res.Rows) > c.st.limit {
		c.res.Rows = c.res.Rows[:c.st.limit]
	}
}

func newCollector(st *retrieveStmt) *collector {
	res := &Result{}
	for _, t := range st.targets {
		res.Columns = append(res.Columns, t.name)
	}
	return &collector{st: st, res: res}
}

func (e *Engine) runRetrieve(st *retrieveStmt) (*Result, error) {
	if st.fromRel != "" {
		return e.runRetrieveVirtual(st)
	}
	snap := e.db.Manager().CurrentSnapshot()
	if st.asofSet {
		snap = e.db.Manager().AsOf(st.asof)
	}
	c := newCollector(st)
	// The range of the query is every file: scan the naming table and
	// join fileatt through the function layer.
	err := e.db.ForEachFile(snap, func(name string, parent, oid device.OID) error {
		return c.add(fileScope{e: e, snap: snap, row: fileRow{name, parent, oid}})
	})
	if err != nil {
		return nil, err
	}
	c.finish()
	return c.res, nil
}

// runRetrieveVirtual executes a retrieve whose from clause ranges over
// a virtual relation: the catalog's rows are materialized once from
// live engine state, then filtered and projected like any other range.
func (e *Engine) runRetrieveVirtual(st *retrieveStmt) (*Result, error) {
	rel, ok := e.db.SysViews().Lookup(st.fromRel)
	if !ok {
		return e.runRetrieveStored(st)
	}
	if st.asofSet {
		// Virtual relations materialize live engine state; there is no
		// versioned history to time-travel into, so failing loudly beats
		// silently answering with present-day rows.
		return nil, fmt.Errorf("query: asof is not supported over virtual relation %s: system catalogs are live-only", st.fromRel)
	}
	cols := rel.Columns()
	idx := make(map[string]int, len(cols))
	for i, col := range cols {
		idx[col.Name] = i
	}
	// Validate name resolution statically so a bad column or range
	// variable errors even when the relation is currently empty.
	check := virtualScope{relName: st.fromRel, varName: st.fromVar, cols: idx}
	for _, t := range st.targets {
		if err := checkVirtualExpr(check, t.e); err != nil {
			return nil, err
		}
	}
	for _, ex := range []expr{st.where, st.sortBy} {
		if ex != nil {
			if err := checkVirtualExpr(check, ex); err != nil {
				return nil, err
			}
		}
	}
	rows, err := rel.Rows()
	if err != nil {
		return nil, err
	}
	c := newCollector(st)
	for _, row := range rows {
		if err := c.add(virtualScope{relName: st.fromRel, varName: st.fromVar, cols: idx, row: row}); err != nil {
			return nil, err
		}
	}
	c.finish()
	return c.res, nil
}

// runRetrieveStored executes a retrieve whose from clause ranges over a
// heap-backed stored system relation (the metrics-history relations).
// Unlike the virtual catalogs, these are real MVCC heaps, so asof works
// through the ordinary historical snapshot — the same time-travel path
// file relations use, no bespoke reader.
func (e *Engine) runRetrieveStored(st *retrieveStmt) (*Result, error) {
	cols, scan, ok := e.db.StoredSysRel(st.fromRel)
	if !ok {
		return nil, fmt.Errorf("query: unknown virtual relation %q (retrieve (relation) from c in inv_columns lists them)", st.fromRel)
	}
	idx := make(map[string]int, len(cols))
	for i, col := range cols {
		idx[col.Name] = i
	}
	check := virtualScope{relName: st.fromRel, varName: st.fromVar, cols: idx}
	for _, t := range st.targets {
		if err := checkVirtualExpr(check, t.e); err != nil {
			return nil, err
		}
	}
	for _, ex := range []expr{st.where, st.sortBy} {
		if ex != nil {
			if err := checkVirtualExpr(check, ex); err != nil {
				return nil, err
			}
		}
	}
	snap := e.db.Manager().CurrentSnapshot()
	if st.asofSet {
		snap = e.db.Manager().AsOf(st.asof)
	}
	c := newCollector(st)
	err := scan(snap, func(row []value.V) (bool, error) {
		if err := c.add(virtualScope{relName: st.fromRel, varName: st.fromVar, cols: idx, row: row}); err != nil {
			return false, err
		}
		return false, nil
	})
	if err != nil {
		return nil, err
	}
	c.finish()
	return c.res, nil
}

// checkVirtualExpr walks an expression and resolves every name against
// the virtual relation's schema without evaluating anything (sc carries
// the column map but no row).
func checkVirtualExpr(sc virtualScope, ex expr) error {
	switch ex := ex.(type) {
	case ident:
		if _, ok := sc.cols[ex.name]; !ok {
			return fmt.Errorf("query: relation %s has no column %q", sc.relName, ex.name)
		}
	case fieldRef:
		if ex.v != sc.varName {
			return fmt.Errorf("query: unknown range variable %q (the from clause declared %q)", ex.v, sc.varName)
		}
		if _, ok := sc.cols[ex.field]; !ok {
			return fmt.Errorf("query: relation %s has no column %q", sc.relName, ex.field)
		}
	case call:
		return fmt.Errorf("query: function %s is not defined over virtual relation %s", ex.fn, sc.relName)
	case unary:
		return checkVirtualExpr(sc, ex.x)
	case binary:
		if err := checkVirtualExpr(sc, ex.l); err != nil {
			return err
		}
		return checkVirtualExpr(sc, ex.r)
	}
	return nil
}

func evalExpr(sc rowScope, ex expr) (value.V, error) {
	switch ex := ex.(type) {
	case numLit:
		if ex.isFloat {
			return value.Float(ex.f), nil
		}
		return value.Int(ex.i), nil
	case strLit:
		return value.Str(ex.s), nil
	case ident:
		return sc.ident(ex.name)
	case fieldRef:
		return sc.field(ex.v, ex.field)
	case call:
		return sc.call(ex.fn, ex.args)
	case unary:
		x, err := evalExpr(sc, ex.x)
		if err != nil {
			return value.Null(), err
		}
		switch ex.op {
		case "not":
			return value.Bool(!x.Truthy()), nil
		case "-":
			if f, ok := x.AsFloat(); ok {
				if x.Kind == value.KindInt {
					return value.Int(-x.I), nil
				}
				return value.Float(-f), nil
			}
			return value.Null(), fmt.Errorf("query: cannot negate %v", x)
		}
	case binary:
		// Short-circuit logic first.
		switch ex.op {
		case "and":
			l, err := evalExpr(sc, ex.l)
			if err != nil {
				return value.Null(), err
			}
			if !l.Truthy() {
				return value.Bool(false), nil
			}
			r, err := evalExpr(sc, ex.r)
			if err != nil {
				return value.Null(), err
			}
			return value.Bool(r.Truthy()), nil
		case "or":
			l, err := evalExpr(sc, ex.l)
			if err != nil {
				return value.Null(), err
			}
			if l.Truthy() {
				return value.Bool(true), nil
			}
			r, err := evalExpr(sc, ex.r)
			if err != nil {
				return value.Null(), err
			}
			return value.Bool(r.Truthy()), nil
		}
		l, err := evalExpr(sc, ex.l)
		if err != nil {
			return value.Null(), err
		}
		r, err := evalExpr(sc, ex.r)
		if err != nil {
			return value.Null(), err
		}
		switch ex.op {
		case "=":
			return value.Bool(value.Equal(l, r)), nil
		case "!=":
			return value.Bool(!value.Equal(l, r)), nil
		case "<":
			return value.Bool(value.Compare(l, r) < 0), nil
		case "<=":
			return value.Bool(value.Compare(l, r) <= 0), nil
		case ">":
			return value.Bool(value.Compare(l, r) > 0), nil
		case ">=":
			return value.Bool(value.Compare(l, r) >= 0), nil
		case "in":
			if l.Kind != value.KindString {
				return value.Null(), fmt.Errorf("query: left side of in must be a string")
			}
			return value.Bool(r.Contains(l.S)), nil
		case "+", "-", "*", "/":
			return arith(ex.op, l, r)
		}
	}
	return value.Null(), fmt.Errorf("query: cannot evaluate %T", ex)
}

func arith(op string, l, r value.V) (value.V, error) {
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return value.Null(), fmt.Errorf("query: arithmetic on non-numeric values %v %s %v", l, op, r)
	}
	bothInt := l.Kind == value.KindInt && r.Kind == value.KindInt
	switch op {
	case "+":
		if bothInt {
			return value.Int(l.I + r.I), nil
		}
		return value.Float(lf + rf), nil
	case "-":
		if bothInt {
			return value.Int(l.I - r.I), nil
		}
		return value.Float(lf - rf), nil
	case "*":
		if bothInt {
			return value.Int(l.I * r.I), nil
		}
		return value.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return value.Null(), fmt.Errorf("query: division by zero")
		}
		return value.Float(lf / rf), nil
	}
	return value.Null(), fmt.Errorf("query: bad operator %q", op)
}
