package query

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/txn"
	"repro/internal/value"
)

// Result is a query result set.
type Result struct {
	Columns []string
	Rows    [][]value.V
	Message string // for define statements
}

// Engine executes POSTQUEL-subset statements against a database.
type Engine struct {
	db *core.DB
}

// New returns an engine over db.
func New(db *core.DB) *Engine { return &Engine{db: db} }

// errSkipRow filters a file out of the result set: applying a function
// a file's type does not support simply fails to match ("would find all
// the files stored by Inversion for which the keywords function was
// defined, and whose keywords included RISC").
var errSkipRow = errors.New("query: row filtered")

// Run parses and executes one statement. The session supplies the
// transaction context for define statements and the default snapshot
// for retrieves.
func (e *Engine) Run(s *core.Session, src string) (*Result, error) {
	st, err := parse(src)
	if err != nil {
		return nil, err
	}
	switch st := st.(type) {
	case *defineTypeStmt:
		if err := s.DefineType(st.name, st.doc); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("type %q defined", st.name)}, nil
	case *defineFuncStmt:
		tx, implicit, err := beginFor(s)
		if err != nil {
			return nil, err
		}
		err = e.db.Catalog().DefineFunction(tx, catalog.FuncInfo{
			Name: st.name, TypeName: st.typeName, Lang: "go", Doc: st.doc,
		})
		if err2 := finishFor(tx, implicit, err); err2 != nil {
			return nil, err2
		}
		return &Result{Message: fmt.Sprintf("function %q declared (register its implementation in-process)", st.name)}, nil
	case *retrieveStmt:
		return e.runRetrieve(st)
	default:
		return nil, fmt.Errorf("query: unhandled statement %T", st)
	}
}

func beginFor(s *core.Session) (*txn.Tx, bool, error) {
	tx, err := s.DB().Manager().Begin()
	if err != nil {
		return nil, false, err
	}
	return tx, true, nil
}

func finishFor(tx *txn.Tx, implicit bool, err error) error {
	if err != nil {
		_ = tx.Abort()
		return err
	}
	if implicit {
		return tx.Commit()
	}
	return nil
}

// fileRow is the joined naming ⋈ fileatt row the evaluator sees.
type fileRow struct {
	name   string
	parent device.OID
	oid    device.OID
}

func (e *Engine) runRetrieve(st *retrieveStmt) (*Result, error) {
	snap := e.db.Manager().CurrentSnapshot()
	if st.asofSet {
		snap = e.db.Manager().AsOf(st.asof)
	}
	res := &Result{}
	for _, t := range st.targets {
		res.Columns = append(res.Columns, t.name)
	}
	type sortedRow struct {
		key value.V
		row []value.V
	}
	var keyed []sortedRow
	// The range of the query is every file: scan the naming table and
	// join fileatt through the function layer.
	err := e.db.ForEachFile(snap, func(name string, parent, oid device.OID) error {
		row := fileRow{name, parent, oid}
		if st.where != nil {
			v, err := e.eval(snap, row, st.where)
			if errors.Is(err, errSkipRow) {
				return nil
			}
			if err != nil {
				return err
			}
			if !v.Truthy() {
				return nil
			}
		}
		var out []value.V
		for _, t := range st.targets {
			v, err := e.eval(snap, row, t.e)
			if errors.Is(err, errSkipRow) {
				return nil
			}
			if err != nil {
				return err
			}
			out = append(out, v)
		}
		if st.sortBy != nil {
			k, err := e.eval(snap, row, st.sortBy)
			if errors.Is(err, errSkipRow) {
				return nil
			}
			if err != nil {
				return err
			}
			keyed = append(keyed, sortedRow{k, out})
			return nil
		}
		res.Rows = append(res.Rows, out)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if st.sortBy != nil {
		sort.SliceStable(keyed, func(i, j int) bool {
			c := value.Compare(keyed[i].key, keyed[j].key)
			if st.sortDsc {
				return c > 0
			}
			return c < 0
		})
		for _, kr := range keyed {
			res.Rows = append(res.Rows, kr.row)
		}
	}
	if st.limit > 0 && len(res.Rows) > st.limit {
		res.Rows = res.Rows[:st.limit]
	}
	return res, nil
}

func (e *Engine) eval(snap *txn.Snapshot, row fileRow, ex expr) (value.V, error) {
	switch ex := ex.(type) {
	case numLit:
		if ex.isFloat {
			return value.Float(ex.f), nil
		}
		return value.Int(ex.i), nil
	case strLit:
		return value.Str(ex.s), nil
	case ident:
		switch ex.name {
		case "filename":
			return value.Str(row.name), nil
		case "parentid":
			return value.Int(int64(row.parent)), nil
		case "file":
			return value.Int(int64(row.oid)), nil
		default:
			return value.Null(), fmt.Errorf("query: unknown attribute %q", ex.name)
		}
	case call:
		if len(ex.args) != 1 {
			return value.Null(), fmt.Errorf("query: %s takes exactly one argument (file)", ex.fn)
		}
		if id, ok := ex.args[0].(ident); !ok || id.name != "file" {
			return value.Null(), fmt.Errorf("query: %s must be applied to the range variable file", ex.fn)
		}
		v, err := e.db.CallFunc(snap, ex.fn, row.oid)
		if err != nil {
			// A function the file's type does not support — or a
			// content function applied to a directory — filters the
			// row rather than failing the query.
			if errors.Is(err, core.ErrTypeMismatch) || errors.Is(err, core.ErrIsDirectory) {
				return value.Null(), errSkipRow
			}
			return value.Null(), err
		}
		return v, nil
	case unary:
		x, err := e.eval(snap, row, ex.x)
		if err != nil {
			return value.Null(), err
		}
		switch ex.op {
		case "not":
			return value.Bool(!x.Truthy()), nil
		case "-":
			if f, ok := x.AsFloat(); ok {
				if x.Kind == value.KindInt {
					return value.Int(-x.I), nil
				}
				return value.Float(-f), nil
			}
			return value.Null(), fmt.Errorf("query: cannot negate %v", x)
		}
	case binary:
		// Short-circuit logic first.
		switch ex.op {
		case "and":
			l, err := e.eval(snap, row, ex.l)
			if err != nil {
				return value.Null(), err
			}
			if !l.Truthy() {
				return value.Bool(false), nil
			}
			r, err := e.eval(snap, row, ex.r)
			if err != nil {
				return value.Null(), err
			}
			return value.Bool(r.Truthy()), nil
		case "or":
			l, err := e.eval(snap, row, ex.l)
			if err != nil {
				return value.Null(), err
			}
			if l.Truthy() {
				return value.Bool(true), nil
			}
			r, err := e.eval(snap, row, ex.r)
			if err != nil {
				return value.Null(), err
			}
			return value.Bool(r.Truthy()), nil
		}
		l, err := e.eval(snap, row, ex.l)
		if err != nil {
			return value.Null(), err
		}
		r, err := e.eval(snap, row, ex.r)
		if err != nil {
			return value.Null(), err
		}
		switch ex.op {
		case "=":
			return value.Bool(value.Equal(l, r)), nil
		case "!=":
			return value.Bool(!value.Equal(l, r)), nil
		case "<":
			return value.Bool(value.Compare(l, r) < 0), nil
		case "<=":
			return value.Bool(value.Compare(l, r) <= 0), nil
		case ">":
			return value.Bool(value.Compare(l, r) > 0), nil
		case ">=":
			return value.Bool(value.Compare(l, r) >= 0), nil
		case "in":
			if l.Kind != value.KindString {
				return value.Null(), fmt.Errorf("query: left side of in must be a string")
			}
			return value.Bool(r.Contains(l.S)), nil
		case "+", "-", "*", "/":
			return arith(ex.op, l, r)
		}
	}
	return value.Null(), fmt.Errorf("query: cannot evaluate %T", ex)
}

func arith(op string, l, r value.V) (value.V, error) {
	lf, lok := l.AsFloat()
	rf, rok := r.AsFloat()
	if !lok || !rok {
		return value.Null(), fmt.Errorf("query: arithmetic on non-numeric values %v %s %v", l, op, r)
	}
	bothInt := l.Kind == value.KindInt && r.Kind == value.KindInt
	switch op {
	case "+":
		if bothInt {
			return value.Int(l.I + r.I), nil
		}
		return value.Float(lf + rf), nil
	case "-":
		if bothInt {
			return value.Int(l.I - r.I), nil
		}
		return value.Float(lf - rf), nil
	case "*":
		if bothInt {
			return value.Int(l.I * r.I), nil
		}
		return value.Float(lf * rf), nil
	case "/":
		if rf == 0 {
			return value.Null(), fmt.Errorf("query: division by zero")
		}
		return value.Float(lf / rf), nil
	}
	return value.Null(), fmt.Errorf("query: bad operator %q", op)
}
