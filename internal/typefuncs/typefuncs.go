// Package typefuncs defines the example file types and classification
// functions of the paper's Table 2 and registers them with a database:
//
//	ASCII document          linecount
//	troff document          keywords, wordcount, linecount, fonts, sizes
//	Coastal Zone Color      pixelavg, pixelcount, getpixel
//	  Scanner satellite image
//	Advanced Very High      snow, pixelcount, pixelavg, getpixel, getband
//	  Resolution Radiometer
//	  satellite image
//
// The "tm" type carries the Thematic Mapper scenes used by the paper's
// snow query. Functions run inside the data manager, exactly like the
// dynamically loaded C functions of POSTGRES.
package typefuncs

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/satgen"
	"repro/internal/value"
)

// Type names registered by RegisterAll.
const (
	TypeASCII = "ASCII document"
	TypeTroff = "troff document"
	TypeCZCS  = "czcs" // Coastal Zone Color Scanner satellite image
	TypeTM    = "tm"   // Thematic Mapper / AVHRR satellite image
)

// RegisterAll defines every Table 2 type and function on the database
// behind the session. It is idempotent: re-registering on an existing
// database only reloads the in-process implementations.
func RegisterAll(s *core.Session) error {
	types := []struct{ name, doc string }{
		{TypeASCII, "plain text document"},
		{TypeTroff, "troff typesetter source"},
		{TypeCZCS, "Coastal Zone Color Scanner satellite image"},
		{TypeTM, "Advanced Very High Resolution Radiometer / Thematic Mapper satellite image"},
	}
	for _, ti := range types {
		if err := s.DefineType(ti.name, ti.doc); err != nil && !errors.Is(err, catalog.ErrExists) {
			return err
		}
	}
	funcs := []struct {
		fi   catalog.FuncInfo
		impl core.FileFunc
	}{
		{catalog.FuncInfo{Name: "linecount", TypeName: "", Doc: "number of newline-terminated lines"}, linecount},
		{catalog.FuncInfo{Name: "wordcount", TypeName: TypeTroff, Doc: "words excluding troff requests"}, wordcount},
		{catalog.FuncInfo{Name: "keywords", TypeName: TypeTroff, Doc: "keywords from .KW requests"}, keywords},
		{catalog.FuncInfo{Name: "fonts", TypeName: TypeTroff, Doc: "fonts named in .ft requests"}, fonts},
		{catalog.FuncInfo{Name: "sizes", TypeName: TypeTroff, Doc: "point sizes from .ps requests"}, sizes},
		{catalog.FuncInfo{Name: "pixelcount", TypeName: "", Doc: "pixels per band"}, pixelcount},
		{catalog.FuncInfo{Name: "pixelavg", TypeName: "", Doc: "mean pixel value across bands"}, pixelavg},
		{catalog.FuncInfo{Name: "snow", TypeName: TypeTM, Doc: "count of snow-covered pixels"}, snow},
	}
	for _, f := range funcs {
		err := s.DefineFunction(f.fi, f.impl)
		if errors.Is(err, catalog.ErrExists) {
			s.DB().RegisterFunc(f.fi.Name, f.impl)
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// RegisterValidators installs integrity rules ("Consistency
// Guarantees") for the image types: once registered, a transaction that
// tries to commit a structurally invalid satellite image is aborted.
// Validators are opt-in, separate from RegisterAll, because they change
// write semantics.
func RegisterValidators(s *core.Session) {
	db := s.DB()
	imageRule := func(c *core.FuncCtx) error {
		data, err := c.Contents()
		if err != nil {
			return err
		}
		if _, ok := satgen.Decode(data); !ok {
			return fmt.Errorf("not a valid %d-band satellite image", satgen.Bands)
		}
		return nil
	}
	db.RegisterValidator(TypeTM, imageRule)
	db.RegisterValidator(TypeCZCS, imageRule)
}

func contents(c *core.FuncCtx) ([]byte, error) { return c.Contents() }

func linecount(c *core.FuncCtx) (core.Value, error) {
	data, err := contents(c)
	if err != nil {
		return value.Null(), err
	}
	return value.Int(int64(bytes.Count(data, []byte("\n")))), nil
}

func wordcount(c *core.FuncCtx) (core.Value, error) {
	data, err := contents(c)
	if err != nil {
		return value.Null(), err
	}
	n := int64(0)
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, ".") {
			continue // troff request line
		}
		n += int64(len(strings.Fields(line)))
	}
	return value.Int(n), nil
}

// troffRequest extracts the arguments of every occurrence of a troff
// request like .KW, .ft, .ps.
func troffRequest(data []byte, req string) []string {
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, req) {
			out = append(out, strings.Fields(strings.TrimPrefix(line, req))...)
		}
	}
	return out
}

func uniqueSorted(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

func keywords(c *core.FuncCtx) (core.Value, error) {
	data, err := contents(c)
	if err != nil {
		return value.Null(), err
	}
	return value.List(uniqueSorted(troffRequest(data, ".KW"))), nil
}

func fonts(c *core.FuncCtx) (core.Value, error) {
	data, err := contents(c)
	if err != nil {
		return value.Null(), err
	}
	return value.List(uniqueSorted(troffRequest(data, ".ft"))), nil
}

func sizes(c *core.FuncCtx) (core.Value, error) {
	data, err := contents(c)
	if err != nil {
		return value.Null(), err
	}
	return value.List(uniqueSorted(troffRequest(data, ".ps"))), nil
}

func decodeImage(c *core.FuncCtx) (*satgen.Image, error) {
	data, err := contents(c)
	if err != nil {
		return nil, err
	}
	img, ok := satgen.Decode(data)
	if !ok {
		return nil, fmt.Errorf("typefuncs: file %d is not a valid satellite image", c.OID)
	}
	return img, nil
}

func pixelcount(c *core.FuncCtx) (core.Value, error) {
	img, err := decodeImage(c)
	if err != nil {
		return value.Null(), err
	}
	return value.Int(int64(img.PixelCount())), nil
}

func pixelavg(c *core.FuncCtx) (core.Value, error) {
	img, err := decodeImage(c)
	if err != nil {
		return value.Null(), err
	}
	return value.Float(img.PixelAvg()), nil
}

func snow(c *core.FuncCtx) (core.Value, error) {
	img, err := decodeImage(c)
	if err != nil {
		return value.Null(), err
	}
	return value.Int(int64(img.SnowCount())), nil
}

// GetPixel and GetBand take extra arguments, so they are exposed as Go
// helpers rather than single-argument query functions.

// GetPixel reads one pixel of a stored image.
func GetPixel(s *core.Session, path string, band, x, y int) (byte, error) {
	data, err := s.ReadFile(path)
	if err != nil {
		return 0, err
	}
	img, ok := satgen.Decode(data)
	if !ok {
		return 0, fmt.Errorf("typefuncs: %s is not a valid satellite image", path)
	}
	v, ok := img.GetPixel(band, x, y)
	if !ok {
		return 0, fmt.Errorf("typefuncs: pixel (%d,%d) band %d out of range", x, y, band)
	}
	return v, nil
}

// GetBand reads one full band of a stored image.
func GetBand(s *core.Session, path string, band int) ([]byte, error) {
	data, err := s.ReadFile(path)
	if err != nil {
		return nil, err
	}
	img, ok := satgen.Decode(data)
	if !ok {
		return nil, fmt.Errorf("typefuncs: %s is not a valid satellite image", path)
	}
	b, ok := img.GetBand(band)
	if !ok {
		return nil, fmt.Errorf("typefuncs: band %d out of range", band)
	}
	return append([]byte(nil), b...), nil
}
