package typefuncs

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/satgen"
	"repro/internal/value"
)

func newSession(t *testing.T) *core.Session {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	var mu sync.Mutex
	tick := int64(1 << 30)
	db, err := core.Open(sw, core.Options{Buffers: 128, TimeSource: func() int64 {
		mu.Lock()
		defer mu.Unlock()
		tick += 1000
		return tick
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("test")
	if err := RegisterAll(s); err != nil {
		t.Fatal(err)
	}
	return s
}

func call(t *testing.T, s *core.Session, fn, path string) value.V {
	t.Helper()
	v, err := s.Call(fn, path)
	if err != nil {
		t.Fatalf("%s(%s): %v", fn, path, err)
	}
	return v
}

func TestRegisterAllIdempotent(t *testing.T) {
	s := newSession(t)
	if err := RegisterAll(s); err != nil {
		t.Fatalf("second registration: %v", err)
	}
	for _, typ := range []string{TypeASCII, TypeTroff, TypeCZCS, TypeTM} {
		if _, ok := s.DB().Catalog().Type(typ); !ok {
			t.Errorf("type %q missing", typ)
		}
	}
	for _, fn := range []string{"linecount", "wordcount", "keywords", "fonts", "sizes", "pixelcount", "pixelavg", "snow"} {
		if _, ok := s.DB().Catalog().Function(fn); !ok {
			t.Errorf("function %q missing", fn)
		}
	}
}

func TestLinecount(t *testing.T) {
	s := newSession(t)
	if err := s.WriteFile("/d", []byte("a\nb\nc\n"), core.CreateOpts{Type: TypeASCII}); err != nil {
		t.Fatal(err)
	}
	if v := call(t, s, "linecount", "/d"); v.I != 3 {
		t.Fatalf("linecount = %v", v)
	}
	// Empty file.
	if err := s.WriteFile("/empty", nil, core.CreateOpts{Type: TypeASCII}); err != nil {
		t.Fatal(err)
	}
	if v := call(t, s, "linecount", "/empty"); v.I != 0 {
		t.Fatalf("linecount(empty) = %v", v)
	}
}

func TestTroffFunctions(t *testing.T) {
	s := newSession(t)
	doc := ".KW RISC architecture\n" +
		".ft B\n" +
		".ps 10\n" +
		"The quick brown fox.\n" +
		".KW benchmarks RISC\n" +
		".ft R\n" +
		".ps 12\n" +
		"Jumps over the lazy dog today.\n"
	if err := s.WriteFile("/p.t", []byte(doc), core.CreateOpts{Type: TypeTroff}); err != nil {
		t.Fatal(err)
	}
	kw := call(t, s, "keywords", "/p.t")
	want := []string{"RISC", "architecture", "benchmarks"}
	if len(kw.L) != len(want) {
		t.Fatalf("keywords = %v", kw.L)
	}
	for i := range want {
		if kw.L[i] != want[i] {
			t.Fatalf("keywords = %v", kw.L)
		}
	}
	if wc := call(t, s, "wordcount", "/p.t"); wc.I != 10 {
		t.Fatalf("wordcount = %v", wc)
	}
	if fonts := call(t, s, "fonts", "/p.t"); len(fonts.L) != 2 || fonts.L[0] != "B" || fonts.L[1] != "R" {
		t.Fatalf("fonts = %v", fonts.L)
	}
	if sizes := call(t, s, "sizes", "/p.t"); len(sizes.L) != 2 || sizes.L[0] != "10" || sizes.L[1] != "12" {
		t.Fatalf("sizes = %v", sizes.L)
	}
	// Troff-only functions reject other types.
	if err := s.WriteFile("/plain", []byte("x"), core.CreateOpts{Type: TypeASCII}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call("keywords", "/plain"); !errors.Is(err, core.ErrTypeMismatch) {
		t.Fatalf("keywords on ASCII: %v", err)
	}
}

func TestImageFunctions(t *testing.T) {
	s := newSession(t)
	img := satgen.Generate(satgen.Params{Width: 20, Height: 10, SnowFraction: 0.4, Seed: 9})
	if err := s.WriteFile("/scene", img.Encode(), core.CreateOpts{Type: TypeTM}); err != nil {
		t.Fatal(err)
	}
	if v := call(t, s, "pixelcount", "/scene"); v.I != 200 {
		t.Fatalf("pixelcount = %v", v)
	}
	if v := call(t, s, "snow", "/scene"); v.I != int64(img.SnowCount()) {
		t.Fatalf("snow = %v, want %d", v, img.SnowCount())
	}
	if v := call(t, s, "pixelavg", "/scene"); v.F != img.PixelAvg() {
		t.Fatalf("pixelavg = %v", v)
	}
	// Corrupt image errors rather than returning nonsense.
	if err := s.WriteFile("/garbage", []byte("not an image"), core.CreateOpts{Type: TypeTM}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Call("snow", "/garbage"); err == nil {
		t.Fatal("snow on garbage succeeded")
	}
}

func TestGetPixelGetBand(t *testing.T) {
	s := newSession(t)
	img := satgen.Generate(satgen.Params{Width: 8, Height: 8, SnowFraction: 0.5, Seed: 2})
	if err := s.WriteFile("/px", img.Encode(), core.CreateOpts{Type: TypeTM}); err != nil {
		t.Fatal(err)
	}
	want, _ := img.GetPixel(1, 3, 4)
	got, err := GetPixel(s, "/px", 1, 3, 4)
	if err != nil || got != want {
		t.Fatalf("GetPixel = %d, %v (want %d)", got, err, want)
	}
	if _, err := GetPixel(s, "/px", 0, 99, 0); err == nil {
		t.Fatal("out-of-range pixel accepted")
	}
	band, err := GetBand(s, "/px", 2)
	if err != nil || len(band) != 64 {
		t.Fatalf("GetBand: %d bytes, %v", len(band), err)
	}
	wantBand, _ := img.GetBand(2)
	for i := range band {
		if band[i] != wantBand[i] {
			t.Fatal("band contents differ")
		}
	}
	if _, err := GetBand(s, "/px", 99); err == nil {
		t.Fatal("bad band accepted")
	}
}

func TestImageValidators(t *testing.T) {
	s := newSession(t)
	RegisterValidators(s)
	img := satgen.Generate(satgen.Params{Width: 4, Height: 4, Seed: 1})
	if err := s.WriteFile("/good.tm", img.Encode(), core.CreateOpts{Type: TypeTM}); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}
	if err := s.WriteFile("/bad.tm", []byte("junk"), core.CreateOpts{Type: TypeTM}); err == nil {
		t.Fatal("invalid TM image committed")
	}
	if _, err := s.Stat("/bad.tm"); err == nil {
		t.Fatal("rejected image exists")
	}
	if err := s.WriteFile("/bad.czcs", []byte("junk"), core.CreateOpts{Type: TypeCZCS}); err == nil {
		t.Fatal("invalid CZCS image committed")
	}
	// Untyped files are unaffected.
	if err := s.WriteFile("/free", []byte("junk"), core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
}

func TestSnowQueryEndToEnd(t *testing.T) {
	// snow/pixelcount ratio recovers the planted fraction closely
	// enough for the paper's >50% predicate.
	s := newSession(t)
	img := satgen.Generate(satgen.Params{Width: 50, Height: 50, SnowFraction: 0.7, Seed: 11})
	if err := s.WriteFile("/tm1", img.Encode(), core.CreateOpts{Type: TypeTM}); err != nil {
		t.Fatal(err)
	}
	snow := call(t, s, "snow", "/tm1").I
	count := call(t, s, "pixelcount", "/tm1").I
	ratio := float64(snow) / float64(count)
	if ratio < 0.6 || ratio > 0.8 {
		t.Fatalf("recovered snow ratio %.3f", ratio)
	}
}
