package txn

import (
	"testing"
	"time"
)

func TestActiveTxnsAndAnnotate(t *testing.T) {
	m, _ := newManager(t)
	before := time.Now().UnixNano()
	tx1, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx2, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	m.AnnotateTx(tx1.ID(), "inv42")
	m.AnnotateTx(tx1.ID(), "inv99") // first writer wins
	m.AnnotateTx(tx2.ID(), "")      // empty note is a no-op

	act := m.ActiveTxns()
	if len(act) != 2 {
		t.Fatalf("ActiveTxns = %d entries, want 2", len(act))
	}
	byID := map[XID]ActiveTxn{}
	for _, a := range act {
		byID[a.XID] = a
		if a.StartUnixNs < before || a.StartUnixNs > time.Now().UnixNano() {
			t.Fatalf("start time %d outside test window", a.StartUnixNs)
		}
	}
	if got := byID[tx1.ID()].Note; got != "inv42" {
		t.Fatalf("tx1 note = %q, want first-writer inv42", got)
	}
	if got := byID[tx2.ID()].Note; got != "" {
		t.Fatalf("tx2 note = %q, want empty", got)
	}

	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if act := m.ActiveTxns(); len(act) != 0 {
		t.Fatalf("ActiveTxns after end = %v, want empty", act)
	}
	// Annotating an ended transaction must not panic or resurrect it.
	m.AnnotateTx(tx1.ID(), "late")
}

func TestDumpLocks(t *testing.T) {
	m, _ := newManager(t)
	tag := LockTag{Space: SpaceRelation, Rel: 7, Key: 1}
	holder, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := holder.Lock(tag, LockExclusive); err != nil {
		t.Fatal(err)
	}
	waiter, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- waiter.Lock(tag, LockShared) }()

	// Wait for the waiter to appear in the dump.
	deadline := time.Now().Add(5 * time.Second)
	for {
		dump := m.Locks().DumpLocks()
		var gotHolder, gotWaiter bool
		for _, d := range dump {
			if d.Tag != tag {
				continue
			}
			if d.Granted && d.Txn == holder.ID() && d.Mode == LockExclusive && d.Waiters == 1 {
				gotHolder = true
			}
			if !d.Granted && d.Txn == waiter.ID() && d.Mode == LockShared {
				gotWaiter = true
			}
		}
		if gotHolder && gotWaiter {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dump never showed holder+waiter: %+v", dump)
		}
		time.Sleep(time.Millisecond)
	}

	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-acquired; err != nil {
		t.Fatal(err)
	}
	if err := waiter.Commit(); err != nil {
		t.Fatal(err)
	}
	if dump := m.Locks().DumpLocks(); len(dump) != 0 {
		t.Fatalf("dump after both ended = %+v, want empty", dump)
	}
}

func TestLockStringers(t *testing.T) {
	if LockShared.String() != "shared" || LockExclusive.String() != "exclusive" {
		t.Fatal("LockMode.String mismatch")
	}
	if SpaceRelation.String() != "relation" || SpaceName.String() != "name" || SpaceMeta.String() != "meta" {
		t.Fatal("LockSpace.String mismatch")
	}
}
