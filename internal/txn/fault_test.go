// Fault-injection tests for the commit protocol: these run as an
// external test package so they can stack the real buffer pool and
// heap over a Faulty device, which the txn package proper cannot
// import.
package txn_test

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/buffer"
	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/obs"
	"repro/internal/txn"
)

const dataRel device.OID = 100

// commitRig is a minimal storage stack: one faulty device carrying
// both the transaction logs and a data relation, a buffer pool over
// it, and a manager whose ForceData flushes the pool — the same
// force-at-commit wiring core.DB uses.
type commitRig struct {
	dev    *device.Mem
	faulty *device.Faulty
	pool   *buffer.Pool
	mgr    *txn.Manager
	rel    *heap.Relation
}

func newCommitRig(t *testing.T) *commitRig {
	t.Helper()
	dev := device.NewMem(nil, 0)
	faulty := device.NewFaulty(dev, 1)
	log, err := txn.OpenLog(faulty)
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(log)
	pool := buffer.NewPool(faulty, 32)
	mgr.ForceData = func() error {
		if err := pool.FlushAll(); err != nil {
			return err
		}
		return faulty.Sync()
	}
	if err := faulty.Create(dataRel); err != nil {
		t.Fatal(err)
	}
	return &commitRig{dev: dev, faulty: faulty, pool: pool, mgr: mgr,
		rel: heap.Open(dataRel, pool, mgr)}
}

// reopen simulates recovery: the buffer cache is lost, the log is
// reopened from the (healed) device, and a fresh manager serves
// snapshots — in-progress transactions read as aborted.
func (rig *commitRig) reopen(t *testing.T) *commitRig {
	t.Helper()
	rig.faulty.Heal().Clear()
	rig.pool.Crash()
	log, err := txn.OpenLog(rig.faulty)
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(log)
	pool := buffer.NewPool(rig.faulty, 32)
	mgr.ForceData = func() error {
		if err := pool.FlushAll(); err != nil {
			return err
		}
		return rig.faulty.Sync()
	}
	return &commitRig{dev: rig.dev, faulty: rig.faulty, pool: pool, mgr: mgr,
		rel: heap.Open(dataRel, pool, mgr)}
}

func (rig *commitRig) insert(t *testing.T, tx *txn.Tx, payload string) heap.TID {
	t.Helper()
	tid, err := rig.rel.Insert(tx.ID(), []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return tid
}

// TestCommitForceDataFailureAborts: a commit whose data force fails
// must report the error, leave the transaction aborted, and keep the
// status log consistent for subsequent transactions.
func TestCommitForceDataFailureAborts(t *testing.T) {
	rig := newCommitRig(t)
	tx, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rig.insert(t, tx, "doomed")

	// The data relation's writeback fails; the log relations stay good,
	// so the abort record can be recorded.
	rig.faulty.FailIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == dataRel }, nil)
	if err := tx.Commit(); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Commit with failing data force: %v", err)
	}
	if !tx.Done() {
		t.Fatal("transaction left open after failed commit")
	}
	if got := rig.mgr.StatusOf(tx.ID()); got != txn.StatusAborted {
		t.Fatalf("status after failed commit = %v, want aborted", got)
	}
	if err := tx.Commit(); !errors.Is(err, txn.ErrTxDone) {
		t.Fatalf("re-commit of aborted tx: %v", err)
	}

	// The manager is fully usable afterwards.
	rig.faulty.Clear()
	tx2, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tid := rig.insert(t, tx2, "survivor")
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := rig.rel.Fetch(rig.mgr.CurrentSnapshot(), tid)
	if err != nil || !bytes.Equal(got, []byte("survivor")) {
		t.Fatalf("post-recovery insert: %q, %v", got, err)
	}
}

// TestCommitFailureThenCrashKeepsPreCommitState: after a failed
// commit, a crash plus reopen must show exactly the pre-commit state —
// the committed record, not the aborted one.
func TestCommitFailureThenCrashKeepsPreCommitState(t *testing.T) {
	rig := newCommitRig(t)

	tx1, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tidGood := rig.insert(t, tx1, "pre-commit state")
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tidBad := rig.insert(t, tx2, "never committed")
	rig.faulty.FailIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == dataRel }, nil)
	if err := tx2.Commit(); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Commit: %v", err)
	}

	rig2 := rig.reopen(t)
	snap := rig2.mgr.CurrentSnapshot()
	got, err := rig2.rel.Fetch(snap, tidGood)
	if err != nil || !bytes.Equal(got, []byte("pre-commit state")) {
		t.Fatalf("committed record after crash: %q, %v", got, err)
	}
	if _, err := rig2.rel.Fetch(snap, tidBad); !errors.Is(err, heap.ErrNotVisible) && !errors.Is(err, heap.ErrNoRecord) {
		t.Fatalf("aborted record visible after crash: %v", err)
	}
}

// TestCommitLogForceFailureAborts: when the data force succeeds but
// the status-log force fails, the transaction must not be left in
// limbo — it finishes aborted and the error says so.
func TestCommitLogForceFailureAborts(t *testing.T) {
	rig := newCommitRig(t)
	tx, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rig.insert(t, tx, "limbo")

	rig.faulty.FailIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == txn.StatusLogRel || rel == txn.TimeLogRel }, nil)
	err = tx.Commit()
	if !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Commit with failing log force: %v", err)
	}
	if !strings.Contains(err.Error(), "transaction aborted") {
		t.Fatalf("error does not state the outcome: %v", err)
	}
	if !tx.Done() {
		t.Fatal("transaction left in limbo after failed log force")
	}
	if got := rig.mgr.StatusOf(tx.ID()); got != txn.StatusAborted {
		t.Fatalf("status = %v, want aborted", got)
	}

	// The aborted state is re-forced by the next commit once the
	// device heals, converging memory and disk.
	rig.faulty.Clear()
	tx2, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	rig2 := rig.reopen(t)
	if got := rig2.mgr.StatusOf(tx.ID()); got != txn.StatusAborted {
		t.Fatalf("status after reopen = %v, want aborted", got)
	}
}

// TestCrashHookMidCommit arms the one-shot "crash now" hook on the
// first status-log write, so the machine dies after the data pages are
// forced but before the commit record is stable: the canonical
// no-overwrite recovery scenario. The hook trips buffer.Pool.Crash
// mid-commit; after reopen the transaction must read as aborted and
// earlier committed data must be intact.
func TestCrashHookMidCommit(t *testing.T) {
	rig := newCommitRig(t)

	tx1, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tidGood := rig.insert(t, tx1, "durable")
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tidBad := rig.insert(t, tx2, "torn")
	rig.faulty.CrashIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == txn.StatusLogRel },
		rig.pool.Crash)
	err = tx2.Commit()
	if !errors.Is(err, device.ErrCrashed) {
		t.Fatalf("Commit through crash: %v", err)
	}
	if !rig.faulty.Down() {
		t.Fatal("device not down after crash hook")
	}

	rig2 := rig.reopen(t)
	if got := rig2.mgr.StatusOf(tx2.ID()); got != txn.StatusAborted {
		t.Fatalf("torn commit status after recovery = %v, want aborted", got)
	}
	snap := rig2.mgr.CurrentSnapshot()
	got, err := rig2.rel.Fetch(snap, tidGood)
	if err != nil || !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("durable record after crash: %q, %v", got, err)
	}
	if _, err := rig2.rel.Fetch(snap, tidBad); !errors.Is(err, heap.ErrNotVisible) && !errors.Is(err, heap.ErrNoRecord) {
		t.Fatalf("torn record visible after recovery: %v", err)
	}
}

// TestBeginAfterReserveForceFailure: a Begin that needs to raise the
// XID ceiling through a failing device must surface the error rather
// than hand out unreserved XIDs.
func TestBeginAfterReserveForceFailure(t *testing.T) {
	rig := newCommitRig(t)
	rig.faulty.FailIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == txn.StatusLogRel }, nil)
	var sawErr bool
	// The reserve chunk is thousands of XIDs wide; burn through Begins
	// until one crosses the ceiling and must force the control page.
	for i := 0; i < 10000; i++ {
		tx, err := rig.mgr.Begin()
		if err != nil {
			if !errors.Is(err, device.ErrInjected) {
				t.Fatalf("Begin: %v", err)
			}
			sawErr = true
			break
		}
		if err := tx.Abort(); err != nil {
			t.Fatal(err)
		}
	}
	if !sawErr {
		t.Fatal("no Begin ever hit the failing control-page force")
	}
	// The failed Begin must leave no trace: its XID was never handed to
	// the caller, so it must not sit in the live set (where it would
	// show up in inv_transactions as an ageless ghost and pin the
	// vacuum horizon at that XID forever).
	if act := rig.mgr.ActiveTxns(); len(act) != 0 {
		t.Fatalf("failed Begin leaked into the live set: %+v", act)
	}
	// Healed, Begin works again.
	rig.faulty.Clear()
	tx, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// With no leak, the only live transaction is tx, so the horizon is
	// exactly its XID; a leaked ghost would pin the horizon below it.
	if h := rig.mgr.Horizon(); h != tx.ID() {
		t.Fatalf("horizon pinned at %d by a leaked XID, want %d", h, tx.ID())
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

// gcMember is one concurrent committer in a group-commit crash test:
// its transaction, the TID it inserted, and its payload.
type gcMember struct {
	tx      *txn.Tx
	tid     heap.TID
	payload string
}

// beginMembers starts n transactions that have each inserted one
// record, ready to commit concurrently. Begins and inserts happen
// before the caller arms any fault, so the only device activity left is
// the commit forces themselves.
func beginMembers(t *testing.T, rig *commitRig, n int) []gcMember {
	t.Helper()
	ms := make([]gcMember, n)
	for i := range ms {
		tx, err := rig.mgr.Begin()
		if err != nil {
			t.Fatal(err)
		}
		ms[i] = gcMember{tx: tx, payload: string(rune('a' + i))}
		ms[i].tid = rig.insert(t, tx, ms[i].payload)
	}
	return ms
}

// commitAll commits every member from its own goroutine and returns the
// per-member errors after all have finished.
func commitAll(ms []gcMember) []error {
	errs := make([]error, len(ms))
	var wg sync.WaitGroup
	for i := range ms {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = ms[i].tx.Commit()
		}(i)
	}
	wg.Wait()
	return errs
}

// checkAtomicAfterCrash reopens the rig and asserts every member is
// atomically all-or-nothing: a member whose durable status reads
// committed must have its record readable; any other status means the
// record is invisible. Returns the reopened rig and the number of
// members that survived as committed.
func checkAtomicAfterCrash(t *testing.T, rig *commitRig, ms []gcMember) (*commitRig, int) {
	t.Helper()
	rig2 := rig.reopen(t)
	snap := rig2.mgr.CurrentSnapshot()
	committed := 0
	for i, m := range ms {
		switch got := rig2.mgr.StatusOf(m.tx.ID()); got {
		case txn.StatusCommitted:
			committed++
			data, err := rig2.rel.Fetch(snap, m.tid)
			if err != nil || !bytes.Equal(data, []byte(m.payload)) {
				t.Errorf("member %d committed but unreadable: %q, %v", i, data, err)
			}
		case txn.StatusAborted:
			if _, err := rig2.rel.Fetch(snap, m.tid); !errors.Is(err, heap.ErrNotVisible) && !errors.Is(err, heap.ErrNoRecord) {
				t.Errorf("member %d aborted but record visible: %v", i, err)
			}
		default:
			t.Errorf("member %d status after recovery = %v", i, got)
		}
	}
	return rig2, committed
}

// TestGroupCommitCrashAtDataFlush crashes the machine on the first
// data-page writeback of a concurrent batch's force: no member's commit
// record can exist yet, so recovery must show every member aborted and
// no record visible.
func TestGroupCommitCrashAtDataFlush(t *testing.T) {
	rig := newCommitRig(t)
	rig.mgr.CommitWindow = 20 * time.Millisecond
	ms := beginMembers(t, rig, 4)
	rig.faulty.CrashIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == dataRel },
		rig.pool.Crash)
	for i, err := range commitAll(ms) {
		if !errors.Is(err, device.ErrCrashed) {
			t.Fatalf("member %d Commit through crash: %v", i, err)
		}
	}
	_, committed := checkAtomicAfterCrash(t, rig, ms)
	if committed != 0 {
		t.Fatalf("%d members read committed after a crash before any commit record was written", committed)
	}
}

// TestGroupCommitCrashAtStatusWrite crashes on the batch's first
// status-log page write: the members' data pages are durable but no
// commit record reached the device, so every member must recover as
// aborted with its record invisible.
func TestGroupCommitCrashAtStatusWrite(t *testing.T) {
	rig := newCommitRig(t)
	rig.mgr.CommitWindow = 20 * time.Millisecond
	ms := beginMembers(t, rig, 4)
	rig.faulty.CrashIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == txn.StatusLogRel },
		rig.pool.Crash)
	for i, err := range commitAll(ms) {
		if !errors.Is(err, device.ErrCrashed) {
			t.Fatalf("member %d Commit through crash: %v", i, err)
		}
	}
	_, committed := checkAtomicAfterCrash(t, rig, ms)
	if committed != 0 {
		t.Fatalf("%d members read committed after a crash before the status pages were written", committed)
	}
}

// TestGroupCommitCrashAtLogSync crashes on the batch's log sync — after
// the data flush (and its sync) and after the status pages were written.
// Every member's Commit still fails (the force never completed), but on
// this device the written status pages survive, so recovery may see
// members committed: each such member must be fully readable, which is
// exactly the publication-after-data-flush ordering guarantee. Members
// of a batch are indivisible here — the leader publishes all statuses
// before one log force — so recovery must not show a half-committed
// batch.
func TestGroupCommitCrashAtLogSync(t *testing.T) {
	rig := newCommitRig(t)
	rig.mgr.CommitWindow = 20 * time.Millisecond
	ms := beginMembers(t, rig, 4)
	// Sync #1 of the batch force is the data sync; #2 is the log sync.
	base := rig.faulty.Count(device.FaultSync)
	rig.faulty.CrashOn(device.FaultSync, base+2, rig.pool.Crash)
	for i, err := range commitAll(ms) {
		if !errors.Is(err, device.ErrCrashed) {
			t.Fatalf("member %d Commit through crash: %v", i, err)
		}
	}
	rig2, committed := checkAtomicAfterCrash(t, rig, ms)
	// Members that share a batch live or die together. With a 20ms
	// window and all four queued before the force, a lone crash point
	// cannot split one batch — but commits may have landed in more than
	// one batch, so assert only per-member atomicity plus: the system
	// keeps working after recovery.
	tx, err := rig2.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tid := rig2.insert(t, tx, "after recovery")
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if data, err := rig2.rel.Fetch(rig2.mgr.CurrentSnapshot(), tid); err != nil || !bytes.Equal(data, []byte("after recovery")) {
		t.Fatalf("post-recovery commit unreadable: %q, %v", data, err)
	}
	t.Logf("crash at log sync: %d/%d members recovered committed", committed, len(ms))
}

// TestGroupCommitBatchesUnderConcurrency pins the batching behaviour
// itself: with a commit window and several committers in flight, the
// pipeline must force fewer times than it commits, and the registry
// histograms must record it.
func TestGroupCommitBatchesUnderConcurrency(t *testing.T) {
	rig := newCommitRig(t)
	reg := obs.NewRegistry()
	rig.mgr.SetObs(reg)
	rig.mgr.CommitWindow = 50 * time.Millisecond
	ms := beginMembers(t, rig, 8)
	for i, err := range commitAll(ms) {
		if err != nil {
			t.Fatalf("member %d Commit: %v", i, err)
		}
	}
	bs := reg.Histogram("txn.group_commit.batch_size").Snapshot("")
	if bs.SumNs != 8 {
		t.Fatalf("batch-size histogram saw %d commits, want 8", bs.SumNs)
	}
	if bs.Count >= 8 {
		t.Fatalf("8 commits took %d forces: no batching happened", bs.Count)
	}
	if saved := reg.Counter("txn.group_commit.forces_saved").Load(); saved != 8-bs.Count {
		t.Fatalf("forces_saved = %d, want %d", saved, 8-bs.Count)
	}
	snap := rig.mgr.CurrentSnapshot()
	for i, m := range ms {
		if data, err := rig.rel.Fetch(snap, m.tid); err != nil || !bytes.Equal(data, []byte(m.payload)) {
			t.Fatalf("member %d unreadable after batched commit: %q, %v", i, data, err)
		}
	}
	t.Logf("8 commits in %d batches", bs.Count)
}

// TestLogForceSyncFailureKeepsPagesDirty is the regression test for the
// log's dirty-bit rule: a Force whose device Sync fails must keep every
// page it wrote marked dirty, so the next Force writes them again under
// a sync that succeeds. (The old code cleared dirty bits page by page
// before issuing the sync; on a device with a volatile write cache a
// failed sync then left commit records believed durable that were not —
// and the next Force had nothing to rewrite.)
func TestLogForceSyncFailureKeepsPagesDirty(t *testing.T) {
	dev := device.NewMem(nil, 0)
	faulty := device.NewFaulty(dev, 1)
	log, err := txn.OpenLog(faulty)
	if err != nil {
		t.Fatal(err)
	}
	const x, ct = txn.XID(7), int64(42)
	log.SetState(x, txn.StatusCommitted, ct)

	faulty.FailIf(device.FaultSync, func(rel device.OID, page uint32) bool { return true }, nil)
	if err := log.Force(); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Force with failing sync: %v", err)
	}

	// Healed: the next force must rewrite the status and time pages —
	// if the failed force dropped the dirty bits, nothing is written
	// and the records' durability silently depends on the failed sync.
	faulty.Clear()
	w0 := faulty.Count(device.FaultWrite)
	if err := log.Force(); err != nil {
		t.Fatal(err)
	}
	if faulty.Count(device.FaultWrite) == w0 {
		t.Fatal("Force after a failed sync wrote nothing: dirty bits were cleared before the sync succeeded")
	}

	// And the state really is durable now: a reopened log sees it.
	log2, err := txn.OpenLog(faulty)
	if err != nil {
		t.Fatal(err)
	}
	if got := log2.State(x); got != txn.StatusCommitted {
		t.Fatalf("state after reopen = %v, want committed", got)
	}
	if got := log2.CommitTime(x); got != ct {
		t.Fatalf("commit time after reopen = %d, want %d", got, ct)
	}
}
