// Fault-injection tests for the commit protocol: these run as an
// external test package so they can stack the real buffer pool and
// heap over a Faulty device, which the txn package proper cannot
// import.
package txn_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/buffer"
	"repro/internal/device"
	"repro/internal/heap"
	"repro/internal/txn"
)

const dataRel device.OID = 100

// commitRig is a minimal storage stack: one faulty device carrying
// both the transaction logs and a data relation, a buffer pool over
// it, and a manager whose ForceData flushes the pool — the same
// force-at-commit wiring core.DB uses.
type commitRig struct {
	dev    *device.Mem
	faulty *device.Faulty
	pool   *buffer.Pool
	mgr    *txn.Manager
	rel    *heap.Relation
}

func newCommitRig(t *testing.T) *commitRig {
	t.Helper()
	dev := device.NewMem(nil, 0)
	faulty := device.NewFaulty(dev, 1)
	log, err := txn.OpenLog(faulty)
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(log)
	pool := buffer.NewPool(faulty, 32)
	mgr.ForceData = func() error {
		if err := pool.FlushAll(); err != nil {
			return err
		}
		return faulty.Sync()
	}
	if err := faulty.Create(dataRel); err != nil {
		t.Fatal(err)
	}
	return &commitRig{dev: dev, faulty: faulty, pool: pool, mgr: mgr,
		rel: heap.Open(dataRel, pool, mgr)}
}

// reopen simulates recovery: the buffer cache is lost, the log is
// reopened from the (healed) device, and a fresh manager serves
// snapshots — in-progress transactions read as aborted.
func (rig *commitRig) reopen(t *testing.T) *commitRig {
	t.Helper()
	rig.faulty.Heal().Clear()
	rig.pool.Crash()
	log, err := txn.OpenLog(rig.faulty)
	if err != nil {
		t.Fatal(err)
	}
	mgr := txn.NewManager(log)
	pool := buffer.NewPool(rig.faulty, 32)
	mgr.ForceData = func() error {
		if err := pool.FlushAll(); err != nil {
			return err
		}
		return rig.faulty.Sync()
	}
	return &commitRig{dev: rig.dev, faulty: rig.faulty, pool: pool, mgr: mgr,
		rel: heap.Open(dataRel, pool, mgr)}
}

func (rig *commitRig) insert(t *testing.T, tx *txn.Tx, payload string) heap.TID {
	t.Helper()
	tid, err := rig.rel.Insert(tx.ID(), []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return tid
}

// TestCommitForceDataFailureAborts: a commit whose data force fails
// must report the error, leave the transaction aborted, and keep the
// status log consistent for subsequent transactions.
func TestCommitForceDataFailureAborts(t *testing.T) {
	rig := newCommitRig(t)
	tx, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rig.insert(t, tx, "doomed")

	// The data relation's writeback fails; the log relations stay good,
	// so the abort record can be recorded.
	rig.faulty.FailIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == dataRel }, nil)
	if err := tx.Commit(); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Commit with failing data force: %v", err)
	}
	if !tx.Done() {
		t.Fatal("transaction left open after failed commit")
	}
	if got := rig.mgr.StatusOf(tx.ID()); got != txn.StatusAborted {
		t.Fatalf("status after failed commit = %v, want aborted", got)
	}
	if err := tx.Commit(); !errors.Is(err, txn.ErrTxDone) {
		t.Fatalf("re-commit of aborted tx: %v", err)
	}

	// The manager is fully usable afterwards.
	rig.faulty.Clear()
	tx2, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tid := rig.insert(t, tx2, "survivor")
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := rig.rel.Fetch(rig.mgr.CurrentSnapshot(), tid)
	if err != nil || !bytes.Equal(got, []byte("survivor")) {
		t.Fatalf("post-recovery insert: %q, %v", got, err)
	}
}

// TestCommitFailureThenCrashKeepsPreCommitState: after a failed
// commit, a crash plus reopen must show exactly the pre-commit state —
// the committed record, not the aborted one.
func TestCommitFailureThenCrashKeepsPreCommitState(t *testing.T) {
	rig := newCommitRig(t)

	tx1, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tidGood := rig.insert(t, tx1, "pre-commit state")
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tidBad := rig.insert(t, tx2, "never committed")
	rig.faulty.FailIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == dataRel }, nil)
	if err := tx2.Commit(); !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Commit: %v", err)
	}

	rig2 := rig.reopen(t)
	snap := rig2.mgr.CurrentSnapshot()
	got, err := rig2.rel.Fetch(snap, tidGood)
	if err != nil || !bytes.Equal(got, []byte("pre-commit state")) {
		t.Fatalf("committed record after crash: %q, %v", got, err)
	}
	if _, err := rig2.rel.Fetch(snap, tidBad); !errors.Is(err, heap.ErrNotVisible) && !errors.Is(err, heap.ErrNoRecord) {
		t.Fatalf("aborted record visible after crash: %v", err)
	}
}

// TestCommitLogForceFailureAborts: when the data force succeeds but
// the status-log force fails, the transaction must not be left in
// limbo — it finishes aborted and the error says so.
func TestCommitLogForceFailureAborts(t *testing.T) {
	rig := newCommitRig(t)
	tx, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	rig.insert(t, tx, "limbo")

	rig.faulty.FailIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == txn.StatusLogRel || rel == txn.TimeLogRel }, nil)
	err = tx.Commit()
	if !errors.Is(err, device.ErrInjected) {
		t.Fatalf("Commit with failing log force: %v", err)
	}
	if !strings.Contains(err.Error(), "transaction aborted") {
		t.Fatalf("error does not state the outcome: %v", err)
	}
	if !tx.Done() {
		t.Fatal("transaction left in limbo after failed log force")
	}
	if got := rig.mgr.StatusOf(tx.ID()); got != txn.StatusAborted {
		t.Fatalf("status = %v, want aborted", got)
	}

	// The aborted state is re-forced by the next commit once the
	// device heals, converging memory and disk.
	rig.faulty.Clear()
	tx2, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	rig2 := rig.reopen(t)
	if got := rig2.mgr.StatusOf(tx.ID()); got != txn.StatusAborted {
		t.Fatalf("status after reopen = %v, want aborted", got)
	}
}

// TestCrashHookMidCommit arms the one-shot "crash now" hook on the
// first status-log write, so the machine dies after the data pages are
// forced but before the commit record is stable: the canonical
// no-overwrite recovery scenario. The hook trips buffer.Pool.Crash
// mid-commit; after reopen the transaction must read as aborted and
// earlier committed data must be intact.
func TestCrashHookMidCommit(t *testing.T) {
	rig := newCommitRig(t)

	tx1, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tidGood := rig.insert(t, tx1, "durable")
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}

	tx2, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tidBad := rig.insert(t, tx2, "torn")
	rig.faulty.CrashIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == txn.StatusLogRel },
		rig.pool.Crash)
	err = tx2.Commit()
	if !errors.Is(err, device.ErrCrashed) {
		t.Fatalf("Commit through crash: %v", err)
	}
	if !rig.faulty.Down() {
		t.Fatal("device not down after crash hook")
	}

	rig2 := rig.reopen(t)
	if got := rig2.mgr.StatusOf(tx2.ID()); got != txn.StatusAborted {
		t.Fatalf("torn commit status after recovery = %v, want aborted", got)
	}
	snap := rig2.mgr.CurrentSnapshot()
	got, err := rig2.rel.Fetch(snap, tidGood)
	if err != nil || !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("durable record after crash: %q, %v", got, err)
	}
	if _, err := rig2.rel.Fetch(snap, tidBad); !errors.Is(err, heap.ErrNotVisible) && !errors.Is(err, heap.ErrNoRecord) {
		t.Fatalf("torn record visible after recovery: %v", err)
	}
}

// TestBeginAfterReserveForceFailure: a Begin that needs to raise the
// XID ceiling through a failing device must surface the error rather
// than hand out unreserved XIDs.
func TestBeginAfterReserveForceFailure(t *testing.T) {
	rig := newCommitRig(t)
	rig.faulty.FailIf(device.FaultWrite,
		func(rel device.OID, page uint32) bool { return rel == txn.StatusLogRel }, nil)
	var sawErr bool
	// The reserve chunk is thousands of XIDs wide; burn through Begins
	// until one crosses the ceiling and must force the control page.
	for i := 0; i < 10000; i++ {
		tx, err := rig.mgr.Begin()
		if err != nil {
			if !errors.Is(err, device.ErrInjected) {
				t.Fatalf("Begin: %v", err)
			}
			sawErr = true
			break
		}
		if err := tx.Abort(); err != nil {
			t.Fatal(err)
		}
	}
	if !sawErr {
		t.Fatal("no Begin ever hit the failing control-page force")
	}
	// Healed, Begin works again.
	rig.faulty.Clear()
	tx, err := rig.mgr.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}
