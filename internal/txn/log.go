package txn

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/obs"
)

// Reserved relation OIDs for the transaction logs. These relations are
// written through (forced) at commit; they are the only state recovery
// consults, which is why recovery is "essentially instantaneous".
const (
	StatusLogRel device.OID = 1
	TimeLogRel   device.OID = 2
)

const (
	xidsPerStatusPage = (device.PageSize - 16) * 4 // 2 bits each after header
	xidsPerTimePage   = device.PageSize / 8
)

// Log is the transaction status file plus the commit-time file. Pages
// are cached in memory and written through to the device on Force, so a
// crash can lose at most the statuses that were never forced — exactly
// the transactions that must be rolled back anyway.
//
// Page 0 of the status relation is a control page:
//
//	0..7   magic
//	8..11  reservedXID: all XIDs below this may have been handed out
//	12..15 checkpointXID: every XID below this has its final status
//	       durably on the device (see Checkpoint)
//	16..19 namespaceShards: how many namespace shards this volume was
//	       bootstrapped with. 0 means the legacy single-shard layout
//	       (the field is only ever written for shard counts above one,
//	       so single-shard volumes stay byte-identical to images
//	       written before the field existed).
//
// A page slot may be nil: pages wholly below the checkpoint are not
// read at open (recovery stays O(recent), not O(history)) and are
// faulted in lazily on the first State/CommitTime that needs them.
// Only reads ever touch the lazy range — statuses are written only for
// live transactions, which are all at or above any checkpoint — so a
// nil slot is never written into.
type Log struct {
	mu       sync.Mutex
	dev      device.Manager
	status   [][]byte // cached status pages, index 0 = control page
	times    [][]byte
	dirtyS   map[int]bool
	dirtyT   map[int]bool
	reserved XID
	ckpt     XID
	fresh    bool // this OpenLog created the volume (bootstrap ran)

	lazyLoads int64 // pages faulted in below the checkpoint (tests/metrics)
	forces    int64 // successful full forces
	repairs   int64 // zero-commit-time commits converted to aborts at open
}

const logMagic = 0x1993_0426_494e_5646 // "INVF", April 1993

// xidReserveChunk is how many XIDs are reserved per control-page force.
const xidReserveChunk = 4096

// OpenLog opens (or initialises) the transaction logs on dev. The
// status and time relations are created if missing. Pages covering
// XIDs at or above the persisted checkpoint are read eagerly — they
// are the ones recovery and visibility checks will consult — while
// older pages load on demand.
func OpenLog(dev device.Manager) (*Log, error) {
	l := &Log{
		dev:    dev,
		dirtyS: make(map[int]bool),
		dirtyT: make(map[int]bool),
	}
	if err := dev.Create(StatusLogRel); err != nil {
		return nil, err
	}
	if err := dev.Create(TimeLogRel); err != nil {
		return nil, err
	}
	n, err := dev.NPages(StatusLogRel)
	if err != nil {
		return nil, err
	}
	nt, err := dev.NPages(TimeLogRel)
	if err != nil {
		return nil, err
	}
	l.status = make([][]byte, n)
	l.times = make([][]byte, nt)
	if n == 0 {
		// Fresh database: create the control page, mark bootstrap
		// committed.
		ctrl := make([]byte, device.PageSize)
		binary.LittleEndian.PutUint64(ctrl[0:], logMagic)
		l.status = append(l.status, ctrl)
		l.dirtyS[0] = true
		l.fresh = true
		l.reserved = BootstrapXID + 1
		l.setReserved(l.reserved)
		l.setStatus(BootstrapXID, StatusCommitted)
		l.setCommitTime(BootstrapXID, 1)
		if err := l.Force(); err != nil {
			return nil, err
		}
		return l, nil
	}
	if err := l.readPage(StatusLogRel, l.status, 0); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(l.status[0][0:]) != logMagic {
		return nil, fmt.Errorf("txn: status log corrupt (bad magic)")
	}
	l.reserved = XID(binary.LittleEndian.Uint32(l.status[0][8:]))
	l.ckpt = XID(binary.LittleEndian.Uint32(l.status[0][12:]))
	// Eager window: everything the checkpoint does not cover. With no
	// checkpoint ever taken this is every page — the pre-checkpoint
	// behaviour, byte for byte.
	firstS, _, _ := statusLoc(l.ckpt)
	firstT, _ := timeLoc(l.ckpt)
	for p := firstS; p < len(l.status); p++ {
		if err := l.readPage(StatusLogRel, l.status, p); err != nil {
			return nil, err
		}
	}
	for p := firstT; p < len(l.times); p++ {
		if err := l.readPage(TimeLogRel, l.times, p); err != nil {
			return nil, err
		}
	}
	if err := l.repairZeroTimes(); err != nil {
		return nil, err
	}
	return l, nil
}

// repairZeroTimes converts committed transactions with no commit time
// to aborted. The force path writes status pages before time pages and
// only then syncs, so a crash inside the unsynced window can leave a
// commit record durable while its commit time is not. Such a
// transaction was never acknowledged — Commit returns only after the
// sync — so aborting it is always safe, and leaving it committed would
// corrupt time travel: with CommitTime 0, the historical visibility
// check `CommitTime(x) <= asOf` holds for every instant, making the
// transaction's files visible at times before they were created.
//
// The scan covers [checkpoint, reserved): every XID below the
// checkpoint has its durably-final status (with its time forced by the
// same successful sync), and no XID at or above reserved was ever
// handed out. The pages involved are exactly the eagerly loaded window.
// The repair is idempotent — it only moves committed→aborted on a state
// recovery would otherwise misread — so a second crash during the
// repair force just repeats it.
func (l *Log) repairZeroTimes() error {
	lo := l.ckpt
	if lo <= BootstrapXID {
		lo = BootstrapXID + 1 // bootstrap always commits with time 1
	}
	for x := lo; x < l.reserved; x++ {
		pi, off, shift := statusLoc(x)
		if pi >= len(l.status) || l.status[pi] == nil {
			continue
		}
		if Status((l.status[pi][off]>>shift)&3) != StatusCommitted {
			continue
		}
		ti, toff := timeLoc(x)
		if ti < len(l.times) && l.times[ti] != nil &&
			binary.LittleEndian.Uint64(l.times[ti][toff:]) != 0 {
			continue
		}
		l.setStatus(x, StatusAborted)
		l.repairs++
	}
	if l.repairs > 0 {
		return l.Force()
	}
	return nil
}

// ZeroTimeRepairs reports how many committed-without-commit-time
// transactions this log converted to aborted when it was opened.
func (l *Log) ZeroTimeRepairs() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.repairs
}

// CheckZeroTimes reports any committed transaction in the recovery
// window that has no commit time — the torn-force state repairZeroTimes
// exists to heal. On a healthy (or freshly recovered) log it returns
// nothing; the scrubber calls it so operators can detect the state on a
// live database too.
func (l *Log) CheckZeroTimes() []XID {
	l.mu.Lock()
	defer l.mu.Unlock()
	var bad []XID
	lo := l.ckpt
	if lo <= BootstrapXID {
		lo = BootstrapXID + 1
	}
	for x := lo; x < l.reserved; x++ {
		pi, off, shift := statusLoc(x)
		if pi >= len(l.status) || l.status[pi] == nil {
			continue
		}
		if Status((l.status[pi][off]>>shift)&3) != StatusCommitted {
			continue
		}
		ti, toff := timeLoc(x)
		if ti < len(l.times) && l.times[ti] != nil &&
			binary.LittleEndian.Uint64(l.times[ti][toff:]) != 0 {
			continue
		}
		bad = append(bad, x)
	}
	return bad
}

// readPage fills one cache slot from the device (no-op if loaded).
func (l *Log) readPage(rel device.OID, pages [][]byte, pi int) error {
	if pages[pi] != nil {
		return nil
	}
	buf := make([]byte, device.PageSize)
	if err := l.dev.ReadPage(rel, uint32(pi), buf); err != nil {
		return err
	}
	pages[pi] = buf
	return nil
}

// lazyPage returns the page, faulting it in from the device if it sits
// in the lazy (below-checkpoint) range. Caller holds l.mu.
func (l *Log) lazyPage(rel device.OID, pages [][]byte, pi int) ([]byte, error) {
	if pages[pi] == nil {
		if err := l.readPage(rel, pages, pi); err != nil {
			return nil, err
		}
		l.lazyLoads++
	}
	return pages[pi], nil
}

func (l *Log) setReserved(x XID) {
	binary.LittleEndian.PutUint32(l.status[0][8:], uint32(x))
	l.dirtyS[0] = true
}

// Reserved reports the XID ceiling persisted by the control page; every
// XID ever handed out is below it.
func (l *Log) Reserved() XID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reserved
}

// ReserveThrough raises the persisted XID ceiling if needed, forcing
// the control page. Begin calls this in chunks so most transaction
// starts do no I/O.
func (l *Log) ReserveThrough(x XID) error {
	l.mu.Lock()
	if x < l.reserved {
		l.mu.Unlock()
		return nil
	}
	l.reserved = x + xidReserveChunk
	l.setReserved(l.reserved)
	l.mu.Unlock()
	return l.Force()
}

// Checkpoint records that every XID below x has its durably-final
// status on the device, then forces the control page (and any other
// dirty log pages). The next OpenLog reads only pages from x on,
// bounding recovery work by the recently active window instead of the
// whole transaction history. The checkpoint never regresses.
//
// Safety: callers pass a horizon — a bound below which no transaction
// is live. Every committed XID below the horizon had its commit record
// forced (with sync) before its Commit returned, so the on-device
// image of any still-dirty status page already contains those bits;
// transactions that never durably committed read as aborted from a
// stale page, which is exactly recovery's rule for them.
func (l *Log) Checkpoint(x XID) error {
	l.mu.Lock()
	if x <= l.ckpt {
		l.mu.Unlock()
		return nil
	}
	l.ckpt = x
	binary.LittleEndian.PutUint32(l.status[0][12:], uint32(x))
	l.dirtyS[0] = true
	l.mu.Unlock()
	return l.Force()
}

// CheckpointXID reports the persisted checkpoint (0 if none was ever
// taken).
func (l *Log) CheckpointXID() XID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckpt
}

// Bootstrapped reports whether this OpenLog created the volume — the
// database layer uses it to distinguish "fresh volume, apply the
// requested bootstrap parameters" from "existing volume, honor what
// the control page says".
func (l *Log) Bootstrapped() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fresh
}

// NamespaceShards reads the shard count persisted in the control page.
// 0 means the field was never written: a legacy single-shard volume.
func (l *Log) NamespaceShards() uint32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return binary.LittleEndian.Uint32(l.status[0][16:])
}

// SetNamespaceShards persists the shard count in the control page and
// forces it. Called exactly once, at bootstrap of an n>1 volume —
// single-shard volumes never write the field, which keeps their control
// page byte-identical to images written before it existed.
func (l *Log) SetNamespaceShards(n uint32) error {
	l.mu.Lock()
	binary.LittleEndian.PutUint32(l.status[0][16:], n)
	l.dirtyS[0] = true
	l.mu.Unlock()
	return l.Force()
}

// LazyLoads reports how many log pages were faulted in below the
// checkpoint since open — the recovery work the checkpoint deferred.
func (l *Log) LazyLoads() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lazyLoads
}

// LoadedPages reports how many status/time pages are resident, and how
// many exist in total — OpenLog after a checkpoint loads fewer than it
// would have.
func (l *Log) LoadedPages() (loaded, total int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range l.status {
		if p != nil {
			loaded++
		}
	}
	for _, p := range l.times {
		if p != nil {
			loaded++
		}
	}
	return loaded, len(l.status) + len(l.times)
}

// Forces reports how many full forces have succeeded.
func (l *Log) Forces() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.forces
}

// statusLoc maps an XID to (page index, byte offset, bit shift) in the
// status relation. Page 0 is the control page, so statuses start on
// page 1; the first 16 bytes of each status page are reserved.
func statusLoc(x XID) (pageIdx int, byteOff int, shift uint) {
	i := uint64(x)
	pageIdx = 1 + int(i/uint64(xidsPerStatusPage))
	rem := int(i % uint64(xidsPerStatusPage))
	byteOff = 16 + rem/4
	shift = uint((rem % 4) * 2)
	return
}

func timeLoc(x XID) (pageIdx, byteOff int) {
	i := uint64(x)
	return int(i / uint64(xidsPerTimePage)), int(i%uint64(xidsPerTimePage)) * 8
}

// ensureStatusPage grows the cached status relation through pageIdx.
func (l *Log) ensureStatusPage(pageIdx int) {
	for len(l.status) <= pageIdx {
		l.status = append(l.status, make([]byte, device.PageSize))
		l.dirtyS[len(l.status)-1] = true
	}
}

func (l *Log) ensureTimePage(pageIdx int) {
	for len(l.times) <= pageIdx {
		l.times = append(l.times, make([]byte, device.PageSize))
		l.dirtyT[len(l.times)-1] = true
	}
}

// setStatus records the 2-bit state of x. Caller holds l.mu or is in
// bootstrap. Statuses are only ever set for XIDs at or above every
// checkpoint (live transactions), so the page is never a lazy slot.
func (l *Log) setStatus(x XID, s Status) {
	pi, off, shift := statusLoc(x)
	l.ensureStatusPage(pi)
	b := l.status[pi][off]
	b &^= 3 << shift
	b |= byte(s&3) << shift
	l.status[pi][off] = b
	l.dirtyS[pi] = true
}

func (l *Log) setCommitTime(x XID, t int64) {
	pi, off := timeLoc(x)
	l.ensureTimePage(pi)
	binary.LittleEndian.PutUint64(l.times[pi][off:], uint64(t))
	l.dirtyT[pi] = true
}

// SetState records the state of x (and its commit time when s is
// StatusCommitted) in the cached log pages. Call Force to make it
// stable.
func (l *Log) SetState(x XID, s Status, commitTime int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.setStatus(x, s)
	if s == StatusCommitted {
		l.setCommitTime(x, commitTime)
	}
}

// State reads the recorded state of x. A page below the checkpoint is
// faulted in on first use; if that read fails the state is reported
// in-progress for this call only (nothing is cached), so a healed
// device answers correctly on the next call — the same transient-error
// posture data-page reads already have, where the heap fetch itself
// fails loudly before visibility is ever consulted.
func (l *Log) State(x XID) Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	pi, off, shift := statusLoc(x)
	if pi >= len(l.status) {
		return StatusInProgress
	}
	pg, err := l.lazyPage(StatusLogRel, l.status, pi)
	if err != nil {
		return StatusInProgress
	}
	return Status((pg[off] >> shift) & 3)
}

// CommitTime reads the recorded commit time of x (0 if none, or if a
// lazy page read failed — see State).
func (l *Log) CommitTime(x XID) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	pi, off := timeLoc(x)
	if pi >= len(l.times) {
		return 0
	}
	pg, err := l.lazyPage(TimeLogRel, l.times, pi)
	if err != nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(pg[off:]))
}

// Force writes every dirty log page through to the device. This is the
// only forced write a commit requires beyond the data pages themselves.
// The active request span is charged here rather than at the call
// sites, so forces outside commit (XID-ceiling reservation during
// Begin) show up in per-request attribution too.
func (l *Log) Force() error {
	// Forces are device-bound (a sync barrier each), so the wall-clock
	// read and the flight-recorder entry per force are noise; the
	// always-on timeline of forces is what makes a post-crash bundle
	// explain a stalled commit.
	w := obs.BeginWait(obs.WaitLogForce, "")
	t0 := time.Now()
	err := l.force()
	d := int64(time.Since(t0))
	w.End()
	obs.Active().AddCommitForce(d)
	outcome := ""
	if err != nil {
		outcome = "error: " + err.Error()
	}
	obs.Flight().RecordLifecycle("log_force", outcome, d, 1)
	return err
}

// force writes the dirty pages and syncs the device. Dirty bits are
// cleared only after the WHOLE force — including the sync barrier —
// has succeeded: a page that was written but never synced is not
// durable, and clearing its bit early would let the next force skip it
// forever, silently breaking the clean-implies-durable protocol the
// buffer pool already honors. l.mu is held across write+sync, so no
// new dirty bit can appear between the writes and the clear.
func (l *Log) force() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.forcePages(StatusLogRel, l.status, l.dirtyS); err != nil {
		return err
	}
	if err := l.forcePages(TimeLogRel, l.times, l.dirtyT); err != nil {
		return err
	}
	if err := l.dev.Sync(); err != nil {
		return err
	}
	for pi := range l.dirtyS {
		delete(l.dirtyS, pi)
	}
	for pi := range l.dirtyT {
		delete(l.dirtyT, pi)
	}
	l.forces++
	return nil
}

// forcePages writes rel's dirty pages, leaving the dirty set intact for
// the caller to clear after the sync barrier.
func (l *Log) forcePages(rel device.OID, pages [][]byte, dirty map[int]bool) error {
	n, err := l.dev.NPages(rel)
	if err != nil {
		return err
	}
	for int(n) < len(pages) {
		if _, err := l.dev.Extend(rel); err != nil {
			return err
		}
		n++
	}
	for pi := range dirty {
		if err := l.dev.WritePage(rel, uint32(pi), pages[pi]); err != nil {
			return err
		}
	}
	return nil
}
