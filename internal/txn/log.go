package txn

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/device"
	"repro/internal/obs"
)

// Reserved relation OIDs for the transaction logs. These relations are
// written through (forced) at commit; they are the only state recovery
// consults, which is why recovery is "essentially instantaneous".
const (
	StatusLogRel device.OID = 1
	TimeLogRel   device.OID = 2
)

const (
	xidsPerStatusPage = (device.PageSize - 16) * 4 // 2 bits each after header
	xidsPerTimePage   = device.PageSize / 8
)

// Log is the transaction status file plus the commit-time file. Pages
// are cached in memory and written through to the device on Force, so a
// crash can lose at most the statuses that were never forced — exactly
// the transactions that must be rolled back anyway.
//
// Page 0 of the status relation is a control page:
//
//	0..7   magic
//	8..11  reservedXID: all XIDs below this may have been handed out
//	12..15 reserved
type Log struct {
	mu       sync.Mutex
	dev      device.Manager
	status   [][]byte // cached status pages, index 0 = control page
	times    [][]byte
	dirtyS   map[int]bool
	dirtyT   map[int]bool
	reserved XID
}

const logMagic = 0x1993_0426_494e_5646 // "INVF", April 1993

// xidReserveChunk is how many XIDs are reserved per control-page force.
const xidReserveChunk = 4096

// OpenLog opens (or initialises) the transaction logs on dev. The
// status and time relations are created if missing.
func OpenLog(dev device.Manager) (*Log, error) {
	l := &Log{
		dev:    dev,
		dirtyS: make(map[int]bool),
		dirtyT: make(map[int]bool),
	}
	if err := dev.Create(StatusLogRel); err != nil {
		return nil, err
	}
	if err := dev.Create(TimeLogRel); err != nil {
		return nil, err
	}
	// Load existing pages.
	n, err := dev.NPages(StatusLogRel)
	if err != nil {
		return nil, err
	}
	for p := uint32(0); p < n; p++ {
		buf := make([]byte, device.PageSize)
		if err := dev.ReadPage(StatusLogRel, p, buf); err != nil {
			return nil, err
		}
		l.status = append(l.status, buf)
	}
	nt, err := dev.NPages(TimeLogRel)
	if err != nil {
		return nil, err
	}
	for p := uint32(0); p < nt; p++ {
		buf := make([]byte, device.PageSize)
		if err := dev.ReadPage(TimeLogRel, p, buf); err != nil {
			return nil, err
		}
		l.times = append(l.times, buf)
	}
	if len(l.status) == 0 {
		// Fresh database: create the control page, mark bootstrap
		// committed.
		ctrl := make([]byte, device.PageSize)
		binary.LittleEndian.PutUint64(ctrl[0:], logMagic)
		l.status = append(l.status, ctrl)
		l.dirtyS[0] = true
		l.reserved = BootstrapXID + 1
		l.setReserved(l.reserved)
		l.setStatus(BootstrapXID, StatusCommitted)
		l.setCommitTime(BootstrapXID, 1)
		if err := l.Force(); err != nil {
			return nil, err
		}
		return l, nil
	}
	if binary.LittleEndian.Uint64(l.status[0][0:]) != logMagic {
		return nil, fmt.Errorf("txn: status log corrupt (bad magic)")
	}
	l.reserved = XID(binary.LittleEndian.Uint32(l.status[0][8:]))
	return l, nil
}

func (l *Log) setReserved(x XID) {
	binary.LittleEndian.PutUint32(l.status[0][8:], uint32(x))
	l.dirtyS[0] = true
}

// Reserved reports the XID ceiling persisted by the control page; every
// XID ever handed out is below it.
func (l *Log) Reserved() XID {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.reserved
}

// ReserveThrough raises the persisted XID ceiling if needed, forcing
// the control page. Begin calls this in chunks so most transaction
// starts do no I/O.
func (l *Log) ReserveThrough(x XID) error {
	l.mu.Lock()
	if x < l.reserved {
		l.mu.Unlock()
		return nil
	}
	l.reserved = x + xidReserveChunk
	l.setReserved(l.reserved)
	l.mu.Unlock()
	return l.Force()
}

// statusLoc maps an XID to (page index, byte offset, bit shift) in the
// status relation. Page 0 is the control page, so statuses start on
// page 1; the first 16 bytes of each status page are reserved.
func statusLoc(x XID) (pageIdx int, byteOff int, shift uint) {
	i := uint64(x)
	pageIdx = 1 + int(i/uint64(xidsPerStatusPage))
	rem := int(i % uint64(xidsPerStatusPage))
	byteOff = 16 + rem/4
	shift = uint((rem % 4) * 2)
	return
}

func timeLoc(x XID) (pageIdx, byteOff int) {
	i := uint64(x)
	return int(i / uint64(xidsPerTimePage)), int(i%uint64(xidsPerTimePage)) * 8
}

// ensureStatusPage grows the cached status relation through pageIdx.
func (l *Log) ensureStatusPage(pageIdx int) {
	for len(l.status) <= pageIdx {
		l.status = append(l.status, make([]byte, device.PageSize))
		l.dirtyS[len(l.status)-1] = true
	}
}

func (l *Log) ensureTimePage(pageIdx int) {
	for len(l.times) <= pageIdx {
		l.times = append(l.times, make([]byte, device.PageSize))
		l.dirtyT[len(l.times)-1] = true
	}
}

// setStatus records the 2-bit state of x. Caller holds l.mu or is in
// bootstrap.
func (l *Log) setStatus(x XID, s Status) {
	pi, off, shift := statusLoc(x)
	l.ensureStatusPage(pi)
	b := l.status[pi][off]
	b &^= 3 << shift
	b |= byte(s&3) << shift
	l.status[pi][off] = b
	l.dirtyS[pi] = true
}

func (l *Log) setCommitTime(x XID, t int64) {
	pi, off := timeLoc(x)
	l.ensureTimePage(pi)
	binary.LittleEndian.PutUint64(l.times[pi][off:], uint64(t))
	l.dirtyT[pi] = true
}

// SetState records the state of x (and its commit time when s is
// StatusCommitted) in the cached log pages. Call Force to make it
// stable.
func (l *Log) SetState(x XID, s Status, commitTime int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.setStatus(x, s)
	if s == StatusCommitted {
		l.setCommitTime(x, commitTime)
	}
}

// State reads the recorded state of x.
func (l *Log) State(x XID) Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	pi, off, shift := statusLoc(x)
	if pi >= len(l.status) {
		return StatusInProgress
	}
	return Status((l.status[pi][off] >> shift) & 3)
}

// CommitTime reads the recorded commit time of x (0 if none).
func (l *Log) CommitTime(x XID) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	pi, off := timeLoc(x)
	if pi >= len(l.times) {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(l.times[pi][off:]))
}

// Force writes every dirty log page through to the device. This is the
// only forced write a commit requires beyond the data pages themselves.
// The active request span is charged here rather than at the call
// sites, so forces outside commit (XID-ceiling reservation during
// Begin) show up in per-request attribution too.
func (l *Log) Force() error {
	sp := obs.Active()
	if sp == nil {
		return l.force()
	}
	t0 := time.Now()
	err := l.force()
	sp.AddCommitForce(int64(time.Since(t0)))
	return err
}

func (l *Log) force() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.forcePages(StatusLogRel, l.status, l.dirtyS); err != nil {
		return err
	}
	if err := l.forcePages(TimeLogRel, l.times, l.dirtyT); err != nil {
		return err
	}
	return l.dev.Sync()
}

func (l *Log) forcePages(rel device.OID, pages [][]byte, dirty map[int]bool) error {
	n, err := l.dev.NPages(rel)
	if err != nil {
		return err
	}
	for int(n) < len(pages) {
		if _, err := l.dev.Extend(rel); err != nil {
			return err
		}
		n++
	}
	for pi := range dirty {
		if err := l.dev.WritePage(rel, uint32(pi), pages[pi]); err != nil {
			return err
		}
		delete(dirty, pi)
	}
	return nil
}
