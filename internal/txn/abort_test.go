package txn

// External-abort tests: the wire server's idle-session reaper (and
// shutdown path) ends transactions from outside the owning goroutine,
// so ending must be exactly-once and must cancel a lock wait the owner
// is blocked in.

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestReleaseAllCancelsQueuedWaiter(t *testing.T) {
	lm := NewLockManager()
	a := LockTag{Space: SpaceRelation, Rel: 1}
	if err := lm.Acquire(10, a, LockExclusive); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- lm.Acquire(11, a, LockExclusive) }()
	time.Sleep(20 * time.Millisecond) // let 11 queue behind 10

	lm.ReleaseAll(11) // external abort of the *waiter*
	if err := <-got; !errors.Is(err, ErrLockAborted) {
		t.Fatalf("cancelled waiter got %v, want ErrLockAborted", err)
	}

	// The queue entry is gone: releasing the holder leaves the lock free
	// for a newcomer, not granted to the cancelled waiter.
	lm.ReleaseAll(10)
	if err := lm.Acquire(12, a, LockExclusive); err != nil {
		t.Fatalf("lock not free after cancelled waiter: %v", err)
	}
	lm.ReleaseAll(12)
}

func TestExternalAbortUnblocksLockWait(t *testing.T) {
	m, _ := newManager(t)
	holder, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	a := LockTag{Space: SpaceRelation, Rel: 7}
	if err := holder.Lock(a, LockExclusive); err != nil {
		t.Fatal(err)
	}
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- tx.Lock(a, LockExclusive) }()
	time.Sleep(20 * time.Millisecond) // let tx block in Acquire

	// The reaper's view: abort tx from another goroutine. The blocked
	// Lock must return the cancellation error, not hang.
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := <-got; !errors.Is(err, ErrLockAborted) {
		t.Fatalf("blocked Lock after external abort = %v, want ErrLockAborted", err)
	}

	// Ending is exactly-once: the owner's own end loses cleanly.
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("second abort = %v, want ErrTxDone", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("commit after abort = %v, want ErrTxDone", err)
	}
	if !tx.Done() {
		t.Fatal("externally aborted tx not done")
	}
	if err := holder.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestExternalAbortDuringLockGrantLeaksNothing races Lock against an
// external end. Whatever the interleaving — the abort's ReleaseAll
// running before, during, or after the grant — no lock may remain held
// by the dead transaction: a grant that lands after ReleaseAll already
// ran would block the tag forever.
func TestExternalAbortDuringLockGrantLeaksNothing(t *testing.T) {
	m, _ := newManager(t)
	tag := LockTag{Space: SpaceRelation, Rel: 99}
	for i := 0; i < 200; i++ {
		tx, err := m.Begin()
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		var lockErr error
		go func() { defer wg.Done(); lockErr = tx.Lock(tag, LockExclusive) }()
		go func() { defer wg.Done(); tx.Abort() }()
		wg.Wait()
		if held := m.Locks().HeldBy(tx.ID()); len(held) != 0 {
			t.Fatalf("iter %d: aborted tx still holds %v (Lock err: %v)", i, held, lockErr)
		}
		// The tag must be immediately takeable by a fresh transaction.
		probe, err := m.Begin()
		if err != nil {
			t.Fatal(err)
		}
		got := make(chan error, 1)
		go func() { got <- probe.Lock(tag, LockExclusive) }()
		select {
		case err := <-got:
			if err != nil {
				t.Fatalf("iter %d: probe lock: %v", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("iter %d: tag leaked — still blocked after external abort", i)
		}
		if err := probe.Abort(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCommitAbortRaceExactlyOnce(t *testing.T) {
	m, _ := newManager(t)
	for i := 0; i < 50; i++ {
		tx, err := m.Begin()
		if err != nil {
			t.Fatal(err)
		}
		results := make(chan error, 2)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); results <- tx.Commit() }()
		go func() { defer wg.Done(); results <- tx.Abort() }()
		wg.Wait()
		close(results)
		var won, lost int
		for err := range results {
			switch {
			case err == nil:
				won++
			case errors.Is(err, ErrTxDone):
				lost++
			default:
				t.Fatalf("racing end returned %v", err)
			}
		}
		if won != 1 || lost != 1 {
			t.Fatalf("race %d: %d winners, %d losers; want exactly one each", i, won, lost)
		}
		if !tx.Done() {
			t.Fatalf("race %d: tx not done after both ends returned", i)
		}
	}
}
