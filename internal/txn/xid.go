// Package txn implements the transaction machinery of the no-overwrite
// storage manager: transaction identifiers, the transaction status file
// ("By using transaction start times and a special status file which
// indicates whether or not a transaction has committed, POSTGRES can
// present a transaction-consistent view of the database at any moment in
// history"), commit-time recording for fine-grained time travel,
// MVCC snapshots, and the standard two-phase locking protocol [GRAY76]
// that "allows concurrent access to files while preventing simultaneous
// changes from interfering with one another".
package txn

// XID identifies a transaction. XID 0 is invalid; XID 1 is the
// bootstrap transaction, considered committed at the beginning of time.
type XID uint32

// InvalidXID marks "no transaction" (e.g. a record's xmax before it is
// deleted).
const InvalidXID XID = 0

// BootstrapXID stamps records created while initialising a database.
const BootstrapXID XID = 1

// Status is the 2-bit commit state recorded in the status file.
type Status uint8

// Transaction states. A transaction that was in progress at a crash
// still reads as StatusInProgress from the log but is treated as
// aborted once it is no longer in the live set — that is the entire
// recovery algorithm: "Any updates that were in progress at the time of
// the crash, but had not committed, will be rolled back."
const (
	StatusInProgress Status = 0
	StatusCommitted  Status = 1
	StatusAborted    Status = 2
)

func (s Status) String() string {
	switch s {
	case StatusInProgress:
		return "in-progress"
	case StatusCommitted:
		return "committed"
	case StatusAborted:
		return "aborted"
	default:
		return "invalid"
	}
}
