package txn

import (
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/device"
	"repro/internal/obs"
)

// ErrDeadlock is returned to one participant of a lock cycle; its
// transaction should abort and may retry.
var ErrDeadlock = errors.New("txn: deadlock detected")

// ErrLockAborted is returned from a blocked Acquire whose transaction
// was ended from outside while it waited — the idle-session reaper or
// server shutdown aborted it, so the wait can never be satisfied.
var ErrLockAborted = errors.New("txn: lock wait aborted: transaction ended externally")

// LockMode is a lock strength.
type LockMode int

// Lock strengths: readers share, writers exclude.
const (
	LockShared LockMode = iota
	LockExclusive
)

// String renders the strength for catalogs and logs.
func (m LockMode) String() string {
	switch m {
	case LockShared:
		return "shared"
	case LockExclusive:
		return "exclusive"
	}
	return "unknown"
}

// LockSpace partitions the lock namespace so different kinds of
// resources cannot collide.
type LockSpace uint8

// Lock spaces used across the system.
const (
	SpaceRelation LockSpace = iota // whole-relation locks (file contents)
	SpaceName                      // (directory, filename) locks
	SpaceMeta                      // catalog and metadata locks
)

// String renders the space for catalogs and logs.
func (s LockSpace) String() string {
	switch s {
	case SpaceRelation:
		return "relation"
	case SpaceName:
		return "name"
	case SpaceMeta:
		return "meta"
	}
	return "unknown"
}

// LockTag names one lockable resource.
type LockTag struct {
	Space LockSpace
	Rel   device.OID
	Key   uint64
}

type lockWaiter struct {
	xid   XID
	mode  LockMode
	ready chan error
}

type lockState struct {
	holders map[XID]LockMode
	queue   []*lockWaiter
}

// waitEntry remembers where a blocked transaction is queued so an
// external abort can withdraw it. A transaction waits on at most one
// lock at a time (its thread is blocked in Acquire).
type waitEntry struct {
	tag LockTag
	w   *lockWaiter
}

// LockManager implements strict two-phase locking with deadlock
// detection over the waits-for graph. Locks are held until ReleaseAll
// at transaction end [GRAY76].
type LockManager struct {
	mu       sync.Mutex
	locks    map[LockTag]*lockState
	held     map[XID]map[LockTag]LockMode
	waitsFor map[XID]map[XID]bool
	waiting  map[XID]*waitEntry

	waits atomic.Int64 // acquisitions that had to queue (contention)

	waitNs atomic.Pointer[obs.Histogram] // queued-acquisition park time
}

// SetObs attaches a metrics registry; contended acquisitions record
// their park time in "txn.lock_wait_ns".
func (m *LockManager) SetObs(reg *obs.Registry) {
	if reg != nil {
		m.waitNs.Store(reg.Histogram("txn.lock_wait_ns"))
	}
}

// Waits reports how many lock acquisitions blocked behind a
// conflicting holder — the 2PL contention observable.
func (m *LockManager) Waits() int64 { return m.waits.Load() }

// NewLockManager returns an empty lock manager.
func NewLockManager() *LockManager {
	return &LockManager{
		locks:    make(map[LockTag]*lockState),
		held:     make(map[XID]map[LockTag]LockMode),
		waitsFor: make(map[XID]map[XID]bool),
		waiting:  make(map[XID]*waitEntry),
	}
}

func compatible(a, b LockMode) bool { return a == LockShared && b == LockShared }

// grantableLocked reports whether xid can take tag in mode given
// current holders. Caller holds m.mu.
func (m *LockManager) grantableLocked(ls *lockState, xid XID, mode LockMode) bool {
	for holder, hmode := range ls.holders {
		if holder == xid {
			continue // self-conflict handled by upgrade logic
		}
		if !compatible(mode, hmode) && !compatible(hmode, mode) {
			return false
		}
		if mode == LockExclusive || hmode == LockExclusive {
			return false
		}
	}
	return true
}

func (m *LockManager) recordLocked(xid XID, tag LockTag, mode LockMode, ls *lockState) {
	if cur, ok := ls.holders[xid]; !ok || mode > cur {
		ls.holders[xid] = mode
	}
	h := m.held[xid]
	if h == nil {
		h = make(map[LockTag]LockMode)
		m.held[xid] = h
	}
	if cur, ok := h[tag]; !ok || mode > cur {
		h[tag] = mode
	}
}

// wouldDeadlockLocked reports whether adding edges waiter→holders
// creates a cycle back to waiter. Caller holds m.mu.
func (m *LockManager) wouldDeadlockLocked(waiter XID, blockers map[XID]bool) bool {
	seen := map[XID]bool{}
	var dfs func(x XID) bool
	dfs = func(x XID) bool {
		if x == waiter {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for next := range m.waitsFor[x] {
			if dfs(next) {
				return true
			}
		}
		return false
	}
	for b := range blockers {
		if dfs(b) {
			return true
		}
	}
	return false
}

// Acquire takes tag in mode for xid, blocking behind conflicting
// holders. It returns ErrDeadlock if waiting would close a cycle.
// Re-acquiring a lock already held at equal or stronger mode is a
// no-op; holding Shared and asking for Exclusive is an upgrade.
func (m *LockManager) Acquire(xid XID, tag LockTag, mode LockMode) error {
	_, err := m.AcquireWaited(xid, tag, mode)
	return err
}

// AcquireWaited is Acquire plus a report of whether the request had to
// queue behind a conflicting holder — callers that attribute contention
// to a resource (per-shard lock-wait counters) need the distinction;
// the aggregate Waits counter cannot say where the wait happened.
func (m *LockManager) AcquireWaited(xid XID, tag LockTag, mode LockMode) (waited bool, err error) {
	m.mu.Lock()
	if cur, ok := m.held[xid][tag]; ok && cur >= mode {
		m.mu.Unlock()
		return false, nil
	}
	ls := m.locks[tag]
	if ls == nil {
		ls = &lockState{holders: make(map[XID]LockMode)}
		m.locks[tag] = ls
	}
	if m.grantableLocked(ls, xid, mode) {
		m.recordLocked(xid, tag, mode, ls)
		m.mu.Unlock()
		return false, nil
	}
	// Must wait. Compute blockers and check for deadlock first.
	blockers := make(map[XID]bool)
	for holder, hmode := range ls.holders {
		if holder == xid {
			continue
		}
		if mode == LockExclusive || hmode == LockExclusive {
			blockers[holder] = true
		}
	}
	if m.wouldDeadlockLocked(xid, blockers) {
		m.mu.Unlock()
		return false, ErrDeadlock
	}
	w := &lockWaiter{xid: xid, mode: mode, ready: make(chan error, 1)}
	ls.queue = append(ls.queue, w)
	m.waitsFor[xid] = blockers
	m.waiting[xid] = &waitEntry{tag: tag, w: w}
	m.waits.Add(1)
	m.mu.Unlock()

	h, sp := m.waitNs.Load(), obs.Active()
	var t0 time.Time
	if h != nil || sp != nil {
		t0 = time.Now()
	}
	// Publish the park as a wait event. The relation comes from the
	// lock tag, not the span: at OpenTx the lock is taken before the
	// span learns which relation it is touching, so during the park the
	// tag is the only attribution available. Data relations are named
	// "inv<oid>" (core.DataRelName's format).
	var rel string
	if tag.Space == SpaceRelation {
		rel = "inv" + strconv.FormatUint(uint64(tag.Rel), 10)
	}
	wev := obs.BeginWait(obs.WaitLockAcquire, rel)
	err = <-w.ready
	wev.End()
	if h != nil || sp != nil {
		d := int64(time.Since(t0))
		h.Observe(d)
		sp.AddLockWait(d)
	}
	return true, err
}

// ReleaseAll drops every lock xid holds and wakes newly grantable
// waiters. Called at commit or abort (strict 2PL). If xid is itself
// blocked in Acquire — an externally aborted transaction — the wait is
// withdrawn and the waiter unblocked with ErrLockAborted, so a reaped
// session's handler cannot sit in a lock queue forever (or worse, be
// granted a lock after its transaction ended).
func (m *LockManager) ReleaseAll(xid XID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.waitsFor, xid)
	if we, ok := m.waiting[xid]; ok {
		delete(m.waiting, xid)
		if ls := m.locks[we.tag]; ls != nil {
			for i, qw := range ls.queue {
				if qw == we.w {
					ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
					break
				}
			}
			m.wakeLocked(we.tag, ls)
			if len(ls.holders) == 0 && len(ls.queue) == 0 {
				delete(m.locks, we.tag)
			}
		}
		we.w.ready <- ErrLockAborted
	}
	tags := m.held[xid]
	delete(m.held, xid)
	for tag := range tags {
		ls := m.locks[tag]
		if ls == nil {
			continue
		}
		delete(ls.holders, xid)
		m.wakeLocked(tag, ls)
		if len(ls.holders) == 0 && len(ls.queue) == 0 {
			delete(m.locks, tag)
		}
	}
}

// wakeLocked grants queued waiters in FIFO order while they remain
// compatible, then refreshes the waits-for edges of everyone still
// queued (their old edges may point at released holders, and stale
// edges would let later cycles go undetected). Caller holds m.mu.
func (m *LockManager) wakeLocked(tag LockTag, ls *lockState) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		if !m.grantableLocked(ls, w.xid, w.mode) {
			break
		}
		ls.queue = ls.queue[1:]
		delete(m.waitsFor, w.xid)
		delete(m.waiting, w.xid)
		m.recordLocked(w.xid, tag, w.mode, ls)
		w.ready <- nil
	}
	for _, w := range ls.queue {
		blockers := make(map[XID]bool)
		for holder, hmode := range ls.holders {
			if holder == w.xid {
				continue
			}
			if w.mode == LockExclusive || hmode == LockExclusive {
				blockers[holder] = true
			}
		}
		m.waitsFor[w.xid] = blockers
	}
}

// LockDump is one row of the lock table as reported by DumpLocks:
// either a granted lock (one row per tag+holder, Granted=true, Waiters
// counting the tag's queue) or a queued request (Granted=false, Mode
// the requested strength).
type LockDump struct {
	Tag     LockTag
	Txn     XID
	Mode    LockMode
	Granted bool
	Waiters int
}

// DumpLocks snapshots the whole lock table under one short critical
// section: holders first, then queued waiters, per tag. The result is
// a consistent instant of the table — though by the time the caller
// reads it the table may have moved on.
func (m *LockManager) DumpLocks() []LockDump {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]LockDump, 0, len(m.locks))
	for tag, ls := range m.locks {
		for holder, mode := range ls.holders {
			out = append(out, LockDump{Tag: tag, Txn: holder, Mode: mode, Granted: true, Waiters: len(ls.queue)})
		}
		for _, w := range ls.queue {
			out = append(out, LockDump{Tag: tag, Txn: w.xid, Mode: w.mode, Granted: false, Waiters: len(ls.queue)})
		}
	}
	return out
}

// HeldBy reports the locks xid currently holds (for tests and the
// monitor).
func (m *LockManager) HeldBy(xid XID) map[LockTag]LockMode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[LockTag]LockMode, len(m.held[xid]))
	for t, md := range m.held[xid] {
		out[t] = md
	}
	return out
}
