package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/device"
)

// fakeTime returns a deterministic, strictly increasing time source.
func fakeTime() func() int64 {
	var mu sync.Mutex
	t := int64(1000)
	return func() int64 {
		mu.Lock()
		defer mu.Unlock()
		t += 10
		return t
	}
}

func newManager(t *testing.T) (*Manager, device.Manager) {
	t.Helper()
	dev := device.NewMem(nil, 0)
	log, err := OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(log)
	m.TimeSource = fakeTime()
	return m, dev
}

func TestCommitAndStatus(t *testing.T) {
	m, _ := newManager(t)
	tx, err := m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.StatusOf(tx.ID()); got != StatusInProgress {
		t.Fatalf("live tx status = %v", got)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := m.StatusOf(tx.ID()); got != StatusCommitted {
		t.Fatalf("committed tx status = %v", got)
	}
	if m.CommitTime(tx.ID()) == 0 {
		t.Fatal("no commit time recorded")
	}
}

func TestAbort(t *testing.T) {
	m, _ := newManager(t)
	tx, _ := m.Begin()
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := m.StatusOf(tx.ID()); got != StatusAborted {
		t.Fatalf("aborted tx status = %v", got)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("commit after abort: %v", err)
	}
}

func TestCrashRecoveryRollsBackInProgress(t *testing.T) {
	m, dev := newManager(t)
	committed, _ := m.Begin()
	if err := committed.Commit(); err != nil {
		t.Fatal(err)
	}
	inflight, _ := m.Begin()
	_ = inflight // never commits: the "crash"

	// Recovery: reopen the log on the same device.
	log2, err := OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(log2)
	if got := m2.StatusOf(committed.ID()); got != StatusCommitted {
		t.Fatalf("committed tx lost in crash: %v", got)
	}
	if got := m2.StatusOf(inflight.ID()); got != StatusAborted {
		t.Fatalf("in-flight tx not rolled back: %v", got)
	}
	// New XIDs must not collide with pre-crash ones.
	tx, err := m2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID() <= inflight.ID() {
		t.Fatalf("XID reuse after crash: %d <= %d", tx.ID(), inflight.ID())
	}
}

func TestSnapshotIsolation(t *testing.T) {
	m, _ := newManager(t)
	t1, _ := m.Begin()
	snapBefore := m.CurrentSnapshot()
	// Concurrent reader's snapshot taken while t1 runs.
	t2, _ := m.Begin()
	snapDuring := t2.Snapshot()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	// t1's effects: invisible to both earlier snapshots, visible to new.
	if snapBefore.CanSee(t1.ID(), InvalidXID) {
		t.Fatal("pre-existing snapshot sees later commit")
	}
	if snapDuring.CanSee(t1.ID(), InvalidXID) {
		t.Fatal("concurrent snapshot sees commit that happened after it")
	}
	if !m.CurrentSnapshot().CanSee(t1.ID(), InvalidXID) {
		t.Fatal("new snapshot blind to committed tx")
	}
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestOwnChangesVisible(t *testing.T) {
	m, _ := newManager(t)
	tx, _ := m.Begin()
	snap := tx.Snapshot()
	if !snap.CanSee(tx.ID(), InvalidXID) {
		t.Fatal("tx blind to own insert")
	}
	if snap.CanSee(tx.ID(), tx.ID()) {
		t.Fatal("tx sees record it deleted itself")
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

func TestTimeTravelSnapshots(t *testing.T) {
	m, _ := newManager(t)
	t1, _ := m.Begin()
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	time1 := m.CommitTime(t1.ID())

	t2, _ := m.Begin()
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	time2 := m.CommitTime(t2.ID())
	if time2 <= time1 {
		t.Fatalf("commit times not increasing: %d, %d", time1, time2)
	}

	// As of time1: t1 visible, t2 not. Record deleted by t2 visible.
	old := m.AsOf(time1)
	if !old.CanSee(t1.ID(), InvalidXID) {
		t.Fatal("asof misses earlier commit")
	}
	if old.CanSee(t2.ID(), InvalidXID) {
		t.Fatal("asof sees later commit")
	}
	if !old.CanSee(t1.ID(), t2.ID()) {
		t.Fatal("asof misses record later deleted")
	}
	if !old.Historical() {
		t.Fatal("asof snapshot not historical")
	}
	// As of time2: deletion visible.
	now := m.AsOf(time2)
	if now.CanSee(t1.ID(), t2.ID()) {
		t.Fatal("asof(time2) still sees deleted record")
	}
}

func TestCommitTimesMonotoneUnderBadClock(t *testing.T) {
	m, _ := newManager(t)
	m.TimeSource = func() int64 { return 5 } // stuck clock
	var last int64
	for i := 0; i < 5; i++ {
		tx, _ := m.Begin()
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		ct := m.CommitTime(tx.ID())
		if ct <= last {
			t.Fatalf("commit time not monotone: %d after %d", ct, last)
		}
		last = ct
	}
}

func TestLockSharedCompatible(t *testing.T) {
	lm := NewLockManager()
	tag := LockTag{Space: SpaceRelation, Rel: 1}
	if err := lm.Acquire(10, tag, LockShared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(11, tag, LockShared); err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(10)
	lm.ReleaseAll(11)
}

func TestLockExclusiveBlocks(t *testing.T) {
	lm := NewLockManager()
	tag := LockTag{Space: SpaceRelation, Rel: 1}
	if err := lm.Acquire(10, tag, LockExclusive); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan error, 1)
	go func() { acquired <- lm.Acquire(11, tag, LockExclusive) }()
	select {
	case <-acquired:
		t.Fatal("conflicting lock granted immediately")
	case <-time.After(20 * time.Millisecond):
	}
	lm.ReleaseAll(10)
	if err := <-acquired; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(11)
}

func TestLockUpgrade(t *testing.T) {
	lm := NewLockManager()
	tag := LockTag{Space: SpaceRelation, Rel: 1}
	if err := lm.Acquire(10, tag, LockShared); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(10, tag, LockExclusive); err != nil {
		t.Fatalf("sole-holder upgrade failed: %v", err)
	}
	// Another shared request must now block.
	acquired := make(chan error, 1)
	go func() { acquired <- lm.Acquire(11, tag, LockShared) }()
	select {
	case <-acquired:
		t.Fatal("shared granted against exclusive")
	case <-time.After(20 * time.Millisecond):
	}
	lm.ReleaseAll(10)
	if err := <-acquired; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(11)
}

func TestDeadlockDetected(t *testing.T) {
	lm := NewLockManager()
	a := LockTag{Space: SpaceRelation, Rel: 1}
	b := LockTag{Space: SpaceRelation, Rel: 2}
	if err := lm.Acquire(10, a, LockExclusive); err != nil {
		t.Fatal(err)
	}
	if err := lm.Acquire(11, b, LockExclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- lm.Acquire(10, b, LockExclusive) }()
	time.Sleep(20 * time.Millisecond) // let 10 start waiting on 11
	err := lm.Acquire(11, a, LockExclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("second edge of cycle: %v", err)
	}
	// Victim aborts, releasing its locks; the other waiter proceeds.
	lm.ReleaseAll(11)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	lm.ReleaseAll(10)
}

func TestHorizon(t *testing.T) {
	m, _ := newManager(t)
	t1, _ := m.Begin()
	t2, _ := m.Begin()
	if h := m.Horizon(); h != t1.ID() {
		t.Fatalf("horizon = %d, want %d", h, t1.ID())
	}
	if err := t1.Commit(); err != nil {
		t.Fatal(err)
	}
	if h := m.Horizon(); h != t2.ID() {
		t.Fatalf("horizon = %d, want %d", h, t2.ID())
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
	if h := m.Horizon(); h <= t2.ID() {
		t.Fatalf("idle horizon = %d", h)
	}
}

func TestOnEndHooks(t *testing.T) {
	m, _ := newManager(t)
	tx, _ := m.Begin()
	var got []bool
	tx.OnEnd(func(c bool) { got = append(got, c) })
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0] {
		t.Fatalf("hooks = %v", got)
	}
	tx2, _ := m.Begin()
	tx2.OnEnd(func(c bool) { got = append(got, c) })
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] {
		t.Fatalf("hooks = %v", got)
	}
}

func TestManyXIDsAcrossReserveChunks(t *testing.T) {
	m, dev := newManager(t)
	var lastID XID
	for i := 0; i < xidReserveChunk+10; i++ {
		tx, err := m.Begin()
		if err != nil {
			t.Fatal(err)
		}
		lastID = tx.ID()
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Recover and confirm no reuse.
	log2, err := OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	m2 := NewManager(log2)
	tx, err := m2.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID() <= lastID {
		t.Fatalf("XID %d reused after recovery (last was %d)", tx.ID(), lastID)
	}
	if got := m2.StatusOf(lastID); got != StatusCommitted {
		t.Fatalf("status lost across chunks: %v", got)
	}
}
