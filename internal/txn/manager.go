package txn

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Errors returned by the transaction manager.
var (
	ErrTxDone     = errors.New("txn: transaction already committed or aborted")
	ErrNestedTx   = errors.New("txn: nested transactions are not supported")
	ErrNoSuchTx   = errors.New("txn: no such transaction")
	ErrReadOnlyTx = errors.New("txn: historical snapshots may not be written")
)

// commitCacheSize is the committed-XID cache's slot count (a power of
// two; XIDs map to slots by low bits).
const commitCacheSize = 8192

// commitEntry is one cached commit outcome: the XID and its commit
// time. Only durably final commits are cached — a slot is written
// either after the status log force succeeded or after the transaction
// has left the live set — so a hit can answer both StatusOf and
// CommitTime without any lock.
type commitEntry struct {
	xid XID
	t   int64
}

// liveTx is the manager's record of one in-progress transaction: its
// wall-clock start (for the inv_transactions age column — never the
// injected TimeSource, which may be a simulated clock) and a
// first-writer-wins annotation naming the relation the transaction
// touched. The note is an atomic pointer so annotating takes only the
// manager's read lock.
type liveTx struct {
	startNs int64
	note    atomic.Pointer[string]
}

// Manager coordinates transactions: it hands out XIDs, tracks the live
// set, records outcomes in the status log, and owns the lock manager.
// The mutex is an RWMutex: visibility checks (StatusOf, snapshot
// construction, Horizon) take the read side, so MVCC reads do not
// contend with each other — only Begin and transaction end take it
// exclusively, and the hottest check of all, "did x commit?", is
// usually answered by the lock-free committed-XID cache.
type Manager struct {
	mu             sync.RWMutex
	log            *Log
	locks          *LockManager
	next           XID
	live           map[XID]*liveTx
	lastCommitTime int64

	commitCache                        [commitCacheSize]atomic.Pointer[commitEntry]
	statusCacheHits, statusCacheMisses atomic.Int64

	// TimeSource supplies commit timestamps (nanoseconds). It defaults
	// to wall-clock time; tests inject deterministic sources. Commit
	// times are forced monotone regardless.
	TimeSource func() int64

	// ForceData, when set, is invoked before the status log is forced
	// at commit: the storage layer hooks it to flush dirty data pages,
	// giving the no-overwrite manager durability without a WAL.
	ForceData func() error

	// CommitWindow, when positive, lets a batch leader hold its force
	// open this long while other live transactions exist outside the
	// batch, absorbing late committers into the same force. 0 (the
	// default) forces immediately — the right choice when syncs are
	// cheap or committers are rare; sync-bound deployments opt in.
	CommitWindow time.Duration

	// gc is the group-commit pipeline every Commit force goes through;
	// a solo committer leads a batch of one and performs exactly the
	// writes the old per-transaction path did, in the same order.
	gc    groupCommit
	gcObs atomic.Pointer[gcObs]

	forceNs atomic.Pointer[obs.Histogram] // full commit-force latency
}

// SetObs attaches a metrics registry: commits record their full force
// path (data flush + log force) in "txn.commit_force_ns", the
// group-commit pipeline records batch sizes, saved forces, and follower
// wait under "txn.group_commit.*", and the lock manager records
// contended-acquisition park time.
func (m *Manager) SetObs(reg *obs.Registry) {
	if reg == nil {
		return
	}
	m.forceNs.Store(reg.Histogram("txn.commit_force_ns"))
	m.gcObs.Store(&gcObs{
		batchSize:   reg.Histogram("txn.group_commit.batch_size"),
		forcesSaved: reg.Counter("txn.group_commit.forces_saved"),
		leaderWait:  reg.Histogram("txn.group_commit.leader_wait_ns"),
		batches:     reg.Counter("txn.group_commit.batches"),
	})
	m.locks.SetObs(reg)
}

// NewManager returns a manager over an opened status log. Transactions
// that were in progress at a crash read as in-progress from the log but
// are not in the live set, so they are treated as aborted — recovery is
// complete the moment this constructor returns.
func NewManager(log *Log) *Manager {
	return &Manager{
		log:            log,
		locks:          NewLockManager(),
		next:           log.Reserved(),
		live:           make(map[XID]*liveTx),
		lastCommitTime: 0,
		TimeSource:     func() int64 { return time.Now().UnixNano() },
	}
}

// Locks exposes the lock manager.
func (m *Manager) Locks() *LockManager { return m.locks }

// cacheCommit records a durably committed XID in the lock-free cache.
// Callers must only pass outcomes that can no longer change.
func (m *Manager) cacheCommit(x XID, t int64) {
	m.commitCache[uint64(x)&(commitCacheSize-1)].Store(&commitEntry{xid: x, t: t})
}

// cachedCommit reports x's commit time if the cache knows x committed.
func (m *Manager) cachedCommit(x XID) (int64, bool) {
	e := m.commitCache[uint64(x)&(commitCacheSize-1)].Load()
	if e != nil && e.xid == x {
		return e.t, true
	}
	return 0, false
}

// StatusCacheStats reports committed-XID cache hits and misses — the
// contention observable for the visibility-check fast path.
func (m *Manager) StatusCacheStats() (hits, misses int64) {
	return m.statusCacheHits.Load(), m.statusCacheMisses.Load()
}

// Log exposes the status log (for tests and the vacuum cleaner).
func (m *Manager) Log() *Log { return m.log }

// Tx is one transaction. Operations on a Tx are not safe for fully
// concurrent use — the paper's client library allows "only one
// transaction active at any time" per application — but ending a
// transaction (Commit or Abort) is serialised internally, so an
// external abort (the wire server's idle-session reaper, shutdown) may
// race a regular end: exactly one wins, the other gets ErrTxDone.
type Tx struct {
	mgr  *Manager
	id   XID
	snap *Snapshot

	mu     sync.Mutex
	ending bool // an end (commit or abort) has been claimed
	done   bool // the end completed; locks are released
	onEnd  []func(committed bool)
}

// claimEnd atomically claims the right to end the transaction; the
// second caller loses and must treat the transaction as finished.
func (tx *Tx) claimEnd() bool {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	if tx.ending {
		return false
	}
	tx.ending = true
	return true
}

// Begin starts a transaction with a transaction-consistent snapshot.
func (m *Manager) Begin() (*Tx, error) {
	m.mu.Lock()
	id := m.next
	m.next++
	needReserve := id+xidReserveChunk/2 >= m.log.Reserved()
	running := make(map[XID]bool, len(m.live))
	for x := range m.live {
		running[x] = true
	}
	m.live[id] = &liveTx{startNs: time.Now().UnixNano()}
	xmax := m.next
	m.mu.Unlock()

	if needReserve {
		if err := m.log.ReserveThrough(id); err != nil {
			// The transaction never existed as far as callers are
			// concerned, so it must not linger in the live set: a
			// leaked entry would pin Horizon() at this XID forever
			// (vacuum could never advance) and show up in
			// inv_transactions as an ageless ghost.
			m.mu.Lock()
			delete(m.live, id)
			m.mu.Unlock()
			return nil, err
		}
	}
	tx := &Tx{mgr: m, id: id}
	tx.snap = &Snapshot{mgr: m, self: id, xmax: xmax, running: running}
	return tx, nil
}

// ID reports the transaction's XID.
func (tx *Tx) ID() XID { return tx.id }

// Snapshot reports the transaction's consistent view.
func (tx *Tx) Snapshot() *Snapshot { return tx.snap }

// OnEnd registers a hook run after the transaction ends; committed
// reports the outcome. Hooks run in registration order.
func (tx *Tx) OnEnd(f func(committed bool)) {
	tx.mu.Lock()
	tx.onEnd = append(tx.onEnd, f)
	tx.mu.Unlock()
}

// Lock acquires tag in mode under strict 2PL for this transaction.
// An external end (the idle-session reaper, server shutdown) can race
// the acquisition: the pre-check below can read ending=false, the
// external abort then claims the end and runs ReleaseAll, and only
// afterwards does Acquire enqueue or grant — a lock nobody will ever
// release. The post-check closes that window: if the end was claimed
// while the lock was being granted, the grant is revoked.
func (tx *Tx) Lock(tag LockTag, mode LockMode) error {
	_, err := tx.LockWaited(tag, mode)
	return err
}

// LockWaited is Lock plus a report of whether the acquisition had to
// queue behind a conflicting holder, so callers can charge the wait to
// the resource being locked (per-shard namespace counters).
func (tx *Tx) LockWaited(tag LockTag, mode LockMode) (waited bool, err error) {
	tx.mu.Lock()
	ended := tx.ending
	tx.mu.Unlock()
	if ended {
		return false, ErrTxDone
	}
	waited, err = tx.mgr.locks.AcquireWaited(tx.id, tag, mode)
	if err != nil {
		return waited, err
	}
	tx.mu.Lock()
	ended = tx.ending
	tx.mu.Unlock()
	if ended {
		// The transaction's ReleaseAll may already have run and missed
		// this grant; releasing here is either the missing cleanup or a
		// harmless no-op racing the end's own ReleaseAll.
		tx.mgr.locks.ReleaseAll(tx.id)
		return waited, ErrTxDone
	}
	return waited, nil
}

// Commit makes the transaction's changes durable and visible through
// the group-commit pipeline: the committer takes a commit timestamp and
// enqueues; a batch leader forces dirty data pages once (via
// Manager.ForceData), publishes every member's commit record, and
// forces the status log once for the whole batch. A solo committer
// leads its own batch of one and performs exactly the old
// per-transaction sequence. If the batch force fails every member
// converges to abort, exactly as the single-committer path did.
func (tx *Tx) Commit() error {
	if !tx.claimEnd() {
		return ErrTxDone
	}
	m := tx.mgr
	// The registry histogram covers the whole force path (queue wait +
	// data flush + log force). The active span is charged inside
	// Log.Force itself for the leader — so forces outside commit (XID
	// reservation in Begin) are attributed too, and the leader's data
	// flush already charged its page writes as buffer writes — while a
	// follower charges its whole wait as commit-force time below.
	h := m.forceNs.Load()
	var f0 time.Time
	if h != nil || obs.Active() != nil {
		f0 = time.Now()
	}
	m.mu.Lock()
	t := m.TimeSource()
	if t <= m.lastCommitTime {
		t = m.lastCommitTime + 1
	}
	m.lastCommitTime = t
	m.mu.Unlock()

	err, led := m.commit(tx.id, t)
	if h != nil {
		h.Observe(int64(time.Since(f0)))
	}
	if !led {
		wait := int64(time.Since(f0))
		if sp := obs.Active(); sp != nil {
			// The leader's span was charged inside Log.Force and the
			// buffer writebacks; a follower's request really did spend
			// this wall time on commit durability, so charge the wait.
			sp.AddCommitForce(wait)
		}
		if o := m.gcObs.Load(); o != nil {
			o.leaderWait.Observe(wait)
		}
	}
	if err != nil {
		// forceBatch already converged this transaction to abort in the
		// cached log; finish so it cannot linger in the live set pinning
		// the horizon. A data-flush failure reports the raw error (the
		// transaction aborted cleanly before any commit record existed);
		// a log-force failure names the converged outcome because the
		// durable state is ambiguous until the next successful force.
		tx.finish(false)
		var be *batchError
		if errors.As(err, &be) && be.dataPhase {
			return be.err
		}
		return fmt.Errorf("txn: commit force failed, transaction aborted: %w", err)
	}
	// The commit record is on stable storage: the outcome is final, so
	// it may enter the lock-free cache. Caching before the force could
	// leak the transient committed state a failed force converts to an
	// abort.
	m.cacheCommit(tx.id, t)
	tx.finish(true)
	return nil
}

// Abort rolls the transaction back. Because storage is no-overwrite,
// rollback writes nothing to data pages: the records it inserted are
// simply never visible.
func (tx *Tx) Abort() error {
	if !tx.claimEnd() {
		return ErrTxDone
	}
	tx.mgr.log.SetState(tx.id, StatusAborted, 0)
	tx.finish(false)
	return nil
}

func (tx *Tx) finish(committed bool) {
	m := tx.mgr
	tx.mu.Lock()
	tx.done = true
	hooks := tx.onEnd
	tx.onEnd = nil
	tx.mu.Unlock()
	m.mu.Lock()
	delete(m.live, tx.id)
	m.mu.Unlock()
	m.locks.ReleaseAll(tx.id)
	for _, f := range hooks {
		f(committed)
	}
}

// Done reports whether the transaction has ended.
func (tx *Tx) Done() bool {
	tx.mu.Lock()
	defer tx.mu.Unlock()
	return tx.done
}

// StatusOf reports the effective state of x: live transactions are
// in-progress; transactions the log never saw commit or abort are
// aborted (they died in a crash).
func (m *Manager) StatusOf(x XID) Status {
	if _, ok := m.cachedCommit(x); ok {
		m.statusCacheHits.Add(1)
		return StatusCommitted
	}
	m.statusCacheMisses.Add(1)
	m.mu.RLock()
	_, liveNow := m.live[x]
	m.mu.RUnlock()
	if liveNow {
		return StatusInProgress
	}
	s := m.log.State(x)
	if s == StatusInProgress {
		return StatusAborted
	}
	if s == StatusCommitted {
		// x is not live, so its end has completed and the logged state
		// can no longer change: safe to cache. (While a commit's force
		// is still in flight the transaction is live, so the transient
		// committed state a failed force rolls back never gets here.)
		m.cacheCommit(x, m.log.CommitTime(x))
	}
	return s
}

// CommitTime reports when x committed (0 if it did not).
func (m *Manager) CommitTime(x XID) int64 {
	if t, ok := m.cachedCommit(x); ok {
		return t
	}
	return m.log.CommitTime(x)
}

// LastCommitTime reports the most recent commit timestamp.
func (m *Manager) LastCommitTime() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.lastCommitTime
}

// Horizon reports the oldest XID that any live transaction might still
// care about: the smallest live XID, or the next XID to be assigned if
// none are live. Records deleted by transactions that committed below
// the horizon are invisible to every current snapshot, so the vacuum
// cleaner may collect them.
func (m *Manager) Horizon() XID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	h := m.next
	for x := range m.live {
		if x < h {
			h = x
		}
	}
	return h
}

// Checkpoint persists the current horizon as the log's checkpoint XID
// and forces the control page: every transaction below the horizon is
// finished and its durable status already on the device, so the next
// recovery (OpenLog) reads only log pages from the horizon up —
// O(recently active), not O(history).
func (m *Manager) Checkpoint() error {
	return m.log.Checkpoint(m.Horizon())
}

// ActiveTxn is one live transaction as reported by ActiveTxns: its
// XID, wall-clock start time, and the relation annotation (empty until
// the transaction first touches a data relation).
type ActiveTxn struct {
	XID         XID
	StartUnixNs int64
	Note        string
}

// ActiveTxns snapshots the live transaction set under the read lock.
// Start times are wall-clock (never the injected TimeSource), so ages
// computed from them are meaningful even under a simulated clock.
func (m *Manager) ActiveTxns() []ActiveTxn {
	m.mu.RLock()
	out := make([]ActiveTxn, 0, len(m.live))
	for x, lt := range m.live {
		a := ActiveTxn{XID: x, StartUnixNs: lt.startNs}
		if p := lt.note.Load(); p != nil {
			a.Note = *p
		}
		out = append(out, a)
	}
	m.mu.RUnlock()
	return out
}

// AnnotateTx attaches a human-readable note (conventionally the first
// relation the transaction touched) to a live transaction. The first
// writer wins; later calls and calls for ended transactions are no-ops.
func (m *Manager) AnnotateTx(x XID, note string) {
	if note == "" {
		return
	}
	m.mu.RLock()
	lt := m.live[x]
	m.mu.RUnlock()
	if lt != nil {
		lt.note.CompareAndSwap(nil, &note)
	}
}

// AsOf returns a read-only snapshot of the database as it was at time t:
// "All transactions that had committed as of that time will be visible,
// so the file system state will be exactly the same as it was at that
// moment."
func (m *Manager) AsOf(t int64) *Snapshot {
	return &Snapshot{mgr: m, asOf: t}
}

// CurrentSnapshot returns a read-only snapshot of the latest committed
// state, outside any transaction.
func (m *Manager) CurrentSnapshot() *Snapshot {
	m.mu.RLock()
	running := make(map[XID]bool, len(m.live))
	for x := range m.live {
		running[x] = true
	}
	xmax := m.next
	m.mu.RUnlock()
	return &Snapshot{mgr: m, xmax: xmax, running: running}
}

// CurrentSnapshotFor returns a snapshot seeing the latest committed
// state plus self's own uncommitted changes. Under strict two-phase
// locking, mutations locate the row versions they supersede through
// such a *current read* — a transaction-start snapshot could miss a
// competitor's commit that happened between this transaction's start
// and its lock acquisition, producing write skew.
func (m *Manager) CurrentSnapshotFor(self XID) *Snapshot {
	m.mu.RLock()
	running := make(map[XID]bool, len(m.live))
	for x := range m.live {
		if x != self {
			running[x] = true
		}
	}
	xmax := m.next
	m.mu.RUnlock()
	return &Snapshot{mgr: m, self: self, xmax: xmax, running: running}
}

// Snapshot is a transaction-consistent view of the database, either the
// view of a running transaction or a historical ("time travel") view.
type Snapshot struct {
	mgr     *Manager
	self    XID // 0 when read-only or historical
	asOf    int64
	xmax    XID
	running map[XID]bool
}

// Self reports the owning transaction's XID (0 for read-only views).
func (s *Snapshot) Self() XID { return s.self }

// Historical reports whether this is a time-travel snapshot.
func (s *Snapshot) Historical() bool { return s.asOf != 0 }

// AsOfTime reports the time-travel instant (0 for current views).
func (s *Snapshot) AsOfTime() int64 { return s.asOf }

// xidVisible reports whether the effects of x are included in s.
func (s *Snapshot) xidVisible(x XID) bool {
	if x == InvalidXID {
		return false
	}
	if s.asOf != 0 {
		if s.mgr.StatusOf(x) != StatusCommitted {
			return false
		}
		return s.mgr.CommitTime(x) <= s.asOf
	}
	if x == s.self {
		return true
	}
	if x >= s.xmax || s.running[x] {
		return false
	}
	return s.mgr.StatusOf(x) == StatusCommitted
}

// CanSee decides record visibility from its xmin/xmax stamps: the
// inserting transaction must be visible and the deleting transaction
// (if any) must not be.
func (s *Snapshot) CanSee(xmin, xmax XID) bool {
	if !s.xidVisible(xmin) {
		return false
	}
	if xmax == InvalidXID {
		return true
	}
	return !s.xidVisible(xmax)
}
