package txn

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// commitWindowTick is the poll granularity of the leader's commit
// window: the leader re-checks for newly queued committers this often
// while the window is open.
const commitWindowTick = 100 * time.Microsecond

// groupCommit batches concurrent commit forces behind a single leader.
//
// The single-committer force path (data flush, status publication, log
// force, sync) is correct but pays one full force per transaction; under
// concurrent writers every committer serializes on the log mutex and the
// device sync. Group commit keeps the protocol and amortizes the price:
// committers enqueue their (XID, commit time) and the first to arrive
// while no force is in flight becomes the leader. The leader closes the
// batch, performs ONE data flush + status publication + log force + sync
// on behalf of every member, and delivers the shared outcome; committers
// arriving while a force is in flight queue for the next batch, and the
// finishing leader promotes one of them so batches chain without a gap.
//
// Ordering is the load-bearing part. A commit record may only reach the
// device after that transaction's data pages are durable, and Log.Force
// writes every dirty log page — including records published by
// transactions outside the closing batch. Publication therefore happens
// inside the leader, after its data flush and before its log force:
// a member's status is never in the cached log pages while any force
// that did not cover its data pages can run. (The failed single-committer
// convergence rule is preserved too: a failed batch marks every member
// aborted in the cached log, and each member finishes as an abort.)
type groupCommit struct {
	mu       sync.Mutex
	inFlight bool         // a leader is forcing; arrivals queue
	pending  []*commitReq // next batch, claimed whole by the next leader
}

// commitReq is one committer's seat in a batch: its commit record plus
// the channel its outcome (or a leadership grant) arrives on.
type commitReq struct {
	xid XID
	t   int64
	out chan commitOutcome
}

// commitOutcome is what a queued committer receives: either the batch
// verdict (err, possibly nil) or a promotion to leader of the batch it
// is sitting in.
type commitOutcome struct {
	promote bool
	err     error
}

// gcObs is the group-commit instrument set, resolved once in SetObs.
type gcObs struct {
	batchSize   *obs.Histogram // members per forced batch
	forcesSaved *obs.Counter   // forces avoided vs one-per-committer
	leaderWait  *obs.Histogram // ns a follower waited for its leader
	batches     *obs.Counter   // batches forced
}

// commit enqueues one committer and blocks until its batch is forced.
// Exactly one goroutine leads at a time; the caller either leads its
// own batch, is promoted to lead by the previous leader, or waits as a
// follower. Returns the batch outcome and whether this caller led (the
// caller charges trace spans differently for the two roles).
func (m *Manager) commit(xid XID, t int64) (error, bool) {
	g := &m.gc
	req := &commitReq{xid: xid, t: t, out: make(chan commitOutcome, 1)}
	g.mu.Lock()
	g.pending = append(g.pending, req)
	if !g.inFlight {
		g.inFlight = true
		g.mu.Unlock()
		return m.lead(req), true
	}
	g.mu.Unlock()
	w := obs.BeginWait(obs.WaitGroupCommit, "")
	res := <-req.out
	w.End()
	if res.promote {
		return m.lead(req), true
	}
	return res.err, false
}

// lead claims the whole pending queue as one batch, forces it, and
// hands the pipeline to a queued successor (if any) before waking the
// batch. The caller's own request is guaranteed to be in the claimed
// batch: requests enter pending before leadership is decided, and a
// promoted leader was still pending when promoted.
func (m *Manager) lead(own *commitReq) error {
	g := &m.gc
	g.mu.Lock()
	batch := g.pending
	g.pending = nil
	g.mu.Unlock()

	// Commit window (opt-in): concurrent committers arrive in phased
	// cohorts — whoever is mid-write when a force starts can only make
	// the batch after it, so steady state alternates a small batch and a
	// large one and the amortization stalls at half the forces. With a
	// window, a leader that knows more live transactions exist than its
	// batch covers holds the force briefly and absorbs late arrivals into
	// this batch. Absorption is safe exactly because it happens before
	// ForceData: an absorbed member's data pages are covered by this
	// batch's flush. Live read-only transactions may never commit, so the
	// window is bounded and default-off (sync-bound deployments opt in).
	if w := m.CommitWindow; w > 0 {
		deadline := time.Now().Add(w)
		wev := obs.BeginWait(obs.WaitCommitWindow, "")
		for {
			m.mu.RLock()
			live := len(m.live)
			m.mu.RUnlock()
			if live <= len(batch) || !time.Now().Before(deadline) {
				break
			}
			time.Sleep(commitWindowTick)
			g.mu.Lock()
			batch = append(batch, g.pending...)
			g.pending = nil
			g.mu.Unlock()
		}
		wev.End()
	}

	err := m.forceBatch(batch)
	obs.Flight().RecordLifecycle("group_commit", "", 0, int64(len(batch)))

	g.mu.Lock()
	if len(g.pending) > 0 {
		// Promote a queued committer so the next batch starts without
		// waiting for any follower to wake; inFlight stays true.
		g.pending[0].out <- commitOutcome{promote: true}
	} else {
		g.inFlight = false
	}
	g.mu.Unlock()

	if o := m.gcObs.Load(); o != nil {
		o.batches.Inc()
		o.batchSize.Observe(int64(len(batch)))
		o.forcesSaved.Add(int64(len(batch) - 1))
	}
	for _, r := range batch {
		if r != own {
			r.out <- commitOutcome{err: err}
		}
	}
	return err
}

// forceBatch makes one batch durable: one data flush, then every
// member's commit record published into the cached log pages, then one
// log force (which syncs). On any failure every member converges to
// abort in the cached log — exactly the single-committer rule — and the
// shared error is returned; errPhaseData distinguishes a data-flush
// failure (reported raw, as the old path did) from a log-force failure
// (wrapped with the aborted-outcome message).
func (m *Manager) forceBatch(batch []*commitReq) error {
	if m.ForceData != nil {
		if err := m.ForceData(); err != nil {
			for _, r := range batch {
				m.log.SetState(r.xid, StatusAborted, 0)
			}
			return &batchError{err: err, dataPhase: true}
		}
	}
	for _, r := range batch {
		m.log.SetState(r.xid, StatusCommitted, r.t)
	}
	if err := m.log.Force(); err != nil {
		// The batch's records may or may not have reached stable
		// storage before the force died, so the durable outcome is
		// ambiguous. Converge on abort: the cached log says aborted
		// (re-forced on the next successful Force). If the process dies
		// before another force, recovery may instead see some members
		// committed — each such member is internally consistent because
		// the whole batch's data pages were already forced.
		for _, r := range batch {
			m.log.SetState(r.xid, StatusAborted, 0)
		}
		return &batchError{err: err}
	}
	return nil
}

// batchError carries a batch failure plus which phase failed, so each
// member's Commit can shape its error exactly like the single-committer
// path did.
type batchError struct {
	err       error
	dataPhase bool
}

func (e *batchError) Error() string { return e.err.Error() }
func (e *batchError) Unwrap() error { return e.err }
