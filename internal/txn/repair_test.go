package txn

import (
	"encoding/binary"
	"testing"

	"repro/internal/device"
)

// Regression test for the torn commit force found by the torture
// harness: the log force writes status pages, then time pages, then
// syncs. A crash between the status write and the time write leaves a
// transaction whose status is committed but whose commit time is zero
// — and since every real commit time is ≥ 1, such a transaction is
// visible as of EVERY time, including instants before it ran, which
// breaks time travel. The sync never completed, so the commit was
// never acknowledged and aborting it on recovery is always safe.
// OpenLog must repair the state; before the repair existed this test
// fails with a committed status and CommitTime 0.
func TestRecoveryRepairsZeroCommitTime(t *testing.T) {
	dev := device.NewMem(nil, 0)
	l, err := OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	const x = XID(2)
	if err := l.ReserveThrough(16); err != nil {
		t.Fatal(err)
	}
	l.SetState(x, StatusCommitted, 12345)
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}

	// Simulate the torn force on the device: zero exactly the 8 bytes
	// of x's commit time (the bootstrap XID's time shares the page and
	// must survive).
	pi, off := timeLoc(x)
	buf := make([]byte, device.PageSize)
	if err := dev.ReadPage(TimeLogRel, uint32(pi), buf); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(buf[off:]); got != 12345 {
		t.Fatalf("commit time on device = %d, want 12345", got)
	}
	for i := 0; i < 8; i++ {
		buf[off+i] = 0
	}
	if err := dev.WritePage(TimeLogRel, uint32(pi), buf); err != nil {
		t.Fatal(err)
	}

	// Recovery: the committed-without-time transaction must come back
	// aborted, not committed-at-time-zero.
	l2, err := OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.State(x); got != StatusAborted {
		t.Fatalf("after recovery, State(%d) = %v, want aborted (commit time was lost)", x, got)
	}
	if n := l2.ZeroTimeRepairs(); n != 1 {
		t.Fatalf("ZeroTimeRepairs() = %d, want 1", n)
	}
	if bad := l2.CheckZeroTimes(); len(bad) != 0 {
		t.Fatalf("CheckZeroTimes() after repair = %v, want none", bad)
	}
	// The bootstrap commit on the same time page is untouched.
	if got := l2.State(BootstrapXID); got != StatusCommitted {
		t.Fatalf("bootstrap status = %v after repair", got)
	}
	if got := l2.CommitTime(BootstrapXID); got != 1 {
		t.Fatalf("bootstrap commit time = %d after repair", got)
	}

	// The repair is durable and idempotent: a third open finds nothing
	// to do.
	l3, err := OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if got := l3.State(x); got != StatusAborted {
		t.Fatalf("second recovery, State(%d) = %v, want aborted", x, got)
	}
	if n := l3.ZeroTimeRepairs(); n != 0 {
		t.Fatalf("second recovery repaired %d transactions, want 0", n)
	}
}

// A committed transaction below the checkpoint is never scanned (its
// pages may not even be loaded), and a zero that never hit the device
// needs no repair: a normal commit round-trips untouched.
func TestZeroTimeRepairLeavesHealthyCommitsAlone(t *testing.T) {
	dev := device.NewMem(nil, 0)
	l, err := OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.ReserveThrough(16); err != nil {
		t.Fatal(err)
	}
	l.SetState(2, StatusCommitted, 777)
	l.SetState(3, StatusAborted, 0)
	if err := l.Force(); err != nil {
		t.Fatal(err)
	}
	l2, err := OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if n := l2.ZeroTimeRepairs(); n != 0 {
		t.Fatalf("healthy log repaired %d transactions, want 0", n)
	}
	if got := l2.State(2); got != StatusCommitted {
		t.Fatalf("State(2) = %v, want committed", got)
	}
	if got := l2.CommitTime(2); got != 777 {
		t.Fatalf("CommitTime(2) = %d, want 777", got)
	}
	if got := l2.State(3); got != StatusAborted {
		t.Fatalf("State(3) = %v, want aborted", got)
	}
}
