// Checkpoint tests: the log control page remembers a low-water XID so
// recovery only eagerly reads the pages above it; everything below
// faults in lazily, with the same answers it would have given eagerly.
package txn_test

import (
	"testing"

	"repro/internal/device"
	"repro/internal/txn"
)

// populateLog reserves and commits XIDs 2..n with commit time == XID,
// forcing once at the end. Enough XIDs spill the time log across
// several pages, which is what gives the checkpoint something to skip.
func populateLog(t *testing.T, log *txn.Log, n uint32) {
	t.Helper()
	if err := log.ReserveThrough(txn.XID(n)); err != nil {
		t.Fatal(err)
	}
	for x := uint32(2); x <= n; x++ {
		log.SetState(txn.XID(x), txn.StatusCommitted, int64(x))
	}
	if err := log.Force(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointBoundsRecoveryLoad(t *testing.T) {
	dev := device.NewMem(nil, 0)
	log, err := txn.OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	populateLog(t, log, 1300)

	// Without a checkpoint, reopen is all-eager: every page resident.
	pre, err := txn.OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if loaded, total := pre.LoadedPages(); loaded != total {
		t.Fatalf("no checkpoint: reopen loaded %d/%d pages, want all", loaded, total)
	}

	if err := log.Checkpoint(txn.XID(1200)); err != nil {
		t.Fatal(err)
	}
	log2, err := txn.OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	if got := log2.CheckpointXID(); got != txn.XID(1200) {
		t.Fatalf("CheckpointXID after reopen = %d, want 1200", got)
	}
	loaded, total := log2.LoadedPages()
	if loaded >= total {
		t.Fatalf("checkpointed reopen loaded %d/%d pages, want fewer", loaded, total)
	}

	// History below the checkpoint still answers correctly, via lazy
	// fault-in, and the faulted pages become resident.
	if got := log2.State(txn.XID(5)); got != txn.StatusCommitted {
		t.Fatalf("State(5) below checkpoint = %v, want committed", got)
	}
	if got := log2.CommitTime(txn.XID(5)); got != 5 {
		t.Fatalf("CommitTime(5) below checkpoint = %d, want 5", got)
	}
	if log2.LazyLoads() == 0 {
		t.Fatal("reads below the checkpoint faulted no pages in")
	}
	if nowLoaded, _ := log2.LoadedPages(); nowLoaded <= loaded {
		t.Fatalf("loaded pages %d -> %d after lazy reads, want growth", loaded, nowLoaded)
	}
	// Above the checkpoint is the eager window: answered without
	// further lazy loads.
	lazy := log2.LazyLoads()
	if got := log2.State(txn.XID(1250)); got != txn.StatusCommitted {
		t.Fatalf("State(1250) above checkpoint = %v, want committed", got)
	}
	if log2.LazyLoads() != lazy {
		t.Fatal("read above the checkpoint took a lazy load")
	}
}

func TestCheckpointNeverRegresses(t *testing.T) {
	dev := device.NewMem(nil, 0)
	log, err := txn.OpenLog(dev)
	if err != nil {
		t.Fatal(err)
	}
	populateLog(t, log, 600)
	if err := log.Checkpoint(txn.XID(500)); err != nil {
		t.Fatal(err)
	}
	if err := log.Checkpoint(txn.XID(100)); err != nil {
		t.Fatal(err)
	}
	if got := log.CheckpointXID(); got != txn.XID(500) {
		t.Fatalf("checkpoint regressed to %d", got)
	}
}

// TestManagerCheckpointUsesHorizon: Manager.Checkpoint checkpoints at
// the oldest-active horizon, so statuses a live snapshot might still
// need stay in the eager window.
func TestManagerCheckpointUsesHorizon(t *testing.T) {
	rig := newCommitRig(t)
	for i := 0; i < 3; i++ {
		tx, err := rig.mgr.Begin()
		if err != nil {
			t.Fatal(err)
		}
		rig.insert(t, tx, "x")
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := rig.mgr.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := rig.mgr.Horizon()
	rig2 := rig.reopen(t)
	if got := rig2.mgr.Log().CheckpointXID(); got != want {
		t.Fatalf("persisted checkpoint = %d, want horizon %d", got, want)
	}
}
