package rules

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
)

func newEnv(t *testing.T) (*core.DB, *core.Session, *Engine) {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	sw.Register(device.NewJukebox(device.DefaultJukebox(), nil))
	var mu sync.Mutex
	tick := int64(1 << 30)
	db, err := core.Open(sw, core.Options{
		Buffers:      128,
		DefaultClass: "mem",
		TimeSource: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			tick += 1000
			return tick
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession("mao")
	return db, s, New(db)
}

func TestRuleValidation(t *testing.T) {
	_, s, e := newEnv(t)
	if err := e.Add(s, Rule{Name: "", Where: "size(file) > 1", TargetClass: "jukebox"}); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := e.Add(s, Rule{Name: "r", Where: "syntax error here(", TargetClass: "jukebox"}); err == nil {
		t.Fatal("bad predicate accepted")
	}
	if err := e.Add(s, Rule{Name: "r", Where: "size(file) > 1", TargetClass: "tape"}); err == nil {
		t.Fatal("unknown device class accepted")
	}
	if err := e.Add(s, Rule{Name: "r", Where: "size(file) > 1", TargetClass: "jukebox"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(s, Rule{Name: "r", Where: "size(file) > 2", TargetClass: "jukebox"}); err == nil {
		t.Fatal("duplicate rule name accepted")
	}
}

func TestApplyMigratesMatchingFiles(t *testing.T) {
	db, s, e := newEnv(t)
	if err := s.WriteFile("/big", make([]byte, 100_000), core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteFile("/small", make([]byte, 10), core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	err := e.Add(s, Rule{
		Name:        "big-files-to-jukebox",
		Where:       "size(file) > 50000",
		TargetClass: "jukebox",
	})
	if err != nil {
		t.Fatal(err)
	}
	moves, err := e.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].Path != "/big" || moves[0].To != "jukebox" || moves[0].From != "mem" {
		t.Fatalf("moves = %+v", moves)
	}
	snap := db.Manager().CurrentSnapshot()
	bigOID, err := db.Resolve(snap, "/big")
	if err != nil {
		t.Fatal(err)
	}
	if class, _ := db.Switch().HomeClass(bigOID); class != "jukebox" {
		t.Fatalf("big on %q", class)
	}
	smallOID, err := db.Resolve(snap, "/small")
	if err != nil {
		t.Fatal(err)
	}
	if class, _ := db.Switch().HomeClass(smallOID); class != "mem" {
		t.Fatalf("small on %q", class)
	}
	// Contents survive and remain readable after migration.
	data, err := s.ReadFile("/big")
	if err != nil || len(data) != 100_000 {
		t.Fatalf("migrated read: %d bytes, %v", len(data), err)
	}
	// Second apply is a no-op: already on target.
	moves, err = e.Apply(s)
	if err != nil || len(moves) != 0 {
		t.Fatalf("second apply: %+v %v", moves, err)
	}
}

func TestFirstMatchingRuleWins(t *testing.T) {
	_, s, e := newEnv(t)
	if err := s.WriteFile("/f", make([]byte, 1000), core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(s, Rule{Name: "first", Where: "size(file) > 100", TargetClass: "jukebox"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(s, Rule{Name: "second", Where: "size(file) > 10", TargetClass: "mem"}); err != nil {
		t.Fatal(err)
	}
	moves, err := e.Apply(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(moves) != 1 || moves[0].Rule != "first" {
		t.Fatalf("moves = %+v", moves)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	_, s, e := newEnv(t)
	want := []Rule{
		{Name: "a", Where: `size(file) > 1000 and owner(file) = "mao"`, TargetClass: "jukebox"},
		{Name: "b", Where: "mtime(file) < 12345", TargetClass: "mem"},
	}
	for _, r := range want {
		if err := e.Add(s, r); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Save(s, "/etc-migration-rules"); err != nil {
		t.Fatal(err)
	}
	e2 := New(s.DB())
	if err := e2.Load(s, "/etc-migration-rules"); err != nil {
		t.Fatal(err)
	}
	got := e2.Rules()
	if len(got) != len(want) {
		t.Fatalf("loaded %d rules", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rule %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// Malformed file rejected.
	if err := s.WriteFile("/bad-rules", []byte("no tabs here\n"), core.CreateOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := e2.Load(s, "/bad-rules"); err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("bad rules file: %v", err)
	}
}

func TestRemove(t *testing.T) {
	_, s, e := newEnv(t)
	if err := e.Add(s, Rule{Name: "r", Where: "size(file) > 1", TargetClass: "jukebox"}); err != nil {
		t.Fatal(err)
	}
	if !e.Remove("r") {
		t.Fatal("remove failed")
	}
	if e.Remove("r") {
		t.Fatal("double remove succeeded")
	}
	if len(e.Rules()) != 0 {
		t.Fatal("rules remain")
	}
}
