// Package rules implements the predicate-driven file migration service
// the paper describes under "Services Under Investigation": "Arbitrarily
// complex rules controlling the locations of files or groups of files
// would be declared to the database manager. When a file met the
// announced conditions, it would be moved from one location in the
// storage hierarchy to another."
//
// A rule is a POSTQUEL predicate plus a target device class; applying
// the rule set migrates every matching file that is not already on its
// target. Rule sets can be stored in the file system itself, so they
// are transaction-protected and time-travelable like everything else.
package rules

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/query"
)

// Rule is one migration policy.
type Rule struct {
	Name        string
	Where       string // POSTQUEL predicate over files
	TargetClass string // device class matching files move to
}

// Migration records one applied move.
type Migration struct {
	Rule string
	Path string
	From string
	To   string
}

// Engine evaluates migration rules against a database.
type Engine struct {
	db *core.DB
	q  *query.Engine

	mu    sync.Mutex
	rules []Rule
}

// New returns a rules engine for db.
func New(db *core.DB) *Engine {
	return &Engine{db: db, q: query.New(db)}
}

// Add declares a rule. The predicate is validated by running it against
// the current database before the rule is accepted.
func (e *Engine) Add(s *core.Session, r Rule) error {
	if r.Name == "" || r.TargetClass == "" || r.Where == "" {
		return fmt.Errorf("rules: rule needs name, where, and target class")
	}
	if _, err := e.db.Switch().Manager(r.TargetClass); err != nil {
		return err
	}
	if _, err := e.q.Run(s, probeQuery(r.Where)); err != nil {
		return fmt.Errorf("rules: bad predicate %q: %w", r.Where, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, have := range e.rules {
		if have.Name == r.Name {
			return fmt.Errorf("rules: rule %q already declared", r.Name)
		}
	}
	e.rules = append(e.rules, r)
	return nil
}

// Remove drops a rule by name.
func (e *Engine) Remove(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i, r := range e.rules {
		if r.Name == name {
			e.rules = append(e.rules[:i], e.rules[i+1:]...)
			return true
		}
	}
	return false
}

// Rules lists the declared rules.
func (e *Engine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Rule(nil), e.rules...)
}

func probeQuery(where string) string {
	return fmt.Sprintf(`retrieve (path(file)) where not isdir(file) and (%s)`, where)
}

// Apply evaluates every rule and migrates matching files to their
// target class. Earlier rules win when several match the same file in
// one pass. It returns the migrations performed.
func (e *Engine) Apply(s *core.Session) ([]Migration, error) {
	e.mu.Lock()
	rules := append([]Rule(nil), e.rules...)
	e.mu.Unlock()

	var out []Migration
	moved := make(map[string]bool)
	for _, r := range rules {
		res, err := e.q.Run(s, probeQuery(r.Where))
		if err != nil {
			return out, fmt.Errorf("rules: rule %q: %w", r.Name, err)
		}
		for _, row := range res.Rows {
			path := row[0].S
			if moved[path] {
				continue
			}
			snap := e.db.Manager().CurrentSnapshot()
			oid, err := e.db.Resolve(snap, path)
			if err != nil {
				continue // raced with an unlink
			}
			from, err := e.db.Switch().HomeClass(oid)
			if err != nil || from == r.TargetClass {
				continue
			}
			if err := s.Migrate(path, r.TargetClass); err != nil {
				return out, fmt.Errorf("rules: migrating %s: %w", path, err)
			}
			moved[path] = true
			out = append(out, Migration{Rule: r.Name, Path: path, From: from, To: r.TargetClass})
		}
	}
	return out, nil
}

// rulesFileFormat: one rule per line, "name<TAB>class<TAB>predicate".

// Save stores the rule set as a file inside the file system, making the
// policy itself transaction-protected and versioned.
func (e *Engine) Save(s *core.Session, path string) error {
	var buf bytes.Buffer
	for _, r := range e.Rules() {
		fmt.Fprintf(&buf, "%s\t%s\t%s\n", r.Name, r.TargetClass, r.Where)
	}
	return s.WriteFile(path, buf.Bytes(), core.CreateOpts{})
}

// Load replaces the rule set with one stored by Save.
func (e *Engine) Load(s *core.Session, path string) error {
	data, err := s.ReadFile(path)
	if err != nil {
		return err
	}
	var rules []Rule
	sc := bufio.NewScanner(bytes.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		parts := strings.SplitN(line, "\t", 3)
		if len(parts) != 3 {
			return fmt.Errorf("rules: malformed rule line %q in %s", line, path)
		}
		rules = append(rules, Rule{Name: parts[0], TargetClass: parts[1], Where: parts[2]})
	}
	if err := sc.Err(); err != nil {
		return err
	}
	e.mu.Lock()
	e.rules = rules
	e.mu.Unlock()
	return nil
}
