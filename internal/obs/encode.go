package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"repro/internal/rowenc"
)

// snapshotVersion is the wire format version of an encoded Snapshot.
// Bump it when the layout changes; decoders reject unknown versions so
// a newer daemon talking to an older client fails loudly, not
// garbled.
const snapshotVersion = 1

// EncodeSnapshot serializes a snapshot with the rowenc codec:
//
//	u32 version | u32 nCounters | (string name, i64 value)* |
//	u32 nGauges | (string name, i64 value)* |
//	u32 nHists  | (string name, i64 count, i64 sumNs,
//	               u32 nBuckets, i64*nBuckets)*
func EncodeSnapshot(s Snapshot) []byte {
	w := rowenc.NewWriter(256 + len(s.Hists)*(NumBuckets+4)*8)
	w.Uint32(snapshotVersion)
	w.Uint32(uint32(len(s.Counters)))
	for _, c := range s.Counters {
		w.String(c.Name).Int64(c.Value)
	}
	w.Uint32(uint32(len(s.Gauges)))
	for _, g := range s.Gauges {
		w.String(g.Name).Int64(g.Value)
	}
	w.Uint32(uint32(len(s.Hists)))
	for _, h := range s.Hists {
		w.String(h.Name).Int64(h.Count).Int64(h.SumNs)
		w.Uint32(NumBuckets)
		for _, b := range h.Buckets {
			w.Int64(b)
		}
	}
	return w.Done()
}

// DecodeSnapshot parses an encoded snapshot. The bucket count is
// carried explicitly so a peer built with a different NumBuckets is
// detected instead of misparsed.
func DecodeSnapshot(b []byte) (Snapshot, error) {
	var s Snapshot
	r := rowenc.NewReader(b)
	if v := r.Uint32(); r.Err() == nil && v != snapshotVersion {
		return s, fmt.Errorf("obs: snapshot version %d (want %d)", v, snapshotVersion)
	}
	n := int(r.Uint32())
	for i := 0; i < n && r.Err() == nil; i++ {
		s.Counters = append(s.Counters, NamedValue{r.String(), r.Int64()})
	}
	n = int(r.Uint32())
	for i := 0; i < n && r.Err() == nil; i++ {
		s.Gauges = append(s.Gauges, NamedValue{r.String(), r.Int64()})
	}
	n = int(r.Uint32())
	for i := 0; i < n && r.Err() == nil; i++ {
		var h HistogramSnapshot
		h.Name = r.String()
		h.Count = r.Int64()
		h.SumNs = r.Int64()
		nb := int(r.Uint32())
		if r.Err() == nil && nb != NumBuckets {
			return s, fmt.Errorf("obs: histogram %q has %d buckets (want %d)", h.Name, nb, NumBuckets)
		}
		for j := 0; j < nb && r.Err() == nil; j++ {
			h.Buckets[j] = r.Int64()
		}
		s.Hists = append(s.Hists, h)
	}
	if err := r.Err(); err != nil {
		return s, err
	}
	return s, nil
}

// shardSeries matches the per-shard segment in metric names like
// "buffer.shard03.hit_ns".
var shardSeries = regexp.MustCompile(`\.shard[0-9]+\.`)

// MergeShards folds per-shard histogram series into one series per
// family (".shardNN." collapsed to "."), so human-facing output shows
// one distribution per layer while /metrics retains full detail.
// Counters and gauges are folded the same way (summed); non-shard
// entries pass through unchanged.
func MergeShards(s Snapshot) Snapshot {
	var out Snapshot
	fold := func(vals []NamedValue) []NamedValue {
		sums := map[string]int64{}
		order := []string{}
		for _, v := range vals {
			name := shardSeries.ReplaceAllString(v.Name, ".")
			if _, ok := sums[name]; !ok {
				order = append(order, name)
			}
			sums[name] += v.Value
		}
		sort.Strings(order)
		merged := make([]NamedValue, 0, len(order))
		for _, name := range order {
			merged = append(merged, NamedValue{name, sums[name]})
		}
		return merged
	}
	out.Counters = fold(s.Counters)
	out.Gauges = fold(s.Gauges)

	hists := map[string]*HistogramSnapshot{}
	horder := []string{}
	for _, h := range s.Hists {
		name := shardSeries.ReplaceAllString(h.Name, ".")
		if m, ok := hists[name]; ok {
			m.Merge(h)
		} else {
			merged := h
			merged.Name = name
			hists[name] = &merged
			horder = append(horder, name)
		}
	}
	sort.Strings(horder)
	for _, name := range horder {
		out.Hists = append(out.Hists, *hists[name])
	}
	return out
}

// FormatText renders a snapshot for terminals (`inv stats`): counters
// and gauges in stable sorted order with aligned values, then one line
// per histogram with count, mean, and p50/p95/p99. Per-shard series
// are pre-merged for readability.
func FormatText(s Snapshot) string {
	s = MergeShards(s)
	var b strings.Builder
	width := 0
	for _, v := range s.Counters {
		if len(v.Name) > width {
			width = len(v.Name)
		}
	}
	for _, v := range s.Gauges {
		if len(v.Name) > width {
			width = len(v.Name)
		}
	}
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, v := range s.Counters {
			fmt.Fprintf(&b, "  %-*s %12d\n", width, v.Name, v.Value)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, v := range s.Gauges {
			fmt.Fprintf(&b, "  %-*s %12d\n", width, v.Name, v.Value)
		}
	}
	if len(s.Hists) > 0 {
		b.WriteString("latency histograms:\n")
		hw := 0
		for _, h := range s.Hists {
			if len(h.Name) > hw {
				hw = len(h.Name)
			}
		}
		for _, h := range s.Hists {
			fmt.Fprintf(&b, "  %-*s n=%-8d mean=%-9s p50=%-9s p95=%-9s p99=%s\n",
				hw, h.Name, h.Count,
				FormatNs(h.MeanNs()), FormatNs(h.Quantile(0.50)),
				FormatNs(h.Quantile(0.95)), FormatNs(h.Quantile(0.99)))
		}
	}
	return b.String()
}

// FormatNs renders a nanosecond duration compactly (852ns, 14.2µs,
// 3.1ms, 2.50s).
func FormatNs(ns int64) string {
	switch {
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}
