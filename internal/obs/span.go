package obs

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Span is the per-request cost ledger. The wire server creates one per
// incoming request and activates it on the handling goroutine; the
// layers below (lock manager, buffer pool, simulated devices) then
// charge their waits and transfers to Active() without any parameter
// threading. All charge fields are atomics because eviction writebacks
// and commit flushes can overlap the request's own work under -race.
//
// Charges are disjoint by construction: LockWaitNs is time parked in
// the lock manager, BufLoadNs is time loading pages from the backend
// (including waiting on another goroutine's in-flight load), BufWriteNs
// is backend write time (writebacks and flushes), and CommitForceNs is
// log-force time only — the data-page flush inside a commit is already
// charged as BufWriteNs. DevSimNs is virtual 1993-clock charge, kept
// separate because it is not wall time.
type Span struct {
	Op      string
	txnID   atomic.Uint64
	rel     atomic.Pointer[string]
	outcome atomic.Pointer[string]

	// Trace context: set once by the server before the span is
	// activated (never concurrently), read when the span is flattened.
	// TraceHi/TraceLo form the 128-bit trace id shared by every op of a
	// logical client transaction; SpanID names this request within it;
	// ParentSpan is the client-side root span that minted the trace;
	// Attempt counts client retries of the same logical op (0 = first
	// try); Sampled carries the client's sampling decision.
	TraceHi, TraceLo uint64
	SpanID           uint64
	ParentSpan       uint64
	Attempt          uint8
	Sampled          bool

	BytesIn  int64
	BytesOut atomic.Int64

	StartUnixNs int64
	WallNs      atomic.Int64

	LockWaitNs    atomic.Int64
	BufLoadNs     atomic.Int64
	BufWriteNs    atomic.Int64
	CommitForceNs atomic.Int64
	DevSimNs      atomic.Int64

	BufHits      atomic.Int64
	BufMisses    atomic.Int64
	BufEvictions atomic.Int64
}

// NewSpan returns a span for the named operation.
func NewSpan(op string) *Span { return &Span{Op: op} }

// SetTxn records the transaction id serving this request.
func (s *Span) SetTxn(id uint64) {
	if s != nil {
		s.txnID.Store(id)
	}
}

// SetRel records the relation (file) the request touched. First writer
// wins: a request that opens several relations is attributed to the
// one it named.
func (s *Span) SetRel(name string) {
	if s == nil || s.rel.Load() != nil {
		return
	}
	s.rel.Store(&name)
}

// RelName reports the relation the span was attributed to ("" if none
// yet).
func (s *Span) RelName() string {
	if s == nil {
		return ""
	}
	if p := s.rel.Load(); p != nil {
		return *p
	}
	return ""
}

// SetOutcome records the final disposition (ok, error code, panic,
// reaped).
func (s *Span) SetOutcome(o string) {
	if s != nil {
		s.outcome.Store(&o)
	}
}

// AddLockWait charges lock-manager park time.
func (s *Span) AddLockWait(ns int64) {
	if s != nil {
		s.LockWaitNs.Add(ns)
	}
}

// AddBufLoad charges backend read time (or time spent waiting on
// another goroutine's in-flight load of the same page).
func (s *Span) AddBufLoad(ns int64) {
	if s != nil {
		s.BufLoadNs.Add(ns)
	}
}

// AddBufWrite charges backend write time (writebacks, flushes).
func (s *Span) AddBufWrite(ns int64) {
	if s != nil {
		s.BufWriteNs.Add(ns)
	}
}

// AddCommitForce charges log-force time at commit.
func (s *Span) AddCommitForce(ns int64) {
	if s != nil {
		s.CommitForceNs.Add(ns)
	}
}

// AddDevSim charges simulated (virtual-clock) device time.
func (s *Span) AddDevSim(ns int64) {
	if s != nil {
		s.DevSimNs.Add(ns)
	}
}

// BufHit counts a buffer-cache hit.
func (s *Span) BufHit() {
	if s != nil {
		s.BufHits.Add(1)
	}
}

// BufMiss counts a buffer-cache miss.
func (s *Span) BufMiss() {
	if s != nil {
		s.BufMisses.Add(1)
	}
}

// BufEvict counts an eviction this request performed to make room.
func (s *Span) BufEvict() {
	if s != nil {
		s.BufEvictions.Add(1)
	}
}

// AddBytesOut accumulates reply payload size.
func (s *Span) AddBytesOut(n int64) {
	if s != nil {
		s.BytesOut.Add(n)
	}
}

// Data flattens the span for the trace ring / JSON endpoint.
func (s *Span) Data() SpanData {
	d := SpanData{
		Op:          s.Op,
		Txn:         s.txnID.Load(),
		BytesIn:     s.BytesIn,
		BytesOut:    s.BytesOut.Load(),
		StartUnixNs: s.StartUnixNs,
		WallNs:      s.WallNs.Load(),
		LockWaitNs:  s.LockWaitNs.Load(),
		BufLoadNs:   s.BufLoadNs.Load(),
		BufWriteNs:  s.BufWriteNs.Load(),
		CommitNs:    s.CommitForceNs.Load(),
		DevSimNs:    s.DevSimNs.Load(),
		BufHits:     s.BufHits.Load(),
		BufMisses:   s.BufMisses.Load(),
		BufEvicts:   s.BufEvictions.Load(),
	}
	if p := s.rel.Load(); p != nil {
		d.Rel = *p
	}
	if p := s.outcome.Load(); p != nil {
		d.Outcome = *p
	}
	if s.TraceHi != 0 || s.TraceLo != 0 {
		d.TraceID = fmt.Sprintf("%016x%016x", s.TraceHi, s.TraceLo)
	}
	if s.SpanID != 0 {
		d.SpanID = fmt.Sprintf("%016x", s.SpanID)
	}
	if s.ParentSpan != 0 {
		d.ParentSpan = fmt.Sprintf("%016x", s.ParentSpan)
	}
	d.Attempt = int(s.Attempt)
	return d
}

// SpanData is the JSON-ready form of a finished span.
type SpanData struct {
	Op          string `json:"op"`
	Txn         uint64 `json:"txn,omitempty"`
	Rel         string `json:"rel,omitempty"`
	Outcome     string `json:"outcome"`
	TraceID     string `json:"trace_id,omitempty"`
	SpanID      string `json:"span_id,omitempty"`
	ParentSpan  string `json:"parent_span_id,omitempty"`
	Attempt     int    `json:"attempt,omitempty"`
	Seq         uint64 `json:"seq,omitempty"`
	BytesIn     int64  `json:"bytes_in"`
	BytesOut    int64  `json:"bytes_out"`
	StartUnixNs int64  `json:"start_unix_ns"`
	WallNs      int64  `json:"wall_ns"`
	LockWaitNs  int64  `json:"lock_wait_ns"`
	BufLoadNs   int64  `json:"buf_load_ns"`
	BufWriteNs  int64  `json:"buf_write_ns"`
	CommitNs    int64  `json:"commit_force_ns"`
	DevSimNs    int64  `json:"dev_sim_ns"`
	BufHits     int64  `json:"buf_hits"`
	BufMisses   int64  `json:"buf_misses"`
	BufEvicts   int64  `json:"buf_evictions"`
}

// Goroutine-local active-span storage. The wire server handles one
// request per connection goroutine, synchronously, so "the span this
// goroutine is serving" is well-defined. spanCount gates the slow path:
// when no spans are active anywhere in the process (benchmarks, unit
// tests, the single-process library), Active() is one atomic load and
// returns nil, so charge sites cost nothing.
var (
	spanCount atomic.Int64
	active    sync.Map // goid int64 -> *Span
)

// goid parses the current goroutine's id from the runtime stack header
// ("goroutine N [..."). ~1–2µs — only paid while a span is active on
// some goroutine.
func goid() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	b := buf[:n]
	b = bytes.TrimPrefix(b, []byte("goroutine "))
	if i := bytes.IndexByte(b, ' '); i >= 0 {
		b = b[:i]
	}
	id, _ := strconv.ParseInt(string(b), 10, 64)
	return id
}

// Activate binds s to the calling goroutine until Deactivate. Nested
// activation is not supported (the server activates exactly one span
// per request). Activate(nil) is equivalent to Deactivate: it removes
// the goroutine's slot from the goid map, so cleanup paths (including
// panic recovery) may call it unconditionally without leaking the slot
// — a leaked slot would pin spanCount above zero forever, making every
// charge site in the process pay the goid parse for the rest of its
// life.
func Activate(s *Span) {
	if s == nil {
		Deactivate()
		return
	}
	spanCount.Add(1)
	active.Store(goid(), s)
}

// ActiveSpanCount reports how many spans are bound to goroutines
// process-wide. Zero means every charge site is on the one-atomic-load
// fast path; tests use it to prove span slots do not leak.
func ActiveSpanCount() int64 { return spanCount.Load() }

// Deactivate unbinds the calling goroutine's span.
func Deactivate() {
	if _, ok := active.LoadAndDelete(goid()); ok {
		spanCount.Add(-1)
	}
}

// Active reports the span bound to the calling goroutine, or nil. The
// no-tracing fast path is a single atomic load.
func Active() *Span {
	if spanCount.Load() == 0 {
		return nil
	}
	if v, ok := active.Load(goid()); ok {
		return v.(*Span)
	}
	return nil
}

// spanIDSeed randomizes minted ids across process restarts without
// consulting anything but the wall clock once at startup. The virtual
// benchmark clock is never involved.
var (
	spanIDSeed = uint64(time.Now().UnixNano())
	spanIDSeq  atomic.Uint64
)

// mix64 is splitmix64's finalizer: cheap, stateless, and good enough to
// make sequential ids look unrelated.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewSpanID mints a process-unique non-zero 64-bit span id.
func NewSpanID() uint64 {
	for {
		if id := mix64(spanIDSeed + spanIDSeq.Add(1)); id != 0 {
			return id
		}
	}
}

// NewTraceID mints a 128-bit trace id as two halves. Servers use it
// for requests that arrive without a client trace context, so every
// span belongs to some trace.
func NewTraceID() (hi, lo uint64) {
	return NewSpanID(), NewSpanID()
}

// TraceRing keeps the slowest N recently finished spans, for the
// /traces/recent endpoint. Record is O(N) under a mutex but only runs
// once per finished request, on requests slow enough to matter.
//
// Every offered span consumes a sequence number whether or not it is
// kept; the ring's cursor is the last consumed number, so a scraper
// that remembers the cursor can ask "anything recorded since?" and
// tail the ring without re-reading entries it has already seen.
type TraceRing struct {
	mu    sync.Mutex
	seq   uint64
	cap   int
	spans []SpanData
}

// NewTraceRing returns a ring keeping the slowest n spans.
func NewTraceRing(n int) *TraceRing {
	if n <= 0 {
		n = 32
	}
	return &TraceRing{cap: n}
}

// Record offers a finished span to the ring. The ring keeps the
// slowest cap spans by wall time, newest-first among ties.
func (r *TraceRing) Record(d SpanData) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	d.Seq = r.seq
	if len(r.spans) < r.cap {
		r.spans = append(r.spans, d)
		return
	}
	// Replace the fastest entry if the newcomer is slower.
	min := 0
	for i := 1; i < len(r.spans); i++ {
		if r.spans[i].WallNs < r.spans[min].WallNs {
			min = i
		}
	}
	if d.WallNs >= r.spans[min].WallNs {
		r.spans[min] = d
	}
}

// Cursor reports the sequence number of the most recently recorded
// span (0 if none). Spans with Seq > a remembered cursor were recorded
// after it.
func (r *TraceRing) Cursor() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Slowest returns the ring's contents sorted slowest-first.
func (r *TraceRing) Slowest() []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]SpanData, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].WallNs > out[j-1].WallNs; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
