package obs

import (
	"math"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	// Exactly-on-boundary values land in the bucket whose bound they
	// equal (bounds are inclusive).
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0}, {1, 0}, {1023, 0}, {1024, 0},
		{1025, 1}, {2048, 1}, {2049, 2},
		{Bound(10), 10}, {Bound(10) + 1, 11},
		{Bound(NumBuckets - 2), NumBuckets - 2},
		{Bound(NumBuckets-2) + 1, NumBuckets - 1},
		{math.MaxInt64, NumBuckets - 1},
		{-5, 0},
	}
	for _, c := range cases {
		if got := bucketFor(c.ns); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
}

func TestQuantileAtBucketBoundaries(t *testing.T) {
	var h Histogram
	// 100 samples, all exactly at Bound(5): the whole bucket [Bound(4),
	// Bound(5)] holds every sample, so interpolation stays within it.
	for i := 0; i < 100; i++ {
		h.Observe(Bound(5))
	}
	s := h.Snapshot("t")
	for _, q := range []float64{0.5, 0.95, 0.99, 1.0} {
		got := s.Quantile(q)
		if got < Bound(4) || got > Bound(5) {
			t.Errorf("Quantile(%v) = %d, want within [%d,%d]", q, got, Bound(4), Bound(5))
		}
	}
	if s.Quantile(1.0) != Bound(5) {
		t.Errorf("Quantile(1.0) = %d, want upper bound %d", s.Quantile(1.0), Bound(5))
	}

	// Empty histogram.
	var empty HistogramSnapshot
	if empty.Quantile(0.99) != 0 {
		t.Errorf("empty Quantile = %d, want 0", empty.Quantile(0.99))
	}

	// Bimodal: half in bucket 0, half in bucket 8 — p50 must fall in the
	// first mode, p99 in the second.
	var bi Histogram
	for i := 0; i < 50; i++ {
		bi.Observe(100)
		bi.Observe(Bound(8))
	}
	bs := bi.Snapshot("bi")
	if p50 := bs.Quantile(0.50); p50 > Bound(0) {
		t.Errorf("bimodal p50 = %d, want <= %d", p50, Bound(0))
	}
	if p99 := bs.Quantile(0.99); p99 <= Bound(7) {
		t.Errorf("bimodal p99 = %d, want > %d", p99, Bound(7))
	}

	// Last (open-ended) bucket reports its lower bound.
	var top Histogram
	top.Observe(math.MaxInt64 / 2)
	if got := top.Snapshot("top").Quantile(0.99); got != Bound(NumBuckets-2) {
		t.Errorf("open-bucket quantile = %d, want %d", got, Bound(NumBuckets-2))
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.zero") // stays zero
	reg.Counter("wire.requests").Add(12345)
	reg.Counter("saturated").Add(math.MaxInt64)
	reg.Gauge("buffer.capacity").Set(64)
	reg.Gauge("neg").Set(-7)
	h := reg.Histogram("wire.op.read_ns")
	h.Observe(0)
	h.Observe(1024)
	h.Observe(math.MaxInt64)
	reg.Histogram("empty_ns")

	want := reg.Snapshot()
	got, err := DecodeSnapshot(EncodeSnapshot(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}

	// Zero-value snapshot survives too.
	got, err = DecodeSnapshot(EncodeSnapshot(Snapshot{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Counters)+len(got.Gauges)+len(got.Hists) != 0 {
		t.Fatalf("empty snapshot round trip = %+v", got)
	}

	// Truncated payloads error instead of misparsing.
	enc := EncodeSnapshot(want)
	if _, err := DecodeSnapshot(enc[:len(enc)/2]); err == nil {
		t.Fatal("truncated snapshot decoded without error")
	}
	if _, err := DecodeSnapshot([]byte{9, 9, 9, 9}); err == nil {
		t.Fatal("bad version decoded without error")
	}
}

func TestSnapshotStableOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z")
	reg.Counter("a")
	reg.Counter("m")
	s := reg.Snapshot()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name >= s.Counters[i].Name {
			t.Fatalf("counters not sorted: %v", s.Counters)
		}
	}
}

func TestMergeShards(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("buffer.shard00.hits").Add(3)
	reg.Counter("buffer.shard15.hits").Add(4)
	reg.Counter("wire.requests").Add(9)
	reg.Histogram("buffer.shard00.hit_ns").Observe(100)
	reg.Histogram("buffer.shard07.hit_ns").Observe(200)
	m := MergeShards(reg.Snapshot())
	var hits int64 = -1
	for _, c := range m.Counters {
		if c.Name == "buffer.hits" {
			hits = c.Value
		}
		if strings.Contains(c.Name, "shard") {
			t.Fatalf("unmerged shard counter %q", c.Name)
		}
	}
	if hits != 7 {
		t.Fatalf("merged buffer.hits = %d, want 7", hits)
	}
	if len(m.Hists) != 1 || m.Hists[0].Name != "buffer.hit_ns" || m.Hists[0].Count != 2 {
		t.Fatalf("merged hists = %+v", m.Hists)
	}
}

func TestActiveSpanPerGoroutine(t *testing.T) {
	if Active() != nil {
		t.Fatal("Active() non-nil with no span activated")
	}
	s := NewSpan("read")
	Activate(s)
	defer Deactivate()
	if Active() != s {
		t.Fatal("Active() did not return the activated span")
	}
	// Another goroutine must not see this goroutine's span.
	done := make(chan *Span)
	go func() { done <- Active() }()
	if other := <-done; other != nil {
		t.Fatalf("sibling goroutine saw span %+v", other)
	}
}

func TestSpanChargesConcurrent(t *testing.T) {
	s := NewSpan("write")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.AddBufLoad(10)
				s.BufMiss()
			}
		}()
	}
	wg.Wait()
	if got := s.BufLoadNs.Load(); got != 8000 {
		t.Fatalf("BufLoadNs = %d, want 8000", got)
	}
	if got := s.BufMisses.Load(); got != 800 {
		t.Fatalf("BufMisses = %d, want 800", got)
	}
}

func TestTraceRingKeepsSlowest(t *testing.T) {
	r := NewTraceRing(3)
	for _, w := range []int64{5, 1, 9, 3, 7, 2} {
		r.Record(SpanData{Op: "x", WallNs: w})
	}
	got := r.Slowest()
	if len(got) != 3 || got[0].WallNs != 9 || got[1].WallNs != 7 || got[2].WallNs != 5 {
		t.Fatalf("Slowest() = %+v", got)
	}
}

func TestHandlerMetricsAndTraces(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("wire.requests").Add(2)
	reg.Histogram("wire.op.read_ns").Observe(5000)
	ring := NewTraceRing(4)
	ring.Record(SpanData{Op: "read", WallNs: 123, Outcome: "ok"})
	refreshed := false
	h := Handler(reg, ring, func() { refreshed = true })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	body := rec.Body.String()
	if !refreshed {
		t.Fatal("refresh callback not invoked")
	}
	for _, want := range []string{
		"inv_wire_requests 2",
		"# TYPE inv_wire_op_read_seconds histogram",
		"inv_wire_op_read_seconds_count 1",
		`le="+Inf"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/traces/recent", nil))
	if !strings.Contains(rec.Body.String(), `"op": "read"`) {
		t.Errorf("/traces/recent = %s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 200 {
		t.Errorf("/debug/pprof/cmdline status %d", rec.Code)
	}
}

func TestFormatTextUnitsAndOrder(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.second").Add(2)
	reg.Counter("a.first").Add(1)
	reg.Gauge("g.cap").Set(64)
	reg.Histogram("lat_ns").Observe(int64(3 * time.Millisecond))
	out := FormatText(reg.Snapshot())
	ia, ib := strings.Index(out, "a.first"), strings.Index(out, "b.second")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("counters out of order:\n%s", out)
	}
	if !strings.Contains(out, "p99=") || !strings.Contains(out, "ms") {
		t.Fatalf("histogram line missing quantiles/units:\n%s", out)
	}
}

func TestFormatNs(t *testing.T) {
	cases := map[int64]string{
		999:           "999ns",
		1500:          "1.5µs",
		2_500_000:     "2.5ms",
		1_500_000_000: "1.50s",
	}
	for ns, want := range cases {
		if got := FormatNs(ns); got != want {
			t.Errorf("FormatNs(%d) = %q, want %q", ns, got, want)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Add(1)
	var g *Gauge
	g.Set(1)
	var h *Histogram
	h.Observe(1)
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	_ = r.Snapshot()
	var sp *Span
	sp.AddLockWait(1)
	sp.BufHit()
	sp.SetTxn(1)
	sp.SetRel("x")
	Activate(nil)
	var ring *TraceRing
	ring.Record(SpanData{})
	if ring.Slowest() != nil {
		t.Fatal("nil ring Slowest must be nil")
	}
}
