package obs

import "fmt"

// Metrics history: turning a live registry into a stream of recorded
// samples. The registry itself is cumulative state — counters only
// grow, histograms only accumulate — which is the wrong shape for a
// time series: replaying "what happened between 14:00 and 14:05" from
// cumulative values requires subtracting neighbouring scrapes anyway.
// HistoryDiffer does that subtraction at record time, so what lands in
// the history relations is already per-tick truth: counters as deltas,
// gauges as points, histograms as the p50/p95/p99 of the distribution
// so far plus the per-tick observation count.
//
// Nothing here reads any clock, virtual or wall — the differ is pure
// arithmetic over two snapshots. Timestamps belong to the recorder
// that owns the tick.

// Sample kinds. A counter sample's value is the delta since the
// previous tick; a gauge sample is the value at the tick; a quantile
// sample is the named quantile of the cumulative distribution at the
// tick (quantiles do not difference meaningfully, so they are recorded
// as points like gauges).
const (
	SampleCounter  = "counter"
	SampleGauge    = "gauge"
	SampleQuantile = "quantile"
)

// HistorySample is one recorded metric point within a tick.
type HistorySample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Kind   string  `json:"kind"`
	Value  float64 `json:"value"`
}

// HistoryDiffer converts successive registry snapshots (plus the wait
// profile, whose per-(op, rel) cells exist nowhere else) into per-tick
// samples. It remembers the previous tick's cumulative values; the
// first Diff differences against zero, so a fresh differ attached to a
// long-lived registry records the full cumulative state as its first
// tick — exactly what a recorder restarting after a crash wants.
type HistoryDiffer struct {
	prevCounters map[string]int64
	prevHistN    map[string]int64
	prevWait     map[string]uint32
}

// NewHistoryDiffer returns a differ with no previous tick.
func NewHistoryDiffer() *HistoryDiffer {
	return &HistoryDiffer{
		prevCounters: make(map[string]int64),
		prevHistN:    make(map[string]int64),
		prevWait:     make(map[string]uint32),
	}
}

// Diff produces the samples for one tick and advances the differ's
// previous-tick state. Zero counter deltas are skipped (an idle system
// records almost nothing); gauges are always recorded so a flat gauge
// still has points to plot; histograms with no observations yet are
// skipped entirely.
func (d *HistoryDiffer) Diff(snap Snapshot, wp WaitProfile) []HistorySample {
	var out []HistorySample
	for _, c := range snap.Counters {
		delta := c.Value - d.prevCounters[c.Name]
		d.prevCounters[c.Name] = c.Value
		if delta != 0 {
			out = append(out, HistorySample{
				Name: c.Name, Kind: SampleCounter, Value: float64(delta),
			})
		}
	}
	for _, g := range snap.Gauges {
		out = append(out, HistorySample{
			Name: g.Name, Kind: SampleGauge, Value: float64(g.Value),
		})
	}
	for _, h := range snap.Hists {
		if h.Count == 0 {
			continue
		}
		for _, q := range [...]struct {
			label string
			q     float64
		}{{"p50", 0.50}, {"p95", 0.95}, {"p99", 0.99}} {
			out = append(out, HistorySample{
				Name: h.Name, Labels: q.label, Kind: SampleQuantile,
				Value: float64(h.Quantile(q.q)),
			})
		}
		delta := h.Count - d.prevHistN[h.Name]
		d.prevHistN[h.Name] = h.Count
		if delta != 0 {
			out = append(out, HistorySample{
				Name: h.Name, Labels: "count", Kind: SampleCounter,
				Value: float64(delta),
			})
		}
	}
	for _, r := range wp.Rows {
		name := fmt.Sprintf("waitprof.%s.%s", r.Class, r.Event)
		labels := r.Op
		if r.Rel != "" {
			labels = r.Op + "/" + r.Rel
		}
		key := name + "\x00" + labels
		delta := int64(r.Samples) - int64(d.prevWait[key])
		d.prevWait[key] = r.Samples
		if delta != 0 {
			out = append(out, HistorySample{
				Name: name, Labels: labels, Kind: SampleCounter,
				Value: float64(delta),
			})
		}
	}
	return out
}
