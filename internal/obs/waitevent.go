package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rowenc"
)

// Wait-event sampling, pg_wait_sampling-style. Every blocking site in
// the engine (lock park, single-flight page load, frame latch, group
// commit, log force, backend I/O, background loops) publishes "what am
// I waiting on" to a per-goroutine slot for the duration of the wait; a
// background sampler walks the slots at a fixed wall-clock interval and
// accumulates (event, op, relation) counts into a bounded profile. The
// result answers "what is the server waiting on right now" the way
// pg_wait_sampling answers it for Postgres: by sampling, so the cost is
// paid by the sampler, not the waiters.
//
// Cost discipline mirrors spans: when no sampler is attached anywhere
// in the process, BeginWait is one atomic load and returns nil, so
// every instrumented site costs nothing. Publishing a wait while a
// sampler runs costs one goid lookup plus an atomic pointer store.
// Nothing here ever reads the virtual clock, so simulated benchmark
// digits are unaffected.

// WaitEvent identifies a blocking site. The taxonomy is deliberately
// coarse — one event per structurally distinct wait, not per call site —
// so profiles stay readable and the encoding stays stable.
type WaitEvent uint8

const (
	// WaitNone is the zero event; it never appears in a profile.
	WaitNone WaitEvent = iota
	// WaitLockAcquire is a transaction parked in the lock manager.
	WaitLockAcquire
	// WaitBufLoad is a goroutine waiting on another goroutine's
	// in-flight single-flight load of the same page.
	WaitBufLoad
	// WaitFrameLatch is contention on a buffer frame's page latch.
	WaitFrameLatch
	// WaitGroupCommit is a committer parked waiting for its group
	// commit leader to force the batch.
	WaitGroupCommit
	// WaitCommitWindow is a group-commit leader holding the force open
	// for followers to join.
	WaitCommitWindow
	// WaitLogForce is a log force (status/time page writes + sync).
	WaitLogForce
	// WaitBackendRead is a page read from the backing device.
	WaitBackendRead
	// WaitBackendWrite is a page write to the backing device.
	WaitBackendWrite
	// WaitBGWriterIdle is the background writer sleeping between
	// trickle rounds.
	WaitBGWriterIdle
	// WaitReaperIdle is the idle-session reaper between sweeps.
	WaitReaperIdle
	// WaitCheckpointIdle is the checkpointer between checkpoints.
	WaitCheckpointIdle

	numWaitEvents
)

// WaitClass groups events the way pg_stat_activity groups wait_event_type:
// LWLock for short structural latches, Lock for transaction locks, IO
// for device transfers, IPC for cross-goroutine handoff, Activity for
// background loops at rest.
type WaitClass string

const (
	ClassLock     WaitClass = "Lock"
	ClassLWLock   WaitClass = "LWLock"
	ClassBufferIO WaitClass = "BufferIO"
	ClassIO       WaitClass = "IO"
	ClassIPC      WaitClass = "IPC"
	ClassTimeout  WaitClass = "Timeout"
	ClassActivity WaitClass = "Activity"
)

var waitNames = [numWaitEvents]string{
	WaitNone:           "none",
	WaitLockAcquire:    "lock_acquire",
	WaitBufLoad:        "buf_load",
	WaitFrameLatch:     "frame_latch",
	WaitGroupCommit:    "group_commit",
	WaitCommitWindow:   "commit_window",
	WaitLogForce:       "log_force",
	WaitBackendRead:    "backend_read",
	WaitBackendWrite:   "backend_write",
	WaitBGWriterIdle:   "bgwriter_idle",
	WaitReaperIdle:     "reaper_idle",
	WaitCheckpointIdle: "checkpoint_idle",
}

var waitClasses = [numWaitEvents]WaitClass{
	WaitNone:           ClassActivity,
	WaitLockAcquire:    ClassLock,
	WaitBufLoad:        ClassBufferIO,
	WaitFrameLatch:     ClassLWLock,
	WaitGroupCommit:    ClassIPC,
	WaitCommitWindow:   ClassTimeout,
	WaitLogForce:       ClassIO,
	WaitBackendRead:    ClassIO,
	WaitBackendWrite:   ClassIO,
	WaitBGWriterIdle:   ClassActivity,
	WaitReaperIdle:     ClassActivity,
	WaitCheckpointIdle: ClassActivity,
}

// String names the event ("lock_acquire").
func (e WaitEvent) String() string {
	if e < numWaitEvents {
		return waitNames[e]
	}
	return fmt.Sprintf("wait%d", uint8(e))
}

// Class reports the event's wait class.
func (e WaitEvent) Class() WaitClass {
	if e < numWaitEvents {
		return waitClasses[e]
	}
	return ClassActivity
}

// waitState is what a waiting goroutine publishes: immutable once
// stored, swapped atomically so the sampler never sees a torn tag.
type waitState struct {
	event WaitEvent
	op    string
	rel   string
}

// WaitSlot is one goroutine's published wait state. Slots live in a
// process-global map keyed by goroutine id and are reclaimed by the
// sampler once idle long enough.
type WaitSlot struct {
	state     atomic.Pointer[waitState]
	idleSince atomic.Int64 // wall unix ns of last End; 0 while waiting
}

var (
	// waitGate counts attached samplers. Zero means BeginWait is a
	// single atomic load returning nil.
	waitGate  atomic.Int32
	waitSlots sync.Map // goid int64 -> *WaitSlot
)

// slotIdleReap is how long an idle slot survives before the sampler
// deletes it, bounding the slot map at roughly the number of goroutines
// that blocked recently.
const slotIdleReap = 10 * time.Second

func slotFor(id int64) *WaitSlot {
	if v, ok := waitSlots.Load(id); ok {
		return v.(*WaitSlot)
	}
	v, _ := waitSlots.LoadOrStore(id, &WaitSlot{})
	return v.(*WaitSlot)
}

// BeginWait publishes that the calling goroutine is blocked on event
// until the returned slot's End. Op is taken from the active span; rel
// is the explicit relation override (pass "" to use the span's). A nil
// return (no sampler attached) is safe to End.
func BeginWait(event WaitEvent, rel string) *WaitSlot {
	if waitGate.Load() == 0 {
		return nil
	}
	var op string
	if sp := Active(); sp != nil {
		op = sp.Op
		if rel == "" {
			rel = sp.RelName()
		}
	}
	return beginWait(event, op, rel)
}

// BeginWaitLoop publishes a wait for a background loop that has no
// span; loop names the actor ("bgwriter", "reaper", "checkpointer").
func BeginWaitLoop(event WaitEvent, loop string) *WaitSlot {
	if waitGate.Load() == 0 {
		return nil
	}
	return beginWait(event, loop, "")
}

func beginWait(event WaitEvent, op, rel string) *WaitSlot {
	s := slotFor(goid())
	s.idleSince.Store(0)
	s.state.Store(&waitState{event: event, op: op, rel: rel})
	return s
}

// End marks the wait over. Safe on a nil slot.
func (s *WaitSlot) End() {
	if s == nil {
		return
	}
	s.state.Store(nil)
	s.idleSince.Store(time.Now().UnixNano())
}

// WaitProfileRow is one (event, op, relation) cell of a sampled
// profile.
type WaitProfileRow struct {
	Class   string `json:"class"`
	Event   string `json:"event"`
	Op      string `json:"op,omitempty"`
	Rel     string `json:"rel,omitempty"`
	Samples uint32 `json:"samples"`
}

// WaitProfile is a point-in-time copy of a sampler's accumulated
// counts, rows sorted by (class, event, op, rel).
type WaitProfile struct {
	IntervalNs int64            `json:"interval_ns"`
	Rounds     int64            `json:"rounds"`
	Rows       []WaitProfileRow `json:"rows,omitempty"`
}

type waitKey struct {
	event   WaitEvent
	op, rel string
}

// maxWaitKeys bounds the profile map; past it, new (op, rel) pairs fold
// into a per-event overflow cell so a hostile op mix cannot grow the
// profile without bound.
const maxWaitKeys = 512

// waitOverflowLabel marks counts folded into an event's overflow cell.
const waitOverflowLabel = "(other)"

// DefaultWaitSamplingInterval is the sampling period servers use unless
// configured otherwise: coarse enough to be invisible in profiles,
// fine enough that a 100ms lock convoy shows up with ~10 samples.
const DefaultWaitSamplingInterval = 10 * time.Millisecond

// WaitSampler periodically snapshots every published wait slot into a
// bounded profile. Counts saturate at MaxUint32 rather than wrapping,
// so a weeks-long profile degrades to "a lot", never to a small lie.
type WaitSampler struct {
	interval time.Duration
	reg      *Registry

	mu     sync.Mutex
	prof   map[waitKey]uint32
	rounds int64

	stop chan struct{}
	done chan struct{}
}

// NewWaitSampler returns a sampler at the given interval (0 means
// DefaultWaitSamplingInterval). reg, if non-nil, receives a
// "wait.<class>.<event>" counter family mirroring the per-event totals
// for /metrics. Call Start to begin sampling.
func NewWaitSampler(interval time.Duration, reg *Registry) *WaitSampler {
	if interval <= 0 {
		interval = DefaultWaitSamplingInterval
	}
	return &WaitSampler{
		interval: interval,
		reg:      reg,
		prof:     make(map[waitKey]uint32),
	}
}

// Start opens the gate (instrumented sites begin publishing) and runs
// the sampling loop until Stop.
func (s *WaitSampler) Start() {
	if s == nil || s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	waitGate.Add(1)
	go s.loop()
}

// Stop halts sampling and closes the gate. The accumulated profile
// remains readable.
func (s *WaitSampler) Stop() {
	if s == nil || s.stop == nil {
		return
	}
	close(s.stop)
	<-s.done
	s.stop = nil
	waitGate.Add(-1)
}

func (s *WaitSampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.sampleOnce()
		}
	}
}

// sampleOnce walks every slot, accumulates non-idle states, and reaps
// slots idle past slotIdleReap.
func (s *WaitSampler) sampleOnce() {
	now := time.Now().UnixNano()
	type sampled struct{ st *waitState }
	var seen []sampled
	waitSlots.Range(func(k, v any) bool {
		slot := v.(*WaitSlot)
		if st := slot.state.Load(); st != nil {
			seen = append(seen, sampled{st})
		} else if idle := slot.idleSince.Load(); idle != 0 && now-idle > int64(slotIdleReap) {
			waitSlots.Delete(k)
		}
		return true
	})
	s.mu.Lock()
	s.rounds++
	var flightRows []WaitProfileRow
	for _, sm := range seen {
		k := waitKey{sm.st.event, sm.st.op, sm.st.rel}
		if _, ok := s.prof[k]; !ok && len(s.prof) >= maxWaitKeys {
			k = waitKey{sm.st.event, waitOverflowLabel, waitOverflowLabel}
		}
		if c := s.prof[k]; c < ^uint32(0) {
			s.prof[k] = c + 1
		}
		if s.reg != nil {
			s.reg.Counter(fmt.Sprintf("wait.%s.%s",
				sm.st.event.Class(), sm.st.event)).Inc()
		}
		// Activity-class waits (background loops at rest) are steady
		// state, not signal: filing them would emit one flight event per
		// round forever and churn the whole ring in seconds, evicting the
		// span history a crash dump exists to preserve.
		if sm.st.event.Class() != ClassActivity {
			flightRows = append(flightRows, WaitProfileRow{
				Class: string(sm.st.event.Class()), Event: sm.st.event.String(),
				Op: sm.st.op, Rel: sm.st.rel, Samples: 1,
			})
		}
	}
	s.mu.Unlock()
	if len(flightRows) > 0 {
		Flight().recordWaits(flightRows)
	}
}

// Snapshot copies the accumulated profile.
func (s *WaitSampler) Snapshot() WaitProfile {
	if s == nil {
		return WaitProfile{}
	}
	s.mu.Lock()
	p := WaitProfile{IntervalNs: int64(s.interval), Rounds: s.rounds}
	for k, v := range s.prof {
		p.Rows = append(p.Rows, WaitProfileRow{
			Class:   string(k.event.Class()),
			Event:   k.event.String(),
			Op:      k.op,
			Rel:     k.rel,
			Samples: v,
		})
	}
	s.mu.Unlock()
	sortWaitRows(p.Rows)
	return p
}

func sortWaitRows(rows []WaitProfileRow) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		return a.Rel < b.Rel
	})
}

// waitProfileVersion versions the wire encoding of a WaitProfile.
const waitProfileVersion = 1

// EncodeWaitProfile serializes a profile with the rowenc codec:
//
//	u32 version | i64 intervalNs | i64 rounds |
//	u32 nRows | (string class, string event, string op, string rel,
//	             u32 samples)*
func EncodeWaitProfile(p WaitProfile) []byte {
	w := rowenc.NewWriter(64 + len(p.Rows)*48)
	w.Uint32(waitProfileVersion)
	w.Int64(p.IntervalNs).Int64(p.Rounds)
	w.Uint32(uint32(len(p.Rows)))
	for _, r := range p.Rows {
		w.String(r.Class).String(r.Event).String(r.Op).String(r.Rel)
		w.Uint32(r.Samples)
	}
	return w.Done()
}

// DecodeWaitProfile parses an encoded profile, rejecting unknown
// versions loudly.
func DecodeWaitProfile(b []byte) (WaitProfile, error) {
	var p WaitProfile
	r := rowenc.NewReader(b)
	if v := r.Uint32(); r.Err() == nil && v != waitProfileVersion {
		return p, fmt.Errorf("obs: wait profile version %d (want %d)", v, waitProfileVersion)
	}
	p.IntervalNs = r.Int64()
	p.Rounds = r.Int64()
	n := int(r.Uint32())
	for i := 0; i < n && r.Err() == nil; i++ {
		p.Rows = append(p.Rows, WaitProfileRow{
			Class:   r.String(),
			Event:   r.String(),
			Op:      r.String(),
			Rel:     r.String(),
			Samples: r.Uint32(),
		})
	}
	if err := r.Err(); err != nil {
		return p, err
	}
	return p, nil
}
