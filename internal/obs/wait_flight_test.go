package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestActivateNilRemovesSlot is the span-leak regression: cleanup paths
// (including panic recovery) call Activate(nil) unconditionally, and it
// must actually remove the goroutine's slot. Before the fix it stored
// nothing but also deleted nothing, so a panicking handler leaked its
// slot and pinned spanCount above zero for the life of the process.
func TestActivateNilRemovesSlot(t *testing.T) {
	base := ActiveSpanCount()
	sp := NewSpan("leaktest")
	Activate(sp)
	if got := ActiveSpanCount(); got != base+1 {
		t.Fatalf("after Activate: count = %d, want %d", got, base+1)
	}
	Activate(nil)
	if got := Active(); got != nil {
		t.Fatalf("after Activate(nil): Active() = %v, want nil", got)
	}
	if got := ActiveSpanCount(); got != base {
		t.Fatalf("after Activate(nil): count = %d, want %d (slot leaked)", got, base)
	}
	// Idempotent: a second cleanup (deferred Activate(nil) after an
	// explicit Deactivate) must not drive the count negative.
	Activate(nil)
	if got := ActiveSpanCount(); got != base {
		t.Fatalf("after double Activate(nil): count = %d, want %d", got, base)
	}
}

func TestWaitEventNamesAndClasses(t *testing.T) {
	for e := WaitNone; e < numWaitEvents; e++ {
		if e.String() == "" || strings.HasPrefix(e.String(), "wait") {
			t.Errorf("event %d has no name", e)
		}
		if e.Class() == "" {
			t.Errorf("event %s has no class", e)
		}
	}
	if WaitLockAcquire.Class() != ClassLock {
		t.Errorf("lock_acquire class = %s", WaitLockAcquire.Class())
	}
	if WaitFrameLatch.Class() != ClassLWLock {
		t.Errorf("frame_latch class = %s", WaitFrameLatch.Class())
	}
}

// TestWaitProfileEncodeDecode round-trips a profile through the wire
// encoding, including a counter saturated at MaxUint32 — the value a
// weeks-long profile converges to instead of wrapping.
func TestWaitProfileEncodeDecode(t *testing.T) {
	p := WaitProfile{
		IntervalNs: int64(10 * time.Millisecond),
		Rounds:     123456789,
		Rows: []WaitProfileRow{
			{Class: "IO", Event: "log_force", Op: "commit", Samples: 42},
			{Class: "Lock", Event: "lock_acquire", Op: "open", Rel: "inv99", Samples: math.MaxUint32},
			{Class: "Activity", Event: "bgwriter_idle", Op: "bgwriter", Samples: 1},
		},
	}
	got, err := DecodeWaitProfile(EncodeWaitProfile(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.IntervalNs != p.IntervalNs || got.Rounds != p.Rounds {
		t.Fatalf("header = (%d, %d), want (%d, %d)", got.IntervalNs, got.Rounds, p.IntervalNs, p.Rounds)
	}
	if len(got.Rows) != len(p.Rows) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(p.Rows))
	}
	for i, r := range got.Rows {
		if r != p.Rows[i] {
			t.Errorf("row %d = %+v, want %+v", i, r, p.Rows[i])
		}
	}
	if got.Rows[1].Samples != math.MaxUint32 {
		t.Fatalf("saturated counter = %d, want MaxUint32", got.Rows[1].Samples)
	}

	// Empty profile round-trips too (the no-sampler server response).
	empty, err := DecodeWaitProfile(EncodeWaitProfile(WaitProfile{}))
	if err != nil {
		t.Fatal(err)
	}
	if len(empty.Rows) != 0 {
		t.Fatalf("empty profile decoded %d rows", len(empty.Rows))
	}

	// Unknown versions are rejected loudly, not misparsed.
	b := EncodeWaitProfile(p)
	b[0] = 99
	if _, err := DecodeWaitProfile(b); err == nil {
		t.Fatal("version 99 accepted")
	}
	// Truncation surfaces as an error, not a short profile.
	if _, err := DecodeWaitProfile(EncodeWaitProfile(p)[:10]); err == nil {
		t.Fatal("truncated profile accepted")
	}
}

// TestWaitSamplerObservesWait runs a real sampler against a goroutine
// parked in BeginWait and checks the published (event, op, rel) lands in
// the profile with class attribution.
func TestWaitSamplerObservesWait(t *testing.T) {
	s := NewWaitSampler(time.Millisecond, nil)
	s.Start()
	defer s.Stop()

	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		sp := NewSpan("open")
		sp.SetRel("inv7")
		Activate(sp)
		defer Activate(nil)
		w := BeginWait(WaitLockAcquire, "")
		<-release
		w.End()
	}()

	deadline := time.After(2 * time.Second)
	for {
		p := s.Snapshot()
		found := false
		for _, r := range p.Rows {
			if r.Event == "lock_acquire" && r.Op == "open" && r.Rel == "inv7" &&
				r.Class == "Lock" && r.Samples > 0 {
				found = true
			}
		}
		if found {
			break
		}
		select {
		case <-deadline:
			close(release)
			<-done
			t.Fatalf("lock_acquire never sampled; profile = %+v", s.Snapshot())
		case <-time.After(2 * time.Millisecond):
		}
	}
	close(release)
	<-done

	if s.Snapshot().Rounds == 0 {
		t.Fatal("sampler reported zero rounds")
	}
}

// TestWaitSamplerGate proves the off state is really off: with no
// sampler attached, BeginWait returns nil (one atomic load, no slot).
func TestWaitSamplerGate(t *testing.T) {
	if w := BeginWait(WaitLogForce, ""); w != nil {
		t.Fatal("BeginWait returned a slot with no sampler attached")
	}
	if w := BeginWaitLoop(WaitReaperIdle, "reaper"); w != nil {
		t.Fatal("BeginWaitLoop returned a slot with no sampler attached")
	}
	// nil slots are safe to End.
	var w *WaitSlot
	w.End()
}

// TestWaitProfileOverflowFold: past maxWaitKeys distinct cells, new
// (op, rel) pairs fold into the per-event "(other)" cell instead of
// growing the map without bound.
func TestWaitProfileOverflowFold(t *testing.T) {
	s := NewWaitSampler(time.Hour, nil) // never ticks; we drive sampleOnce
	s.mu.Lock()
	for i := 0; i < maxWaitKeys; i++ {
		s.prof[waitKey{WaitLogForce, fmt.Sprintf("op%d", i), ""}] = 1
	}
	s.mu.Unlock()

	slot := beginWait(WaitLockAcquire, "fresh-op", "fresh-rel")
	s.sampleOnce()
	slot.End()

	p := s.Snapshot()
	var folded bool
	for _, r := range p.Rows {
		if r.Event == "lock_acquire" && r.Op == waitOverflowLabel && r.Rel == waitOverflowLabel {
			folded = true
		}
		if r.Op == "fresh-op" {
			t.Fatal("overflow key was admitted instead of folded")
		}
	}
	if !folded {
		t.Fatalf("no overflow cell in %d-row profile", len(p.Rows))
	}
}

// TestHistogramQuantileTopBucket pins the saturated-top-bucket contract:
// samples past the last bound report the bucket's lower bound — monotone
// and finite — rather than an invented interpolation above it.
func TestHistogramQuantileTopBucket(t *testing.T) {
	var h Histogram
	top := Bound(NumBuckets - 2) // lower bound of the open-ended bucket
	h.Observe(top * 16)          // far past the ladder
	s := h.Snapshot("t")
	if got := s.Quantile(0.99); got != top {
		t.Fatalf("p99 of one saturated sample = %d, want top lower bound %d", got, top)
	}
	if got := s.Quantile(1.0); got != top {
		t.Fatalf("p100 = %d, want %d", got, top)
	}

	// Mixed: fast samples interpolate normally, the tail clamps, and the
	// extraction stays monotone across the boundary.
	var m Histogram
	for i := 0; i < 99; i++ {
		m.Observe(2048) // bucket 1
	}
	m.Observe(top * 4)
	ms := m.Snapshot("m")
	if p50 := ms.Quantile(0.50); p50 <= 0 || p50 > Bound(1) {
		t.Fatalf("p50 = %d, want in (0, %d]", p50, Bound(1))
	}
	if p100 := ms.Quantile(1.0); p100 != top {
		t.Fatalf("p100 with saturated tail = %d, want %d", p100, top)
	}
	if ms.Quantile(0.5) > ms.Quantile(1.0) {
		t.Fatal("quantile extraction is not monotone across the top bucket")
	}
}

// TestFlightRecorderRing: a capacity-4 ring keeps the last 4 events
// oldest-first with strictly increasing sequence numbers.
func TestFlightRecorderRing(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		r.RecordMarker(fmt.Sprintf("m%d", i), "")
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := fmt.Sprintf("m%d", i+2); ev.Name != want {
			t.Errorf("event %d = %s, want %s (oldest-first after overwrite)", i, ev.Name, want)
		}
		if i > 0 && evs[i].Seq != evs[i-1].Seq+1 {
			t.Errorf("seq gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
		if ev.AtUnixNs == 0 {
			t.Errorf("event %d has no timestamp", i)
		}
	}
	// Partial fill returns only what was recorded.
	p := NewFlightRecorder(8)
	p.RecordLifecycle("log_force", "", 5, 1)
	if evs := p.Events(); len(evs) != 1 || evs[0].Kind != "lifecycle" {
		t.Fatalf("partial ring events = %+v", evs)
	}
	// nil recorder is inert.
	var nilRec *FlightRecorder
	nilRec.RecordMarker("x", "")
	if nilRec.Events() != nil {
		t.Fatal("nil recorder returned events")
	}
}

// TestFlightBundleRoundTrip dumps a populated recorder and parses the
// bundle back: version check, reason, wait profile, and the timeline.
func TestFlightBundleRoundTrip(t *testing.T) {
	r := ResetFlight(64)
	defer ResetFlight(0)
	r.RecordMarker("panic", "op mkdir: boom")
	r.RecordLifecycle("group_commit", "", 0, 3)
	d := SpanData{Op: "commit", TraceID: "00000000000000010000000000000002", WallNs: 777}
	r.RecordSpan(d)

	profile := WaitProfile{IntervalNs: 1e7, Rounds: 9,
		Rows: []WaitProfileRow{{Class: "IO", Event: "log_force", Samples: 4}}}
	var buf bytes.Buffer
	if err := r.WriteBundle(&buf, "test", &profile); err != nil {
		t.Fatal(err)
	}
	fb, err := ParseFlightBundle(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if fb.Version != flightBundleVersion || fb.Reason != "test" || fb.DumpedAtNs == 0 {
		t.Fatalf("bundle header = %+v", fb)
	}
	if fb.WaitProfile == nil || fb.WaitProfile.Rounds != 9 {
		t.Fatalf("wait profile = %+v", fb.WaitProfile)
	}
	if len(fb.Events) != 3 {
		t.Fatalf("events = %d, want 3", len(fb.Events))
	}
	if fb.Events[0].Kind != "marker" || fb.Events[0].Detail != "op mkdir: boom" {
		t.Errorf("marker = %+v", fb.Events[0])
	}
	sp := fb.Events[2]
	if sp.Kind != "span" || sp.Span == nil || sp.Span.TraceID != d.TraceID || sp.Span.WallNs != 777 {
		t.Errorf("span event = %+v", sp)
	}

	// Wrong version is rejected.
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	raw["version"] = 2
	b, _ := json.Marshal(raw)
	if _, err := ParseFlightBundle(b); err == nil {
		t.Fatal("version 2 bundle accepted")
	}
}

// TestTraceEndpoints drives /traces/recent's filters and cursor,
// /traces/by-id's stitching, and /debug/flight's bundle shape through
// the HTTP handler.
func TestTraceEndpoints(t *testing.T) {
	ResetFlight(64)
	defer ResetFlight(0)
	reg := NewRegistry()
	ring := NewTraceRing(16)
	trace := "0000000000000abc0000000000000def"
	spans := []SpanData{
		{Op: "read", WallNs: int64(1 * time.Millisecond), TraceID: trace},
		{Op: "write", WallNs: int64(5 * time.Millisecond), TraceID: trace},
		{Op: "read", WallNs: int64(20 * time.Millisecond), TraceID: "ffff0000000000000000000000000000"},
	}
	for _, d := range spans {
		ring.Record(d)
		Flight().RecordSpan(d)
	}
	h := Handler(reg, ring, nil)

	get := func(url string) (int, []byte) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
		return rec.Code, rec.Body.Bytes()
	}
	type recentResp struct {
		Cursor uint64     `json:"cursor"`
		Spans  []SpanData `json:"spans"`
	}
	decode := func(b []byte) recentResp {
		var rr recentResp
		if err := json.Unmarshal(b, &rr); err != nil {
			t.Fatalf("bad /traces/recent JSON: %v\n%s", err, b)
		}
		return rr
	}

	code, body := get("/traces/recent")
	if code != 200 {
		t.Fatalf("recent: %d", code)
	}
	all := decode(body)
	if all.Cursor != 3 || len(all.Spans) != 3 {
		t.Fatalf("unfiltered: cursor %d, %d spans", all.Cursor, len(all.Spans))
	}

	if _, body := get("/traces/recent?op=write"); len(decode(body).Spans) != 1 {
		t.Fatalf("op filter: %s", body)
	}
	if _, body := get("/traces/recent?min_ms=4"); len(decode(body).Spans) != 2 {
		t.Fatalf("min_ms filter: %s", body)
	}
	if _, body := get("/traces/recent?min_ms=4.9"); len(decode(body).Spans) != 2 {
		t.Fatalf("fractional min_ms filter: %s", body)
	}
	// The cursor tails: asking for spans after the cursor returns none
	// until new spans arrive, then only the new ones.
	if _, body := get(fmt.Sprintf("/traces/recent?after=%d", all.Cursor)); len(decode(body).Spans) != 0 {
		t.Fatalf("after=cursor returned stale spans: %s", body)
	}
	ring.Record(SpanData{Op: "commit", WallNs: int64(50 * time.Millisecond)})
	_, body = get(fmt.Sprintf("/traces/recent?after=%d", all.Cursor))
	tail := decode(body)
	if len(tail.Spans) != 1 || tail.Spans[0].Op != "commit" || tail.Cursor != all.Cursor+1 {
		t.Fatalf("tail after new span: %s", body)
	}
	if code, _ := get("/traces/recent?min_ms=bogus"); code != 400 {
		t.Fatalf("bad min_ms: %d, want 400", code)
	}
	if code, _ := get("/traces/recent?after=bogus"); code != 400 {
		t.Fatalf("bad after: %d, want 400", code)
	}

	if code, _ := get("/traces/by-id"); code != 400 {
		t.Fatalf("by-id without id: %d, want 400", code)
	}
	_, body = get("/traces/by-id?id=" + trace)
	var byID struct {
		TraceID string     `json:"trace_id"`
		Spans   []SpanData `json:"spans"`
	}
	if err := json.Unmarshal(body, &byID); err != nil {
		t.Fatal(err)
	}
	if byID.TraceID != trace || len(byID.Spans) != 2 {
		t.Fatalf("by-id: %s", body)
	}

	code, body = get("/debug/flight")
	if code != 200 {
		t.Fatalf("flight: %d", code)
	}
	fb, err := ParseFlightBundle(body)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Reason != "http" || len(fb.Events) < 3 {
		t.Fatalf("flight bundle: reason %q, %d events", fb.Reason, len(fb.Events))
	}
}

// TestSpanIDs: minted ids are non-zero and distinct (splitmix64 over a
// seed+counter cannot collide within a run).
func TestSpanIDs(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		id := NewSpanID()
		if id == 0 || seen[id] {
			t.Fatalf("id %d: zero or repeated", id)
		}
		seen[id] = true
	}
	hi, lo := NewTraceID()
	if hi == 0 || lo == 0 {
		t.Fatal("zero trace id")
	}
}
