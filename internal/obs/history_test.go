package obs

import "testing"

func sampleByName(t *testing.T, samples []HistorySample, name, labels string) (HistorySample, bool) {
	t.Helper()
	for _, s := range samples {
		if s.Name == name && s.Labels == labels {
			return s, true
		}
	}
	return HistorySample{}, false
}

func TestHistoryDifferCountersAsDeltas(t *testing.T) {
	reg := NewRegistry()
	d := NewHistoryDiffer()

	reg.Counter("a").Add(5)
	out := d.Diff(reg.Snapshot(), WaitProfile{})
	s, ok := sampleByName(t, out, "a", "")
	if !ok || s.Kind != SampleCounter || s.Value != 5 {
		t.Fatalf("first tick: got %+v ok=%v, want counter delta 5", s, ok)
	}

	// Unchanged counter → no sample on the next tick.
	out = d.Diff(reg.Snapshot(), WaitProfile{})
	if _, ok := sampleByName(t, out, "a", ""); ok {
		t.Fatalf("unchanged counter re-recorded: %+v", out)
	}

	reg.Counter("a").Add(3)
	out = d.Diff(reg.Snapshot(), WaitProfile{})
	if s, ok := sampleByName(t, out, "a", ""); !ok || s.Value != 3 {
		t.Fatalf("third tick: got %+v ok=%v, want delta 3", s, ok)
	}
}

func TestHistoryDifferGaugesAsPoints(t *testing.T) {
	reg := NewRegistry()
	d := NewHistoryDiffer()
	reg.Gauge("g").Set(7)

	for tick := 0; tick < 2; tick++ {
		out := d.Diff(reg.Snapshot(), WaitProfile{})
		s, ok := sampleByName(t, out, "g", "")
		if !ok || s.Kind != SampleGauge || s.Value != 7 {
			t.Fatalf("tick %d: got %+v ok=%v, want gauge point 7", tick, s, ok)
		}
	}
}

func TestHistoryDifferHistogramQuantiles(t *testing.T) {
	reg := NewRegistry()
	d := NewHistoryDiffer()

	// Empty histogram: skipped entirely.
	reg.Histogram("h")
	out := d.Diff(reg.Snapshot(), WaitProfile{})
	if _, ok := sampleByName(t, out, "h", "p50"); ok {
		t.Fatal("empty histogram recorded quantiles")
	}

	for i := 0; i < 100; i++ {
		reg.Histogram("h").Observe(int64(50_000))
	}
	out = d.Diff(reg.Snapshot(), WaitProfile{})
	for _, label := range []string{"p50", "p95", "p99"} {
		s, ok := sampleByName(t, out, "h", label)
		if !ok || s.Kind != SampleQuantile || s.Value <= 0 {
			t.Fatalf("%s: got %+v ok=%v", label, s, ok)
		}
	}
	if s, ok := sampleByName(t, out, "h", "count"); !ok || s.Kind != SampleCounter || s.Value != 100 {
		t.Fatalf("count delta: got %+v ok=%v, want 100", s, ok)
	}

	// No new observations → quantiles still recorded (points), count
	// delta skipped.
	out = d.Diff(reg.Snapshot(), WaitProfile{})
	if _, ok := sampleByName(t, out, "h", "p95"); !ok {
		t.Fatal("quantile point missing on idle tick")
	}
	if _, ok := sampleByName(t, out, "h", "count"); ok {
		t.Fatal("zero count delta recorded")
	}
}

func TestHistoryDifferWaitRows(t *testing.T) {
	d := NewHistoryDiffer()
	wp := WaitProfile{Rows: []WaitProfileRow{
		{Class: "IO", Event: "log_force", Op: "commit", Rel: "inv1", Samples: 4},
	}}
	out := d.Diff(Snapshot{}, wp)
	s, ok := sampleByName(t, out, "waitprof.IO.log_force", "commit/inv1")
	if !ok || s.Kind != SampleCounter || s.Value != 4 {
		t.Fatalf("wait row: got %+v ok=%v, want delta 4", s, ok)
	}

	wp.Rows[0].Samples = 9
	out = d.Diff(Snapshot{}, wp)
	if s, _ := sampleByName(t, out, "waitprof.IO.log_force", "commit/inv1"); s.Value != 5 {
		t.Fatalf("wait delta: got %v, want 5", s.Value)
	}

	// Unchanged profile → no sample.
	out = d.Diff(Snapshot{}, wp)
	if _, ok := sampleByName(t, out, "waitprof.IO.log_force", "commit/inv1"); ok {
		t.Fatal("unchanged wait row re-recorded")
	}
}
