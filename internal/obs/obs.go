// Package obs is the observability layer: a lock-cheap metrics registry
// (atomic counters, gauges, and fixed-bucket latency histograms with
// quantile extraction) plus per-request trace spans with per-layer cost
// attribution. Every storage layer records into a registry owned by its
// database, the wire server records a span per request, and the whole
// registry travels over the wire as a Snapshot (the statsv2 op) or is
// scraped as Prometheus text.
//
// The design goal is the paper's Table 3 decomposition, live: a single
// traced request shows where its time went (lock waits, buffer misses,
// writebacks, simulated device charges), and the registry shows the
// same costs as distributions (p50/p95/p99), not averages — the lesson
// of the HopsFS evaluation.
//
// Cost discipline: counters and histograms are single atomic adds, so
// the registry stays on even in benchmarks; spans cost nothing unless a
// request activates one (a single atomic load guards every charge
// site), so the simulated-clock benchmark digits are unaffected.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter
// is valid and ignores all operations, so layers may record
// unconditionally whether or not a registry was attached.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load reports the current value (0 for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic last-value-wins gauge. A nil *Gauge ignores all
// operations.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Load reports the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of counters, gauges, and histograms.
// Lookup-or-create takes a mutex; layers do it once at wiring time and
// cache the returned pointers, so the hot path is pure atomics.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. A nil
// registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// NamedValue is one counter or gauge in a snapshot.
type NamedValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Snapshot is a point-in-time copy of a registry, with every section
// sorted by name so output order is stable across runs and machines.
type Snapshot struct {
	Counters []NamedValue        `json:"counters"`
	Gauges   []NamedValue        `json:"gauges"`
	Hists    []HistogramSnapshot `json:"histograms"`
}

// Snapshot copies the registry. Values are read with atomic loads, so a
// snapshot taken under load is internally slightly skewed but never
// torn. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, NamedValue{name, c.Load()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, NamedValue{name, g.Load()})
	}
	for name, h := range r.hists {
		s.Hists = append(s.Hists, h.Snapshot(name))
	}
	r.mu.Unlock()
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
	return s
}
