package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
)

// Handler serves the operational endpoint behind `invd -metrics-addr`:
//
//	/metrics        Prometheus text exposition of the registry
//	/debug/pprof/*  the standard Go profiles
//	/traces/recent  JSON ring of the slowest recent requests
//
// refresh, if non-nil, runs before each registry read so gauges that
// mirror derived state (cache capacity, catalog sizes, MVCC horizon)
// are current at scrape time. ring may be nil (404 for traces).
func Handler(reg *Registry, ring *TraceRing, refresh func()) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if refresh != nil {
			refresh()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeProm(w, reg.Snapshot())
	})
	mux.HandleFunc("/traces/recent", func(w http.ResponseWriter, r *http.Request) {
		if ring == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		spans := ring.Slowest()
		if spans == nil {
			spans = []SpanData{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(spans)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// promName maps a registry name ("buffer.shard03.hit_ns") to a valid
// Prometheus metric name ("inv_buffer_shard03_hit_ns").
func promName(name string) string {
	var b strings.Builder
	b.WriteString("inv_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeProm renders a snapshot in the Prometheus text exposition
// format. Histograms use the cumulative-bucket convention with an le
// label, so standard histogram_quantile() queries work.
func writeProm(w interface{ Write([]byte) (int, error) }, s Snapshot) {
	for _, c := range s.Counters {
		n := promName(c.Name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value)
	}
	for _, h := range s.Hists {
		n := promName(strings.TrimSuffix(h.Name, "_ns"))
		fmt.Fprintf(w, "# TYPE %s_seconds histogram\n", n)
		var cum int64
		for i, bn := range h.Buckets {
			cum += bn
			fmt.Fprintf(w, "%s_seconds_bucket{le=\"%g\"} %d\n",
				n, float64(Bound(i))/1e9, cum)
		}
		fmt.Fprintf(w, "%s_seconds_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(w, "%s_seconds_sum %g\n", n, float64(h.SumNs)/1e9)
		fmt.Fprintf(w, "%s_seconds_count %d\n", n, h.Count)
	}
}
