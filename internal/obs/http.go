package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// writeJSON renders v indented with the JSON content type.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// TraceByID stitches every span of one trace (32-hex id) out of the
// flight recorder, oldest-first. The flight ring sees every finished
// request — unlike the slowest-N trace ring — so a multi-op
// transaction's begin/op/commit spans all appear as long as they are
// recent enough to still be in the ring.
func TraceByID(id string) []SpanData {
	spans := []SpanData{}
	for _, ev := range Flight().Events() {
		if ev.Kind == "span" && ev.Span != nil && ev.Span.TraceID == id {
			spans = append(spans, *ev.Span)
		}
	}
	sort.SliceStable(spans, func(i, j int) bool {
		return spans[i].StartUnixNs < spans[j].StartUnixNs
	})
	return spans
}

// Handler serves the operational endpoint behind `invd -metrics-addr`:
//
//	/metrics        Prometheus text exposition of the registry
//	/debug/pprof/*  the standard Go profiles
//	/traces/recent  slowest recent requests: {"cursor": N, "spans": [...]}
//	                with optional ?op=, ?min_ms=, and ?after=<cursor>
//	                filters so scrapers can tail without re-reading
//	/traces/by-id   ?id=<32-hex trace id>: every span of one trace,
//	                stitched from the flight recorder, oldest-first
//	/debug/flight   the flight-recorder bundle, dumped on demand
//
// refresh, if non-nil, runs before each registry read so gauges that
// mirror derived state (cache capacity, catalog sizes, MVCC horizon)
// are current at scrape time. ring may be nil (404 for traces).
func Handler(reg *Registry, ring *TraceRing, refresh func()) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if refresh != nil {
			refresh()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeProm(w, reg.Snapshot())
	})
	mux.HandleFunc("/traces/recent", func(w http.ResponseWriter, r *http.Request) {
		if ring == nil {
			http.NotFound(w, r)
			return
		}
		q := r.URL.Query()
		var minNs int64
		if v := q.Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, "bad min_ms: "+err.Error(), http.StatusBadRequest)
				return
			}
			minNs = int64(ms * 1e6)
		}
		var after uint64
		if v := q.Get("after"); v != "" {
			var err error
			after, err = strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad after: "+err.Error(), http.StatusBadRequest)
				return
			}
		}
		op := q.Get("op")
		spans := []SpanData{}
		for _, d := range ring.Slowest() {
			if op != "" && d.Op != op {
				continue
			}
			if d.WallNs < minNs {
				continue
			}
			if d.Seq <= after {
				continue
			}
			spans = append(spans, d)
		}
		writeJSON(w, struct {
			Cursor uint64     `json:"cursor"`
			Spans  []SpanData `json:"spans"`
		}{ring.Cursor(), spans})
	})
	mux.HandleFunc("/traces/by-id", func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			http.Error(w, "missing id (32-hex trace id)", http.StatusBadRequest)
			return
		}
		spans := TraceByID(id)
		writeJSON(w, struct {
			TraceID string     `json:"trace_id"`
			Spans   []SpanData `json:"spans"`
		}{id, spans})
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		Flight().WriteBundle(w, "http", nil)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// promName maps a registry name ("buffer.shard03.hit_ns") to a valid
// Prometheus metric name ("inv_buffer_shard03_hit_ns").
func promName(name string) string {
	var b strings.Builder
	b.WriteString("inv_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// writeProm renders a snapshot in the Prometheus text exposition
// format. Histograms use the cumulative-bucket convention with an le
// label, so standard histogram_quantile() queries work.
func writeProm(w interface{ Write([]byte) (int, error) }, s Snapshot) {
	for _, c := range s.Counters {
		n := promName(c.Name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value)
	}
	for _, h := range s.Hists {
		n := promName(strings.TrimSuffix(h.Name, "_ns"))
		fmt.Fprintf(w, "# TYPE %s_seconds histogram\n", n)
		var cum int64
		for i, bn := range h.Buckets {
			cum += bn
			fmt.Fprintf(w, "%s_seconds_bucket{le=\"%g\"} %d\n",
				n, float64(Bound(i))/1e9, cum)
		}
		fmt.Fprintf(w, "%s_seconds_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(w, "%s_seconds_sum %g\n", n, float64(h.SumNs)/1e9)
		fmt.Fprintf(w, "%s_seconds_count %d\n", n, h.Count)
	}
}
