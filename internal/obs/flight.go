package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: an always-on, lock-cheap ring of the last few
// thousand observability events — finished request spans, non-idle wait
// samples, and subsystem lifecycle events (log forces, checkpoints,
// background-writer rounds, group-commit batches, panics). When
// something goes wrong (a handler panic, a failed scrub-on-start, an
// operator's SIGUSR1) the ring is dumped as a JSON bundle, giving the
// incident a causal timeline instead of a stack trace and a shrug.
//
// The ring is process-global, like the span slot table: crashes do not
// respect DB boundaries, and the dump path must work from a panic
// handler with no plumbing. Recording is a mutex-protected index bump
// plus a struct copy; events are preallocated slots so steady-state
// recording does not allocate.

// FlightEvent is one entry in the recorder. Kind discriminates:
//
//	"span"      a finished request (Span carries the data)
//	"wait"      one sampler round's non-idle wait states
//	"lifecycle" a subsystem event (Name: log_force, checkpoint,
//	            bgwriter_flush, group_commit, ...)
//	"marker"    a free-form annotation (panics, dump reasons)
type FlightEvent struct {
	Seq      uint64           `json:"seq"`
	AtUnixNs int64            `json:"at_unix_ns"`
	Kind     string           `json:"kind"`
	Name     string           `json:"name,omitempty"`
	Detail   string           `json:"detail,omitempty"`
	DurNs    int64            `json:"dur_ns,omitempty"`
	Count    int64            `json:"count,omitempty"`
	Span     *SpanData        `json:"span,omitempty"`
	Waits    []WaitProfileRow `json:"waits,omitempty"`
}

// FlightRecorder is a fixed-size overwrite-oldest ring of FlightEvents.
type FlightRecorder struct {
	mu   sync.Mutex
	seq  uint64
	next int
	full bool
	ring []FlightEvent
}

// DefaultFlightEvents is the default ring capacity: at a sustained
// 1000 req/s this holds the last ~4 seconds before a crash, and far
// more of the low-frequency lifecycle history.
const DefaultFlightEvents = 4096

var flightRec atomic.Pointer[FlightRecorder]

func init() {
	flightRec.Store(NewFlightRecorder(DefaultFlightEvents))
}

// Flight returns the process-global flight recorder.
func Flight() *FlightRecorder { return flightRec.Load() }

// ResetFlight replaces the global recorder with a fresh one of the
// given capacity (0 = default) and returns it. Tests use it for
// isolation; production code never calls it.
func ResetFlight(capacity int) *FlightRecorder {
	r := NewFlightRecorder(capacity)
	flightRec.Store(r)
	return r
}

// NewFlightRecorder returns a recorder holding the last n events
// (0 or negative = DefaultFlightEvents).
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = DefaultFlightEvents
	}
	return &FlightRecorder{ring: make([]FlightEvent, n)}
}

// Record appends an event, stamping its sequence number and wall time
// (if unset) and overwriting the oldest entry when full. Safe on nil.
func (r *FlightRecorder) Record(ev FlightEvent) {
	if r == nil {
		return
	}
	if ev.AtUnixNs == 0 {
		ev.AtUnixNs = time.Now().UnixNano()
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	r.ring[r.next] = ev
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// RecordSpan files a finished request span.
func (r *FlightRecorder) RecordSpan(d SpanData) {
	r.Record(FlightEvent{Kind: "span", Name: d.Op, Span: &d})
}

// RecordLifecycle files a subsystem lifecycle event.
func (r *FlightRecorder) RecordLifecycle(name, detail string, durNs, count int64) {
	r.Record(FlightEvent{Kind: "lifecycle", Name: name, Detail: detail, DurNs: durNs, Count: count})
}

// RecordMarker files a free-form annotation (panic, dump trigger).
func (r *FlightRecorder) RecordMarker(name, detail string) {
	r.Record(FlightEvent{Kind: "marker", Name: name, Detail: detail})
}

// recordWaits files one sampler round's non-idle wait states.
func (r *FlightRecorder) recordWaits(rows []WaitProfileRow) {
	r.Record(FlightEvent{Kind: "wait", Name: "wait_sample", Count: int64(len(rows)), Waits: rows})
}

// Events returns the ring's contents oldest-first.
func (r *FlightRecorder) Events() []FlightEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []FlightEvent
	if r.full {
		out = make([]FlightEvent, 0, len(r.ring))
		out = append(out, r.ring[r.next:]...)
		out = append(out, r.ring[:r.next]...)
	} else {
		out = make([]FlightEvent, r.next)
		copy(out, r.ring[:r.next])
	}
	return out
}

// FlightBundle is the dumped form of the recorder: why it was dumped,
// when, an optional wait profile, and the event timeline oldest-first.
type FlightBundle struct {
	Version     int           `json:"version"`
	Reason      string        `json:"reason"`
	DumpedAtNs  int64         `json:"dumped_at_unix_ns"`
	WaitProfile *WaitProfile  `json:"wait_profile,omitempty"`
	Events      []FlightEvent `json:"events"`
}

// flightBundleVersion versions the bundle JSON so parsers can reject
// shapes they do not understand.
const flightBundleVersion = 1

// WriteBundle dumps the recorder as an indented JSON bundle. profile
// may be nil (no sampler attached).
func (r *FlightRecorder) WriteBundle(w io.Writer, reason string, profile *WaitProfile) error {
	b := FlightBundle{
		Version:    flightBundleVersion,
		Reason:     reason,
		DumpedAtNs: time.Now().UnixNano(),
		Events:     r.Events(),
	}
	if b.Events == nil {
		b.Events = []FlightEvent{}
	}
	b.WaitProfile = profile
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ParseFlightBundle reads a dumped bundle back, rejecting unknown
// versions, so the format is a contract rather than a log line.
func ParseFlightBundle(b []byte) (FlightBundle, error) {
	var fb FlightBundle
	if err := json.Unmarshal(b, &fb); err != nil {
		return fb, fmt.Errorf("obs: flight bundle: %w", err)
	}
	if fb.Version != flightBundleVersion {
		return fb, fmt.Errorf("obs: flight bundle version %d (want %d)", fb.Version, flightBundleVersion)
	}
	return fb, nil
}
