package obs

import (
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every histogram. Bucket i
// covers durations up to Bound(i) nanoseconds; the exponential ladder
// starts at ~1µs and tops out above two minutes, which brackets every
// latency this system produces, from a buffer-cache hit to a jukebox
// platter swap.
const NumBuckets = 28

// Bound reports the inclusive upper bound, in nanoseconds, of bucket i.
// The last bucket is open-ended (everything above Bound(NumBuckets-2)).
func Bound(i int) int64 {
	return 1024 << uint(i)
}

// bucketFor maps a nanosecond duration to its bucket index.
func bucketFor(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	// Bound(i) = 2^(10+i), so the first bucket whose bound is >= ns is
	// bits.Len64(ns-1) - 10 (clamped). bits.Len64 is a single
	// instruction on amd64/arm64.
	b := bits.Len64(uint64(ns)-1) - 10
	if ns == 0 {
		b = 0
	}
	if b < 0 {
		b = 0
	}
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// Histogram is a fixed-bucket latency histogram. Observe is two atomic
// adds and a bit-scan — cheap enough to leave on in benchmarks. A nil
// *Histogram ignores all operations.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(ns int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	h.buckets[bucketFor(ns)].Add(1)
}

// Snapshot copies the histogram under the given name.
func (h *Histogram) Snapshot(name string) HistogramSnapshot {
	s := HistogramSnapshot{Name: name}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumNs = h.sumNs.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, suitable
// for wire encoding and quantile extraction.
type HistogramSnapshot struct {
	Name    string            `json:"name"`
	Count   int64             `json:"count"`
	SumNs   int64             `json:"sum_ns"`
	Buckets [NumBuckets]int64 `json:"buckets"`
}

// Merge adds other's samples into s (names are left alone). Used to
// fold per-shard series into one displayed distribution.
func (s *HistogramSnapshot) Merge(other HistogramSnapshot) {
	s.Count += other.Count
	s.SumNs += other.SumNs
	for i := range s.Buckets {
		s.Buckets[i] += other.Buckets[i]
	}
}

// Quantile estimates the q-th quantile (0 < q <= 1) in nanoseconds by
// linear interpolation inside the containing bucket. An empty histogram
// reports 0. The estimate for samples in the last (open-ended) bucket
// is its lower bound, which keeps the extraction monotone and bounded.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = Bound(i - 1)
			}
			hi := Bound(i)
			if i == NumBuckets-1 {
				// Open-ended: report the lower bound rather than
				// inventing an upper one.
				return lo
			}
			frac := (rank - float64(cum)) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += n
	}
	return Bound(NumBuckets - 1)
}

// MeanNs reports the arithmetic mean in nanoseconds (0 when empty).
func (s HistogramSnapshot) MeanNs() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.SumNs / s.Count
}
