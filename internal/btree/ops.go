package btree

import "fmt"

// nodeMem is an in-memory image of one node. Tree operations read a
// node image, work on it, and write it back, never holding a frame
// latch across buffer pool calls; the per-tree mutex serialises
// everything, so images cannot go stale mid-operation.
type nodeMem struct {
	kind byte
	link uint32 // leaf: right sibling; internal: leftmost child
	leaf []Entry
	ints []intChild
}

type intChild struct {
	e     Entry
	child uint32
}

func (t *Tree) readNode(pn uint32) (nodeMem, error) {
	f, err := t.pool.Get(t.rel, pn)
	if err != nil {
		return nodeMem{}, err
	}
	f.RLock()
	d := f.Data
	n := nodeMem{kind: nodeKind(d), link: nodeLink(d)}
	cnt := nodeCount(d)
	switch n.kind {
	case kindLeaf:
		n.leaf = make([]Entry, cnt)
		for i := 0; i < cnt; i++ {
			n.leaf[i] = leafEntry(d, i)
		}
	case kindInternal:
		n.ints = make([]intChild, cnt)
		for i := 0; i < cnt; i++ {
			e, c := intEntry(d, i)
			n.ints[i] = intChild{e, c}
		}
	default:
		f.RUnlock()
		t.pool.Release(f, false)
		return nodeMem{}, fmt.Errorf("btree: page %d has bad node kind %d", pn, n.kind)
	}
	f.RUnlock()
	t.pool.Release(f, false)
	return n, nil
}

func (t *Tree) writeNode(pn uint32, n nodeMem) error {
	f, err := t.pool.Get(t.rel, pn)
	if err != nil {
		return err
	}
	f.Lock()
	d := f.Data
	for i := range d {
		d[i] = 0
	}
	d[0] = n.kind
	setNodeLink(d, n.link)
	switch n.kind {
	case kindLeaf:
		setNodeCount(d, len(n.leaf))
		for i, e := range n.leaf {
			putLeafEntry(d, i, e)
		}
	case kindInternal:
		setNodeCount(d, len(n.ints))
		for i, ic := range n.ints {
			putIntEntry(d, i, ic.e, ic.child)
		}
	}
	f.Unlock()
	t.pool.Release(f, true)
	return nil
}

func (t *Tree) newNode(n nodeMem) (uint32, error) {
	f, pn, err := t.pool.NewPage(t.rel)
	if err != nil {
		return 0, err
	}
	t.pool.Release(f, true)
	return pn, t.writeNode(pn, n)
}

// childIdx picks the descent child index for e: -1 means the leftmost
// child, otherwise ints[i].child.
func (n *nodeMem) childIdx(e Entry) int {
	lo, hi := 0, len(n.ints)
	for lo < hi {
		mid := (lo + hi) / 2
		k := n.ints[mid].e
		if k.Less(e) || k == e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

func (n *nodeMem) childPage(e Entry) uint32 {
	i := n.childIdx(e)
	if i < 0 {
		return n.link
	}
	return n.ints[i].child
}

// leafPos finds the first index in a leaf image ≥ e.
func leafPos(leaf []Entry, e Entry) int {
	lo, hi := 0, len(leaf)
	for lo < hi {
		mid := (lo + hi) / 2
		if leaf[mid].Less(e) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds entry e. It reports whether the entry was added (false if
// the exact entry already existed, making Insert idempotent).
func (t *Tree) Insert(e Entry) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()

	root, err := t.rootPage()
	if err != nil {
		return false, err
	}
	// Descend, recording the path of page numbers.
	var path []uint32
	pn := root
	for {
		n, err := t.readNode(pn)
		if err != nil {
			return false, err
		}
		path = append(path, pn)
		if n.kind == kindLeaf {
			break
		}
		pn = n.childPage(e)
	}
	leafPN := path[len(path)-1]
	n, err := t.readNode(leafPN)
	if err != nil {
		return false, err
	}
	pos := leafPos(n.leaf, e)
	if pos < len(n.leaf) && n.leaf[pos] == e {
		return false, nil
	}
	n.leaf = append(n.leaf, Entry{})
	copy(n.leaf[pos+1:], n.leaf[pos:])
	n.leaf[pos] = e

	if len(n.leaf) <= maxLeafEntries {
		return true, t.writeNode(leafPN, n)
	}

	// Split the leaf: upper half moves to a new right sibling.
	mid := len(n.leaf) / 2
	right := nodeMem{kind: kindLeaf, link: n.link, leaf: append([]Entry(nil), n.leaf[mid:]...)}
	sep := right.leaf[0]
	rightPN, err := t.newNode(right)
	if err != nil {
		return false, err
	}
	n.leaf = n.leaf[:mid]
	n.link = rightPN
	if err := t.writeNode(leafPN, n); err != nil {
		return false, err
	}

	// Propagate the separator up the path.
	childPN := rightPN
	for lvl := len(path) - 2; lvl >= 0; lvl-- {
		ipn := path[lvl]
		in, err := t.readNode(ipn)
		if err != nil {
			return false, err
		}
		ipos := in.childIdx(sep) + 1
		in.ints = append(in.ints, intChild{})
		copy(in.ints[ipos+1:], in.ints[ipos:])
		in.ints[ipos] = intChild{sep, childPN}
		if len(in.ints) <= maxIntEntries {
			return true, t.writeNode(ipn, in)
		}
		// Split the internal node; the middle entry is promoted.
		imid := len(in.ints) / 2
		promoted := in.ints[imid]
		iright := nodeMem{
			kind: kindInternal,
			link: promoted.child,
			ints: append([]intChild(nil), in.ints[imid+1:]...),
		}
		irightPN, err := t.newNode(iright)
		if err != nil {
			return false, err
		}
		in.ints = in.ints[:imid]
		if err := t.writeNode(ipn, in); err != nil {
			return false, err
		}
		sep = promoted.e
		childPN = irightPN
	}

	// The root itself split: grow the tree by one level.
	newRoot := nodeMem{kind: kindInternal, link: root, ints: []intChild{{sep, childPN}}}
	rootPN, err := t.newNode(newRoot)
	if err != nil {
		return false, err
	}
	return true, t.setRoot(rootPN)
}

// Delete removes the exact entry e. Underfull nodes are left in place
// (deletes come only from the vacuum cleaner, and lazy deletion keeps
// the tree simple, as in many production B-trees).
func (t *Tree) Delete(e Entry) error {
	t.mu.Lock()
	defer t.mu.Unlock()

	pn, err := t.rootPage()
	if err != nil {
		return err
	}
	for {
		n, err := t.readNode(pn)
		if err != nil {
			return err
		}
		if n.kind == kindInternal {
			pn = n.childPage(e)
			continue
		}
		pos := leafPos(n.leaf, e)
		if pos >= len(n.leaf) || n.leaf[pos] != e {
			return ErrNotFound
		}
		n.leaf = append(n.leaf[:pos], n.leaf[pos+1:]...)
		return t.writeNode(pn, n)
	}
}

// Ascend calls fn for every entry ≥ start (ordered), until fn returns
// false.
func (t *Tree) Ascend(start Key, fn func(Entry) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()

	lower := Entry{Key: start}
	pn, err := t.rootPage()
	if err != nil {
		return err
	}
	for {
		n, err := t.readNode(pn)
		if err != nil {
			return err
		}
		if n.kind == kindLeaf {
			pos := leafPos(n.leaf, lower)
			for {
				for ; pos < len(n.leaf); pos++ {
					if !fn(n.leaf[pos]) {
						return nil
					}
				}
				if n.link == 0 {
					return nil
				}
				n, err = t.readNode(n.link)
				if err != nil {
					return err
				}
				pos = 0
			}
		}
		pn = n.childPage(lower)
	}
}

// Lookup calls fn for every entry whose key equals k.
func (t *Tree) Lookup(k Key, fn func(Entry) bool) error {
	return t.Ascend(k, func(e Entry) bool {
		if e.Key != k {
			return false
		}
		return fn(e)
	})
}

// Len counts all entries (test helper; O(n)).
func (t *Tree) Len() (int, error) {
	total := 0
	err := t.Ascend(Key{}, func(Entry) bool { total++; return true })
	return total, err
}

// CheckInvariants walks the tree verifying ordering and separator
// correctness; tests call it after randomised workloads.
func (t *Tree) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	root, err := t.rootPage()
	if err != nil {
		return err
	}
	_, _, err = t.check(root, nil, nil)
	return err
}

// check verifies the subtree at pn lies within (lo, hi]; it returns the
// subtree's min and max entries.
func (t *Tree) check(pn uint32, lo, hi *Entry) (minE, maxE *Entry, err error) {
	n, err := t.readNode(pn)
	if err != nil {
		return nil, nil, err
	}
	bound := func(e Entry) error {
		if lo != nil && e.Less(*lo) {
			return fmt.Errorf("btree: entry %v below bound %v on page %d", e, *lo, pn)
		}
		if hi != nil && !e.Less(*hi) {
			return fmt.Errorf("btree: entry %v not below bound %v on page %d", e, *hi, pn)
		}
		return nil
	}
	if n.kind == kindLeaf {
		for i, e := range n.leaf {
			if err := bound(e); err != nil {
				return nil, nil, err
			}
			if i > 0 && !n.leaf[i-1].Less(e) {
				return nil, nil, fmt.Errorf("btree: leaf %d out of order at %d", pn, i)
			}
		}
		if len(n.leaf) == 0 {
			return nil, nil, nil
		}
		return &n.leaf[0], &n.leaf[len(n.leaf)-1], nil
	}
	for i, ic := range n.ints {
		if i > 0 && !n.ints[i-1].e.Less(ic.e) {
			return nil, nil, fmt.Errorf("btree: internal %d separators out of order", pn)
		}
	}
	childLo := lo
	for i := -1; i < len(n.ints); i++ {
		var child uint32
		var childHi *Entry
		if i < 0 {
			child = n.link
		} else {
			child = n.ints[i].child
			childLo = &n.ints[i].e
		}
		if i+1 < len(n.ints) {
			childHi = &n.ints[i+1].e
		} else {
			childHi = hi
		}
		mn, _, err := t.check(child, childLo, childHi)
		if err != nil {
			return nil, nil, err
		}
		if i >= 0 && mn != nil && mn.Less(n.ints[i].e) {
			return nil, nil, fmt.Errorf("btree: separator %v above child min %v", n.ints[i].e, *mn)
		}
	}
	return nil, nil, nil
}
