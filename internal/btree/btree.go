// Package btree implements the B-tree access method used to index chunk
// numbers within files ("In order to speed up seeks on files, Inversion
// maintains a Btree index on the chunk number attribute") and the naming
// table. Trees live on 8 KB pages reached through the shared buffer
// cache, so index I/O is charged to the same simulated devices as data
// I/O — the interleaving of index and data writes is exactly the effect
// the paper blames for Inversion's file-creation overhead.
//
// Keys are pairs of uint64s and values are uint64s (packed heap TIDs).
// Entries are ordered by the full (K1, K2, Val) triple, so duplicate
// keys are supported naturally and deletes name an exact entry. Index
// entries are retained for all record versions — old and current — and
// visibility is decided at the heap record, which is what makes
// historical reads of a file efficient.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"repro/internal/buffer"
	"repro/internal/device"
	"repro/internal/page"
)

// Key is a composite index key.
type Key struct {
	K1, K2 uint64
}

// Entry is one index entry.
type Entry struct {
	Key Key
	Val uint64
}

// Less orders entries by the full (K1, K2, Val) triple.
func (e Entry) Less(o Entry) bool {
	if e.Key.K1 != o.Key.K1 {
		return e.Key.K1 < o.Key.K1
	}
	if e.Key.K2 != o.Key.K2 {
		return e.Key.K2 < o.Key.K2
	}
	return e.Val < o.Val
}

// Node page layout (distinct from the slotted heap format; byte 8 of a
// heap page is "lower" and never zero there, node pages tag kind at
// byte 0 of the payload area instead — node pages and heap pages never
// share a relation, so no confusion arises):
//
//	0      kind: 1 leaf, 2 internal
//	1      pad
//	2..3   count
//	4..7   leaf: right-sibling page (0 = none); internal: leftmost child
//	8..    entries
//
// Leaf entry: K1(8) K2(8) Val(8) = 24 bytes.
// Internal entry: K1(8) K2(8) Val(8) child(4) = 28 bytes; the entry's
// key is the smallest entry reachable under child.
const (
	kindLeaf     = 1
	kindInternal = 2

	nodeHeader    = 8
	leafEntrySize = 24
	intEntrySize  = 28

	maxLeafEntries = (page.Size - nodeHeader) / leafEntrySize
	maxIntEntries  = (page.Size - nodeHeader) / intEntrySize
)

// Meta page (page 0) layout.
const (
	metaMagic  = 0x42545245 // "BTRE"
	metaMagicO = 0
	metaRootO  = 4
	metaNextO  = 8 // unused, reserved
)

// ErrNotFound is returned when deleting an entry that does not exist.
var ErrNotFound = errors.New("btree: entry not found")

// Tree is a B-tree over one relation. The tree lock is an RWMutex:
// lookups and scans share it, so chunk reads and namespace resolves
// proceed in parallel; only Insert/Delete take it exclusively.
type Tree struct {
	rel  device.OID
	pool *buffer.Pool
	mu   sync.RWMutex
}

// OID reports the relation this tree's pages live in.
func (t *Tree) OID() device.OID { return t.rel }

// Open returns a tree over relation rel, initialising the meta page and
// an empty root leaf if the relation is fresh.
func Open(rel device.OID, pool *buffer.Pool) (*Tree, error) {
	t := &Tree{rel: rel, pool: pool}
	n, err := pool.NPages(rel)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		meta, mp, err := pool.NewPage(rel)
		if err != nil {
			return nil, err
		}
		if mp != 0 {
			pool.Release(meta, false)
			return nil, fmt.Errorf("btree: meta page allocated at %d, want 0", mp)
		}
		root, rp, err := pool.NewPage(rel)
		if err != nil {
			pool.Release(meta, false)
			return nil, err
		}
		root.Lock()
		root.Data[0] = kindLeaf
		root.Unlock()
		pool.Release(root, true)
		meta.Lock()
		binary.LittleEndian.PutUint32(meta.Data[metaMagicO:], metaMagic)
		binary.LittleEndian.PutUint32(meta.Data[metaRootO:], rp)
		meta.Unlock()
		pool.Release(meta, true)
	}
	return t, nil
}

func (t *Tree) rootPage() (uint32, error) {
	f, err := t.pool.Get(t.rel, 0)
	if err != nil {
		return 0, err
	}
	defer t.pool.Release(f, false)
	f.RLock()
	defer f.RUnlock()
	if binary.LittleEndian.Uint32(f.Data[metaMagicO:]) != metaMagic {
		return 0, errors.New("btree: bad meta page")
	}
	return binary.LittleEndian.Uint32(f.Data[metaRootO:]), nil
}

func (t *Tree) setRoot(pn uint32) error {
	f, err := t.pool.Get(t.rel, 0)
	if err != nil {
		return err
	}
	f.Lock()
	binary.LittleEndian.PutUint32(f.Data[metaRootO:], pn)
	f.Unlock()
	t.pool.Release(f, true)
	return nil
}

// node accessors; the caller holds the frame latch.

func nodeKind(d []byte) byte       { return d[0] }
func nodeCount(d []byte) int       { return int(binary.LittleEndian.Uint16(d[2:])) }
func setNodeCount(d []byte, n int) { binary.LittleEndian.PutUint16(d[2:], uint16(n)) }
func nodeLink(d []byte) uint32     { return binary.LittleEndian.Uint32(d[4:]) }
func setNodeLink(d []byte, v uint32) {
	binary.LittleEndian.PutUint32(d[4:], v)
}

func leafEntry(d []byte, i int) Entry {
	off := nodeHeader + i*leafEntrySize
	return Entry{
		Key: Key{binary.LittleEndian.Uint64(d[off:]), binary.LittleEndian.Uint64(d[off+8:])},
		Val: binary.LittleEndian.Uint64(d[off+16:]),
	}
}

func putLeafEntry(d []byte, i int, e Entry) {
	off := nodeHeader + i*leafEntrySize
	binary.LittleEndian.PutUint64(d[off:], e.Key.K1)
	binary.LittleEndian.PutUint64(d[off+8:], e.Key.K2)
	binary.LittleEndian.PutUint64(d[off+16:], e.Val)
}

func intEntry(d []byte, i int) (Entry, uint32) {
	off := nodeHeader + i*intEntrySize
	e := Entry{
		Key: Key{binary.LittleEndian.Uint64(d[off:]), binary.LittleEndian.Uint64(d[off+8:])},
		Val: binary.LittleEndian.Uint64(d[off+16:]),
	}
	return e, binary.LittleEndian.Uint32(d[off+24:])
}

func putIntEntry(d []byte, i int, e Entry, child uint32) {
	off := nodeHeader + i*intEntrySize
	binary.LittleEndian.PutUint64(d[off:], e.Key.K1)
	binary.LittleEndian.PutUint64(d[off+8:], e.Key.K2)
	binary.LittleEndian.PutUint64(d[off+16:], e.Val)
	binary.LittleEndian.PutUint32(d[off+24:], child)
}
