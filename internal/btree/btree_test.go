package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/device"
)

func newTree(t *testing.T, poolSize int) *Tree {
	t.Helper()
	sw := device.NewSwitch()
	sw.Register(device.NewMem(nil, 0))
	if err := sw.Place(50, ""); err != nil {
		t.Fatal(err)
	}
	pool := buffer.NewPool(sw, poolSize)
	tr, err := Open(50, pool)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestInsertLookup(t *testing.T) {
	tr := newTree(t, 32)
	for i := 0; i < 100; i++ {
		added, err := tr.Insert(Entry{Key{uint64(i), 0}, uint64(i * 10)})
		if err != nil || !added {
			t.Fatalf("insert %d: added=%v err=%v", i, added, err)
		}
	}
	for i := 0; i < 100; i++ {
		var got []uint64
		if err := tr.Lookup(Key{uint64(i), 0}, func(e Entry) bool {
			got = append(got, e.Val)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || got[0] != uint64(i*10) {
			t.Fatalf("lookup %d = %v", i, got)
		}
	}
}

func TestInsertIdempotent(t *testing.T) {
	tr := newTree(t, 32)
	e := Entry{Key{1, 2}, 3}
	added, err := tr.Insert(e)
	if err != nil || !added {
		t.Fatalf("first insert: %v %v", added, err)
	}
	added, err = tr.Insert(e)
	if err != nil || added {
		t.Fatalf("duplicate insert: %v %v", added, err)
	}
	n, _ := tr.Len()
	if n != 1 {
		t.Fatalf("Len = %d", n)
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := newTree(t, 32)
	for v := uint64(0); v < 50; v++ {
		if _, err := tr.Insert(Entry{Key{7, 7}, v}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	if err := tr.Lookup(Key{7, 7}, func(e Entry) bool {
		got = append(got, e.Val)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Fatalf("lookup returned %d values", len(got))
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("duplicate values not ordered")
	}
}

func TestDelete(t *testing.T) {
	tr := newTree(t, 32)
	for i := uint64(0); i < 20; i++ {
		if _, err := tr.Insert(Entry{Key{i, 0}, i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Delete(Entry{Key{5, 0}, 5}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Delete(Entry{Key{5, 0}, 5}); err != ErrNotFound {
		t.Fatalf("double delete: %v", err)
	}
	if err := tr.Delete(Entry{Key{99, 0}, 99}); err != ErrNotFound {
		t.Fatalf("delete missing: %v", err)
	}
	n, _ := tr.Len()
	if n != 19 {
		t.Fatalf("Len = %d", n)
	}
}

func TestSplitsManyEntries(t *testing.T) {
	tr := newTree(t, 64)
	const n = 5000 // forces several levels of splits
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if _, err := tr.Insert(Entry{Key{uint64(i), 0}, uint64(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got, err := tr.Len()
	if err != nil || got != n {
		t.Fatalf("Len = %d, %v", got, err)
	}
	// Ascend returns sorted order.
	last := Entry{}
	first := true
	err = tr.Ascend(Key{}, func(e Entry) bool {
		if !first && !last.Less(e) {
			t.Fatalf("out of order: %v then %v", last, e)
		}
		last, first = e, false
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAscendFromMidpoint(t *testing.T) {
	tr := newTree(t, 32)
	for i := uint64(0); i < 100; i++ {
		if _, err := tr.Insert(Entry{Key{i, 0}, i}); err != nil {
			t.Fatal(err)
		}
	}
	var got []uint64
	if err := tr.Ascend(Key{60, 0}, func(e Entry) bool {
		got = append(got, e.Key.K1)
		return len(got) < 5
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{60, 61, 62, 63, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ascend = %v", got)
		}
	}
}

func TestCompositeKeyOrdering(t *testing.T) {
	tr := newTree(t, 32)
	entries := []Entry{
		{Key{2, 1}, 0}, {Key{1, 9}, 0}, {Key{1, 2}, 0}, {Key{2, 0}, 9},
	}
	for _, e := range entries {
		if _, err := tr.Insert(e); err != nil {
			t.Fatal(err)
		}
	}
	var got []Entry
	if err := tr.Ascend(Key{}, func(e Entry) bool { got = append(got, e); return true }); err != nil {
		t.Fatal(err)
	}
	want := []Entry{{Key{1, 2}, 0}, {Key{1, 9}, 0}, {Key{2, 0}, 9}, {Key{2, 1}, 0}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v", got)
		}
	}
}

func TestSurvivesTinyBufferPool(t *testing.T) {
	// A pool of 8 frames forces constant eviction during splits.
	tr := newTree(t, 8)
	for i := 0; i < 2000; i++ {
		if _, err := tr.Insert(Entry{Key{uint64(i % 37), uint64(i)}, uint64(i)}); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	n, _ := tr.Len()
	if n != 2000 {
		t.Fatalf("Len = %d", n)
	}
}

// property: the tree agrees with a sorted reference model under random
// insert/delete interleavings.
func TestPropertyAgainstModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sw := device.NewSwitch()
		sw.Register(device.NewMem(nil, 0))
		if err := sw.Place(50, ""); err != nil {
			return false
		}
		tr, err := Open(50, buffer.NewPool(sw, 16))
		if err != nil {
			return false
		}
		model := map[Entry]bool{}
		for op := 0; op < 800; op++ {
			e := Entry{Key{uint64(rng.Intn(40)), uint64(rng.Intn(5))}, uint64(rng.Intn(10))}
			if rng.Intn(3) > 0 {
				added, err := tr.Insert(e)
				if err != nil {
					return false
				}
				if added == model[e] {
					return false // added must equal "was absent"
				}
				model[e] = true
			} else {
				err := tr.Delete(e)
				if model[e] && err != nil {
					return false
				}
				if !model[e] && err != ErrNotFound {
					return false
				}
				delete(model, e)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		var got []Entry
		if err := tr.Ascend(Key{}, func(e Entry) bool { got = append(got, e); return true }); err != nil {
			return false
		}
		if len(got) != len(model) {
			return false
		}
		for _, e := range got {
			if !model[e] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
